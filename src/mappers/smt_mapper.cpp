#include "smt_mapper.hpp"

#include <chrono>
#include <sstream>

#include "mappers/qiskit_baseline.hpp"
#include "support/logging.hpp"

namespace qc {

const char *
smtVariantName(SmtVariant v)
{
    switch (v) {
      case SmtVariant::TSmt: return "T-SMT";
      case SmtVariant::TSmtStar: return "T-SMT*";
      case SmtVariant::RSmtStar: return "R-SMT*";
    }
    QC_PANIC("unknown SMT variant");
}

SmtMapperOptions
effectiveSmtOptions(SmtMapperOptions options)
{
    if (options.variant == SmtVariant::RSmtStar)
        options.policy = RoutingPolicy::OneBendPath;
    return options;
}

SmtMapper::SmtMapper(const Machine &machine, SmtMapperOptions options)
    : Mapper(machine), options_(effectiveSmtOptions(options))
{
}

std::string
smtMapperDisplayName(const SmtMapperOptions &options)
{
    std::ostringstream oss;
    oss << smtVariantName(options.variant);
    if (options.variant == SmtVariant::RSmtStar) {
        oss << " w=" << options.readoutWeight;
    } else {
        oss << " " << routingPolicyName(options.policy);
    }
    return oss.str();
}

SmtModelOptions
smtModelOptionsFor(const SmtMapperOptions &options, const Circuit &prog)
{
    SmtModelOptions model;
    model.policy = options.policy;
    model.readoutWeight = options.readoutWeight;
    model.timeoutMs = options.timeoutMs;
    model.jointScheduling = options.jointScheduling;
    // The joint routing-overlap encoding grows quadratically in CNOT
    // count; beyond paper-scale programs the reliability variant
    // solves placement + junctions exactly and realizes the schedule
    // with the list scheduler (identical objective value).
    if (options.variant == SmtVariant::RSmtStar &&
        prog.cnotCount() > kJointSchedulingCnotLimit) {
        model.jointScheduling = false;
    }
    switch (options.variant) {
      case SmtVariant::TSmt:
        model.objective = SmtObjectiveKind::Duration;
        model.calibrationAware = false;
        break;
      case SmtVariant::TSmtStar:
        model.objective = SmtObjectiveKind::Duration;
        model.calibrationAware = true;
        break;
      case SmtVariant::RSmtStar:
        model.objective = SmtObjectiveKind::Reliability;
        model.calibrationAware = true;
        break;
    }
    return model;
}

std::string
SmtMapper::name() const
{
    return smtMapperDisplayName(options_);
}

CompiledProgram
SmtMapper::compile(const Circuit &prog)
{
    auto t0 = std::chrono::steady_clock::now();

    SmtSolution sol = solveSmtMapping(
        machine_, prog, smtModelOptionsFor(options_, prog));

    std::vector<HwQubit> layout;
    SchedulerOptions sched;
    sched.policy = options_.policy;
    sched.calibratedDurations = true; // executables run at real speed

    if (sol.feasible) {
        layout = sol.layout;
        if (options_.policy == RoutingPolicy::OneBendPath &&
            !sol.junctions.empty()) {
            sched.select = RouteSelect::Fixed;
            sched.fixedJunctions = sol.junctions;
        } else {
            sched.select =
                options_.variant == SmtVariant::RSmtStar
                    ? RouteSelect::BestReliability
                    : RouteSelect::BestDuration;
        }
    } else {
        // No model at all (hard timeout / unsat): fall back to the
        // trivial placement so callers still get a runnable program.
        QC_WARN("SMT solve failed (", sol.status,
                ") for ", prog.name(), "; falling back to trivial layout");
        layout = qiskitTrivialLayout(prog);
        sched.select = options_.variant == SmtVariant::RSmtStar
                           ? RouteSelect::BestReliability
                           : RouteSelect::BestDuration;
    }

    CompiledProgram out = finalize(prog, std::move(layout), sched);
    out.mapperName = name();
    out.solverOptimal = sol.optimal;
    out.solverStatus = sol.status;
    out.compileSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    return out;
}

} // namespace qc
