#include "smt_mapper.hpp"

#include <chrono>
#include <sstream>

#include "support/logging.hpp"

namespace qc {

const char *
smtVariantName(SmtVariant v)
{
    switch (v) {
      case SmtVariant::TSmt: return "T-SMT";
      case SmtVariant::TSmtStar: return "T-SMT*";
      case SmtVariant::RSmtStar: return "R-SMT*";
    }
    QC_PANIC("unknown SMT variant");
}

SmtMapper::SmtMapper(const Machine &machine, SmtMapperOptions options)
    : Mapper(machine), options_(options)
{
    // R-SMT* performs reliability optimization under one-bend paths
    // (paper Sec. 4.4).
    if (options_.variant == SmtVariant::RSmtStar)
        options_.policy = RoutingPolicy::OneBendPath;
}

std::string
SmtMapper::name() const
{
    std::ostringstream oss;
    oss << smtVariantName(options_.variant);
    if (options_.variant == SmtVariant::RSmtStar) {
        oss << " w=" << options_.readoutWeight;
    } else {
        oss << " " << routingPolicyName(options_.policy);
    }
    return oss.str();
}

CompiledProgram
SmtMapper::compile(const Circuit &prog)
{
    auto t0 = std::chrono::steady_clock::now();

    SmtModelOptions model;
    model.policy = options_.policy;
    model.readoutWeight = options_.readoutWeight;
    model.timeoutMs = options_.timeoutMs;
    model.jointScheduling = options_.jointScheduling;
    // The joint routing-overlap encoding grows quadratically in CNOT
    // count; beyond paper-scale programs the reliability variant
    // solves placement + junctions exactly and realizes the schedule
    // with the list scheduler (identical objective value).
    if (options_.variant == SmtVariant::RSmtStar &&
        prog.cnotCount() > kJointSchedulingCnotLimit) {
        model.jointScheduling = false;
    }
    switch (options_.variant) {
      case SmtVariant::TSmt:
        model.objective = SmtObjectiveKind::Duration;
        model.calibrationAware = false;
        break;
      case SmtVariant::TSmtStar:
        model.objective = SmtObjectiveKind::Duration;
        model.calibrationAware = true;
        break;
      case SmtVariant::RSmtStar:
        model.objective = SmtObjectiveKind::Reliability;
        model.calibrationAware = true;
        break;
    }

    SmtSolution sol = solveSmtMapping(machine_, prog, model);

    std::vector<HwQubit> layout;
    SchedulerOptions sched;
    sched.policy = options_.policy;
    sched.calibratedDurations = true; // executables run at real speed

    if (sol.feasible) {
        layout = sol.layout;
        if (options_.policy == RoutingPolicy::OneBendPath &&
            !sol.junctions.empty()) {
            sched.select = RouteSelect::Fixed;
            sched.fixedJunctions = sol.junctions;
        } else {
            sched.select =
                options_.variant == SmtVariant::RSmtStar
                    ? RouteSelect::BestReliability
                    : RouteSelect::BestDuration;
        }
    } else {
        // No model at all (hard timeout / unsat): fall back to the
        // trivial placement so callers still get a runnable program.
        QC_WARN("SMT solve failed (", sol.status,
                ") for ", prog.name(), "; falling back to trivial layout");
        layout.resize(prog.numQubits());
        for (int q = 0; q < prog.numQubits(); ++q)
            layout[q] = q;
        sched.select = options_.variant == SmtVariant::RSmtStar
                           ? RouteSelect::BestReliability
                           : RouteSelect::BestDuration;
    }

    CompiledProgram out = finalize(prog, std::move(layout), sched);
    out.mapperName = name();
    out.solverOptimal = sol.optimal;
    out.solverStatus = sol.status;
    out.compileSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    return out;
}

} // namespace qc
