/**
 * @file
 * SMT-based optimal mappers: T-SMT, T-SMT* and R-SMT* (paper Sec. 4).
 *
 * All three share the Z3 constraint model in solver/smt_model.hpp and
 * differ in objective and calibration use:
 *  - T-SMT   minimizes duration with static durations and the
 *            1000-slot average coherence bound,
 *  - T-SMT*  minimizes duration with calibrated durations and
 *            per-qubit coherence windows,
 *  - R-SMT*  maximizes the weighted log-reliability (Eq. 12) under
 *            the one-bend-path policy.
 */

#ifndef QC_MAPPERS_SMT_MAPPER_HPP
#define QC_MAPPERS_SMT_MAPPER_HPP

#include "mappers/mapper.hpp"
#include "route/routing.hpp"
#include "solver/smt_model.hpp"

namespace qc {

/** The three SMT rows of Table 1. */
enum class SmtVariant {
    TSmt,     ///< duration objective, calibration-unaware
    TSmtStar, ///< duration objective, calibration-aware
    RSmtStar, ///< reliability objective, calibration-aware
};

const char *smtVariantName(SmtVariant v);

/** Per-instance configuration for SmtMapper. */
struct SmtMapperOptions
{
    SmtVariant variant = SmtVariant::RSmtStar;

    /** Routing policy (RR or 1BP); R-SMT* forces 1BP per the paper. */
    RoutingPolicy policy = RoutingPolicy::OneBendPath;

    /** Eq. 12 readout weight omega (R-SMT* only). */
    double readoutWeight = 0.5;

    /** Z3 budget; the best model found so far is used on timeout. */
    unsigned timeoutMs = 60'000;

    /**
     * Encode scheduling/routing jointly with placement (the full
     * paper formulation). Reliability solves may disable it for
     * scalability sweeps; duration solves always encode jointly.
     */
    bool jointScheduling = true;
};

/**
 * Largest CNOT count for which R-SMT* keeps the joint scheduling
 * encoding; beyond it, placement+junctions are solved exactly and the
 * list scheduler realizes start times (same objective value).
 */
inline constexpr int kJointSchedulingCnotLimit = 12;

/**
 * Display name for an SMT configuration ("R-SMT* w=0.5",
 * "T-SMT 1BP", ...) — the mapperName both SmtMapper and the
 * pipeline's SMT bundles report.
 */
std::string smtMapperDisplayName(const SmtMapperOptions &options);

/**
 * Normalize mapper-level options: R-SMT* performs reliability
 * optimization under one-bend paths (paper Sec. 4.4), so its policy
 * is forced to 1BP here — the single place the rule lives, shared by
 * SmtMapper, the SMT placement pass, and the pipeline bundles.
 */
SmtMapperOptions effectiveSmtOptions(SmtMapperOptions options);

/**
 * Translate mapper-level options into the Z3 model configuration,
 * including the R-SMT* joint-scheduling escape hatch for programs
 * beyond kJointSchedulingCnotLimit CNOTs. Shared by SmtMapper and
 * the pipeline's SMT placement pass.
 */
SmtModelOptions smtModelOptionsFor(const SmtMapperOptions &options,
                                   const Circuit &prog);

/**
 * Optimal compilation through Z3.
 *
 * If the solver times out without any model, the mapper falls back to
 * a trivial placement and flags solverOptimal = false with the Z3
 * status recorded in solverStatus.
 */
class SmtMapper : public Mapper
{
  public:
    SmtMapper(const Machine &machine, SmtMapperOptions options);

    std::string name() const override;

    CompiledProgram compile(const Circuit &prog) override;

    const SmtMapperOptions &options() const { return options_; }

  private:
    SmtMapperOptions options_;
};

} // namespace qc

#endif // QC_MAPPERS_SMT_MAPPER_HPP
