/**
 * @file
 * Calibration-blind baseline modelling the IBM Qiskit 0.5.7 mapper the
 * paper compares against (Sec. 7, Fig. 8a): program qubits are placed
 * in lexicographic order onto hardware qubits without consulting CNOT
 * or readout error rates, and CNOTs between non-adjacent qubits are
 * routed along fixed shortest paths.
 */

#ifndef QC_MAPPERS_QISKIT_BASELINE_HPP
#define QC_MAPPERS_QISKIT_BASELINE_HPP

#include "mappers/mapper.hpp"

namespace qc {

/**
 * Lexicographic (trivial) placement: program qubit i -> hardware
 * qubit i, exactly what the paper observed Qiskit 0.5.7 doing.
 * Shared by QiskitBaselineMapper and the pipeline's Qiskit pass.
 */
std::vector<HwQubit> qiskitTrivialLayout(const Circuit &prog);

/**
 * Fixed row-first shortest routes: junction 0 for every CNOT, -1 for
 * other gates (no calibration input).
 */
std::vector<int> qiskitRowFirstJunctions(const Circuit &prog);

/** The paper's industry-standard baseline. */
class QiskitBaselineMapper : public Mapper
{
  public:
    explicit QiskitBaselineMapper(const Machine &machine)
        : Mapper(machine)
    {
    }

    std::string name() const override { return "Qiskit"; }

    CompiledProgram compile(const Circuit &prog) override;
};

} // namespace qc

#endif // QC_MAPPERS_QISKIT_BASELINE_HPP
