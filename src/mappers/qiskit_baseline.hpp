/**
 * @file
 * Calibration-blind baseline modelling the IBM Qiskit 0.5.7 mapper the
 * paper compares against (Sec. 7, Fig. 8a): program qubits are placed
 * in lexicographic order onto hardware qubits without consulting CNOT
 * or readout error rates, and CNOTs between non-adjacent qubits are
 * routed along fixed shortest paths.
 */

#ifndef QC_MAPPERS_QISKIT_BASELINE_HPP
#define QC_MAPPERS_QISKIT_BASELINE_HPP

#include "mappers/mapper.hpp"

namespace qc {

/** The paper's industry-standard baseline. */
class QiskitBaselineMapper : public Mapper
{
  public:
    explicit QiskitBaselineMapper(const Machine &machine)
        : Mapper(machine)
    {
    }

    std::string name() const override { return "Qiskit"; }

    CompiledProgram compile(const Circuit &prog) override;
};

} // namespace qc

#endif // QC_MAPPERS_QISKIT_BASELINE_HPP
