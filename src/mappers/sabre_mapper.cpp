#include "sabre_mapper.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "mappers/greedy_mapper.hpp"
#include "mappers/qiskit_baseline.hpp"
#include "sched/tracking_router.hpp"
#include "support/logging.hpp"
#include "support/rng.hpp"

namespace qc {

namespace {

using Clock = std::chrono::steady_clock;

/** A program CNOT reduced to its qubit pair. */
struct CnotPair
{
    ProgQubit a;
    ProgQubit b;
};

/** The circuit's CNOTs in program order (forward direction). */
std::vector<CnotPair>
cnotSequence(const Circuit &prog)
{
    std::vector<CnotPair> out;
    out.reserve(prog.size());
    for (const Gate &g : prog.gates())
        if (g.op == Op::CNOT)
            out.push_back({g.q0, g.q1});
    return out;
}

/**
 * One SABRE routing pass over a CNOT sequence.
 *
 * Maintains a live layout (the SWAPs are committed, never undone, the
 * tracking router's movement model) and advances the qubit-level
 * dependency frontier: a CNOT is in the front layer iff it is the
 * next pending CNOT on both of its qubits — exactly the two-qubit
 * slice of the DependencyDag frontier, since single-qubit gates never
 * constrain routing. When no front gate is executable, every coupling
 * edge touching a front gate's qubits is scored and the best exchange
 * is committed.
 *
 * Only the *final layout* is of interest here (it seeds the next
 * refinement direction); the emitted movement itself is discarded —
 * the downstream scheduling pass re-routes from the chosen initial
 * layout.
 */
class SabreRoutePass
{
  public:
    SabreRoutePass(const Machine &machine, const SabreOptions &options,
                   Rng &rng)
        : machine_(machine), topo_(machine.topo()), options_(options),
          rng_(rng)
    {
    }

    std::vector<HwQubit> run(const std::vector<CnotPair> &cnots,
                             std::vector<HwQubit> layout);

  private:
    /** CNOT indices per qubit, with a per-qubit progress pointer. */
    void buildQueues(const std::vector<CnotPair> &cnots, int n_prog);

    /** Front layer: next pending CNOT on *both* of its qubits. */
    std::vector<int> collectFront(const std::vector<CnotPair> &cnots)
        const;

    /** Retire gate g: advance both endpoint pointers past it. */
    void retire(int g, const std::vector<CnotPair> &cnots);

    /**
     * First `options_.lookahead` pending CNOTs beyond the front
     * layer, in program order.
     */
    std::vector<int> lookaheadWindow(const std::vector<int> &front,
                                     const std::vector<CnotPair> &cnots)
        const;

    double scoreSwap(HwQubit u, HwQubit v,
                     const std::vector<int> &front,
                     const std::vector<int> &window,
                     const std::vector<CnotPair> &cnots,
                     const std::vector<HwQubit> &layout) const;

    void applySwap(HwQubit u, HwQubit v, std::vector<HwQubit> &layout);

    const Machine &machine_;
    const Topology &topo_;
    const SabreOptions &options_;
    Rng &rng_;

    std::vector<std::vector<int>> qubitCnots_;
    std::vector<size_t> ptr_;
    std::vector<bool> done_;
    std::vector<ProgQubit> occupant_;
    int firstPending_ = 0;
};

void
SabreRoutePass::buildQueues(const std::vector<CnotPair> &cnots,
                            int n_prog)
{
    qubitCnots_.assign(n_prog, {});
    ptr_.assign(n_prog, 0);
    done_.assign(cnots.size(), false);
    firstPending_ = 0;
    for (size_t i = 0; i < cnots.size(); ++i) {
        qubitCnots_[cnots[i].a].push_back(static_cast<int>(i));
        qubitCnots_[cnots[i].b].push_back(static_cast<int>(i));
    }
}

std::vector<int>
SabreRoutePass::collectFront(const std::vector<CnotPair> &cnots) const
{
    std::vector<int> front;
    for (ProgQubit q = 0; q < static_cast<int>(qubitCnots_.size());
         ++q) {
        if (ptr_[q] >= qubitCnots_[q].size())
            continue;
        int g = qubitCnots_[q][ptr_[q]];
        const CnotPair &c = cnots[g];
        // Count each front gate once, from its lower qubit.
        if (q != std::min(c.a, c.b))
            continue;
        ProgQubit other = c.a == q ? c.b : c.a;
        if (qubitCnots_[other][ptr_[other]] == g)
            front.push_back(g);
    }
    std::sort(front.begin(), front.end());
    return front;
}

void
SabreRoutePass::retire(int g, const std::vector<CnotPair> &cnots)
{
    done_[g] = true;
    ++ptr_[cnots[g].a];
    ++ptr_[cnots[g].b];
}

std::vector<int>
SabreRoutePass::lookaheadWindow(const std::vector<int> &front,
                                const std::vector<CnotPair> &cnots)
    const
{
    std::vector<int> window;
    if (options_.lookahead <= 0)
        return window;
    for (int g = firstPending_;
         g < static_cast<int>(cnots.size()) &&
         static_cast<int>(window.size()) < options_.lookahead;
         ++g) {
        if (done_[g] ||
            std::binary_search(front.begin(), front.end(), g))
            continue;
        window.push_back(g);
    }
    return window;
}

double
SabreRoutePass::scoreSwap(HwQubit u, HwQubit v,
                          const std::vector<int> &front,
                          const std::vector<int> &window,
                          const std::vector<CnotPair> &cnots,
                          const std::vector<HwQubit> &layout) const
{
    auto moved = [&](ProgQubit p) -> HwQubit {
        HwQubit h = layout[p];
        if (h == u)
            return v;
        if (h == v)
            return u;
        return h;
    };

    double front_cost = 0.0;
    for (int g : front)
        front_cost += topo_.distance(moved(cnots[g].a),
                                     moved(cnots[g].b));
    front_cost /= static_cast<double>(front.size());

    double look_cost = 0.0;
    if (!window.empty()) {
        double weight = 1.0;
        double weight_sum = 0.0;
        for (int g : window) {
            look_cost += weight * topo_.distance(moved(cnots[g].a),
                                                 moved(cnots[g].b));
            weight_sum += weight;
            weight *= options_.decay;
        }
        look_cost /= weight_sum;
    }

    EdgeId e = topo_.edgeBetween(u, v);
    QC_ASSERT(e != kInvalidEdge, "sabre swap candidate on non-edge");
    double edge_cost = -std::log(machine_.cal().cnotReliability(e));

    return front_cost + options_.lookaheadWeight * look_cost +
           options_.reliabilityWeight * edge_cost;
}

void
SabreRoutePass::applySwap(HwQubit u, HwQubit v,
                          std::vector<HwQubit> &layout)
{
    std::swap(occupant_[u], occupant_[v]);
    if (occupant_[u] != kInvalidQubit)
        layout[occupant_[u]] = u;
    if (occupant_[v] != kInvalidQubit)
        layout[occupant_[v]] = v;
}

std::vector<HwQubit>
SabreRoutePass::run(const std::vector<CnotPair> &cnots,
                    std::vector<HwQubit> layout)
{
    const int n_prog = static_cast<int>(layout.size());
    buildQueues(cnots, n_prog);

    occupant_.assign(topo_.numQubits(), kInvalidQubit);
    for (ProgQubit p = 0; p < n_prog; ++p)
        occupant_[layout[p]] = p;

    size_t executed = 0;
    int stalled_swaps = 0;
    const int stall_limit = 2 * topo_.numQubits() + 8;
    HwQubit last_a = kInvalidQubit, last_b = kInvalidQubit;

    // The frontier only changes when a gate retires, never when a
    // SWAP moves qubits, so it is recomputed exactly once per
    // retirement round and reused across the SWAP search steps.
    std::vector<int> front = collectFront(cnots);
    while (executed < cnots.size()) {
        // Retire every executable front gate until a fixpoint.
        bool progressed = true;
        while (progressed) {
            progressed = false;
            for (int g : front) {
                if (!topo_.adjacent(layout[cnots[g].a],
                                    layout[cnots[g].b]))
                    continue;
                retire(g, cnots);
                ++executed;
                progressed = true;
            }
            if (progressed) {
                stalled_swaps = 0;
                last_a = last_b = kInvalidQubit;
                while (firstPending_ <
                           static_cast<int>(cnots.size()) &&
                       done_[firstPending_])
                    ++firstPending_;
                front = collectFront(cnots);
            }
        }
        if (executed == cnots.size())
            break;

        QC_ASSERT(!front.empty(), "sabre frontier empty with CNOTs "
                                  "pending");

        if (stalled_swaps >= stall_limit) {
            // Anti-livelock: force-route the oldest front gate along
            // the most reliable path, guaranteeing progress whatever
            // the heuristic landscape looks like.
            const CnotPair &c = cnots[front.front()];
            std::vector<HwQubit> path =
                machine_.mostReliablePath(layout[c.a], layout[c.b]);
            for (size_t k = 0; k + 2 < path.size(); ++k)
                applySwap(path[k], path[k + 1], layout);
            stalled_swaps = 0;
            last_a = last_b = kInvalidQubit;
            continue;
        }

        // Candidate exchanges: every coupling edge touching a front
        // gate's current position, deduplicated and id-ordered.
        const std::vector<int> window = lookaheadWindow(front, cnots);
        std::vector<std::pair<HwQubit, HwQubit>> candidates;
        for (int g : front) {
            for (HwQubit h : {layout[cnots[g].a], layout[cnots[g].b]})
                for (HwQubit nb : topo_.neighbors(h))
                    candidates.emplace_back(std::min(h, nb),
                                            std::max(h, nb));
        }
        std::sort(candidates.begin(), candidates.end());
        candidates.erase(
            std::unique(candidates.begin(), candidates.end()),
            candidates.end());

        double best_score = std::numeric_limits<double>::infinity();
        std::vector<size_t> best;
        for (size_t i = 0; i < candidates.size(); ++i) {
            auto [u, v] = candidates[i];
            // Never immediately undo the previous exchange unless it
            // is the only move available.
            if (u == last_a && v == last_b && candidates.size() > 1)
                continue;
            double s = scoreSwap(u, v, front, window, cnots, layout);
            if (s < best_score - 1e-12) {
                best_score = s;
                best.assign(1, i);
            } else if (s < best_score + 1e-12) {
                best.push_back(i);
            }
        }
        QC_ASSERT(!best.empty(), "sabre swap search found no candidate");
        size_t pick =
            best.size() == 1
                ? best.front()
                : best[static_cast<size_t>(rng_.uniformInt(
                      0, static_cast<int>(best.size()) - 1))];
        auto [u, v] = candidates[pick];
        applySwap(u, v, layout);
        last_a = u;
        last_b = v;
        ++stalled_swaps;
    }

    return layout;
}

} // namespace

SabrePlacementResult
sabrePlacementDetailed(const Machine &machine, const Circuit &prog,
                       const SabreOptions &options,
                       const CancelToken *cancel)
{
    throwIfCancelled(cancel, "sabre refinement cancelled");
    const int n_prog = prog.numQubits();
    const int n_hw = machine.numQubits();
    if (n_prog > n_hw)
        QC_FATAL("program needs ", n_prog, " qubits but machine has ",
                 n_hw);
    if (options.iterations < 0)
        QC_FATAL("sabre iterations must be >= 0, got ",
                 options.iterations);
    if (options.lookahead < 0)
        QC_FATAL("sabre lookahead must be >= 0, got ",
                 options.lookahead);

    SabrePlacementResult result;
    result.layout = options.greedySeed
                        ? greedyEdgePlacement(machine, prog)
                        : qiskitTrivialLayout(prog);

    // The seed is itself a candidate, so the refined layout never
    // predicts worse than the heuristic it started from — and both
    // are scored with the same tracking-router movement model the
    // standard Sabre bundle schedules with.
    TrackingRouter evaluator(machine);
    auto evaluate = [&](const std::vector<HwQubit> &layout) {
        return evaluator.run(prog, layout, cancel).predictedSuccess;
    };
    result.predictedSuccess = evaluate(result.layout);

    std::vector<CnotPair> forward = cnotSequence(prog);
    if (forward.empty() || options.iterations == 0)
        return result; // nothing to refine against

    std::vector<CnotPair> backward(forward.rbegin(), forward.rend());

    Rng rng(options.seed, "sabre-ties");
    SabreRoutePass router(machine, options, rng);

    std::vector<HwQubit> current = result.layout;
    for (int it = 0; it < options.iterations; ++it) {
        // Round-trip boundaries are the natural cancellation points:
        // each trip is a full routed pass over the circuit.
        throwIfCancelled(cancel, "sabre refinement cancelled");
        std::vector<HwQubit> after_forward =
            router.run(forward, std::move(current));
        current = router.run(backward, std::move(after_forward));
        ++result.roundTrips;

        double score = evaluate(current);
        if (score > result.predictedSuccess) {
            result.predictedSuccess = score;
            result.layout = current;
        }
    }
    return result;
}

std::vector<HwQubit>
sabrePlacement(const Machine &machine, const Circuit &prog,
               const SabreOptions &options)
{
    return sabrePlacementDetailed(machine, prog, options).layout;
}

CompileStatus
SabrePlacementPass::run(CompileContext &ctx) const
{
    const Circuit &prog = ctx.circuit();
    const int n_prog = prog.numQubits();
    const int n_hw = ctx.mach().numQubits();
    if (n_prog > n_hw)
        return CompileStatus::infeasible(
            "program needs " + std::to_string(n_prog) +
            " qubits but machine has " + std::to_string(n_hw));

    SabrePlacementResult result =
        sabrePlacementDetailed(ctx.mach(), prog, options_, ctx.cancel);
    ctx.layout = std::move(result.layout);

    std::ostringstream oss;
    oss << result.roundTrips << " round trips, lookahead "
        << options_.lookahead << ", best pred. success "
        << result.predictedSuccess;
    ctx.addNote(oss.str());
    return CompileStatus::success();
}

CompiledProgram
SabreMapper::compile(const Circuit &prog)
{
    auto t0 = Clock::now();
    CompiledProgram out = finalizeTracked(
        machine_, prog, sabrePlacement(machine_, prog, options_));
    out.mapperName = name();
    out.compileSeconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    return out;
}

} // namespace qc
