/**
 * @file
 * SABRE-style iterative placement refinement (Li, Ding & Xie,
 * ASPLOS'19), adapted to the paper's noise-adaptive cost model.
 *
 * The paper's heuristics fix a placement once and route forward; this
 * pass instead *searches* for the initial layout: starting from a
 * greedy (or trivial) seed it routes the circuit forward with a
 * SABRE-style SWAP search, then routes the *reversed* circuit from the
 * drifted final layout — whose final layout is, by symmetry, an
 * initial layout tuned to the circuit's early gates — and iterates
 * that round trip, keeping the best candidate by predicted success
 * probability under the live-tracking router. Because the seed layout
 * is itself a candidate, the result never scores worse than the seed.
 *
 * The SWAP search scores each candidate exchange with a topology-hop
 * term over the front layer of the CNOT dependency DAG, a decayed
 * lookahead window over the CNOTs behind it, and a calibration
 * reliability term that steers movement off error-prone edges. All
 * tie-breaking is drawn from a seeded Rng stream, so the refinement is
 * fully deterministic (and therefore cacheable by the service's
 * fingerprint-keyed compile cache).
 *
 * Works on any Topology (grid, heavy-hex, ring, edge-list): the
 * search only consumes hop distances, coupling edges and calibration
 * tables.
 */

#ifndef QC_MAPPERS_SABRE_MAPPER_HPP
#define QC_MAPPERS_SABRE_MAPPER_HPP

#include "core/pipeline.hpp"
#include "mappers/mapper.hpp"

namespace qc {

/** SABRE refinement knobs. */
struct SabreOptions
{
    /** Forward+backward round trips over the circuit (>= 0). */
    int iterations = 3;

    /**
     * Size of the lookahead window: how many pending CNOTs beyond the
     * front layer contribute to a SWAP's score (>= 0; 0 = front layer
     * only).
     */
    int lookahead = 20;

    /** Weight of the (normalized) lookahead term in the SWAP score. */
    double lookaheadWeight = 0.5;

    /** Per-rank geometric decay inside the lookahead window. */
    double decay = 0.7;

    /**
     * Weight of the -log(swap-edge reliability) term: larger values
     * route movement around error-prone couplings at the cost of
     * extra hops.
     */
    double reliabilityWeight = 0.05;

    /** Seed of the deterministic tie-break stream. */
    std::uint64_t seed = 20190131;

    /**
     * true  = seed round 0 with the GreedyE* placement (Sec. 5.2),
     * false = seed with the trivial lexicographic layout.
     */
    bool greedySeed = true;
};

/** Outcome of the refinement search (layout + its own score). */
struct SabrePlacementResult
{
    std::vector<HwQubit> layout;   ///< best initial placement found
    double predictedSuccess = 0.0; ///< its tracking-router prediction
    int roundTrips = 0;            ///< refinement iterations performed
};

/**
 * Run the full refinement search. Throws FatalError when the program
 * does not fit the machine (the shared placement contract), and
 * CancelledError at a round-trip boundary when `cancel` fires (a
 * partially-refined layout is never returned).
 */
SabrePlacementResult sabrePlacementDetailed(const Machine &machine,
                                            const Circuit &prog,
                                            const SabreOptions &options
                                            = {},
                                            const CancelToken *cancel
                                            = nullptr);

/** The refined initial layout alone (same contract as above). */
std::vector<HwQubit> sabrePlacement(const Machine &machine,
                                    const Circuit &prog,
                                    const SabreOptions &options = {});

/**
 * Sabre as a first-class placement stage: composes with every
 * routing/scheduling pass (the standard MapperKind::Sabre bundle
 * pairs it with the live-tracking scheduler, whose cost model the
 * refinement optimizes for).
 */
class SabrePlacementPass : public PlacementPass
{
  public:
    explicit SabrePlacementPass(SabreOptions options = {})
        : options_(options)
    {
    }

    std::string name() const override { return "Sabre"; }

    CompileStatus run(CompileContext &ctx) const override;

  private:
    SabreOptions options_;
};

/**
 * Legacy monolithic form (the pipeline-equivalence reference, like
 * GreedyETrackMapper): sabre placement + live-tracking routing.
 */
class SabreMapper : public Mapper
{
  public:
    explicit SabreMapper(const Machine &machine,
                         SabreOptions options = {})
        : Mapper(machine), options_(options)
    {
    }

    std::string name() const override { return "Sabre"; }

    CompiledProgram compile(const Circuit &prog) override;

  private:
    SabreOptions options_;
};

} // namespace qc

#endif // QC_MAPPERS_SABRE_MAPPER_HPP
