#include "mapper.hpp"

#include <cmath>

#include "support/logging.hpp"

namespace qc {

Circuit
CompiledProgram::hwCircuit(int n_clbits) const
{
    return schedule.toHwCircuit(programName + "." + mapperName, n_clbits);
}

CompiledProgram
Mapper::finalize(const Circuit &prog, std::vector<HwQubit> layout,
                 const SchedulerOptions &sched_options) const
{
    validateLayout(layout, prog.numQubits(), machine_.numQubits());

    ListScheduler scheduler(machine_, sched_options);
    CompiledProgram out;
    out.programName = prog.name();
    out.layout = std::move(layout);
    out.junctions = sched_options.fixedJunctions;
    out.schedule = scheduler.run(prog, out.layout);
    out.duration = out.schedule.makespan;
    out.swapCount = out.schedule.swapCount();

    // Predicted reliability, Eq. 12 style but unweighted: the product
    // of readout reliabilities and routed-CNOT EC values, using the
    // exact routes the scheduler chose.
    double log_rel = 0.0;
    for (size_t i = 0; i < prog.size(); ++i) {
        const Gate &g = prog.gate(i);
        if (g.op == Op::CNOT) {
            RoutePath r = scheduler.chooseRoute(
                out.layout[g.q0], out.layout[g.q1], static_cast<int>(i));
            log_rel += std::log(r.reliability);
        } else if (g.isMeasure()) {
            log_rel += std::log(
                machine_.cal().readoutReliability(out.layout[g.q0]));
        }
    }
    out.logReliability = log_rel;
    out.predictedSuccess = std::exp(log_rel);
    return out;
}

} // namespace qc
