#include "mapper.hpp"

#include <cmath>

#include "sched/tracking_router.hpp"
#include "support/logging.hpp"

namespace qc {

Circuit
CompiledProgram::hwCircuit(int n_clbits) const
{
    return schedule.toHwCircuit(programName + "." + mapperName, n_clbits);
}

double
predictLogReliability(const Machine &machine, const Circuit &prog,
                      const std::vector<HwQubit> &layout,
                      const ListScheduler &scheduler)
{
    double log_rel = 0.0;
    for (size_t i = 0; i < prog.size(); ++i) {
        const Gate &g = prog.gate(i);
        if (g.op == Op::CNOT) {
            RoutePath r = scheduler.chooseRoute(
                layout[g.q0], layout[g.q1], static_cast<int>(i));
            log_rel += std::log(r.reliability);
        } else if (g.isMeasure()) {
            log_rel += std::log(
                machine.cal().readoutReliability(layout[g.q0]));
        }
    }
    return log_rel;
}

CompiledProgram
finalizeTracked(const Machine &machine, const Circuit &prog,
                std::vector<HwQubit> layout)
{
    TrackingRouter router(machine);
    TrackingResult routed = router.run(prog, layout);

    CompiledProgram out;
    out.programName = prog.name();
    out.layout = std::move(layout);
    out.schedule = std::move(routed.schedule);
    out.duration = out.schedule.makespan;
    out.swapCount = routed.swapCount;
    out.predictedSuccess = routed.predictedSuccess;
    out.logReliability = std::log(routed.predictedSuccess);
    return out;
}

CompiledProgram
Mapper::finalize(const Circuit &prog, std::vector<HwQubit> layout,
                 const SchedulerOptions &sched_options) const
{
    validateLayout(layout, prog.numQubits(), machine_.numQubits());

    ListScheduler scheduler(machine_, sched_options);
    CompiledProgram out;
    out.programName = prog.name();
    out.layout = std::move(layout);
    out.junctions = sched_options.fixedJunctions;
    out.schedule = scheduler.run(prog, out.layout);
    out.duration = out.schedule.makespan;
    out.swapCount = out.schedule.swapCount();
    out.logReliability =
        predictLogReliability(machine_, prog, out.layout, scheduler);
    out.predictedSuccess = std::exp(out.logReliability);
    return out;
}

} // namespace qc
