/**
 * @file
 * Mapper interface and the CompiledProgram artifact every compiler
 * variant produces (Table 1 of the paper enumerates the variants).
 */

#ifndef QC_MAPPERS_MAPPER_HPP
#define QC_MAPPERS_MAPPER_HPP

#include <memory>
#include <string>
#include <vector>

#include "ir/circuit.hpp"
#include "machine/machine.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/schedule.hpp"
#include "support/status.hpp"

namespace qc {

/**
 * The output of one compilation: placement, timed hardware schedule,
 * and the model's own reliability/duration predictions.
 */
struct CompiledProgram
{
    std::string mapperName;
    std::string programName;

    std::vector<HwQubit> layout;   ///< program qubit -> hardware qubit
    std::vector<int> junctions;    ///< per gate one-bend route; empty ok
    Schedule schedule;

    Timeslot duration = 0;         ///< schedule makespan (timeslots)
    double logReliability = 0.0;   ///< sum log(eps) over CNOTs+readouts
    double predictedSuccess = 0.0; ///< exp(logReliability)
    int swapCount = 0;             ///< routing SWAPs in the schedule

    double compileSeconds = 0.0;
    bool solverOptimal = true;     ///< solver proved optimality
    std::string solverStatus;      ///< diagnostic (SMT variants)

    /**
     * Per-stage wall times and notes. Filled by the pass pipeline
     * (core/pipeline.hpp); empty for programs produced by the legacy
     * monolithic Mapper::compile path.
     */
    std::vector<StageTrace> stageTraces;

    /** Hardware-level circuit (Swaps preserved; QASM expands them). */
    Circuit hwCircuit(int n_clbits) const;
};

/**
 * Eq. 12-style unweighted log-reliability of a program under a fixed
 * layout: the sum of log readout reliabilities and log routed-CNOT EC
 * values, following the scheduler's own route choices so predictions
 * match the emitted code exactly. Shared by Mapper::finalize and the
 * pipeline's prediction pass so the two accountings cannot drift.
 */
double predictLogReliability(const Machine &machine,
                             const Circuit &prog,
                             const std::vector<HwQubit> &layout,
                             const ListScheduler &scheduler);

/**
 * Shared epilogue of the live-tracking mappers (GreedyE*+track,
 * Sabre): route `prog` from `layout` with the TrackingRouter and
 * assemble the CompiledProgram — prediction comes inline from the
 * emitted hardware ops. The caller fills mapperName/compileSeconds.
 */
CompiledProgram finalizeTracked(const Machine &machine,
                                const Circuit &prog,
                                std::vector<HwQubit> layout);

/**
 * Abstract compiler backend: placement + routing + scheduling for one
 * machine-day. Implementations must be deterministic.
 */
class Mapper
{
  public:
    explicit Mapper(const Machine &machine) : machine_(machine) {}
    virtual ~Mapper() = default;

    Mapper(const Mapper &) = delete;
    Mapper &operator=(const Mapper &) = delete;

    /** Human-readable variant name (used in reports). */
    virtual std::string name() const = 0;

    /** Compile a program circuit. Throws FatalError if it cannot fit. */
    virtual CompiledProgram compile(const Circuit &prog) = 0;

    const Machine &machine() const { return machine_; }

  protected:
    /**
     * Shared epilogue: validate the layout, run the list scheduler,
     * and fill in the prediction fields. Route reliabilities follow
     * the scheduler's route choices, so predictions match the emitted
     * code exactly.
     */
    CompiledProgram finalize(const Circuit &prog,
                             std::vector<HwQubit> layout,
                             const SchedulerOptions &sched_options) const;

    const Machine &machine_;
};

} // namespace qc

#endif // QC_MAPPERS_MAPPER_HPP
