#include "qiskit_baseline.hpp"

#include <chrono>

#include "support/logging.hpp"

namespace qc {

CompiledProgram
QiskitBaselineMapper::compile(const Circuit &prog)
{
    auto t0 = std::chrono::steady_clock::now();

    // Lexicographic (trivial) placement: program qubit i -> hardware
    // qubit i, exactly what the paper observed Qiskit 0.5.7 doing.
    std::vector<HwQubit> layout(prog.numQubits());
    for (int q = 0; q < prog.numQubits(); ++q)
        layout[q] = q;

    // Fixed row-first shortest routes; no calibration input.
    SchedulerOptions opts;
    opts.policy = RoutingPolicy::OneBendPath;
    opts.select = RouteSelect::Fixed;
    opts.calibratedDurations = true; // hardware runs at real speed
    opts.fixedJunctions.assign(prog.size(), -1);
    for (size_t i = 0; i < prog.size(); ++i)
        if (prog.gate(i).op == Op::CNOT)
            opts.fixedJunctions[i] = 0;

    CompiledProgram out = finalize(prog, std::move(layout), opts);
    out.mapperName = name();
    out.compileSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    return out;
}

} // namespace qc
