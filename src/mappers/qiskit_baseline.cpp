#include "qiskit_baseline.hpp"

#include <chrono>

#include "support/logging.hpp"

namespace qc {

std::vector<HwQubit>
qiskitTrivialLayout(const Circuit &prog)
{
    std::vector<HwQubit> layout(prog.numQubits());
    for (int q = 0; q < prog.numQubits(); ++q)
        layout[q] = q;
    return layout;
}

std::vector<int>
qiskitRowFirstJunctions(const Circuit &prog)
{
    std::vector<int> junctions(prog.size(), -1);
    for (size_t i = 0; i < prog.size(); ++i)
        if (prog.gate(i).op == Op::CNOT)
            junctions[i] = 0;
    return junctions;
}

CompiledProgram
QiskitBaselineMapper::compile(const Circuit &prog)
{
    auto t0 = std::chrono::steady_clock::now();

    SchedulerOptions opts;
    opts.policy = RoutingPolicy::OneBendPath;
    opts.select = RouteSelect::Fixed;
    opts.calibratedDurations = true; // hardware runs at real speed
    opts.fixedJunctions = qiskitRowFirstJunctions(prog);

    CompiledProgram out =
        finalize(prog, qiskitTrivialLayout(prog), opts);
    out.mapperName = name();
    out.compileSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    return out;
}

} // namespace qc
