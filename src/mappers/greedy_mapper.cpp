#include "greedy_mapper.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "ir/program_graph.hpp"
#include "support/logging.hpp"

namespace qc {

namespace {

using Clock = std::chrono::steady_clock;

/** Best-readout free hardware qubit (for isolated program qubits). */
HwQubit
bestFreeReadout(const Machine &machine, const std::vector<bool> &used)
{
    HwQubit best = kInvalidQubit;
    double best_rel = -1.0;
    for (HwQubit h = 0; h < machine.numQubits(); ++h) {
        if (used[h])
            continue;
        double rel = machine.cal().readoutReliability(h);
        if (rel > best_rel) {
            best_rel = rel;
            best = h;
        }
    }
    return best;
}

} // namespace

SchedulerOptions
greedySchedulerOptions()
{
    SchedulerOptions opts;
    opts.policy = RoutingPolicy::OneBendPath;
    opts.select = RouteSelect::Dijkstra;
    opts.calibratedDurations = true;
    return opts;
}

HwQubit
bestAttachedLocation(
    const Machine &machine,
    const std::vector<std::pair<HwQubit, int>> &placed_neighbors,
    const std::vector<bool> &used)
{
    HwQubit best = kInvalidQubit;
    double best_cost = std::numeric_limits<double>::infinity();
    double best_ro = -1.0;
    for (HwQubit h = 0; h < machine.numQubits(); ++h) {
        if (used[h])
            continue;
        double cost = 0.0;
        for (const auto &[nbr, weight] : placed_neighbors)
            cost += weight * machine.mostReliablePathCost(h, nbr);
        double ro = machine.cal().readoutReliability(h);
        if (cost < best_cost - 1e-12 ||
            (cost < best_cost + 1e-12 && ro > best_ro)) {
            best_cost = cost;
            best_ro = ro;
            best = h;
        }
    }
    return best;
}

std::vector<HwQubit>
greedyVertexPlacement(const Machine &machine_, const Circuit &prog)
{
    const int n_prog = prog.numQubits();
    const int n_hw = machine_.numQubits();
    if (n_prog > n_hw)
        QC_FATAL("program needs ", n_prog, " qubits but machine has ",
                 n_hw);

    ProgramGraph pg(prog);
    std::vector<HwQubit> layout(n_prog, kInvalidQubit);
    std::vector<bool> used(n_hw, false);

    // Seed: the heaviest program qubit goes to the hardware qubit
    // with the best readout among maximal-degree (interior) locations.
    std::vector<ProgQubit> by_degree = pg.sortedQubitsByDegree();
    {
        int max_deg = 0;
        for (HwQubit h = 0; h < n_hw; ++h)
            max_deg = std::max(
                max_deg,
                static_cast<int>(machine_.topo().neighbors(h).size()));
        HwQubit best = kInvalidQubit;
        double best_rel = -1.0;
        for (HwQubit h = 0; h < n_hw; ++h) {
            int deg =
                static_cast<int>(machine_.topo().neighbors(h).size());
            if (deg != max_deg)
                continue;
            double rel = machine_.cal().readoutReliability(h);
            if (rel > best_rel) {
                best_rel = rel;
                best = h;
            }
        }
        ProgQubit first = by_degree.front();
        layout[first] = best;
        used[best] = true;
    }

    // Attach remaining qubits: highest-degree qubit with a placed
    // neighbor first; isolated qubits go to the best free readout.
    int placed_count = 1;
    while (placed_count < n_prog) {
        ProgQubit next = kInvalidQubit;
        bool next_attached = false;
        for (ProgQubit q : by_degree) {
            if (layout[q] != kInvalidQubit)
                continue;
            bool attached = false;
            for (ProgQubit nbr : pg.neighbors(q))
                if (layout[nbr] != kInvalidQubit)
                    attached = true;
            if (attached) {
                next = q;
                next_attached = true;
                break;
            }
            if (next == kInvalidQubit)
                next = q;
        }

        HwQubit loc;
        if (next_attached) {
            std::vector<std::pair<HwQubit, int>> placed_nbrs;
            for (ProgQubit nbr : pg.neighbors(next))
                if (layout[nbr] != kInvalidQubit)
                    placed_nbrs.push_back(
                        {layout[nbr], pg.edgeWeight(next, nbr)});
            loc = bestAttachedLocation(machine_, placed_nbrs, used);
        } else {
            loc = bestFreeReadout(machine_, used);
        }
        QC_ASSERT(loc != kInvalidQubit, "no free hardware qubit left");
        layout[next] = loc;
        used[loc] = true;
        ++placed_count;
    }

    return layout;
}

CompiledProgram
GreedyVMapper::compile(const Circuit &prog)
{
    auto t0 = Clock::now();
    CompiledProgram out =
        finalize(prog, greedyVertexPlacement(machine_, prog),
                 greedySchedulerOptions());
    out.mapperName = name();
    out.compileSeconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    return out;
}

std::vector<HwQubit>
greedyEdgePlacement(const Machine &machine, const Circuit &prog)
{
    const int n_prog = prog.numQubits();
    const int n_hw = machine.numQubits();
    if (n_prog > n_hw)
        QC_FATAL("program needs ", n_prog, " qubits but machine has ",
                 n_hw);

    ProgramGraph pg(prog);
    const Machine &machine_ = machine; // keep body uniform below
    const auto &cal = machine_.cal();
    std::vector<HwQubit> layout(n_prog, kInvalidQubit);
    std::vector<bool> used(n_hw, false);

    // Work queue of edges in descending weight.
    std::vector<ProgramEdge> edges = pg.sortedEdgesByWeight();
    std::vector<bool> done(edges.size(), false);
    size_t remaining = edges.size();

    auto attach_endpoint = [&](ProgQubit q) {
        std::vector<std::pair<HwQubit, int>> placed_nbrs;
        for (ProgQubit nbr : pg.neighbors(q))
            if (layout[nbr] != kInvalidQubit)
                placed_nbrs.push_back({layout[nbr],
                                       pg.edgeWeight(q, nbr)});
        HwQubit loc = bestAttachedLocation(machine_, placed_nbrs, used);
        QC_ASSERT(loc != kInvalidQubit, "no free hardware qubit left");
        layout[q] = loc;
        used[loc] = true;
    };

    while (remaining > 0) {
        // Prefer the heaviest edge with at least one placed endpoint;
        // otherwise start a new component with the heaviest edge.
        size_t pick = edges.size();
        for (size_t i = 0; i < edges.size(); ++i) {
            if (done[i])
                continue;
            bool touched = layout[edges[i].a] != kInvalidQubit ||
                           layout[edges[i].b] != kInvalidQubit;
            if (touched) {
                pick = i;
                break;
            }
            if (pick == edges.size())
                pick = i;
        }
        const ProgramEdge &e = edges[pick];
        done[pick] = true;
        --remaining;

        bool a_placed = layout[e.a] != kInvalidQubit;
        bool b_placed = layout[e.b] != kInvalidQubit;
        if (a_placed && b_placed)
            continue;

        if (!a_placed && !b_placed) {
            // Fresh component: best free hardware edge.
            double best_score =
                -std::numeric_limits<double>::infinity();
            HwQubit best_a = kInvalidQubit, best_b = kInvalidQubit;
            for (const auto &he : machine_.topo().edges()) {
                if (used[he.a] || used[he.b])
                    continue;
                EdgeId id = machine_.topo().edgeBetween(he.a, he.b);
                double score = std::log(cal.cnotReliability(id)) +
                               std::log(cal.readoutReliability(he.a)) +
                               std::log(cal.readoutReliability(he.b));
                if (score > best_score) {
                    best_score = score;
                    best_a = he.a;
                    best_b = he.b;
                }
            }
            QC_ASSERT(best_a != kInvalidQubit,
                      "no free hardware edge for program edge");
            // Orientation: the endpoint with more readouts gets the
            // better readout qubit.
            ProgQubit hi = pg.readoutCount(e.a) >= pg.readoutCount(e.b)
                               ? e.a
                               : e.b;
            ProgQubit lo = hi == e.a ? e.b : e.a;
            if (cal.readoutReliability(best_a) >=
                cal.readoutReliability(best_b)) {
                layout[hi] = best_a;
                layout[lo] = best_b;
            } else {
                layout[hi] = best_b;
                layout[lo] = best_a;
            }
            used[best_a] = used[best_b] = true;
        } else if (a_placed) {
            attach_endpoint(e.b);
        } else {
            attach_endpoint(e.a);
        }
    }

    // Qubits not involved in any CNOT: best free readout locations.
    for (ProgQubit q = 0; q < n_prog; ++q) {
        if (layout[q] != kInvalidQubit)
            continue;
        HwQubit loc = kInvalidQubit;
        double best_rel = -1.0;
        for (HwQubit h = 0; h < n_hw; ++h) {
            if (used[h])
                continue;
            double rel = cal.readoutReliability(h);
            if (rel > best_rel) {
                best_rel = rel;
                loc = h;
            }
        }
        QC_ASSERT(loc != kInvalidQubit, "no free hardware qubit left");
        layout[q] = loc;
        used[loc] = true;
    }

    return layout;
}

CompiledProgram
GreedyEMapper::compile(const Circuit &prog)
{
    auto t0 = Clock::now();
    CompiledProgram out =
        finalize(prog, greedyEdgePlacement(machine_, prog),
                 greedySchedulerOptions());
    out.mapperName = name();
    out.compileSeconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    return out;
}

CompiledProgram
GreedyETrackMapper::compile(const Circuit &prog)
{
    auto t0 = Clock::now();
    CompiledProgram out = finalizeTracked(
        machine_, prog, greedyEdgePlacement(machine_, prog));
    out.mapperName = name();
    out.compileSeconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    return out;
}

} // namespace qc
