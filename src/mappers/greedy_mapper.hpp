/**
 * @file
 * Noise-aware greedy heuristics GreedyV* and GreedyE* (paper Sec. 5).
 *
 * Both precompute Dijkstra most-reliable paths between all hardware
 * qubit pairs (edge weights -log(1 - cnot_err)), place qubits greedily
 * using the program interaction graph, schedule with the
 * earliest-ready-gate-first policy and route along the precomputed
 * paths.
 */

#ifndef QC_MAPPERS_GREEDY_MAPPER_HPP
#define QC_MAPPERS_GREEDY_MAPPER_HPP

#include "mappers/mapper.hpp"

namespace qc {

/**
 * GreedyV*: place program qubits in descending CNOT-degree order; the
 * first qubit goes to the best-readout high-degree hardware location,
 * each subsequent qubit to the free location with the most reliable
 * paths to its already-placed neighbors.
 */
class GreedyVMapper : public Mapper
{
  public:
    explicit GreedyVMapper(const Machine &machine) : Mapper(machine) {}

    std::string name() const override { return "GreedyV*"; }

    CompiledProgram compile(const Circuit &prog) override;
};

/**
 * GreedyE*: place program CNOT edges in descending weight order; the
 * heaviest edge goes to the hardware edge with maximal combined CNOT
 * and readout reliability, then unmapped endpoints are attached to
 * maximize path reliability to their placed neighbors.
 */
class GreedyEMapper : public Mapper
{
  public:
    explicit GreedyEMapper(const Machine &machine) : Mapper(machine) {}

    std::string name() const override { return "GreedyE*"; }

    CompiledProgram compile(const Circuit &prog) override;
};

/**
 * GreedyE*+track: GreedyE*'s initial placement combined with the
 * live-tracking router (one-way SWAP chains, drifting layout) instead
 * of the paper's SWAP-and-restore scheme — the restore-vs-track
 * ablation called out in DESIGN.md.
 */
class GreedyETrackMapper : public Mapper
{
  public:
    explicit GreedyETrackMapper(const Machine &machine)
        : Mapper(machine)
    {
    }

    std::string name() const override { return "GreedyE*+track"; }

    CompiledProgram compile(const Circuit &prog) override;
};

/**
 * Shared placement utility: the free hardware location minimizing the
 * weighted sum of most-reliable-path costs to the placed neighbors of
 * program qubit q (ties: better readout, then lower id). Returns
 * kInvalidQubit if no location is free.
 */
HwQubit bestAttachedLocation(const Machine &machine,
                             const std::vector<std::pair<HwQubit, int>>
                                 &placed_neighbors,
                             const std::vector<bool> &used);

/**
 * GreedyE*'s placement pass alone: heaviest-edge-first placement of
 * the program interaction graph onto the machine (Sec. 5.2). Shared
 * by GreedyEMapper, GreedyETrackMapper and the pipeline's
 * greedy-edge placement pass.
 */
std::vector<HwQubit> greedyEdgePlacement(const Machine &machine,
                                         const Circuit &prog);

/**
 * GreedyV*'s placement pass alone: descending CNOT-degree placement
 * of program qubits (Sec. 5.1). Shared by GreedyVMapper and the
 * pipeline's greedy-vertex placement pass.
 */
std::vector<HwQubit> greedyVertexPlacement(const Machine &machine,
                                           const Circuit &prog);

/** Scheduler setup shared by the greedy heuristics ("Best Path"). */
SchedulerOptions greedySchedulerOptions();

} // namespace qc

#endif // QC_MAPPERS_GREEDY_MAPPER_HPP
