#include "compiler.hpp"

#include "mappers/greedy_mapper.hpp"
#include "mappers/qiskit_baseline.hpp"
#include "mappers/smt_mapper.hpp"
#include "support/logging.hpp"

namespace qc {

const char *
mapperKindName(MapperKind k)
{
    switch (k) {
      case MapperKind::Qiskit: return "Qiskit";
      case MapperKind::TSmt: return "T-SMT";
      case MapperKind::TSmtStar: return "T-SMT*";
      case MapperKind::RSmtStar: return "R-SMT*";
      case MapperKind::GreedyV: return "GreedyV*";
      case MapperKind::GreedyE: return "GreedyE*";
      case MapperKind::GreedyETrack: return "GreedyE*+track";
    }
    QC_PANIC("unknown mapper kind");
}

MapperKind
mapperKindFromName(const std::string &name)
{
    static const struct { const char *n; MapperKind k; } table[] = {
        {"Qiskit", MapperKind::Qiskit},
        {"T-SMT", MapperKind::TSmt},
        {"T-SMT*", MapperKind::TSmtStar},
        {"R-SMT*", MapperKind::RSmtStar},
        {"GreedyV*", MapperKind::GreedyV},
        {"GreedyE*", MapperKind::GreedyE},
        {"GreedyE*+track", MapperKind::GreedyETrack},
    };
    for (const auto &e : table)
        if (name == e.n)
            return e.k;
    QC_FATAL("unknown mapper '", name,
             "' (expected Qiskit, T-SMT, T-SMT*, R-SMT*, GreedyV*, GreedyE* "
             "or GreedyE*+track)");
}

NoiseAdaptiveCompiler::NoiseAdaptiveCompiler(GridTopology topo,
                                             Calibration cal,
                                             CompilerOptions options)
    : NoiseAdaptiveCompiler(
          std::make_shared<const Machine>(std::move(topo),
                                          std::move(cal)),
          options)
{
}

NoiseAdaptiveCompiler::NoiseAdaptiveCompiler(
    std::shared_ptr<const Machine> machine, CompilerOptions options)
    : machine_(std::move(machine)), options_(options)
{
    QC_ASSERT(machine_ != nullptr, "compiler needs a machine snapshot");
    mapper_ = makeMapper(*machine_, options_);
}

CompiledProgram
NoiseAdaptiveCompiler::compile(const Circuit &prog) const
{
    return mapper_->compile(prog);
}

std::string
NoiseAdaptiveCompiler::compileToQasm(const Circuit &prog) const
{
    CompiledProgram compiled = compile(prog);
    return emitQasm(compiled.hwCircuit(prog.numClbits()));
}

std::unique_ptr<Mapper>
NoiseAdaptiveCompiler::makeMapper(const Machine &machine,
                                  const CompilerOptions &options)
{
    switch (options.mapper) {
      case MapperKind::Qiskit:
        return std::make_unique<QiskitBaselineMapper>(machine);
      case MapperKind::GreedyV:
        return std::make_unique<GreedyVMapper>(machine);
      case MapperKind::GreedyE:
        return std::make_unique<GreedyEMapper>(machine);
      case MapperKind::GreedyETrack:
        return std::make_unique<GreedyETrackMapper>(machine);
      case MapperKind::TSmt:
      case MapperKind::TSmtStar:
      case MapperKind::RSmtStar: {
        SmtMapperOptions smt;
        smt.variant = options.mapper == MapperKind::TSmt
                          ? SmtVariant::TSmt
                      : options.mapper == MapperKind::TSmtStar
                          ? SmtVariant::TSmtStar
                          : SmtVariant::RSmtStar;
        smt.policy = options.policy;
        smt.readoutWeight = options.readoutWeight;
        smt.timeoutMs = options.smtTimeoutMs;
        smt.jointScheduling = options.jointScheduling;
        return std::make_unique<SmtMapper>(machine, smt);
      }
    }
    QC_PANIC("unknown mapper kind");
}

} // namespace qc
