#include "compiler.hpp"

#include <cctype>

#include "core/passes.hpp"
#include "mappers/greedy_mapper.hpp"
#include "mappers/qiskit_baseline.hpp"
#include "mappers/smt_mapper.hpp"
#include "support/logging.hpp"

namespace qc {

const char *
mapperKindName(MapperKind k)
{
    switch (k) {
      case MapperKind::Qiskit: return "Qiskit";
      case MapperKind::TSmt: return "T-SMT";
      case MapperKind::TSmtStar: return "T-SMT*";
      case MapperKind::RSmtStar: return "R-SMT*";
      case MapperKind::GreedyV: return "GreedyV*";
      case MapperKind::GreedyE: return "GreedyE*";
      case MapperKind::GreedyETrack: return "GreedyE*+track";
      case MapperKind::Sabre: return "Sabre";
    }
    QC_PANIC("unknown mapper kind");
}

namespace {

/** Lower-case and strip '-', '_', '+' and whitespace. */
std::string
normalizedMapperName(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        if (c == '-' || c == '_' || c == '+' ||
            std::isspace(static_cast<unsigned char>(c)))
            continue;
        out.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
    }
    return out;
}

} // namespace

MapperKind
mapperKindFromName(const std::string &name)
{
    // Canonical names (normalized) plus accepted aliases. There is no
    // unstarred R-SMT variant, so "r-smt" means R-SMT*; the bare
    // greedy names mean the starred (calibrated) heuristics.
    static const struct { const char *n; MapperKind k; } table[] = {
        {"qiskit", MapperKind::Qiskit},
        {"baseline", MapperKind::Qiskit},
        {"tsmt", MapperKind::TSmt},
        {"tsmt*", MapperKind::TSmtStar},
        {"rsmt*", MapperKind::RSmtStar},
        {"rsmt", MapperKind::RSmtStar},
        {"greedyv*", MapperKind::GreedyV},
        {"greedyv", MapperKind::GreedyV},
        {"greedye*", MapperKind::GreedyE},
        {"greedye", MapperKind::GreedyE},
        {"greedye*track", MapperKind::GreedyETrack},
        {"greedyetrack", MapperKind::GreedyETrack},
        {"track", MapperKind::GreedyETrack},
        {"sabre", MapperKind::Sabre},
        {"sabretrack", MapperKind::Sabre},
    };
    const std::string norm = normalizedMapperName(name);
    for (const auto &e : table)
        if (norm == e.n)
            return e.k;

    std::string valid;
    for (MapperKind k : kAllMapperKinds) {
        if (!valid.empty())
            valid += ", ";
        valid += mapperKindName(k);
    }
    QC_FATAL("unknown mapper '", name, "' (valid: ", valid,
             "; matching is case-insensitive and ignores '-', '_', "
             "'+' and spaces, e.g. 'rsmt*' or 'r smt*'; aliases: "
             "r-smt -> R-SMT*, greedyv/greedye -> starred "
             "heuristics, track -> GreedyE*+track, sabre+track -> "
             "Sabre)");
}

const char *
portfolioTieBreakName(PortfolioTieBreak tb)
{
    switch (tb) {
      case PortfolioTieBreak::BundleOrder: return "bundle-order";
      case PortfolioTieBreak::ShortestDuration: return "shortest-duration";
    }
    QC_PANIC("unknown portfolio tie-break");
}

std::vector<MapperKind>
resolvedPortfolioBundles(const PortfolioOptions &options)
{
    if (!options.bundles.empty())
        return options.bundles;
    return std::vector<MapperKind>(std::begin(kAllMapperKinds),
                                   std::end(kAllMapperKinds));
}

Pipeline
standardPipeline(std::shared_ptr<const Machine> machine,
                 const CompilerOptions &options)
{
    PipelineBuilder builder = Pipeline::forMachine(std::move(machine));
    if (options.verify)
        builder.verification(PipelineVerify::On);
    switch (options.mapper) {
      case MapperKind::Qiskit:
        return builder.placement(passes::qiskitBaseline())
            .routing(passes::routeSelection(RoutingPolicy::OneBendPath,
                                            RouteSelect::BestDuration,
                                            true,
                                            options.referenceScheduler))
            .build();
      case MapperKind::GreedyV:
      case MapperKind::GreedyE: {
        // Same "Best Path" routing setup the legacy greedy mappers
        // use — one definition, shared.
        SchedulerOptions greedy = greedySchedulerOptions();
        return builder
            .placement(options.mapper == MapperKind::GreedyV
                           ? passes::greedyVertex()
                           : passes::greedyEdge())
            .routing(passes::routeSelection(greedy.policy,
                                            greedy.select,
                                            greedy.calibratedDurations,
                                            options.referenceScheduler))
            .build();
      }
      case MapperKind::GreedyETrack:
        return builder.placement(passes::greedyEdge())
            .routing(passes::liveRouting())
            .scheduling(passes::trackingScheduling())
            .named("GreedyE*+track")
            .build();
      case MapperKind::Sabre: {
        // Sabre refines its layout against the tracking router's
        // movement model, so the standard bundle schedules with it.
        SabreOptions sabre;
        sabre.iterations = options.sabreIterations;
        sabre.lookahead = options.sabreLookahead;
        return builder.placement(passes::sabrePlacement(sabre))
            .routing(passes::liveRouting())
            .scheduling(passes::trackingScheduling())
            .build();
      }
      case MapperKind::TSmt:
      case MapperKind::TSmtStar:
      case MapperKind::RSmtStar: {
        SmtMapperOptions smt;
        smt.variant = options.mapper == MapperKind::TSmt
                          ? SmtVariant::TSmt
                      : options.mapper == MapperKind::TSmtStar
                          ? SmtVariant::TSmtStar
                          : SmtVariant::RSmtStar;
        smt.policy = options.policy;
        smt.readoutWeight = options.readoutWeight;
        smt.timeoutMs = options.smtTimeoutMs;
        smt.jointScheduling = options.jointScheduling;
        smt = effectiveSmtOptions(smt);
        return builder.placement(passes::smt(smt))
            .routing(passes::routeSelection(
                smt.policy,
                smt.variant == SmtVariant::RSmtStar
                    ? RouteSelect::BestReliability
                    : RouteSelect::BestDuration,
                true, options.referenceScheduler))
            .named(smtMapperDisplayName(smt))
            .build();
      }
    }
    QC_PANIC("unknown mapper kind");
}

NoiseAdaptiveCompiler::NoiseAdaptiveCompiler(Topology topo,
                                             Calibration cal,
                                             CompilerOptions options)
    : NoiseAdaptiveCompiler(
          std::make_shared<const Machine>(std::move(topo),
                                          std::move(cal)),
          options)
{
}

NoiseAdaptiveCompiler::NoiseAdaptiveCompiler(
    std::shared_ptr<const Machine> machine, CompilerOptions options)
    : machine_(std::move(machine)), options_(options),
      // A null snapshot panics inside PipelineBuilder's constructor.
      pipeline_(standardPipeline(machine_, options_))
{
}

CompiledProgram
NoiseAdaptiveCompiler::compile(const Circuit &prog) const
{
    return pipeline_.compile(prog);
}

PipelineResult
NoiseAdaptiveCompiler::compileWithStatus(const Circuit &prog) const
{
    return pipeline_.run(prog);
}

std::string
NoiseAdaptiveCompiler::compileToQasm(const Circuit &prog) const
{
    CompiledProgram compiled = compile(prog);
    return emitQasm(compiled.hwCircuit(prog.numClbits()));
}

std::unique_ptr<Mapper>
NoiseAdaptiveCompiler::makeMapper(const Machine &machine,
                                  const CompilerOptions &options)
{
    switch (options.mapper) {
      case MapperKind::Qiskit:
        return std::make_unique<QiskitBaselineMapper>(machine);
      case MapperKind::GreedyV:
        return std::make_unique<GreedyVMapper>(machine);
      case MapperKind::GreedyE:
        return std::make_unique<GreedyEMapper>(machine);
      case MapperKind::GreedyETrack:
        return std::make_unique<GreedyETrackMapper>(machine);
      case MapperKind::Sabre: {
        SabreOptions sabre;
        sabre.iterations = options.sabreIterations;
        sabre.lookahead = options.sabreLookahead;
        return std::make_unique<SabreMapper>(machine, sabre);
      }
      case MapperKind::TSmt:
      case MapperKind::TSmtStar:
      case MapperKind::RSmtStar: {
        SmtMapperOptions smt;
        smt.variant = options.mapper == MapperKind::TSmt
                          ? SmtVariant::TSmt
                      : options.mapper == MapperKind::TSmtStar
                          ? SmtVariant::TSmtStar
                          : SmtVariant::RSmtStar;
        smt.policy = options.policy;
        smt.readoutWeight = options.readoutWeight;
        smt.timeoutMs = options.smtTimeoutMs;
        smt.jointScheduling = options.jointScheduling;
        return std::make_unique<SmtMapper>(machine, smt);
      }
    }
    QC_PANIC("unknown mapper kind");
}

} // namespace qc
