/**
 * @file
 * Public entry point: the noise-adaptive compiler facade.
 *
 * Wraps machine construction (topology + calibration), the Table 1
 * pass bundles, compilation, and OpenQASM emission behind one object.
 * Since the pass-pipeline redesign this is a thin shim over
 * core/pipeline.hpp: standardPipeline() maps each MapperKind to its
 * placement/routing/scheduling/prediction bundle, and
 * NoiseAdaptiveCompiler::compile runs it with the legacy throwing
 * contract. Use the Pipeline API directly for structured status,
 * per-stage traces, or custom pass combinations.
 */

#ifndef QC_CORE_COMPILER_HPP
#define QC_CORE_COMPILER_HPP

#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "ir/circuit.hpp"
#include "ir/qasm.hpp"
#include "machine/calibration_model.hpp"
#include "machine/machine.hpp"
#include "mappers/mapper.hpp"
#include "route/routing.hpp"

namespace qc {

/** The compiler variants of Table 1, plus post-paper extensions. */
enum class MapperKind {
    Qiskit,   ///< calibration-blind baseline
    TSmt,     ///< SMT, minimize duration, static machine model
    TSmtStar, ///< SMT, minimize duration, calibration-aware
    RSmtStar, ///< SMT, maximize reliability (Eq. 12)
    GreedyV,  ///< greatest-vertex-degree-first heuristic
    GreedyE,  ///< greatest-weighted-edge-first heuristic
    GreedyETrack, ///< GreedyE* placement + live-tracking routing
    Sabre,    ///< SABRE-refined placement + live-tracking routing
};

/** Every MapperKind, in Table 1 order (iteration helper). */
inline constexpr MapperKind kAllMapperKinds[] = {
    MapperKind::Qiskit,       MapperKind::TSmt,
    MapperKind::TSmtStar,     MapperKind::RSmtStar,
    MapperKind::GreedyV,      MapperKind::GreedyE,
    MapperKind::GreedyETrack, MapperKind::Sabre,
};

const char *mapperKindName(MapperKind k);

/**
 * Parse a variant name. Matching is case-insensitive and ignores
 * '-', '_', '+' and spaces, so "R-SMT*", "rsmt*" and "r smt*" all
 * work; common aliases ("r-smt" for R-SMT*, "greedye" for GreedyE*,
 * "track" for GreedyE*+track) are accepted too. Throws FatalError
 * naming the offending input and the full valid list.
 */
MapperKind mapperKindFromName(const std::string &name);

/** Tie-break among portfolio candidates with equal predicted success. */
enum class PortfolioTieBreak {
    BundleOrder,      ///< lower bundle index wins (default)
    ShortestDuration, ///< shorter makespan wins, then bundle order
};

const char *portfolioTieBreakName(PortfolioTieBreak tb);

/**
 * Portfolio-racing configuration (core/portfolio.hpp). Lives inside
 * CompilerOptions so it rides through CompileRequest, the daemon
 * protocol and — crucially — the service's option fingerprint: every
 * knob here changes which program comes back, so every knob is part
 * of the compile-cache key.
 */
struct PortfolioOptions
{
    /** Race `bundles` instead of compiling options.mapper alone. */
    bool enabled = false;

    /** Candidate bundles in priority order; empty = all 8 kinds. */
    std::vector<MapperKind> bundles;

    /**
     * Cap on each SMT candidate's solver budget (ms): its effective
     * smtTimeoutMs becomes min(smtTimeoutMs, deadlineMs), so a hard
     * SMT instance degrades to its timeout fallback (ineligible to
     * win) instead of holding the whole race hostage. 0 = no cap.
     */
    unsigned deadlineMs = 10'000;

    PortfolioTieBreak tieBreak = PortfolioTieBreak::BundleOrder;

    /**
     * Cap on pool workers a portfolio job may borrow for its
     * candidates (besides the slot it occupies). <= 0 = no cap.
     */
    int maxWorkers = 0;
};

/** Top-level compiler configuration. */
struct CompilerOptions
{
    MapperKind mapper = MapperKind::RSmtStar;
    RoutingPolicy policy = RoutingPolicy::OneBendPath;
    double readoutWeight = 0.5;   ///< Eq. 12 omega (R-SMT*)
    unsigned smtTimeoutMs = 60'000;
    bool jointScheduling = true;  ///< full SMT formulation

    /**
     * Schedule with the legacy full-scan list scheduler instead of
     * the indexed incremental one (bit-identical output; see
     * SchedulerOptions::referenceMode). Testing/benchmarking knob.
     */
    bool referenceScheduler = false;

    /** @name Sabre knobs (MapperKind::Sabre only)
     *  Forwarded to SabreOptions; both steer the mapping, so both are
     *  part of the service's compile-cache key (fingerprintOptions).
     *  @{ */
    int sabreIterations = 3; ///< refinement round trips
    int sabreLookahead = 20; ///< decayed lookahead window (CNOTs)
    /** @} */

    /**
     * Force the translation validator (verify/verifier.hpp) on for
     * every compilation regardless of build type — what naqc --verify
     * sets. Execution-only: it cannot change which program a bundle
     * produces, so like referenceScheduler it is deliberately NOT
     * part of the service's compile-cache fingerprint.
     */
    bool verify = false;

    /** Portfolio racing (core/portfolio.hpp); disabled by default. */
    PortfolioOptions portfolio;
};

/**
 * The bundle list a PortfolioOptions actually races: its explicit
 * list, or all of kAllMapperKinds when the list is empty.
 */
std::vector<MapperKind> resolvedPortfolioBundles(
    const PortfolioOptions &options);

/**
 * The Table 1 bundle for `options.mapper` as a pass pipeline:
 * placement (Qiskit baseline / GreedyV* / GreedyE* / SMT variants),
 * route selection, scheduling (list or live-tracking) and
 * reliability prediction, producing bit-identical CompiledPrograms
 * to the legacy monolithic mappers.
 */
Pipeline standardPipeline(std::shared_ptr<const Machine> machine,
                          const CompilerOptions &options);

/**
 * Noise-adaptive compiler for one machine-day.
 *
 * Holds the machine snapshot it compiles against as a shared,
 * immutable view; re-create the compiler per calibration cycle (the
 * paper recompiles daily), or hand it a snapshot from a
 * service::MachinePool so many compilers share one precompute.
 */
class NoiseAdaptiveCompiler
{
  public:
    NoiseAdaptiveCompiler(Topology topo, Calibration cal,
                          CompilerOptions options = {});

    /** Wrap an existing shared machine snapshot (never null). */
    explicit NoiseAdaptiveCompiler(std::shared_ptr<const Machine> machine,
                                   CompilerOptions options = {});

    /**
     * Compile a program circuit to a placed, scheduled executable.
     * Throws FatalError when no program can be produced (the legacy
     * contract); prefer compileWithStatus for structured errors.
     */
    CompiledProgram compile(const Circuit &prog) const;

    /**
     * Compile with the structured status/trace channel: infeasible
     * inputs and solver timeouts come back as CompileStatus values
     * with per-stage traces instead of exceptions.
     */
    PipelineResult compileWithStatus(const Circuit &prog) const;

    /** Compile and emit IBMQ16-ready OpenQASM 2.0 text. */
    std::string compileToQasm(const Circuit &prog) const;

    const Machine &machine() const { return *machine_; }

    /** The shared snapshot this compiler works against. */
    const std::shared_ptr<const Machine> &machineSnapshot() const
    {
        return machine_;
    }

    const CompilerOptions &options() const { return options_; }

    /** The pass pipeline this facade runs. */
    const Pipeline &pipeline() const { return pipeline_; }

    /**
     * Instantiate a legacy monolithic mapper for an externally-owned
     * machine. Kept as the pre-pipeline reference implementation
     * (bench harnesses and the pipeline-equivalence test use it).
     */
    static std::unique_ptr<Mapper> makeMapper(const Machine &machine,
                                              const CompilerOptions
                                                  &options);

  private:
    std::shared_ptr<const Machine> machine_;
    CompilerOptions options_;
    Pipeline pipeline_;
};

} // namespace qc

#endif // QC_CORE_COMPILER_HPP
