/**
 * @file
 * Public entry point: the noise-adaptive compiler facade.
 *
 * Wraps machine construction (topology + calibration), mapper
 * selection (Table 1's variants), compilation, and OpenQASM emission
 * behind one object — the API a downstream user programs against.
 */

#ifndef QC_CORE_COMPILER_HPP
#define QC_CORE_COMPILER_HPP

#include <memory>
#include <string>

#include "ir/circuit.hpp"
#include "ir/qasm.hpp"
#include "machine/calibration_model.hpp"
#include "machine/machine.hpp"
#include "mappers/mapper.hpp"
#include "route/routing.hpp"

namespace qc {

/** The compiler variants of Table 1. */
enum class MapperKind {
    Qiskit,   ///< calibration-blind baseline
    TSmt,     ///< SMT, minimize duration, static machine model
    TSmtStar, ///< SMT, minimize duration, calibration-aware
    RSmtStar, ///< SMT, maximize reliability (Eq. 12)
    GreedyV,  ///< greatest-vertex-degree-first heuristic
    GreedyE,  ///< greatest-weighted-edge-first heuristic
    GreedyETrack, ///< GreedyE* placement + live-tracking routing
};

const char *mapperKindName(MapperKind k);

/** Parse a variant name ("R-SMT*", "GreedyE*", ...); throws on error. */
MapperKind mapperKindFromName(const std::string &name);

/** Top-level compiler configuration. */
struct CompilerOptions
{
    MapperKind mapper = MapperKind::RSmtStar;
    RoutingPolicy policy = RoutingPolicy::OneBendPath;
    double readoutWeight = 0.5;   ///< Eq. 12 omega (R-SMT*)
    unsigned smtTimeoutMs = 60'000;
    bool jointScheduling = true;  ///< full SMT formulation
};

/**
 * Noise-adaptive compiler for one machine-day.
 *
 * Holds the machine snapshot it compiles against as a shared,
 * immutable view; re-create the compiler per calibration cycle (the
 * paper recompiles daily), or hand it a snapshot from a
 * service::MachinePool so many compilers share one precompute.
 */
class NoiseAdaptiveCompiler
{
  public:
    NoiseAdaptiveCompiler(GridTopology topo, Calibration cal,
                          CompilerOptions options = {});

    /** Wrap an existing shared machine snapshot (never null). */
    explicit NoiseAdaptiveCompiler(std::shared_ptr<const Machine> machine,
                                   CompilerOptions options = {});

    /** Compile a program circuit to a placed, scheduled executable. */
    CompiledProgram compile(const Circuit &prog) const;

    /** Compile and emit IBMQ16-ready OpenQASM 2.0 text. */
    std::string compileToQasm(const Circuit &prog) const;

    const Machine &machine() const { return *machine_; }

    /** The shared snapshot this compiler works against. */
    const std::shared_ptr<const Machine> &machineSnapshot() const
    {
        return machine_;
    }

    const CompilerOptions &options() const { return options_; }

    /** Instantiate a mapper for an externally-owned machine. */
    static std::unique_ptr<Mapper> makeMapper(const Machine &machine,
                                              const CompilerOptions
                                                  &options);

  private:
    std::shared_ptr<const Machine> machine_;
    CompilerOptions options_;
    std::unique_ptr<Mapper> mapper_;
};

} // namespace qc

#endif // QC_CORE_COMPILER_HPP
