/**
 * @file
 * The concrete compiler passes: every Table 1 stage as a composable
 * pipeline element, plus factories for fluent PipelineBuilder use.
 *
 * Placement passes wrap the algorithms the monolithic mappers used
 * (greedyVertexPlacement, greedyEdgePlacement, solveSmtMapping), so a
 * pipeline built from them is bit-identical to the corresponding
 * legacy Mapper — tests/test_pipeline.cpp asserts this for all seven
 * MapperKind bundles on the Table 2 benchmark set.
 */

#ifndef QC_CORE_PASSES_HPP
#define QC_CORE_PASSES_HPP

#include <memory>

#include "core/pipeline.hpp"
#include "mappers/sabre_mapper.hpp"
#include "mappers/smt_mapper.hpp"
#include "route/routing.hpp"
#include "sched/tracking_router.hpp"

namespace qc::passes {

/** Qiskit 0.5.7 baseline: lexicographic layout, row-first routes. */
std::unique_ptr<PlacementPass> qiskitBaseline();

/** GreedyV*: descending CNOT-degree placement (paper Sec. 5.1). */
std::unique_ptr<PlacementPass> greedyVertex();

/** GreedyE*: heaviest-edge-first placement (paper Sec. 5.2). */
std::unique_ptr<PlacementPass> greedyEdge();

/**
 * SABRE-style iterative placement refinement: forward/backward
 * routing round trips over the CNOT dependency frontier, keeping the
 * best initial layout by tracking-router predicted success (see
 * mappers/sabre_mapper.hpp). Composes with any routing/scheduling
 * pass; the MapperKind::Sabre bundle pairs it with the live-tracking
 * scheduler.
 */
std::unique_ptr<PlacementPass> sabrePlacement(SabreOptions options = {});

/**
 * SMT placement (T-SMT / T-SMT* / R-SMT*, paper Sec. 4). On solver
 * failure it installs the trivial fallback layout and reports a
 * degraded solver-timeout / infeasible status — the pipeline still
 * produces a runnable program, exactly like SmtMapper did.
 */
std::unique_ptr<PlacementPass> smt(SmtMapperOptions options);

/**
 * Standard route selection: reserve under `policy`; if the placement
 * stage fixed per-gate junctions (SMT solutions, Qiskit's row-first
 * routes) and the policy is 1BP, honor them, otherwise pick routes by
 * `select`. `reference_scheduler` pins the downstream list scheduler
 * to its legacy full-scan implementation (the bit-identity oracle;
 * see SchedulerOptions::referenceMode).
 */
std::unique_ptr<RoutingPass>
routeSelection(RoutingPolicy policy, RouteSelect select,
               bool calibrated_durations = true,
               bool reference_scheduler = false);

/**
 * Marker for schedulers that route live (the tracking router): the
 * routing stage carries no precomputed configuration because routes
 * are chosen while the layout drifts.
 */
std::unique_ptr<RoutingPass> liveRouting();

/** Earliest-ready-gate-first list scheduler with reservations. */
std::unique_ptr<SchedulingPass> listScheduling();

/**
 * Live-tracking scheduler: one-way SWAP chains, drifting layout.
 * Predicts reliability inline (the emitted hardware ops are the
 * ground truth), so the prediction stage becomes a no-op.
 */
std::unique_ptr<SchedulingPass>
trackingScheduling(TrackingOptions options = {});

/**
 * Route-exact reliability prediction: per-CNOT routed EC values and
 * readout reliabilities under the scheduler's own route choices
 * (identical to the legacy Mapper::finalize accounting).
 */
std::unique_ptr<PredictionPass> reliabilityPrediction();

} // namespace qc::passes

#endif // QC_CORE_PASSES_HPP
