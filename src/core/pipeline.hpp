/**
 * @file
 * Staged pass-pipeline compiler API.
 *
 * The paper's compiler is logically a sequence of stages — qubit
 * placement (Table 1's variants), route selection, gate scheduling,
 * reliability prediction — and this header makes that sequence the
 * API: a CompileContext carries the circuit, the machine snapshot and
 * every evolving artifact through a vector of composable passes, a
 * Pipeline runs them with per-stage wall-clock tracing, and failures
 * surface as structured CompileStatus values instead of thrown
 * FatalErrors. Any placement can be paired with any routing policy or
 * scheduler — a scenario matrix instead of Table 1's fixed bundles:
 *
 *   Pipeline pipe = Pipeline::forMachine(snapshot)
 *                       .placement(passes::greedyEdge())
 *                       .routing(passes::routeSelection(
 *                           RoutingPolicy::RectangleReservation,
 *                           RouteSelect::BestDuration))
 *                       .build();
 *   PipelineResult r = pipe.run(circuit);
 *   if (r.hasProgram) use(r.program);  // ok, or a degraded fallback
 *   if (!r.ok())      report(r.status, r.failedStage);
 *
 * The Table 1 bundles are available as standardPipeline() in
 * core/compiler.hpp; NoiseAdaptiveCompiler is a thin shim over them.
 */

#ifndef QC_CORE_PIPELINE_HPP
#define QC_CORE_PIPELINE_HPP

#include <memory>
#include <string>
#include <vector>

#include "ir/circuit.hpp"
#include "machine/machine.hpp"
#include "mappers/mapper.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/schedule.hpp"
#include "support/cancel.hpp"
#include "support/status.hpp"
#include "verify/verifier.hpp"

namespace qc {

/**
 * Whether a pipeline runs the translation validator
 * (verify/verifier.hpp) on every program it assembles. Default defers
 * to defaultVerifyEnabled(): on in Debug builds, off in Release,
 * either way overridable with the QC_VERIFY environment variable.
 */
enum class PipelineVerify {
    Default, ///< follow defaultVerifyEnabled()
    On,      ///< always verify (naqc --verify, CI)
    Off,     ///< never verify
};

/**
 * Everything a compilation carries between passes: the inputs
 * (circuit + machine snapshot) and the artifacts each stage produces
 * for the next one. Passes read what upstream stages wrote and fill
 * in their own slice; Pipeline::run assembles the final
 * CompiledProgram from the completed context.
 */
struct CompileContext
{
    const Circuit *prog = nullptr;
    std::shared_ptr<const Machine> machine;

    /**
     * Cooperative cancellation handle, null when the run is not
     * cancellable. Passes forward it into their expensive inner loops
     * (SMT solver ticks, SABRE iterations, scheduler steps); those
     * unwind with CancelledError, which Pipeline::run maps to
     * CompileStatusCode::Cancelled.
     */
    const CancelToken *cancel = nullptr;

    // --- placement artifacts ---------------------------------------
    std::vector<HwQubit> layout;   ///< program qubit -> hardware qubit
    std::vector<int> junctions;    ///< per-gate one-bend junction, if
                                   ///< the placement stage fixed routes

    // --- routing artifacts -----------------------------------------
    SchedulerOptions schedOptions; ///< realized route-selection config

    // --- scheduling artifacts --------------------------------------
    Schedule schedule;
    Timeslot duration = 0;
    int swapCount = 0;

    // --- prediction artifacts --------------------------------------
    double logReliability = 0.0;
    double predictedSuccess = 0.0;
    bool hasPrediction = false;    ///< a scheduler predicted inline

    // --- solver diagnostics ----------------------------------------
    bool solverOptimal = true;
    std::string solverStatus;

    /**
     * Set by a pass that returns a non-ok status but installed a
     * usable fallback artifact (e.g. the SMT placement's trivial
     * layout on solver timeout): the pipeline records the status but
     * keeps running so callers still get a program.
     */
    bool degraded = false;

    std::string note;              ///< pending trace note (addNote)

    const Circuit &circuit() const { return *prog; }
    const Machine &mach() const { return *machine; }

    /** Append a diagnostic to the current stage's trace note. */
    void addNote(const std::string &text);
};

/**
 * One pipeline stage. Implementations must be deterministic and
 * reusable across circuits (run() is const; all per-compilation state
 * lives in the context).
 */
class Pass
{
  public:
    virtual ~Pass() = default;

    /** Stage role label ("placement", "routing", ...). */
    virtual const char *stage() const = 0;

    /** Pass name within the stage ("GreedyE*", "1BP", "list", ...). */
    virtual std::string name() const = 0;

    /**
     * Run the stage. Return a non-ok status to report failure; set
     * ctx.degraded as well if a fallback artifact was installed and
     * downstream stages should still run. Thrown FatalErrors are
     * mapped to CompileStatus::infeasible, other exceptions to
     * internalError.
     */
    virtual CompileStatus run(CompileContext &ctx) const = 0;
};

/** Marker base: produces ctx.layout (and possibly ctx.junctions). */
class PlacementPass : public Pass
{
  public:
    const char *stage() const override { return "placement"; }
};

/** Marker base: produces ctx.schedOptions. */
class RoutingPass : public Pass
{
  public:
    const char *stage() const override { return "routing"; }

    /**
     * True when this stage produces no precomputed route
     * configuration because the scheduler routes live. The builder
     * requires it to match the scheduling pass's routesLive().
     */
    virtual bool routesLive() const { return false; }
};

/** Marker base: produces ctx.schedule/duration/swapCount. */
class SchedulingPass : public Pass
{
  public:
    const char *stage() const override { return "scheduling"; }

    /**
     * True when this scheduler chooses routes itself (ignoring
     * ctx.schedOptions), like the tracking router.
     */
    virtual bool routesLive() const { return false; }
};

/** Marker base: produces ctx.logReliability/predictedSuccess. */
class PredictionPass : public Pass
{
  public:
    const char *stage() const override { return "prediction"; }
};

/** Outcome of Pipeline::run: structured status + program + traces. */
struct PipelineResult
{
    CompileStatus status;

    /**
     * Stage whose failure produced `status`; empty when ok. Set even
     * when a fallback let the pipeline finish (degraded results).
     */
    std::string failedStage;

    /**
     * The compiled artifact. Semantic fields are valid iff
     * hasProgram; stageTraces are always filled (failed runs keep the
     * traces of the stages that did run, so callers can see where
     * the compilation died and how long it took to get there).
     */
    CompiledProgram program;
    bool hasProgram = false;

    bool ok() const { return status.ok(); }
};

class PipelineBuilder;

/**
 * An immutable, reusable sequence of compiler passes bound to one
 * machine snapshot. Thread-safe for concurrent run() calls (passes
 * are stateless between compilations).
 */
class Pipeline
{
  public:
    /** Start building a pipeline for a shared machine snapshot. */
    static PipelineBuilder forMachine(
        std::shared_ptr<const Machine> machine);

    /**
     * Run every stage, never throwing for user-level failures:
     * infeasible inputs and solver timeouts come back as status
     * values with the traces of the stages that ran.
     *
     * A non-null `cancel` token makes the run cooperatively
     * cancellable: once requestCancel fires, the run stops at the
     * next stage boundary or in-stage checkpoint and returns a
     * CompileStatusCode::Cancelled status with no program (a
     * cancelled run never installs a degraded fallback).
     */
    PipelineResult run(const Circuit &prog,
                       const CancelToken *cancel = nullptr) const;

    /**
     * Legacy-contract convenience: return the program, throwing
     * FatalError when no program could be produced (matches the old
     * Mapper::compile behavior; degraded solver fallbacks still
     * return their program, as SmtMapper always did).
     */
    CompiledProgram compile(const Circuit &prog) const;

    /** Display name, used as CompiledProgram::mapperName. */
    const std::string &name() const { return name_; }

    const Machine &machine() const { return *machine_; }
    const std::shared_ptr<const Machine> &machineSnapshot() const
    {
        return machine_;
    }

    /** The stages in execution order (introspection/tests). */
    const std::vector<std::shared_ptr<const Pass>> &stages() const
    {
        return passes_;
    }

    /** True when run() will verify its assembled programs. */
    bool verifies() const;

    /** True when the scheduling stage chooses routes itself. */
    bool routesLive() const { return routesLive_; }

    /**
     * The verification policy matching this pipeline's scheduler for
     * a given realized route-selection config: live-routing bundles
     * drift the layout and always use calibrated durations; the
     * list-scheduler bundles restore it and follow the routing pass's
     * calibratedDurations choice. Callers re-verifying a program
     * produced elsewhere should prefer VerifyDurations::Auto.
     */
    VerifyOptions verifyOptionsFor(
        const SchedulerOptions &schedOptions) const;

  private:
    friend class PipelineBuilder;
    Pipeline() = default;

    std::shared_ptr<const Machine> machine_;
    std::string name_;
    std::vector<std::shared_ptr<const Pass>> passes_;
    PipelineVerify verify_ = PipelineVerify::Default;
    bool routesLive_ = false; ///< scheduler chooses routes itself
};

/**
 * Fluent pipeline assembly:
 *
 *   Pipeline::forMachine(snapshot)
 *       .placement(passes::smt(opts))
 *       .routing(passes::routeSelection(policy, select))
 *       .scheduling(passes::listScheduling())
 *       .build();
 *
 * placement() is mandatory; the other stages default to the standard
 * combination (one-bend best-reliability routing, list scheduling,
 * route-exact reliability prediction). named() overrides the display
 * name, which otherwise is the placement pass's name.
 */
class PipelineBuilder
{
  public:
    explicit PipelineBuilder(std::shared_ptr<const Machine> machine);

    PipelineBuilder &placement(std::unique_ptr<PlacementPass> pass);
    PipelineBuilder &routing(std::unique_ptr<RoutingPass> pass);
    PipelineBuilder &scheduling(std::unique_ptr<SchedulingPass> pass);
    PipelineBuilder &prediction(std::unique_ptr<PredictionPass> pass);
    PipelineBuilder &named(std::string name);

    /** Translation-validation policy (default: Debug on, CI env). */
    PipelineBuilder &verification(PipelineVerify mode);

    /** Finalize. Throws FatalError if no placement pass was given. */
    Pipeline build();

  private:
    std::shared_ptr<const Machine> machine_;
    std::string name_;
    std::unique_ptr<PlacementPass> placement_;
    std::unique_ptr<RoutingPass> routing_;
    std::unique_ptr<SchedulingPass> scheduling_;
    std::unique_ptr<PredictionPass> prediction_;
    PipelineVerify verify_ = PipelineVerify::Default;
};

} // namespace qc

#endif // QC_CORE_PIPELINE_HPP
