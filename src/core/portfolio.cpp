#include "portfolio.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <numeric>
#include <sstream>

#include "support/logging.hpp"

namespace qc {

namespace {

/** Bundles backed by a Z3 solve (expensive, deadline-capped). */
bool
isSmtKind(MapperKind k)
{
    return k == MapperKind::TSmt || k == MapperKind::TSmtStar ||
           k == MapperKind::RSmtStar;
}

} // namespace

void
SerialPortfolioExecutor::runAll(std::vector<std::function<void()>> tasks)
{
    for (auto &task : tasks)
        task();
}

double
circuitSuccessUpperBound(const Machine &machine, const Circuit &prog)
{
    const auto &topo = machine.topo();
    const auto &cal = machine.cal();

    double best_cnot = 1.0;
    if (topo.numEdges() > 0) {
        best_cnot = 0.0;
        for (int e = 0; e < topo.numEdges(); ++e)
            best_cnot = std::max(best_cnot, cal.cnotReliability(e));
    }
    double best_readout = 1.0;
    if (topo.numQubits() > 0) {
        best_readout = 0.0;
        for (HwQubit h = 0; h < topo.numQubits(); ++h)
            best_readout =
                std::max(best_readout, cal.readoutReliability(h));
    }

    // Same accumulation form and order as both prediction models —
    // exp of a program-order log sum — with every per-gate term
    // replaced by its best-case value (best edge, best readout, zero
    // SWAPs, 1q gates free like the models treat them). Term-by-term
    // domination plus the monotonicity of float addition make this a
    // bound that survives rounding, so comparing a candidate's
    // prediction against it (including for exact equality) is sound.
    double log_ub = 0.0;
    for (size_t i = 0; i < prog.size(); ++i) {
        const Gate &g = prog.gate(i);
        if (g.op == Op::CNOT)
            log_ub += std::log(best_cnot);
        else if (g.isMeasure())
            log_ub += std::log(best_readout);
    }
    return std::exp(log_ub);
}

std::vector<MapperKind>
parsePortfolioBundles(const std::string &text)
{
    std::vector<MapperKind> out;
    std::stringstream ss(text);
    std::string token;
    while (std::getline(ss, token, ',')) {
        const auto first = token.find_first_not_of(" \t");
        const auto last = token.find_last_not_of(" \t");
        if (first == std::string::npos)
            QC_FATAL("empty bundle name in portfolio list '", text,
                     "'");
        token = token.substr(first, last - first + 1);
        const MapperKind k = mapperKindFromName(token);
        for (MapperKind seen : out)
            if (seen == k)
                QC_FATAL("duplicate bundle '", mapperKindName(k),
                         "' in portfolio list '", text, "'");
        out.push_back(k);
    }
    if (out.empty())
        QC_FATAL("portfolio list '", text,
                 "' names no bundles (expected e.g. "
                 "'greedye,sabre,rsmt*')");
    return out;
}

std::vector<size_t>
PortfolioPass::launchOrder(const std::vector<MapperKind> &bundles)
{
    std::vector<size_t> order(bundles.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&bundles](size_t a, size_t b) {
                         return !isSmtKind(bundles[a]) &&
                                isSmtKind(bundles[b]);
                     });
    return order;
}

PortfolioPass::PortfolioPass(std::shared_ptr<const Machine> machine,
                             CompilerOptions options)
    : machine_(std::move(machine)), options_(options),
      bundles_(resolvedPortfolioBundles(options.portfolio))
{
    QC_ASSERT(machine_ != nullptr, "portfolio needs a machine snapshot");
    QC_ASSERT(!bundles_.empty(), "portfolio needs at least one bundle");

    const unsigned deadline = options_.portfolio.deadlineMs;
    pipelines_.reserve(bundles_.size());
    for (MapperKind kind : bundles_) {
        CompilerOptions candidate = options_;
        candidate.mapper = kind;
        // Candidates are plain single bundles; a nested portfolio
        // would recurse forever.
        candidate.portfolio = PortfolioOptions{};
        // The deadline is enforced through the solver's own budget so
        // serial and pooled races see identical SMT semantics.
        if (isSmtKind(kind) && deadline > 0)
            candidate.smtTimeoutMs =
                std::min(candidate.smtTimeoutMs, deadline);
        pipelines_.push_back(standardPipeline(machine_, candidate));
    }
}

PortfolioResult
PortfolioPass::run(const Circuit &prog, PortfolioExecutor *executor,
                   const CancelToken *cancel) const
{
    const size_t n = bundles_.size();

    PortfolioResult out;
    out.upperBound = circuitSuccessUpperBound(*machine_, prog);
    const double ub = out.upperBound;
    const PortfolioTieBreak tiebreak = options_.portfolio.tieBreak;

    struct Slot
    {
        PipelineResult result;
        CancelToken token;
        bool done = false; ///< guarded by mu until runAll returns
        bool ran = false;  ///< pipeline executed (not skipped)
    };
    std::vector<Slot> slots(n);
    std::mutex mu;

    // Cancelling the race cancels every candidate (the guard also
    // fires immediately when `cancel` is already tripped).
    CancelCallbackGuard fanout(cancel, [&slots] {
        for (Slot &s : slots)
            s.token.requestCancel("portfolio cancelled");
    });

    auto isEligible = [](const PipelineResult &r) {
        return r.hasProgram && r.status.ok() && r.program.solverOptimal;
    };

    // Sound early cancellation: a completed eligible candidate i with
    // prediction p provably beats every unfinished j when p > ub (no
    // mapping can predict above the bound), or when p == ub and i
    // precedes j under the BundleOrder tie-break (j can at best tie,
    // then loses the tie-break). Under ShortestDuration a tie at the
    // bound could still be won by a shorter j, so only the strict
    // form applies there. Cancelled candidates therefore never
    // change the selected winner — timing decides how much work the
    // losers burn, never who wins.
    auto noteCompletion = [&](size_t i) {
        std::lock_guard<std::mutex> lock(mu);
        slots[i].done = true;
        const PipelineResult &r = slots[i].result;
        if (!isEligible(r))
            return;
        const double p = r.program.predictedSuccess;
        for (size_t j = 0; j < n; ++j) {
            if (j == i || slots[j].done)
                continue;
            const bool beats =
                p > ub ||
                (p == ub && i < j &&
                 tiebreak == PortfolioTieBreak::BundleOrder);
            if (beats)
                slots[j].token.requestCancel(
                    std::string("outpaced by ") +
                    mapperKindName(bundles_[i]));
        }
    };

    std::vector<std::function<void()>> tasks;
    tasks.reserve(n);
    for (size_t idx : launchOrder(bundles_)) {
        tasks.push_back([this, &prog, &slots, &noteCompletion, idx] {
            Slot &s = slots[idx];
            if (s.token.cancelled()) {
                // Skipped before starting — the serial-mode face of
                // early cancellation.
                s.result.status = CompileStatus::cancelled(
                    "cancelled before start: " + s.token.reason());
                s.result.failedStage = "portfolio";
                s.result.program.mapperName =
                    mapperKindName(bundles_[idx]);
                s.result.program.programName = prog.name();
                noteCompletion(idx);
                return;
            }
            s.ran = true;
            s.result = pipelines_[idx].run(prog, &s.token);
            noteCompletion(idx);
        });
    }

    SerialPortfolioExecutor serial;
    PortfolioExecutor &exec =
        executor != nullptr ? *executor
                            : static_cast<PortfolioExecutor &>(serial);
    exec.runAll(std::move(tasks));

    // Selection over the full array in bundle order, after the race:
    // thread timing cannot change the outcome because ineligible
    // candidates never win and cancellation only killed provable
    // losers.
    auto better = [&](const PipelineResult &a, const PipelineResult &b) {
        if (a.program.predictedSuccess != b.program.predictedSuccess)
            return a.program.predictedSuccess >
                   b.program.predictedSuccess;
        if (tiebreak == PortfolioTieBreak::ShortestDuration &&
            a.program.duration != b.program.duration)
            return a.program.duration < b.program.duration;
        return false; // bundle order: the earlier incumbent stays
    };

    int chosen = -1;
    auto selectEligible = [&] {
        chosen = -1;
        for (size_t i = 0; i < n; ++i) {
            if (!isEligible(slots[i].result))
                continue;
            if (chosen < 0 ||
                better(slots[i].result, slots[chosen].result))
                chosen = static_cast<int>(i);
        }
    };
    selectEligible();

    // Winner verification: selection only commits to a program the
    // translation validator accepts. When the candidate's pipeline
    // already verified inline (Debug builds, QC_VERIFY, --verify) a
    // failure made it ineligible above; otherwise verify the winner
    // here, demote it on rejection, and re-select — deterministic,
    // since verification and bundle-order selection both are.
    std::vector<char> verifyRejected(n, 0);
    while (chosen >= 0 &&
           !pipelines_[static_cast<size_t>(chosen)].verifies()) {
        PipelineResult &r = slots[static_cast<size_t>(chosen)].result;
        VerifyOptions vopts;
        vopts.expectRestoredLayout =
            !pipelines_[static_cast<size_t>(chosen)].routesLive();
        const VerifyReport report =
            ProgramVerifier(*machine_, vopts).verify(prog, r.program);
        if (report.ok())
            break;
        r.status = CompileStatus::verifyFailed(report.toString());
        r.failedStage = "verification";
        verifyRejected[static_cast<size_t>(chosen)] = 1;
        ++out.verifyRejectedCount;
        selectEligible();
    }

    if (chosen < 0) {
        // No eligible candidate: keep the single-bundle degraded
        // contract and return the best program produced at all.
        for (size_t i = 0; i < n; ++i) {
            if (!slots[i].result.hasProgram)
                continue;
            if (chosen < 0 ||
                better(slots[i].result, slots[chosen].result))
                chosen = static_cast<int>(i);
        }
    }

    out.candidates.resize(n);
    for (size_t i = 0; i < n; ++i) {
        const Slot &s = slots[i];
        PortfolioCandidate &c = out.candidates[i];
        c.kind = bundles_[i];
        c.name = mapperKindName(bundles_[i]);
        c.status = s.result.status;
        c.failedStage = s.result.failedStage;
        c.hasProgram = s.result.hasProgram;
        c.eligible = isEligible(s.result);
        c.cancelled =
            s.result.status.code == CompileStatusCode::Cancelled;
        c.verifyRejected = verifyRejected[i] != 0;
        if (s.result.hasProgram) {
            c.predictedSuccess = s.result.program.predictedSuccess;
            c.duration = s.result.program.duration;
            c.swapCount = s.result.program.swapCount;
        }
        c.seconds = s.result.program.compileSeconds;
        c.stageTraces = s.result.program.stageTraces;
        if (s.ran)
            ++out.launchedCount;
        if (c.cancelled)
            ++out.cancelledCount;
    }

    if (chosen >= 0) {
        out.winnerIndex = chosen;
        out.candidates[chosen].winner = true;
        out.best = std::move(slots[chosen].result);
    } else {
        // Nothing produced a program anywhere; surface the first
        // candidate's failure (bundle order, deterministic).
        out.best = std::move(slots[0].result);
    }
    return out;
}

} // namespace qc
