#include "experiment.hpp"

namespace qc {

ExperimentEnv::ExperimentEnv(std::uint64_t seed, Topology topo,
                             CalibrationModelParams params)
    : seed_(seed), topo_(std::move(topo)), model_(topo_, seed, params)
{
}

Machine
ExperimentEnv::machineForDay(int day) const
{
    return Machine(topo_, model_.forDay(day));
}

MeasuredRun
runMeasured(const Machine &machine, const Benchmark &bench,
            const CompilerOptions &options, int trials,
            std::uint64_t exec_seed)
{
    auto mapper = NoiseAdaptiveCompiler::makeMapper(machine, options);
    MeasuredRun run;
    run.benchmark = bench.name;
    run.compiled = mapper->compile(bench.circuit);
    run.mapper = run.compiled.mapperName;

    ExecutionOptions exec;
    exec.trials = trials;
    exec.seed = exec_seed;
    run.execution = runNoisy(machine, run.compiled.schedule,
                             bench.circuit.numClbits(), bench.expected,
                             exec);
    return run;
}

} // namespace qc
