#include "passes.hpp"

#include <cmath>
#include <sstream>

#include "mappers/greedy_mapper.hpp"
#include "mappers/qiskit_baseline.hpp"
#include "solver/smt_model.hpp"
#include "support/logging.hpp"

namespace qc::passes {

namespace {

// ------------------------------------------------------------------ //
// Placement
// ------------------------------------------------------------------ //

/** Lexicographic layout + row-first fixed routes (Qiskit 0.5.7). */
class QiskitPlacementPass : public PlacementPass
{
  public:
    std::string name() const override { return "Qiskit"; }

    CompileStatus run(CompileContext &ctx) const override
    {
        const Circuit &prog = ctx.circuit();
        const int n_prog = prog.numQubits();
        const int n_hw = ctx.mach().numQubits();
        if (n_prog > n_hw)
            return CompileStatus::infeasible(
                "program needs " + std::to_string(n_prog) +
                " qubits but machine has " + std::to_string(n_hw));

        ctx.layout = qiskitTrivialLayout(prog);
        ctx.junctions = qiskitRowFirstJunctions(prog);
        ctx.addNote("lexicographic layout, row-first routes");
        return CompileStatus::success();
    }
};

/** GreedyV* placement (paper Sec. 5.1). */
class GreedyVertexPlacementPass : public PlacementPass
{
  public:
    std::string name() const override { return "GreedyV*"; }

    CompileStatus run(CompileContext &ctx) const override
    {
        ctx.layout = greedyVertexPlacement(ctx.mach(), ctx.circuit());
        return CompileStatus::success();
    }
};

/** GreedyE* placement (paper Sec. 5.2). */
class GreedyEdgePlacementPass : public PlacementPass
{
  public:
    std::string name() const override { return "GreedyE*"; }

    CompileStatus run(CompileContext &ctx) const override
    {
        ctx.layout = greedyEdgePlacement(ctx.mach(), ctx.circuit());
        return CompileStatus::success();
    }
};

/** SMT placement (paper Sec. 4) with the trivial-layout fallback. */
class SmtPlacementPass : public PlacementPass
{
  public:
    explicit SmtPlacementPass(SmtMapperOptions options)
        : options_(effectiveSmtOptions(options))
    {
    }

    std::string name() const override
    {
        return smtMapperDisplayName(options_);
    }

    CompileStatus run(CompileContext &ctx) const override
    {
        const Circuit &prog = ctx.circuit();
        SmtModelOptions model_opts = smtModelOptionsFor(options_, prog);
        model_opts.cancel = ctx.cancel;
        SmtSolution sol = solveSmtMapping(ctx.mach(), prog, model_opts);
        ctx.solverOptimal = sol.optimal;
        ctx.solverStatus = sol.status;
        ctx.addNote("z3: " + sol.status);

        if (sol.feasible) {
            ctx.layout = sol.layout;
            ctx.junctions = sol.junctions;
            return CompileStatus::success();
        }

        // Cancelled solves are not failures to paper over: no
        // fallback program, no degraded flag — the caller raced this
        // candidate and asked it to stop.
        if (sol.failure == SmtFailure::Cancelled)
            return CompileStatus::cancelled(
                "SMT solve cancelled for " + prog.name() +
                (ctx.cancel != nullptr && !ctx.cancel->reason().empty()
                     ? ": " + ctx.cancel->reason()
                     : std::string()));

        // No model at all (hard timeout / unsat): fall back to the
        // trivial placement so callers still get a runnable program,
        // but surface the structured status.
        QC_WARN("SMT solve failed (", sol.status, ") for ",
                prog.name(), "; falling back to trivial layout");
        ctx.layout = qiskitTrivialLayout(prog);
        ctx.junctions.clear();
        ctx.degraded = true;

        std::string msg = "SMT solve failed (" + sol.status + ") for " +
                          prog.name() + "; trivial-layout fallback";
        switch (sol.failure) {
          case SmtFailure::Unsat:
            return CompileStatus::infeasible(std::move(msg));
          case SmtFailure::Error:
            return CompileStatus::internalError(std::move(msg));
          case SmtFailure::Timeout:
          case SmtFailure::None:
            return CompileStatus::solverTimeout(std::move(msg));
          case SmtFailure::Cancelled:
            // Handled above, before the fallback was installed.
            return CompileStatus::cancelled(std::move(msg));
        }
        QC_PANIC("unknown SMT failure kind");
    }

  private:
    SmtMapperOptions options_;
};

// ------------------------------------------------------------------ //
// Routing
// ------------------------------------------------------------------ //

class RouteSelectionPass : public RoutingPass
{
  public:
    RouteSelectionPass(RoutingPolicy policy, RouteSelect select,
                       bool calibrated_durations,
                       bool reference_scheduler)
        : policy_(policy), select_(select),
          calibratedDurations_(calibrated_durations),
          referenceScheduler_(reference_scheduler)
    {
    }

    std::string name() const override
    {
        return routingPolicyName(policy_);
    }

    CompileStatus run(CompileContext &ctx) const override
    {
        SchedulerOptions opts;
        opts.policy = policy_;
        opts.calibratedDurations = calibratedDurations_;
        if (policy_ == RoutingPolicy::OneBendPath &&
            !ctx.junctions.empty()) {
            opts.select = RouteSelect::Fixed;
            opts.fixedJunctions = ctx.junctions;
            ctx.addNote("fixed junctions (from placement)");
        } else {
            opts.select = select_;
            ctx.addNote(routeSelectName(select_));
        }
        opts.referenceMode = referenceScheduler_;
        if (referenceScheduler_)
            ctx.addNote("reference-scan scheduler");
        ctx.schedOptions = std::move(opts);
        return CompileStatus::success();
    }

  private:
    RoutingPolicy policy_;
    RouteSelect select_;
    bool calibratedDurations_;
    bool referenceScheduler_;
};

/** No precomputed routes: the tracking scheduler routes live. */
class LiveRoutingPass : public RoutingPass
{
  public:
    std::string name() const override { return "live"; }

    bool routesLive() const override { return true; }

    CompileStatus run(CompileContext &ctx) const override
    {
        ctx.addNote("routes chosen live by the tracking scheduler");
        return CompileStatus::success();
    }
};

// ------------------------------------------------------------------ //
// Scheduling
// ------------------------------------------------------------------ //

class ListSchedulingPass : public SchedulingPass
{
  public:
    std::string name() const override { return "list"; }

    CompileStatus run(CompileContext &ctx) const override
    {
        const Circuit &prog = ctx.circuit();
        // ListScheduler::run validates the layout itself; an invalid
        // placement surfaces as an infeasible status via the runner.
        ListScheduler scheduler(ctx.mach(), ctx.schedOptions);
        ctx.schedule = scheduler.run(prog, ctx.layout, ctx.cancel);
        ctx.duration = ctx.schedule.makespan;
        ctx.swapCount = ctx.schedule.swapCount();

        std::ostringstream oss;
        oss << "makespan " << ctx.duration << ", " << ctx.swapCount
            << " swaps";
        ctx.addNote(oss.str());
        return CompileStatus::success();
    }
};

class TrackingSchedulingPass : public SchedulingPass
{
  public:
    explicit TrackingSchedulingPass(TrackingOptions options)
        : options_(options)
    {
    }

    std::string name() const override { return "track"; }

    bool routesLive() const override { return true; }

    CompileStatus run(CompileContext &ctx) const override
    {
        TrackingRouter router(ctx.mach(), options_);
        TrackingResult routed =
            router.run(ctx.circuit(), ctx.layout, ctx.cancel);
        ctx.schedule = std::move(routed.schedule);
        ctx.duration = ctx.schedule.makespan;
        ctx.swapCount = routed.swapCount;
        ctx.predictedSuccess = routed.predictedSuccess;
        ctx.logReliability = std::log(routed.predictedSuccess);
        ctx.hasPrediction = true;

        std::ostringstream oss;
        oss << "makespan " << ctx.duration << ", " << ctx.swapCount
            << " one-way swaps";
        ctx.addNote(oss.str());
        return CompileStatus::success();
    }

  private:
    TrackingOptions options_;
};

// ------------------------------------------------------------------ //
// Prediction
// ------------------------------------------------------------------ //

class ReliabilityPredictionPass : public PredictionPass
{
  public:
    std::string name() const override { return "route-exact"; }

    CompileStatus run(CompileContext &ctx) const override
    {
        if (ctx.hasPrediction) {
            ctx.addNote("inline (tracking scheduler)");
            return CompileStatus::success();
        }

        // A fresh ListScheduler with the same options is
        // deterministic, so chooseRoute answers match the routes the
        // scheduling stage emitted.
        ListScheduler scheduler(ctx.mach(), ctx.schedOptions);
        ctx.logReliability = predictLogReliability(
            ctx.mach(), ctx.circuit(), ctx.layout, scheduler);
        ctx.predictedSuccess = std::exp(ctx.logReliability);

        std::ostringstream oss;
        oss << "pred. success " << ctx.predictedSuccess;
        ctx.addNote(oss.str());
        return CompileStatus::success();
    }
};

} // namespace

std::unique_ptr<PlacementPass>
qiskitBaseline()
{
    return std::make_unique<QiskitPlacementPass>();
}

std::unique_ptr<PlacementPass>
greedyVertex()
{
    return std::make_unique<GreedyVertexPlacementPass>();
}

std::unique_ptr<PlacementPass>
greedyEdge()
{
    return std::make_unique<GreedyEdgePlacementPass>();
}

std::unique_ptr<PlacementPass>
sabrePlacement(SabreOptions options)
{
    return std::make_unique<SabrePlacementPass>(options);
}

std::unique_ptr<PlacementPass>
smt(SmtMapperOptions options)
{
    return std::make_unique<SmtPlacementPass>(options);
}

std::unique_ptr<RoutingPass>
routeSelection(RoutingPolicy policy, RouteSelect select,
               bool calibrated_durations, bool reference_scheduler)
{
    return std::make_unique<RouteSelectionPass>(policy, select,
                                                calibrated_durations,
                                                reference_scheduler);
}

std::unique_ptr<RoutingPass>
liveRouting()
{
    return std::make_unique<LiveRoutingPass>();
}

std::unique_ptr<SchedulingPass>
listScheduling()
{
    return std::make_unique<ListSchedulingPass>();
}

std::unique_ptr<SchedulingPass>
trackingScheduling(TrackingOptions options)
{
    return std::make_unique<TrackingSchedulingPass>(options);
}

std::unique_ptr<PredictionPass>
reliabilityPrediction()
{
    return std::make_unique<ReliabilityPredictionPass>();
}

} // namespace qc::passes
