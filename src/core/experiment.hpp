/**
 * @file
 * Shared experiment harness for the bench binaries: a reproducible
 * IBMQ16-like environment (topology + daily calibration stream) and
 * the compile-then-measure loop every figure reproduction uses.
 */

#ifndef QC_CORE_EXPERIMENT_HPP
#define QC_CORE_EXPERIMENT_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/compiler.hpp"
#include "machine/calibration_model.hpp"
#include "sim/executor.hpp"
#include "workloads/benchmarks.hpp"

namespace qc {

/**
 * One reproducible experiment environment.
 *
 * Owns the topology and the synthetic calibration source; hands out
 * per-day Machine views. The default is the paper's IBMQ16 (2x8 grid)
 * with seed-deterministic calibration.
 */
class ExperimentEnv
{
  public:
    explicit ExperimentEnv(std::uint64_t seed,
                           Topology topo = GridTopology::ibmq16(),
                           CalibrationModelParams params = {});

    const Topology &topo() const { return topo_; }
    const CalibrationModel &calibrationModel() const { return model_; }
    std::uint64_t seed() const { return seed_; }

    /** Machine view of calibration day `day` (references topo()). */
    Machine machineForDay(int day) const;

  private:
    std::uint64_t seed_;
    Topology topo_;
    CalibrationModel model_;
};

/** Outcome of compiling + measuring one benchmark with one mapper. */
struct MeasuredRun
{
    std::string benchmark;
    std::string mapper;
    CompiledProgram compiled;
    ExecutionResult execution;
};

/**
 * Compile a benchmark with the mapper described by `options` and
 * measure its success rate over `trials` Monte-Carlo repetitions.
 */
MeasuredRun runMeasured(const Machine &machine, const Benchmark &bench,
                        const CompilerOptions &options, int trials,
                        std::uint64_t exec_seed);

/** Default Z3 budget used by the bench harnesses (milliseconds). */
inline constexpr unsigned kBenchSmtTimeoutMs = 20'000;

/** Default Monte-Carlo trial count used by the bench harnesses. */
inline constexpr int kBenchTrials = 2000;

} // namespace qc

#endif // QC_CORE_EXPERIMENT_HPP
