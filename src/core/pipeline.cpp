#include "pipeline.hpp"

#include <chrono>
#include <utility>

#include "core/passes.hpp"
#include "support/logging.hpp"

namespace qc {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

} // namespace

void
CompileContext::addNote(const std::string &text)
{
    if (!note.empty())
        note += "; ";
    note += text;
}

PipelineBuilder
Pipeline::forMachine(std::shared_ptr<const Machine> machine)
{
    return PipelineBuilder(std::move(machine));
}

PipelineResult
Pipeline::run(const Circuit &prog, const CancelToken *cancel) const
{
    const auto t_run = Clock::now();

    CompileContext ctx;
    ctx.prog = &prog;
    ctx.machine = machine_;
    ctx.cancel = cancel;

    PipelineResult out;
    std::vector<StageTrace> traces;
    traces.reserve(passes_.size());

    for (const auto &pass : passes_) {
        const auto t0 = Clock::now();
        CompileStatus status;
        try {
            // Stage-boundary checkpoint; passes poll inside their own
            // loops for finer grain.
            throwIfCancelled(cancel, "cancelled between stages");
            status = pass->run(ctx);
        } catch (const CancelledError &e) {
            status = CompileStatus::cancelled(e.what());
            // A cancelled run never keeps a fallback artifact: the
            // caller raced it against rivals and wants it gone.
            ctx.degraded = false;
        } catch (const FatalError &e) {
            status = CompileStatus::infeasible(e.what());
            ctx.degraded = false;
        } catch (const std::exception &e) {
            status = CompileStatus::internalError(e.what());
            ctx.degraded = false;
        }

        StageTrace trace;
        trace.stage = pass->stage();
        trace.pass = pass->name();
        trace.seconds = secondsSince(t0);
        trace.note = std::move(ctx.note);
        ctx.note.clear();
        traces.push_back(std::move(trace));

        if (!status.ok()) {
            if (!ctx.degraded) {
                // A hard failure ends the run, and its diagnostic
                // wins over any earlier degraded status — the
                // fallback program that status promised never
                // materialized.
                out.status = status;
                out.failedStage = pass->stage();
                out.program.mapperName = name_;
                out.program.programName = prog.name();
                out.program.stageTraces = std::move(traces);
                out.program.compileSeconds = secondsSince(t_run);
                return out;
            }
            // Degraded: a fallback artifact was installed, downstream
            // stages still run; remember the first such status.
            if (out.status.ok()) {
                out.status = status;
                out.failedStage = pass->stage();
            }
            ctx.degraded = false;
        }
    }

    out.hasProgram = true;
    CompiledProgram &p = out.program;
    p.mapperName = name_;
    p.programName = prog.name();
    p.layout = std::move(ctx.layout);
    p.junctions = ctx.schedOptions.fixedJunctions;
    p.schedule = std::move(ctx.schedule);
    p.duration = ctx.duration;
    p.swapCount = ctx.swapCount;
    p.logReliability = ctx.logReliability;
    p.predictedSuccess = ctx.predictedSuccess;
    p.solverOptimal = ctx.solverOptimal;
    p.solverStatus = ctx.solverStatus;
    p.stageTraces = std::move(traces);

    if (verifies()) {
        const auto t_verify = Clock::now();
        const ProgramVerifier verifier(
            *machine_, verifyOptionsFor(ctx.schedOptions));
        const VerifyReport report = verifier.verify(prog, p);
        if (!report.ok()) {
            // The program stays available (hasProgram) so callers can
            // inspect the rejected artifact, but the status makes it
            // unusable: the service and daemon only cache ok results,
            // and portfolio candidates need ok() to be eligible.
            out.status = CompileStatus::verifyFailed(
                report.toString());
            out.failedStage = "verification";
            StageTrace vtrace;
            vtrace.stage = "verification";
            vtrace.pass = "translation-validate";
            vtrace.seconds = secondsSince(t_verify);
            vtrace.note = std::to_string(report.errorCount()) +
                          " error(s), " +
                          std::to_string(report.warningCount()) +
                          " warning(s)";
            p.stageTraces.push_back(std::move(vtrace));
        }
    }

    p.compileSeconds = secondsSince(t_run);
    return out;
}

bool
Pipeline::verifies() const
{
    switch (verify_) {
      case PipelineVerify::On: return true;
      case PipelineVerify::Off: return false;
      case PipelineVerify::Default: return defaultVerifyEnabled();
    }
    return false;
}

VerifyOptions
Pipeline::verifyOptionsFor(const SchedulerOptions &schedOptions) const
{
    VerifyOptions opts;
    // The list-scheduler bundles route via expandRoute, whose restore
    // SWAPs undo every chain; the tracking router's layout drifts.
    opts.expectRestoredLayout = !routesLive_;
    opts.durations = routesLive_ || schedOptions.calibratedDurations
                         ? VerifyDurations::Calibrated
                         : VerifyDurations::Uniform;
    return opts;
}

CompiledProgram
Pipeline::compile(const Circuit &prog) const
{
    PipelineResult result = run(prog);
    if (!result.hasProgram)
        throw FatalError(result.status.message);
    // Verification failures stay loud under the legacy contract:
    // returning a program the validator rejected would hand callers a
    // silently-broken executable.
    if (result.status.code == CompileStatusCode::VerifyFailed)
        throw FatalError(result.status.message);
    return std::move(result.program);
}

PipelineBuilder::PipelineBuilder(std::shared_ptr<const Machine> machine)
    : machine_(std::move(machine))
{
    QC_ASSERT(machine_ != nullptr, "pipeline needs a machine snapshot");
}

PipelineBuilder &
PipelineBuilder::placement(std::unique_ptr<PlacementPass> pass)
{
    placement_ = std::move(pass);
    return *this;
}

PipelineBuilder &
PipelineBuilder::routing(std::unique_ptr<RoutingPass> pass)
{
    routing_ = std::move(pass);
    return *this;
}

PipelineBuilder &
PipelineBuilder::scheduling(std::unique_ptr<SchedulingPass> pass)
{
    scheduling_ = std::move(pass);
    return *this;
}

PipelineBuilder &
PipelineBuilder::prediction(std::unique_ptr<PredictionPass> pass)
{
    prediction_ = std::move(pass);
    return *this;
}

PipelineBuilder &
PipelineBuilder::named(std::string name)
{
    name_ = std::move(name);
    return *this;
}

PipelineBuilder &
PipelineBuilder::verification(PipelineVerify mode)
{
    verify_ = mode;
    return *this;
}

Pipeline
PipelineBuilder::build()
{
    if (!placement_)
        QC_FATAL("pipeline needs a placement pass "
                 "(PipelineBuilder::placement was never called)");
    if (!routing_)
        routing_ = passes::routeSelection(RoutingPolicy::OneBendPath,
                                          RouteSelect::BestReliability);
    if (!scheduling_)
        scheduling_ = passes::listScheduling();
    if (!prediction_)
        prediction_ = passes::reliabilityPrediction();

    // A live routing stage must feed a live-routing scheduler and
    // vice versa — otherwise the scheduler would run on route
    // configuration that was never produced (or silently ignore one
    // that was), with stage traces describing work that never
    // happened.
    if (routing_->routesLive() != scheduling_->routesLive())
        QC_FATAL("mismatched pipeline: routing pass '",
                 routing_->name(), "' ",
                 routing_->routesLive() ? "routes live"
                                        : "precomputes routes",
                 " but scheduling pass '", scheduling_->name(), "' ",
                 scheduling_->routesLive()
                     ? "chooses routes itself"
                     : "consumes precomputed routes");

    Pipeline pipeline;
    pipeline.machine_ = std::move(machine_);
    pipeline.verify_ = verify_;
    pipeline.routesLive_ = scheduling_->routesLive();
    pipeline.name_ =
        name_.empty() ? placement_->name() : std::move(name_);
    pipeline.passes_.push_back(std::move(placement_));
    pipeline.passes_.push_back(std::move(routing_));
    pipeline.passes_.push_back(std::move(scheduling_));
    pipeline.passes_.push_back(std::move(prediction_));
    return pipeline;
}

} // namespace qc
