/**
 * @file
 * Portfolio racing: compile one job with N candidate mapper bundles,
 * cancel provable losers early, return the best predicted-success
 * candidate — deterministically.
 *
 * The paper's Table 2 shows that which mapping policy wins swings
 * per program and per calibration day; instead of making the user
 * guess, PortfolioPass races every enabled MapperKind bundle over the
 * same circuit and machine snapshot and keeps the one with the best
 * predicted success probability.
 *
 * Determinism is the design center. The winner must not depend on
 * thread timing, so:
 *
 *  - Eligibility is timing-free: a candidate can win iff it produced
 *    a program with an ok status and a deterministic solve
 *    (solverOptimal — timeout-truncated SMT incumbents depend on
 *    wall-clock luck and are excluded; so are degraded fallbacks and
 *    cancelled runs, which produce no program at all).
 *  - Selection happens after the race over the full candidate array
 *    in bundle order: max predicted success, ties broken by
 *    PortfolioTieBreak (default: lower bundle index).
 *  - Early cancellation only kills *provable* losers. A completed
 *    eligible candidate i with predicted success p cancels an
 *    unfinished candidate j only when p > ub — where ub is
 *    circuitSuccessUpperBound, a bound no mapping of this circuit on
 *    this machine can exceed — or when p == ub and i precedes j in
 *    bundle order under the BundleOrder tie-break (j can at best tie
 *    and then loses the tie-break anyway). Both predictions and the
 *    bound are exp(sum-of-logs) accumulated in program-gate order,
 *    so the bound dominates term-by-term.
 *
 * Execution is pluggable so this layer stays free of the service's
 * ThreadPool: a PortfolioExecutor runs the candidate closures, the
 * built-in SerialPortfolioExecutor runs them in launch order on the
 * calling thread (the bit-identity oracle), and the service provides
 * a pool-backed one (service/portfolio_executor.hpp) with a
 * help-while-wait worker budget. Launch order puts the cheap
 * heuristic bundles before the SMT bundles so early completions can
 * cancel expensive solves, and PortfolioOptions::deadlineMs caps each
 * SMT candidate's solver budget identically in serial and parallel
 * runs.
 */

#ifndef QC_CORE_PORTFOLIO_HPP
#define QC_CORE_PORTFOLIO_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/compiler.hpp"
#include "core/pipeline.hpp"
#include "support/cancel.hpp"

namespace qc {

/** One raced bundle's outcome, win or lose. */
struct PortfolioCandidate
{
    MapperKind kind = MapperKind::Qiskit;
    std::string name;           ///< mapperKindName(kind)
    CompileStatus status;
    std::string failedStage;    ///< empty when ok
    bool hasProgram = false;
    bool eligible = false;      ///< could this candidate win?
    bool winner = false;
    bool cancelled = false;     ///< status.code == Cancelled
    bool verifyRejected = false; ///< won selection, failed validation
    double predictedSuccess = 0.0; ///< valid iff hasProgram
    Timeslot duration = 0;         ///< valid iff hasProgram
    int swapCount = 0;             ///< valid iff hasProgram
    double seconds = 0.0;          ///< candidate wall-clock
    std::vector<StageTrace> stageTraces;
};

/** Outcome of one portfolio race. */
struct PortfolioResult
{
    /**
     * The winning candidate's pipeline result. When no candidate was
     * eligible, the best degraded program (same comparator) or — with
     * no program anywhere — the first candidate's failure, so callers
     * see the same ok/degraded/failed contract as a single bundle.
     */
    PipelineResult best;

    int winnerIndex = -1; ///< into candidates; -1 = nothing usable
    std::vector<PortfolioCandidate> candidates;

    int launchedCount = 0;  ///< candidates whose pipeline actually ran
    int cancelledCount = 0; ///< cancelled (incl. skipped before start)

    /**
     * Would-be winners the translation validator rejected before
     * selection committed (each demoted deterministically, the next
     * best candidate re-selected in bundle order).
     */
    int verifyRejectedCount = 0;

    /** circuitSuccessUpperBound for this race (diagnostic). */
    double upperBound = 0.0;

    bool ok() const { return best.ok(); }
};

/**
 * Runs the candidate closures to completion. Implementations may run
 * them concurrently but must not return before every closure has
 * finished. Closures are self-contained and never enqueue more work.
 */
class PortfolioExecutor
{
  public:
    virtual ~PortfolioExecutor() = default;
    virtual void runAll(std::vector<std::function<void()>> tasks) = 0;
};

/** In-order execution on the calling thread (bit-identity oracle). */
class SerialPortfolioExecutor final : public PortfolioExecutor
{
  public:
    void runAll(std::vector<std::function<void()>> tasks) override;
};

/**
 * An upper bound on the predicted success probability any mapping of
 * `prog` on `machine` can report: every CNOT at the machine's best
 * edge reliability, every measurement at its best readout
 * reliability, zero SWAPs — accumulated exp(sum-of-logs) in program
 * order, the same form both prediction models use, so no real
 * mapping's prediction exceeds it.
 */
double circuitSuccessUpperBound(const Machine &machine,
                                const Circuit &prog);

/**
 * Parse a comma-separated bundle list ("greedye,sabre,rsmt*") with
 * mapperKindFromName's lenient matching. Throws FatalError on an
 * unknown name, a duplicate kind, or an empty list.
 */
std::vector<MapperKind> parsePortfolioBundles(const std::string &text);

/**
 * The racing engine. Construction prebuilds one standardPipeline per
 * enabled bundle (options.portfolio decides the list; options.mapper
 * is ignored); run() races them and selects deterministically.
 * Thread-safe for concurrent run() calls, like Pipeline.
 */
class PortfolioPass
{
  public:
    PortfolioPass(std::shared_ptr<const Machine> machine,
                  CompilerOptions options);

    /**
     * Race every bundle over `prog`.
     *
     * @param executor null = SerialPortfolioExecutor
     * @param cancel   cancels the whole race (all candidates)
     */
    PortfolioResult run(const Circuit &prog,
                        PortfolioExecutor *executor = nullptr,
                        const CancelToken *cancel = nullptr) const;

    const std::vector<MapperKind> &bundles() const { return bundles_; }

    /**
     * Candidate indices in launch order: cheap heuristics first, SMT
     * bundles last, stable within each class.
     */
    static std::vector<size_t> launchOrder(
        const std::vector<MapperKind> &bundles);

  private:
    std::shared_ptr<const Machine> machine_;
    CompilerOptions options_;
    std::vector<MapperKind> bundles_;
    std::vector<Pipeline> pipelines_; ///< one per bundle
};

} // namespace qc

#endif // QC_CORE_PORTFOLIO_HPP
