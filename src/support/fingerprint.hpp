/**
 * @file
 * Order-sensitive 64-bit fingerprinting (FNV-1a) for cache keys.
 *
 * The compile service keys its machine-snapshot pool and result cache
 * by content fingerprints of circuits, calibration snapshots and
 * compiler options. Fingerprints are deterministic across runs and
 * platforms (fixed-width little-endian mixing), so cache keys are
 * stable for persisted or distributed caches later.
 *
 * Not cryptographic: collisions are astronomically unlikely for the
 * workloads here but an adversary could construct them.
 */

#ifndef QC_SUPPORT_FINGERPRINT_HPP
#define QC_SUPPORT_FINGERPRINT_HPP

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace qc {

/**
 * Incremental FNV-1a hasher.
 *
 * @code
 *   Fingerprint fp;
 *   fp.mix(circuit.numQubits()).mix(circuit.name());
 *   std::uint64_t key = fp.value();
 * @endcode
 */
class Fingerprint
{
  public:
    /** Mix raw bytes, one FNV-1a step per byte. */
    Fingerprint &mixBytes(const void *data, std::size_t n);

    /** Mix a 64-bit value (little-endian byte order). */
    Fingerprint &mix(std::uint64_t v);

    Fingerprint &mix(std::int64_t v)
    {
        return mix(static_cast<std::uint64_t>(v));
    }

    Fingerprint &mix(int v)
    {
        return mix(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(v)));
    }

    Fingerprint &mix(bool v) { return mix(std::uint64_t{v ? 1u : 0u}); }

    /** Mix a double by bit pattern (distinguishes -0.0 from +0.0). */
    Fingerprint &mix(double v);

    /** Mix a string, length-prefixed so "ab","c" != "a","bc". */
    Fingerprint &mix(const std::string &s);

    /** Mix a numeric vector, length-prefixed. */
    template <typename T>
    Fingerprint &
    mixVector(const std::vector<T> &v)
    {
        mix(static_cast<std::uint64_t>(v.size()));
        for (const T &x : v)
            mix(x);
        return *this;
    }

    /** The current digest. */
    std::uint64_t value() const { return state_; }

  private:
    // FNV-1a 64-bit offset basis.
    std::uint64_t state_ = 14695981039346656037ull;
};

} // namespace qc

#endif // QC_SUPPORT_FINGERPRINT_HPP
