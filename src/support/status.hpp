/**
 * @file
 * Structured compile status and per-stage tracing.
 *
 * CompileStatus is the API-level failure channel of the pass
 * pipeline: instead of throwing FatalError across the public API,
 * Pipeline::run classifies every outcome as ok / infeasible /
 * solver-timeout / internal-error with a human-readable message.
 * StageTrace records what each pipeline stage did and how long it
 * took; a vector of them rides on every CompiledProgram so services
 * and the CLI can show where time (or a failure) went.
 *
 * Lives in support/ so every layer — mappers, core, service — can
 * attach them without upward includes.
 */

#ifndef QC_SUPPORT_STATUS_HPP
#define QC_SUPPORT_STATUS_HPP

#include <string>
#include <utility>
#include <vector>

namespace qc {

/** Outcome classification of one compilation. */
enum class CompileStatusCode {
    Ok,            ///< a program was produced normally
    Infeasible,    ///< the input cannot be compiled (e.g. too many qubits)
    SolverTimeout, ///< the solver exhausted its budget without a model
    InternalError, ///< unexpected failure (library or solver bug)
    Cancelled,     ///< a CancelToken stopped the run (portfolio loser)
    VerifyFailed,  ///< the translation validator rejected the output
};

const char *compileStatusCodeName(CompileStatusCode code);

/** Structured result status: a code plus a diagnostic message. */
struct CompileStatus
{
    CompileStatusCode code = CompileStatusCode::Ok;
    std::string message;

    bool ok() const { return code == CompileStatusCode::Ok; }

    static CompileStatus success() { return {}; }
    static CompileStatus infeasible(std::string msg)
    {
        return {CompileStatusCode::Infeasible, std::move(msg)};
    }
    static CompileStatus solverTimeout(std::string msg)
    {
        return {CompileStatusCode::SolverTimeout, std::move(msg)};
    }
    static CompileStatus internalError(std::string msg)
    {
        return {CompileStatusCode::InternalError, std::move(msg)};
    }
    static CompileStatus cancelled(std::string msg)
    {
        return {CompileStatusCode::Cancelled, std::move(msg)};
    }
    static CompileStatus verifyFailed(std::string msg)
    {
        return {CompileStatusCode::VerifyFailed, std::move(msg)};
    }
};

/** What one pipeline stage did: name, wall time, diagnostics. */
struct StageTrace
{
    std::string stage;   ///< role: "placement", "routing", ...
    std::string pass;    ///< pass name, e.g. "GreedyE*", "1BP", "list"
    double seconds = 0.0;
    std::string note;    ///< pass-specific diagnostic, may be empty
};

/** Sum of stage wall times (the pipeline's compile time). */
double totalStageSeconds(const std::vector<StageTrace> &traces);

} // namespace qc

#endif // QC_SUPPORT_STATUS_HPP
