#include "fingerprint.hpp"

namespace qc {

namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ull;

} // namespace

Fingerprint &
Fingerprint::mixBytes(const void *data, std::size_t n)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        state_ ^= bytes[i];
        state_ *= kFnvPrime;
    }
    return *this;
}

Fingerprint &
Fingerprint::mix(std::uint64_t v)
{
    unsigned char bytes[8];
    for (int i = 0; i < 8; ++i)
        bytes[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xff);
    return mixBytes(bytes, sizeof(bytes));
}

Fingerprint &
Fingerprint::mix(double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    return mix(bits);
}

Fingerprint &
Fingerprint::mix(const std::string &s)
{
    mix(static_cast<std::uint64_t>(s.size()));
    return mixBytes(s.data(), s.size());
}

} // namespace qc
