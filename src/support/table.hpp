/**
 * @file
 * ASCII table printer used by the bench harnesses to render
 * paper-style tables and figure series.
 */

#ifndef QC_SUPPORT_TABLE_HPP
#define QC_SUPPORT_TABLE_HPP

#include <iosfwd>
#include <string>
#include <vector>

namespace qc {

/**
 * Column-aligned ASCII table.
 *
 * Usage:
 * @code
 *   Table t({"Benchmark", "Qiskit", "R-SMT*"});
 *   t.addRow({"BV4", "0.31", "0.78"});
 *   t.print(std::cout);
 * @endcode
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append one row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Render with column alignment and a header rule. */
    void print(std::ostream &os) const;

    size_t numRows() const { return rows_.size(); }

    /** Format a double with the given precision. */
    static std::string fmt(double v, int precision = 3);

    /** Format an integer. */
    static std::string fmt(long long v);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace qc

#endif // QC_SUPPORT_TABLE_HPP
