/**
 * @file
 * Cooperative cancellation for long-running compilations.
 *
 * A CancelToken is a copyable handle to shared cancellation state.
 * The requesting side calls requestCancel(reason) once; the working
 * side polls cancelled() at its natural step boundaries (SMT solver
 * ticks, SABRE iteration boundaries, scheduler commit steps) and
 * unwinds with CancelledError, which Pipeline::run maps to the
 * structured CompileStatusCode::Cancelled — never a hang, never an
 * uncaught throw across the public API.
 *
 * Pure polling cannot stop a thread that is parked inside a foreign
 * library call, so tokens also carry cancel callbacks: registering
 * one (see CancelCallbackGuard) lets e.g. the SMT placement hook
 * z3::context::interrupt() so an in-flight solver check returns
 * promptly. Callbacks run on the *requesting* thread, at most once,
 * and fire immediately when registering on an already-cancelled
 * token.
 *
 * Lives in support/ so every layer — solver, mappers, sched, core,
 * service — can poll one token without upward includes.
 */

#ifndef QC_SUPPORT_CANCEL_HPP
#define QC_SUPPORT_CANCEL_HPP

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace qc {

/**
 * Thrown by cooperative workers when their token is cancelled.
 * Deliberately NOT a FatalError: Pipeline::run catches it separately
 * and classifies the run as CompileStatusCode::Cancelled.
 */
class CancelledError : public std::runtime_error
{
  public:
    explicit CancelledError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/**
 * Copyable handle to shared cancellation state. Copies observe the
 * same flag; the default constructor allocates fresh (uncancelled)
 * state. All members are safe to call concurrently.
 */
class CancelToken
{
  public:
    CancelToken();

    /**
     * Flip the flag and run every registered callback. Idempotent:
     * only the first call's reason sticks and callbacks run at most
     * once. Callbacks execute on the calling thread.
     */
    void requestCancel(const std::string &reason) const;

    /** Has cancellation been requested? Cheap enough for hot loops. */
    bool cancelled() const
    {
        return state_->flag.load(std::memory_order_acquire);
    }

    /** First requestCancel's reason; empty while not cancelled. */
    std::string reason() const;

    /**
     * Register a callback to run when cancellation is requested.
     * Fires immediately (on this thread) if the token is already
     * cancelled. Returns an id for removeCallback; prefer the RAII
     * CancelCallbackGuard. The callback must be safe to invoke from
     * another thread and must not touch the token it hangs off.
     */
    std::uint64_t onCancel(std::function<void()> fn) const;

    /** Deregister; safe if the callback already ran or never existed. */
    void removeCallback(std::uint64_t id) const;

    /** Throw CancelledError(context + reason) if cancelled. */
    void throwIfCancelled(const char *context) const;

  private:
    struct State
    {
        std::atomic<bool> flag{false};
        mutable std::mutex mu;
        std::string reason;                                // mu
        std::map<std::uint64_t, std::function<void()>> callbacks; // mu
        std::uint64_t nextId = 1;                          // mu
    };
    std::shared_ptr<State> state_;
};

/**
 * Poll helper for the pervasive `const CancelToken *` parameter
 * convention: a null token can never be cancelled.
 */
inline bool
isCancelled(const CancelToken *token)
{
    return token != nullptr && token->cancelled();
}

/** Throw CancelledError if a (possibly null) token is cancelled. */
void throwIfCancelled(const CancelToken *token, const char *context);

/**
 * RAII registration of a cancel callback: registers on construction
 * (no-op for a null token), deregisters on destruction. Used to
 * scope e.g. a z3 interrupt hook to exactly one solver call.
 */
class CancelCallbackGuard
{
  public:
    CancelCallbackGuard(const CancelToken *token,
                        std::function<void()> fn);
    ~CancelCallbackGuard();

    CancelCallbackGuard(const CancelCallbackGuard &) = delete;
    CancelCallbackGuard &operator=(const CancelCallbackGuard &) = delete;

  private:
    const CancelToken *token_ = nullptr;
    std::uint64_t id_ = 0;
};

} // namespace qc

#endif // QC_SUPPORT_CANCEL_HPP
