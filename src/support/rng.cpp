#include "rng.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

namespace qc {

namespace {

/** Mix a base seed with a stream name, splitmix-style. */
std::uint64_t
mixSeed(std::uint64_t seed, const std::string &stream)
{
    std::uint64_t h = seed ^ 0x9e3779b97f4a7c15ULL;
    for (unsigned char c : stream) {
        h ^= c;
        h *= 0xff51afd7ed558ccdULL;
        h ^= h >> 33;
    }
    return h;
}

} // namespace

Rng::Rng(std::uint64_t seed, const std::string &stream)
    : engine_(mixSeed(seed, stream))
{
}

double
Rng::uniform()
{
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double
Rng::uniform(double lo, double hi)
{
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

int
Rng::uniformInt(int lo, int hi)
{
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
}

double
Rng::normal()
{
    return std::normal_distribution<double>(0.0, 1.0)(engine_);
}

double
Rng::normal(double mean, double stddev)
{
    return std::normal_distribution<double>(mean, stddev)(engine_);
}

double
Rng::lognormalClamped(double median, double sigma, double lo, double hi)
{
    double v = median * std::exp(normal(0.0, sigma));
    return std::clamp(v, lo, hi);
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

} // namespace qc
