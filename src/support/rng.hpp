/**
 * @file
 * Deterministic random-number utilities.
 *
 * Every stochastic component of the library (synthetic calibration,
 * Monte-Carlo noise trials, random-circuit generation) draws from a
 * named Rng so experiments are exactly reproducible.
 */

#ifndef QC_SUPPORT_RNG_HPP
#define QC_SUPPORT_RNG_HPP

#include <cstdint>
#include <random>
#include <string>

namespace qc {

/**
 * Thin deterministic wrapper around std::mt19937_64.
 *
 * Construction from (seed, stream-name) decorrelates independent
 * consumers that share a user-level seed.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : engine_(seed) {}

    /** Derive a stream-specific seed by hashing the stream name. */
    Rng(std::uint64_t seed, const std::string &stream);

    /** Uniform real in [0, 1). */
    double uniform();

    /** Uniform real in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    int uniformInt(int lo, int hi);

    /** Standard normal draw. */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /**
     * Log-normal draw clamped to [lo, hi].
     *
     * @param median median of the unclamped distribution
     * @param sigma  standard deviation of the underlying normal
     */
    double lognormalClamped(double median, double sigma, double lo,
                            double hi);

    /** Bernoulli draw with probability p of true. */
    bool bernoulli(double p);

    /** Access the raw engine (for std::shuffle and friends). */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace qc

#endif // QC_SUPPORT_RNG_HPP
