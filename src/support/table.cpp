#include "table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "logging.hpp"

namespace qc {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
    QC_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    QC_ASSERT(cells.size() == headers_.size(),
              "row arity ", cells.size(), " != header arity ",
              headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emitRow = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << "  " << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c];
        }
        os << "\n";
    };

    emitRow(headers_);
    for (size_t c = 0; c < headers_.size(); ++c)
        os << "  " << std::string(widths[c], '-');
    os << "\n";
    for (const auto &row : rows_)
        emitRow(row);
}

std::string
Table::fmt(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

std::string
Table::fmt(long long v)
{
    return std::to_string(v);
}

} // namespace qc
