#include "stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "logging.hpp"

namespace qc {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    double m = mean(xs);
    double s = 0.0;
    for (double x : xs)
        s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(xs.size()));
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs) {
        QC_ASSERT(x > 0.0, "geomean requires positive samples");
        s += std::log(x);
    }
    return std::exp(s / static_cast<double>(xs.size()));
}

double
spreadRatio(const std::vector<double> &xs)
{
    if (xs.empty())
        return 1.0;
    double lo = minOf(xs);
    double hi = maxOf(xs);
    QC_ASSERT(lo > 0.0, "spreadRatio requires positive samples");
    return hi / lo;
}

double
minOf(const std::vector<double> &xs)
{
    double m = std::numeric_limits<double>::infinity();
    for (double x : xs)
        m = std::min(m, x);
    return m;
}

double
maxOf(const std::vector<double> &xs)
{
    double m = -std::numeric_limits<double>::infinity();
    for (double x : xs)
        m = std::max(m, x);
    return m;
}

double
median(std::vector<double> xs)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    size_t n = xs.size();
    if (n % 2 == 1)
        return xs[n / 2];
    return 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

double
binomialHalfWidth(double p, int trials, double z)
{
    if (trials <= 0)
        return 1.0;
    double n = static_cast<double>(trials);
    return z * std::sqrt(std::max(p * (1.0 - p), 1e-12) / n);
}

} // namespace qc
