/**
 * @file
 * Command-line argument helpers shared by the tool binaries.
 *
 * Every numeric flag used to go through bare std::stoi/std::stod,
 * which throw std::invalid_argument / std::out_of_range straight out
 * of main() on input like `--jobs foo` — an uncaught-exception abort
 * instead of a diagnostic. These helpers are the hardened seam: a
 * strict full-token parse (no trailing garbage, range-checked) that
 * reports failures as a UsageError carrying the conventional exit
 * code 2, so `naqc --jobs foo` prints one line and exits 2. Living in
 * support/ makes the seam unit-testable without spawning the binary.
 */

#ifndef QC_SUPPORT_CLI_HPP
#define QC_SUPPORT_CLI_HPP

#include <cstdint>
#include <string>

#include "support/logging.hpp"

namespace qc::cli {

/**
 * Invalid command-line usage. Derives from FatalError so generic
 * handlers still catch it; carries the exit code (2, the usage-error
 * convention) for handlers that distinguish bad flags from runtime
 * failures.
 */
class UsageError : public FatalError
{
  public:
    explicit UsageError(const std::string &msg, int exit_code = 2)
        : FatalError(msg), exitCode_(exit_code)
    {
    }

    int exitCode() const { return exitCode_; }

  private:
    int exitCode_;
};

/**
 * @name Strict full-token conversions
 *
 * The low-level recipe shared by every hardened parse site (CLI
 * flags here, calibration fields in machine/calibration_io.cpp):
 * the whole token must convert and stay in range. No diagnostics —
 * callers attach their own (flag name, file/line/column).
 * @{
 */

/** Base-10 integer; false on garbage, trailing junk, or overflow. */
bool strictParseLongLong(const std::string &text, long long &out);

/** Finite double; false on garbage, trailing junk, inf/nan, ERANGE. */
bool strictParseDouble(const std::string &text, double &out);

/** @} */

/**
 * @name Checked flag-value parsers
 *
 * Each parses the *entire* token (leading/trailing junk rejected,
 * "12x" is not 12) and range-checks against the destination type,
 * throwing UsageError("invalid value for --flag: 'text'") otherwise.
 * @{
 */

/** Signed int flag value. */
int parseIntFlag(const std::string &flag, const std::string &text);

/** Unsigned 64-bit flag value (e.g. seeds). */
std::uint64_t parseUint64Flag(const std::string &flag,
                              const std::string &text);

/** Unsigned 32-bit flag value (e.g. millisecond budgets). */
unsigned parseUnsignedFlag(const std::string &flag,
                           const std::string &text);

/** Finite double flag value. */
double parseDoubleFlag(const std::string &flag,
                       const std::string &text);

/** @} */

} // namespace qc::cli

#endif // QC_SUPPORT_CLI_HPP
