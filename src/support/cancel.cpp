#include "cancel.hpp"

namespace qc {

CancelToken::CancelToken() : state_(std::make_shared<State>()) {}

void
CancelToken::requestCancel(const std::string &reason) const
{
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->flag.load(std::memory_order_relaxed))
        return; // already cancelled; first reason wins
    state_->reason = reason;
    state_->flag.store(true, std::memory_order_release);
    // Callbacks run under the lock on purpose: removeCallback (the
    // CancelCallbackGuard destructor) then blocks until an in-flight
    // callback finishes, so whatever the callback pokes (e.g. a z3
    // context) provably outlives the call. The documented price:
    // callbacks must never touch their own token.
    for (auto &entry : state_->callbacks)
        if (entry.second)
            entry.second();
    state_->callbacks.clear();
}

std::string
CancelToken::reason() const
{
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->reason;
}

std::uint64_t
CancelToken::onCancel(std::function<void()> fn) const
{
    {
        std::lock_guard<std::mutex> lock(state_->mu);
        if (!state_->flag.load(std::memory_order_relaxed)) {
            const std::uint64_t id = state_->nextId++;
            state_->callbacks.emplace(id, std::move(fn));
            return id;
        }
    }
    // Already cancelled: fire now, on this thread. Id 0 is never
    // allocated, so removeCallback(0) is a harmless no-op.
    if (fn)
        fn();
    return 0;
}

void
CancelToken::removeCallback(std::uint64_t id) const
{
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->callbacks.erase(id);
}

void
CancelToken::throwIfCancelled(const char *context) const
{
    if (!cancelled())
        return;
    std::string msg = context;
    const std::string why = reason();
    if (!why.empty())
        msg += ": " + why;
    throw CancelledError(msg);
}

void
throwIfCancelled(const CancelToken *token, const char *context)
{
    if (token != nullptr)
        token->throwIfCancelled(context);
}

CancelCallbackGuard::CancelCallbackGuard(const CancelToken *token,
                                         std::function<void()> fn)
    : token_(token)
{
    if (token_ != nullptr)
        id_ = token_->onCancel(std::move(fn));
}

CancelCallbackGuard::~CancelCallbackGuard()
{
    if (token_ != nullptr && id_ != 0)
        token_->removeCallback(id_);
}

} // namespace qc
