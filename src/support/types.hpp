/**
 * @file
 * Fundamental type aliases shared across the noise-adaptive compiler.
 */

#ifndef QC_SUPPORT_TYPES_HPP
#define QC_SUPPORT_TYPES_HPP

#include <cstdint>
#include <limits>

namespace qc {

/** Index of a program (logical) qubit within a circuit. */
using ProgQubit = int;

/** Index of a hardware (physical) qubit within a machine topology. */
using HwQubit = int;

/** Index of an undirected coupling edge in a machine topology. */
using EdgeId = int;

/** Discrete machine time, in IBMQ16-style 80 ns timeslots. */
using Timeslot = std::int64_t;

/** Sentinel for "no qubit / unmapped". */
inline constexpr int kInvalidQubit = -1;

/** Sentinel for "no edge". */
inline constexpr EdgeId kInvalidEdge = -1;

/** Duration of one timeslot in nanoseconds (IBMQ16 granularity). */
inline constexpr double kTimeslotNs = 80.0;

} // namespace qc

#endif // QC_SUPPORT_TYPES_HPP
