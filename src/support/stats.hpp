/**
 * @file
 * Small statistics helpers used by the calibration model, experiment
 * harness and benches (means, geomeans, min/max ratios).
 */

#ifndef QC_SUPPORT_STATS_HPP
#define QC_SUPPORT_STATS_HPP

#include <vector>

namespace qc {

/** Arithmetic mean; 0 for an empty input. */
double mean(const std::vector<double> &xs);

/** Population standard deviation; 0 for fewer than two samples. */
double stddev(const std::vector<double> &xs);

/** Geometric mean; requires strictly positive samples. */
double geomean(const std::vector<double> &xs);

/** max/min ratio, the paper's "up to N.Nx variation" metric. */
double spreadRatio(const std::vector<double> &xs);

/** Smallest element; +inf for an empty input. */
double minOf(const std::vector<double> &xs);

/** Largest element; -inf for an empty input. */
double maxOf(const std::vector<double> &xs);

/** Median (by copy-and-sort). */
double median(std::vector<double> xs);

/**
 * Wilson score interval half-width for a binomial success estimate,
 * used to report confidence on Monte-Carlo success rates.
 */
double binomialHalfWidth(double p, int trials, double z = 1.96);

} // namespace qc

#endif // QC_SUPPORT_STATS_HPP
