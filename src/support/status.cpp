#include "status.hpp"

#include "support/logging.hpp"

namespace qc {

const char *
compileStatusCodeName(CompileStatusCode code)
{
    switch (code) {
      case CompileStatusCode::Ok: return "ok";
      case CompileStatusCode::Infeasible: return "infeasible";
      case CompileStatusCode::SolverTimeout: return "solver-timeout";
      case CompileStatusCode::InternalError: return "internal-error";
      case CompileStatusCode::Cancelled: return "cancelled";
      case CompileStatusCode::VerifyFailed: return "verify-failed";
    }
    QC_PANIC("unknown compile status code");
}

double
totalStageSeconds(const std::vector<StageTrace> &traces)
{
    double total = 0.0;
    for (const StageTrace &t : traces)
        total += t.seconds;
    return total;
}

} // namespace qc
