#include "cli.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>

namespace qc::cli {

namespace {

[[noreturn]] void
rejectValue(const std::string &flag, const std::string &text)
{
    throw UsageError("invalid value for " + flag + ": '" + text + "'");
}

/**
 * Full-token conversion guard shared by the strict parsers: strtoll/
 * strtoull/strtod must consume every character without ERANGE (the
 * std::out_of_range case bare std::stoi turned into an abort), and
 * leading whitespace — which the strto* family skips — is rejected.
 */
template <typename T, typename F>
bool
convertFullToken(F convert, const std::string &text, T &out)
{
    if (text.empty() ||
        std::isspace(static_cast<unsigned char>(text.front())))
        return false;
    errno = 0;
    char *end = nullptr;
    out = convert(text.c_str(), &end);
    return errno != ERANGE && end != text.c_str() && *end == '\0';
}

} // namespace

bool
strictParseLongLong(const std::string &text, long long &out)
{
    return convertFullToken<long long>(
        [](const char *s, char **e) { return std::strtoll(s, e, 10); },
        text, out);
}

bool
strictParseDouble(const std::string &text, double &out)
{
    if (text.empty() ||
        std::isspace(static_cast<unsigned char>(text.front())))
        return false;
    char *end = nullptr;
    out = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0')
        return false;
    // No errno check here: strtod sets ERANGE for *underflow* too,
    // where it returns a perfectly representable denormal/zero (a
    // value saveCalibration may legitimately have written). Overflow
    // returns +-HUGE_VAL and is caught by the finite check.
    return std::isfinite(out);
}

int
parseIntFlag(const std::string &flag, const std::string &text)
{
    long long v = 0;
    if (!strictParseLongLong(text, v) ||
        v < std::numeric_limits<int>::min() ||
        v > std::numeric_limits<int>::max())
        rejectValue(flag, text);
    return static_cast<int>(v);
}

std::uint64_t
parseUint64Flag(const std::string &flag, const std::string &text)
{
    if (text.find('-') != std::string::npos)
        rejectValue(flag, text); // strtoull silently negates
    unsigned long long v = 0;
    if (!convertFullToken<unsigned long long>(
            [](const char *s, char **e) {
                return std::strtoull(s, e, 10);
            },
            text, v))
        rejectValue(flag, text);
    return static_cast<std::uint64_t>(v);
}

unsigned
parseUnsignedFlag(const std::string &flag, const std::string &text)
{
    std::uint64_t v = parseUint64Flag(flag, text);
    if (v > std::numeric_limits<unsigned>::max())
        rejectValue(flag, text);
    return static_cast<unsigned>(v);
}

double
parseDoubleFlag(const std::string &flag, const std::string &text)
{
    double v = 0.0;
    if (!strictParseDouble(text, v))
        rejectValue(flag, text);
    return v;
}

} // namespace qc::cli
