/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  — an internal invariant was violated (a library bug); aborts.
 * fatal()  — the user supplied an impossible configuration; throws
 *            qc::FatalError so callers and tests can recover.
 * warn()   — something is suspicious but execution can continue.
 */

#ifndef QC_SUPPORT_LOGGING_HPP
#define QC_SUPPORT_LOGGING_HPP

#include <sstream>
#include <stdexcept>
#include <string>

namespace qc {

/** Exception thrown by fatal(): a user-recoverable configuration error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const std::string &msg);
void warnImpl(const std::string &msg);

/** Fold a mixed argument pack into one string. */
template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

} // namespace detail
} // namespace qc

/** Abort with a message: library invariant broken. */
#define QC_PANIC(...) \
    ::qc::detail::panicImpl(__FILE__, __LINE__, \
                            ::qc::detail::formatMessage(__VA_ARGS__))

/** Throw qc::FatalError: invalid user input or configuration. */
#define QC_FATAL(...) \
    ::qc::detail::fatalImpl(::qc::detail::formatMessage(__VA_ARGS__))

/** Print a warning to stderr and continue. */
#define QC_WARN(...) \
    ::qc::detail::warnImpl(::qc::detail::formatMessage(__VA_ARGS__))

/** Panic unless a library invariant holds. */
#define QC_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            QC_PANIC("assertion failed: " #cond " ", \
                     ::qc::detail::formatMessage(__VA_ARGS__)); \
        } \
    } while (0)

#endif // QC_SUPPORT_LOGGING_HPP
