/**
 * @file
 * Machine = topology + one calibration snapshot + derived tables.
 *
 * Precomputes everything the mappers consume:
 *  - the one-bend-path reliability matrix EC[h1][h2][j] and duration
 *    matrix Delta[h1][h2][j] (paper Sec. 4.3/4.4),
 *  - noise-unaware uniform durations (T-SMT's machine model),
 *  - Dijkstra most-reliable paths with -log(1 - cnot_err) edge weights
 *    (paper Sec. 5, used by the greedy heuristics).
 */

#ifndef QC_MACHINE_MACHINE_HPP
#define QC_MACHINE_MACHINE_HPP

#include <array>
#include <vector>

#include "machine/calibration.hpp"
#include "machine/topology.hpp"
#include "support/types.hpp"

namespace qc {

/**
 * A concrete CNOT route between two hardware qubits.
 *
 * nodes = [control ... target]; the control state is SWAPped along
 * nodes[0..d-1], the CNOT executes on the final edge, and the SWAPs are
 * undone afterwards. Following the paper:
 *  - reliability counts the forward SWAP chain (3 CNOTs per hop) plus
 *    the final CNOT (footnote 3's worked example),
 *  - duration counts the SWAP chain both ways plus the CNOT
 *    (Sec. 4.2's 2*(d-1)*tau_swap + tau_cnot).
 */
struct RoutePath
{
    std::vector<HwQubit> nodes;  ///< control first, target last
    std::vector<EdgeId> edges;   ///< edges between consecutive nodes
    HwQubit junction = kInvalidQubit; ///< bend point (one-bend paths)
    double reliability = 0.0;    ///< EC entry for this route
    Timeslot duration = 0;       ///< Delta entry for this route

    /** Number of SWAPs on the forward leg (edges - 1). */
    int swapCount() const
    {
        return static_cast<int>(edges.size()) - 1;
    }
};

/**
 * Immutable machine view for one calibration day.
 *
 * Mapper-facing tables are all precomputed in the constructor, so
 * lookups during search are O(1). The machine owns its topology and
 * calibration by value: a Machine (or a shared_ptr<const Machine>
 * snapshot, see service/machine_pool.hpp) is fully self-contained and
 * safe to share across threads or outlive its construction context.
 */
class Machine
{
  public:
    Machine(Topology topo, Calibration cal);

    const Topology &topo() const { return topo_; }
    const Calibration &cal() const { return cal_; }
    int numQubits() const { return topo_.numQubits(); }

    /** @name Candidate routes (1BP routing policy)
     *
     * On grids these are the paper's one-bend paths. On non-grid
     * topologies "one bend" has no meaning, so each pair instead
     * carries up to two shortest paths under deterministic
     * lexicographic tie-breaking (smallest-id and largest-id
     * neighbor walks) — the same 1-or-2-candidate shape every
     * consumer (route selection, SMT junction variables, Fixed
     * replay) already handles.
     *  @{ */

    /** Number of distinct candidate routes between c and t (1 or 2). */
    int numOneBendPaths(HwQubit c, HwQubit t) const;

    /** The j-th candidate route, j in [0, numOneBendPaths). */
    const RoutePath &oneBendPath(HwQubit c, HwQubit t, int j) const;

    /** Most reliable one-bend route (R-SMT*'s EC junction choice). */
    const RoutePath &bestReliabilityPath(HwQubit c, HwQubit t) const;

    /** Shortest-duration one-bend route (T-SMT*'s choice). */
    const RoutePath &bestDurationPath(HwQubit c, HwQubit t) const;

    /** max_j EC[c][t][j] — the solver's per-pair reliability bound. */
    double bestPathReliability(HwQubit c, HwQubit t) const;

    /** min_j Delta[c][t][j]. */
    Timeslot bestPathDuration(HwQubit c, HwQubit t) const;

    /** @} */

    /** @name Noise-unaware model (T-SMT)
     *  @{ */

    /**
     * Route duration assuming every CNOT takes the nominal base time:
     * 2*(dist-1)*tau_swap + tau_cnot with tau_swap = 3*tau_cnot.
     */
    Timeslot uniformRouteDuration(int dist) const;

    /** The nominal CNOT duration used by the noise-unaware model. */
    Timeslot uniformCnotDuration() const { return uniformCnotDuration_; }

    /**
     * The noise-unaware coherence bound: 1000 timeslots, the paper's
     * long-term machine average (constraint 4).
     */
    static constexpr Timeslot kStaticCoherenceSlots = 1000;

    /** @} */

    /** @name Dijkstra most-reliable paths (greedy heuristics)
     *  @{ */

    /** Sum of -log(1 - cnot_err) along the most reliable path. */
    double mostReliablePathCost(HwQubit a, HwQubit b) const;

    /** Product of edge reliabilities along the most reliable path. */
    double mostReliablePathReliability(HwQubit a, HwQubit b) const;

    /** Node sequence of the most reliable path from a to b. */
    std::vector<HwQubit> mostReliablePath(HwQubit a, HwQubit b) const;

    /**
     * Route along the Dijkstra most-reliable path, with the same
     * SWAP-forward / CNOT / SWAP-back accounting as one-bend routes.
     */
    RoutePath dijkstraRoute(HwQubit c, HwQubit t) const;

    /** @} */

    /** Hardware qubits sorted by descending readout reliability. */
    std::vector<HwQubit> qubitsByReadoutReliability() const;

    /** Hop-distance shortcut. */
    int distance(HwQubit a, HwQubit b) const
    {
        return topo_.distance(a, b);
    }

  private:
    RoutePath makeRoute(std::vector<HwQubit> nodes, HwQubit junction) const;
    void buildOneBendPaths();
    void buildShortestCandidatePaths();
    void buildDijkstra();

    Topology topo_;
    Calibration cal_;
    Timeslot uniformCnotDuration_;

    // obp_[c * n + t] holds 1 or 2 routes (empty when c == t).
    std::vector<std::vector<RoutePath>> obp_;

    // Dijkstra all-pairs: cost in -log reliability, plus predecessors.
    std::vector<std::vector<double>> djCost_;
    std::vector<std::vector<HwQubit>> djPrev_;
};

} // namespace qc

#endif // QC_MACHINE_MACHINE_HPP
