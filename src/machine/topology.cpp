#include "topology.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "support/logging.hpp"

namespace qc {

GridTopology::GridTopology(int rows, int cols) : rows_(rows), cols_(cols)
{
    if (rows <= 0 || cols <= 0)
        QC_FATAL("grid dimensions must be positive, got ", rows, "x", cols);

    const int n = numQubits();
    neighbors_.assign(n, {});
    edgeLookup_.assign(n, std::vector<EdgeId>(n, kInvalidEdge));

    for (int x = 0; x < rows_; ++x) {
        for (int y = 0; y < cols_; ++y) {
            HwQubit h = qubitAt(x, y);
            if (y + 1 < cols_) {
                HwQubit r = qubitAt(x, y + 1);
                EdgeId id = static_cast<EdgeId>(edges_.size());
                edges_.push_back({h, r});
                edgeLookup_[h][r] = edgeLookup_[r][h] = id;
            }
            if (x + 1 < rows_) {
                HwQubit d = qubitAt(x + 1, y);
                EdgeId id = static_cast<EdgeId>(edges_.size());
                edges_.push_back({h, d});
                edgeLookup_[h][d] = edgeLookup_[d][h] = id;
            }
        }
    }
    for (const auto &e : edges_) {
        neighbors_[e.a].push_back(e.b);
        neighbors_[e.b].push_back(e.a);
    }
    for (auto &ns : neighbors_) {
        std::sort(ns.begin(), ns.end());
    }
}

HwQubit
GridTopology::qubitAt(int x, int y) const
{
    QC_ASSERT(x >= 0 && x < rows_ && y >= 0 && y < cols_,
              "grid position (", x, ",", y, ") out of range");
    return x * cols_ + y;
}

GridPos
GridTopology::posOf(HwQubit h) const
{
    QC_ASSERT(h >= 0 && h < numQubits(), "qubit ", h, " out of range");
    return {h / cols_, h % cols_};
}

int
GridTopology::distance(HwQubit a, HwQubit b) const
{
    GridPos pa = posOf(a);
    GridPos pb = posOf(b);
    return std::abs(pa.x - pb.x) + std::abs(pa.y - pb.y);
}

bool
GridTopology::adjacent(HwQubit a, HwQubit b) const
{
    return distance(a, b) == 1;
}

const std::vector<HwQubit> &
GridTopology::neighbors(HwQubit h) const
{
    QC_ASSERT(h >= 0 && h < numQubits(), "qubit ", h, " out of range");
    return neighbors_[h];
}

EdgeId
GridTopology::edgeBetween(HwQubit a, HwQubit b) const
{
    QC_ASSERT(a >= 0 && a < numQubits() && b >= 0 && b < numQubits(),
              "edge endpoints out of range");
    return edgeLookup_[a][b];
}

GridTopology
GridTopology::ibmq16()
{
    return GridTopology(2, 8);
}

std::string
GridTopology::name() const
{
    std::ostringstream oss;
    oss << "grid" << rows_ << "x" << cols_;
    return oss.str();
}

} // namespace qc
