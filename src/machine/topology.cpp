#include "topology.hpp"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <sstream>

#include "support/logging.hpp"

namespace qc {

const char *
topologyKindName(TopologyKind k)
{
    switch (k) {
      case TopologyKind::Grid: return "grid";
      case TopologyKind::HeavyHex: return "heavyhex";
      case TopologyKind::Ring: return "ring";
      case TopologyKind::Linear: return "linear";
      case TopologyKind::Graph: return "graph";
    }
    QC_PANIC("unknown topology kind");
}

Topology::Topology(TopologyKind kind, int num_qubits,
                   std::vector<CouplingEdge> edges, std::string name,
                   int rows, int cols)
    : kind_(kind),
      numQubits_(num_qubits),
      rows_(rows),
      cols_(cols),
      name_(std::move(name)),
      edges_(std::move(edges))
{
    if (numQubits_ <= 0)
        QC_FATAL("topology '", name_, "' must have at least one qubit");
    validateAndIndex();
    if (!isGrid())
        buildDistanceTable();
}

void
Topology::validateAndIndex()
{
    const int n = numQubits_;
    neighbors_.assign(n, {});
    edgeLookup_.assign(n, std::vector<EdgeId>(n, kInvalidEdge));

    for (size_t i = 0; i < edges_.size(); ++i) {
        CouplingEdge &e = edges_[i];
        if (e.a < 0 || e.a >= n || e.b < 0 || e.b >= n)
            QC_FATAL("topology '", name_, "': edge (", e.a, ",", e.b,
                     ") endpoint out of range [0,", n, ")");
        if (e.a == e.b)
            QC_FATAL("topology '", name_, "': self-loop on qubit ",
                     e.a);
        if (e.a > e.b)
            std::swap(e.a, e.b);
        if (edgeLookup_[e.a][e.b] != kInvalidEdge)
            QC_FATAL("topology '", name_, "': duplicate edge (", e.a,
                     ",", e.b, ")");
        EdgeId id = static_cast<EdgeId>(i);
        edgeLookup_[e.a][e.b] = edgeLookup_[e.b][e.a] = id;
        neighbors_[e.a].push_back(e.b);
        neighbors_[e.b].push_back(e.a);
    }
    for (auto &ns : neighbors_)
        std::sort(ns.begin(), ns.end());

    // Every layer downstream (routing, placement, calibration drift)
    // assumes any qubit can reach any other, so a disconnected graph
    // is a configuration error, not something to limp along with.
    std::vector<char> seen(n, 0);
    std::deque<HwQubit> frontier{0};
    seen[0] = 1;
    int reached = 1;
    while (!frontier.empty()) {
        HwQubit u = frontier.front();
        frontier.pop_front();
        for (HwQubit v : neighbors_[u]) {
            if (!seen[v]) {
                seen[v] = 1;
                ++reached;
                frontier.push_back(v);
            }
        }
    }
    if (reached != n)
        QC_FATAL("topology '", name_, "' is disconnected: only ",
                 reached, " of ", n, " qubits reachable from qubit 0");
}

void
Topology::buildDistanceTable()
{
    const int n = numQubits_;
    dist_.assign(static_cast<size_t>(n) * n, -1);
    std::deque<HwQubit> frontier;
    for (HwQubit src = 0; src < n; ++src) {
        int *row = dist_.data() + static_cast<size_t>(src) * n;
        row[src] = 0;
        frontier.clear();
        frontier.push_back(src);
        while (!frontier.empty()) {
            HwQubit u = frontier.front();
            frontier.pop_front();
            for (HwQubit v : neighbors_[u]) {
                if (row[v] < 0) {
                    row[v] = row[u] + 1;
                    frontier.push_back(v);
                }
            }
        }
    }
}

int
Topology::distance(HwQubit a, HwQubit b) const
{
    QC_ASSERT(a >= 0 && a < numQubits_ && b >= 0 && b < numQubits_,
              "distance endpoints out of range");
    if (isGrid()) {
        // L1 fast path: hop distance == Manhattan distance on grids.
        return std::abs(a / cols_ - b / cols_) +
               std::abs(a % cols_ - b % cols_);
    }
    return dist_[static_cast<size_t>(a) * numQubits_ + b];
}

bool
Topology::adjacent(HwQubit a, HwQubit b) const
{
    return edgeBetween(a, b) != kInvalidEdge;
}

const std::vector<HwQubit> &
Topology::neighbors(HwQubit h) const
{
    QC_ASSERT(h >= 0 && h < numQubits_, "qubit ", h, " out of range");
    return neighbors_[h];
}

EdgeId
Topology::edgeBetween(HwQubit a, HwQubit b) const
{
    QC_ASSERT(a >= 0 && a < numQubits_ && b >= 0 && b < numQubits_,
              "edge endpoints out of range");
    return edgeLookup_[a][b];
}

int
Topology::rows() const
{
    if (!isGrid())
        QC_FATAL("rows() on non-grid topology '", name_, "'");
    return rows_;
}

int
Topology::cols() const
{
    if (!isGrid())
        QC_FATAL("cols() on non-grid topology '", name_, "'");
    return cols_;
}

HwQubit
Topology::qubitAt(int x, int y) const
{
    if (!isGrid())
        QC_FATAL("qubitAt() on non-grid topology '", name_, "'");
    QC_ASSERT(x >= 0 && x < rows_ && y >= 0 && y < cols_,
              "grid position (", x, ",", y, ") out of range");
    return x * cols_ + y;
}

GridPos
Topology::posOf(HwQubit h) const
{
    if (!isGrid())
        QC_FATAL("posOf() on non-grid topology '", name_, "'");
    QC_ASSERT(h >= 0 && h < numQubits_, "qubit ", h, " out of range");
    return {h / cols_, h % cols_};
}

namespace {

std::vector<CouplingEdge>
gridEdges(int rows, int cols)
{
    if (rows <= 0 || cols <= 0)
        QC_FATAL("grid dimensions must be positive, got ", rows, "x",
                 cols);
    // Generation order is load-bearing: EdgeIds index calibration
    // vectors, and the synthetic calibration stream draws per-edge
    // values in id order, so this must stay exactly the historical
    // row-major right-then-down walk.
    std::vector<CouplingEdge> edges;
    for (int x = 0; x < rows; ++x) {
        for (int y = 0; y < cols; ++y) {
            HwQubit h = x * cols + y;
            if (y + 1 < cols)
                edges.push_back({h, h + 1});
            if (x + 1 < rows)
                edges.push_back({h, h + cols});
        }
    }
    return edges;
}

std::string
gridName(int rows, int cols)
{
    std::ostringstream oss;
    oss << "grid" << rows << "x" << cols;
    return oss.str();
}

} // namespace

GridTopology::GridTopology(int rows, int cols)
    : Topology(TopologyKind::Grid, rows > 0 && cols > 0 ? rows * cols : 0,
               gridEdges(rows, cols), gridName(rows, cols), rows, cols)
{
}

GridTopology
GridTopology::ibmq16()
{
    return GridTopology(2, 8);
}

namespace {

struct HeavyHexGraph
{
    int numQubits = 0;
    std::vector<CouplingEdge> edges;
};

HeavyHexGraph
heavyHexGraph(int d)
{
    if (d < 2)
        QC_FATAL("heavy-hex distance must be >= 2, got ", d);
    HeavyHexGraph g;
    auto data = [&](int i, int j) { return i * d + j; };
    const int flag_base = d * d;
    auto flag = [&](int i, int k) {
        return flag_base + i * (d - 1) + k;
    };
    int next = flag_base + d * (d - 1);

    // Row chains: data(i,k) - flag(i,k) - data(i,k+1).
    for (int i = 0; i < d; ++i) {
        for (int k = 0; k + 1 < d; ++k) {
            g.edges.push_back({data(i, k), flag(i, k)});
            g.edges.push_back({flag(i, k), data(i, k + 1)});
        }
    }
    // Bridges between adjacent rows at parity-staggered columns, so
    // each data qubit carries at most one vertical link (degree <= 3).
    for (int i = 0; i + 1 < d; ++i) {
        for (int c = i % 2; c < d; c += 2) {
            int bridge = next++;
            g.edges.push_back({data(i, c), bridge});
            g.edges.push_back({bridge, data(i + 1, c)});
        }
    }
    g.numQubits = next;
    return g;
}

/** Closed form of heavyHexGraph's qubit count (d^2 data + d(d-1)
 *  flags + ceil/floor-alternating bridges over d-1 row gaps). */
int
heavyHexQubits(int d)
{
    if (d < 2)
        QC_FATAL("heavy-hex distance must be >= 2, got ", d);
    int bridges = 0;
    for (int i = 0; i + 1 < d; ++i)
        bridges += (d - (i % 2) + 1) / 2;
    return d * d + d * (d - 1) + bridges;
}

} // namespace

HeavyHexTopology::HeavyHexTopology(int distance)
    : Topology(TopologyKind::HeavyHex, heavyHexQubits(distance),
               heavyHexGraph(distance).edges,
               "heavyhex" + std::to_string(distance))
{
}

RingTopology::RingTopology(int num_qubits)
    : Topology(
          TopologyKind::Ring, num_qubits,
          [&] {
              if (num_qubits < 3)
                  QC_FATAL("ring topology needs >= 3 qubits, got ",
                           num_qubits);
              std::vector<CouplingEdge> edges;
              for (int i = 0; i + 1 < num_qubits; ++i)
                  edges.push_back({i, i + 1});
              edges.push_back({0, num_qubits - 1});
              return edges;
          }(),
          "ring" + std::to_string(num_qubits))
{
}

LinearTopology::LinearTopology(int num_qubits)
    : Topology(
          TopologyKind::Linear, num_qubits,
          [&] {
              if (num_qubits < 2)
                  QC_FATAL("linear topology needs >= 2 qubits, got ",
                           num_qubits);
              std::vector<CouplingEdge> edges;
              for (int i = 0; i + 1 < num_qubits; ++i)
                  edges.push_back({i, i + 1});
              return edges;
          }(),
          "linear" + std::to_string(num_qubits))
{
}

GraphTopology::GraphTopology(int num_qubits,
                             std::vector<CouplingEdge> edges,
                             std::string name)
    : Topology(TopologyKind::Graph, num_qubits, std::move(edges),
               std::move(name))
{
}

GraphTopology
GraphTopology::fromEdgeList(const std::string &text,
                            const std::string &name)
{
    std::vector<CouplingEdge> edges;
    int declared_qubits = -1;
    int max_id = -1;

    std::istringstream stream(text);
    std::string raw;
    int number = 0;
    while (std::getline(stream, raw)) {
        ++number;
        if (auto hash = raw.find('#'); hash != std::string::npos)
            raw.erase(hash);
        std::istringstream ls(raw);
        std::string first;
        if (!(ls >> first))
            continue;
        if (first == "qubits") {
            if (!(ls >> declared_qubits) || declared_qubits <= 0)
                QC_FATAL("edge list '", name, "' line ", number,
                         ": 'qubits' needs a positive count");
            continue;
        }
        int a = 0, b = 0;
        try {
            size_t used = 0;
            a = std::stoi(first, &used);
            if (used != first.size())
                throw std::invalid_argument("trailing junk");
        } catch (const std::exception &) {
            QC_FATAL("edge list '", name, "' line ", number,
                     ": bad qubit id '", first, "'");
        }
        if (!(ls >> b))
            QC_FATAL("edge list '", name, "' line ", number,
                     ": expected 'a b' qubit pair");
        std::string extra;
        if (ls >> extra)
            QC_FATAL("edge list '", name, "' line ", number,
                     ": trailing token '", extra, "'");
        if (a < 0 || b < 0)
            QC_FATAL("edge list '", name, "' line ", number,
                     ": negative qubit id");
        edges.push_back({a, b});
        max_id = std::max(max_id, std::max(a, b));
    }
    if (edges.empty())
        QC_FATAL("edge list '", name, "' contains no edges");

    int n = declared_qubits > 0 ? declared_qubits : max_id + 1;
    if (max_id >= n)
        QC_FATAL("edge list '", name, "' uses qubit ", max_id,
                 " but declares only ", n, " qubits");
    return GraphTopology(n, std::move(edges), name);
}

GraphTopology
GraphTopology::fromEdgeListFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        QC_FATAL("cannot open topology edge-list file '", path, "'");
    std::ostringstream oss;
    oss << in.rdbuf();
    std::string name = path;
    if (auto slash = name.find_last_of('/'); slash != std::string::npos)
        name = name.substr(slash + 1);
    return fromEdgeList(oss.str(), name);
}

namespace {

int
parsePositiveInt(const std::string &text, const std::string &spec)
{
    try {
        size_t used = 0;
        int v = std::stoi(text, &used);
        if (used != text.size() || v <= 0)
            throw std::invalid_argument("trailing junk");
        return v;
    } catch (const std::exception &) {
        QC_FATAL("bad topology spec '", spec, "': '", text,
                 "' is not a positive integer\n",
                 topologySpecHelp());
    }
}

} // namespace

Topology
topologyFromSpec(const std::string &spec)
{
    auto colon = spec.find(':');
    if (colon == std::string::npos)
        QC_FATAL("bad topology spec '", spec, "' (missing ':')\n",
                 topologySpecHelp());
    const std::string family = spec.substr(0, colon);
    const std::string arg = spec.substr(colon + 1);

    if (family == "grid") {
        auto x = arg.find_first_of("xX");
        if (x == std::string::npos)
            QC_FATAL("bad topology spec '", spec,
                     "': grid wants RxC, e.g. grid:2x8\n",
                     topologySpecHelp());
        int rows = parsePositiveInt(arg.substr(0, x), spec);
        int cols = parsePositiveInt(arg.substr(x + 1), spec);
        return GridTopology(rows, cols);
    }
    if (family == "heavyhex")
        return HeavyHexTopology(parsePositiveInt(arg, spec));
    if (family == "ring")
        return RingTopology(parsePositiveInt(arg, spec));
    if (family == "linear")
        return LinearTopology(parsePositiveInt(arg, spec));
    if (family == "file")
        return GraphTopology::fromEdgeListFile(arg);

    QC_FATAL("unknown topology family '", family, "' in spec '", spec,
             "'\n", topologySpecHelp());
}

std::string
topologySpecHelp()
{
    return "topology specs:\n"
           "  grid:RxC     R x C rectangular grid (grid:2x8 is the "
           "paper's IBMQ16)\n"
           "  heavyhex:D   heavy-hex lattice of distance D (>= 2; "
           "18 qubits at D=3)\n"
           "  ring:N       N-qubit cycle (N >= 3)\n"
           "  linear:N     N-qubit path (N >= 2)\n"
           "  file:PATH    edge list: one 'a b' pair per line, '#' "
           "comments,\n"
           "               optional 'qubits N' line";
}

} // namespace qc
