/**
 * @file
 * Calibration snapshot: the per-qubit / per-edge measurements IBM
 * publishes daily (T1, T2, CNOT error and duration, readout error,
 * single-qubit gate error) which the noise-adaptive compiler consumes.
 */

#ifndef QC_MACHINE_CALIBRATION_HPP
#define QC_MACHINE_CALIBRATION_HPP

#include <string>
#include <vector>

#include "machine/topology.hpp"
#include "support/types.hpp"

namespace qc {

/**
 * One calibration cycle's data for a machine.
 *
 * Vectors are indexed by hardware qubit id or edge id of the owning
 * topology. Durations are in 80 ns timeslots. Error rates are
 * probabilities in [0, 1).
 */
struct Calibration
{
    /** Day index this snapshot belongs to (for reports). */
    int day = 0;

    std::vector<double> t1Us;          ///< relaxation time, microseconds
    std::vector<double> t2Us;          ///< coherence time, microseconds
    std::vector<double> readoutError;  ///< per-qubit measurement error
    std::vector<double> cnotError;     ///< per-edge CNOT error
    std::vector<Timeslot> cnotDuration;///< per-edge CNOT duration
    double oneQubitError = 0.0;        ///< single-qubit gate error
    Timeslot oneQubitDuration = 1;     ///< single-qubit gate duration
    Timeslot readoutDuration = 12;     ///< measurement duration

    /** T2 of a qubit expressed in timeslots (constraint 6's h.tau). */
    Timeslot coherenceSlots(HwQubit h) const;

    /** 1 - cnotError, the per-edge CNOT success probability. */
    double cnotReliability(EdgeId e) const;

    /** 1 - readoutError. */
    double readoutReliability(HwQubit h) const;

    /** Validate vector arities and value ranges against a topology. */
    void validate(const Topology &topo) const;

    /** Human-readable per-element dump. */
    std::string toString(const Topology &topo) const;
};

} // namespace qc

#endif // QC_MACHINE_CALIBRATION_HPP
