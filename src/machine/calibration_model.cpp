#include "calibration_model.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "support/logging.hpp"
#include "support/rng.hpp"

namespace qc {

CalibrationModel::CalibrationModel(Topology topo,
                                   std::uint64_t seed,
                                   CalibrationModelParams params)
    : topo_(std::move(topo)), seed_(seed), params_(params)
{
    const int nq = topo_.numQubits();
    const int ne = topo_.numEdges();

    Rng rng(seed_, "calibration-static");
    t2Static_.resize(nq);
    t1Static_.resize(nq);
    readoutStatic_.resize(nq);
    for (int i = 0; i < nq; ++i) {
        t2Static_[i] = std::exp(rng.normal(0.0, params_.t2SigmaStatic));
        t1Static_[i] = std::exp(rng.normal(0.0, params_.t1SigmaStatic));
        readoutStatic_[i] =
            std::exp(rng.normal(0.0, params_.readoutErrSigmaStatic));
    }
    cnotStatic_.resize(ne);
    cnotDurations_.resize(ne);
    for (int e = 0; e < ne; ++e) {
        cnotStatic_[e] =
            std::exp(rng.normal(0.0, params_.cnotErrSigmaStatic));
        double f = rng.uniform(1.0 - params_.cnotDurSpread,
                               1.0 + params_.cnotDurSpread);
        cnotDurations_[e] = std::max<Timeslot>(
            1, static_cast<Timeslot>(std::lround(
                   static_cast<double>(params_.cnotDurationBase) * f)));
    }
}

std::vector<double>
CalibrationModel::driftSeries(const std::string &stream, size_t n,
                              int day) const
{
    std::vector<double> factors(n);
    for (size_t i = 0; i < n; ++i) {
        Rng rng(seed_, stream + "-" + std::to_string(i));
        double drift = 0.0;
        for (int d = 0; d <= day; ++d) {
            drift = params_.driftRho * drift +
                    rng.normal(0.0, params_.driftSigma);
        }
        factors[i] = std::exp(drift);
    }
    return factors;
}

Calibration
CalibrationModel::forDay(int day) const
{
    if (day < 0)
        QC_FATAL("calibration day must be non-negative, got ", day);

    const size_t nq = static_cast<size_t>(topo_.numQubits());
    const size_t ne = static_cast<size_t>(topo_.numEdges());
    const auto &p = params_;

    Calibration cal;
    cal.day = day;
    cal.t1Us.resize(nq);
    cal.t2Us.resize(nq);
    cal.readoutError.resize(nq);
    cal.cnotError.resize(ne);
    cal.cnotDuration = cnotDurations_;
    cal.oneQubitDuration = p.oneQubitDuration;
    cal.readoutDuration = p.readoutDuration;

    auto t2_drift = driftSeries("t2", nq, day);
    auto t1_drift = driftSeries("t1", nq, day);
    auto ro_drift = driftSeries("readout", nq, day);
    auto cx_drift = driftSeries("cnot", ne, day);

    for (size_t i = 0; i < nq; ++i) {
        cal.t2Us[i] = std::clamp(
            p.t2MedianUs * t2Static_[i] * t2_drift[i], p.t2MinUs,
            p.t2MaxUs);
        // Physical constraint T2 <= 2*T1; enforce after drift.
        double t1 = std::clamp(p.t1MedianUs * t1Static_[i] * t1_drift[i],
                               p.t1MinUs, p.t1MaxUs);
        cal.t1Us[i] = std::max(t1, 0.5 * cal.t2Us[i]);
        cal.readoutError[i] = std::clamp(
            p.readoutErrMedian * readoutStatic_[i] * ro_drift[i],
            p.readoutErrMin, p.readoutErrMax);
    }
    for (size_t e = 0; e < ne; ++e) {
        cal.cnotError[e] = std::clamp(
            p.cnotErrMedian * cnotStatic_[e] * cx_drift[e], p.cnotErrMin,
            p.cnotErrMax);
    }

    // Single-qubit error drifts uniformly across the device.
    Rng rng(seed_, "oneq-day-" + std::to_string(day));
    cal.oneQubitError = rng.lognormalClamped(
        p.oneQubitErrMedian, p.oneQubitErrSigma, p.oneQubitErrMin,
        p.oneQubitErrMax);

    cal.validate(topo_);
    return cal;
}

} // namespace qc
