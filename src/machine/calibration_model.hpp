/**
 * @file
 * Synthetic calibration generator.
 *
 * The paper drives compilation from IBM's daily calibration logs; those
 * logs are not publicly archivable, so this model generates statistically
 * equivalent data (DESIGN.md substitution table). Each qubit/edge gets a
 * static "lithographic" quality factor (fixed across days — the paper
 * attributes variability to material defects) plus an AR(1) day-to-day
 * drift, reproducing the published statistics: mean T2 ~70 us with up to
 * ~9.2x spatio-temporal spread, mean CNOT error ~0.04 (up to ~9x spread),
 * mean readout error ~0.07 (up to ~5.9x spread), single-qubit error
 * ~0.002, and CNOT durations varying up to ~1.8x across edges.
 */

#ifndef QC_MACHINE_CALIBRATION_MODEL_HPP
#define QC_MACHINE_CALIBRATION_MODEL_HPP

#include <cstdint>
#include <vector>

#include "machine/calibration.hpp"
#include "machine/topology.hpp"

namespace qc {

/** Tunable parameters of the synthetic calibration distribution. */
struct CalibrationModelParams
{
    double t2MedianUs = 65.0;     ///< median T2
    double t2SigmaStatic = 0.45;  ///< lognormal sigma, static spread
    double t2MinUs = 13.0;
    double t2MaxUs = 125.0;

    double t1MedianUs = 80.0;     ///< median T1
    double t1SigmaStatic = 0.35;
    double t1MinUs = 25.0;
    double t1MaxUs = 160.0;

    double cnotErrMedian = 0.035; ///< median CNOT error
    double cnotErrSigmaStatic = 0.55;
    double cnotErrMin = 0.012;
    double cnotErrMax = 0.35;

    double readoutErrMedian = 0.06;
    double readoutErrSigmaStatic = 0.5;
    double readoutErrMin = 0.015;
    double readoutErrMax = 0.35;

    double oneQubitErrMedian = 0.002;
    double oneQubitErrSigma = 0.25;
    double oneQubitErrMin = 0.0005;
    double oneQubitErrMax = 0.01;

    Timeslot cnotDurationBase = 10; ///< mean CNOT duration, slots
    double cnotDurSpread = 0.30;    ///< +/- fraction (1.8x max/min)
    Timeslot oneQubitDuration = 1;
    Timeslot readoutDuration = 12;

    double driftRho = 0.7;       ///< AR(1) persistence of daily drift
    double driftSigma = 0.25;    ///< innovation sigma of daily drift
};

/**
 * Deterministic day-indexed calibration source for one topology.
 *
 * forDay(d) is a pure function of (seed, topology, params, d): re-asking
 * for the same day always returns identical data, and consecutive days
 * are correlated through the AR(1) drift — matching how real hardware
 * drifts between calibration cycles (paper Fig. 1).
 */
class CalibrationModel
{
  public:
    CalibrationModel(Topology topo, std::uint64_t seed,
                     CalibrationModelParams params = {});

    /** Generate (or recall) the calibration snapshot for a day >= 0. */
    Calibration forDay(int day) const;

    const CalibrationModelParams &params() const { return params_; }
    const Topology &topology() const { return topo_; }

  private:
    /** Per-element multiplicative drift factors for a given day. */
    std::vector<double> driftSeries(const std::string &stream, size_t n,
                                    int day) const;

    Topology topo_;
    std::uint64_t seed_;
    CalibrationModelParams params_;

    // Static (day-independent) per-element quality factors.
    std::vector<double> t1Static_;
    std::vector<double> t2Static_;
    std::vector<double> readoutStatic_;
    std::vector<double> cnotStatic_;
    std::vector<Timeslot> cnotDurations_;
};

} // namespace qc

#endif // QC_MACHINE_CALIBRATION_MODEL_HPP
