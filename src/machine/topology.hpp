/**
 * @file
 * 2-D grid qubit topology (paper Sec. 4.1): hardware qubits arranged
 * as an Mx x My grid; two-qubit gates permitted only between grid
 * neighbors. IBMQ 16 Rueschlikon is modelled as the 2x8 instance.
 */

#ifndef QC_MACHINE_TOPOLOGY_HPP
#define QC_MACHINE_TOPOLOGY_HPP

#include <string>
#include <vector>

#include "support/types.hpp"

namespace qc {

/** Grid coordinate of a hardware qubit (row x, column y). */
struct GridPos
{
    int x = 0;
    int y = 0;
};

inline bool operator==(const GridPos &a, const GridPos &b)
{
    return a.x == b.x && a.y == b.y;
}

/** An undirected coupling edge between two adjacent hardware qubits. */
struct CouplingEdge
{
    HwQubit a;
    HwQubit b;
};

/**
 * Rectangular grid topology.
 *
 * Qubit ids are row-major: qubit(x, y) = x * cols + y. Adjacency is
 * 4-neighborhood (Manhattan); the L1 grid distance equals the hop
 * distance, as the paper's duration formula assumes.
 */
class GridTopology
{
  public:
    /** @param rows Mx, @param cols My */
    GridTopology(int rows, int cols);

    int rows() const { return rows_; }
    int cols() const { return cols_; }
    int numQubits() const { return rows_ * cols_; }
    int numEdges() const { return static_cast<int>(edges_.size()); }

    /** Row-major qubit id at (x, y). */
    HwQubit qubitAt(int x, int y) const;

    /** Grid coordinate of a qubit id. */
    GridPos posOf(HwQubit h) const;

    /** Manhattan (== hop) distance between two qubits. */
    int distance(HwQubit a, HwQubit b) const;

    /** True if a and b are grid neighbors. */
    bool adjacent(HwQubit a, HwQubit b) const;

    /** Neighbors of h in increasing id order. */
    const std::vector<HwQubit> &neighbors(HwQubit h) const;

    /** All edges, each listed once with a < b. */
    const std::vector<CouplingEdge> &edges() const { return edges_; }

    /** Edge id joining a and b, or kInvalidEdge. */
    EdgeId edgeBetween(HwQubit a, HwQubit b) const;

    const CouplingEdge &edge(EdgeId e) const { return edges_[e]; }

    /** The paper's evaluation machine: a 2x8 grid (16 qubits). */
    static GridTopology ibmq16();

    /** Short description, e.g. "grid2x8". */
    std::string name() const;

  private:
    int rows_;
    int cols_;
    std::vector<CouplingEdge> edges_;
    std::vector<std::vector<HwQubit>> neighbors_;
    std::vector<std::vector<EdgeId>> edgeLookup_;
};

} // namespace qc

#endif // QC_MACHINE_TOPOLOGY_HPP
