/**
 * @file
 * Hardware coupling topologies.
 *
 * The paper (Sec. 4.1) models hardware as an Mx x My grid and
 * evaluates on the 2x8 IBMQ16 Rueschlikon. Real devices are not
 * always grids — IBM's current lattices are heavy-hex, trapped-ion
 * prototypes are rings/lines, and experimental devices ship arbitrary
 * coupling graphs — so the topology layer is an abstraction:
 *
 *  - `Topology` is the concrete coupling-graph interface every layer
 *    compiles against: qubit count, neighbors, edges with stable ids,
 *    and hop distance (cached all-pairs BFS, with the grid's O(1)
 *    L1-distance fast path preserved).
 *  - `GridTopology` is the paper's grid as one implementation, joined
 *    by `HeavyHexTopology`, `RingTopology`, `LinearTopology`, and a
 *    `GraphTopology` loaded from an edge list.
 *
 * The subclasses add no state — they are constructors for specific
 * graph families — so a `Topology` holds any of them by value and
 * `Machine` snapshots stay self-contained and thread-shareable.
 */

#ifndef QC_MACHINE_TOPOLOGY_HPP
#define QC_MACHINE_TOPOLOGY_HPP

#include <string>
#include <vector>

#include "support/types.hpp"

namespace qc {

/** Grid coordinate of a hardware qubit (row x, column y). */
struct GridPos
{
    int x = 0;
    int y = 0;
};

inline bool operator==(const GridPos &a, const GridPos &b)
{
    return a.x == b.x && a.y == b.y;
}

/** An undirected coupling edge between two adjacent hardware qubits. */
struct CouplingEdge
{
    HwQubit a;
    HwQubit b;
};

/** The topology families the factory knows how to build. */
enum class TopologyKind {
    Grid,     ///< rectangular grid, 4-neighborhood (the paper's model)
    HeavyHex, ///< heavy-hex lattice (IBM Falcon/Hummingbird style)
    Ring,     ///< single cycle
    Linear,   ///< single path
    Graph,    ///< arbitrary coupling graph (edge-list loaded)
};

const char *topologyKindName(TopologyKind k);

/**
 * A connected, undirected coupling graph over qubits [0, numQubits).
 *
 * Edges each carry a stable `EdgeId` (calibration vectors are indexed
 * by it), listed once with a < b. `distance` is the hop distance:
 * grids answer it with the L1 formula (no table), every other kind
 * precomputes all-pairs BFS at construction so lookups during mapping
 * are O(1) either way.
 *
 * Construction validates the graph (ids in range, no self-loops or
 * duplicate edges, connected) and fails fast with FatalError
 * otherwise — downstream layers assume every qubit is routable.
 */
class Topology
{
  public:
    TopologyKind kind() const { return kind_; }
    bool isGrid() const { return kind_ == TopologyKind::Grid; }

    int numQubits() const { return numQubits_; }
    int numEdges() const { return static_cast<int>(edges_.size()); }

    /** Hop distance between two qubits (== L1 distance on grids). */
    int distance(HwQubit a, HwQubit b) const;

    /** True if a and b are coupled. */
    bool adjacent(HwQubit a, HwQubit b) const;

    /** Neighbors of h in increasing id order. */
    const std::vector<HwQubit> &neighbors(HwQubit h) const;

    /** All edges, each listed once with a < b. */
    const std::vector<CouplingEdge> &edges() const { return edges_; }

    /** Edge id joining a and b, or kInvalidEdge. */
    EdgeId edgeBetween(HwQubit a, HwQubit b) const;

    const CouplingEdge &edge(EdgeId e) const { return edges_[e]; }

    /** Short description, e.g. "grid2x8", "heavyhex3", "ring8". */
    const std::string &name() const { return name_; }

    /** @name Grid specialization (QC_FATAL on non-grid topologies)
     *  The paper's geometric fast paths — row-major ids, coordinate
     *  lookups — only exist on grids; callers branch on isGrid().
     *  @{ */

    int rows() const;
    int cols() const;

    /** Row-major qubit id at (x, y). */
    HwQubit qubitAt(int x, int y) const;

    /** Grid coordinate of a qubit id. */
    GridPos posOf(HwQubit h) const;

    /** @} */

  protected:
    /**
     * @param rows,cols grid extents; pass -1 for non-grid kinds.
     * Edge order is preserved as given (EdgeIds are load-bearing:
     * calibration vectors index by them).
     */
    Topology(TopologyKind kind, int num_qubits,
             std::vector<CouplingEdge> edges, std::string name,
             int rows = -1, int cols = -1);

  private:
    void validateAndIndex();
    void buildDistanceTable();

    TopologyKind kind_;
    int numQubits_;
    int rows_;
    int cols_;
    std::string name_;
    std::vector<CouplingEdge> edges_;
    std::vector<std::vector<HwQubit>> neighbors_;
    std::vector<std::vector<EdgeId>> edgeLookup_;
    std::vector<int> dist_; ///< all-pairs BFS (empty for grids)
};

/**
 * Rectangular grid topology (the paper's machine model).
 *
 * Qubit ids are row-major: qubit(x, y) = x * cols + y. Adjacency is
 * 4-neighborhood (Manhattan); the L1 grid distance equals the hop
 * distance, as the paper's duration formula assumes.
 */
class GridTopology : public Topology
{
  public:
    /** @param rows Mx, @param cols My */
    GridTopology(int rows, int cols);

    /** The paper's evaluation machine: a 2x8 grid (16 qubits). */
    static GridTopology ibmq16();
};

/**
 * Heavy-hex lattice of code distance d (>= 2): a d x d array of data
 * qubits whose rows are chained through flag qubits, with adjacent
 * rows joined through bridge qubits at parity-staggered columns —
 * max degree 3, the signature of IBM's heavy-hex devices.
 *
 * Qubit count: d^2 data + d*(d-1) flags + floor/ceil-staggered
 * bridges over the d-1 row gaps (18 qubits at d=3, 55 at d=5).
 */
class HeavyHexTopology : public Topology
{
  public:
    explicit HeavyHexTopology(int distance);
};

/** Single cycle 0-1-...-(n-1)-0 (n >= 3). */
class RingTopology : public Topology
{
  public:
    explicit RingTopology(int num_qubits);
};

/** Single path 0-1-...-(n-1) (n >= 2). */
class LinearTopology : public Topology
{
  public:
    explicit LinearTopology(int num_qubits);
};

/**
 * Arbitrary coupling graph ("bring your own device").
 *
 * The edge-list text format is one `a b` pair per line (whitespace
 * separated, '#' comments), with an optional `qubits N` directive for
 * devices whose highest qubit id is not on any edge... which would be
 * disconnected anyway, so in practice N is inferred as max id + 1.
 */
class GraphTopology : public Topology
{
  public:
    GraphTopology(int num_qubits, std::vector<CouplingEdge> edges,
                  std::string name = "graph");

    /** Parse the edge-list format above. */
    static GraphTopology fromEdgeList(const std::string &text,
                                      const std::string &name = "graph");

    /** Load an edge-list file (FatalError on unreadable paths). */
    static GraphTopology fromEdgeListFile(const std::string &path);
};

/**
 * Build a topology from a CLI-style spec:
 *
 *   grid:RxC | heavyhex:D | ring:N | linear:N | file:PATH
 *
 * Throws FatalError on malformed specs, naming the valid forms.
 */
Topology topologyFromSpec(const std::string &spec);

/** One-line-per-family description of the spec grammar (--help text). */
std::string topologySpecHelp();

} // namespace qc

#endif // QC_MACHINE_TOPOLOGY_HPP
