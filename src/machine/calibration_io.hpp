/**
 * @file
 * Textual serialization of calibration snapshots.
 *
 * The paper's toolflow pulls calibration from the IBM Quantum
 * Experience API before each compile; downstream users of this
 * library will want to feed their own device data instead of the
 * synthetic model. The format is a simple line-oriented text file:
 *
 *   # comments
 *   calibration v1
 *   day 3
 *   grid 2 8
 *   oneq error 0.002 duration 1
 *   readout_duration 12
 *   qubit 0 t1 83.5 t2 61.2 readout 0.041
 *   ...
 *   edge 0 1 error 0.034 duration 9
 *   ...
 */

#ifndef QC_MACHINE_CALIBRATION_IO_HPP
#define QC_MACHINE_CALIBRATION_IO_HPP

#include <string>

#include "machine/calibration.hpp"
#include "machine/topology.hpp"
#include "support/logging.hpp"

namespace qc {

/**
 * Structured calibration parse failure: the diagnostic names the
 * source (file path or caller-supplied label), the 1-based line, and
 * the 1-based column of the offending token, formatted
 * "<source>:<line>:<column>: <detail>". Derives from FatalError so
 * existing generic handlers keep working; line/column are 0 for
 * whole-file problems (missing header, missing qubit/edge entries).
 */
class CalibParseError : public FatalError
{
  public:
    CalibParseError(const std::string &source, int line, int column,
                    const std::string &detail);

    const std::string &source() const { return source_; }
    int line() const { return line_; }
    int column() const { return column_; }

  private:
    std::string source_;
    int line_;
    int column_;
};

/** Serialize a calibration snapshot (validated first). */
std::string saveCalibration(const Calibration &cal,
                            const Topology &topo);

/**
 * Parse a calibration file. The embedded grid dimensions must match
 * `topo`; every qubit and edge must be specified exactly once.
 * Numeric fields are parsed strictly (full token, range-checked);
 * malformed input throws CalibParseError naming `source` (a file
 * path or label for diagnostics), line and column — never a bare
 * std::invalid_argument/std::out_of_range from the conversion.
 */
Calibration loadCalibration(const std::string &text,
                            const Topology &topo,
                            const std::string &source = "calibration");

} // namespace qc

#endif // QC_MACHINE_CALIBRATION_IO_HPP
