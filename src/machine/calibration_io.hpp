/**
 * @file
 * Textual serialization of calibration snapshots.
 *
 * The paper's toolflow pulls calibration from the IBM Quantum
 * Experience API before each compile; downstream users of this
 * library will want to feed their own device data instead of the
 * synthetic model. The format is a simple line-oriented text file:
 *
 *   # comments
 *   calibration v1
 *   day 3
 *   grid 2 8
 *   oneq error 0.002 duration 1
 *   readout_duration 12
 *   qubit 0 t1 83.5 t2 61.2 readout 0.041
 *   ...
 *   edge 0 1 error 0.034 duration 9
 *   ...
 */

#ifndef QC_MACHINE_CALIBRATION_IO_HPP
#define QC_MACHINE_CALIBRATION_IO_HPP

#include <string>

#include "machine/calibration.hpp"
#include "machine/topology.hpp"

namespace qc {

/** Serialize a calibration snapshot (validated first). */
std::string saveCalibration(const Calibration &cal,
                            const Topology &topo);

/**
 * Parse a calibration file. The embedded grid dimensions must match
 * `topo`; every qubit and edge must be specified exactly once.
 * Throws FatalError with a line number on malformed input.
 */
Calibration loadCalibration(const std::string &text,
                            const Topology &topo);

} // namespace qc

#endif // QC_MACHINE_CALIBRATION_IO_HPP
