#include "calibration.hpp"

#include <cmath>
#include <sstream>

#include "support/logging.hpp"

namespace qc {

Timeslot
Calibration::coherenceSlots(HwQubit h) const
{
    double ns = t2Us[h] * 1000.0;
    return static_cast<Timeslot>(std::floor(ns / kTimeslotNs));
}

double
Calibration::cnotReliability(EdgeId e) const
{
    return 1.0 - cnotError[e];
}

double
Calibration::readoutReliability(HwQubit h) const
{
    return 1.0 - readoutError[h];
}

void
Calibration::validate(const Topology &topo) const
{
    const size_t nq = static_cast<size_t>(topo.numQubits());
    const size_t ne = static_cast<size_t>(topo.numEdges());
    if (t1Us.size() != nq || t2Us.size() != nq ||
        readoutError.size() != nq) {
        QC_FATAL("calibration qubit-vector arity mismatch for ",
                 topo.name());
    }
    if (cnotError.size() != ne || cnotDuration.size() != ne)
        QC_FATAL("calibration edge-vector arity mismatch for ",
                 topo.name());
    for (size_t i = 0; i < nq; ++i) {
        if (t1Us[i] <= 0.0 || t2Us[i] <= 0.0)
            QC_FATAL("non-positive coherence time on qubit ", i);
        if (readoutError[i] < 0.0 || readoutError[i] >= 1.0)
            QC_FATAL("readout error out of range on qubit ", i);
    }
    for (size_t e = 0; e < ne; ++e) {
        if (cnotError[e] < 0.0 || cnotError[e] >= 1.0)
            QC_FATAL("CNOT error out of range on edge ", e);
        if (cnotDuration[e] <= 0)
            QC_FATAL("non-positive CNOT duration on edge ", e);
    }
    if (oneQubitError < 0.0 || oneQubitError >= 1.0)
        QC_FATAL("single-qubit error out of range");
    if (oneQubitDuration <= 0 || readoutDuration <= 0)
        QC_FATAL("non-positive gate duration");
}

std::string
Calibration::toString(const Topology &topo) const
{
    std::ostringstream oss;
    oss << "calibration day " << day << " for " << topo.name() << "\n";
    for (HwQubit h = 0; h < topo.numQubits(); ++h) {
        oss << "  Q" << h << ": T1=" << t1Us[h] << "us T2=" << t2Us[h]
            << "us readout_err=" << readoutError[h] << "\n";
    }
    for (EdgeId e = 0; e < topo.numEdges(); ++e) {
        const auto &edge = topo.edge(e);
        oss << "  CNOT " << edge.a << "," << edge.b
            << ": err=" << cnotError[e] << " dur=" << cnotDuration[e]
            << " slots\n";
    }
    return oss.str();
}

} // namespace qc
