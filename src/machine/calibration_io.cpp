#include "calibration_io.hpp"

#include <sstream>
#include <vector>

#include "support/logging.hpp"

namespace qc {

std::string
saveCalibration(const Calibration &cal, const Topology &topo)
{
    cal.validate(topo);
    std::ostringstream oss;
    oss.precision(17); // max_digits10: exact double round trips
    oss << "# noise-adaptive compiler calibration snapshot\n";
    oss << "calibration v1\n";
    oss << "day " << cal.day << "\n";
    // Grids keep the original "grid R C" line (format compatibility);
    // other topologies declare themselves by name + arity so a load
    // against the wrong machine fails loudly.
    if (topo.isGrid())
        oss << "grid " << topo.rows() << " " << topo.cols() << "\n";
    else
        oss << "topology " << topo.name() << " " << topo.numQubits()
            << " " << topo.numEdges() << "\n";
    oss << "oneq error " << cal.oneQubitError << " duration "
        << cal.oneQubitDuration << "\n";
    oss << "readout_duration " << cal.readoutDuration << "\n";
    for (HwQubit h = 0; h < topo.numQubits(); ++h) {
        oss << "qubit " << h << " t1 " << cal.t1Us[h] << " t2 "
            << cal.t2Us[h] << " readout " << cal.readoutError[h]
            << "\n";
    }
    for (EdgeId e = 0; e < topo.numEdges(); ++e) {
        const auto &edge = topo.edge(e);
        oss << "edge " << edge.a << " " << edge.b << " error "
            << cal.cnotError[e] << " duration " << cal.cnotDuration[e]
            << "\n";
    }
    return oss.str();
}

namespace {

/** Tokenized line with its source line number. */
struct Line
{
    std::vector<std::string> tokens;
    int number;
};

std::vector<Line>
tokenize(const std::string &text)
{
    std::vector<Line> lines;
    std::istringstream stream(text);
    std::string raw;
    int number = 0;
    while (std::getline(stream, raw)) {
        ++number;
        if (auto hash = raw.find('#'); hash != std::string::npos)
            raw.erase(hash);
        std::istringstream ls(raw);
        Line line{{}, number};
        std::string tok;
        while (ls >> tok)
            line.tokens.push_back(tok);
        if (!line.tokens.empty())
            lines.push_back(std::move(line));
    }
    return lines;
}

double
parseDouble(const Line &line, size_t idx)
{
    if (idx >= line.tokens.size())
        QC_FATAL("calibration line ", line.number, ": missing field");
    try {
        return std::stod(line.tokens[idx]);
    } catch (const std::exception &) {
        QC_FATAL("calibration line ", line.number, ": bad number '",
                 line.tokens[idx], "'");
    }
}

int
parseInt(const Line &line, size_t idx)
{
    double v = parseDouble(line, idx);
    return static_cast<int>(v);
}

void
expectKeyword(const Line &line, size_t idx, const std::string &kw)
{
    if (idx >= line.tokens.size() || line.tokens[idx] != kw)
        QC_FATAL("calibration line ", line.number, ": expected '", kw,
                 "'");
}

} // namespace

Calibration
loadCalibration(const std::string &text, const Topology &topo)
{
    const size_t nq = static_cast<size_t>(topo.numQubits());
    const size_t ne = static_cast<size_t>(topo.numEdges());

    Calibration cal;
    cal.t1Us.assign(nq, 0.0);
    cal.t2Us.assign(nq, 0.0);
    cal.readoutError.assign(nq, -1.0);
    cal.cnotError.assign(ne, -1.0);
    cal.cnotDuration.assign(ne, 0);

    std::vector<bool> qubit_seen(nq, false);
    std::vector<bool> edge_seen(ne, false);
    bool header_seen = false;
    bool grid_seen = false;

    for (const Line &line : tokenize(text)) {
        const auto &t = line.tokens;
        if (t[0] == "calibration") {
            if (t.size() < 2 || t[1] != "v1")
                QC_FATAL("calibration line ", line.number,
                         ": unsupported version");
            header_seen = true;
        } else if (t[0] == "day") {
            cal.day = parseInt(line, 1);
        } else if (t[0] == "grid") {
            int rows = parseInt(line, 1);
            int cols = parseInt(line, 2);
            if (!topo.isGrid() || rows != topo.rows() ||
                cols != topo.cols())
                QC_FATAL("calibration line ", line.number, ": grid ",
                         rows, "x", cols, " does not match topology ",
                         topo.name());
            grid_seen = true;
        } else if (t[0] == "topology") {
            if (t.size() < 4)
                QC_FATAL("calibration line ", line.number,
                         ": topology line wants NAME QUBITS EDGES");
            if (t[1] != topo.name() ||
                parseInt(line, 2) != topo.numQubits() ||
                parseInt(line, 3) != topo.numEdges())
                QC_FATAL("calibration line ", line.number,
                         ": topology '", t[1],
                         "' does not match machine topology ",
                         topo.name());
            grid_seen = true;
        } else if (t[0] == "oneq") {
            expectKeyword(line, 1, "error");
            cal.oneQubitError = parseDouble(line, 2);
            expectKeyword(line, 3, "duration");
            cal.oneQubitDuration = parseInt(line, 4);
        } else if (t[0] == "readout_duration") {
            cal.readoutDuration = parseInt(line, 1);
        } else if (t[0] == "qubit") {
            int h = parseInt(line, 1);
            if (h < 0 || h >= static_cast<int>(nq))
                QC_FATAL("calibration line ", line.number,
                         ": qubit id out of range");
            if (qubit_seen[h])
                QC_FATAL("calibration line ", line.number,
                         ": duplicate qubit ", h);
            qubit_seen[h] = true;
            expectKeyword(line, 2, "t1");
            cal.t1Us[h] = parseDouble(line, 3);
            expectKeyword(line, 4, "t2");
            cal.t2Us[h] = parseDouble(line, 5);
            expectKeyword(line, 6, "readout");
            cal.readoutError[h] = parseDouble(line, 7);
        } else if (t[0] == "edge") {
            int a = parseInt(line, 1);
            int b = parseInt(line, 2);
            if (a < 0 || a >= static_cast<int>(nq) || b < 0 ||
                b >= static_cast<int>(nq)) {
                QC_FATAL("calibration line ", line.number,
                         ": edge endpoint out of range");
            }
            EdgeId e = topo.edgeBetween(a, b);
            if (e == kInvalidEdge)
                QC_FATAL("calibration line ", line.number, ": (", a,
                         ",", b, ") is not a coupling edge");
            if (edge_seen[e])
                QC_FATAL("calibration line ", line.number,
                         ": duplicate edge");
            edge_seen[e] = true;
            expectKeyword(line, 3, "error");
            cal.cnotError[e] = parseDouble(line, 4);
            expectKeyword(line, 5, "duration");
            cal.cnotDuration[e] = parseInt(line, 6);
        } else {
            QC_FATAL("calibration line ", line.number,
                     ": unknown directive '", t[0], "'");
        }
    }

    if (!header_seen)
        QC_FATAL("calibration file missing 'calibration v1' header");
    if (!grid_seen)
        QC_FATAL("calibration file missing 'grid'/'topology' "
                 "declaration");
    for (size_t h = 0; h < nq; ++h)
        if (!qubit_seen[h])
            QC_FATAL("calibration file missing qubit ", h);
    for (size_t e = 0; e < ne; ++e)
        if (!edge_seen[e])
            QC_FATAL("calibration file missing edge ", e, " (",
                     topo.edge(static_cast<EdgeId>(e)).a, ",",
                     topo.edge(static_cast<EdgeId>(e)).b, ")");

    cal.validate(topo);
    return cal;
}

} // namespace qc
