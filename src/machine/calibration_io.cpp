#include "calibration_io.hpp"

#include <cctype>
#include <limits>
#include <sstream>
#include <vector>

#include "support/cli.hpp"
#include "support/logging.hpp"

namespace qc {

namespace {

std::string
formatCalibError(const std::string &source, int line, int column,
                 const std::string &detail)
{
    std::ostringstream oss;
    oss << source;
    if (line > 0) {
        oss << ":" << line;
        if (column > 0)
            oss << ":" << column;
    }
    oss << ": " << detail;
    return oss.str();
}

} // namespace

CalibParseError::CalibParseError(const std::string &source, int line,
                                 int column,
                                 const std::string &detail)
    : FatalError(formatCalibError(source, line, column, detail)),
      source_(source), line_(line), column_(column)
{
}

std::string
saveCalibration(const Calibration &cal, const Topology &topo)
{
    cal.validate(topo);
    std::ostringstream oss;
    oss.precision(17); // max_digits10: exact double round trips
    oss << "# noise-adaptive compiler calibration snapshot\n";
    oss << "calibration v1\n";
    oss << "day " << cal.day << "\n";
    // Grids keep the original "grid R C" line (format compatibility);
    // other topologies declare themselves by name + arity so a load
    // against the wrong machine fails loudly.
    if (topo.isGrid())
        oss << "grid " << topo.rows() << " " << topo.cols() << "\n";
    else
        oss << "topology " << topo.name() << " " << topo.numQubits()
            << " " << topo.numEdges() << "\n";
    oss << "oneq error " << cal.oneQubitError << " duration "
        << cal.oneQubitDuration << "\n";
    oss << "readout_duration " << cal.readoutDuration << "\n";
    for (HwQubit h = 0; h < topo.numQubits(); ++h) {
        oss << "qubit " << h << " t1 " << cal.t1Us[h] << " t2 "
            << cal.t2Us[h] << " readout " << cal.readoutError[h]
            << "\n";
    }
    for (EdgeId e = 0; e < topo.numEdges(); ++e) {
        const auto &edge = topo.edge(e);
        oss << "edge " << edge.a << " " << edge.b << " error "
            << cal.cnotError[e] << " duration " << cal.cnotDuration[e]
            << "\n";
    }
    return oss.str();
}

namespace {

/** One whitespace-delimited token and its 1-based start column. */
struct Token
{
    std::string text;
    int column;
};

/** Tokenized line with its source line number. */
struct Line
{
    std::vector<Token> tokens;
    int number;

    const std::string &tok(size_t idx) const
    {
        return tokens[idx].text;
    }
};

std::vector<Line>
tokenize(const std::string &text)
{
    std::vector<Line> lines;
    std::istringstream stream(text);
    std::string raw;
    int number = 0;
    while (std::getline(stream, raw)) {
        ++number;
        if (auto hash = raw.find('#'); hash != std::string::npos)
            raw.erase(hash);
        Line line{{}, number};
        size_t i = 0;
        while (i < raw.size()) {
            if (std::isspace(static_cast<unsigned char>(raw[i]))) {
                ++i;
                continue;
            }
            size_t start = i;
            while (i < raw.size() &&
                   !std::isspace(static_cast<unsigned char>(raw[i])))
                ++i;
            line.tokens.push_back({raw.substr(start, i - start),
                                   static_cast<int>(start) + 1});
        }
        if (!line.tokens.empty())
            lines.push_back(std::move(line));
    }
    return lines;
}

/**
 * Parse state shared by the field readers: the diagnostic source name
 * rides along so every error carries file, line and column.
 */
struct FieldParser
{
    const std::string &source;

    [[noreturn]] void fail(const Line &line, int column,
                           const std::string &detail) const
    {
        throw CalibParseError(source, line.number, column, detail);
    }

    const Token &field(const Line &line, size_t idx) const
    {
        if (idx >= line.tokens.size())
            fail(line, 0, "missing field (wanted " +
                              std::to_string(idx + 1) +
                              " fields, got " +
                              std::to_string(line.tokens.size()) + ")");
        return line.tokens[idx];
    }

    /**
     * Strict full-token double (cli::strictParseDouble): trailing
     * garbage and out-of-range magnitudes are parse errors, not
     * silently accepted prefixes (bare std::stod stops at the first
     * bad character and throws std::out_of_range past the loader on
     * overflow).
     */
    double parseDouble(const Line &line, size_t idx) const
    {
        const Token &t = field(line, idx);
        double v = 0.0;
        if (!cli::strictParseDouble(t.text, v))
            fail(line, t.column,
                 "bad number '" + t.text + "' for '" + line.tok(0) +
                     "'");
        return v;
    }

    /** Strict full-token integer ("3.5" is not an int here). */
    int parseInt(const Line &line, size_t idx) const
    {
        const Token &t = field(line, idx);
        long long v = 0;
        if (!cli::strictParseLongLong(t.text, v) ||
            v < std::numeric_limits<int>::min() ||
            v > std::numeric_limits<int>::max())
            fail(line, t.column,
                 "bad integer '" + t.text + "' for '" + line.tok(0) +
                     "'");
        return static_cast<int>(v);
    }

    void expectKeyword(const Line &line, size_t idx,
                       const std::string &kw) const
    {
        const Token &t = field(line, idx);
        if (t.text != kw)
            fail(line, t.column,
                 "expected '" + kw + "', got '" + t.text + "'");
    }
};

} // namespace

Calibration
loadCalibration(const std::string &text, const Topology &topo,
                const std::string &source)
{
    const size_t nq = static_cast<size_t>(topo.numQubits());
    const size_t ne = static_cast<size_t>(topo.numEdges());
    const FieldParser p{source};

    Calibration cal;
    cal.t1Us.assign(nq, 0.0);
    cal.t2Us.assign(nq, 0.0);
    cal.readoutError.assign(nq, -1.0);
    cal.cnotError.assign(ne, -1.0);
    cal.cnotDuration.assign(ne, 0);

    std::vector<bool> qubit_seen(nq, false);
    std::vector<bool> edge_seen(ne, false);
    bool header_seen = false;
    bool grid_seen = false;

    auto whole_file_error = [&](const std::string &detail) {
        throw CalibParseError(source, 0, 0, detail);
    };

    for (const Line &line : tokenize(text)) {
        const std::string &head = line.tok(0);
        if (head == "calibration") {
            if (line.tokens.size() < 2 || line.tok(1) != "v1")
                p.fail(line, line.tokens[0].column,
                       "unsupported version");
            header_seen = true;
        } else if (head == "day") {
            cal.day = p.parseInt(line, 1);
        } else if (head == "grid") {
            int rows = p.parseInt(line, 1);
            int cols = p.parseInt(line, 2);
            if (!topo.isGrid() || rows != topo.rows() ||
                cols != topo.cols())
                p.fail(line, line.tokens[0].column,
                       "grid " + std::to_string(rows) + "x" +
                           std::to_string(cols) +
                           " does not match topology " + topo.name());
            grid_seen = true;
        } else if (head == "topology") {
            if (line.tokens.size() < 4)
                p.fail(line, line.tokens[0].column,
                       "topology line wants NAME QUBITS EDGES");
            if (line.tok(1) != topo.name() ||
                p.parseInt(line, 2) != topo.numQubits() ||
                p.parseInt(line, 3) != topo.numEdges())
                p.fail(line, line.tokens[1].column,
                       "topology '" + line.tok(1) +
                           "' does not match machine topology " +
                           topo.name());
            grid_seen = true;
        } else if (head == "oneq") {
            p.expectKeyword(line, 1, "error");
            cal.oneQubitError = p.parseDouble(line, 2);
            p.expectKeyword(line, 3, "duration");
            cal.oneQubitDuration = p.parseInt(line, 4);
        } else if (head == "readout_duration") {
            cal.readoutDuration = p.parseInt(line, 1);
        } else if (head == "qubit") {
            int h = p.parseInt(line, 1);
            if (h < 0 || h >= static_cast<int>(nq))
                p.fail(line, line.tokens[1].column,
                       "qubit id out of range");
            if (qubit_seen[h])
                p.fail(line, line.tokens[1].column,
                       "duplicate qubit " + std::to_string(h));
            qubit_seen[h] = true;
            p.expectKeyword(line, 2, "t1");
            cal.t1Us[h] = p.parseDouble(line, 3);
            p.expectKeyword(line, 4, "t2");
            cal.t2Us[h] = p.parseDouble(line, 5);
            p.expectKeyword(line, 6, "readout");
            cal.readoutError[h] = p.parseDouble(line, 7);
        } else if (head == "edge") {
            int a = p.parseInt(line, 1);
            int b = p.parseInt(line, 2);
            if (a < 0 || a >= static_cast<int>(nq) || b < 0 ||
                b >= static_cast<int>(nq)) {
                p.fail(line, line.tokens[1].column,
                       "edge endpoint out of range");
            }
            EdgeId e = topo.edgeBetween(a, b);
            if (e == kInvalidEdge)
                p.fail(line, line.tokens[1].column,
                       "(" + std::to_string(a) + "," +
                           std::to_string(b) +
                           ") is not a coupling edge");
            if (edge_seen[e])
                p.fail(line, line.tokens[1].column, "duplicate edge");
            edge_seen[e] = true;
            p.expectKeyword(line, 3, "error");
            cal.cnotError[e] = p.parseDouble(line, 4);
            p.expectKeyword(line, 5, "duration");
            cal.cnotDuration[e] = p.parseInt(line, 6);
        } else {
            p.fail(line, line.tokens[0].column,
                   "unknown directive '" + head + "'");
        }
    }

    if (!header_seen)
        whole_file_error("missing 'calibration v1' header");
    if (!grid_seen)
        whole_file_error("missing 'grid'/'topology' declaration");
    for (size_t h = 0; h < nq; ++h)
        if (!qubit_seen[h])
            whole_file_error("missing qubit " + std::to_string(h));
    for (size_t e = 0; e < ne; ++e)
        if (!edge_seen[e])
            whole_file_error(
                "missing edge " + std::to_string(e) + " (" +
                std::to_string(topo.edge(static_cast<EdgeId>(e)).a) +
                "," +
                std::to_string(topo.edge(static_cast<EdgeId>(e)).b) +
                ")");

    cal.validate(topo);
    return cal;
}

} // namespace qc
