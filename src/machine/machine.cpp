#include "machine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "support/logging.hpp"

namespace qc {

Machine::Machine(Topology topo, Calibration cal)
    : topo_(std::move(topo)), cal_(std::move(cal))
{
    cal_.validate(topo_);

    // Nominal (noise-unaware) CNOT duration: the rounded mean of the
    // calibrated per-edge durations, i.e. what a static datasheet
    // would quote.
    double sum = 0.0;
    for (Timeslot d : cal_.cnotDuration)
        sum += static_cast<double>(d);
    uniformCnotDuration_ = std::max<Timeslot>(
        1, static_cast<Timeslot>(std::lround(
               sum / static_cast<double>(cal_.cnotDuration.size()))));

    if (topo_.isGrid())
        buildOneBendPaths();
    else
        buildShortestCandidatePaths();
    buildDijkstra();
}

RoutePath
Machine::makeRoute(std::vector<HwQubit> nodes, HwQubit junction) const
{
    QC_ASSERT(nodes.size() >= 2, "route needs at least two nodes");
    RoutePath r;
    r.nodes = std::move(nodes);
    r.junction = junction;
    r.edges.reserve(r.nodes.size() - 1);
    for (size_t i = 0; i + 1 < r.nodes.size(); ++i) {
        EdgeId e = topo_.edgeBetween(r.nodes[i], r.nodes[i + 1]);
        QC_ASSERT(e != kInvalidEdge, "route hops non-adjacent qubits");
        r.edges.push_back(e);
    }

    // Reliability: forward SWAP chain (3 CNOTs each) + the final CNOT
    // (paper footnote 3). Duration: SWAP chain there and back + CNOT
    // (paper Sec. 4.2).
    double rel = 1.0;
    Timeslot dur = 0;
    for (size_t i = 0; i + 1 < r.edges.size(); ++i) {
        double er = cal_.cnotReliability(r.edges[i]);
        rel *= er * er * er;
        dur += 2 * 3 * cal_.cnotDuration[r.edges[i]];
    }
    EdgeId last = r.edges.back();
    rel *= cal_.cnotReliability(last);
    dur += cal_.cnotDuration[last];
    r.reliability = rel;
    r.duration = dur;
    return r;
}

void
Machine::buildOneBendPaths()
{
    const int n = topo_.numQubits();
    obp_.assign(static_cast<size_t>(n) * n, {});

    auto walk = [&](GridPos from, GridPos to) {
        // Straight-line node sequence (exclusive of `from`).
        std::vector<HwQubit> seq;
        GridPos cur = from;
        while (cur.x != to.x) {
            cur.x += (to.x > cur.x) ? 1 : -1;
            seq.push_back(topo_.qubitAt(cur.x, cur.y));
        }
        while (cur.y != to.y) {
            cur.y += (to.y > cur.y) ? 1 : -1;
            seq.push_back(topo_.qubitAt(cur.x, cur.y));
        }
        return seq;
    };

    for (HwQubit c = 0; c < n; ++c) {
        for (HwQubit t = 0; t < n; ++t) {
            if (c == t)
                continue;
            GridPos pc = topo_.posOf(c);
            GridPos pt = topo_.posOf(t);
            auto &routes = obp_[static_cast<size_t>(c) * n + t];

            // Junction A = (c.x, t.y): row-leg first, then column-leg.
            // Junction B = (t.x, c.y): column-leg first.
            GridPos ja{pc.x, pt.y};
            GridPos jb{pt.x, pc.y};

            auto build = [&](GridPos junction) {
                std::vector<HwQubit> nodes{c};
                auto leg1 = walk(pc, junction);
                nodes.insert(nodes.end(), leg1.begin(), leg1.end());
                auto leg2 = walk(junction, pt);
                nodes.insert(nodes.end(), leg2.begin(), leg2.end());
                routes.push_back(
                    makeRoute(std::move(nodes),
                              topo_.qubitAt(junction.x, junction.y)));
            };

            build(ja);
            if (!(ja == jb)) {
                build(jb);
                // Axis-aligned pairs produce the same straight walk
                // from both junctions; keep a single route then.
                if (routes[1].nodes == routes[0].nodes)
                    routes.pop_back();
            }
        }
    }
}

void
Machine::buildShortestCandidatePaths()
{
    const int n = topo_.numQubits();
    obp_.assign(static_cast<size_t>(n) * n, {});

    // Deterministic shortest-path walk from c to t: at every node,
    // step to the extreme-id neighbor that strictly decreases the
    // BFS distance to t. `smallest` picks the lexicographically
    // minimal shortest path, !smallest the maximal one — up to two
    // distinct candidates, mirroring the grid's two junctions.
    auto walk = [&](HwQubit c, HwQubit t, bool smallest) {
        std::vector<HwQubit> nodes{c};
        HwQubit cur = c;
        while (cur != t) {
            HwQubit next = kInvalidQubit;
            for (HwQubit v : topo_.neighbors(cur)) {
                if (topo_.distance(v, t) != topo_.distance(cur, t) - 1)
                    continue;
                if (next == kInvalidQubit || (smallest ? v < next
                                                       : v > next))
                    next = v;
            }
            QC_ASSERT(next != kInvalidQubit,
                      "BFS walk stuck between qubits ", c, " and ", t);
            nodes.push_back(next);
            cur = next;
        }
        return nodes;
    };

    for (HwQubit c = 0; c < n; ++c) {
        for (HwQubit t = 0; t < n; ++t) {
            if (c == t)
                continue;
            auto &routes = obp_[static_cast<size_t>(c) * n + t];
            std::vector<HwQubit> lo = walk(c, t, true);
            std::vector<HwQubit> hi = walk(c, t, false);
            bool same = lo == hi;
            routes.push_back(makeRoute(std::move(lo), kInvalidQubit));
            if (!same)
                routes.push_back(
                    makeRoute(std::move(hi), kInvalidQubit));
        }
    }
}

void
Machine::buildDijkstra()
{
    const int n = topo_.numQubits();
    djCost_.assign(n, std::vector<double>(
                          n, std::numeric_limits<double>::infinity()));
    djPrev_.assign(n, std::vector<HwQubit>(n, kInvalidQubit));

    for (HwQubit src = 0; src < n; ++src) {
        auto &cost = djCost_[src];
        auto &prev = djPrev_[src];
        cost[src] = 0.0;
        using Item = std::pair<double, HwQubit>;
        std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
        pq.push({0.0, src});
        while (!pq.empty()) {
            auto [d, u] = pq.top();
            pq.pop();
            if (d > cost[u])
                continue;
            for (HwQubit v : topo_.neighbors(u)) {
                EdgeId e = topo_.edgeBetween(u, v);
                double w = -std::log(cal_.cnotReliability(e));
                if (cost[u] + w < cost[v] - 1e-15) {
                    cost[v] = cost[u] + w;
                    prev[v] = u;
                    pq.push({cost[v], v});
                }
            }
        }
    }
}

int
Machine::numOneBendPaths(HwQubit c, HwQubit t) const
{
    QC_ASSERT(c != t, "no route from a qubit to itself");
    return static_cast<int>(
        obp_[static_cast<size_t>(c) * numQubits() + t].size());
}

const RoutePath &
Machine::oneBendPath(HwQubit c, HwQubit t, int j) const
{
    const auto &routes = obp_[static_cast<size_t>(c) * numQubits() + t];
    QC_ASSERT(j >= 0 && j < static_cast<int>(routes.size()),
              "one-bend path index ", j, " out of range");
    return routes[j];
}

const RoutePath &
Machine::bestReliabilityPath(HwQubit c, HwQubit t) const
{
    const auto &routes = obp_[static_cast<size_t>(c) * numQubits() + t];
    QC_ASSERT(!routes.empty(), "no route between identical qubits");
    if (routes.size() == 1 ||
        routes[0].reliability >= routes[1].reliability) {
        return routes[0];
    }
    return routes[1];
}

const RoutePath &
Machine::bestDurationPath(HwQubit c, HwQubit t) const
{
    const auto &routes = obp_[static_cast<size_t>(c) * numQubits() + t];
    QC_ASSERT(!routes.empty(), "no route between identical qubits");
    if (routes.size() == 1 || routes[0].duration <= routes[1].duration)
        return routes[0];
    return routes[1];
}

double
Machine::bestPathReliability(HwQubit c, HwQubit t) const
{
    return bestReliabilityPath(c, t).reliability;
}

Timeslot
Machine::bestPathDuration(HwQubit c, HwQubit t) const
{
    return bestDurationPath(c, t).duration;
}

Timeslot
Machine::uniformRouteDuration(int dist) const
{
    QC_ASSERT(dist >= 1, "route distance must be >= 1");
    Timeslot tau_cnot = uniformCnotDuration_;
    Timeslot tau_swap = 3 * tau_cnot;
    return 2 * (dist - 1) * tau_swap + tau_cnot;
}

double
Machine::mostReliablePathCost(HwQubit a, HwQubit b) const
{
    return djCost_[a][b];
}

double
Machine::mostReliablePathReliability(HwQubit a, HwQubit b) const
{
    return std::exp(-djCost_[a][b]);
}

std::vector<HwQubit>
Machine::mostReliablePath(HwQubit a, HwQubit b) const
{
    std::vector<HwQubit> rev{b};
    HwQubit cur = b;
    while (cur != a) {
        cur = djPrev_[a][cur];
        QC_ASSERT(cur != kInvalidQubit, "broken Dijkstra predecessor");
        rev.push_back(cur);
    }
    std::reverse(rev.begin(), rev.end());
    return rev;
}

RoutePath
Machine::dijkstraRoute(HwQubit c, HwQubit t) const
{
    return makeRoute(mostReliablePath(c, t), kInvalidQubit);
}

std::vector<HwQubit>
Machine::qubitsByReadoutReliability() const
{
    std::vector<HwQubit> qs(numQubits());
    for (int i = 0; i < numQubits(); ++i)
        qs[i] = i;
    std::stable_sort(qs.begin(), qs.end(), [this](HwQubit a, HwQubit b) {
        return cal_.readoutError[a] < cal_.readoutError[b];
    });
    return qs;
}

} // namespace qc
