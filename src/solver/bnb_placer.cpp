#include "bnb_placer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "solver/objective.hpp"
#include "support/logging.hpp"

namespace qc {

BnbPlacer::BnbPlacer(const Machine &machine, const Circuit &prog,
                     BnbOptions options)
    : machine_(machine),
      prog_(prog),
      options_(options),
      numProg_(prog.numQubits()),
      numHw_(machine.numQubits())
{
    if (numProg_ > numHw_)
        QC_FATAL("program needs ", numProg_, " qubits but machine has ",
                 numHw_);

    OrderedCnotWeights weights(prog);
    readouts_.resize(numProg_);
    for (int q = 0; q < numProg_; ++q)
        readouts_[q] = weights.readouts(q);

    logRo_.resize(numHw_);
    for (HwQubit h = 0; h < numHw_; ++h)
        logRo_[h] = std::log(machine_.cal().readoutReliability(h));

    logEc_.assign(numHw_, std::vector<double>(numHw_, 0.0));
    for (HwQubit a = 0; a < numHw_; ++a)
        for (HwQubit b = 0; b < numHw_; ++b)
            if (a != b)
                logEc_[a][b] =
                    std::log(machine_.bestPathReliability(a, b));

    // Branching order: heaviest-connected-to-placed first (start from
    // the heaviest qubit overall), which keeps bounds tight.
    std::vector<int> degree(numProg_, 0);
    for (const auto &e : weights.entries()) {
        degree[e.control] += e.count;
        degree[e.target] += e.count;
    }
    std::vector<bool> placed(numProg_, false);
    for (int lvl = 0; lvl < numProg_; ++lvl) {
        int best = -1;
        int best_conn = -1;
        int best_deg = -1;
        for (int q = 0; q < numProg_; ++q) {
            if (placed[q])
                continue;
            int conn = 0;
            for (const auto &e : weights.entries()) {
                if (e.control == q && placed[e.target])
                    conn += e.count;
                if (e.target == q && placed[e.control])
                    conn += e.count;
            }
            if (conn > best_conn ||
                (conn == best_conn && degree[q] > best_deg)) {
                best = q;
                best_conn = conn;
                best_deg = degree[q];
            }
        }
        placed[best] = true;
        order_.push_back(best);
    }

    // Per-level edges back to already-branched levels.
    std::vector<int> level_of(numProg_, -1);
    for (int lvl = 0; lvl < numProg_; ++lvl)
        level_of[order_[lvl]] = lvl;
    levelEdges_.assign(numProg_, {});
    for (const auto &e : weights.entries()) {
        int lc = level_of[e.control];
        int lt = level_of[e.target];
        if (lc > lt) {
            // control branched later; earlier endpoint is the target
            levelEdges_[lc].push_back({lt, e.count, true});
        } else {
            levelEdges_[lt].push_back({lc, e.count, false});
        }
    }

    for (const auto &e : weights.entries())
        terms_.push_back({e.control, e.target, e.count});
}

double
BnbPlacer::readoutGain(ProgQubit q, HwQubit h) const
{
    return options_.readoutWeight * readouts_[q] * logRo_[h];
}

double
BnbPlacer::edgeGain(HwQubit hc, HwQubit ht) const
{
    return (1.0 - options_.readoutWeight) * logEc_[hc][ht];
}

double
BnbPlacer::bound(int level) const
{
    const double w = options_.readoutWeight;
    double b = 0.0;

    // Readout bound: each unplaced qubit could land on the best free
    // readout location.
    double best_free_ro = -std::numeric_limits<double>::infinity();
    for (HwQubit h = 0; h < numHw_; ++h)
        if (!used_[h])
            best_free_ro = std::max(best_free_ro, logRo_[h]);
    for (int lvl = level; lvl < numProg_; ++lvl) {
        ProgQubit q = order_[lvl];
        if (readouts_[q] > 0)
            b += w * readouts_[q] * best_free_ro;
    }

    // CNOT bound: each not-yet-determined term could use the best EC
    // consistent with its placed endpoint (or the global best).
    for (const auto &t : terms_) {
        HwQubit hc = assign_[t.control];
        HwQubit ht = assign_[t.target];
        if (hc != kInvalidQubit && ht != kInvalidQubit)
            continue; // already counted in the node value
        double best = -std::numeric_limits<double>::infinity();
        if (hc != kInvalidQubit) {
            for (HwQubit h = 0; h < numHw_; ++h)
                if (!used_[h])
                    best = std::max(best, logEc_[hc][h]);
        } else if (ht != kInvalidQubit) {
            for (HwQubit h = 0; h < numHw_; ++h)
                if (!used_[h])
                    best = std::max(best, logEc_[h][ht]);
        } else {
            for (HwQubit a = 0; a < numHw_; ++a) {
                if (used_[a])
                    continue;
                for (HwQubit bq = 0; bq < numHw_; ++bq)
                    if (bq != a && !used_[bq])
                        best = std::max(best, logEc_[a][bq]);
            }
        }
        b += (1.0 - w) * t.weight * best;
    }
    return b;
}

void
BnbPlacer::dfs(int level, double value)
{
    if (hitLimit_)
        return;
    // Never trip the limit before the first (greedy) leaf: solve()
    // must always return a valid placement.
    if (++nodes_ > options_.nodeLimit && !best_.empty()) {
        hitLimit_ = true;
        return;
    }
    if (level == numProg_) {
        if (value > bestObj_ || best_.empty()) {
            bestObj_ = value;
            best_ = assign_;
        }
        return;
    }
    if (!best_.empty() && value + bound(level) <= bestObj_ + 1e-12)
        return;

    ProgQubit q = order_[level];
    std::vector<std::pair<double, HwQubit>> cands;
    for (HwQubit h = 0; h < numHw_; ++h) {
        if (used_[h])
            continue;
        double gain = readoutGain(q, h);
        for (const auto &e : levelEdges_[level]) {
            HwQubit other = assign_[order_[e.earlierLevel]];
            gain += e.asControl ? e.weight * edgeGain(h, other)
                                : e.weight * edgeGain(other, h);
        }
        cands.push_back({gain, h});
    }
    std::stable_sort(cands.begin(), cands.end(),
                     [](const auto &a, const auto &b) {
                         return a.first > b.first;
                     });

    for (const auto &[gain, h] : cands) {
        assign_[q] = h;
        used_[h] = true;
        dfs(level + 1, value + gain);
        used_[h] = false;
        assign_[q] = kInvalidQubit;
        if (hitLimit_)
            return;
    }
}

BnbResult
BnbPlacer::solve()
{
    assign_.assign(numProg_, kInvalidQubit);
    used_.assign(numHw_, false);
    best_.clear();
    bestObj_ = -std::numeric_limits<double>::infinity();
    nodes_ = 0;
    hitLimit_ = false;

    dfs(0, 0.0);

    QC_ASSERT(!best_.empty(), "branch-and-bound found no placement");
    BnbResult result;
    result.layout = best_;
    result.objective = bestObj_;
    result.nodesExplored = nodes_;
    result.optimal = !hitLimit_;
    return result;
}

} // namespace qc
