#include "objective.hpp"

#include <cmath>

#include "support/logging.hpp"

namespace qc {

std::int64_t
scaledLog(double reliability)
{
    QC_ASSERT(reliability > 0.0 && reliability <= 1.0,
              "reliability out of (0, 1]: ", reliability);
    return static_cast<std::int64_t>(
        std::llround(std::log(reliability) * kLogScale));
}

double
ReliabilityBreakdown::successEstimate() const
{
    return std::exp(readoutLog + cnotLog);
}

ReliabilityBreakdown
evaluateReliability(const Circuit &prog,
                    const std::vector<HwQubit> &layout,
                    const Machine &machine,
                    const std::vector<int> *junctions)
{
    ReliabilityBreakdown out;
    const auto &cal = machine.cal();
    for (size_t i = 0; i < prog.size(); ++i) {
        const Gate &g = prog.gate(i);
        if (g.op == Op::CNOT) {
            HwQubit c = layout[g.q0];
            HwQubit t = layout[g.q1];
            double rel;
            if (junctions && (*junctions)[i] >= 0) {
                int j = std::min((*junctions)[i],
                                 machine.numOneBendPaths(c, t) - 1);
                rel = machine.oneBendPath(c, t, j).reliability;
            } else {
                rel = machine.bestPathReliability(c, t);
            }
            out.cnotLog += std::log(rel);
        } else if (g.isMeasure()) {
            out.readoutLog +=
                std::log(cal.readoutReliability(layout[g.q0]));
        }
    }
    return out;
}

OrderedCnotWeights::OrderedCnotWeights(const Circuit &prog)
    : n_(prog.numQubits()),
      w_(static_cast<size_t>(n_) * n_, 0),
      readouts_(n_, 0)
{
    for (const auto &g : prog.gates()) {
        if (g.op == Op::CNOT)
            w_[static_cast<size_t>(g.q0) * n_ + g.q1] += 1;
        else if (g.isMeasure())
            readouts_[g.q0] += 1;
    }
    for (int a = 0; a < n_; ++a) {
        for (int b = 0; b < n_; ++b) {
            int cnt = w_[static_cast<size_t>(a) * n_ + b];
            if (cnt > 0)
                entries_.push_back({a, b, cnt});
        }
    }
}

} // namespace qc
