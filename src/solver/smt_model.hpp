/**
 * @file
 * Z3 encoding of the paper's constrained-optimization compilation
 * problem (Sec. 4): qubit-mapping constraints (1-2), gate-scheduling
 * dependencies (3), duration/coherence constraints (4-6), routing
 * non-overlap for RR and 1BP policies (7-9), reliability tracking
 * (10-11), and the duration or weighted log-reliability objective
 * (Eq. 12), solved with z3::optimize (the nuZ engine the paper cites).
 */

#ifndef QC_SOLVER_SMT_MODEL_HPP
#define QC_SOLVER_SMT_MODEL_HPP

#include <string>
#include <vector>

#include "ir/circuit.hpp"
#include "machine/machine.hpp"
#include "route/routing.hpp"
#include "support/cancel.hpp"

namespace qc {

/** Which objective the SMT model optimizes. */
enum class SmtObjectiveKind {
    Duration,    ///< minimize program makespan (T-SMT, T-SMT*)
    Reliability, ///< maximize Eq. 12 (R-SMT*)
};

/** Configuration of one SMT solve. */
struct SmtModelOptions
{
    SmtObjectiveKind objective = SmtObjectiveKind::Reliability;

    /**
     * true  = use per-edge calibrated durations and per-qubit T2
     *         (T-SMT*, R-SMT*; constraints 5-6),
     * false = nominal uniform durations and the 1000-slot machine
     *         average coherence bound (T-SMT; constraint 4).
     */
    bool calibrationAware = true;

    /** Routing policy for duration tables and overlap constraints. */
    RoutingPolicy policy = RoutingPolicy::OneBendPath;

    /** Eq. 12's readout weight omega (Reliability objective only). */
    double readoutWeight = 0.5;

    /** Z3 wall-clock budget; best-found model is used on timeout. */
    unsigned timeoutMs = 60'000;

    /**
     * true = encode start times, routing overlap and coherence jointly
     * with placement (the paper's full formulation). false = placement
     * and reliability constraints only, with scheduling realized by
     * the list scheduler afterwards — a compile-time escape hatch for
     * large synthetic programs (Fig. 11's scalability sweep).
     */
    bool jointScheduling = true;

    /**
     * Cooperative cancellation (null = not cancellable). The solve
     * polls it between solver queries and hooks z3's interrupt so an
     * in-flight check() returns promptly; a cancelled solve comes
     * back infeasible with SmtFailure::Cancelled and keeps no model.
     */
    const CancelToken *cancel = nullptr;
};

/** Why a solve produced no model (meaningful when !feasible). */
enum class SmtFailure {
    None,      ///< a model was found (or no failure recorded yet)
    Unsat,     ///< constraints proven unsatisfiable
    Timeout,   ///< budget exhausted without any model
    Error,     ///< Z3 raised an exception
    Cancelled, ///< the solve's CancelToken was triggered
};

/** Outcome of an SMT solve. */
struct SmtSolution
{
    bool feasible = false; ///< a model satisfying all constraints exists
    bool optimal = false;  ///< Z3 proved optimality before the timeout
    SmtFailure failure = SmtFailure::None; ///< structured no-model cause
    std::vector<HwQubit> layout; ///< program qubit -> hardware qubit
    std::vector<int> junctions;  ///< per gate: one-bend route index, -1
    double solveSeconds = 0.0;
    std::string status;          ///< Z3 result string for reports
};

/**
 * Build and solve the SMT mapping model for one circuit on one
 * machine-day. Throws FatalError if the program cannot fit.
 */
SmtSolution solveSmtMapping(const Machine &machine, const Circuit &prog,
                            const SmtModelOptions &options);

} // namespace qc

#endif // QC_SOLVER_SMT_MODEL_HPP
