#include "smt_model.hpp"

#include <chrono>
#include <cmath>
#include <limits>
#include <optional>

#include <z3++.h>

#include "ir/dag.hpp"
#include "solver/bnb_placer.hpp"
#include "solver/objective.hpp"
#include "support/logging.hpp"

namespace qc {

namespace {

using Clock = std::chrono::steady_clock;

/** Per-CNOT symbolic bookkeeping shared by the constraint builders. */
struct CnotVars
{
    int gateIdx = -1;
    z3::expr tau;      ///< start time
    z3::expr delta;    ///< routed duration
    z3::expr junction; ///< Bool: true = bend at (x_c, y_t) (route 0)
    z3::expr cost;     ///< -scaledLog(EC), Reliability objective only
};

/** min/max of two int exprs via ite. */
z3::expr
zmin(const z3::expr &a, const z3::expr &b)
{
    return z3::ite(a <= b, a, b);
}

z3::expr
zmax(const z3::expr &a, const z3::expr &b)
{
    return z3::ite(a >= b, a, b);
}

/** Inclusive rectangle with symbolic corners. */
struct SymRect
{
    z3::expr x0, x1, y0, y1;

    static SymRect
    spanning(const z3::expr &xa, const z3::expr &ya, const z3::expr &xb,
             const z3::expr &yb)
    {
        return {zmin(xa, xb), zmax(xa, xb), zmin(ya, yb), zmax(ya, yb)};
    }
};

/** The paper's S(Ri, Rj) spatial-overlap predicate (Eq. 7). */
z3::expr
rectOverlap(const SymRect &a, const SymRect &b)
{
    return !(a.x0 > b.x1 || a.x1 < b.x0 || a.y0 > b.y1 || a.y1 < b.y0);
}

/** Remaining milliseconds before a deadline (at least 1). */
unsigned
remainingMs(Clock::time_point deadline)
{
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - Clock::now())
                    .count();
    return left > 1 ? static_cast<unsigned>(left) : 1u;
}

/**
 * The full model build + optimization loop. May throw z3::exception
 * from any context operation when the token's interrupt hook fires
 * outside a check() — the public wrapper below maps that to a
 * structured cancelled/error solution.
 */
SmtSolution
solveSmtMappingImpl(const Machine &machine, const Circuit &prog,
                    const SmtModelOptions &options)
{
    const auto &topo = machine.topo();
    const auto &cal = machine.cal();
    // Grids keep the paper's (x, y) coordinate encoding — rectangle
    // overlap is expressible symbolically (Eq. 7) and the historical
    // models stay bit-identical. Non-grid topologies use a single
    // location variable per program qubit; their routing non-overlap
    // is relaxed (see the non-overlap section below).
    const bool grid_encoding = topo.isGrid();
    const int rows = grid_encoding ? topo.rows() : 0;
    const int cols = grid_encoding ? topo.cols() : 0;
    const int n_hw = topo.numQubits();
    const int n_prog = prog.numQubits();

    if (n_prog > n_hw)
        QC_FATAL("program needs ", n_prog, " qubits but machine has ",
                 n_hw);

    const bool reliability =
        options.objective == SmtObjectiveKind::Reliability;
    // The duration objective is meaningless without start times, so
    // joint scheduling is forced on for it.
    const bool joint = options.jointScheduling || !reliability;

    const auto t0 = Clock::now();
    const auto deadline =
        t0 + std::chrono::milliseconds(options.timeoutMs);

    // A cancelled solve keeps no model: the caller (portfolio racing)
    // declared it a loser, and a partial incumbent would only leak
    // timing-dependent results into deterministic selection.
    auto cancelled_solution = [&t0] {
        SmtSolution s;
        s.failure = SmtFailure::Cancelled;
        s.status = "cancelled";
        s.solveSeconds =
            std::chrono::duration<double>(Clock::now() - t0).count();
        return s;
    };
    if (isCancelled(options.cancel))
        return cancelled_solution();

    z3::context ctx;
    z3::solver solver(ctx);
    // Polling alone cannot stop a thread parked inside solver.check(),
    // so the token also hooks z3's soft interrupt for the lifetime of
    // this solve (the guard's destructor waits out an in-flight hook).
    CancelCallbackGuard interrupt_guard(options.cancel,
                                        [&ctx] { ctx.interrupt(); });
    auto set_budget = [&](unsigned cap_ms) {
        z3::params p(ctx);
        p.set("timeout", std::min(remainingMs(deadline), cap_ms));
        solver.set(p);
    };

    // ---- Mapping variables and constraints 1-2 -------------------
    std::vector<z3::expr> qx, qy;  // grid encoding
    std::vector<z3::expr> qloc;    // non-grid encoding
    if (grid_encoding) {
        for (int q = 0; q < n_prog; ++q) {
            qx.push_back(
                ctx.int_const(("x_" + std::to_string(q)).c_str()));
            qy.push_back(
                ctx.int_const(("y_" + std::to_string(q)).c_str()));
            solver.add(qx[q] >= 0 && qx[q] < rows);
            solver.add(qy[q] >= 0 && qy[q] < cols);
        }
        for (int a = 0; a < n_prog; ++a)
            for (int b = a + 1; b < n_prog; ++b)
                solver.add(qx[a] != qx[b] || qy[a] != qy[b]);
    } else {
        for (int q = 0; q < n_prog; ++q) {
            qloc.push_back(
                ctx.int_const(("loc_" + std::to_string(q)).c_str()));
            solver.add(qloc[q] >= 0 && qloc[q] < n_hw);
        }
        for (int a = 0; a < n_prog; ++a)
            for (int b = a + 1; b < n_prog; ++b)
                solver.add(qloc[a] != qloc[b]);
    }

    // Location predicate: program qubit q sits on hardware qubit h.
    auto at = [&](int q, HwQubit h) {
        if (!grid_encoding)
            return qloc[q] == h;
        GridPos p = topo.posOf(h);
        return qx[q] == p.x && qy[q] == p.y;
    };

    // Read a placement back out of a model (either encoding).
    auto layout_of = [&](z3::model &m) {
        std::vector<HwQubit> layout(n_prog, kInvalidQubit);
        for (int q = 0; q < n_prog; ++q) {
            if (grid_encoding) {
                int x = m.eval(qx[q], true).get_numeral_int();
                int y = m.eval(qy[q], true).get_numeral_int();
                layout[q] = topo.qubitAt(x, y);
            } else {
                layout[q] =
                    m.eval(qloc[q], true).get_numeral_int();
            }
        }
        return layout;
    };

    // ---- Duration / reliability tables ---------------------------
    auto route_duration = [&](HwQubit h1, HwQubit h2, int j) -> Timeslot {
        if (!options.calibrationAware) {
            return machine.uniformRouteDuration(topo.distance(h1, h2));
        }
        int nj = machine.numOneBendPaths(h1, h2);
        return machine.oneBendPath(h1, h2, std::min(j, nj - 1)).duration;
    };
    auto route_cost = [&](HwQubit h1, HwQubit h2, int j) -> std::int64_t {
        int nj = machine.numOneBendPaths(h1, h2);
        double rel =
            machine.oneBendPath(h1, h2, std::min(j, nj - 1)).reliability;
        return -scaledLog(rel);
    };

    // Coherence windows (constraint 6, or the static bound 4).
    auto coherence = [&](HwQubit h) -> Timeslot {
        return options.calibrationAware ? cal.coherenceSlots(h)
                                        : Machine::kStaticCoherenceSlots;
    };

    DependencyDag dag(prog);
    const int n_gates = static_cast<int>(prog.size());

    // ---- Per-gate variables --------------------------------------
    std::vector<CnotVars> cnots;
    std::vector<z3::expr> tau;     // start time per gate
    std::vector<z3::expr> dur;     // duration expr per gate
    std::vector<z3::expr> ro_cost; // readout cost per measure gate

    const bool use_junction_var =
        options.policy == RoutingPolicy::OneBendPath;

    for (int i = 0; i < n_gates; ++i) {
        const Gate &g = prog.gate(i);
        std::string suffix = std::to_string(i);
        z3::expr t = ctx.int_const(("tau_" + suffix).c_str());
        if (joint)
            solver.add(t >= 0);
        tau.push_back(t);

        if (g.op == Op::CNOT) {
            CnotVars cv{
                i,
                t,
                ctx.int_const(("delta_" + suffix).c_str()),
                ctx.bool_const(("jb_" + suffix).c_str()),
                ctx.int_const(("cost_" + suffix).c_str()),
            };
            // Implication tables over ordered hardware pairs
            // (constraints 5, 6, 11).
            for (HwQubit h1 = 0; h1 < n_hw; ++h1) {
                for (HwQubit h2 = 0; h2 < n_hw; ++h2) {
                    if (h1 == h2)
                        continue;
                    z3::expr cond = at(g.q0, h1) && at(g.q1, h2);
                    if (joint) {
                        Timeslot d0 = route_duration(h1, h2, 0);
                        Timeslot d1 = route_duration(h1, h2, 1);
                        if (use_junction_var && d0 != d1) {
                            solver.add(z3::implies(
                                cond && cv.junction,
                                cv.delta == ctx.int_val(
                                                static_cast<std::int64_t>(
                                                    d0))));
                            solver.add(z3::implies(
                                cond && !cv.junction,
                                cv.delta == ctx.int_val(
                                                static_cast<std::int64_t>(
                                                    d1))));
                        } else {
                            Timeslot d = std::min(d0, d1);
                            solver.add(z3::implies(
                                cond,
                                cv.delta == ctx.int_val(
                                                static_cast<std::int64_t>(
                                                    d))));
                        }
                        Timeslot window =
                            std::min(coherence(h1), coherence(h2));
                        solver.add(z3::implies(
                            cond, cv.tau + cv.delta <=
                                      ctx.int_val(
                                          static_cast<std::int64_t>(
                                              window))));
                    }
                    if (reliability) {
                        std::int64_t c0 = route_cost(h1, h2, 0);
                        std::int64_t c1 = route_cost(h1, h2, 1);
                        if (use_junction_var && c0 != c1) {
                            solver.add(z3::implies(
                                cond && cv.junction,
                                cv.cost == ctx.int_val(c0)));
                            solver.add(z3::implies(
                                cond && !cv.junction,
                                cv.cost == ctx.int_val(c1)));
                        } else {
                            solver.add(z3::implies(
                                cond, cv.cost == ctx.int_val(
                                                     std::min(c0, c1))));
                        }
                    }
                }
            }
            dur.push_back(cv.delta);
            cnots.push_back(cv);
        } else {
            Timeslot d = g.isMeasure() ? cal.readoutDuration
                                       : cal.oneQubitDuration;
            dur.push_back(ctx.int_val(static_cast<std::int64_t>(d)));
            if (joint) {
                // Coherence for single-qubit / readout operations.
                for (HwQubit h = 0; h < n_hw; ++h) {
                    solver.add(z3::implies(
                        at(g.q0, h),
                        t + ctx.int_val(static_cast<std::int64_t>(d)) <=
                            ctx.int_val(static_cast<std::int64_t>(
                                coherence(h)))));
                }
            }
            if (reliability && g.isMeasure()) {
                z3::expr rc = ctx.int_const(
                    ("rocost_" + std::to_string(i)).c_str());
                for (HwQubit h = 0; h < n_hw; ++h) {
                    std::int64_t c =
                        -scaledLog(cal.readoutReliability(h));
                    solver.add(
                        z3::implies(at(g.q0, h), rc == ctx.int_val(c)));
                }
                ro_cost.push_back(rc);
            }
        }
    }

    // ---- Dependencies (constraint 3) ------------------------------
    if (joint) {
        for (int i = 0; i < n_gates; ++i)
            for (int p : dag.preds(i))
                solver.add(tau[i] >= tau[p] + dur[p]);
    }

    // ---- Routing non-overlap (constraints 7-9) --------------------
    //
    // Route footprints on an arbitrary graph depend on the placement,
    // so the exact symbolic overlap predicate of the grid encoding
    // would blow up combinatorially. Non-grid solves instead RELAX
    // the constraint away entirely: dependency and coherence
    // constraints still hold, start times become lower bounds, and
    // the list-scheduler replay of the (layout, junctions) solution
    // enforces real footprint non-overlap afterwards. A relaxation
    // (rather than conservative pairwise serialization) is the sound
    // direction — serializing every concurrent-capable pair can push
    // the makespan past a coherence window and flip a feasible
    // problem to unsat.
    if (joint && grid_encoding) {
        struct CnotRegion { std::vector<SymRect> rects; };
        std::vector<CnotRegion> regions;
        for (const auto &cv : cnots) {
            const Gate &g = prog.gate(cv.gateIdx);
            const z3::expr &xc = qx[g.q0], &yc = qy[g.q0];
            const z3::expr &xt = qx[g.q1], &yt = qy[g.q1];
            CnotRegion region;
            if (options.policy == RoutingPolicy::RectangleReservation) {
                region.rects.push_back(
                    SymRect::spanning(xc, yc, xt, yt));
            } else {
                z3::expr jx = z3::ite(cv.junction, xc, xt);
                z3::expr jy = z3::ite(cv.junction, yt, yc);
                region.rects.push_back(SymRect::spanning(xc, yc, jx, jy));
                region.rects.push_back(SymRect::spanning(jx, jy, xt, yt));
            }
            regions.push_back(std::move(region));
        }
        for (size_t i = 0; i < cnots.size(); ++i) {
            for (size_t j = i + 1; j < cnots.size(); ++j) {
                int gi = cnots[i].gateIdx;
                int gj = cnots[j].gateIdx;
                if (dag.dependsOn(gj, gi) || dag.dependsOn(gi, gj))
                    continue; // already ordered in time
                z3::expr space = ctx.bool_val(false);
                for (const auto &ra : regions[i].rects)
                    for (const auto &rb : regions[j].rects)
                        space = space || rectOverlap(ra, rb);
                z3::expr apart =
                    cnots[i].tau >= cnots[j].tau + cnots[j].delta ||
                    cnots[j].tau >= cnots[i].tau + cnots[i].delta;
                solver.add(z3::implies(space, apart));
            }
        }
    }

    // ---- Objective expression --------------------------------------
    // Both objectives are minimized: the scaled weighted negative
    // log-reliability (Eq. 12) or the makespan.
    const std::int64_t w_int = static_cast<std::int64_t>(
        std::llround(options.readoutWeight * 1000.0));
    z3::expr objective = ctx.int_const("objective");
    if (reliability) {
        z3::expr total = ctx.int_val(0);
        for (const auto &rc : ro_cost)
            total = total + ctx.int_val(w_int) * rc;
        for (const auto &cv : cnots)
            total = total + ctx.int_val(1000 - w_int) * cv.cost;
        solver.add(objective == total);
    } else {
        for (int i = 0; i < n_gates; ++i)
            solver.add(objective >= tau[i] + dur[i]);
    }

    // ---- Optimization loop ------------------------------------------
    // Minimize `objective` with plain sat queries: a warm lower bound
    // (branch-and-bound placement optimum for reliability; DAG critical
    // path for duration) often proves optimality in one query, and a
    // binary-search descent handles the rest.
    SmtSolution sol;
    std::optional<z3::model> best_model;
    std::int64_t best_value = 0;
    bool proven = false;

    // Model building is cheap but the BnB warm start below is not:
    // checkpoint before committing to it.
    if (isCancelled(options.cancel))
        return cancelled_solution();

    // Lower bound.
    std::int64_t lower = 0;
    bool lower_is_tight = false;
    std::vector<HwQubit> bnb_layout;
    if (reliability) {
        BnbOptions bnb_opts;
        bnb_opts.readoutWeight = options.readoutWeight;
        bnb_opts.nodeLimit = 2'000'000;
        BnbPlacer bnb(machine, prog, bnb_opts);
        BnbResult br = bnb.solve();
        // Integer cost of the BnB layout under the model's tables.
        std::int64_t cost = 0;
        for (int i = 0; i < n_gates; ++i) {
            const Gate &g = prog.gate(i);
            if (g.op == Op::CNOT) {
                HwQubit c = br.layout[g.q0];
                HwQubit t = br.layout[g.q1];
                cost += (1000 - w_int) *
                        std::min(route_cost(c, t, 0), route_cost(c, t, 1));
            } else if (g.isMeasure()) {
                cost += w_int * -scaledLog(cal.readoutReliability(
                                    br.layout[g.q0]));
            }
        }
        lower = cost;
        lower_is_tight = br.optimal;
        bnb_layout = br.layout;
    } else {
        // Critical path with the smallest possible per-gate durations.
        Timeslot min_cnot = std::numeric_limits<Timeslot>::max();
        for (HwQubit a = 0; a < n_hw; ++a)
            for (HwQubit b : topo.neighbors(a))
                min_cnot = std::min(min_cnot, route_duration(a, b, 0));
        std::vector<Timeslot> durations(prog.size());
        for (size_t i = 0; i < prog.size(); ++i) {
            const Gate &g = prog.gate(i);
            durations[i] = g.op == Op::CNOT ? min_cnot
                           : g.isMeasure()  ? cal.readoutDuration
                                            : cal.oneQubitDuration;
        }
        lower = dag.criticalPath(durations);
        lower_is_tight = false; // placement may not achieve it
    }

    auto check_with_bound = [&](std::optional<std::int64_t> bound,
                                unsigned cap_ms) -> z3::check_result {
        if (isCancelled(options.cancel)) {
            sol.status = "cancelled";
            sol.failure = SmtFailure::Cancelled;
            return z3::unknown;
        }
        solver.push();
        if (bound)
            solver.add(objective <= ctx.int_val(*bound));
        set_budget(cap_ms);
        z3::check_result r;
        try {
            r = solver.check();
        } catch (const z3::exception &e) {
            // An interrupted check may surface as a z3 exception; the
            // token, not the exception text, is authoritative.
            if (isCancelled(options.cancel)) {
                sol.status = "cancelled";
                sol.failure = SmtFailure::Cancelled;
            } else {
                sol.status = std::string("z3 exception: ") + e.msg();
                sol.failure = SmtFailure::Error;
            }
            solver.pop();
            return z3::unknown;
        }
        if (isCancelled(options.cancel)) {
            // Interrupted mid-check: whatever z3 answered is partial
            // timing-dependent state — drop it.
            sol.status = "cancelled";
            sol.failure = SmtFailure::Cancelled;
            solver.pop();
            return z3::unknown;
        }
        if (r == z3::sat) {
            best_model = solver.get_model();
            if (reliability) {
                best_value = best_model->eval(objective, true)
                                 .get_numeral_int64();
            } else {
                // The makespan variable is only lower-bounded; read
                // the realized maximum finish time from the model.
                std::int64_t ms = 0;
                for (int i = 0; i < n_gates; ++i) {
                    std::int64_t fin =
                        best_model->eval(tau[i] + dur[i], true)
                            .get_numeral_int64();
                    ms = std::max(ms, fin);
                }
                best_value = ms;
            }
        }
        solver.pop();
        return r;
    };

    // Fast path: pin the placement to the branch-and-bound optimum
    // and ask Z3 to verify it (and, in joint mode, to schedule it).
    // A sat answer at the provably-tight bound is an optimality
    // certificate obtained in a near-trivial query.
    if (lower_is_tight && !bnb_layout.empty()) {
        solver.push();
        for (int q = 0; q < n_prog; ++q)
            solver.add(at(q, bnb_layout[q]));
        z3::check_result pinned =
            check_with_bound(lower, options.timeoutMs / 4);
        solver.pop();
        if (pinned == z3::sat) {
            sol.optimal = true;
            sol.status = "optimal";
            z3::model &m = *best_model;
            sol.layout = layout_of(m);
            sol.junctions.assign(n_gates, -1);
            for (const auto &cv : cnots) {
                z3::expr jv = m.eval(cv.junction, true);
                sol.junctions[cv.gateIdx] = jv.is_true() ? 0 : 1;
            }
            sol.feasible = true;
            sol.solveSeconds = std::chrono::duration<double>(
                                   Clock::now() - t0)
                                   .count();
            return sol;
        }
        // Otherwise: the BnB placement is schedule-infeasible (or the
        // query was too hard); fall through to the general flow.
    }

    // Try to hit the lower bound directly, but keep at least half the
    // budget in reserve so a feasible model is always recovered even
    // when the bound-constrained query is hard.
    z3::check_result first = check_with_bound(
        lower_is_tight ? std::optional<std::int64_t>(lower)
                       : std::nullopt,
        options.timeoutMs / 2);
    if (first == z3::sat && lower_is_tight) {
        proven = true; // matches a provable lower bound
    } else {
        if (first != z3::sat) {
            // Either the tight bound is schedule-infeasible or we had
            // no tight bound; solve unbounded first.
            if (lower_is_tight && first == z3::unsat)
                lower += 1;
            z3::check_result r =
                check_with_bound(std::nullopt, options.timeoutMs);
            if (r == z3::unsat) {
                sol.status = "unsat";
                sol.failure = SmtFailure::Unsat;
                sol.solveSeconds = std::chrono::duration<double>(
                                       Clock::now() - t0)
                                       .count();
                return sol;
            }
            if (r != z3::sat && !best_model) {
                if (sol.status.empty())
                    sol.status = "unknown";
                if (sol.failure == SmtFailure::None)
                    sol.failure = SmtFailure::Timeout;
                sol.solveSeconds = std::chrono::duration<double>(
                                       Clock::now() - t0)
                                       .count();
                return sol;
            }
        }
        // Binary-search descent between lower and the incumbent.
        std::int64_t lo = lower;
        std::int64_t hi = best_value;
        proven = true;
        while (lo < hi && Clock::now() < deadline) {
            std::int64_t mid = lo + (hi - lo) / 2;
            z3::check_result r =
                check_with_bound(mid, options.timeoutMs);
            if (r == z3::sat) {
                hi = best_value;
            } else if (r == z3::unsat) {
                lo = mid + 1;
            } else {
                proven = false; // timed out mid-search
                break;
            }
        }
        if (Clock::now() >= deadline && lo < best_value)
            proven = false;
    }

    // Cancellation overrides any incumbent found along the way.
    if (sol.failure == SmtFailure::Cancelled ||
        isCancelled(options.cancel))
        return cancelled_solution();

    sol.optimal = proven;
    if (sol.status.empty())
        sol.status = proven ? "optimal" : "feasible";

    if (best_model) {
        z3::model &m = *best_model;
        sol.layout = layout_of(m);
        sol.junctions.assign(n_gates, -1);
        for (const auto &cv : cnots) {
            z3::expr jv = m.eval(cv.junction, true);
            sol.junctions[cv.gateIdx] = jv.is_true() ? 0 : 1;
        }
        sol.feasible = true;
    }

    sol.solveSeconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    return sol;
}

} // namespace

SmtSolution
solveSmtMapping(const Machine &machine, const Circuit &prog,
                const SmtModelOptions &options)
{
    const auto t0 = Clock::now();
    try {
        return solveSmtMappingImpl(machine, prog, options);
    } catch (const z3::exception &e) {
        // The interrupt hook can fire while the model is still being
        // BUILT (solver.add on an interrupted context throws), not
        // just inside check(). The token, not the exception text, is
        // authoritative; a genuine Z3 failure stays a structured
        // error instead of escaping the solve.
        SmtSolution sol;
        sol.solveSeconds =
            std::chrono::duration<double>(Clock::now() - t0).count();
        if (isCancelled(options.cancel)) {
            sol.failure = SmtFailure::Cancelled;
            sol.status = "cancelled";
        } else {
            sol.failure = SmtFailure::Error;
            sol.status = std::string("z3 exception: ") + e.msg();
        }
        return sol;
    }
}

} // namespace qc
