/**
 * @file
 * Exact branch-and-bound optimizer for the placement subproblem of the
 * reliability objective (Eq. 12).
 *
 * Given the decomposition of the objective into per-qubit readout
 * terms and per-ordered-pair CNOT terms (with best-junction EC), the
 * placement problem is a quadratic assignment problem. This solver
 * explores placements depth-first with an admissible upper bound and
 * is used (a) to cross-validate the Z3 optimum in the test suite and
 * (b) as a fast exact placer in ablation benches.
 */

#ifndef QC_SOLVER_BNB_PLACER_HPP
#define QC_SOLVER_BNB_PLACER_HPP

#include <cstdint>
#include <vector>

#include "ir/circuit.hpp"
#include "machine/machine.hpp"

namespace qc {

/** Branch-and-bound controls. */
struct BnbOptions
{
    double readoutWeight = 0.5; ///< Eq. 12's omega
    std::int64_t nodeLimit = 50'000'000; ///< search-node safety cap
};

/** Result of a branch-and-bound solve. */
struct BnbResult
{
    std::vector<HwQubit> layout; ///< program qubit -> hardware qubit
    double objective = 0.0;      ///< Eq. 12 value of the layout
    std::int64_t nodesExplored = 0;
    bool optimal = false;        ///< false iff the node limit tripped
};

/**
 * Exact placement search.
 *
 * Maximizes w * sum(readout log) + (1-w) * sum(CNOT log EC_best) over
 * injective placements. Qubits are branched in a connectivity-aware
 * order; candidate locations are tried in decreasing immediate-gain
 * order; subtrees are pruned with an admissible bound combining the
 * best free readout location per unplaced qubit and the best feasible
 * EC per undetermined CNOT pair.
 */
class BnbPlacer
{
  public:
    BnbPlacer(const Machine &machine, const Circuit &prog,
              BnbOptions options = {});

    BnbResult solve();

  private:
    /** One ordered CNOT term of the decomposed objective. */
    struct Term
    {
        ProgQubit control;
        ProgQubit target;
        int weight;
    };

    double readoutGain(ProgQubit q, HwQubit h) const;
    double edgeGain(HwQubit hc, HwQubit ht) const;

    const Machine &machine_;
    const Circuit &prog_;
    BnbOptions options_;

    int numProg_;
    int numHw_;
    std::vector<int> readouts_;           ///< per program qubit
    std::vector<std::vector<double>> logEc_; ///< best-junction log EC
    std::vector<double> logRo_;           ///< per hw qubit log readout

    // Branching order and per-level adjacency to earlier levels.
    std::vector<ProgQubit> order_;
    struct LevelEdge { int earlierLevel; int weight; bool asControl; };
    std::vector<std::vector<LevelEdge>> levelEdges_;
    std::vector<Term> terms_; ///< ordered CNOT objective terms

    // Search state.
    std::vector<HwQubit> assign_;
    std::vector<bool> used_;
    std::vector<HwQubit> best_;
    double bestObj_ = 0.0;
    std::int64_t nodes_ = 0;
    bool hitLimit_ = false;

    void dfs(int level, double value);
    double bound(int level) const;
};

} // namespace qc

#endif // QC_SOLVER_BNB_PLACER_HPP
