/**
 * @file
 * Reliability-objective arithmetic shared by the SMT model, the
 * branch-and-bound placer, and the mapper reports.
 *
 * The paper's objective (Eq. 12) maximizes
 *     w * sum_readouts log(eps) + (1 - w) * sum_cnots log(eps)
 * with per-operation reliabilities eps drawn from the calibration
 * (readout) or the one-bend-path matrix EC (CNOT).
 */

#ifndef QC_SOLVER_OBJECTIVE_HPP
#define QC_SOLVER_OBJECTIVE_HPP

#include <cstdint>
#include <vector>

#include "ir/circuit.hpp"
#include "machine/machine.hpp"

namespace qc {

/** Fixed-point scale for log-reliability integers fed to Z3. */
inline constexpr double kLogScale = 1e5;

/** log(eps) scaled to a non-positive integer cost (rounded). */
std::int64_t scaledLog(double reliability);

/** Split log-reliability of a placed circuit. */
struct ReliabilityBreakdown
{
    double readoutLog = 0.0; ///< sum of log(readout eps)
    double cnotLog = 0.0;    ///< sum of log(CNOT EC)

    /** Eq. 12 with readout weight w. */
    double weighted(double w) const
    {
        return w * readoutLog + (1.0 - w) * cnotLog;
    }

    /** Unweighted product of all operation reliabilities. */
    double successEstimate() const;
};

/**
 * Evaluate the reliability breakdown of a layout.
 *
 * Each CNOT contributes its best-junction EC entry unless `junctions`
 * pins a specific one-bend route per program gate index (as the SMT
 * solution does); each readout contributes its hardware qubit's
 * readout reliability.
 */
ReliabilityBreakdown
evaluateReliability(const Circuit &prog, const std::vector<HwQubit> &layout,
                    const Machine &machine,
                    const std::vector<int> *junctions = nullptr);

/**
 * Per-ordered-pair CNOT multiplicities of a circuit: how many CNOTs
 * have control a and target b. Drives the decomposed placement
 * objective in the branch-and-bound placer.
 */
struct OrderedCnotWeights
{
    explicit OrderedCnotWeights(const Circuit &prog);

    int numQubits() const { return n_; }

    /** CNOT count with control a, target b. */
    int weight(ProgQubit a, ProgQubit b) const
    {
        return w_[static_cast<size_t>(a) * n_ + b];
    }

    /** All (control, target, count) triples with count > 0. */
    struct Entry { ProgQubit control; ProgQubit target; int count; };
    const std::vector<Entry> &entries() const { return entries_; }

    /** Readout multiplicity of qubit q. */
    int readouts(ProgQubit q) const { return readouts_[q]; }

  private:
    int n_;
    std::vector<int> w_;
    std::vector<int> readouts_;
    std::vector<Entry> entries_;
};

} // namespace qc

#endif // QC_SOLVER_OBJECTIVE_HPP
