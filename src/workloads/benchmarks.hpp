/**
 * @file
 * The paper's 12 evaluation benchmarks (Table 2): Bernstein-Vazirani
 * (4/6/8 qubits), Hidden Shift (2/4/6), the Toffoli / Fredkin / Or /
 * Peres reversible kernels, a one-bit full adder, and a 2-qubit QFT
 * kernel. Every benchmark has a deterministic correct answer so the
 * Monte-Carlo success rate is well-defined (Sec. 6 "Metrics").
 */

#ifndef QC_WORKLOADS_BENCHMARKS_HPP
#define QC_WORKLOADS_BENCHMARKS_HPP

#include <string>
#include <vector>

#include "ir/circuit.hpp"

namespace qc {

/** A benchmark: its circuit and the correct classical outcome. */
struct Benchmark
{
    std::string name;
    Circuit circuit;
    std::string expected; ///< classical-bit string (cbit 0 first)
};

/**
 * Bernstein-Vazirani on n qubits (n-1 data + 1 ancilla). The hidden
 * string has ones on the min(3, n-1) data qubits nearest the ancilla,
 * matching the paper's 3-CNOT instances for BV4/6/8.
 */
Benchmark makeBernsteinVazirani(int n_qubits);

/**
 * Hidden Shift for the bent function f(x) = AND of qubit pairs
 * (Childs & van Dam), n even. The shift has one bit set per pair;
 * the algorithm returns the shift deterministically.
 */
Benchmark makeHiddenShift(int n_qubits);

/** Toffoli kernel on input |110>: expected output 111. */
Benchmark makeToffoli();

/** Fredkin (controlled-SWAP) on input |110>: expected output 101. */
Benchmark makeFredkin();

/** OR kernel (a=1, b=0): NOT-AND-NOT construction, output 011. */
Benchmark makeOr();

/** Peres gate (Toffoli followed by CNOT) on |110>: output 101. */
Benchmark makePeres();

/**
 * One-bit full adder (cin=1, a=1, b=0): computes sum and carry with
 * linear-nearest-neighbor Toffolis so its interaction graph is a star
 * that embeds in the grid without SWAPs (the paper groups Adder with
 * the zero-movement benchmarks).
 */
Benchmark makeAdder();

/**
 * 2-qubit QFT kernel: prepares the Fourier state of |01> with
 * single-qubit gates and applies the inverse QFT (including the
 * 3-CNOT qubit reversal SWAP), returning 01 deterministically —
 * 13 gates and 5 CNOTs as in Table 2.
 */
Benchmark makeQft();

/**
 * n-bit ripple-carry adder computing a + b (extension beyond the
 * paper's one-bit Adder): VBE-style carry chain built from
 * linear-nearest-neighbor Toffolis, so the interaction graph is a
 * chain of degree-<=3 stars that embeds in grid machines. Uses
 * 3*bits + 1 qubits (a, b, carries); the sum appears on the b
 * register and the final carry on the last qubit. Deterministic, so
 * it doubles as a large-circuit routing stress test.
 *
 * @param bits  operand width (>= 1)
 * @param a_val first addend, < 2^bits
 * @param b_val second addend, < 2^bits
 */
Benchmark makeRippleCarryAdder(int bits, unsigned a_val,
                               unsigned b_val);

/** All 12 benchmarks in the paper's Figure 5 order. */
std::vector<Benchmark> paperBenchmarks();

/** Look up one benchmark by its Table 2 name (e.g. "BV4", "HS6"). */
Benchmark benchmarkByName(const std::string &name);

} // namespace qc

#endif // QC_WORKLOADS_BENCHMARKS_HPP
