#include "benchmarks.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace qc {

namespace {

/**
 * Linear-nearest-neighbor Toffoli: target ^= a AND b using only the
 * couplings (a, b) and (b, target) — 8 CNOTs, no (a, target) edge.
 *
 * Realizes CCZ through the phase-polynomial identity
 *   4*abc = a + b + c - (a^b) - (a^c) - (b^c) + (a^b^c)
 * with a CNOT parity ladder along the a-b-target chain, conjugated by
 * H on the target.
 */
void
lnnToffoli(Circuit &c, int a, int b, int t)
{
    c.h(t);
    c.t(a);
    c.t(b);
    c.t(t);
    c.cnot(a, b); // b = a^b
    c.tdg(b);
    c.cnot(b, t); // t = a^b^c
    c.t(t);
    c.cnot(a, b); // b = b
    c.cnot(b, t); // t = a^c
    c.tdg(t);
    c.cnot(a, b); // b = a^b
    c.cnot(b, t); // t = b^c
    c.tdg(t);
    c.cnot(a, b); // b = b
    c.cnot(b, t); // t = c
    c.h(t);
}

/** Controlled-phase(-pi/2). */
void
cphaseDag(Circuit &c, int ctrl, int tgt)
{
    c.tdg(ctrl);
    c.cnot(ctrl, tgt);
    c.t(tgt);
    c.cnot(ctrl, tgt);
    c.tdg(tgt);
}

/** SWAP as its 3-CNOT program-level expansion. */
void
swap3(Circuit &c, int a, int b)
{
    c.cnot(a, b);
    c.cnot(b, a);
    c.cnot(a, b);
}

} // namespace

Benchmark
makeBernsteinVazirani(int n_qubits)
{
    if (n_qubits < 2)
        QC_FATAL("Bernstein-Vazirani needs at least 2 qubits");
    const int ancilla = n_qubits - 1;
    const int n_data = n_qubits - 1;
    const int ones = std::min(3, n_data);

    std::vector<bool> hidden(n_data, false);
    for (int i = n_data - ones; i < n_data; ++i)
        hidden[i] = true;

    Circuit c("BV" + std::to_string(n_qubits), n_qubits);
    c.x(ancilla);
    c.h(ancilla);
    for (int i = 0; i < n_data; ++i) {
        if (!hidden[i])
            continue;
        c.h(i);
        c.cnot(i, ancilla);
        c.h(i);
    }
    std::string expected(static_cast<size_t>(n_qubits), '0');
    for (int i = 0; i < n_data; ++i) {
        c.measure(i, i);
        if (hidden[i])
            expected[i] = '1';
    }
    return {c.name(), c, expected};
}

Benchmark
makeHiddenShift(int n_qubits)
{
    if (n_qubits < 2 || n_qubits % 2 != 0)
        QC_FATAL("Hidden Shift needs an even qubit count >= 2");

    // Shift: one bit per pair (the even-indexed qubit).
    std::vector<bool> shift(n_qubits, false);
    for (int i = 0; i < n_qubits; i += 2)
        shift[i] = true;

    Circuit c("HS" + std::to_string(n_qubits), n_qubits);
    for (int i = 0; i < n_qubits; ++i)
        c.h(i);
    // Oracle of the shifted bent function f(x + s).
    for (int i = 0; i < n_qubits; ++i)
        if (shift[i])
            c.x(i);
    for (int i = 0; i < n_qubits; i += 2)
        c.cz(i, i + 1);
    for (int i = 0; i < n_qubits; ++i)
        if (shift[i])
            c.x(i);
    for (int i = 0; i < n_qubits; ++i)
        c.h(i);
    // Oracle of the dual function (f is self-dual for AND pairs).
    for (int i = 0; i < n_qubits; i += 2)
        c.cz(i, i + 1);
    for (int i = 0; i < n_qubits; ++i)
        c.h(i);

    std::string expected(static_cast<size_t>(n_qubits), '0');
    for (int i = 0; i < n_qubits; ++i) {
        c.measure(i, i);
        if (shift[i])
            expected[i] = '1';
    }
    return {c.name(), c, expected};
}

Benchmark
makeToffoli()
{
    Circuit c("Toffoli", 3);
    c.x(0);
    c.x(1);
    c.toffoli(0, 1, 2);
    for (int i = 0; i < 3; ++i)
        c.measure(i, i);
    return {c.name(), c, "111"};
}

Benchmark
makeFredkin()
{
    Circuit c("Fredkin", 3);
    c.x(0);
    c.x(1);
    // Fredkin(c, a, b) = CNOT(b, a); Toffoli(c, a, b); CNOT(b, a).
    c.cnot(2, 1);
    c.toffoli(0, 1, 2);
    c.cnot(2, 1);
    for (int i = 0; i < 3; ++i)
        c.measure(i, i);
    // control 1 swaps (1, 0) on qubits 1, 2 -> |1 0 1>.
    return {c.name(), c, "101"};
}

Benchmark
makeOr()
{
    Circuit c("Or", 3);
    // Input a=1, b=0.
    c.x(0);
    // OR(a, b) = NOT(AND(NOT a, NOT b)).
    c.x(0);
    c.x(1);
    c.toffoli(0, 1, 2);
    c.x(2);
    for (int i = 0; i < 3; ++i)
        c.measure(i, i);
    // Qubits 0, 1 end inverted: 0, 1; output OR = 1.
    return {c.name(), c, "011"};
}

Benchmark
makePeres()
{
    Circuit c("Peres", 3);
    c.x(0);
    c.x(1);
    // Peres(a, b, t) = Toffoli(a, b, t); CNOT(a, b). The appended
    // CNOT cancels the Toffoli decomposition's final CNOT(a, b),
    // leaving 5 CNOTs (Table 2).
    c.h(2);
    c.cnot(1, 2);
    c.tdg(2);
    c.cnot(0, 2);
    c.t(2);
    c.cnot(1, 2);
    c.tdg(2);
    c.cnot(0, 2);
    c.t(1);
    c.t(2);
    c.h(2);
    c.cnot(0, 1);
    c.t(0);
    c.tdg(1);
    for (int i = 0; i < 3; ++i)
        c.measure(i, i);
    // a=1, b=1, t=0 -> a=1, b=a^b=0, t=t^ab=1.
    return {c.name(), c, "101"};
}

Benchmark
makeAdder()
{
    // q0 = cin, q1 = a, q2 = b, q3 = carry-out ancilla. Interaction
    // graph is the star {(q1,q2), (q2,q3), (q0,q2)}: grid-embeddable
    // without SWAPs.
    Circuit c("Adder", 4);
    // Inputs cin=1, a=1, b=0.
    c.x(0);
    c.x(1);
    // cout ^= a AND b.
    lnnToffoli(c, 1, 2, 3);
    // b = a XOR b.
    c.cnot(1, 2);
    // cout ^= cin AND (a XOR b)  -> cout = MAJ(a, b, cin).
    lnnToffoli(c, 0, 2, 3);
    // b = cin XOR a XOR b = sum.
    c.cnot(0, 2);
    for (int i = 0; i < 4; ++i)
        c.measure(i, i);
    // cin=1, a=1, b=0: sum = 0, cout = 1 -> "1101"? q0=1, q1=1,
    // q2=sum=0, q3=cout=1.
    return {c.name(), c, "1101"};
}

Benchmark
makeQft()
{
    // Prepare QFT|01> as a product state (q0 = |->, q1 = |+> after
    // the reversal convention), then run the inverse QFT including
    // its 3-CNOT reversal SWAP: 13 gates, 5 CNOTs (Table 2).
    Circuit c("QFT", 2);
    c.x(1);
    c.h(1);
    c.h(0);
    swap3(c, 0, 1);
    c.h(1);
    cphaseDag(c, 1, 0);
    c.h(0);
    c.measure(0, 0);
    c.measure(1, 1);
    return {c.name(), c, "10"};
}

Benchmark
makeRippleCarryAdder(int bits, unsigned a_val, unsigned b_val)
{
    if (bits < 1 || bits > 20)
        QC_FATAL("ripple-carry adder supports 1..20 bits, got ", bits);
    if (a_val >= (1u << bits) || b_val >= (1u << bits))
        QC_FATAL("addend does not fit in ", bits, " bits");

    // Register layout: a[i] = qubit i, b[i] = bits + i,
    // carry c[i] = 2*bits + i for i in [0, bits].
    const int n = 3 * bits + 1;
    auto qa = [&](int i) { return i; };
    auto qb = [&](int i) { return bits + i; };
    auto qc_ = [&](int i) { return 2 * bits + i; };

    Circuit c("RCAdder" + std::to_string(bits), n);
    for (int i = 0; i < bits; ++i) {
        if (a_val & (1u << i))
            c.x(qa(i));
        if (b_val & (1u << i))
            c.x(qb(i));
    }
    for (int i = 0; i < bits; ++i) {
        // c[i+1] ^= a[i] AND b[i]
        lnnToffoli(c, qa(i), qb(i), qc_(i + 1));
        // b[i] ^= a[i]
        c.cnot(qa(i), qb(i));
        // c[i+1] ^= c[i] AND (a[i] xor b[i])
        lnnToffoli(c, qc_(i), qb(i), qc_(i + 1));
        // b[i] ^= c[i]  ->  b[i] = sum bit i
        c.cnot(qc_(i), qb(i));
    }

    // Classical reference model for the expected outcome.
    std::string expected(static_cast<size_t>(n), '0');
    unsigned sum = a_val + b_val;
    std::vector<int> carry(bits + 1, 0);
    for (int i = 0; i < bits; ++i) {
        int ai = (a_val >> i) & 1;
        int bi = (b_val >> i) & 1;
        carry[i + 1] = (ai + bi + carry[i]) >> 1;
    }
    for (int i = 0; i < bits; ++i) {
        c.measure(qa(i), qa(i));
        if ((a_val >> i) & 1)
            expected[qa(i)] = '1';
        c.measure(qb(i), qb(i));
        if ((sum >> i) & 1)
            expected[qb(i)] = '1';
    }
    for (int i = 0; i <= bits; ++i) {
        c.measure(qc_(i), qc_(i));
        if (carry[i])
            expected[qc_(i)] = '1';
    }
    return {c.name(), c, expected};
}

std::vector<Benchmark>
paperBenchmarks()
{
    return {
        makeBernsteinVazirani(4),
        makeBernsteinVazirani(6),
        makeBernsteinVazirani(8),
        makeHiddenShift(2),
        makeHiddenShift(4),
        makeHiddenShift(6),
        makeToffoli(),
        makeFredkin(),
        makeOr(),
        makePeres(),
        makeQft(),
        makeAdder(),
    };
}

Benchmark
benchmarkByName(const std::string &name)
{
    for (auto &b : paperBenchmarks())
        if (b.name == name)
            return b;
    QC_FATAL("unknown benchmark '", name, "'");
}

} // namespace qc
