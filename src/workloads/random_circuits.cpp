#include "random_circuits.hpp"

#include "support/logging.hpp"
#include "support/rng.hpp"

namespace qc {

Circuit
makeRandomCircuit(const RandomCircuitSpec &spec)
{
    if (spec.numQubits < 2)
        QC_FATAL("random circuits need at least 2 qubits");
    if (spec.numGates < 1)
        QC_FATAL("random circuits need at least 1 gate");

    Rng rng(spec.seed, "random-circuit");
    Circuit c("rand_q" + std::to_string(spec.numQubits) + "_g" +
                  std::to_string(spec.numGates),
              spec.numQubits);

    static const Op kOneQubit[6] = {Op::H, Op::X, Op::Y,
                                    Op::Z, Op::S, Op::T};

    for (int i = 0; i < spec.numGates; ++i) {
        // Ensure every qubit is touched at least once.
        int forced = i < spec.numQubits ? i : -1;
        bool cnot = rng.uniformInt(0, 6) == 6; // 1-in-7 like the set
        if (cnot) {
            int a = forced >= 0 ? forced
                                : rng.uniformInt(0, spec.numQubits - 1);
            int b = rng.uniformInt(0, spec.numQubits - 2);
            if (b >= a)
                ++b;
            c.cnot(a, b);
        } else {
            int q = forced >= 0 ? forced
                                : rng.uniformInt(0, spec.numQubits - 1);
            c.add({kOneQubit[rng.uniformInt(0, 5)], q, kInvalidQubit,
                   -1});
        }
    }
    if (spec.measureAll)
        for (int q = 0; q < spec.numQubits; ++q)
            c.measure(q, q);
    return c;
}

Circuit
makeDenseCnotCircuit(int n_qubits, int n_gates, std::uint64_t seed,
                     int cnot_permille)
{
    if (n_qubits < 2)
        QC_FATAL("dense-CNOT circuits need at least 2 qubits");
    Rng rng(seed, "dense-cnot");
    Circuit c("dense_q" + std::to_string(n_qubits) + "_g" +
                  std::to_string(n_gates),
              n_qubits);
    for (int i = 0; i < n_gates; ++i) {
        if (rng.uniformInt(0, 999) < cnot_permille) {
            int a = rng.uniformInt(0, n_qubits - 1);
            int b = rng.uniformInt(0, n_qubits - 2);
            if (b >= a)
                ++b;
            c.cnot(a, b);
        } else {
            c.h(rng.uniformInt(0, n_qubits - 1));
        }
    }
    for (int q = 0; q < n_qubits; ++q)
        c.measure(q, q);
    return c;
}

} // namespace qc
