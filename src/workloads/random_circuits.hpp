/**
 * @file
 * Synthetic random-program generator for the scalability study
 * (paper Sec. 6: 4-128 qubits, 128-2048 gates, gates sampled
 * uniformly from the universal set {H, X, Y, Z, S, T, CNOT}).
 */

#ifndef QC_WORKLOADS_RANDOM_CIRCUITS_HPP
#define QC_WORKLOADS_RANDOM_CIRCUITS_HPP

#include <cstdint>

#include "ir/circuit.hpp"

namespace qc {

/** Generation parameters. */
struct RandomCircuitSpec
{
    int numQubits = 4;
    int numGates = 128;     ///< unitary gate count (measures excluded)
    std::uint64_t seed = 0;
    bool measureAll = true; ///< append a measurement on every qubit
};

/**
 * Deterministically generate a random circuit for a spec. Every qubit
 * is guaranteed to appear in at least one gate (qubit i seeds gate i
 * for the first numQubits gates when numGates allows), matching the
 * paper's fully-used synthetic programs.
 */
Circuit makeRandomCircuit(const RandomCircuitSpec &spec);

/**
 * CNOT-heavy random program: `cnot_permille`/1000 of the gates are
 * CNOTs between uniformly drawn distinct qubits, the rest are H, and
 * every qubit is measured at the end — far more routing pressure than
 * the universal-set 1-in-7 CNOT mix of makeRandomCircuit. The
 * scheduler hot-path bench and its bit-identity stress tests share
 * this generator so the workloads cannot drift apart.
 */
Circuit makeDenseCnotCircuit(int n_qubits, int n_gates,
                             std::uint64_t seed, int cnot_permille);

} // namespace qc

#endif // QC_WORKLOADS_RANDOM_CIRCUITS_HPP
