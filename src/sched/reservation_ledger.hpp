/**
 * @file
 * Indexed space-time reservation store for the list scheduler.
 *
 * The reference scheduler answers "when can this routed CNOT start?"
 * by scanning every reservation it ever committed (Eq. 7-9 checks
 * against the full history). The ledger replaces that scan with two
 * structural facts:
 *
 *  - Two inclusive grid rectangles overlap iff they share a grid
 *    cell, so bucketing each reservation under every cell its region
 *    covers makes "spatially overlapping reservations" a bucket
 *    lookup over the candidate's own cells — no geometry tests on
 *    unrelated reservations.
 *
 *  - List-scheduling commit times are monotone non-decreasing (the
 *    scheduler always commits the minimum feasible start among ready
 *    gates), so once the commit frontier passes a reservation's end
 *    it can never again constrain a query. Such reservations are
 *    retired lazily during bucket scans.
 *
 * feasibleStart computes exactly the fixed point the reference scan
 * computes — the minimal feasible start is unique (every push past an
 * overlapping reservation is forced), so the two implementations are
 * bit-identical; tests/test_scheduler_hotpath.cpp asserts this across
 * every mapper bundle and randomized dense-CNOT programs.
 */

#ifndef QC_SCHED_RESERVATION_LEDGER_HPP
#define QC_SCHED_RESERVATION_LEDGER_HPP

#include <vector>

#include "route/region.hpp"
#include "support/types.hpp"

namespace qc {

/**
 * Active space-time reservations, bucketed per grid cell behind a
 * monotone retirement frontier.
 */
class ReservationLedger
{
  public:
    /** @param rows,cols grid extents of the machine topology */
    ReservationLedger(int rows, int cols);

    /** Record a reservation of `region` over [start, end). */
    void reserve(const Region &region, Timeslot start, Timeslot end);

    /**
     * Advance the retirement frontier to `t` (monotone; lesser values
     * are ignored). The caller promises every later feasibleStart
     * resolves to >= t, so reservations with end <= t are dead and
     * get dropped from their buckets lazily.
     */
    void advanceFrontier(Timeslot t);

    Timeslot frontier() const { return frontier_; }

    /**
     * Minimal start >= max(earliest, frontier()) such that
     * [start, start + duration) overlaps no live reservation whose
     * region overlaps `region` — the same fixed point the reference
     * full-history scan reaches, because a time-overlapping
     * reservation leaves no feasible slot before its end.
     *
     * Non-const only because dead reservations are purged from the
     * buckets it touches.
     */
    Timeslot feasibleStart(const Region &region, Timeslot duration,
                           Timeslot earliest);

    /** Reservations whose interval ends past the frontier. */
    int liveCount() const;

    /** Every reservation ever recorded (diagnostics). */
    int totalCount() const { return static_cast<int>(entries_.size()); }

  private:
    struct Entry
    {
        Timeslot start;
        Timeslot end;
    };

    /** Append the grid-cell ids covered by `region` to `out`. */
    void cellsOf(const Region &region, std::vector<int> &out) const;

    int rows_;
    int cols_;
    Timeslot frontier_ = 0;
    std::vector<Entry> entries_;
    std::vector<std::vector<int>> byCell_; ///< cell -> entry ids
    std::vector<int> visitStamp_;          ///< entry id -> sweep serial
    int sweepSerial_ = 0;
    std::vector<int> cellScratch_;
};

} // namespace qc

#endif // QC_SCHED_RESERVATION_LEDGER_HPP
