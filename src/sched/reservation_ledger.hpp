/**
 * @file
 * Indexed space-time reservation store for the list scheduler.
 *
 * The reference scheduler answers "when can this routed CNOT start?"
 * by scanning every reservation it ever committed (Eq. 7-9 checks
 * against the full history). The ledger replaces that scan with two
 * structural facts:
 *
 *  - Two regions overlap iff they share a qubit (Region is a
 *    qubit-set footprint), so bucketing each reservation under every
 *    qubit its region covers makes "spatially overlapping
 *    reservations" a bucket lookup over the candidate's own qubits —
 *    no set-intersection tests on unrelated reservations. On grid
 *    topologies qubits are grid cells, so this is exactly the
 *    historical per-cell bucketing; on arbitrary coupling graphs it
 *    works unchanged.
 *
 *  - List-scheduling commit times are monotone non-decreasing (the
 *    scheduler always commits the minimum feasible start among ready
 *    gates), so once the commit frontier passes a reservation's end
 *    it can never again constrain a query. Such reservations are
 *    retired lazily during bucket scans.
 *
 * feasibleStart computes exactly the fixed point the reference scan
 * computes — the minimal feasible start is unique (every push past an
 * overlapping reservation is forced), so the two implementations are
 * bit-identical; tests/test_scheduler_hotpath.cpp asserts this across
 * every mapper bundle, randomized dense-CNOT programs, and non-grid
 * topologies.
 */

#ifndef QC_SCHED_RESERVATION_LEDGER_HPP
#define QC_SCHED_RESERVATION_LEDGER_HPP

#include <vector>

#include "route/region.hpp"
#include "support/types.hpp"

namespace qc {

/**
 * Active space-time reservations, bucketed per hardware qubit behind
 * a monotone retirement frontier.
 */
class ReservationLedger
{
  public:
    /** @param num_qubits qubit count of the machine topology */
    explicit ReservationLedger(int num_qubits);

    /** Record a reservation of `region` over [start, end). */
    void reserve(const Region &region, Timeslot start, Timeslot end);

    /**
     * Advance the retirement frontier to `t` (monotone; lesser values
     * are ignored). The caller promises every later feasibleStart
     * resolves to >= t, so reservations with end <= t are dead and
     * get dropped from their buckets lazily.
     */
    void advanceFrontier(Timeslot t);

    Timeslot frontier() const { return frontier_; }

    /**
     * Minimal start >= max(earliest, frontier()) such that
     * [start, start + duration) overlaps no live reservation whose
     * region overlaps `region` — the same fixed point the reference
     * full-history scan reaches, because a time-overlapping
     * reservation leaves no feasible slot before its end.
     *
     * Non-const only because dead reservations are purged from the
     * buckets it touches.
     */
    Timeslot feasibleStart(const Region &region, Timeslot duration,
                           Timeslot earliest);

    /** Reservations whose interval ends past the frontier. */
    int liveCount() const;

    /** Every reservation ever recorded (diagnostics). */
    int totalCount() const { return static_cast<int>(entries_.size()); }

  private:
    struct Entry
    {
        Timeslot start;
        Timeslot end;
    };

    /** Bounds-check `region` against the machine's qubit range. */
    void checkRegion(const Region &region) const;

    int numQubits_;
    Timeslot frontier_ = 0;
    std::vector<Entry> entries_;
    std::vector<std::vector<int>> byQubit_; ///< qubit -> entry ids
    std::vector<int> visitStamp_;           ///< entry id -> sweep serial
    int sweepSerial_ = 0;
};

} // namespace qc

#endif // QC_SCHED_RESERVATION_LEDGER_HPP
