#include "tracking_router.hpp"

#include <algorithm>
#include <cmath>

#include "sched/list_scheduler.hpp"
#include "support/logging.hpp"

namespace qc {

TrackingRouter::TrackingRouter(const Machine &machine,
                               TrackingOptions options)
    : machine_(machine), options_(options)
{
}

TrackingResult
TrackingRouter::run(const Circuit &prog,
                    std::vector<HwQubit> initial_layout,
                    const CancelToken *cancel) const
{
    const auto &topo = machine_.topo();
    const auto &cal = machine_.cal();
    validateLayout(initial_layout, prog.numQubits(), topo.numQubits());

    // Live placement and its inverse (hw qubit -> program qubit or
    // kInvalidQubit for a free location).
    std::vector<HwQubit> layout = std::move(initial_layout);
    std::vector<ProgQubit> occupant(topo.numQubits(), kInvalidQubit);
    for (ProgQubit p = 0; p < prog.numQubits(); ++p)
        occupant[layout[p]] = p;

    TrackingResult result;
    Schedule &sched = result.schedule;
    sched.numHwQubits = topo.numQubits();
    sched.macros.resize(prog.size());
    sched.qubitFinish.assign(topo.numQubits(), 0);

    std::vector<Timeslot> avail(topo.numQubits(), 0);
    double log_rel = 0.0;

    auto emit = [&](Op op, HwQubit a, HwQubit b, int cbit,
                    Timeslot start, Timeslot dur, int prog_gate,
                    bool is_swap) {
        TimedOp top;
        top.gate = {op, a, b, cbit};
        top.start = start;
        top.duration = dur;
        top.progGate = prog_gate;
        top.isRouteSwap = is_swap;
        sched.ops.push_back(top);
        sched.makespan = std::max(sched.makespan, start + dur);
    };

    // Perform one live SWAP on an edge, exchanging occupants.
    auto do_swap = [&](HwQubit a, HwQubit b, Timeslot start,
                       int prog_gate) {
        EdgeId e = topo.edgeBetween(a, b);
        QC_ASSERT(e != kInvalidEdge, "tracking swap on non-edge");
        Timeslot dur = 3 * cal.cnotDuration[e];
        emit(Op::Swap, a, b, -1, start, dur, prog_gate, true);
        double rel = cal.cnotReliability(e);
        log_rel += 3.0 * std::log(rel);
        std::swap(occupant[a], occupant[b]);
        if (occupant[a] != kInvalidQubit)
            layout[occupant[a]] = a;
        if (occupant[b] != kInvalidQubit)
            layout[occupant[b]] = b;
        ++result.swapCount;
        return dur;
    };

    for (size_t gi = 0; gi < prog.size(); ++gi) {
        throwIfCancelled(cancel, "tracking routing cancelled");
        const Gate &g = prog.gate(gi);
        if (g.op == Op::Swap)
            QC_FATAL("program-level circuits must not contain Swap");

        if (g.op == Op::CNOT) {
            HwQubit c = layout[g.q0];
            HwQubit t = layout[g.q1];
            std::vector<HwQubit> path =
                options_.dijkstraPaths
                    ? machine_.mostReliablePath(c, t)
                    : machine_.bestReliabilityPath(c, t).nodes;

            // All qubits on the path serialize with this macro-op.
            Timeslot start = 0;
            for (HwQubit h : path)
                start = std::max(start, avail[h]);

            Timeslot cursor = start;
            // One-way SWAP chain: move the control to the node
            // adjacent to the target (no restore).
            for (size_t k = 0; k + 2 < path.size(); ++k)
                cursor += do_swap(path[k], path[k + 1], cursor,
                                  static_cast<int>(gi));

            HwQubit moved_c = path[path.size() - 2];
            EdgeId e = topo.edgeBetween(moved_c, t);
            QC_ASSERT(e != kInvalidEdge, "tracking CNOT on non-edge");
            emit(Op::CNOT, moved_c, t, -1, cursor,
                 cal.cnotDuration[e], static_cast<int>(gi), false);
            log_rel += std::log(cal.cnotReliability(e));
            cursor += cal.cnotDuration[e];

            sched.macros[gi] = {static_cast<int>(gi), start,
                                cursor - start};
            for (HwQubit h : path)
                avail[h] = cursor;
        } else if (g.isMeasure()) {
            HwQubit h = layout[g.q0];
            Timeslot start = avail[h];
            emit(Op::Measure, h, kInvalidQubit, g.cbit, start,
                 cal.readoutDuration, static_cast<int>(gi), false);
            log_rel += std::log(cal.readoutReliability(h));
            avail[h] = start + cal.readoutDuration;
            sched.macros[gi] = {static_cast<int>(gi), start,
                                cal.readoutDuration};
        } else {
            HwQubit h = layout[g.q0];
            Timeslot start = avail[h];
            emit(g.op, h, kInvalidQubit, -1, start,
                 cal.oneQubitDuration, static_cast<int>(gi), false);
            avail[h] = start + cal.oneQubitDuration;
            sched.macros[gi] = {static_cast<int>(gi), start,
                                cal.oneQubitDuration};
        }
    }

    for (const auto &op : sched.ops) {
        sched.qubitFinish[op.gate.q0] =
            std::max(sched.qubitFinish[op.gate.q0], op.finish());
        if (op.gate.isTwoQubit())
            sched.qubitFinish[op.gate.q1] =
                std::max(sched.qubitFinish[op.gate.q1], op.finish());
    }

    result.finalLayout = std::move(layout);
    result.predictedSuccess = std::exp(log_rel);
    return result;
}

} // namespace qc
