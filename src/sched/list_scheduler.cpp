#include "list_scheduler.hpp"

#include <algorithm>
#include <limits>

#include "ir/dag.hpp"
#include "support/logging.hpp"

namespace qc {

void
validateLayout(const std::vector<HwQubit> &layout, int n_prog, int n_hw)
{
    if (static_cast<int>(layout.size()) != n_prog)
        QC_FATAL("layout arity ", layout.size(), " != program qubits ",
                 n_prog);
    std::vector<bool> used(n_hw, false);
    for (HwQubit h : layout) {
        if (h < 0 || h >= n_hw)
            QC_FATAL("layout maps to out-of-range hardware qubit ", h);
        if (used[h])
            QC_FATAL("layout maps two program qubits to hardware qubit ",
                     h);
        used[h] = true;
    }
}

ListScheduler::ListScheduler(const Machine &machine,
                             SchedulerOptions options)
    : machine_(machine), options_(std::move(options))
{
}

RoutePath
ListScheduler::chooseRoute(HwQubit c, HwQubit t, int gate_idx) const
{
    switch (options_.select) {
      case RouteSelect::BestReliability:
        return machine_.bestReliabilityPath(c, t);
      case RouteSelect::BestDuration:
        return machine_.bestDurationPath(c, t);
      case RouteSelect::Dijkstra:
        return machine_.dijkstraRoute(c, t);
      case RouteSelect::Fixed: {
        QC_ASSERT(gate_idx >= 0 &&
                      gate_idx <
                          static_cast<int>(options_.fixedJunctions.size()),
                  "no fixed junction recorded for gate ", gate_idx);
        int j = options_.fixedJunctions[gate_idx];
        QC_ASSERT(j >= 0, "fixed junction missing for CNOT gate ",
                  gate_idx);
        j = std::min(j, machine_.numOneBendPaths(c, t) - 1);
        return machine_.oneBendPath(c, t, j);
      }
    }
    QC_PANIC("unknown route selection");
}

namespace {

/** An active space-time reservation. */
struct Reservation
{
    Region region;
    Timeslot start;
    Timeslot end;
};

} // namespace

Schedule
ListScheduler::run(const Circuit &prog,
                   const std::vector<HwQubit> &layout) const
{
    const auto &topo = machine_.topo();
    const auto &cal = machine_.cal();
    validateLayout(layout, prog.numQubits(), topo.numQubits());

    const Timeslot uniform_cnot =
        options_.calibratedDurations ? -1 : machine_.uniformCnotDuration();

    DependencyDag dag(prog);
    const size_t n_gates = prog.size();

    // Per-gate routing decisions, computed once.
    struct GatePlan
    {
        std::vector<HwQubit> touched; ///< hw qubits whose time advances
        Timeslot duration = 0;
        RoutePath route;              ///< CNOTs only
        Region region;                ///< CNOTs only
        bool routed = false;
    };
    std::vector<GatePlan> plans(n_gates);
    for (size_t i = 0; i < n_gates; ++i) {
        const Gate &g = prog.gate(i);
        GatePlan &plan = plans[i];
        if (g.op == Op::CNOT) {
            HwQubit c = layout[g.q0];
            HwQubit t = layout[g.q1];
            plan.route = chooseRoute(c, t, static_cast<int>(i));
            if (uniform_cnot >= 0) {
                plan.duration = machine_.uniformRouteDuration(
                    static_cast<int>(plan.route.edges.size()));
            } else {
                plan.duration = plan.route.duration;
            }
            plan.region = routeRegion(topo, plan.route, options_.policy);
            plan.touched = plan.route.nodes;
            plan.routed = true;
        } else if (g.isMeasure()) {
            plan.duration = cal.readoutDuration;
            plan.touched = {layout[g.q0]};
        } else if (g.op == Op::Swap) {
            QC_FATAL("program-level circuits must not contain Swap");
        } else {
            plan.duration = cal.oneQubitDuration;
            plan.touched = {layout[g.q0]};
        }
    }

    std::vector<Timeslot> qubit_avail(topo.numQubits(), 0);
    std::vector<Timeslot> gate_finish(n_gates, 0);
    std::vector<int> preds_left(n_gates, 0);
    for (size_t i = 0; i < n_gates; ++i)
        preds_left[i] = static_cast<int>(dag.preds(static_cast<int>(i))
                                             .size());

    std::vector<int> ready;
    for (int r : dag.roots())
        ready.push_back(r);

    std::vector<Reservation> reservations;

    auto feasible_start = [&](int gi) {
        const GatePlan &plan = plans[gi];
        Timeslot start = 0;
        for (int p : dag.preds(gi))
            start = std::max(start, gate_finish[p]);
        for (HwQubit h : plan.touched)
            start = std::max(start, qubit_avail[h]);
        if (plan.routed) {
            // Push past every spatially-overlapping reservation that
            // would overlap in time (S(i,j) => !T(i,j), Eq. 7-9).
            bool moved = true;
            while (moved) {
                moved = false;
                for (const auto &res : reservations) {
                    bool time_overlap = start < res.end &&
                                        res.start < start + plan.duration;
                    if (time_overlap &&
                        plan.region.overlaps(res.region)) {
                        start = res.end;
                        moved = true;
                    }
                }
            }
        }
        return start;
    };

    Schedule sched;
    sched.numHwQubits = topo.numQubits();
    sched.macros.resize(n_gates);
    sched.qubitFinish.assign(topo.numQubits(), 0);

    size_t scheduled = 0;
    while (scheduled < n_gates) {
        QC_ASSERT(!ready.empty(), "scheduler deadlock: no ready gates");

        // Earliest-ready-gate-first: commit the ready gate with the
        // smallest feasible start (ties: lowest index).
        int best_gate = -1;
        Timeslot best_start = std::numeric_limits<Timeslot>::max();
        size_t best_pos = 0;
        for (size_t k = 0; k < ready.size(); ++k) {
            int gi = ready[k];
            Timeslot s = feasible_start(gi);
            if (s < best_start ||
                (s == best_start && gi < best_gate)) {
                best_start = s;
                best_gate = gi;
                best_pos = k;
            }
        }
        ready.erase(ready.begin() + static_cast<long>(best_pos));

        const Gate &g = prog.gate(best_gate);
        const GatePlan &plan = plans[best_gate];
        Timeslot start = best_start;
        Timeslot finish = start + plan.duration;

        sched.macros[best_gate] = {best_gate, start, plan.duration};
        gate_finish[best_gate] = finish;

        if (plan.routed) {
            reservations.push_back({plan.region, start, finish});
            for (const MicroOp &mop :
                 expandRoute(machine_, plan.route, uniform_cnot)) {
                TimedOp top;
                top.gate = mop.gate;
                top.start = start + mop.offset;
                top.duration = mop.duration;
                top.progGate = best_gate;
                top.isRouteSwap = mop.isRouteSwap;
                sched.ops.push_back(top);
            }
        } else {
            TimedOp top;
            top.gate = g;
            top.gate.q0 = layout[g.q0];
            top.start = start;
            top.duration = plan.duration;
            top.progGate = best_gate;
            sched.ops.push_back(top);
        }

        for (HwQubit h : plan.touched)
            qubit_avail[h] = finish;
        sched.makespan = std::max(sched.makespan, finish);

        for (int s : dag.succs(best_gate)) {
            if (--preds_left[s] == 0)
                ready.push_back(s);
        }
        ++scheduled;
    }

    // Last physical use of each qubit (macro windows are conservative
    // for availability; decoherence accounting wants actual op times).
    for (const auto &op : sched.ops) {
        sched.qubitFinish[op.gate.q0] =
            std::max(sched.qubitFinish[op.gate.q0], op.finish());
        if (op.gate.isTwoQubit()) {
            sched.qubitFinish[op.gate.q1] =
                std::max(sched.qubitFinish[op.gate.q1], op.finish());
        }
    }

    return sched;
}

} // namespace qc
