#include "list_scheduler.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <utility>

#include "ir/dag.hpp"
#include "sched/reservation_ledger.hpp"
#include "support/logging.hpp"

namespace qc {

void
validateLayout(const std::vector<HwQubit> &layout, int n_prog, int n_hw)
{
    if (static_cast<int>(layout.size()) != n_prog)
        QC_FATAL("layout arity ", layout.size(), " != program qubits ",
                 n_prog);
    std::vector<bool> used(n_hw, false);
    for (HwQubit h : layout) {
        if (h < 0 || h >= n_hw)
            QC_FATAL("layout maps to out-of-range hardware qubit ", h);
        if (used[h])
            QC_FATAL("layout maps two program qubits to hardware qubit ",
                     h);
        used[h] = true;
    }
}

ListScheduler::ListScheduler(const Machine &machine,
                             SchedulerOptions options)
    : machine_(machine), options_(std::move(options))
{
}

RoutePath
ListScheduler::chooseRoute(HwQubit c, HwQubit t, int gate_idx) const
{
    switch (options_.select) {
      case RouteSelect::BestReliability:
        return machine_.bestReliabilityPath(c, t);
      case RouteSelect::BestDuration:
        return machine_.bestDurationPath(c, t);
      case RouteSelect::Dijkstra:
        return machine_.dijkstraRoute(c, t);
      case RouteSelect::Fixed: {
        QC_ASSERT(gate_idx >= 0 &&
                      gate_idx <
                          static_cast<int>(options_.fixedJunctions.size()),
                  "no fixed junction recorded for gate ", gate_idx);
        int j = options_.fixedJunctions[gate_idx];
        QC_ASSERT(j >= 0, "fixed junction missing for CNOT gate ",
                  gate_idx);
        j = std::min(j, machine_.numOneBendPaths(c, t) - 1);
        return machine_.oneBendPath(c, t, j);
      }
    }
    QC_PANIC("unknown route selection");
}

namespace {

/** An active space-time reservation (reference-mode full scan). */
struct Reservation
{
    Region region;
    Timeslot start;
    Timeslot end;
};

} // namespace

Schedule
ListScheduler::run(const Circuit &prog,
                   const std::vector<HwQubit> &layout,
                   const CancelToken *cancel) const
{
    const auto &topo = machine_.topo();
    const auto &cal = machine_.cal();
    validateLayout(layout, prog.numQubits(), topo.numQubits());

    const Timeslot uniform_cnot =
        options_.calibratedDurations ? -1 : machine_.uniformCnotDuration();

    DependencyDag dag(prog);
    const size_t n_gates = prog.size();

    // Per-gate routing decisions, computed once.
    struct GatePlan
    {
        std::vector<HwQubit> touched; ///< hw qubits whose time advances
        Timeslot duration = 0;
        RoutePath route;              ///< CNOTs only
        Region region;                ///< CNOTs only
        bool routed = false;
    };
    std::vector<GatePlan> plans(n_gates);
    for (size_t i = 0; i < n_gates; ++i) {
        const Gate &g = prog.gate(i);
        GatePlan &plan = plans[i];
        if (g.op == Op::CNOT) {
            HwQubit c = layout[g.q0];
            HwQubit t = layout[g.q1];
            plan.route = chooseRoute(c, t, static_cast<int>(i));
            if (uniform_cnot >= 0) {
                plan.duration = machine_.uniformRouteDuration(
                    static_cast<int>(plan.route.edges.size()));
            } else {
                plan.duration = plan.route.duration;
            }
            plan.region = routeRegion(topo, plan.route, options_.policy);
            plan.touched = plan.route.nodes;
            plan.routed = true;
        } else if (g.isMeasure()) {
            plan.duration = cal.readoutDuration;
            plan.touched = {layout[g.q0]};
        } else if (g.op == Op::Swap) {
            QC_FATAL("program-level circuits must not contain Swap");
        } else {
            plan.duration = cal.oneQubitDuration;
            plan.touched = {layout[g.q0]};
        }
    }

    std::vector<Timeslot> qubit_avail(topo.numQubits(), 0);
    std::vector<Timeslot> gate_finish(n_gates, 0);
    std::vector<int> preds_left(n_gates, 0);
    for (size_t i = 0; i < n_gates; ++i)
        preds_left[i] = static_cast<int>(dag.preds(static_cast<int>(i))
                                             .size());

    Schedule sched;
    sched.numHwQubits = topo.numQubits();
    sched.macros.resize(n_gates);
    sched.qubitFinish.assign(topo.numQubits(), 0);

    // Dependency/qubit lower bound on a ready gate's start time (the
    // reservation constraints push routed gates past this).
    auto lower_bound = [&](int gi) {
        Timeslot start = 0;
        for (int p : dag.preds(gi))
            start = std::max(start, gate_finish[p]);
        for (HwQubit h : plans[gi].touched)
            start = std::max(start, qubit_avail[h]);
        return start;
    };

    // Commit one gate at its feasible start: record macro timing,
    // emit the timed hardware ops, advance the touched qubits.
    auto commit = [&](int gi, Timeslot start) {
        const Gate &g = prog.gate(gi);
        const GatePlan &plan = plans[gi];
        Timeslot finish = start + plan.duration;

        sched.macros[gi] = {gi, start, plan.duration};
        gate_finish[gi] = finish;

        if (plan.routed) {
            for (const MicroOp &mop :
                 expandRoute(machine_, plan.route, uniform_cnot)) {
                TimedOp top;
                top.gate = mop.gate;
                top.start = start + mop.offset;
                top.duration = mop.duration;
                top.progGate = gi;
                top.isRouteSwap = mop.isRouteSwap;
                sched.ops.push_back(top);
            }
        } else {
            TimedOp top;
            top.gate = g;
            top.gate.q0 = layout[g.q0];
            top.start = start;
            top.duration = plan.duration;
            top.progGate = gi;
            sched.ops.push_back(top);
        }

        for (HwQubit h : plan.touched)
            qubit_avail[h] = finish;
        sched.makespan = std::max(sched.makespan, finish);
        return finish;
    };

    if (options_.referenceMode) {
        // ---- Reference implementation: full scans every iteration.
        // Kept verbatim as the oracle the indexed path is tested
        // against (bit-identity on every input).
        std::vector<int> ready;
        for (int r : dag.roots())
            ready.push_back(r);

        std::vector<Reservation> reservations;

        auto feasible_start = [&](int gi) {
            const GatePlan &plan = plans[gi];
            Timeslot start = lower_bound(gi);
            if (plan.routed) {
                // Push past every spatially-overlapping reservation
                // that would overlap in time (S(i,j) => !T(i,j),
                // Eq. 7-9).
                bool moved = true;
                while (moved) {
                    moved = false;
                    for (const auto &res : reservations) {
                        bool time_overlap =
                            start < res.end &&
                            res.start < start + plan.duration;
                        if (time_overlap &&
                            plan.region.overlaps(res.region)) {
                            start = res.end;
                            moved = true;
                        }
                    }
                }
            }
            return start;
        };

        size_t scheduled = 0;
        while (scheduled < n_gates) {
            throwIfCancelled(cancel, "scheduling cancelled");
            QC_ASSERT(!ready.empty(),
                      "scheduler deadlock: no ready gates");

            // Earliest-ready-gate-first: commit the ready gate with
            // the smallest feasible start (ties: lowest index).
            int best_gate = -1;
            Timeslot best_start = std::numeric_limits<Timeslot>::max();
            size_t best_pos = 0;
            for (size_t k = 0; k < ready.size(); ++k) {
                int gi = ready[k];
                Timeslot s = feasible_start(gi);
                if (s < best_start ||
                    (s == best_start && gi < best_gate)) {
                    best_start = s;
                    best_gate = gi;
                    best_pos = k;
                }
            }
            ready.erase(ready.begin() + static_cast<long>(best_pos));

            const GatePlan &plan = plans[best_gate];
            Timeslot finish = commit(best_gate, best_start);
            if (plan.routed)
                reservations.push_back(
                    {plan.region, best_start, finish});

            for (int s : dag.succs(best_gate)) {
                if (--preds_left[s] == 0)
                    ready.push_back(s);
            }
            ++scheduled;
        }
    } else {
        // ---- Indexed implementation: same commit sequence, computed
        // incrementally.
        //
        // Reservations live in a per-cell ledger instead of a flat
        // history, and each ready gate's feasible start is cached:
        // a commit only dirties the ready gates it can actually move
        // (shared touched qubits, or — for routed gates — a spatially
        // overlapping region). Everything else keeps its cached
        // value, which stays exact because feasible starts depend
        // only on predecessor finishes (fixed once ready), the
        // touched qubits' availability, and spatially overlapping
        // reservations.
        //
        // Selection uses a lazy min-heap keyed by (start, gate):
        // cached values only grow, so a stale key is a lower bound;
        // a clean popped entry is therefore the true lexicographic
        // minimum — the same gate the reference scan commits.
        //
        // Commit starts are monotone non-decreasing (the minimum
        // feasible start never shrinks as reservations accumulate),
        // which is what lets the ledger clamp queries to the frontier
        // and retire reservations behind it without changing any
        // result.
        ReservationLedger ledger(topo.numQubits());

        std::vector<Timeslot> cached(n_gates, 0);
        std::vector<char> dirty(n_gates, 0);
        std::vector<char> done(n_gates, 0);
        std::vector<int> ready_list;
        std::vector<int> ready_pos(n_gates, -1);
        std::vector<int> qubit_mark(topo.numQubits(), -1);
        int commit_serial = -1;

        using HeapEntry = std::pair<Timeslot, int>;
        std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                            std::greater<HeapEntry>>
            heap;

        auto recompute = [&](int gi) {
            const GatePlan &plan = plans[gi];
            Timeslot s = lower_bound(gi);
            if (plan.routed)
                s = ledger.feasibleStart(plan.region, plan.duration, s);
            cached[gi] = s;
        };
        auto make_ready = [&](int gi) {
            ready_pos[gi] = static_cast<int>(ready_list.size());
            ready_list.push_back(gi);
            recompute(gi);
            heap.push({cached[gi], gi});
        };
        for (int r : dag.roots())
            make_ready(r);

        size_t scheduled = 0;
        while (scheduled < n_gates) {
            throwIfCancelled(cancel, "scheduling cancelled");
            QC_ASSERT(!heap.empty(),
                      "scheduler deadlock: no ready gates");
            auto [key, gi] = heap.top();
            heap.pop();
            if (done[gi] || key != cached[gi])
                continue; // superseded duplicate
            if (dirty[gi]) {
                dirty[gi] = 0;
                recompute(gi);
                heap.push({cached[gi], gi});
                continue;
            }

            done[gi] = 1;
            const int pos = ready_pos[gi];
            const int back = ready_list.back();
            ready_list[pos] = back;
            ready_pos[back] = pos;
            ready_list.pop_back();
            ready_pos[gi] = -1;

            const GatePlan &plan = plans[gi];
            Timeslot finish = commit(gi, key);
            ledger.advanceFrontier(key);
            if (plan.routed)
                ledger.reserve(plan.region, key, finish);

            // Dirty exactly the ready gates this commit can move.
            ++commit_serial;
            for (HwQubit h : plan.touched)
                qubit_mark[h] = commit_serial;
            for (int g : ready_list) {
                if (dirty[g])
                    continue;
                bool hit = false;
                for (HwQubit h : plans[g].touched) {
                    if (qubit_mark[h] == commit_serial) {
                        hit = true;
                        break;
                    }
                }
                if (!hit && plan.routed && plans[g].routed &&
                    plans[g].region.overlaps(plan.region))
                    hit = true;
                if (hit)
                    dirty[g] = 1;
            }

            for (int s : dag.succs(gi)) {
                if (--preds_left[s] == 0)
                    make_ready(s);
            }
            ++scheduled;
        }
    }

    // Last physical use of each qubit (macro windows are conservative
    // for availability; decoherence accounting wants actual op times).
    for (const auto &op : sched.ops) {
        sched.qubitFinish[op.gate.q0] =
            std::max(sched.qubitFinish[op.gate.q0], op.finish());
        if (op.gate.isTwoQubit()) {
            sched.qubitFinish[op.gate.q1] =
                std::max(sched.qubitFinish[op.gate.q1], op.finish());
        }
    }

    return sched;
}

} // namespace qc
