#include "reservation_ledger.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace qc {

ReservationLedger::ReservationLedger(int num_qubits)
    : numQubits_(num_qubits)
{
    QC_ASSERT(num_qubits > 0, "degenerate machine with ", num_qubits,
              " qubits");
    byQubit_.resize(static_cast<size_t>(num_qubits));
}

void
ReservationLedger::checkRegion(const Region &region) const
{
    // Out-of-range qubits would make the bucketed overlap test
    // diverge from Region::overlaps (the reference semantics), so
    // they are a hard error rather than something to clamp away.
    for (HwQubit h : region.qubits)
        QC_ASSERT(h >= 0 && h < numQubits_, "reservation qubit ", h,
                  " outside the ", numQubits_, "-qubit machine");
}

void
ReservationLedger::reserve(const Region &region, Timeslot start,
                           Timeslot end)
{
    if (end <= frontier_)
        return; // born dead: can never constrain a future query
    checkRegion(region);
    const int id = static_cast<int>(entries_.size());
    entries_.push_back({start, end});
    visitStamp_.push_back(0);
    // Region qubit sets are sorted and unique by construction, so
    // each bucket sees this entry exactly once.
    for (HwQubit h : region.qubits)
        byQubit_[h].push_back(id);
}

void
ReservationLedger::advanceFrontier(Timeslot t)
{
    frontier_ = std::max(frontier_, t);
}

Timeslot
ReservationLedger::feasibleStart(const Region &region,
                                 Timeslot duration, Timeslot earliest)
{
    Timeslot start = std::max(earliest, frontier_);
    checkRegion(region);
    bool moved = true;
    while (moved) {
        moved = false;
        ++sweepSerial_;
        for (HwQubit h : region.qubits) {
            auto &bucket = byQubit_[h];
            for (size_t i = 0; i < bucket.size();) {
                const int id = bucket[i];
                const Entry &e = entries_[id];
                if (e.end <= frontier_) {
                    // Retired: can never matter again; drop it from
                    // this bucket (other buckets purge on their own
                    // scans).
                    bucket[i] = bucket.back();
                    bucket.pop_back();
                    continue;
                }
                if (visitStamp_[id] != sweepSerial_) {
                    visitStamp_[id] = sweepSerial_;
                    // Spatial overlap is implied: this entry's region
                    // covers qubit h, which the candidate also covers.
                    if (start < e.end && e.start < start + duration) {
                        start = e.end;
                        moved = true;
                    }
                }
                ++i;
            }
        }
    }
    return start;
}

int
ReservationLedger::liveCount() const
{
    int n = 0;
    for (const Entry &e : entries_)
        if (e.end > frontier_)
            ++n;
    return n;
}

} // namespace qc
