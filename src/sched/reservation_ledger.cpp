#include "reservation_ledger.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace qc {

ReservationLedger::ReservationLedger(int rows, int cols)
    : rows_(rows), cols_(cols)
{
    QC_ASSERT(rows > 0 && cols > 0, "degenerate grid ", rows, "x",
              cols);
    byCell_.resize(static_cast<size_t>(rows) * cols);
}

void
ReservationLedger::cellsOf(const Region &region,
                           std::vector<int> &out) const
{
    out.clear();
    for (const Rect &r : region.rects) {
        // Out-of-grid rects would make the bucketed overlap test
        // diverge from Region::overlaps (the reference semantics), so
        // they are a hard error rather than something to clamp away.
        QC_ASSERT(r.x0 >= 0 && r.x1 < rows_ && r.y0 >= 0 &&
                      r.y1 < cols_,
                  "reservation rect ", r.toString(),
                  " outside the ", rows_, "x", cols_, " grid");
        for (int x = r.x0; x <= r.x1; ++x)
            for (int y = r.y0; y <= r.y1; ++y)
                out.push_back(x * cols_ + y);
    }
}

void
ReservationLedger::reserve(const Region &region, Timeslot start,
                           Timeslot end)
{
    if (end <= frontier_)
        return; // born dead: can never constrain a future query
    const int id = static_cast<int>(entries_.size());
    entries_.push_back({start, end});
    visitStamp_.push_back(0);
    cellsOf(region, cellScratch_);
    // A region's rects may share cells (1BP legs share the junction);
    // duplicate bucket entries are harmless (the sweep stamp dedupes
    // checks) but cheap to avoid for the common two-rect case.
    std::sort(cellScratch_.begin(), cellScratch_.end());
    cellScratch_.erase(
        std::unique(cellScratch_.begin(), cellScratch_.end()),
        cellScratch_.end());
    for (int cell : cellScratch_)
        byCell_[cell].push_back(id);
}

void
ReservationLedger::advanceFrontier(Timeslot t)
{
    frontier_ = std::max(frontier_, t);
}

Timeslot
ReservationLedger::feasibleStart(const Region &region,
                                 Timeslot duration, Timeslot earliest)
{
    Timeslot start = std::max(earliest, frontier_);
    cellsOf(region, cellScratch_);
    bool moved = true;
    while (moved) {
        moved = false;
        ++sweepSerial_;
        for (int cell : cellScratch_) {
            auto &bucket = byCell_[cell];
            for (size_t i = 0; i < bucket.size();) {
                const int id = bucket[i];
                const Entry &e = entries_[id];
                if (e.end <= frontier_) {
                    // Retired: can never matter again; drop it from
                    // this bucket (other buckets purge on their own
                    // scans).
                    bucket[i] = bucket.back();
                    bucket.pop_back();
                    continue;
                }
                if (visitStamp_[id] != sweepSerial_) {
                    visitStamp_[id] = sweepSerial_;
                    // Spatial overlap is implied: this entry's region
                    // covers `cell`, which the candidate also covers.
                    if (start < e.end && e.start < start + duration) {
                        start = e.end;
                        moved = true;
                    }
                }
                ++i;
            }
        }
    }
    return start;
}

int
ReservationLedger::liveCount() const
{
    int n = 0;
    for (const Entry &e : entries_)
        if (e.end > frontier_)
            ++n;
    return n;
}

} // namespace qc
