/**
 * @file
 * Schedule data model: the timed hardware-level program produced for a
 * fixed placement, plus coherence-window accounting (constraint 4/6).
 */

#ifndef QC_SCHED_SCHEDULE_HPP
#define QC_SCHED_SCHEDULE_HPP

#include <string>
#include <vector>

#include "ir/circuit.hpp"
#include "machine/machine.hpp"
#include "route/routing.hpp"

namespace qc {

/** One timed hardware operation. */
struct TimedOp
{
    Gate gate;              ///< operands are hardware qubits
    Timeslot start = 0;
    Timeslot duration = 0;
    int progGate = -1;      ///< originating program gate index
    bool isRouteSwap = false;

    Timeslot finish() const { return start + duration; }
};

/** Macro-level timing of one program gate (incl. its routing). */
struct MacroTiming
{
    int progGate = -1;
    Timeslot start = 0;
    Timeslot duration = 0;

    Timeslot finish() const { return start + duration; }
};

/** A coherence violation: a qubit used past its T2 window. */
struct CoherenceViolation
{
    HwQubit qubit;
    Timeslot lastUse;   ///< finish time of the qubit's last operation
    Timeslot limit;     ///< coherence window in timeslots
};

/**
 * Complete timed mapping of one circuit onto one machine.
 */
struct Schedule
{
    int numHwQubits = 0;
    std::vector<TimedOp> ops;        ///< sorted by (start, insertion)
    std::vector<MacroTiming> macros; ///< one per program gate
    Timeslot makespan = 0;
    std::vector<Timeslot> qubitFinish; ///< last-use finish per hw qubit

    /** Total SWAP micro-operations inserted by routing. */
    int swapCount() const;

    /** Hardware CNOT count (SWAPs count as 3). */
    int hwCnotCount() const;

    /**
     * Flatten to a hardware-level Circuit (ops in start order; Swap
     * pseudo-gates preserved — the QASM emitter expands them).
     */
    Circuit toHwCircuit(const std::string &name, int n_clbits) const;

    /**
     * Qubits whose last use exceeds their coherence window.
     *
     * @param cal           calibration supplying T2 per qubit
     * @param static_limit  if >= 0, check against this uniform limit
     *                      instead (the T-SMT model's MT = 1000 slots)
     */
    std::vector<CoherenceViolation>
    coherenceViolations(const Calibration &cal,
                        Timeslot static_limit = -1) const;

    /** All ops ordered by start time (stable on ties). */
    std::vector<TimedOp> opsByStart() const;

    /**
     * Exact field-by-field equality over every schedule artifact
     * (ops, macros, makespan, qubitFinish) — the canonical
     * bit-identity predicate used by bench_scheduler_hotpath's
     * indexed-vs-reference verdict and the equivalence tests.
     */
    bool identicalTo(const Schedule &other) const;
};

} // namespace qc

#endif // QC_SCHED_SCHEDULE_HPP
