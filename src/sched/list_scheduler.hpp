/**
 * @file
 * Earliest-ready-gate-first list scheduler (paper Sec. 5, [27]) with
 * space-time reservations implementing the RR / 1BP routing policies.
 *
 * Given a fixed placement, the scheduler assigns every gate a start
 * time respecting data dependencies (constraint 3), expands routed
 * CNOTs into SWAP chains, and forbids CNOTs whose reserved regions
 * overlap from overlapping in time (constraints 7-9).
 *
 * Two interchangeable inner loops produce bit-identical schedules:
 * the default indexed path (per-cell ReservationLedger + an
 * incremental ready-queue that only recomputes gates a commit could
 * move) and the legacy full-scan path behind
 * SchedulerOptions::referenceMode, kept as the testing oracle.
 */

#ifndef QC_SCHED_LIST_SCHEDULER_HPP
#define QC_SCHED_LIST_SCHEDULER_HPP

#include <vector>

#include "ir/circuit.hpp"
#include "machine/machine.hpp"
#include "route/routing.hpp"
#include "sched/schedule.hpp"
#include "support/cancel.hpp"

namespace qc {

/** Knobs controlling routing and the duration model. */
struct SchedulerOptions
{
    RoutingPolicy policy = RoutingPolicy::OneBendPath;
    RouteSelect select = RouteSelect::BestReliability;

    /**
     * false = the noise-unaware T-SMT model: every CNOT takes the
     * machine's nominal duration regardless of edge.
     */
    bool calibratedDurations = true;

    /**
     * For RouteSelect::Fixed: per program-gate-index junction choice
     * (index into Machine::oneBendPath), -1 for non-CNOT gates.
     */
    std::vector<int> fixedJunctions;

    /**
     * Run the legacy O(steps x ready x reservations) scanning
     * scheduler instead of the indexed incremental one. The two are
     * bit-identical on every input (the indexed path computes the
     * same fixed points and commits in the same order); the reference
     * scan is kept as the oracle for equivalence testing and as the
     * normalizing denominator in bench_scheduler_hotpath.
     */
    bool referenceMode = false;
};

/**
 * Deterministic list scheduler.
 *
 * run() never reorders dependent gates and always produces the same
 * schedule for the same inputs. Among ready gates it commits the one
 * with the earliest feasible start time (ties: lowest gate index).
 */
class ListScheduler
{
  public:
    ListScheduler(const Machine &machine, SchedulerOptions options);

    /**
     * Schedule a program circuit under a placement.
     *
     * @param prog   program-level circuit
     * @param layout layout[p] = hardware qubit of program qubit p;
     *               entries must be distinct and in range
     * @param cancel optional cooperative cancellation: polled at each
     *               commit step, unwinding with CancelledError
     */
    Schedule run(const Circuit &prog,
                 const std::vector<HwQubit> &layout,
                 const CancelToken *cancel = nullptr) const;

    /** The route this scheduler would pick for a CNOT gate. */
    RoutePath chooseRoute(HwQubit c, HwQubit t, int gate_idx) const;

  private:
    const Machine &machine_;
    SchedulerOptions options_;
};

/** Throw FatalError unless layout is a valid injective placement. */
void validateLayout(const std::vector<HwQubit> &layout, int n_prog,
                    int n_hw);

} // namespace qc

#endif // QC_SCHED_LIST_SCHEDULER_HPP
