/**
 * @file
 * Live-tracking router: the "no restore" alternative to the paper's
 * SWAP-there-and-back scheme.
 *
 * The paper's model keeps the placement static: every routed CNOT
 * moves the control next to the target and then undoes its SWAPs
 * (duration 2*(d-1)*tau_swap + tau_cnot). This router instead commits
 * the movement — the layout evolves as the program runs, the way
 * later mappers (e.g. SABRE) operate — halving the SWAP cost of each
 * routed CNOT at the price of a drifting placement. It is used by the
 * restore-vs-track ablation bench and by the GreedyE*+track mapper.
 */

#ifndef QC_SCHED_TRACKING_ROUTER_HPP
#define QC_SCHED_TRACKING_ROUTER_HPP

#include <vector>

#include "ir/circuit.hpp"
#include "machine/machine.hpp"
#include "sched/schedule.hpp"
#include "support/cancel.hpp"

namespace qc {

/** Tracking-router knobs. */
struct TrackingOptions
{
    /**
     * true  = move along the Dijkstra most-reliable path,
     * false = move along the best-reliability one-bend path.
     */
    bool dijkstraPaths = true;
};

/**
 * Result of a tracking-routing pass: the timed schedule plus the
 * final (drifted) placement.
 */
struct TrackingResult
{
    Schedule schedule;
    std::vector<HwQubit> finalLayout; ///< program qubit -> hw qubit
    int swapCount = 0;

    /**
     * Product of per-operation reliabilities of the emitted hardware
     * program (CNOT edges, SWAPs as 3 CNOTs, readouts).
     */
    double predictedSuccess = 0.0;
};

/**
 * Route and schedule a program with a live layout.
 *
 * Gates are processed in program order (a valid topological order of
 * the dependency DAG); each distant CNOT permanently SWAPs its
 * control toward its target; single-qubit gates and measurements use
 * the qubit's location at their point in the program.
 */
class TrackingRouter
{
  public:
    TrackingRouter(const Machine &machine, TrackingOptions options = {});

    /**
     * @param prog           program-level circuit
     * @param initial_layout starting placement (validated)
     * @param cancel         optional cooperative cancellation: polled
     *                       per gate, unwinding with CancelledError
     */
    TrackingResult run(const Circuit &prog,
                       std::vector<HwQubit> initial_layout,
                       const CancelToken *cancel = nullptr) const;

  private:
    const Machine &machine_;
    TrackingOptions options_;
};

} // namespace qc

#endif // QC_SCHED_TRACKING_ROUTER_HPP
