#include "schedule.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace qc {

int
Schedule::swapCount() const
{
    int n = 0;
    for (const auto &op : ops)
        if (op.gate.op == Op::Swap)
            ++n;
    return n;
}

int
Schedule::hwCnotCount() const
{
    int n = 0;
    for (const auto &op : ops) {
        if (op.gate.op == Op::CNOT)
            n += 1;
        else if (op.gate.op == Op::Swap)
            n += 3;
    }
    return n;
}

Circuit
Schedule::toHwCircuit(const std::string &name, int n_clbits) const
{
    // Measurements are emitted after all unitary operations: a route
    // SWAP may pass through an already-measured qubit (and restore
    // it), which textual consumers of the flattened program would
    // otherwise reject as mid-circuit measurement. The reordering is
    // semantics-preserving because routes always restore positions.
    Circuit hw(name, numHwQubits, n_clbits);
    const std::vector<TimedOp> sorted = opsByStart();
    for (const auto &op : sorted)
        if (!op.gate.isMeasure())
            hw.add(op.gate);
    for (const auto &op : sorted)
        if (op.gate.isMeasure())
            hw.add(op.gate);
    return hw;
}

std::vector<CoherenceViolation>
Schedule::coherenceViolations(const Calibration &cal,
                              Timeslot static_limit) const
{
    std::vector<CoherenceViolation> vs;
    for (HwQubit h = 0; h < numHwQubits; ++h) {
        Timeslot last = qubitFinish[h];
        if (last == 0)
            continue; // qubit unused
        Timeslot limit = static_limit >= 0 ? static_limit
                                           : cal.coherenceSlots(h);
        if (last > limit)
            vs.push_back({h, last, limit});
    }
    return vs;
}

bool
Schedule::identicalTo(const Schedule &other) const
{
    if (numHwQubits != other.numHwQubits ||
        makespan != other.makespan ||
        qubitFinish != other.qubitFinish ||
        ops.size() != other.ops.size() ||
        macros.size() != other.macros.size())
        return false;
    for (size_t i = 0; i < ops.size(); ++i) {
        const TimedOp &a = ops[i];
        const TimedOp &b = other.ops[i];
        if (!(a.gate == b.gate) || a.start != b.start ||
            a.duration != b.duration || a.progGate != b.progGate ||
            a.isRouteSwap != b.isRouteSwap)
            return false;
    }
    for (size_t i = 0; i < macros.size(); ++i) {
        const MacroTiming &a = macros[i];
        const MacroTiming &b = other.macros[i];
        if (a.progGate != b.progGate || a.start != b.start ||
            a.duration != b.duration)
            return false;
    }
    return true;
}

std::vector<TimedOp>
Schedule::opsByStart() const
{
    std::vector<TimedOp> sorted = ops;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const TimedOp &a, const TimedOp &b) {
                         return a.start < b.start;
                     });
    return sorted;
}

} // namespace qc
