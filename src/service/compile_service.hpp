/**
 * @file
 * Concurrent compilation service for batch/daily workloads.
 *
 * The paper's operational model (Sec. 2, Fig. 6) recompiles every
 * program against each fresh calibration snapshot — at production
 * scale, thousands of independent (circuit x calibration-day) jobs
 * per cycle. This service turns the one-shot NoiseAdaptiveCompiler
 * facade into that batch engine:
 *
 *   - a ThreadPool executes jobs concurrently,
 *   - a MachinePool builds each machine-day snapshot once and shares
 *     it across all jobs of that day,
 *   - a CompileCache returns previously compiled results for exact
 *     (circuit, calibration, options) repeats.
 *
 * Jobs run the staged pass pipeline (core/pipeline.hpp): failures
 * come back as structured CompileStatus values with the failing
 * stage recorded, and every fresh compile carries per-stage wall
 * times that ServiceReport aggregates into a batch-wide breakdown.
 *
 * Every mapper is deterministic, so a batch compiled with N workers
 * is bit-identical to the same batch compiled serially — the
 * test suite asserts this.
 */

#ifndef QC_SERVICE_COMPILE_SERVICE_HPP
#define QC_SERVICE_COMPILE_SERVICE_HPP

#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/compiler.hpp"
#include "core/portfolio.hpp"
#include "ir/circuit.hpp"
#include "machine/calibration_model.hpp"
#include "service/compile_cache.hpp"
#include "service/machine_pool.hpp"
#include "service/thread_pool.hpp"

namespace qc::service {

/** Service-wide configuration. */
struct ServiceOptions
{
    int threads = 0;                ///< workers; <= 0 = hardware
    std::size_t cacheCapacity = 4096; ///< compile-cache entries; 0 off
    std::size_t cacheByteCapacity = 0; ///< approx cache bytes; 0 = unbounded
    std::size_t machinePoolCapacity = 64; ///< LRU snapshots; 0 = unbounded
};

/** One compilation job: a program against one machine-day. */
struct CompileRequest
{
    std::string tag;        ///< caller's label, echoed in the result
    int day = 0;            ///< calibration day (reports only)
    Circuit circuit;
    Topology topo = GridTopology::ibmq16();
    Calibration cal;
    CompilerOptions options;
};

/** Outcome of one job. */
struct CompileResult
{
    std::string tag;
    int day = 0;
    bool ok = false;       ///< a compiled artifact was produced
    bool cacheHit = false;

    /**
     * Diagnostic text: the status message (also set for degraded
     * fallbacks), empty on clean success.
     */
    const std::string &error() const { return status.message; }

    /**
     * Structured outcome: ok / infeasible / solver-timeout /
     * internal-error. May be non-ok while `ok` is true when the
     * solver timed out but the pipeline produced a degraded fallback
     * program (such results are never cached).
     */
    CompileStatus status;

    /** Pipeline stage that failed ("placement", ...); empty if none. */
    std::string failedStage;

    /**
     * Per-stage wall times and notes for freshly compiled jobs —
     * recorded for failures too, so a failed job shows which stage
     * died and how long it ran. Empty for cache hits (the cached
     * program carries its original compile's traces).
     */
    std::vector<StageTrace> stageTraces;

    /**
     * Per-candidate outcomes when the job raced a portfolio
     * (options.portfolio.enabled), in bundle order; empty otherwise
     * and for cache hits. The winner's stage traces appear here *and*
     * in stageTraces — report aggregation reads only this vector for
     * portfolio jobs to avoid double counting.
     */
    std::vector<PortfolioCandidate> portfolio;

    /** Winning bundle's name for portfolio jobs; empty otherwise. */
    std::string winner;

    /** The compiled artifact (shared with the cache); null on error. */
    std::shared_ptr<const CompiledProgram> program;

    /**
     * The machine snapshot the job compiled against. Null on error;
     * may also be null for a cache hit whose snapshot was LRU-evicted
     * from the machine pool (hits never pay for a rebuild).
     */
    std::shared_ptr<const Machine> machine;

    /** Job wall time, failures included (cache hits ~0). */
    double seconds = 0.0;
};

/** Per-stage aggregate across a batch. */
struct StageSummary
{
    std::string stage;   ///< "placement/GreedyE*", "scheduling/list", ...
    int runs = 0;
    double seconds = 0.0;
    int failures = 0;    ///< jobs whose pipeline died in this stage
};

/** Aggregate accounting for one batch (or a whole service lifetime). */
struct ServiceReport
{
    int jobs = 0;
    int succeeded = 0;
    int failed = 0;
    int cacheHits = 0;
    int degraded = 0;    ///< ok jobs with a non-ok status (fallbacks)

    /**
     * Per-stage time breakdown over freshly compiled jobs, in
     * first-seen stage order (cache hits contribute nothing).
     */
    std::vector<StageSummary> stages;

    /** Jobs that actually raced a portfolio (cache hits race nothing). */
    int portfolioJobs = 0;
    /** Candidates cancelled early across all portfolio races. */
    int portfolioCancelled = 0;
    /**
     * Wins per bundle ("<name>" -> count), in kAllMapperKinds order so
     * the report is deterministic. Only bundles that won appear.
     */
    std::vector<std::pair<std::string, int>> portfolioWins;

    double wallSeconds = 0.0;    ///< batch wall-clock time
    double jobSeconds = 0.0;     ///< sum of per-job times
    double meanJobSeconds() const
    {
        return jobs == 0 ? 0.0 : jobSeconds / jobs;
    }
    /** Jobs per wall-clock second. */
    double throughput() const
    {
        return wallSeconds <= 0.0 ? 0.0 : jobs / wallSeconds;
    }

    MachinePoolStats machinePool;
    CompileCacheStats cache;

    /** Multi-line human-readable summary. */
    std::string toString() const;
};

/** A batch's results plus its aggregate report. */
struct BatchResult
{
    std::vector<CompileResult> results; ///< in request order
    ServiceReport report;
};

/**
 * The compilation service.
 *
 * Thread-safe: submit()/compileBatch() may be called from any thread.
 * The machine pool and compile cache persist across batches, so a
 * second identical batch is served almost entirely from cache.
 */
class CompileService
{
  public:
    explicit CompileService(ServiceOptions options = {});

    /** Worker count actually in use. */
    int numThreads() const { return pool_.numThreads(); }

    /** Enqueue one job; the future never throws (errors go in .ok). */
    std::future<CompileResult> submit(CompileRequest request);

    /**
     * Compile a whole batch, blocking until every job finishes.
     * Results come back in request order with a batch report.
     */
    BatchResult compileBatch(std::vector<CompileRequest> requests);

    /**
     * Drop jobs submitted but not yet started (their futures become
     * broken promises — callers must not get() them). Returns the
     * number cancelled. Used by naqc's SIGINT path to stop a batch
     * without waiting out the whole queue.
     */
    std::size_t cancelPending();

    /**
     * Build the daily-recompilation workload: every program compiled
     * against each of days [firstDay, firstDay + numDays). Tags are
     * "<name>@d<day>".
     */
    static std::vector<CompileRequest>
    dailyBatch(const CalibrationModel &model,
               const std::vector<std::pair<std::string, Circuit>>
                   &programs,
               int firstDay, int numDays,
               const CompilerOptions &options);

    MachinePoolStats machinePoolStats() const
    {
        return machines_.stats();
    }
    CompileCacheStats cacheStats() const { return cache_.stats(); }

    /** Report over arbitrary results (adds current pool/cache stats). */
    ServiceReport makeReport(const std::vector<CompileResult> &results,
                             double wall_seconds) const;

  private:
    CompileResult runJob(const CompileRequest &request);

    ServiceOptions options_;
    MachinePool machines_;
    CompileCache cache_;
    ThreadPool pool_; ///< last member: workers die before state above
};

} // namespace qc::service

#endif // QC_SERVICE_COMPILE_SERVICE_HPP
