/**
 * @file
 * LRU cache of compilation results.
 *
 * Daily/batch workloads recompile the same program set against the
 * same calibration snapshot many times (re-runs, shared programs
 * across users, retry storms). The cache keys results by the content
 * fingerprints of (circuit, calibration, compiler options), so a hit
 * is exact: same program, same machine-day, same variant — byte-
 * identical output to recompiling.
 */

#ifndef QC_SERVICE_COMPILE_CACHE_HPP
#define QC_SERVICE_COMPILE_CACHE_HPP

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "mappers/mapper.hpp"

namespace qc::service {

/** Cache key: fingerprints of the three inputs that determine output. */
struct CacheKey
{
    std::uint64_t circuit = 0;
    std::uint64_t calibration = 0;
    std::uint64_t options = 0;

    bool
    operator==(const CacheKey &o) const
    {
        return circuit == o.circuit && calibration == o.calibration &&
               options == o.options;
    }
};

struct CacheKeyHash
{
    std::size_t
    operator()(const CacheKey &k) const
    {
        // The fields are already FNV digests; a cheap combine is fine.
        std::uint64_t h = k.circuit;
        h ^= k.calibration + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
        h ^= k.options + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
        return static_cast<std::size_t>(h);
    }
};

/** Counters exposed by CompileCache::stats(). */
struct CompileCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t insertions = 0;
    std::uint64_t entries = 0; ///< resident entries right now
    std::uint64_t bytes = 0;   ///< approximate resident bytes

    std::uint64_t lookups() const { return hits + misses; }

    /** hits / lookups, 0 when no lookups happened. */
    double
    hitRate() const
    {
        return lookups() == 0
                   ? 0.0
                   : static_cast<double>(hits) /
                         static_cast<double>(lookups());
    }
};

/**
 * Approximate in-memory footprint of one compiled program: the sum
 * of its dynamic containers (schedule ops/macros, layout, traces,
 * strings) plus the struct itself. Used for the cache's byte
 * accounting, not exact allocator truth.
 */
std::size_t approxProgramBytes(const CompiledProgram &program);

/**
 * Thread-safe LRU map: CacheKey -> shared immutable CompiledProgram.
 *
 * Two capacity axes: `capacity` bounds entry count, `byteCapacity`
 * (0 = unbounded) bounds the approximate resident bytes — the
 * daemon's long-lived cache uses it so a parade of huge schedules
 * cannot grow the heap without bound. Either bound evicts from the
 * LRU tail. Capacity 0 disables caching entirely: lookups miss,
 * inserts drop.
 */
class CompileCache
{
  public:
    explicit CompileCache(std::size_t capacity = 1024,
                          std::size_t byteCapacity = 0);

    /** Fetch and promote to most-recently-used; null on miss. */
    std::shared_ptr<const CompiledProgram> lookup(const CacheKey &key);

    /**
     * Insert (or refresh) an entry, evicting the least recently used
     * entry when over capacity.
     */
    void insert(const CacheKey &key,
                std::shared_ptr<const CompiledProgram> program);

    std::size_t size() const;
    std::size_t capacity() const { return capacity_; }
    std::size_t byteCapacity() const { return byteCapacity_; }

    /** Approximate bytes held by resident entries. */
    std::size_t sizeBytes() const;

    CompileCacheStats stats() const;
    void clear();

  private:
    struct Entry
    {
        CacheKey key;
        std::shared_ptr<const CompiledProgram> program;
        std::size_t bytes = 0;
    };
    using LruList = std::list<Entry>;

    /** Drop LRU-tail entries until both capacity bounds hold. */
    void evictLocked();

    const std::size_t capacity_;
    const std::size_t byteCapacity_;
    mutable std::mutex mu_;
    LruList lru_; ///< front = most recently used
    std::unordered_map<CacheKey, LruList::iterator, CacheKeyHash> map_;
    std::size_t bytes_ = 0; ///< sum of resident entry sizes
    CompileCacheStats stats_;
};

} // namespace qc::service

#endif // QC_SERVICE_COMPILE_CACHE_HPP
