/**
 * @file
 * ThreadPool-backed PortfolioExecutor with a help-while-wait worker
 * budget.
 *
 * The deadlock this design guards against: a portfolio job runs *as*
 * a pool task, and its candidates are more pool tasks. If every
 * worker is occupied by a portfolio parent that blocks on futures of
 * its queued children, nobody is left to run a child — the classic
 * nested-submission wedge. Here a parent never blocks on work it
 * could do itself: caller and borrowed workers pull candidate
 * closures from one shared index ("help while wait"), so each parent
 * is always able to drain its own list alone. Borrowed workers are
 * plain pool tasks ("pumps") that exit immediately when the index has
 * run out, which also means a portfolio job can never oversubscribe
 * the machine: at most poolSize closures run at any instant, and an
 * idle pool lends all of its workers while a busy one lends none.
 */

#ifndef QC_SERVICE_PORTFOLIO_EXECUTOR_HPP
#define QC_SERVICE_PORTFOLIO_EXECUTOR_HPP

#include "core/portfolio.hpp"
#include "service/thread_pool.hpp"

namespace qc::service {

/** Runs candidate closures on the caller plus borrowed pool workers. */
class PoolPortfolioExecutor final : public PortfolioExecutor
{
  public:
    /**
     * @param pool       the service's worker pool
     * @param maxWorkers cap on total workers racing one job's
     *                   candidates, caller included (<= 0: pool size)
     */
    explicit PoolPortfolioExecutor(ThreadPool &pool, int maxWorkers = 0)
        : pool_(pool), maxWorkers_(maxWorkers)
    {
    }

    void runAll(std::vector<std::function<void()>> tasks) override;

  private:
    ThreadPool &pool_;
    int maxWorkers_;
};

} // namespace qc::service

#endif // QC_SERVICE_PORTFOLIO_EXECUTOR_HPP
