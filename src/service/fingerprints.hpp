/**
 * @file
 * Content fingerprints for the domain objects the compile service
 * keys on: circuits, topologies, calibration snapshots and compiler
 * options. Built on the generic support/fingerprint.hpp hasher.
 *
 * Two objects with equal fingerprints are treated as identical by the
 * machine-snapshot pool and the compile cache, so every semantically
 * meaningful field must be mixed in here.
 */

#ifndef QC_SERVICE_FINGERPRINTS_HPP
#define QC_SERVICE_FINGERPRINTS_HPP

#include <cstdint>

#include "core/compiler.hpp"
#include "ir/circuit.hpp"
#include "machine/calibration.hpp"
#include "machine/topology.hpp"

namespace qc::service {

/** Gate-exact circuit fingerprint (name excluded: content only). */
std::uint64_t fingerprintCircuit(const Circuit &circuit);

/** Topology fingerprint: kind tag + canonical edge list. */
std::uint64_t fingerprintTopology(const Topology &topo);

/** Full calibration-snapshot fingerprint (all per-element data). */
std::uint64_t fingerprintCalibration(const Calibration &cal);

/** Compiler-options fingerprint (every field that steers mapping). */
std::uint64_t fingerprintOptions(const CompilerOptions &options);

/** Combined (topology, calibration) key for the machine pool. */
std::uint64_t machineKey(const Topology &topo,
                         const Calibration &cal);

} // namespace qc::service

#endif // QC_SERVICE_FINGERPRINTS_HPP
