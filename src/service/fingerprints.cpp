#include "fingerprints.hpp"

#include "support/fingerprint.hpp"

namespace qc::service {

std::uint64_t
fingerprintCircuit(const Circuit &circuit)
{
    Fingerprint fp;
    fp.mix(std::uint64_t{0xC14C}); // domain tag
    fp.mix(circuit.numQubits()).mix(circuit.numClbits());
    fp.mix(static_cast<std::uint64_t>(circuit.size()));
    for (const Gate &g : circuit.gates()) {
        fp.mix(static_cast<int>(g.op))
            .mix(g.q0)
            .mix(g.q1)
            .mix(g.cbit);
    }
    return fp.value();
}

std::uint64_t
fingerprintTopology(const GridTopology &topo)
{
    Fingerprint fp;
    fp.mix(std::uint64_t{0x7090}); // domain tag
    fp.mix(topo.rows()).mix(topo.cols());
    return fp.value();
}

std::uint64_t
fingerprintCalibration(const Calibration &cal)
{
    Fingerprint fp;
    fp.mix(std::uint64_t{0xCA11}); // domain tag
    fp.mix(cal.day);
    fp.mixVector(cal.t1Us)
        .mixVector(cal.t2Us)
        .mixVector(cal.readoutError)
        .mixVector(cal.cnotError);
    fp.mix(static_cast<std::uint64_t>(cal.cnotDuration.size()));
    for (Timeslot d : cal.cnotDuration)
        fp.mix(static_cast<std::int64_t>(d));
    fp.mix(cal.oneQubitError)
        .mix(static_cast<std::int64_t>(cal.oneQubitDuration))
        .mix(static_cast<std::int64_t>(cal.readoutDuration));
    return fp.value();
}

std::uint64_t
fingerprintOptions(const CompilerOptions &options)
{
    Fingerprint fp;
    fp.mix(std::uint64_t{0x0975}); // domain tag
    fp.mix(static_cast<int>(options.mapper))
        .mix(static_cast<int>(options.policy))
        .mix(options.readoutWeight)
        .mix(static_cast<std::uint64_t>(options.smtTimeoutMs))
        .mix(options.jointScheduling);
    return fp.value();
}

std::uint64_t
machineKey(const GridTopology &topo, const Calibration &cal)
{
    Fingerprint fp;
    fp.mix(fingerprintTopology(topo)).mix(fingerprintCalibration(cal));
    return fp.value();
}

} // namespace qc::service
