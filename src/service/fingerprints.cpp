#include "fingerprints.hpp"

#include "support/fingerprint.hpp"

namespace qc::service {

std::uint64_t
fingerprintCircuit(const Circuit &circuit)
{
    Fingerprint fp;
    fp.mix(std::uint64_t{0xC14C}); // domain tag
    fp.mix(circuit.numQubits()).mix(circuit.numClbits());
    fp.mix(static_cast<std::uint64_t>(circuit.size()));
    for (const Gate &g : circuit.gates()) {
        fp.mix(static_cast<int>(g.op))
            .mix(g.q0)
            .mix(g.q1)
            .mix(g.cbit);
    }
    return fp.value();
}

std::uint64_t
fingerprintTopology(const Topology &topo)
{
    // Kind tag + qubit count + the canonical (a < b, id-ordered)
    // edge list. Mixing only grid extents used to alias any two
    // topologies with equal qubit counts (e.g. ring:8 vs linear:8 vs
    // grid:2x4) into one machine-pool/compile-cache key; the full
    // coupling graph is the identity.
    Fingerprint fp;
    fp.mix(std::uint64_t{0x7090}); // domain tag
    fp.mix(static_cast<int>(topo.kind())).mix(topo.numQubits());
    fp.mix(static_cast<std::uint64_t>(topo.numEdges()));
    for (const CouplingEdge &e : topo.edges())
        fp.mix(e.a).mix(e.b);
    return fp.value();
}

std::uint64_t
fingerprintCalibration(const Calibration &cal)
{
    Fingerprint fp;
    fp.mix(std::uint64_t{0xCA11}); // domain tag
    fp.mix(cal.day);
    fp.mixVector(cal.t1Us)
        .mixVector(cal.t2Us)
        .mixVector(cal.readoutError)
        .mixVector(cal.cnotError);
    fp.mix(static_cast<std::uint64_t>(cal.cnotDuration.size()));
    for (Timeslot d : cal.cnotDuration)
        fp.mix(static_cast<std::int64_t>(d));
    fp.mix(cal.oneQubitError)
        .mix(static_cast<std::int64_t>(cal.oneQubitDuration))
        .mix(static_cast<std::int64_t>(cal.readoutDuration));
    return fp.value();
}

std::uint64_t
fingerprintOptions(const CompilerOptions &options)
{
    Fingerprint fp;
    fp.mix(std::uint64_t{0x0975}); // domain tag
    fp.mix(static_cast<int>(options.mapper))
        .mix(static_cast<int>(options.policy))
        .mix(options.readoutWeight)
        .mix(static_cast<std::uint64_t>(options.smtTimeoutMs))
        .mix(options.jointScheduling)
        .mix(options.sabreIterations)
        .mix(options.sabreLookahead);
    // Portfolio knobs change which program comes back, so a portfolio
    // result must never alias a single-bundle cache entry (nor a
    // portfolio with different bundles/deadline/tie-break). A disabled
    // portfolio mixes only the flag: its other knobs are inert and
    // must not fragment the single-bundle key space. The bundle list
    // is mixed resolved so "empty = all" and the explicit full list
    // hash identically (they compile identically).
    fp.mix(options.portfolio.enabled);
    if (options.portfolio.enabled) {
        fp.mix(static_cast<std::uint64_t>(options.portfolio.deadlineMs))
            .mix(static_cast<int>(options.portfolio.tieBreak));
        const std::vector<MapperKind> bundles =
            resolvedPortfolioBundles(options.portfolio);
        fp.mix(static_cast<std::uint64_t>(bundles.size()));
        for (MapperKind k : bundles)
            fp.mix(static_cast<int>(k));
    }
    return fp.value();
}

std::uint64_t
machineKey(const Topology &topo, const Calibration &cal)
{
    Fingerprint fp;
    fp.mix(fingerprintTopology(topo)).mix(fingerprintCalibration(cal));
    return fp.value();
}

} // namespace qc::service
