#include "compile_service.hpp"

#include <array>
#include <chrono>
#include <iterator>
#include <sstream>
#include <utility>

#include "service/fingerprints.hpp"
#include "service/portfolio_executor.hpp"
#include "support/logging.hpp"

namespace qc::service {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

CompileService::CompileService(ServiceOptions options)
    : options_(options),
      machines_(options.machinePoolCapacity),
      cache_(options.cacheCapacity, options.cacheByteCapacity),
      pool_(options.threads)
{
}

std::size_t
CompileService::cancelPending()
{
    return pool_.cancelPending();
}

std::future<CompileResult>
CompileService::submit(CompileRequest request)
{
    return pool_.submit(
        [this, request = std::move(request)]() mutable {
            return runJob(request);
        });
}

CompileResult
CompileService::runJob(const CompileRequest &request)
{
    const auto start = std::chrono::steady_clock::now();
    CompileResult result;
    result.tag = request.tag;
    result.day = request.day;

    CacheKey key;
    key.circuit = fingerprintCircuit(request.circuit);
    key.calibration = machineKey(request.topo, request.cal);
    key.options = fingerprintOptions(request.options);

    try {
        if (auto cached = cache_.lookup(key)) {
            result.ok = true;
            result.cacheHit = true;
            result.program = std::move(cached);
            // Only attach a snapshot that's still pooled: a cache
            // hit must never pay for a Machine rebuild.
            result.machine =
                machines_.tryAcquire(request.topo, request.cal);
            result.seconds = secondsSince(start);
            return result;
        }

        result.machine = machines_.acquire(request.topo, request.cal);
        PipelineResult compiled;
        if (request.options.portfolio.enabled) {
            // Race the enabled bundles on this job's queue slot. The
            // pool executor borrows only idle workers (help-while-wait,
            // bounded by portfolio.maxWorkers), so a portfolio job can
            // never oversubscribe or wedge the pool.
            PortfolioPass pass(result.machine, request.options);
            PoolPortfolioExecutor exec(
                pool_, request.options.portfolio.maxWorkers);
            PortfolioResult raced = pass.run(request.circuit, &exec);
            if (raced.winnerIndex >= 0)
                result.winner = raced
                                    .candidates[static_cast<std::size_t>(
                                        raced.winnerIndex)]
                                    .name;
            result.portfolio = std::move(raced.candidates);
            compiled = std::move(raced.best);
        } else {
            Pipeline pipeline =
                standardPipeline(result.machine, request.options);
            compiled = pipeline.run(request.circuit);
        }

        result.status = compiled.status;
        result.failedStage = compiled.failedStage;
        if (compiled.hasProgram) {
            // The program keeps its own trace copy: it may outlive
            // this result through the cache.
            result.stageTraces = compiled.program.stageTraces;
            auto program = std::make_shared<const CompiledProgram>(
                std::move(compiled.program));
            // Degraded solver fallbacks are usable but not worth
            // pinning in the cache.
            if (compiled.status.ok())
                cache_.insert(key, program);
            result.program = std::move(program);
            result.ok = true;
        } else {
            result.ok = false;
            result.stageTraces =
                std::move(compiled.program.stageTraces);
            result.program = nullptr;
            result.machine = nullptr;
        }
    } catch (const std::exception &e) {
        // bad_alloc, queue shutdown, ... — a failing job must never
        // poison the batch or escape the future contract. (Compile
        // failures themselves already surface as status values.)
        result.ok = false;
        result.status = CompileStatus::internalError(e.what());
        result.program = nullptr;
        result.machine = nullptr;
    } catch (...) {
        result.ok = false;
        result.status = CompileStatus::internalError(
            "unknown exception during compilation");
        result.program = nullptr;
        result.machine = nullptr;
    }
    result.seconds = secondsSince(start);
    return result;
}

BatchResult
CompileService::compileBatch(std::vector<CompileRequest> requests)
{
    const auto start = std::chrono::steady_clock::now();

    std::vector<std::future<CompileResult>> futures;
    futures.reserve(requests.size());
    for (CompileRequest &request : requests)
        futures.push_back(submit(std::move(request)));

    BatchResult batch;
    batch.results.reserve(futures.size());
    for (std::future<CompileResult> &f : futures)
        batch.results.push_back(f.get());

    batch.report = makeReport(batch.results, secondsSince(start));
    return batch;
}

std::vector<CompileRequest>
CompileService::dailyBatch(
    const CalibrationModel &model,
    const std::vector<std::pair<std::string, Circuit>> &programs,
    int firstDay, int numDays, const CompilerOptions &options)
{
    QC_ASSERT(numDays >= 0, "negative day count");
    std::vector<CompileRequest> requests;
    requests.reserve(programs.size() *
                     static_cast<std::size_t>(numDays));
    for (int day = firstDay; day < firstDay + numDays; ++day) {
        Calibration cal = model.forDay(day);
        for (const auto &[name, circuit] : programs) {
            CompileRequest req;
            req.tag = name + "@d" + std::to_string(day);
            req.day = day;
            req.circuit = circuit;
            req.topo = model.topology();
            req.cal = cal;
            req.options = options;
            requests.push_back(std::move(req));
        }
    }
    return requests;
}

ServiceReport
CompileService::makeReport(const std::vector<CompileResult> &results,
                           double wall_seconds) const
{
    ServiceReport report;
    report.jobs = static_cast<int>(results.size());

    auto stage_slot = [&report](const std::string &label)
        -> StageSummary & {
        for (StageSummary &s : report.stages)
            if (s.stage == label)
                return s;
        report.stages.push_back({label, 0, 0.0, 0});
        return report.stages.back();
    };

    // Win counts indexed by MapperKind so the final list comes out in
    // kAllMapperKinds order regardless of which jobs won what first.
    constexpr std::size_t n_kinds = std::size(kAllMapperKinds);
    std::array<int, n_kinds> wins{};

    for (const CompileResult &r : results) {
        if (r.ok)
            ++report.succeeded;
        else
            ++report.failed;
        if (r.ok && !r.status.ok())
            ++report.degraded;
        if (r.cacheHit)
            ++report.cacheHits;
        report.jobSeconds += r.seconds;

        if (!r.portfolio.empty()) {
            // The winner's traces live in r.stageTraces *and* in its
            // candidate entry; aggregate candidates only, so every
            // raced stage counts exactly once.
            ++report.portfolioJobs;
            for (const PortfolioCandidate &c : r.portfolio) {
                if (c.cancelled)
                    ++report.portfolioCancelled;
                if (c.winner)
                    ++wins[static_cast<std::size_t>(c.kind)];
                for (const StageTrace &t : c.stageTraces) {
                    StageSummary &s =
                        stage_slot(t.stage + "/" + t.pass);
                    ++s.runs;
                    s.seconds += t.seconds;
                }
            }
        } else {
            for (const StageTrace &t : r.stageTraces) {
                StageSummary &s = stage_slot(t.stage + "/" + t.pass);
                ++s.runs;
                s.seconds += t.seconds;
            }
        }
        if (!r.ok && !r.failedStage.empty()) {
            // The failing stage is the last trace recorded for the
            // job; attribute the failure to its stage/pass label.
            const std::string label =
                r.stageTraces.empty()
                    ? r.failedStage
                    : r.stageTraces.back().stage + "/" +
                          r.stageTraces.back().pass;
            ++stage_slot(label).failures;
        }
    }
    for (std::size_t i = 0; i < n_kinds; ++i)
        if (wins[i] > 0)
            report.portfolioWins.emplace_back(
                mapperKindName(kAllMapperKinds[i]), wins[i]);

    report.wallSeconds = wall_seconds;
    report.machinePool = machines_.stats();
    report.cache = cache_.stats();
    return report;
}

std::string
ServiceReport::toString() const
{
    std::ostringstream oss;
    oss << "jobs: " << jobs << " (" << succeeded << " ok, " << failed
        << " failed, " << cacheHits << " cache hits";
    if (degraded > 0)
        oss << ", " << degraded << " degraded";
    oss << ")\n";
    if (portfolioJobs > 0) {
        oss << "portfolio: " << portfolioJobs << " raced, "
            << portfolioCancelled << " candidates cancelled early";
        if (!portfolioWins.empty()) {
            oss << "; wins:";
            for (const auto &[name, count] : portfolioWins)
                oss << " " << name << "=" << count;
        }
        oss << "\n";
    }
    oss << "wall time: " << wallSeconds << " s (" << throughput()
        << " jobs/s; " << jobSeconds << " s of job time)\n"
        << "machine pool: " << machinePool.builds << " builds, "
        << machinePool.hits << " hits, " << machinePool.evictions
        << " evictions\n"
        << "compile cache: " << cache.hits << "/" << cache.lookups()
        << " hits (rate " << cache.hitRate() << "), "
        << cache.evictions << " evictions, " << cache.entries
        << " entries / " << cache.bytes << " bytes\n";
    if (!stages.empty()) {
        oss << "stage breakdown:\n";
        for (const StageSummary &s : stages) {
            oss << "  " << s.stage << ": " << s.seconds << " s over "
                << s.runs << " runs";
            if (s.failures > 0)
                oss << " (" << s.failures << " failed here)";
            oss << "\n";
        }
    }
    return oss.str();
}

} // namespace qc::service
