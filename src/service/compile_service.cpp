#include "compile_service.hpp"

#include <chrono>
#include <sstream>
#include <utility>

#include "service/fingerprints.hpp"
#include "support/logging.hpp"

namespace qc::service {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

CompileService::CompileService(ServiceOptions options)
    : options_(options),
      machines_(options.machinePoolCapacity),
      cache_(options.cacheCapacity),
      pool_(options.threads)
{
}

std::future<CompileResult>
CompileService::submit(CompileRequest request)
{
    return pool_.submit(
        [this, request = std::move(request)]() mutable {
            return runJob(request);
        });
}

CompileResult
CompileService::runJob(const CompileRequest &request)
{
    const auto start = std::chrono::steady_clock::now();
    CompileResult result;
    result.tag = request.tag;
    result.day = request.day;

    CacheKey key;
    key.circuit = fingerprintCircuit(request.circuit);
    key.calibration = machineKey(request.topo, request.cal);
    key.options = fingerprintOptions(request.options);

    try {
        if (auto cached = cache_.lookup(key)) {
            result.ok = true;
            result.cacheHit = true;
            result.program = std::move(cached);
            // Only attach a snapshot that's still pooled: a cache
            // hit must never pay for a Machine rebuild.
            result.machine =
                machines_.tryAcquire(request.topo, request.cal);
            result.seconds = secondsSince(start);
            return result;
        }

        result.machine = machines_.acquire(request.topo, request.cal);
        NoiseAdaptiveCompiler compiler(result.machine,
                                       request.options);
        auto program = std::make_shared<const CompiledProgram>(
            compiler.compile(request.circuit));
        cache_.insert(key, program);
        result.program = std::move(program);
        result.ok = true;
    } catch (const std::exception &e) {
        // FatalError, z3 errors, bad_alloc, ... — a failing job must
        // never poison the batch or escape the future contract.
        result.ok = false;
        result.error = e.what();
        result.program = nullptr;
        result.machine = nullptr;
    } catch (...) {
        result.ok = false;
        result.error = "unknown exception during compilation";
        result.program = nullptr;
        result.machine = nullptr;
    }
    result.seconds = secondsSince(start);
    return result;
}

BatchResult
CompileService::compileBatch(std::vector<CompileRequest> requests)
{
    const auto start = std::chrono::steady_clock::now();

    std::vector<std::future<CompileResult>> futures;
    futures.reserve(requests.size());
    for (CompileRequest &request : requests)
        futures.push_back(submit(std::move(request)));

    BatchResult batch;
    batch.results.reserve(futures.size());
    for (std::future<CompileResult> &f : futures)
        batch.results.push_back(f.get());

    batch.report = makeReport(batch.results, secondsSince(start));
    return batch;
}

std::vector<CompileRequest>
CompileService::dailyBatch(
    const CalibrationModel &model,
    const std::vector<std::pair<std::string, Circuit>> &programs,
    int firstDay, int numDays, const CompilerOptions &options)
{
    QC_ASSERT(numDays >= 0, "negative day count");
    std::vector<CompileRequest> requests;
    requests.reserve(programs.size() *
                     static_cast<std::size_t>(numDays));
    for (int day = firstDay; day < firstDay + numDays; ++day) {
        Calibration cal = model.forDay(day);
        for (const auto &[name, circuit] : programs) {
            CompileRequest req;
            req.tag = name + "@d" + std::to_string(day);
            req.day = day;
            req.circuit = circuit;
            req.topo = model.topology();
            req.cal = cal;
            req.options = options;
            requests.push_back(std::move(req));
        }
    }
    return requests;
}

ServiceReport
CompileService::makeReport(const std::vector<CompileResult> &results,
                           double wall_seconds) const
{
    ServiceReport report;
    report.jobs = static_cast<int>(results.size());
    for (const CompileResult &r : results) {
        if (r.ok)
            ++report.succeeded;
        else
            ++report.failed;
        if (r.cacheHit)
            ++report.cacheHits;
        report.jobSeconds += r.seconds;
    }
    report.wallSeconds = wall_seconds;
    report.machinePool = machines_.stats();
    report.cache = cache_.stats();
    return report;
}

std::string
ServiceReport::toString() const
{
    std::ostringstream oss;
    oss << "jobs: " << jobs << " (" << succeeded << " ok, " << failed
        << " failed, " << cacheHits << " cache hits)\n"
        << "wall time: " << wallSeconds << " s (" << throughput()
        << " jobs/s; " << jobSeconds << " s of job time)\n"
        << "machine pool: " << machinePool.builds << " builds, "
        << machinePool.hits << " hits, " << machinePool.evictions
        << " evictions\n"
        << "compile cache: " << cache.hits << "/" << cache.lookups()
        << " hits (rate " << cache.hitRate() << "), "
        << cache.evictions << " evictions\n";
    return oss.str();
}

} // namespace qc::service
