#include "compile_service.hpp"

#include <chrono>
#include <sstream>
#include <utility>

#include "service/fingerprints.hpp"
#include "support/logging.hpp"

namespace qc::service {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

CompileService::CompileService(ServiceOptions options)
    : options_(options),
      machines_(options.machinePoolCapacity),
      cache_(options.cacheCapacity, options.cacheByteCapacity),
      pool_(options.threads)
{
}

std::size_t
CompileService::cancelPending()
{
    return pool_.cancelPending();
}

std::future<CompileResult>
CompileService::submit(CompileRequest request)
{
    return pool_.submit(
        [this, request = std::move(request)]() mutable {
            return runJob(request);
        });
}

CompileResult
CompileService::runJob(const CompileRequest &request)
{
    const auto start = std::chrono::steady_clock::now();
    CompileResult result;
    result.tag = request.tag;
    result.day = request.day;

    CacheKey key;
    key.circuit = fingerprintCircuit(request.circuit);
    key.calibration = machineKey(request.topo, request.cal);
    key.options = fingerprintOptions(request.options);

    try {
        if (auto cached = cache_.lookup(key)) {
            result.ok = true;
            result.cacheHit = true;
            result.program = std::move(cached);
            // Only attach a snapshot that's still pooled: a cache
            // hit must never pay for a Machine rebuild.
            result.machine =
                machines_.tryAcquire(request.topo, request.cal);
            result.seconds = secondsSince(start);
            return result;
        }

        result.machine = machines_.acquire(request.topo, request.cal);
        Pipeline pipeline =
            standardPipeline(result.machine, request.options);
        PipelineResult compiled = pipeline.run(request.circuit);

        result.status = compiled.status;
        result.failedStage = compiled.failedStage;
        if (compiled.hasProgram) {
            // The program keeps its own trace copy: it may outlive
            // this result through the cache.
            result.stageTraces = compiled.program.stageTraces;
            auto program = std::make_shared<const CompiledProgram>(
                std::move(compiled.program));
            // Degraded solver fallbacks are usable but not worth
            // pinning in the cache.
            if (compiled.status.ok())
                cache_.insert(key, program);
            result.program = std::move(program);
            result.ok = true;
        } else {
            result.ok = false;
            result.stageTraces =
                std::move(compiled.program.stageTraces);
            result.program = nullptr;
            result.machine = nullptr;
        }
    } catch (const std::exception &e) {
        // bad_alloc, queue shutdown, ... — a failing job must never
        // poison the batch or escape the future contract. (Compile
        // failures themselves already surface as status values.)
        result.ok = false;
        result.status = CompileStatus::internalError(e.what());
        result.program = nullptr;
        result.machine = nullptr;
    } catch (...) {
        result.ok = false;
        result.status = CompileStatus::internalError(
            "unknown exception during compilation");
        result.program = nullptr;
        result.machine = nullptr;
    }
    result.seconds = secondsSince(start);
    return result;
}

BatchResult
CompileService::compileBatch(std::vector<CompileRequest> requests)
{
    const auto start = std::chrono::steady_clock::now();

    std::vector<std::future<CompileResult>> futures;
    futures.reserve(requests.size());
    for (CompileRequest &request : requests)
        futures.push_back(submit(std::move(request)));

    BatchResult batch;
    batch.results.reserve(futures.size());
    for (std::future<CompileResult> &f : futures)
        batch.results.push_back(f.get());

    batch.report = makeReport(batch.results, secondsSince(start));
    return batch;
}

std::vector<CompileRequest>
CompileService::dailyBatch(
    const CalibrationModel &model,
    const std::vector<std::pair<std::string, Circuit>> &programs,
    int firstDay, int numDays, const CompilerOptions &options)
{
    QC_ASSERT(numDays >= 0, "negative day count");
    std::vector<CompileRequest> requests;
    requests.reserve(programs.size() *
                     static_cast<std::size_t>(numDays));
    for (int day = firstDay; day < firstDay + numDays; ++day) {
        Calibration cal = model.forDay(day);
        for (const auto &[name, circuit] : programs) {
            CompileRequest req;
            req.tag = name + "@d" + std::to_string(day);
            req.day = day;
            req.circuit = circuit;
            req.topo = model.topology();
            req.cal = cal;
            req.options = options;
            requests.push_back(std::move(req));
        }
    }
    return requests;
}

ServiceReport
CompileService::makeReport(const std::vector<CompileResult> &results,
                           double wall_seconds) const
{
    ServiceReport report;
    report.jobs = static_cast<int>(results.size());

    auto stage_slot = [&report](const std::string &label)
        -> StageSummary & {
        for (StageSummary &s : report.stages)
            if (s.stage == label)
                return s;
        report.stages.push_back({label, 0, 0.0, 0});
        return report.stages.back();
    };

    for (const CompileResult &r : results) {
        if (r.ok)
            ++report.succeeded;
        else
            ++report.failed;
        if (r.ok && !r.status.ok())
            ++report.degraded;
        if (r.cacheHit)
            ++report.cacheHits;
        report.jobSeconds += r.seconds;

        for (const StageTrace &t : r.stageTraces) {
            StageSummary &s = stage_slot(t.stage + "/" + t.pass);
            ++s.runs;
            s.seconds += t.seconds;
        }
        if (!r.ok && !r.failedStage.empty()) {
            // The failing stage is the last trace recorded for the
            // job; attribute the failure to its stage/pass label.
            const std::string label =
                r.stageTraces.empty()
                    ? r.failedStage
                    : r.stageTraces.back().stage + "/" +
                          r.stageTraces.back().pass;
            ++stage_slot(label).failures;
        }
    }
    report.wallSeconds = wall_seconds;
    report.machinePool = machines_.stats();
    report.cache = cache_.stats();
    return report;
}

std::string
ServiceReport::toString() const
{
    std::ostringstream oss;
    oss << "jobs: " << jobs << " (" << succeeded << " ok, " << failed
        << " failed, " << cacheHits << " cache hits";
    if (degraded > 0)
        oss << ", " << degraded << " degraded";
    oss << ")\n"
        << "wall time: " << wallSeconds << " s (" << throughput()
        << " jobs/s; " << jobSeconds << " s of job time)\n"
        << "machine pool: " << machinePool.builds << " builds, "
        << machinePool.hits << " hits, " << machinePool.evictions
        << " evictions\n"
        << "compile cache: " << cache.hits << "/" << cache.lookups()
        << " hits (rate " << cache.hitRate() << "), "
        << cache.evictions << " evictions, " << cache.entries
        << " entries / " << cache.bytes << " bytes\n";
    if (!stages.empty()) {
        oss << "stage breakdown:\n";
        for (const StageSummary &s : stages) {
            oss << "  " << s.stage << ": " << s.seconds << " s over "
                << s.runs << " runs";
            if (s.failures > 0)
                oss << " (" << s.failures << " failed here)";
            oss << "\n";
        }
    }
    return oss.str();
}

} // namespace qc::service
