#include "portfolio_executor.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>

namespace qc::service {

void
PoolPortfolioExecutor::runAll(std::vector<std::function<void()>> tasks)
{
    if (tasks.empty())
        return;

    // Shared between the caller and the pump tasks; shared_ptr because
    // a pump may fire after runAll returned (it then finds the index
    // exhausted and exits without touching the closures).
    struct Shared
    {
        std::vector<std::function<void()>> tasks;
        std::atomic<std::size_t> next{0};
        std::mutex mu;
        std::condition_variable allDone;
        std::size_t done = 0; // guarded by mu
    };
    auto shared = std::make_shared<Shared>();
    shared->tasks = std::move(tasks);
    const std::size_t n = shared->tasks.size();

    auto drain = [shared, n] {
        for (;;) {
            const std::size_t i =
                shared->next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            shared->tasks[i]();
            std::lock_guard<std::mutex> lock(shared->mu);
            if (++shared->done == n)
                shared->allDone.notify_all();
        }
    };

    // Borrow idle workers. The caller counts against the budget; the
    // pump futures are intentionally dropped — drain() doesn't throw,
    // and completion is tracked by the done counter, not the futures
    // (waiting on a queued pump from inside a saturated pool would be
    // exactly the deadlock this executor exists to avoid).
    const int budget = maxWorkers_ > 0
                           ? std::min(maxWorkers_, pool_.numThreads())
                           : pool_.numThreads();
    const std::size_t pumps =
        std::min<std::size_t>(budget > 1 ? budget - 1 : 0, n - 1);
    for (std::size_t i = 0; i < pumps; ++i) {
        try {
            pool_.submit(drain);
        } catch (...) {
            break; // pool shutting down: the caller drains alone
        }
    }

    drain(); // help while waiting: the caller always makes progress

    std::unique_lock<std::mutex> lock(shared->mu);
    shared->allDone.wait(lock, [&shared, n] { return shared->done == n; });
}

} // namespace qc::service
