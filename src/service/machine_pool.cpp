#include "machine_pool.hpp"

#include <utility>

#include "service/fingerprints.hpp"

namespace qc::service {

MachinePool::MachinePool(std::size_t capacity) : capacity_(capacity)
{
}

void
MachinePool::touchLocked(std::uint64_t key)
{
    auto pos = lruPos_.find(key);
    if (pos != lruPos_.end()) {
        lru_.splice(lru_.begin(), lru_, pos->second);
        return;
    }
    lru_.push_front(key);
    lruPos_[key] = lru_.begin();
    if (capacity_ == 0)
        return;
    while (lru_.size() > capacity_) {
        // Evicting drops only the pool's reference; snapshots held by
        // in-flight jobs (or a peer blocked on the build) stay alive
        // through their own shared_ptr/shared_future copies.
        std::uint64_t victim = lru_.back();
        lru_.pop_back();
        lruPos_.erase(victim);
        pool_.erase(victim);
        ++stats_.evictions;
    }
}

std::shared_ptr<const Machine>
MachinePool::acquire(const Topology &topo, const Calibration &cal)
{
    const std::uint64_t key = machineKey(topo, cal);

    std::promise<std::shared_ptr<const Machine>> promise;
    Entry entry;
    bool builder = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = pool_.find(key);
        if (it != pool_.end()) {
            ++stats_.hits;
            entry = it->second;
        } else {
            builder = true;
            ++stats_.builds;
            entry = promise.get_future().share();
            pool_.emplace(key, entry);
        }
        touchLocked(key);
    }

    if (!builder)
        return entry.get(); // blocks only while a peer is building

    // Build outside the lock: snapshot construction (one-bend paths +
    // Dijkstra) is the expensive part and must not serialize peers
    // working on other calibration days.
    try {
        promise.set_value(std::make_shared<const Machine>(topo, cal));
    } catch (...) {
        {
            // Failed builds must not poison the key forever.
            std::lock_guard<std::mutex> lock(mu_);
            auto pos = lruPos_.find(key);
            if (pos != lruPos_.end()) {
                lru_.erase(pos->second);
                lruPos_.erase(pos);
            }
            pool_.erase(key);
        }
        promise.set_exception(std::current_exception());
    }
    return entry.get();
}

std::shared_ptr<const Machine>
MachinePool::tryAcquire(const Topology &topo,
                        const Calibration &cal)
{
    const std::uint64_t key = machineKey(topo, cal);
    Entry entry;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = pool_.find(key);
        if (it == pool_.end())
            return nullptr;
        ++stats_.hits;
        entry = it->second;
        touchLocked(key);
    }
    return entry.get();
}

std::size_t
MachinePool::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return pool_.size();
}

MachinePoolStats
MachinePool::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
MachinePool::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    pool_.clear();
    lru_.clear();
    lruPos_.clear();
}

} // namespace qc::service
