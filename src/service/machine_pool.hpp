/**
 * @file
 * Keyed pool of immutable, shared Machine snapshots.
 *
 * Building a Machine runs the one-bend-path and all-pairs Dijkstra
 * precompute (src/machine/machine.cpp) — by far the most expensive
 * per-day setup. In the daily-recompilation workload every job on the
 * same (topology, calibration) pair needs the same tables, so the
 * pool builds each snapshot exactly once — even under concurrent
 * first-acquires — and hands out shared_ptr<const Machine> views.
 */

#ifndef QC_SERVICE_MACHINE_POOL_HPP
#define QC_SERVICE_MACHINE_POOL_HPP

#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "machine/calibration.hpp"
#include "machine/machine.hpp"
#include "machine/topology.hpp"

namespace qc::service {

/** Counters exposed by MachinePool::stats(). */
struct MachinePoolStats
{
    std::uint64_t builds = 0;    ///< snapshots constructed
    std::uint64_t hits = 0;      ///< acquires served from the pool
    std::uint64_t evictions = 0; ///< snapshots dropped by LRU bound
};

/**
 * Thread-safe machine-snapshot pool keyed by content fingerprint.
 *
 * acquire() returns an existing snapshot when one with the same
 * (topology, calibration) fingerprint is pooled; otherwise it builds
 * one. A second thread acquiring the same key mid-build blocks on the
 * first build instead of duplicating it.
 */
class MachinePool
{
  public:
    /**
     * @param capacity max snapshots retained; least-recently-used
     *        entries are evicted beyond it (snapshots are the big
     *        objects here — all-pairs tables — so a long-lived
     *        service must not accumulate every calibration day it
     *        ever saw). 0 means unbounded.
     */
    explicit MachinePool(std::size_t capacity = 64);

    /**
     * Get (building if needed) the snapshot for this machine-day.
     * The returned pointer is never null and stays valid for the
     * caller's lifetime regardless of eviction or clear().
     */
    std::shared_ptr<const Machine> acquire(const Topology &topo,
                                           const Calibration &cal);

    /**
     * The pooled snapshot for this machine-day, or null without
     * building one — for callers who only want it if it's cheap
     * (e.g. the compile-cache hit path).
     */
    std::shared_ptr<const Machine> tryAcquire(const Topology &topo,
                                              const Calibration &cal);

    /** Number of snapshots currently pooled. */
    std::size_t size() const;

    std::size_t capacity() const { return capacity_; }

    MachinePoolStats stats() const;

    /** Drop pooled snapshots (outstanding shared_ptrs stay valid). */
    void clear();

  private:
    using Entry = std::shared_future<std::shared_ptr<const Machine>>;

    /** Move `key` to MRU (inserting if new); evict past capacity. */
    void touchLocked(std::uint64_t key);

    const std::size_t capacity_;
    mutable std::mutex mu_;
    std::unordered_map<std::uint64_t, Entry> pool_;
    std::list<std::uint64_t> lru_; ///< front = most recently used
    std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
        lruPos_;
    MachinePoolStats stats_;
};

} // namespace qc::service

#endif // QC_SERVICE_MACHINE_POOL_HPP
