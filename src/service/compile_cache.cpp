#include "compile_cache.hpp"

namespace qc::service {

std::size_t
approxProgramBytes(const CompiledProgram &program)
{
    std::size_t n = sizeof(CompiledProgram);
    n += program.mapperName.size() + program.programName.size() +
         program.solverStatus.size();
    n += program.layout.size() * sizeof(HwQubit);
    n += program.junctions.size() * sizeof(int);
    n += program.schedule.ops.size() * sizeof(TimedOp);
    n += program.schedule.macros.size() * sizeof(MacroTiming);
    n += program.schedule.qubitFinish.size() * sizeof(Timeslot);
    for (const StageTrace &t : program.stageTraces)
        n += sizeof(StageTrace) + t.stage.size() + t.pass.size() +
             t.note.size();
    return n;
}

CompileCache::CompileCache(std::size_t capacity,
                           std::size_t byteCapacity)
    : capacity_(capacity), byteCapacity_(byteCapacity)
{
}

std::shared_ptr<const CompiledProgram>
CompileCache::lookup(const CacheKey &key)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) {
        ++stats_.misses;
        return nullptr;
    }
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second); // promote to MRU
    return it->second->program;
}

void
CompileCache::insert(const CacheKey &key,
                     std::shared_ptr<const CompiledProgram> program)
{
    if (capacity_ == 0)
        return;
    const std::size_t entry_bytes =
        program ? approxProgramBytes(*program) : 0;
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.insertions;
    auto it = map_.find(key);
    if (it != map_.end()) {
        bytes_ -= it->second->bytes;
        bytes_ += entry_bytes;
        it->second->program = std::move(program);
        it->second->bytes = entry_bytes;
        lru_.splice(lru_.begin(), lru_, it->second);
        evictLocked();
        return;
    }
    lru_.push_front(Entry{key, std::move(program), entry_bytes});
    map_[key] = lru_.begin();
    bytes_ += entry_bytes;
    evictLocked();
}

void
CompileCache::evictLocked()
{
    while (map_.size() > capacity_ ||
           (byteCapacity_ > 0 && bytes_ > byteCapacity_ &&
            map_.size() > 1)) {
        ++stats_.evictions;
        bytes_ -= lru_.back().bytes;
        map_.erase(lru_.back().key);
        lru_.pop_back();
    }
}

std::size_t
CompileCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
}

std::size_t
CompileCache::sizeBytes() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_;
}

CompileCacheStats
CompileCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    CompileCacheStats s = stats_;
    s.entries = map_.size();
    s.bytes = bytes_;
    return s;
}

void
CompileCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    lru_.clear();
    map_.clear();
    bytes_ = 0;
}

} // namespace qc::service
