#include "compile_cache.hpp"

namespace qc::service {

CompileCache::CompileCache(std::size_t capacity) : capacity_(capacity)
{
}

std::shared_ptr<const CompiledProgram>
CompileCache::lookup(const CacheKey &key)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) {
        ++stats_.misses;
        return nullptr;
    }
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second); // promote to MRU
    return it->second->second;
}

void
CompileCache::insert(const CacheKey &key,
                     std::shared_ptr<const CompiledProgram> program)
{
    if (capacity_ == 0)
        return;
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.insertions;
    auto it = map_.find(key);
    if (it != map_.end()) {
        it->second->second = std::move(program);
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    lru_.emplace_front(key, std::move(program));
    map_[key] = lru_.begin();
    if (map_.size() > capacity_) {
        ++stats_.evictions;
        map_.erase(lru_.back().first);
        lru_.pop_back();
    }
}

std::size_t
CompileCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
}

CompileCacheStats
CompileCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
CompileCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    lru_.clear();
    map_.clear();
}

} // namespace qc::service
