/**
 * @file
 * Fixed-size worker pool with a FIFO task queue and futures.
 *
 * The compile service's execution engine: jobs are type-erased
 * callables pushed onto one shared queue; a fixed set of workers
 * drains it. Results and exceptions travel back through std::future,
 * so a crashing compile job never takes a worker (or the process)
 * down with it.
 */

#ifndef QC_SERVICE_THREAD_POOL_HPP
#define QC_SERVICE_THREAD_POOL_HPP

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace qc::service {

/**
 * A fixed-size thread pool.
 *
 * Tasks submitted after shutdown() (or destruction) throw. The
 * destructor finishes every task already queued before joining, so
 * futures obtained from submit() never dangle.
 */
class ThreadPool
{
  public:
    /** @param threads worker count; <= 0 means hardware concurrency. */
    explicit ThreadPool(int threads = 0);

    /** Drains the queue, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Configured worker count (fixed at construction). */
    int numThreads() const { return numThreads_; }

    /**
     * Enqueue a callable; returns a future for its result. The
     * callable runs exactly once on some worker thread; an exception
     * it throws is captured into the future.
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> future = task->get_future();
        enqueue([task]() { (*task)(); });
        return future;
    }

    /** Block until every queued task has finished. */
    void waitIdle();

    /**
     * Discard every task that is queued but not yet running; tasks
     * already executing finish normally. Futures of the discarded
     * tasks are broken (std::future_error on get), so only use this
     * when the caller abandons them — e.g. an interrupt path that
     * reports partial results. Returns the number discarded.
     */
    std::size_t cancelPending();

    /** Stop accepting tasks; finish the queue; join the workers. */
    void shutdown();

    /** Number of tasks queued but not yet started. */
    std::size_t queueDepth() const;

  private:
    void enqueue(std::function<void()> task);
    void workerLoop();

    mutable std::mutex mu_;
    std::condition_variable workAvailable_;
    std::condition_variable allIdle_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    int numThreads_ = 0; ///< configured size; stable across shutdown
    int active_ = 0;     ///< tasks currently executing
    bool stopping_ = false;
};

} // namespace qc::service

#endif // QC_SERVICE_THREAD_POOL_HPP
