#include "thread_pool.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace qc::service {

ThreadPool::ThreadPool(int threads)
{
    if (threads <= 0) {
        threads = static_cast<int>(std::thread::hardware_concurrency());
        threads = std::max(threads, 1);
    }
    numThreads_ = threads;
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    shutdown();
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_)
            QC_FATAL("ThreadPool::submit after shutdown");
        queue_.push_back(std::move(task));
    }
    workAvailable_.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            workAvailable_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        task(); // packaged_task captures exceptions into the future
        {
            std::lock_guard<std::mutex> lock(mu_);
            --active_;
            if (queue_.empty() && active_ == 0)
                allIdle_.notify_all();
        }
    }
}

void
ThreadPool::waitIdle()
{
    std::unique_lock<std::mutex> lock(mu_);
    allIdle_.wait(lock,
                  [this] { return queue_.empty() && active_ == 0; });
}

void
ThreadPool::shutdown()
{
    // Claim the worker handles under the lock so concurrent
    // shutdown() calls each join a disjoint (possibly empty) set.
    std::vector<std::thread> claimed;
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
        claimed.swap(workers_);
    }
    workAvailable_.notify_all();
    for (std::thread &w : claimed)
        if (w.joinable())
            w.join();
}

std::size_t
ThreadPool::cancelPending()
{
    std::deque<std::function<void()>> discarded;
    {
        std::lock_guard<std::mutex> lock(mu_);
        discarded.swap(queue_);
        if (active_ == 0)
            allIdle_.notify_all();
    }
    // Destroyed outside the lock: dropping a packaged_task breaks
    // its promise, which may run arbitrary future-side destructors.
    return discarded.size();
}

std::size_t
ThreadPool::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
}

} // namespace qc::service
