#include "qasm.hpp"

#include <cctype>
#include <limits>
#include <sstream>
#include <vector>

#include "support/logging.hpp"

namespace qc {

std::string
emitQasm(const Circuit &circuit)
{
    std::ostringstream oss;
    oss << "// " << circuit.name() << "\n";
    oss << "OPENQASM 2.0;\n";
    oss << "include \"qelib1.inc\";\n";
    oss << "qreg q[" << circuit.numQubits() << "];\n";
    oss << "creg c[" << circuit.numClbits() << "];\n";
    for (const auto &g : circuit.gates()) {
        switch (g.op) {
          case Op::Swap:
            // SWAP(a, b) := CX a,b; CX b,a; CX a,b (footnote 2).
            oss << "cx q[" << g.q0 << "],q[" << g.q1 << "];\n";
            oss << "cx q[" << g.q1 << "],q[" << g.q0 << "];\n";
            oss << "cx q[" << g.q0 << "],q[" << g.q1 << "];\n";
            break;
          case Op::CNOT:
            oss << "cx q[" << g.q0 << "],q[" << g.q1 << "];\n";
            break;
          case Op::Measure:
            oss << "measure q[" << g.q0 << "] -> c[" << g.cbit << "];\n";
            break;
          default:
            oss << opName(g.op) << " q[" << g.q0 << "];\n";
            break;
        }
    }
    return oss.str();
}

namespace {

/** Cursor over one QASM statement's text. */
struct StmtCursor
{
    const std::string &text;
    size_t pos = 0;
    int line;

    void
    skipSpace()
    {
        while (pos < text.size() && std::isspace(
                   static_cast<unsigned char>(text[pos]))) {
            ++pos;
        }
    }

    bool done()
    {
        skipSpace();
        return pos >= text.size();
    }

    std::string
    ident()
    {
        skipSpace();
        size_t start = pos;
        while (pos < text.size() &&
               (std::isalnum(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '_')) {
            ++pos;
        }
        if (start == pos)
            QC_FATAL("qasm line ", line, ": expected identifier");
        return text.substr(start, pos - start);
    }

    int
    number()
    {
        skipSpace();
        size_t start = pos;
        while (pos < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[pos]))) {
            ++pos;
        }
        if (start == pos)
            QC_FATAL("qasm line ", line, ": expected number");
        // Accumulate with an overflow guard: an oversized literal
        // (q[99999999999]) must be a parse diagnostic with the line
        // number, not std::out_of_range escaping the parser.
        long long value = 0;
        for (size_t i = start; i < pos; ++i) {
            value = value * 10 + (text[i] - '0');
            if (value > std::numeric_limits<int>::max())
                QC_FATAL("qasm line ", line, ": number '",
                         text.substr(start, pos - start),
                         "' out of range");
        }
        return static_cast<int>(value);
    }

    void
    expect(char c)
    {
        skipSpace();
        if (pos >= text.size() || text[pos] != c)
            QC_FATAL("qasm line ", line, ": expected '", c, "'");
        ++pos;
    }

    bool
    accept(char c)
    {
        skipSpace();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    /** Parse "name[index]" and return the index. */
    int
    indexedRef()
    {
        ident();
        expect('[');
        int idx = number();
        expect(']');
        return idx;
    }
};

} // namespace

Circuit
parseQasm(const std::string &text, const std::string &name)
{
    // Split into statements at ';', tracking line numbers and
    // stripping '//' comments.
    std::vector<std::pair<std::string, int>> stmts;
    {
        std::string cur;
        int line = 1;
        int stmt_line = 1;
        for (size_t i = 0; i < text.size(); ++i) {
            char c = text[i];
            if (c == '/' && i + 1 < text.size() && text[i + 1] == '/') {
                while (i < text.size() && text[i] != '\n')
                    ++i;
                ++line;
                continue;
            }
            if (c == '\n') {
                ++line;
                // Folding the newline into a pending statement keeps
                // multi-line statements parsable; an *empty* buffer
                // must stay empty so the next statement records the
                // line its first real character is on.
                if (!cur.empty())
                    cur += ' ';
                continue;
            }
            if (c == ';') {
                stmts.emplace_back(cur, stmt_line);
                cur.clear();
                stmt_line = line;
                continue;
            }
            if (cur.empty() && std::isspace(static_cast<unsigned char>(c)))
                continue;
            if (cur.empty())
                stmt_line = line;
            cur += c;
        }
        std::string rest = cur;
        for (char &ch : rest)
            if (std::isspace(static_cast<unsigned char>(ch)))
                ch = ' ';
        bool blank = rest.find_first_not_of(' ') == std::string::npos;
        if (!blank)
            QC_FATAL("qasm: trailing statement without ';'");
    }

    int n_qubits = -1;
    int n_clbits = -1;
    std::vector<Gate> pending;

    for (auto &[stmt, line] : stmts) {
        StmtCursor cur{stmt, 0, line};
        if (cur.done())
            continue;
        std::string head = cur.ident();

        if (head == "OPENQASM") {
            continue; // version payload ignored
        } else if (head == "include") {
            continue;
        } else if (head == "barrier") {
            continue;
        } else if (head == "qreg") {
            n_qubits = cur.indexedRef();
        } else if (head == "creg") {
            n_clbits = cur.indexedRef();
        } else if (head == "measure") {
            cur.ident();
            cur.expect('[');
            int q = cur.number();
            cur.expect(']');
            cur.expect('-');
            cur.expect('>');
            cur.ident();
            cur.expect('[');
            int c = cur.number();
            cur.expect(']');
            pending.push_back({Op::Measure, q, kInvalidQubit, c});
        } else {
            Op op;
            if (!opFromName(head, op))
                QC_FATAL("qasm line ", line, ": unknown gate '", head, "'");
            cur.ident();
            cur.expect('[');
            int q0 = cur.number();
            cur.expect(']');
            int q1 = kInvalidQubit;
            if (cur.accept(',')) {
                cur.ident();
                cur.expect('[');
                q1 = cur.number();
                cur.expect(']');
            }
            if (opIsTwoQubit(op) && q1 == kInvalidQubit)
                QC_FATAL("qasm line ", line, ": ", head,
                         " needs two operands");
            pending.push_back({op, q0, q1, -1});
        }
    }

    if (n_qubits <= 0)
        QC_FATAL("qasm: missing qreg declaration");
    if (n_clbits < 0)
        n_clbits = n_qubits;

    Circuit circuit(name, n_qubits, n_clbits);
    for (const auto &g : pending)
        circuit.add(g);
    return circuit;
}

} // namespace qc
