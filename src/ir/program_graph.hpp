/**
 * @file
 * Program interaction graph: one node per program qubit, one weighted
 * edge per CNOT-connected qubit pair (paper Sec. 5). Drives the greedy
 * heuristics and the SMT reliability objective.
 */

#ifndef QC_IR_PROGRAM_GRAPH_HPP
#define QC_IR_PROGRAM_GRAPH_HPP

#include <vector>

#include "ir/circuit.hpp"

namespace qc {

/** A CNOT-interaction edge between two program qubits. */
struct ProgramEdge
{
    ProgQubit a;
    ProgQubit b;
    int weight; ///< number of CNOTs between a and b
};

/**
 * Undirected weighted interaction graph of a circuit.
 *
 * "Degree" of a qubit is the number of CNOTs it participates in (the
 * paper's GreedyV* ordering key), not the number of distinct neighbors.
 */
class ProgramGraph
{
  public:
    explicit ProgramGraph(const Circuit &circuit);

    int numQubits() const { return static_cast<int>(degree_.size()); }

    /** Edges in unspecified order; use sortedEdgesByWeight for GreedyE*. */
    const std::vector<ProgramEdge> &edges() const { return edges_; }

    /** CNOT count incident to qubit q. */
    int degree(ProgQubit q) const { return degree_[q]; }

    /** Readout (measurement) count of qubit q. */
    int readoutCount(ProgQubit q) const { return readoutCount_[q]; }

    /** CNOT multiplicity between a and b (0 if none). */
    int edgeWeight(ProgQubit a, ProgQubit b) const;

    /** Distinct CNOT neighbors of q. */
    std::vector<ProgQubit> neighbors(ProgQubit q) const;

    /** Edges sorted by descending weight (ties: lower qubit ids first). */
    std::vector<ProgramEdge> sortedEdgesByWeight() const;

    /** Qubits sorted by descending degree (ties: lower ids first). */
    std::vector<ProgQubit> sortedQubitsByDegree() const;

    /** Total CNOT count in the circuit. */
    int totalCnots() const;

  private:
    std::vector<ProgramEdge> edges_;
    std::vector<int> degree_;
    std::vector<int> readoutCount_;
};

} // namespace qc

#endif // QC_IR_PROGRAM_GRAPH_HPP
