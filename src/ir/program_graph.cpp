#include "program_graph.hpp"

#include <algorithm>
#include <map>

namespace qc {

ProgramGraph::ProgramGraph(const Circuit &circuit)
    : degree_(circuit.numQubits(), 0),
      readoutCount_(circuit.numQubits(), 0)
{
    std::map<std::pair<int, int>, int> weight;
    for (const auto &g : circuit.gates()) {
        if (g.op == Op::CNOT || g.op == Op::Swap) {
            int multiplicity = g.op == Op::Swap ? 3 : 1;
            int a = std::min(g.q0, g.q1);
            int b = std::max(g.q0, g.q1);
            weight[{a, b}] += multiplicity;
            degree_[g.q0] += multiplicity;
            degree_[g.q1] += multiplicity;
        } else if (g.isMeasure()) {
            readoutCount_[g.q0] += 1;
        }
    }
    for (const auto &[key, w] : weight)
        edges_.push_back({key.first, key.second, w});
}

int
ProgramGraph::edgeWeight(ProgQubit a, ProgQubit b) const
{
    for (const auto &e : edges_) {
        if ((e.a == a && e.b == b) || (e.a == b && e.b == a))
            return e.weight;
    }
    return 0;
}

std::vector<ProgQubit>
ProgramGraph::neighbors(ProgQubit q) const
{
    std::vector<ProgQubit> ns;
    for (const auto &e : edges_) {
        if (e.a == q)
            ns.push_back(e.b);
        else if (e.b == q)
            ns.push_back(e.a);
    }
    return ns;
}

std::vector<ProgramEdge>
ProgramGraph::sortedEdgesByWeight() const
{
    std::vector<ProgramEdge> es = edges_;
    std::stable_sort(es.begin(), es.end(),
                     [](const ProgramEdge &x, const ProgramEdge &y) {
                         if (x.weight != y.weight)
                             return x.weight > y.weight;
                         if (x.a != y.a)
                             return x.a < y.a;
                         return x.b < y.b;
                     });
    return es;
}

std::vector<ProgQubit>
ProgramGraph::sortedQubitsByDegree() const
{
    std::vector<ProgQubit> qs(degree_.size());
    for (size_t i = 0; i < qs.size(); ++i)
        qs[i] = static_cast<int>(i);
    std::stable_sort(qs.begin(), qs.end(), [this](int x, int y) {
        if (degree_[x] != degree_[y])
            return degree_[x] > degree_[y];
        return x < y;
    });
    return qs;
}

int
ProgramGraph::totalCnots() const
{
    int n = 0;
    for (const auto &e : edges_)
        n += e.weight;
    return n;
}

} // namespace qc
