/**
 * @file
 * OpenQASM 2.0 emitter and parser for the gate subset used by the
 * compiler. Emission is the executable interface the paper targets
 * (compiled programs were shipped to IBMQ16 as OpenQASM); the parser
 * doubles as a lightweight textual frontend and enables round-trip
 * testing.
 */

#ifndef QC_IR_QASM_HPP
#define QC_IR_QASM_HPP

#include <string>

#include "ir/circuit.hpp"

namespace qc {

/**
 * Emit OpenQASM 2.0 text for a circuit.
 *
 * Swap pseudo-gates are expanded into their 3-CNOT implementation
 * (paper footnote 2) so the output only uses operations IBMQ16-class
 * hardware implements natively.
 */
std::string emitQasm(const Circuit &circuit);

/**
 * Parse OpenQASM 2.0 text into a Circuit.
 *
 * Supports the subset the emitter produces: a single qreg/creg pair,
 * the gates of qc::Op, barrier (ignored), and comments. Throws
 * qc::FatalError with a line number on malformed input.
 */
Circuit parseQasm(const std::string &text, const std::string &name = "qasm");

} // namespace qc

#endif // QC_IR_QASM_HPP
