/**
 * @file
 * Gate-level intermediate representation.
 *
 * The IR mirrors the information the paper's backend consumes from the
 * ScaffCC/LLVM frontend: which qubits each operation touches and the
 * data dependencies between operations (implied by program order here).
 */

#ifndef QC_IR_GATE_HPP
#define QC_IR_GATE_HPP

#include <string>

#include "support/types.hpp"

namespace qc {

/**
 * Operation kinds supported by the IR.
 *
 * The single-qubit set {H, X, Y, Z, S, Sdg, T, Tdg} together with CNOT
 * is universal and covers every benchmark in the paper (Sec. 6 samples
 * synthetic circuits from exactly this set). Swap appears only in
 * hardware-level circuits produced by the router and expands to three
 * CNOTs on emission (paper footnote 2). Measure maps a qubit to a
 * classical bit.
 */
enum class Op {
    H,
    X,
    Y,
    Z,
    S,
    Sdg,
    T,
    Tdg,
    CNOT,
    Swap,
    Measure,
};

/** Number of qubit operands an op consumes. */
int opArity(Op op);

/** True for CNOT and Swap. */
bool opIsTwoQubit(Op op);

/** Lower-case OpenQASM mnemonic ("h", "cx", "swap", "measure"). */
const char *opName(Op op);

/** Parse an OpenQASM mnemonic; returns false if unknown. */
bool opFromName(const std::string &name, Op &out);

/**
 * One IR operation.
 *
 * For single-qubit gates only q0 is valid. For CNOT, q0 is the control
 * and q1 the target (the paper's "CNOT C, T" notation). For Measure,
 * q0 is the measured qubit and cbit the destination classical bit.
 */
struct Gate
{
    Op op = Op::H;
    int q0 = kInvalidQubit;
    int q1 = kInvalidQubit;
    int cbit = -1;

    bool isTwoQubit() const { return opIsTwoQubit(op); }
    bool isMeasure() const { return op == Op::Measure; }

    /** True if this gate acts on qubit q. */
    bool touches(int q) const;

    /** Human-readable form, e.g. "cx q1, q3". */
    std::string toString() const;
};

/** Structural equality (op + operands + cbit). */
bool operator==(const Gate &a, const Gate &b);

} // namespace qc

#endif // QC_IR_GATE_HPP
