/**
 * @file
 * Data-dependency DAG over a circuit's gates (the paper's relation
 * "g2 > g1": g2 must start after g1 finishes, constraint 3).
 */

#ifndef QC_IR_DAG_HPP
#define QC_IR_DAG_HPP

#include <vector>

#include "ir/circuit.hpp"
#include "support/types.hpp"

namespace qc {

/**
 * Dependency DAG: gate i depends on gate j iff they share a qubit and
 * j is the most recent earlier gate on that qubit. Gate indices refer
 * to positions in the source circuit, whose program order is a valid
 * topological order.
 */
class DependencyDag
{
  public:
    explicit DependencyDag(const Circuit &circuit);

    size_t numGates() const { return preds_.size(); }

    /** Direct predecessors of gate i (deduplicated). */
    const std::vector<int> &preds(int i) const { return preds_[i]; }

    /** Direct successors of gate i (deduplicated). */
    const std::vector<int> &succs(int i) const { return succs_[i]; }

    /** Gates with no predecessors. */
    std::vector<int> roots() const;

    /** Gates with no successors. */
    std::vector<int> sinks() const;

    /** True if gate b transitively depends on gate a. */
    bool dependsOn(int b, int a) const;

    /**
     * Length of the longest path through the DAG where gate i
     * contributes durations[i]; the paper's schedule lower bound.
     */
    Timeslot criticalPath(const std::vector<Timeslot> &durations) const;

    /**
     * ASAP depth of each gate counting every gate as one step
     * (classic circuit depth when applied with unit durations).
     */
    std::vector<int> depths() const;

  private:
    std::vector<std::vector<int>> preds_;
    std::vector<std::vector<int>> succs_;
};

} // namespace qc

#endif // QC_IR_DAG_HPP
