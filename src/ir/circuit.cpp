#include "circuit.hpp"

#include <sstream>

#include "support/logging.hpp"

namespace qc {

Circuit::Circuit(std::string name, int n_qubits, int n_clbits)
    : name_(std::move(name)),
      numQubits_(n_qubits),
      numClbits_(n_clbits < 0 ? n_qubits : n_clbits)
{
    QC_ASSERT(numQubits_ > 0, "circuit needs at least one qubit");
}

void
Circuit::add(const Gate &g)
{
    QC_ASSERT(g.q0 >= 0 && g.q0 < numQubits_,
              "gate operand q", g.q0, " out of range in ", name_);
    if (g.isTwoQubit()) {
        QC_ASSERT(g.q1 >= 0 && g.q1 < numQubits_,
                  "gate operand q", g.q1, " out of range in ", name_);
        QC_ASSERT(g.q0 != g.q1, "two-qubit gate with identical operands");
    }
    if (g.isMeasure()) {
        QC_ASSERT(g.cbit >= 0 && g.cbit < numClbits_,
                  "measure cbit ", g.cbit, " out of range in ", name_);
    }
    gates_.push_back(g);
}

void
Circuit::cz(int c, int t)
{
    h(t);
    cnot(c, t);
    h(t);
}

void
Circuit::toffoli(int a, int b, int target)
{
    h(target);
    cnot(b, target);
    tdg(target);
    cnot(a, target);
    t(target);
    cnot(b, target);
    tdg(target);
    cnot(a, target);
    t(b);
    t(target);
    h(target);
    cnot(a, b);
    t(a);
    tdg(b);
    cnot(a, b);
}

int
Circuit::cnotCount() const
{
    int n = 0;
    for (const auto &g : gates_) {
        if (g.op == Op::CNOT)
            n += 1;
        else if (g.op == Op::Swap)
            n += 3;
    }
    return n;
}

int
Circuit::gateCount() const
{
    int n = 0;
    for (const auto &g : gates_)
        if (!g.isMeasure())
            n += 1;
    return n;
}

int
Circuit::measureCount() const
{
    int n = 0;
    for (const auto &g : gates_)
        if (g.isMeasure())
            n += 1;
    return n;
}

int
Circuit::twoQubitCount() const
{
    int n = 0;
    for (const auto &g : gates_)
        if (g.isTwoQubit())
            n += 1;
    return n;
}

std::vector<int>
Circuit::measuredQubits() const
{
    std::vector<int> qs;
    for (const auto &g : gates_)
        if (g.isMeasure())
            qs.push_back(g.q0);
    return qs;
}

bool
Circuit::usesQubit(int q) const
{
    for (const auto &g : gates_)
        if (g.touches(q))
            return true;
    return false;
}

std::string
Circuit::toString() const
{
    std::ostringstream oss;
    oss << "circuit " << name_ << " (" << numQubits_ << " qubits, "
        << gates_.size() << " ops)\n";
    for (const auto &g : gates_)
        oss << "  " << g.toString() << "\n";
    return oss.str();
}

} // namespace qc
