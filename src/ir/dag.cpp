#include "dag.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace qc {

DependencyDag::DependencyDag(const Circuit &circuit)
{
    const size_t n = circuit.size();
    preds_.assign(n, {});
    succs_.assign(n, {});

    std::vector<int> last_on_qubit(circuit.numQubits(), -1);
    for (size_t i = 0; i < n; ++i) {
        const Gate &g = circuit.gate(i);
        std::vector<int> operands{g.q0};
        if (g.isTwoQubit())
            operands.push_back(g.q1);
        for (int q : operands) {
            int prev = last_on_qubit[q];
            if (prev >= 0) {
                auto &ps = preds_[i];
                if (std::find(ps.begin(), ps.end(), prev) == ps.end()) {
                    ps.push_back(prev);
                    succs_[prev].push_back(static_cast<int>(i));
                }
            }
            last_on_qubit[q] = static_cast<int>(i);
        }
    }
}

std::vector<int>
DependencyDag::roots() const
{
    std::vector<int> r;
    for (size_t i = 0; i < preds_.size(); ++i)
        if (preds_[i].empty())
            r.push_back(static_cast<int>(i));
    return r;
}

std::vector<int>
DependencyDag::sinks() const
{
    std::vector<int> r;
    for (size_t i = 0; i < succs_.size(); ++i)
        if (succs_[i].empty())
            r.push_back(static_cast<int>(i));
    return r;
}

bool
DependencyDag::dependsOn(int b, int a) const
{
    if (b <= a)
        return false;
    // DFS backwards from b; indices only decrease along pred edges.
    std::vector<int> stack{b};
    std::vector<bool> seen(preds_.size(), false);
    while (!stack.empty()) {
        int cur = stack.back();
        stack.pop_back();
        if (cur == a)
            return true;
        if (cur < a || seen[cur])
            continue;
        seen[cur] = true;
        for (int p : preds_[cur])
            stack.push_back(p);
    }
    return false;
}

Timeslot
DependencyDag::criticalPath(const std::vector<Timeslot> &durations) const
{
    QC_ASSERT(durations.size() == preds_.size(),
              "duration vector arity mismatch");
    std::vector<Timeslot> finish(preds_.size(), 0);
    Timeslot best = 0;
    for (size_t i = 0; i < preds_.size(); ++i) {
        Timeslot start = 0;
        for (int p : preds_[i])
            start = std::max(start, finish[p]);
        finish[i] = start + durations[i];
        best = std::max(best, finish[i]);
    }
    return best;
}

std::vector<int>
DependencyDag::depths() const
{
    std::vector<int> depth(preds_.size(), 1);
    for (size_t i = 0; i < preds_.size(); ++i)
        for (int p : preds_[i])
            depth[i] = std::max(depth[i], depth[p] + 1);
    return depth;
}

} // namespace qc
