/**
 * @file
 * Circuit container: an ordered gate list over n qubits, the unit the
 * backend compiles. Program order is a valid topological order of the
 * data-dependency DAG (see dag.hpp).
 */

#ifndef QC_IR_CIRCUIT_HPP
#define QC_IR_CIRCUIT_HPP

#include <string>
#include <vector>

#include "ir/gate.hpp"

namespace qc {

/**
 * A quantum circuit over a fixed register of qubits and classical bits.
 *
 * Used both for program-level circuits (logical qubits, from the
 * frontend) and hardware-level circuits (physical qubits, produced by
 * the router/scheduler).
 */
class Circuit
{
  public:
    Circuit() = default;

    /**
     * @param name     circuit name (used in reports and QASM emission)
     * @param n_qubits register width
     * @param n_clbits classical register width (defaults to n_qubits)
     */
    Circuit(std::string name, int n_qubits, int n_clbits = -1);

    const std::string &name() const { return name_; }
    void setName(std::string n) { name_ = std::move(n); }

    int numQubits() const { return numQubits_; }
    int numClbits() const { return numClbits_; }

    const std::vector<Gate> &gates() const { return gates_; }
    const Gate &gate(size_t i) const { return gates_[i]; }
    size_t size() const { return gates_.size(); }
    bool empty() const { return gates_.empty(); }

    /** Append a validated gate. */
    void add(const Gate &g);

    /** @name Builder helpers
     *  Convenience mutators mirroring OpenQASM mnemonics.
     *  @{ */
    void h(int q) { add({Op::H, q, kInvalidQubit, -1}); }
    void x(int q) { add({Op::X, q, kInvalidQubit, -1}); }
    void y(int q) { add({Op::Y, q, kInvalidQubit, -1}); }
    void z(int q) { add({Op::Z, q, kInvalidQubit, -1}); }
    void s(int q) { add({Op::S, q, kInvalidQubit, -1}); }
    void sdg(int q) { add({Op::Sdg, q, kInvalidQubit, -1}); }
    void t(int q) { add({Op::T, q, kInvalidQubit, -1}); }
    void tdg(int q) { add({Op::Tdg, q, kInvalidQubit, -1}); }
    void cnot(int c, int t) { add({Op::CNOT, c, t, -1}); }
    void swap(int a, int b) { add({Op::Swap, a, b, -1}); }
    void measure(int q, int c) { add({Op::Measure, q, kInvalidQubit, c}); }
    /** @} */

    /** CZ as H(t); CNOT(c,t); H(t) — used by the hidden-shift kernels. */
    void cz(int c, int t);

    /** Standard 6-CNOT, 7-T Toffoli decomposition (Nielsen & Chuang). */
    void toffoli(int a, int b, int target);

    /** Number of CNOT gates (Swaps count as 3, as on hardware). */
    int cnotCount() const;

    /** Number of gates excluding measurements (Table 2's "Gates"). */
    int gateCount() const;

    /** Number of measurement operations. */
    int measureCount() const;

    /** Number of two-qubit operations (CNOT + Swap). */
    int twoQubitCount() const;

    /** Qubits that are measured, in gate order. */
    std::vector<int> measuredQubits() const;

    /** True if any gate touches qubit q. */
    bool usesQubit(int q) const;

    /** Multi-line dump for debugging. */
    std::string toString() const;

  private:
    std::string name_;
    int numQubits_ = 0;
    int numClbits_ = 0;
    std::vector<Gate> gates_;
};

} // namespace qc

#endif // QC_IR_CIRCUIT_HPP
