#include "gate.hpp"

#include <sstream>

#include "support/logging.hpp"

namespace qc {

int
opArity(Op op)
{
    return opIsTwoQubit(op) ? 2 : 1;
}

bool
opIsTwoQubit(Op op)
{
    return op == Op::CNOT || op == Op::Swap;
}

const char *
opName(Op op)
{
    switch (op) {
      case Op::H: return "h";
      case Op::X: return "x";
      case Op::Y: return "y";
      case Op::Z: return "z";
      case Op::S: return "s";
      case Op::Sdg: return "sdg";
      case Op::T: return "t";
      case Op::Tdg: return "tdg";
      case Op::CNOT: return "cx";
      case Op::Swap: return "swap";
      case Op::Measure: return "measure";
    }
    QC_PANIC("unknown op");
}

bool
opFromName(const std::string &name, Op &out)
{
    static const struct { const char *n; Op op; } table[] = {
        {"h", Op::H}, {"x", Op::X}, {"y", Op::Y}, {"z", Op::Z},
        {"s", Op::S}, {"sdg", Op::Sdg}, {"t", Op::T}, {"tdg", Op::Tdg},
        {"cx", Op::CNOT}, {"CX", Op::CNOT}, {"swap", Op::Swap},
        {"measure", Op::Measure},
    };
    for (const auto &e : table) {
        if (name == e.n) {
            out = e.op;
            return true;
        }
    }
    return false;
}

bool
Gate::touches(int q) const
{
    if (q0 == q)
        return true;
    return isTwoQubit() && q1 == q;
}

std::string
Gate::toString() const
{
    std::ostringstream oss;
    oss << opName(op) << " q" << q0;
    if (isTwoQubit())
        oss << ", q" << q1;
    if (isMeasure())
        oss << " -> c" << cbit;
    return oss.str();
}

bool
operator==(const Gate &a, const Gate &b)
{
    return a.op == b.op && a.q0 == b.q0 && a.q1 == b.q1 && a.cbit == b.cbit;
}

} // namespace qc
