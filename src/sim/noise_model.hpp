/**
 * @file
 * Stochastic (Monte-Carlo trajectory) noise channels driven by the
 * same calibration data the compiler consumes:
 *  - depolarizing Pauli errors after every CNOT (per-edge rate) and
 *    single-qubit gate (device-wide rate); SWAPs are 3 CNOTs,
 *  - T1/T2 decoherence applied to each qubit for the time it has been
 *    alive when it is read out (Pauli-twirl approximation),
 *  - classical readout bit-flips (per-qubit rate).
 */

#ifndef QC_SIM_NOISE_MODEL_HPP
#define QC_SIM_NOISE_MODEL_HPP

#include "machine/calibration.hpp"
#include "sim/statevector.hpp"
#include "support/rng.hpp"
#include "support/types.hpp"

namespace qc {

/** Noise-injection switches (all on by default). */
struct NoiseOptions
{
    bool gateErrors = true;
    bool decoherence = true;
    bool readoutErrors = true;

    /** Multiplies every error probability (ablation knob). */
    double errorScale = 1.0;
};

/**
 * Stateless noise-channel sampler.
 *
 * Each method perturbs a statevector (or classical bit) according to
 * one calibration-derived error mechanism. Simulator qubit indices
 * are the caller's (compacted) indices; probabilities come from the
 * caller, which owns the hardware-qubit translation.
 */
class NoiseChannels
{
  public:
    explicit NoiseChannels(NoiseOptions options) : options_(options) {}

    const NoiseOptions &options() const { return options_; }

    /** Depolarizing after a 1-qubit gate: uniform {X,Y,Z} w.p. p. */
    void depolarize1(Statevector &sv, int q, double p, Rng &rng) const;

    /**
     * Depolarizing after a CNOT: one of the 15 non-identity two-qubit
     * Paulis w.p. p.
     */
    void depolarize2(Statevector &sv, int q0, int q1, double p,
                     Rng &rng) const;

    /**
     * T1/T2 decay of a qubit that has been alive for `elapsed` slots:
     * X w.p. (1 - exp(-t/T1))/2 and Z w.p. (1 - exp(-t/T2))/2
     * (stochastic Pauli twirl of amplitude/phase damping).
     */
    void decohere(Statevector &sv, int q, Timeslot elapsed, double t1_us,
                  double t2_us, Rng &rng) const;

    /** Classical readout flip w.p. the qubit's readout error. */
    int readoutFlip(int bit, double readout_error, Rng &rng) const;

  private:
    double scaled(double p) const;

    NoiseOptions options_;
};

} // namespace qc

#endif // QC_SIM_NOISE_MODEL_HPP
