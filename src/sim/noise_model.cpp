#include "noise_model.hpp"

#include <algorithm>
#include <cmath>

namespace qc {

double
NoiseChannels::scaled(double p) const
{
    return std::clamp(p * options_.errorScale, 0.0, 1.0);
}

void
NoiseChannels::depolarize1(Statevector &sv, int q, double p,
                           Rng &rng) const
{
    if (!options_.gateErrors || !rng.bernoulli(scaled(p)))
        return;
    static const Pauli kPaulis[3] = {Pauli::X, Pauli::Y, Pauli::Z};
    sv.applyPauli(kPaulis[rng.uniformInt(0, 2)], q);
}

void
NoiseChannels::depolarize2(Statevector &sv, int q0, int q1, double p,
                           Rng &rng) const
{
    if (!options_.gateErrors || !rng.bernoulli(scaled(p)))
        return;
    // Uniform non-identity two-qubit Pauli: index in [1, 15].
    int k = rng.uniformInt(1, 15);
    static const Pauli kPaulis[4] = {Pauli::I, Pauli::X, Pauli::Y,
                                     Pauli::Z};
    sv.applyPauli(kPaulis[k & 3], q0);
    sv.applyPauli(kPaulis[(k >> 2) & 3], q1);
}

void
NoiseChannels::decohere(Statevector &sv, int q, Timeslot elapsed,
                        double t1_us, double t2_us, Rng &rng) const
{
    if (!options_.decoherence || elapsed <= 0)
        return;
    double t_us = static_cast<double>(elapsed) * kTimeslotNs / 1000.0;
    double p_relax = 0.5 * (1.0 - std::exp(-t_us / t1_us));
    double p_phase = 0.5 * (1.0 - std::exp(-t_us / t2_us));
    if (rng.bernoulli(scaled(p_relax)))
        sv.applyPauli(Pauli::X, q);
    if (rng.bernoulli(scaled(p_phase)))
        sv.applyPauli(Pauli::Z, q);
}

int
NoiseChannels::readoutFlip(int bit, double readout_error, Rng &rng) const
{
    if (!options_.readoutErrors)
        return bit;
    return rng.bernoulli(scaled(readout_error)) ? 1 - bit : bit;
}

} // namespace qc
