#include "executor.hpp"

#include <algorithm>
#include <cmath>

#include "support/logging.hpp"
#include "support/stats.hpp"

namespace qc {

namespace {

/** Dense relabeling of the hardware qubits a schedule touches. */
struct Compaction
{
    std::vector<int> hwToSim; ///< -1 if unused
    int count = 0;

    explicit Compaction(int n_hw) : hwToSim(n_hw, -1) {}

    int
    require(HwQubit h)
    {
        if (hwToSim[h] < 0)
            hwToSim[h] = count++;
        return hwToSim[h];
    }

    int at(HwQubit h) const { return hwToSim[h]; }
};

} // namespace

ExecutionResult
runNoisy(const Machine &machine, const Schedule &schedule, int n_clbits,
         const std::string &expected, const ExecutionOptions &options)
{
    const auto &topo = machine.topo();
    const auto &cal = machine.cal();
    const NoiseChannels noise(options.noise);

    if (static_cast<int>(expected.size()) != n_clbits)
        QC_FATAL("expected outcome '", expected, "' arity != ", n_clbits);

    const auto ops = schedule.opsByStart();

    Compaction compact(topo.numQubits());
    for (const auto &op : ops) {
        compact.require(op.gate.q0);
        if (op.gate.isTwoQubit())
            compact.require(op.gate.q1);
    }
    QC_ASSERT(compact.count >= 1, "empty schedule");

    Rng rng(options.seed, "noisy-exec");
    ExecutionResult result;
    result.trials = options.trials;

    for (int trial = 0; trial < options.trials; ++trial) {
        Statevector sv(compact.count);
        std::string clbits(static_cast<size_t>(n_clbits), '0');

        for (const auto &op : ops) {
            const Gate &g = op.gate;
            switch (g.op) {
              case Op::CNOT: {
                int c = compact.at(g.q0);
                int t = compact.at(g.q1);
                sv.apply({Op::CNOT, c, t, -1});
                EdgeId e = topo.edgeBetween(g.q0, g.q1);
                QC_ASSERT(e != kInvalidEdge,
                          "scheduled CNOT on non-adjacent qubits ", g.q0,
                          ",", g.q1);
                noise.depolarize2(sv, c, t, cal.cnotError[e], rng);
                break;
              }
              case Op::Swap: {
                int a = compact.at(g.q0);
                int b = compact.at(g.q1);
                sv.apply({Op::Swap, a, b, -1});
                EdgeId e = topo.edgeBetween(g.q0, g.q1);
                QC_ASSERT(e != kInvalidEdge,
                          "scheduled SWAP on non-adjacent qubits");
                // A SWAP is three CNOTs; draw three error events.
                for (int k = 0; k < 3; ++k)
                    noise.depolarize2(sv, a, b, cal.cnotError[e], rng);
                break;
              }
              case Op::Measure: {
                int q = compact.at(g.q0);
                noise.decohere(sv, q, op.start, cal.t1Us[g.q0],
                               cal.t2Us[g.q0], rng);
                int bit = sv.measure(q, rng);
                bit = noise.readoutFlip(bit, cal.readoutError[g.q0],
                                        rng);
                clbits[g.cbit] = static_cast<char>('0' + bit);
                break;
              }
              default: {
                int q = compact.at(g.q0);
                sv.apply({g.op, q, kInvalidQubit, -1});
                noise.depolarize1(sv, q, cal.oneQubitError, rng);
                break;
              }
            }
        }

        result.counts[clbits] += 1;
        if (clbits == expected)
            result.successes += 1;
    }

    result.successRate = static_cast<double>(result.successes) /
                         static_cast<double>(result.trials);
    result.halfWidth95 =
        binomialHalfWidth(result.successRate, result.trials);
    return result;
}

std::map<std::string, double>
idealDistribution(const Circuit &circuit)
{
    Compaction compact(circuit.numQubits());
    std::vector<bool> measured(circuit.numQubits(), false);
    std::vector<std::pair<int, int>> meas; // (sim qubit, cbit)

    for (const auto &g : circuit.gates()) {
        if (g.isMeasure()) {
            compact.require(g.q0);
            measured[g.q0] = true;
        } else {
            if (measured[g.q0] || (g.isTwoQubit() && measured[g.q1]))
                QC_FATAL("mid-circuit measurement is unsupported in ",
                         circuit.name());
            compact.require(g.q0);
            if (g.isTwoQubit())
                compact.require(g.q1);
        }
    }
    QC_ASSERT(compact.count >= 1, "empty circuit");

    Statevector sv(compact.count);
    for (const auto &g : circuit.gates()) {
        if (g.isMeasure()) {
            meas.push_back({compact.at(g.q0), g.cbit});
            continue;
        }
        Gate mapped = g;
        mapped.q0 = compact.at(g.q0);
        if (g.isTwoQubit())
            mapped.q1 = compact.at(g.q1);
        sv.apply(mapped);
    }

    std::map<std::string, double> dist;
    const auto probs = sv.probabilities();
    for (std::uint64_t basis = 0; basis < probs.size(); ++basis) {
        if (probs[basis] < 1e-15)
            continue;
        std::string key(static_cast<size_t>(circuit.numClbits()), '0');
        for (const auto &[simq, cbit] : meas) {
            if (basis & (std::uint64_t{1} << simq))
                key[cbit] = '1';
        }
        dist[key] += probs[basis];
    }
    return dist;
}

std::string
idealOutcome(const Circuit &circuit, double min_prob)
{
    auto dist = idealDistribution(circuit);
    std::string best;
    double best_p = -1.0;
    for (const auto &[key, p] : dist) {
        if (p > best_p) {
            best_p = p;
            best = key;
        }
    }
    if (best_p < min_prob)
        QC_FATAL("circuit ", circuit.name(),
                 " has no deterministic outcome (top probability ",
                 best_p, ")");
    return best;
}

} // namespace qc
