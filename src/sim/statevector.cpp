#include "statevector.hpp"

#include <cmath>

#include "support/logging.hpp"

namespace qc {

namespace {

constexpr int kMaxQubits = 24;
const std::complex<double> kI(0.0, 1.0);

} // namespace

Statevector::Statevector(int n) : n_(n)
{
    if (n <= 0 || n > kMaxQubits)
        QC_FATAL("statevector size ", n, " outside [1, ", kMaxQubits,
                 "]");
    amps_.assign(std::uint64_t{1} << n, {0.0, 0.0});
    amps_[0] = {1.0, 0.0};
}

void
Statevector::apply1q(int q, std::complex<double> m00,
                     std::complex<double> m01, std::complex<double> m10,
                     std::complex<double> m11)
{
    QC_ASSERT(q >= 0 && q < n_, "qubit ", q, " out of range");
    const std::uint64_t bit = std::uint64_t{1} << q;
    for (std::uint64_t i = 0; i < amps_.size(); ++i) {
        if (i & bit)
            continue;
        std::complex<double> a0 = amps_[i];
        std::complex<double> a1 = amps_[i | bit];
        amps_[i] = m00 * a0 + m01 * a1;
        amps_[i | bit] = m10 * a0 + m11 * a1;
    }
}

void
Statevector::applyCnot(int c, int t)
{
    QC_ASSERT(c != t && c >= 0 && c < n_ && t >= 0 && t < n_,
              "bad CNOT operands");
    const std::uint64_t cbit = std::uint64_t{1} << c;
    const std::uint64_t tbit = std::uint64_t{1} << t;
    for (std::uint64_t i = 0; i < amps_.size(); ++i) {
        if ((i & cbit) && !(i & tbit))
            std::swap(amps_[i], amps_[i | tbit]);
    }
}

void
Statevector::applySwap(int a, int b)
{
    QC_ASSERT(a != b && a >= 0 && a < n_ && b >= 0 && b < n_,
              "bad SWAP operands");
    const std::uint64_t abit = std::uint64_t{1} << a;
    const std::uint64_t bbit = std::uint64_t{1} << b;
    for (std::uint64_t i = 0; i < amps_.size(); ++i) {
        bool ba = i & abit;
        bool bb = i & bbit;
        if (ba && !bb)
            std::swap(amps_[i], amps_[(i ^ abit) | bbit]);
    }
}

void
Statevector::apply(const Gate &g)
{
    const double s = 1.0 / std::sqrt(2.0);
    switch (g.op) {
      case Op::H:
        apply1q(g.q0, s, s, s, -s);
        break;
      case Op::X:
        apply1q(g.q0, 0, 1, 1, 0);
        break;
      case Op::Y:
        apply1q(g.q0, 0, -kI, kI, 0);
        break;
      case Op::Z:
        apply1q(g.q0, 1, 0, 0, -1);
        break;
      case Op::S:
        apply1q(g.q0, 1, 0, 0, kI);
        break;
      case Op::Sdg:
        apply1q(g.q0, 1, 0, 0, -kI);
        break;
      case Op::T:
        apply1q(g.q0, 1, 0, 0, std::exp(kI * (M_PI / 4.0)));
        break;
      case Op::Tdg:
        apply1q(g.q0, 1, 0, 0, std::exp(-kI * (M_PI / 4.0)));
        break;
      case Op::CNOT:
        applyCnot(g.q0, g.q1);
        break;
      case Op::Swap:
        applySwap(g.q0, g.q1);
        break;
      case Op::Measure:
        QC_PANIC("use Statevector::measure for measurements");
    }
}

void
Statevector::applyPauli(Pauli p, int q)
{
    switch (p) {
      case Pauli::I:
        break;
      case Pauli::X:
        apply1q(q, 0, 1, 1, 0);
        break;
      case Pauli::Y:
        apply1q(q, 0, -kI, kI, 0);
        break;
      case Pauli::Z:
        apply1q(q, 1, 0, 0, -1);
        break;
    }
}

double
Statevector::probOne(int q) const
{
    QC_ASSERT(q >= 0 && q < n_, "qubit ", q, " out of range");
    const std::uint64_t bit = std::uint64_t{1} << q;
    double p = 0.0;
    for (std::uint64_t i = 0; i < amps_.size(); ++i)
        if (i & bit)
            p += std::norm(amps_[i]);
    return p;
}

int
Statevector::measure(int q, Rng &rng)
{
    double p1 = probOne(q);
    int outcome = rng.bernoulli(p1) ? 1 : 0;
    const std::uint64_t bit = std::uint64_t{1} << q;
    double keep_prob = outcome ? p1 : 1.0 - p1;
    double scale =
        keep_prob > 1e-300 ? 1.0 / std::sqrt(keep_prob) : 0.0;
    for (std::uint64_t i = 0; i < amps_.size(); ++i) {
        bool is_one = (i & bit) != 0;
        if (is_one == (outcome == 1))
            amps_[i] *= scale;
        else
            amps_[i] = {0.0, 0.0};
    }
    return outcome;
}

std::vector<double>
Statevector::probabilities() const
{
    std::vector<double> ps(amps_.size());
    for (std::uint64_t i = 0; i < amps_.size(); ++i)
        ps[i] = std::norm(amps_[i]);
    return ps;
}

double
Statevector::norm() const
{
    double s = 0.0;
    for (const auto &a : amps_)
        s += std::norm(a);
    return s;
}

} // namespace qc
