/**
 * @file
 * Monte-Carlo executor: runs a scheduled hardware program for many
 * trials under the calibration-derived noise model and reports the
 * success rate — the paper's primary metric (fraction of 8192 IBMQ16
 * trials returning the correct answer, Sec. 6 "Metrics").
 */

#ifndef QC_SIM_EXECUTOR_HPP
#define QC_SIM_EXECUTOR_HPP

#include <cstdint>
#include <map>
#include <string>

#include "ir/circuit.hpp"
#include "machine/machine.hpp"
#include "sched/schedule.hpp"
#include "sim/noise_model.hpp"

namespace qc {

/** Executor configuration. */
struct ExecutionOptions
{
    int trials = 2048;           ///< Monte-Carlo repetitions
    std::uint64_t seed = 1;      ///< trial-noise RNG seed
    NoiseOptions noise;          ///< channel switches
};

/** Aggregate result of one Monte-Carlo execution. */
struct ExecutionResult
{
    int trials = 0;
    int successes = 0;
    double successRate = 0.0;
    double halfWidth95 = 0.0; ///< 95% binomial confidence half-width
    std::map<std::string, int> counts; ///< outcome histogram
};

/**
 * Execute a compiled schedule for `options.trials` trials.
 *
 * Per trial: ops run in start order; CNOTs draw per-edge depolarizing
 * errors (SWAPs as 3 CNOTs); single-qubit gates draw the device rate;
 * each measured qubit decoheres for its scheduled lifetime, is
 * measured, and its classical bit may flip with the qubit's readout
 * error. A trial succeeds when the classical bits equal `expected`
 * (string indexed by classical bit, '0'/'1'; positions never written
 * are compared as '0').
 */
ExecutionResult runNoisy(const Machine &machine, const Schedule &schedule,
                         int n_clbits, const std::string &expected,
                         const ExecutionOptions &options);

/**
 * Noise-free outcome distribution of a circuit over its classical
 * bits. Works for both program-level and hardware-level circuits.
 * Keys are classical-bit strings (index 0 first); values sum to 1.
 */
std::map<std::string, double> idealDistribution(const Circuit &circuit);

/**
 * The deterministic noise-free outcome of a circuit. Throws
 * FatalError if the top outcome's probability is below `min_prob`
 * (i.e. the circuit is not verifiable by exact match).
 */
std::string idealOutcome(const Circuit &circuit, double min_prob = 0.999);

} // namespace qc

#endif // QC_SIM_EXECUTOR_HPP
