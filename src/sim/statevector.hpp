/**
 * @file
 * Dense statevector simulator for the compiler's gate set.
 *
 * Stands in for the quantum hardware when measuring success rates
 * (DESIGN.md substitution table): the paper executed compiled programs
 * on IBMQ16; we execute them on this simulator under the identical
 * calibration-derived noise parameters.
 */

#ifndef QC_SIM_STATEVECTOR_HPP
#define QC_SIM_STATEVECTOR_HPP

#include <complex>
#include <cstdint>
#include <vector>

#include "ir/gate.hpp"
#include "support/rng.hpp"

namespace qc {

/** Pauli operators for stochastic noise injection. */
enum class Pauli { I, X, Y, Z };

/**
 * State of n qubits as 2^n complex amplitudes (little-endian: qubit q
 * is bit q of the basis index). n is capped at 24 to bound memory.
 */
class Statevector
{
  public:
    /** Initialize to |0...0>. */
    explicit Statevector(int n);

    int numQubits() const { return n_; }
    std::uint64_t dimension() const { return amps_.size(); }

    std::complex<double> amp(std::uint64_t basis) const
    {
        return amps_[basis];
    }

    /** Apply a unitary gate (Measure is rejected; use measure()). */
    void apply(const Gate &g);

    /** Apply a single Pauli (noise injection). */
    void applyPauli(Pauli p, int q);

    /** Probability that qubit q reads 1. */
    double probOne(int q) const;

    /** Measure qubit q, collapsing the state; returns the outcome. */
    int measure(int q, Rng &rng);

    /** Probability of each full basis state. */
    std::vector<double> probabilities() const;

    /** Squared norm (should stay 1 up to rounding). */
    double norm() const;

  private:
    void apply1q(int q, std::complex<double> m00, std::complex<double> m01,
                 std::complex<double> m10, std::complex<double> m11);
    void applyCnot(int c, int t);
    void applySwap(int a, int b);

    int n_;
    std::vector<std::complex<double>> amps_;
};

} // namespace qc

#endif // QC_SIM_STATEVECTOR_HPP
