/**
 * @file
 * Mutation injection for the verifier's own test oracle.
 *
 * Each MutationKind corrupts a valid CompiledProgram in a way that
 * violates exactly one compiled-program contract family (an off-edge
 * gate, a start time shifted out of its window, a dropped route SWAP,
 * a duplicated op, ...). The verify_fuzz harness and
 * tests/test_verifier.cpp apply every kind to every bundle's output
 * and assert ProgramVerifier flags each one — if a mutation ever
 * slips through, the verifier has a blind spot.
 *
 * Mutations are deterministic under a seeded Rng: same program, same
 * kind, same seed → same corrupted program, so fuzz failures replay.
 */

#ifndef QC_VERIFY_MUTATE_HPP
#define QC_VERIFY_MUTATE_HPP

#include "machine/machine.hpp"
#include "mappers/mapper.hpp"
#include "support/rng.hpp"

namespace qc {

/** One injectable violation class. */
enum class MutationKind {
    OffEdgeGate,     ///< retarget a 2q op off the coupling graph
    ShiftStartTime,  ///< push an op's start past the makespan
    DropSwap,        ///< delete one route SWAP (permutation breaks)
    DuplicateOp,     ///< replay one non-SWAP op a second time
    DropGate,        ///< delete one non-SWAP op (coverage breaks)
    RetargetMeasure, ///< point a measurement at the wrong clbit
    CorruptMakespan, ///< declare a makespan the ops don't produce
    CorruptLayout,   ///< make the initial layout non-injective
    StretchDuration, ///< give one op a duration off the model
};

/** Every kind, for exhaustive fuzz sweeps. */
inline constexpr MutationKind kAllMutationKinds[] = {
    MutationKind::OffEdgeGate,     MutationKind::ShiftStartTime,
    MutationKind::DropSwap,        MutationKind::DuplicateOp,
    MutationKind::DropGate,        MutationKind::RetargetMeasure,
    MutationKind::CorruptMakespan, MutationKind::CorruptLayout,
    MutationKind::StretchDuration,
};

/** Stable kebab-case name (CLI flag values, fuzz output). */
const char *mutationKindName(MutationKind kind);

/** Parse a kebab-case kind name; throws FatalError listing valid. */
MutationKind mutationKindFromName(const std::string &name);

/**
 * Corrupt `program` in place with one violation of class `kind`,
 * choosing the victim op with `rng`. Returns false (program
 * untouched) when the kind does not apply — e.g. DropSwap on a
 * SWAP-free program, or OffEdgeGate on a fully-connected machine.
 */
bool applyMutation(CompiledProgram &program, const Machine &machine,
                   MutationKind kind, Rng &rng);

} // namespace qc

#endif // QC_VERIFY_MUTATE_HPP
