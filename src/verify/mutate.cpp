#include "mutate.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "support/logging.hpp"

namespace qc {

const char *
mutationKindName(MutationKind kind)
{
    switch (kind) {
      case MutationKind::OffEdgeGate: return "off-edge-gate";
      case MutationKind::ShiftStartTime: return "shift-start-time";
      case MutationKind::DropSwap: return "drop-swap";
      case MutationKind::DuplicateOp: return "duplicate-op";
      case MutationKind::DropGate: return "drop-gate";
      case MutationKind::RetargetMeasure: return "retarget-measure";
      case MutationKind::CorruptMakespan: return "corrupt-makespan";
      case MutationKind::CorruptLayout: return "corrupt-layout";
      case MutationKind::StretchDuration: return "stretch-duration";
    }
    QC_PANIC("unknown mutation kind");
}

MutationKind
mutationKindFromName(const std::string &name)
{
    for (MutationKind k : kAllMutationKinds)
        if (name == mutationKindName(k))
            return k;
    std::ostringstream oss;
    oss << "unknown mutation kind '" << name << "'; valid:";
    for (MutationKind k : kAllMutationKinds)
        oss << ' ' << mutationKindName(k);
    throw FatalError(oss.str());
}

namespace {

/** Indices into `ops` whose op satisfies `pred`, in op order. */
template <typename Pred>
std::vector<size_t>
matching(const std::vector<TimedOp> &ops, Pred pred)
{
    std::vector<size_t> idx;
    for (size_t i = 0; i < ops.size(); ++i)
        if (pred(ops[i]))
            idx.push_back(i);
    return idx;
}

/** Pick one element of a non-empty index list. */
size_t
pick(const std::vector<size_t> &idx, Rng &rng)
{
    return idx[static_cast<size_t>(
        rng.uniformInt(0, static_cast<int>(idx.size()) - 1))];
}

} // namespace

bool
applyMutation(CompiledProgram &program, const Machine &machine,
              MutationKind kind, Rng &rng)
{
    std::vector<TimedOp> &ops = program.schedule.ops;
    if (ops.empty())
        return false;

    switch (kind) {
      case MutationKind::OffEdgeGate: {
        const auto twoq = matching(ops, [](const TimedOp &op) {
            return op.gate.isTwoQubit();
        });
        if (twoq.empty())
            return false;
        TimedOp &op = ops[pick(twoq, rng)];
        const int n = machine.numQubits();
        const int off = rng.uniformInt(0, n - 1);
        for (int d = 0; d < n; ++d) {
            const int cand = (off + d) % n;
            if (cand == op.gate.q0 || cand == op.gate.q1)
                continue;
            if (machine.topo().edgeBetween(op.gate.q0, cand) ==
                kInvalidEdge) {
                op.gate.q1 = cand;
                return true;
            }
        }
        return false; // fully connected: no off-edge target exists
      }

      case MutationKind::ShiftStartTime: {
        // Past the declared makespan: provably outside every macro
        // window and provably inconsistent with the declared values.
        TimedOp &op = ops[static_cast<size_t>(
            rng.uniformInt(0, static_cast<int>(ops.size()) - 1))];
        op.start += program.schedule.makespan + 1;
        return true;
      }

      case MutationKind::DropSwap: {
        const auto swaps = matching(ops, [](const TimedOp &op) {
            return op.isRouteSwap;
        });
        if (swaps.empty())
            return false;
        ops.erase(ops.begin() +
                  static_cast<std::ptrdiff_t>(pick(swaps, rng)));
        return true;
      }

      case MutationKind::DuplicateOp: {
        const auto plain = matching(ops, [](const TimedOp &op) {
            return op.gate.op != Op::Swap;
        });
        if (plain.empty())
            return false;
        const size_t i = pick(plain, rng);
        // Insert right after the original: start order is preserved,
        // so the duplicate is a pure replay of the same gate.
        ops.insert(ops.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                   ops[i]);
        return true;
      }

      case MutationKind::DropGate: {
        const auto plain = matching(ops, [](const TimedOp &op) {
            return op.gate.op != Op::Swap;
        });
        if (plain.empty())
            return false;
        ops.erase(ops.begin() +
                  static_cast<std::ptrdiff_t>(pick(plain, rng)));
        return true;
      }

      case MutationKind::RetargetMeasure: {
        const auto meas = matching(ops, [](const TimedOp &op) {
            return op.gate.op == Op::Measure;
        });
        if (meas.empty())
            return false;
        ops[pick(meas, rng)].gate.cbit += 1;
        return true;
      }

      case MutationKind::CorruptMakespan: {
        program.schedule.makespan += 7;
        return true;
      }

      case MutationKind::CorruptLayout: {
        if (program.layout.size() < 2)
            return false;
        program.layout[0] = program.layout[1];
        return true;
      }

      case MutationKind::StretchDuration: {
        TimedOp &op = ops[static_cast<size_t>(
            rng.uniformInt(0, static_cast<int>(ops.size()) - 1))];
        op.duration += 3;
        return true;
      }
    }
    QC_PANIC("unknown mutation kind");
}

} // namespace qc
