/**
 * @file
 * Translation validation: a static checker that proves a compiled
 * program legal, semantically faithful, and schedule-consistent.
 *
 * ProgramVerifier analyzes a (Circuit source, CompiledProgram out,
 * Machine) triple and emits a structured lint report instead of
 * simulating: coupling legality (every 2-qubit op on a real Topology
 * edge with finite calibration reliability), semantic faithfulness
 * (replay the SWAP chain to maintain the logical→physical map and
 * prove the hardware op stream equals the source DAG up to the
 * tracked permutation — no dropped, duplicated, or
 * reordered-across-dependency gates), schedule consistency (no
 * time-overlapping ops share a qubit or macro reservation footprint,
 * durations match the duration model, makespan matches the declared
 * value), and measurement coverage + final-permutation correctness.
 *
 * Every check is O(gates) on the success path and independent of
 * qubit count beyond O(hw qubits) bookkeeping, so it scales to the
 * 1000-qubit frontier where statevector checking dies at ~20 qubits.
 */

#ifndef QC_VERIFY_VERIFIER_HPP
#define QC_VERIFY_VERIFIER_HPP

#include <string>
#include <vector>

#include "ir/circuit.hpp"
#include "machine/machine.hpp"
#include "mappers/mapper.hpp"

namespace qc {

/** How bad one finding is. Only Error findings fail verification. */
enum class VerifySeverity {
    Warning, ///< suspicious but not a contract violation
    Error,   ///< the program violates a compiled-program contract
};

const char *verifySeverityName(VerifySeverity s);

/** Stable machine-readable issue classification (lint codes). */
enum class VerifyCode {
    // --- structural preconditions ----------------------------------
    LayoutInvalid,      ///< layout is not an injection prog→hw qubits
    ScheduleShape,      ///< sizes/counters inconsistent with machine
    OpQubitRange,       ///< op operand outside the hardware qubit set
    // --- coupling legality -----------------------------------------
    EdgeMissing,        ///< 2-qubit op not on a real coupling edge
    ReliabilityInvalid, ///< op's calibration reliability not in (0,1]
    // --- semantic faithfulness (replay) ----------------------------
    GateDropped,        ///< source gate never executed
    GateDuplicated,     ///< source gate executed more than once
    GateMismatch,       ///< hardware op matches no source gate
    DependencyOrder,    ///< gate ran before a same-qubit predecessor
    MeasureMissing,     ///< source measurement never executed
    MeasureMismatch,    ///< measurement on wrong qubit or clbit
    SwapAnnotation,     ///< Swap/isRouteSwap bookkeeping inconsistent
    FinalPermutation,   ///< final layout differs from the expected one
    Provenance,         ///< progGate provenance disagrees (warning)
    // --- schedule consistency --------------------------------------
    QubitOverlap,       ///< two ops overlap in time on one qubit
    MacroOverlap,       ///< overlapping macros share a touched qubit
    MacroWindow,        ///< an op escapes its macro's time window
    DurationModel,      ///< op duration differs from the model value
    MakespanMismatch,   ///< makespan / declared duration inconsistent
    QubitFinishMismatch,///< per-qubit last-use table is stale
};

/** Stable kebab-case name for a code (lint report / CLI output). */
const char *verifyCodeName(VerifyCode code);

/** One finding: severity + code + offending op + human detail. */
struct VerifyIssue
{
    VerifySeverity severity = VerifySeverity::Error;
    VerifyCode code = VerifyCode::GateMismatch;

    /**
     * Index into Schedule::opsByStart() of the offending op, or -1
     * for program-level findings (dropped gates, makespan, layout).
     */
    int opIndex = -1;

    std::string detail;

    /** "error[edge-missing] op 12: ..." (one lint line). */
    std::string toString() const;
};

/** Which duration model the schedule is expected to follow. */
enum class VerifyDurations {
    Auto,       ///< calibrated if it fits, else uniform
    Calibrated, ///< per-edge cnotDuration (calibratedDurations=true)
    Uniform,    ///< machine.uniformCnotDuration() for every CNOT
};

/** Verification policy knobs (derived from the producing pipeline). */
struct VerifyOptions
{
    VerifyDurations durations = VerifyDurations::Auto;

    /**
     * Require the final logical→physical permutation to equal the
     * initial layout. True for the list-scheduler bundles (expandRoute
     * restores every SWAP chain); false for live-tracking routing,
     * whose layout drifts and whose measurements chase the qubits.
     */
    bool expectRestoredLayout = false;

    /**
     * Check the macro reservation footprint: two macros overlapping
     * in time must touch disjoint hardware qubit sets. Holds for
     * every scheduler in this repo (both serialize a macro's touched
     * qubits to its finish time); disable for external schedules.
     */
    bool checkMacroExclusion = true;
};

/** The structured lint report one verification run produces. */
struct VerifyReport
{
    std::vector<VerifyIssue> issues;

    /**
     * Final logical→physical map after replaying the SWAP chain:
     * finalLayout[prog qubit] = hw qubit. Equals the initial layout
     * when routing restores it; meaningful only when the replay ran
     * (empty after a LayoutInvalid finding).
     */
    std::vector<HwQubit> finalLayout;

    /** Duration model actually checked: "calibrated" or "uniform". */
    std::string durationsChecked;

    bool ok() const { return errorCount() == 0; }
    int errorCount() const;
    int warningCount() const;

    /** True if any issue (any severity) carries `code`. */
    bool has(VerifyCode code) const;

    /** Multi-line lint-style report ending in a summary line. */
    std::string toString() const;
};

/**
 * The static translation validator. Stateless and cheap to construct;
 * bind one per machine snapshot and reuse across programs.
 */
class ProgramVerifier
{
  public:
    explicit ProgramVerifier(const Machine &machine,
                             VerifyOptions options = {});

    /**
     * Statically verify `program` against its source circuit. Never
     * throws on verification findings (they land in the report);
     * throws nothing for malformed programs either — structural
     * damage is itself a finding.
     */
    VerifyReport verify(const Circuit &source,
                        const CompiledProgram &program) const;

    const VerifyOptions &options() const { return options_; }

  private:
    const Machine *machine_;
    VerifyOptions options_;
};

/**
 * Whether pipelines should verify by default: on in assert-enabled
 * (Debug) builds, off in Release — overridable either way with the
 * QC_VERIFY environment variable (0/false/off disable, anything else
 * enables; CI sets QC_VERIFY=1 on Release builds).
 */
bool defaultVerifyEnabled();

} // namespace qc

#endif // QC_VERIFY_VERIFIER_HPP
