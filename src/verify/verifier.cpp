#include "verifier.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "support/logging.hpp"

namespace qc {

const char *
verifySeverityName(VerifySeverity s)
{
    switch (s) {
      case VerifySeverity::Warning: return "warning";
      case VerifySeverity::Error: return "error";
    }
    QC_PANIC("unknown verify severity");
}

const char *
verifyCodeName(VerifyCode code)
{
    switch (code) {
      case VerifyCode::LayoutInvalid: return "layout-invalid";
      case VerifyCode::ScheduleShape: return "schedule-shape";
      case VerifyCode::OpQubitRange: return "op-qubit-range";
      case VerifyCode::EdgeMissing: return "edge-missing";
      case VerifyCode::ReliabilityInvalid: return "reliability-invalid";
      case VerifyCode::GateDropped: return "gate-dropped";
      case VerifyCode::GateDuplicated: return "gate-duplicated";
      case VerifyCode::GateMismatch: return "gate-mismatch";
      case VerifyCode::DependencyOrder: return "dependency-order";
      case VerifyCode::MeasureMissing: return "measure-missing";
      case VerifyCode::MeasureMismatch: return "measure-mismatch";
      case VerifyCode::SwapAnnotation: return "swap-annotation";
      case VerifyCode::FinalPermutation: return "final-permutation";
      case VerifyCode::Provenance: return "provenance";
      case VerifyCode::QubitOverlap: return "qubit-overlap";
      case VerifyCode::MacroOverlap: return "macro-overlap";
      case VerifyCode::MacroWindow: return "macro-window";
      case VerifyCode::DurationModel: return "duration-model";
      case VerifyCode::MakespanMismatch: return "makespan-mismatch";
      case VerifyCode::QubitFinishMismatch:
          return "qubit-finish-mismatch";
    }
    QC_PANIC("unknown verify code");
}

std::string
VerifyIssue::toString() const
{
    std::ostringstream oss;
    oss << verifySeverityName(severity) << '[' << verifyCodeName(code)
        << ']';
    if (opIndex >= 0)
        oss << " op " << opIndex;
    oss << ": " << detail;
    return oss.str();
}

int
VerifyReport::errorCount() const
{
    int n = 0;
    for (const VerifyIssue &i : issues)
        n += i.severity == VerifySeverity::Error ? 1 : 0;
    return n;
}

int
VerifyReport::warningCount() const
{
    int n = 0;
    for (const VerifyIssue &i : issues)
        n += i.severity == VerifySeverity::Warning ? 1 : 0;
    return n;
}

bool
VerifyReport::has(VerifyCode code) const
{
    for (const VerifyIssue &i : issues)
        if (i.code == code)
            return true;
    return false;
}

std::string
VerifyReport::toString() const
{
    std::ostringstream oss;
    for (const VerifyIssue &i : issues)
        oss << i.toString() << '\n';
    oss << "verify: " << errorCount() << " error(s), "
        << warningCount() << " warning(s)";
    if (!durationsChecked.empty())
        oss << " [durations=" << durationsChecked << ']';
    return oss.str();
}

namespace {

/**
 * One verification run. Bundles the triple plus the evolving report
 * so the check families stay small; all indices in findings refer to
 * the start-ordered op stream (Schedule::opsByStart), the canonical
 * replay order — ops sharing a qubit never overlap (checked), and
 * disjoint-qubit ops commute, so any start-consistent order is sound.
 */
class Verification
{
  public:
    Verification(const Machine &machine, const VerifyOptions &options,
                 const Circuit &source, const CompiledProgram &program)
        : machine_(machine), options_(options), source_(source),
          program_(program), ops_(program.schedule.opsByStart())
    {
    }

    VerifyReport run()
    {
        const bool layoutOk = checkLayout();
        checkShape();
        checkStaticLegality();
        checkDurations();
        checkQubitOverlap();
        checkMakespan();
        checkQubitFinish();
        checkMacros();
        if (layoutOk)
            replay();
        return std::move(report_);
    }

  private:
    void error(VerifyCode code, int opIndex, std::string detail)
    {
        report_.issues.push_back({VerifySeverity::Error, code, opIndex,
                                  std::move(detail)});
    }

    void warning(VerifyCode code, int opIndex, std::string detail)
    {
        report_.issues.push_back({VerifySeverity::Warning, code,
                                  opIndex, std::move(detail)});
    }

    int numHw() const { return machine_.numQubits(); }

    bool opOperandsValid(const TimedOp &op) const
    {
        const Gate &g = op.gate;
        if (g.q0 < 0 || g.q0 >= numHw())
            return false;
        if (g.isTwoQubit() && (g.q1 < 0 || g.q1 >= numHw() ||
                               g.q1 == g.q0))
            return false;
        return true;
    }

    /** Layout must be an injection prog qubits -> hw qubits. */
    bool checkLayout()
    {
        const auto &layout = program_.layout;
        if (static_cast<int>(layout.size()) != source_.numQubits()) {
            std::ostringstream oss;
            oss << "layout has " << layout.size() << " entries for "
                << source_.numQubits() << " program qubits";
            error(VerifyCode::LayoutInvalid, -1, oss.str());
            return false;
        }
        std::vector<char> seen(static_cast<size_t>(numHw()), 0);
        bool ok = true;
        for (size_t p = 0; p < layout.size(); ++p) {
            const HwQubit h = layout[p];
            std::ostringstream oss;
            if (h < 0 || h >= numHw()) {
                oss << "program qubit " << p << " placed on hw qubit "
                    << h << " outside [0, " << numHw() << ")";
                error(VerifyCode::LayoutInvalid, -1, oss.str());
                ok = false;
            } else if (seen[static_cast<size_t>(h)]) {
                oss << "hw qubit " << h
                    << " assigned to more than one program qubit";
                error(VerifyCode::LayoutInvalid, -1, oss.str());
                ok = false;
            } else {
                seen[static_cast<size_t>(h)] = 1;
            }
        }
        return ok;
    }

    /** Structural bookkeeping: sizes, counters, time sanity. */
    void checkShape()
    {
        const Schedule &s = program_.schedule;
        if (s.numHwQubits != numHw()) {
            std::ostringstream oss;
            oss << "schedule covers " << s.numHwQubits
                << " hw qubits, machine has " << numHw();
            error(VerifyCode::ScheduleShape, -1, oss.str());
        }
        if (static_cast<int>(s.qubitFinish.size()) != numHw()) {
            std::ostringstream oss;
            oss << "qubitFinish has " << s.qubitFinish.size()
                << " entries for " << numHw() << " hw qubits";
            error(VerifyCode::ScheduleShape, -1, oss.str());
        }
        if (program_.swapCount != s.swapCount()) {
            std::ostringstream oss;
            oss << "program declares " << program_.swapCount
                << " SWAPs, schedule contains " << s.swapCount();
            error(VerifyCode::ScheduleShape, -1, oss.str());
        }
        for (size_t i = 0; i < ops_.size(); ++i) {
            const TimedOp &op = ops_[i];
            if (op.start < 0 || op.duration <= 0) {
                std::ostringstream oss;
                oss << op.gate.toString() << " has start " << op.start
                    << " / duration " << op.duration;
                error(VerifyCode::ScheduleShape,
                      static_cast<int>(i), oss.str());
            }
        }
    }

    /** Coupling legality + calibration-reliability sanity per op. */
    void checkStaticLegality()
    {
        const Topology &topo = machine_.topo();
        const Calibration &cal = machine_.cal();
        opEdge_.assign(ops_.size(), kInvalidEdge);
        for (size_t i = 0; i < ops_.size(); ++i) {
            const TimedOp &op = ops_[i];
            const Gate &g = op.gate;
            if (!opOperandsValid(op)) {
                std::ostringstream oss;
                oss << g.toString() << " has operands outside [0, "
                    << numHw() << ")";
                error(VerifyCode::OpQubitRange, static_cast<int>(i),
                      oss.str());
                continue;
            }
            if (g.op == Op::Measure && g.cbit < 0) {
                std::ostringstream oss;
                oss << g.toString() << " targets clbit " << g.cbit;
                error(VerifyCode::OpQubitRange, static_cast<int>(i),
                      oss.str());
            }
            if (g.isTwoQubit()) {
                const EdgeId e = topo.edgeBetween(g.q0, g.q1);
                if (e == kInvalidEdge) {
                    std::ostringstream oss;
                    oss << g.toString() << ": hw qubits " << g.q0
                        << " and " << g.q1
                        << " are not coupled on " << topo.name();
                    error(VerifyCode::EdgeMissing,
                          static_cast<int>(i), oss.str());
                    continue;
                }
                opEdge_[i] = e;
                checkReliability(static_cast<int>(i), g,
                                 cal.cnotReliability(e), "CNOT edge");
            } else if (g.op == Op::Measure) {
                checkReliability(static_cast<int>(i), g,
                                 cal.readoutReliability(g.q0),
                                 "readout");
            } else {
                checkReliability(static_cast<int>(i), g,
                                 1.0 - cal.oneQubitError, "1q gate");
            }
        }
    }

    void checkReliability(int opIndex, const Gate &g, double r,
                          const char *what)
    {
        if (std::isfinite(r) && r > 0.0 && r <= 1.0)
            return;
        std::ostringstream oss;
        oss << g.toString() << ": " << what << " reliability " << r
            << " outside (0, 1]";
        error(VerifyCode::ReliabilityInvalid, opIndex, oss.str());
    }

    /** Expected duration of op i under `model`; -1 when unknowable. */
    Timeslot expectedDuration(size_t i, VerifyDurations model) const
    {
        const Gate &g = ops_[i].gate;
        const Calibration &cal = machine_.cal();
        if (g.op == Op::Measure)
            return cal.readoutDuration;
        if (!g.isTwoQubit())
            return cal.oneQubitDuration;
        Timeslot cnot;
        if (model == VerifyDurations::Uniform) {
            cnot = machine_.uniformCnotDuration();
        } else {
            if (opEdge_[i] == kInvalidEdge)
                return -1; // off-edge: already an EdgeMissing error
            cnot = cal.cnotDuration[static_cast<size_t>(opEdge_[i])];
        }
        return g.op == Op::Swap ? 3 * cnot : cnot;
    }

    bool durationsMatch(VerifyDurations model) const
    {
        for (size_t i = 0; i < ops_.size(); ++i) {
            const Timeslot want = expectedDuration(i, model);
            if (want >= 0 && ops_[i].duration != want)
                return false;
        }
        return true;
    }

    void reportDurationMismatches(VerifyDurations model)
    {
        for (size_t i = 0; i < ops_.size(); ++i) {
            const Timeslot want = expectedDuration(i, model);
            if (want < 0 || ops_[i].duration == want)
                continue;
            std::ostringstream oss;
            oss << ops_[i].gate.toString() << " lasts "
                << ops_[i].duration << " slots, "
                << (model == VerifyDurations::Uniform ? "uniform"
                                                      : "calibrated")
                << " model expects " << want;
            error(VerifyCode::DurationModel, static_cast<int>(i),
                  oss.str());
        }
    }

    void checkDurations()
    {
        VerifyDurations model = options_.durations;
        if (model == VerifyDurations::Auto) {
            // Calibrated when it fits; a schedule matching neither is
            // reported against the calibrated model (the repo's
            // default and the only model live routing ever uses).
            model = durationsMatch(VerifyDurations::Calibrated)
                        ? VerifyDurations::Calibrated
                        : VerifyDurations::Uniform;
            if (model == VerifyDurations::Uniform &&
                !durationsMatch(VerifyDurations::Uniform))
                model = VerifyDurations::Calibrated;
        }
        report_.durationsChecked =
            model == VerifyDurations::Uniform ? "uniform"
                                              : "calibrated";
        reportDurationMismatches(model);
    }

    /** No two ops overlapping in time may share a hardware qubit. */
    void checkQubitOverlap()
    {
        std::vector<Timeslot> lastFinish(
            static_cast<size_t>(numHw()), 0);
        std::vector<int> lastOp(static_cast<size_t>(numHw()), -1);
        for (size_t i = 0; i < ops_.size(); ++i) {
            const TimedOp &op = ops_[i];
            if (!opOperandsValid(op))
                continue; // already an OpQubitRange error
            const int touched[2] = {
                op.gate.q0,
                op.gate.isTwoQubit() ? op.gate.q1 : kInvalidQubit};
            for (int q : touched) {
                if (q == kInvalidQubit)
                    continue;
                const auto uq = static_cast<size_t>(q);
                if (op.start < lastFinish[uq]) {
                    std::ostringstream oss;
                    oss << op.gate.toString() << " starts at "
                        << op.start << " while op " << lastOp[uq]
                        << " still holds hw qubit " << q << " until "
                        << lastFinish[uq];
                    error(VerifyCode::QubitOverlap,
                          static_cast<int>(i), oss.str());
                }
                if (op.finish() > lastFinish[uq]) {
                    lastFinish[uq] = op.finish();
                    lastOp[uq] = static_cast<int>(i);
                }
            }
        }
    }

    void checkMakespan()
    {
        Timeslot maxFinish = 0;
        for (const TimedOp &op : ops_)
            maxFinish = std::max(maxFinish, op.finish());
        if (program_.schedule.makespan != maxFinish) {
            std::ostringstream oss;
            oss << "schedule declares makespan "
                << program_.schedule.makespan
                << " but the last op finishes at " << maxFinish;
            error(VerifyCode::MakespanMismatch, -1, oss.str());
        }
        if (program_.duration != program_.schedule.makespan) {
            std::ostringstream oss;
            oss << "program duration " << program_.duration
                << " differs from schedule makespan "
                << program_.schedule.makespan;
            error(VerifyCode::MakespanMismatch, -1, oss.str());
        }
    }

    void checkQubitFinish()
    {
        const Schedule &s = program_.schedule;
        if (static_cast<int>(s.qubitFinish.size()) != numHw())
            return; // already a ScheduleShape error
        std::vector<Timeslot> want(static_cast<size_t>(numHw()), 0);
        for (const TimedOp &op : ops_) {
            if (!opOperandsValid(op))
                continue;
            auto bump = [&](int q) {
                auto &slot = want[static_cast<size_t>(q)];
                slot = std::max(slot, op.finish());
            };
            bump(op.gate.q0);
            if (op.gate.isTwoQubit())
                bump(op.gate.q1);
        }
        for (int q = 0; q < numHw(); ++q) {
            const auto uq = static_cast<size_t>(q);
            if (s.qubitFinish[uq] == want[uq])
                continue;
            std::ostringstream oss;
            oss << "qubitFinish[" << q << "] = " << s.qubitFinish[uq]
                << " but hw qubit " << q << "'s last op finishes at "
                << want[uq];
            error(VerifyCode::QubitFinishMismatch, -1, oss.str());
        }
    }

    /**
     * Macro reservation footprint: every op must sit inside its
     * program gate's macro window, and two macros that overlap in
     * time must touch disjoint hardware qubits — equivalently, the
     * macro intervals touching any one qubit are pairwise disjoint
     * (both schedulers serialize a macro's touched qubits to its
     * finish time, so this holds policy-free for every bundle).
     */
    void checkMacros()
    {
        const Schedule &s = program_.schedule;
        std::vector<int> macroOf(source_.size(), -1);
        for (size_t j = 0; j < s.macros.size(); ++j) {
            const MacroTiming &m = s.macros[j];
            if (m.progGate < 0 ||
                m.progGate >= static_cast<int>(source_.size())) {
                std::ostringstream oss;
                oss << "macro " << j << " names program gate "
                    << m.progGate << " of a " << source_.size()
                    << "-gate circuit";
                error(VerifyCode::ScheduleShape, -1, oss.str());
                continue;
            }
            if (macroOf[static_cast<size_t>(m.progGate)] != -1) {
                std::ostringstream oss;
                oss << "program gate " << m.progGate
                    << " has more than one macro timing";
                error(VerifyCode::ScheduleShape, -1, oss.str());
                continue;
            }
            macroOf[static_cast<size_t>(m.progGate)] =
                static_cast<int>(j);
        }

        // Window containment + per-qubit macro windows, as
        // (start, finish, progGate) triples.
        std::vector<std::vector<std::array<Timeslot, 3>>> perQubit(
            static_cast<size_t>(numHw()));
        for (size_t i = 0; i < ops_.size(); ++i) {
            const TimedOp &op = ops_[i];
            if (op.progGate < 0 ||
                op.progGate >= static_cast<int>(source_.size())) {
                std::ostringstream oss;
                oss << op.gate.toString()
                    << " carries program-gate provenance "
                    << op.progGate;
                warning(VerifyCode::Provenance, static_cast<int>(i),
                        oss.str());
                continue;
            }
            const int j = macroOf[static_cast<size_t>(op.progGate)];
            if (j < 0) {
                std::ostringstream oss;
                oss << op.gate.toString()
                    << " belongs to program gate " << op.progGate
                    << " which has no macro timing";
                error(VerifyCode::ScheduleShape, static_cast<int>(i),
                      oss.str());
                continue;
            }
            const MacroTiming &m = s.macros[static_cast<size_t>(j)];
            if (op.start < m.start || op.finish() > m.finish()) {
                std::ostringstream oss;
                oss << op.gate.toString() << " runs [" << op.start
                    << ", " << op.finish()
                    << ") outside macro window [" << m.start << ", "
                    << m.finish() << ") of program gate "
                    << op.progGate;
                error(VerifyCode::MacroWindow, static_cast<int>(i),
                      oss.str());
            }
            if (options_.checkMacroExclusion && opOperandsValid(op)) {
                auto touch = [&](int q) {
                    perQubit[static_cast<size_t>(q)].push_back(
                        {m.start, m.finish(),
                         static_cast<Timeslot>(m.progGate)});
                };
                touch(op.gate.q0);
                if (op.gate.isTwoQubit())
                    touch(op.gate.q1);
            }
        }

        if (!options_.checkMacroExclusion)
            return;
        for (int q = 0; q < numHw(); ++q) {
            auto &windows = perQubit[static_cast<size_t>(q)];
            std::sort(windows.begin(), windows.end());
            windows.erase(std::unique(windows.begin(), windows.end()),
                          windows.end());
            for (size_t k = 1; k < windows.size(); ++k) {
                // Same macro listed once (unique); distinct macros on
                // one qubit must not overlap in time.
                if (windows[k][2] == windows[k - 1][2] ||
                    windows[k][0] >= windows[k - 1][1])
                    continue;
                std::ostringstream oss;
                oss << "macros of program gates " << windows[k - 1][2]
                    << " and " << windows[k][2]
                    << " overlap in time on shared hw qubit " << q;
                error(VerifyCode::MacroOverlap, -1, oss.str());
            }
        }
    }

    /**
     * Semantic faithfulness: replay the start-ordered op stream,
     * tracking which logical qubit each hardware qubit holds. Route
     * SWAPs permute the map; every other op is translated to logical
     * operands and must match the front of each operand's source gate
     * queue — the source DAG's dependency structure is exactly
     * shared-qubit ordering, so "front of every operand queue" is
     * "all DAG predecessors executed". O(gates) on the success path.
     */
    void replay()
    {
        std::vector<ProgQubit> occupant(static_cast<size_t>(numHw()),
                                        kInvalidQubit);
        for (size_t p = 0; p < program_.layout.size(); ++p)
            occupant[static_cast<size_t>(program_.layout[p])] =
                static_cast<ProgQubit>(p);

        // Per logical qubit: the queue of source gate indices that
        // touch it, in program order (a valid topological order of
        // the source DAG), consumed from the front.
        std::vector<std::vector<int>> queue(
            static_cast<size_t>(source_.numQubits()));
        std::vector<size_t> head(
            static_cast<size_t>(source_.numQubits()), 0);
        for (int gi = 0; gi < static_cast<int>(source_.size()); ++gi) {
            const Gate &g = source_.gate(gi);
            queue[static_cast<size_t>(g.q0)].push_back(gi);
            if (g.isTwoQubit())
                queue[static_cast<size_t>(g.q1)].push_back(gi);
        }
        std::vector<char> executed(source_.size(), 0);

        auto front = [&](ProgQubit l) -> int {
            const auto ul = static_cast<size_t>(l);
            return head[ul] < queue[ul].size()
                       ? queue[ul][head[ul]]
                       : -1;
        };
        auto pending = [&](int gi, ProgQubit l) {
            const auto ul = static_cast<size_t>(l);
            for (size_t k = head[ul]; k < queue[ul].size(); ++k)
                if (queue[ul][k] == gi)
                    return true;
            return false;
        };

        for (size_t i = 0; i < ops_.size(); ++i) {
            const TimedOp &op = ops_[i];
            const Gate &g = op.gate;
            if (!opOperandsValid(op))
                continue; // unreplayable; OpQubitRange already filed

            if (g.op == Op::Swap && op.isRouteSwap) {
                std::swap(occupant[static_cast<size_t>(g.q0)],
                          occupant[static_cast<size_t>(g.q1)]);
                continue;
            }

            const ProgQubit l0 =
                occupant[static_cast<size_t>(g.q0)];
            const ProgQubit l1 =
                g.isTwoQubit() ? occupant[static_cast<size_t>(g.q1)]
                               : kInvalidQubit;
            if (l0 == kInvalidQubit ||
                (g.isTwoQubit() && l1 == kInvalidQubit)) {
                std::ostringstream oss;
                oss << g.toString()
                    << " acts on a hw qubit holding no program qubit";
                error(VerifyCode::GateMismatch, static_cast<int>(i),
                      oss.str());
                if (g.op == Op::Swap)
                    std::swap(occupant[static_cast<size_t>(g.q0)],
                              occupant[static_cast<size_t>(g.q1)]);
                continue;
            }

            // The logical gate this hardware op claims to execute.
            Gate want;
            want.op = g.op;
            want.q0 = l0;
            want.q1 = g.isTwoQubit() ? l1 : kInvalidQubit;
            want.cbit = g.cbit;

            const int f0 = front(l0);
            const bool ready =
                f0 >= 0 && source_.gate(f0) == want &&
                (!g.isTwoQubit() || front(l1) == f0);
            if (ready) {
                ++head[static_cast<size_t>(l0)];
                if (g.isTwoQubit())
                    ++head[static_cast<size_t>(l1)];
                executed[static_cast<size_t>(f0)] = 1;
                if (op.progGate >= 0 && op.progGate != f0) {
                    std::ostringstream oss;
                    oss << g.toString() << " executes program gate "
                        << f0 << " but claims provenance "
                        << op.progGate;
                    warning(VerifyCode::Provenance,
                            static_cast<int>(i), oss.str());
                }
                continue;
            }
            classifyMismatch(static_cast<int>(i), g, want, executed,
                             pending);
            if (g.op == Op::Swap) // keep tracking past the error
                std::swap(occupant[static_cast<size_t>(g.q0)],
                          occupant[static_cast<size_t>(g.q1)]);
        }

        // Coverage: everything the source asked for must have run.
        for (size_t gi = 0; gi < source_.size(); ++gi) {
            if (executed[gi])
                continue;
            const Gate &g = source_.gate(static_cast<int>(gi));
            std::ostringstream oss;
            oss << "source gate " << gi << " (" << g.toString()
                << ") never executed";
            error(g.op == Op::Measure ? VerifyCode::MeasureMissing
                                      : VerifyCode::GateDropped,
                  -1, oss.str());
        }

        // Final permutation.
        report_.finalLayout.assign(
            static_cast<size_t>(source_.numQubits()), kInvalidQubit);
        for (int h = 0; h < numHw(); ++h) {
            const ProgQubit l = occupant[static_cast<size_t>(h)];
            if (l != kInvalidQubit)
                report_.finalLayout[static_cast<size_t>(l)] = h;
        }
        if (options_.expectRestoredLayout &&
            report_.finalLayout != program_.layout) {
            error(VerifyCode::FinalPermutation, -1,
                  "routing was expected to restore the initial "
                  "layout, but the final logical→physical map "
                  "differs");
        }
    }

    /** A non-ready op: say precisely how it breaks faithfulness. */
    template <typename PendingFn>
    void classifyMismatch(int opIndex, const Gate &g,
                          const Gate &want,
                          const std::vector<char> &executed,
                          PendingFn &&pending)
    {
        // Error path only: a linear scan of the source is fine.
        int dupOf = -1;
        int blocked = -1;
        for (int gi = 0; gi < static_cast<int>(source_.size());
             ++gi) {
            if (!(source_.gate(gi) == want))
                continue;
            if (executed[static_cast<size_t>(gi)] && dupOf < 0)
                dupOf = gi;
            if (!executed[static_cast<size_t>(gi)] &&
                pending(gi, want.q0) && blocked < 0)
                blocked = gi;
        }
        std::ostringstream oss;
        oss << g.toString() << " translates to logical "
            << want.toString();
        if (blocked >= 0) {
            oss << " = program gate " << blocked
                << ", which still has unexecuted same-qubit "
                   "predecessors";
            error(VerifyCode::DependencyOrder, opIndex, oss.str());
        } else if (dupOf >= 0) {
            oss << " = program gate " << dupOf
                << ", which already executed";
            error(VerifyCode::GateDuplicated, opIndex, oss.str());
        } else if (g.op == Op::Measure) {
            oss << ", which matches no pending source measurement";
            error(VerifyCode::MeasureMismatch, opIndex, oss.str());
        } else if (g.op == Op::Swap) {
            oss << ", but no source SWAP matches and the op is not "
                   "flagged as a route SWAP";
            error(VerifyCode::SwapAnnotation, opIndex, oss.str());
        } else {
            oss << ", which matches no pending source gate";
            error(VerifyCode::GateMismatch, opIndex, oss.str());
        }
    }

    const Machine &machine_;
    const VerifyOptions &options_;
    const Circuit &source_;
    const CompiledProgram &program_;
    std::vector<TimedOp> ops_;
    std::vector<EdgeId> opEdge_;
    VerifyReport report_;
};

} // namespace

ProgramVerifier::ProgramVerifier(const Machine &machine,
                                 VerifyOptions options)
    : machine_(&machine), options_(options)
{
}

VerifyReport
ProgramVerifier::verify(const Circuit &source,
                        const CompiledProgram &program) const
{
    Verification v(*machine_, options_, source, program);
    return v.run();
}

bool
defaultVerifyEnabled()
{
    if (const char *env = std::getenv("QC_VERIFY")) {
        std::string v(env);
        std::transform(v.begin(), v.end(), v.begin(), [](char c) {
            return static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        });
        if (!v.empty())
            return v != "0" && v != "false" && v != "off" &&
                   v != "no";
    }
#ifdef NDEBUG
    return false;
#else
    return true;
#endif
}

} // namespace qc
