/**
 * @file
 * Minimal Unix-domain-socket plumbing for the compile daemon.
 *
 * Wraps the handful of POSIX calls naqcd and naqc-client need —
 * listen on / connect to a filesystem socket path, and read/write
 * '\n'-delimited lines over a file descriptor — so the tools stay
 * free of raw socket code. Blocking I/O only; the daemon uses one
 * thread per connection and a poll(2) loop around accept.
 */

#ifndef QC_DAEMON_NET_HPP
#define QC_DAEMON_NET_HPP

#include <string>

namespace qc::daemon {

/**
 * Create, bind, and listen on a Unix stream socket at `path`. Any
 * stale socket file at `path` is removed first. Returns the listening
 * fd, or -1 with `error` filled in.
 */
int listenUnix(const std::string &path, std::string &error);

/**
 * Connect to the Unix stream socket at `path`. Returns the connected
 * fd, or -1 with `error` filled in.
 */
int connectUnix(const std::string &path, std::string &error);

/**
 * Buffered line-oriented reader/writer over one socket fd. Owns the
 * fd and closes it on destruction.
 */
class LineChannel
{
  public:
    explicit LineChannel(int fd) : fd_(fd) {}
    ~LineChannel();

    LineChannel(const LineChannel &) = delete;
    LineChannel &operator=(const LineChannel &) = delete;

    /**
     * Read one line (without the trailing '\n') into `line`. Returns
     * false on EOF or error with nothing (or a partial final line)
     * pending.
     */
    bool readLine(std::string &line);

    /** Write `line` plus '\n'; false on error. */
    bool writeLine(const std::string &line);

    /** Write raw text exactly as given; false on error. */
    bool writeText(const std::string &text);

    int fd() const { return fd_; }

  private:
    int fd_ = -1;
    std::string buffer_; ///< bytes read but not yet returned
};

} // namespace qc::daemon

#endif // QC_DAEMON_NET_HPP
