/**
 * @file
 * Sharded, priority-laned submission queue for the compile daemon.
 *
 * Admitted jobs land in one of N shards (a tenant always hashes to
 * the same shard, so one noisy tenant contends on one lock, not all
 * of them), each shard holding three FIFO lanes — high / normal /
 * low. Consumers pop lane-major: the high lane of every shard drains
 * before any normal-lane job runs, and a consumer whose home shard's
 * lane is empty steals from sibling shards (Galois-style work
 * stealing: distribution for throughput, stealing for balance).
 *
 * The queue stores opaque job ids; ownership of job state lives in
 * the daemon. Each push is paired with one consumer activation (the
 * daemon submits a pump task to its ThreadPool per admitted job), so
 * pop() is reservation-based: with pushes >= pops outstanding it
 * always finds a job, spinning across shards through any transient
 * push/steal race.
 */

#ifndef QC_DAEMON_SUBMISSION_QUEUE_HPP
#define QC_DAEMON_SUBMISSION_QUEUE_HPP

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace qc::daemon {

/** Priority lane; lower value drains first. */
enum class Lane { High = 0, Normal = 1, Low = 2 };

inline constexpr int kNumLanes = 3;

const char *laneName(Lane lane);

/** Parse "high" / "normal" / "low" (exact); false on anything else. */
bool laneFromName(const std::string &name, Lane &out);

/** Snapshot of queue occupancy and traffic. */
struct QueueStats
{
    std::uint64_t pushes = 0;
    std::uint64_t pops = 0;
    std::uint64_t steals = 0; ///< pops served from a non-home shard
    std::vector<std::size_t> shardDepth; ///< per-shard queued jobs
    std::size_t depth = 0;               ///< total queued jobs
};

class ShardedSubmissionQueue
{
  public:
    /** @param shards shard count (>= 1). */
    explicit ShardedSubmissionQueue(int shards);

    int numShards() const { return static_cast<int>(shards_.size()); }

    /** Stable home shard for a tenant (FNV of the name mod shards). */
    int shardForTenant(const std::string &tenant) const;

    void push(int shard, Lane lane, std::uint64_t job_id);

    /**
     * Pop the best available job: lane-major over all shards,
     * preferring `home_shard` within a lane. Returns false only when
     * every shard is empty; `stolen` reports whether the job came
     * from a foreign shard.
     */
    bool tryPop(int home_shard, std::uint64_t &job_id, bool &stolen);

    /**
     * Reservation-based pop: the caller knows a job was pushed for
     * it, so spin on tryPop until one materializes (yielding between
     * full scans to ride out push/steal races).
     */
    std::uint64_t popReserved(int home_shard);

    std::size_t depth() const;
    QueueStats stats() const;

  private:
    struct Shard
    {
        mutable std::mutex mu;
        std::array<std::deque<std::uint64_t>, kNumLanes> lanes;

        std::size_t
        depthLocked() const
        {
            std::size_t n = 0;
            for (const auto &lane : lanes)
                n += lane.size();
            return n;
        }
    };

    std::vector<std::unique_ptr<Shard>> shards_;
    mutable std::mutex statsMu_;
    std::uint64_t pushes_ = 0;
    std::uint64_t pops_ = 0;
    std::uint64_t steals_ = 0;
};

} // namespace qc::daemon

#endif // QC_DAEMON_SUBMISSION_QUEUE_HPP
