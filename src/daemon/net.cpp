#include "net.hpp"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace qc::daemon {

namespace {

bool
fillAddress(const std::string &path, sockaddr_un &addr,
            std::string &error)
{
    if (path.size() >= sizeof(addr.sun_path)) {
        error = "socket path too long: " + path;
        return false;
    }
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

std::string
errnoText(const std::string &what)
{
    return what + ": " + std::strerror(errno);
}

} // namespace

int
listenUnix(const std::string &path, std::string &error)
{
    sockaddr_un addr;
    if (!fillAddress(path, addr, error))
        return -1;

    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        error = errnoText("socket");
        return -1;
    }
    ::unlink(path.c_str()); // stale socket from a previous run
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        error = errnoText("bind");
        ::close(fd);
        return -1;
    }
    if (::listen(fd, 64) != 0) {
        error = errnoText("listen");
        ::close(fd);
        return -1;
    }
    return fd;
}

int
connectUnix(const std::string &path, std::string &error)
{
    sockaddr_un addr;
    if (!fillAddress(path, addr, error))
        return -1;

    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        error = errnoText("socket");
        return -1;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        error = errnoText("connect " + path);
        ::close(fd);
        return -1;
    }
    return fd;
}

LineChannel::~LineChannel()
{
    if (fd_ >= 0)
        ::close(fd_);
}

bool
LineChannel::readLine(std::string &line)
{
    for (;;) {
        std::size_t nl = buffer_.find('\n');
        if (nl != std::string::npos) {
            line.assign(buffer_, 0, nl);
            buffer_.erase(0, nl + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            return true;
        }
        char chunk[4096];
        ssize_t n = ::read(fd_, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false; // EOF; any partial line is dropped
        buffer_.append(chunk, static_cast<std::size_t>(n));
    }
}

bool
LineChannel::writeLine(const std::string &line)
{
    return writeText(line + "\n");
}

bool
LineChannel::writeText(const std::string &text)
{
    std::size_t sent = 0;
    while (sent < text.size()) {
        ssize_t n =
            ::write(fd_, text.data() + sent, text.size() - sent);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace qc::daemon
