/**
 * @file
 * Content-addressed on-disk store of compiled programs.
 *
 * One file per cache entry, named by the compile-cache key's three
 * fingerprints — `<circuit>-<calibration>-<options>.ncp` in hex — so
 * the directory itself is the index: a lookup is a single open(), a
 * store is a write-to-temp + atomic rename, and replicas can share a
 * directory without coordination (last rename wins; both writers
 * produced byte-identical blobs anyway, because keys are content
 * fingerprints).
 *
 * Entries are framed by program_serdes.hpp (versioned header +
 * FNV self-checksum). load() verifies the frame before returning;
 * anything corrupt, truncated or written by an older format version
 * is counted, unlinked, and treated as a miss — a damaged cache
 * costs a recompile, never a wrong answer or a crash.
 */

#ifndef QC_DAEMON_DISK_CACHE_HPP
#define QC_DAEMON_DISK_CACHE_HPP

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "service/compile_cache.hpp"

namespace qc::daemon {

/** Counters exposed by DiskCacheStore::stats(). */
struct DiskCacheStats
{
    std::uint64_t loads = 0;         ///< successful loads
    std::uint64_t loadMisses = 0;    ///< no file for the key
    std::uint64_t corruptRejected = 0; ///< bad frame/version/checksum
    std::uint64_t stores = 0;        ///< entries written
    std::uint64_t storeFailures = 0; ///< I/O errors while writing
    std::uint64_t bytesWritten = 0;  ///< total blob bytes stored
};

/**
 * Thread-safe file-per-entry store under one cache directory.
 *
 * A default-constructed (or empty-path) store is disabled: loads
 * miss, stores drop — so callers can hold one unconditionally.
 */
class DiskCacheStore
{
  public:
    DiskCacheStore() = default;

    /**
     * @param dir cache directory; created (with parents) if missing.
     *        Throws FatalError when the directory cannot be created.
     */
    explicit DiskCacheStore(const std::string &dir);

    bool enabled() const { return !dir_.empty(); }
    const std::string &dir() const { return dir_; }

    /** The entry file path for a key (valid even when disabled). */
    std::string entryPath(const service::CacheKey &key) const;

    /**
     * Load and validate the entry for `key`; null on miss or when
     * the file fails frame validation (the bad file is unlinked so
     * the next store can heal it).
     */
    std::shared_ptr<const CompiledProgram>
    load(const service::CacheKey &key);

    /** Persist an entry (write temp file + atomic rename). */
    bool store(const service::CacheKey &key,
               const CompiledProgram &program);

    /**
     * Unlink the entry for `key` (verify-on-load healing: the frame
     * checksum passed but the program failed validation). Returns
     * true when a file was removed.
     */
    bool remove(const service::CacheKey &key);

    /** Number of .ncp entries currently on disk (directory scan). */
    std::size_t entryCount() const;

    DiskCacheStats stats() const;

  private:
    std::string dir_;
    mutable std::mutex mu_; ///< guards stats_ and temp-name counter
    std::uint64_t tempCounter_ = 0;
    DiskCacheStats stats_;
};

} // namespace qc::daemon

#endif // QC_DAEMON_DISK_CACHE_HPP
