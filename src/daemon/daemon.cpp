#include "daemon.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include "core/portfolio.hpp"
#include "service/fingerprints.hpp"
#include "service/portfolio_executor.hpp"
#include "support/fingerprint.hpp"
#include "support/logging.hpp"
#include "verify/verifier.hpp"

namespace qc::daemon {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

std::string
hexFp(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

int
resolveThreads(int threads)
{
    if (threads > 0)
        return threads;
    return std::max(
        1, static_cast<int>(std::thread::hardware_concurrency()));
}

int
defaultShards(int threads)
{
    return std::max(1, std::min(4, threads));
}

/** The internal tenant warm recompiles run under (bypasses quota). */
const char *const kWarmTenant = "@warm";

} // namespace

const char *
jobStateName(JobState state)
{
    switch (state) {
    case JobState::Queued:
        return "queued";
    case JobState::Running:
        return "running";
    case JobState::Done:
        return "done";
    }
    return "?";
}

const char *
cacheSourceName(CacheSource src)
{
    switch (src) {
    case CacheSource::None:
        return "none";
    case CacheSource::Memory:
        return "memory";
    case CacheSource::Disk:
        return "disk";
    }
    return "?";
}

struct CompileDaemon::JobRecord
{
    std::uint64_t id = 0;
    std::string tenant;
    Lane lane = Lane::Normal;
    std::string tag;
    bool warm = false;
    Circuit circuit;
    CompilerOptions options;
    std::uint64_t circuitFp = 0;
    std::uint64_t optionsFp = 0;
    int numClbits = 0;

    JobState state = JobState::Queued;
    int epochId = 0;
    CacheSource cacheSource = CacheSource::None;
    service::CompileResult result;
};

CompileDaemon::CompileDaemon(Topology topo, Calibration initial,
                             DaemonOptions options, int day,
                             std::string source)
    : topo_(std::move(topo)),
      options_(options),
      queue_(options.shards > 0
                 ? options.shards
                 : defaultShards(resolveThreads(options.threads))),
      memCache_(options.cacheCapacity, options.cacheByteCapacity),
      disk_(options.cacheDir),
      pool_(options.threads)
{
    initial.validate(topo_);
    auto epoch = std::make_shared<Epoch>();
    epoch->id = 1;
    epoch->day = day;
    epoch->source = std::move(source);
    epoch->machineFp = service::machineKey(topo_, initial);
    epoch->machine =
        std::make_shared<const Machine>(topo_, std::move(initial));
    std::lock_guard<std::mutex> lock(epochMu_);
    epoch_ = std::move(epoch);
}

CompileDaemon::~CompileDaemon()
{
    beginShutdown();
    awaitIdle();
}

CompileDaemon::SubmitOutcome
CompileDaemon::submit(const std::string &tenant, Lane lane,
                      Circuit circuit, const CompilerOptions &options,
                      std::string tag)
{
    const bool warm = tenant == kWarmTenant;
    const std::uint64_t circuit_fp =
        service::fingerprintCircuit(circuit);
    const std::uint64_t options_fp =
        service::fingerprintOptions(options);

    auto record = std::make_shared<JobRecord>();
    record->tenant = tenant;
    record->lane = lane;
    record->tag = std::move(tag);
    record->warm = warm;
    record->numClbits = circuit.numClbits();
    record->circuit = std::move(circuit);
    record->options = options;
    record->circuitFp = circuit_fp;
    record->optionsFp = options_fp;

    {
        std::lock_guard<std::mutex> lock(jobsMu_);
        if (!accepting_) {
            ++rejected_;
            return {false, 0, "rejected:shutting-down"};
        }
        TenantStats &ts = tenants_[tenant];
        if (ts.tenant.empty())
            ts.tenant = tenant;
        if (!warm && options_.tenantQuota > 0 &&
            ts.inFlight >= options_.tenantQuota) {
            ++rejected_;
            ++ts.rejected;
            return {false, 0,
                    "rejected:over-quota tenant=" + tenant +
                        " inflight=" + std::to_string(ts.inFlight) +
                        " quota=" +
                        std::to_string(options_.tenantQuota)};
        }
        record->id = nextJobId_++;
        jobs_[record->id] = record;
        ++outstanding_;
        ++submitted_;
        ++ts.submitted;
        ++ts.inFlight;
    }

    const int shard = queue_.shardForTenant(tenant);
    queue_.push(shard, lane, record->id);
    pool_.submit([this, shard]() { pump(shard); });
    return {true, record->id, ""};
}

void
CompileDaemon::pump(int home_shard)
{
    const std::uint64_t id = queue_.popReserved(home_shard);
    std::shared_ptr<JobRecord> record;
    {
        std::lock_guard<std::mutex> lock(jobsMu_);
        auto it = jobs_.find(id);
        QC_ASSERT(it != jobs_.end(), "queued job without a record");
        record = it->second;
    }
    runJob(record);
}

void
CompileDaemon::runJob(const std::shared_ptr<JobRecord> &record)
{
    const auto start = std::chrono::steady_clock::now();

    // The epoch is captured once, here: this job compiles — and is
    // cached — against this snapshot even if a rollover flips the
    // current epoch mid-compile.
    std::shared_ptr<const Epoch> epoch = currentEpoch();

    {
        std::lock_guard<std::mutex> lock(jobsMu_);
        record->state = JobState::Running;
        record->epochId = epoch->id;
    }

    service::CompileResult result;
    result.tag = record->tag;
    result.day = epoch->day;

    service::CacheKey key;
    key.circuit = record->circuitFp;
    key.calibration = epoch->machineFp;
    key.options = record->optionsFp;

    if (!record->warm)
        noteHotUse(record->circuit, record->options,
                   record->circuitFp, record->optionsFp);

    CacheSource source = CacheSource::None;
    bool verifiedOnLoad = false;
    bool healedEntry = false;
    try {
        std::shared_ptr<const CompiledProgram> fromDisk;
        if (auto cached = memCache_.lookup(key)) {
            result.ok = true;
            result.cacheHit = true;
            result.program = std::move(cached);
            result.machine = epoch->machine;
            source = CacheSource::Memory;
        } else if ((fromDisk = loadVerified(key, record->circuit,
                                            *epoch->machine,
                                            verifiedOnLoad,
                                            healedEntry))) {
            memCache_.insert(key, fromDisk);
            result.ok = true;
            result.cacheHit = true;
            result.program = std::move(fromDisk);
            result.machine = epoch->machine;
            source = CacheSource::Disk;
        } else {
            PipelineResult compiled;
            if (record->options.portfolio.enabled) {
                // Race on this job's worker slot; candidates borrow
                // only idle pool workers (help-while-wait), so raced
                // submissions can't wedge or oversubscribe the pool.
                PortfolioPass pass(epoch->machine, record->options);
                service::PoolPortfolioExecutor exec(
                    pool_, record->options.portfolio.maxWorkers);
                PortfolioResult raced =
                    pass.run(record->circuit, &exec);
                if (raced.winnerIndex >= 0)
                    result.winner =
                        raced
                            .candidates[static_cast<std::size_t>(
                                raced.winnerIndex)]
                            .name;
                result.portfolio = std::move(raced.candidates);
                compiled = std::move(raced.best);
            } else {
                Pipeline pipeline =
                    standardPipeline(epoch->machine, record->options);
                compiled = pipeline.run(record->circuit);
            }
            result.status = compiled.status;
            result.failedStage = compiled.failedStage;
            result.machine = epoch->machine;
            if (compiled.hasProgram) {
                result.stageTraces = compiled.program.stageTraces;
                auto program =
                    std::make_shared<const CompiledProgram>(
                        std::move(compiled.program));
                // Degraded fallbacks are usable but never cached
                // (same policy as CompileService).
                if (compiled.status.ok()) {
                    memCache_.insert(key, program);
                    disk_.store(key, *program);
                }
                result.program = std::move(program);
                result.ok = true;
            } else {
                result.ok = false;
                result.stageTraces =
                    std::move(compiled.program.stageTraces);
                result.program = nullptr;
                result.machine = nullptr;
            }
        }
    } catch (const std::exception &e) {
        result.ok = false;
        result.status = CompileStatus::internalError(e.what());
        result.program = nullptr;
        result.machine = nullptr;
    } catch (...) {
        result.ok = false;
        result.status = CompileStatus::internalError(
            "unknown exception during compilation");
        result.program = nullptr;
        result.machine = nullptr;
    }
    result.seconds = secondsSince(start);

    {
        std::lock_guard<std::mutex> lock(jobsMu_);
        record->cacheSource = source;
        record->result = std::move(result);
        if (source == CacheSource::Disk)
            ++diskHits_;
        if (verifiedOnLoad)
            ++verifiedOnLoad_;
        if (healedEntry)
            ++healed_;
    }
    finishJob(record);
}

std::shared_ptr<const CompiledProgram>
CompileDaemon::loadVerified(const service::CacheKey &key,
                            const Circuit &circuit,
                            const Machine &machine,
                            bool &verifiedOnLoad, bool &healedEntry)
{
    auto loaded = disk_.load(key);
    if (!loaded || !options_.verifyOnLoad)
        return loaded;
    // The frame checksum only proves the bytes round-tripped; the
    // translation validator proves the program still satisfies the
    // compiled-program contracts against *this* epoch's machine (the
    // cache key pins the machine fingerprint, so a mismatch means
    // the entry is broken, not merely stale). Auto durations: the
    // producing bundle's duration model is not recorded in the entry.
    const VerifyReport report =
        ProgramVerifier(machine).verify(circuit, *loaded);
    if (report.ok()) {
        verifiedOnLoad = true;
        return loaded;
    }
    // Checksum-valid but semantically broken: purge the entry and
    // recompile — the fresh ok result re-stores, healing the slot.
    disk_.remove(key);
    healedEntry = true;
    return nullptr;
}

void
CompileDaemon::finishJob(const std::shared_ptr<JobRecord> &record)
{
    std::lock_guard<std::mutex> lock(jobsMu_);
    record->state = JobState::Done;
    ++completed_;
    auto it = tenants_.find(record->tenant);
    if (it != tenants_.end()) {
        ++it->second.completed;
        --it->second.inFlight;
    }
    doneOrder_.push_back(record->id);
    while (doneOrder_.size() > options_.jobHistory) {
        jobs_.erase(doneOrder_.front());
        doneOrder_.pop_front();
    }
    QC_ASSERT(outstanding_ > 0, "job accounting underflow");
    --outstanding_;
    jobDone_.notify_all();
    if (outstanding_ == 0)
        allIdle_.notify_all();
}

void
CompileDaemon::noteHotUse(const Circuit &circuit,
                          const CompilerOptions &options,
                          std::uint64_t circuit_fp,
                          std::uint64_t options_fp)
{
    Fingerprint fp;
    fp.mix(circuit_fp).mix(options_fp);
    std::lock_guard<std::mutex> lock(hotMu_);
    HotEntry &entry = hot_[fp.value()];
    if (entry.uses == 0) {
        entry.circuit = circuit;
        entry.options = options;
        entry.firstSeen = hotSeq_++;
    }
    ++entry.uses;
}

bool
CompileDaemon::status(std::uint64_t id, JobSnapshot &out) const
{
    std::lock_guard<std::mutex> lock(jobsMu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return false;
    out = snapshotLocked(*it->second);
    return true;
}

bool
CompileDaemon::wait(std::uint64_t id, JobSnapshot &out)
{
    std::shared_ptr<JobRecord> record;
    std::unique_lock<std::mutex> lock(jobsMu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return false;
    record = it->second;
    jobDone_.wait(lock,
                  [&] { return record->state == JobState::Done; });
    out = snapshotLocked(*record);
    return true;
}

JobSnapshot
CompileDaemon::snapshotLocked(const JobRecord &record) const
{
    JobSnapshot snap;
    snap.id = record.id;
    snap.tenant = record.tenant;
    snap.lane = record.lane;
    snap.state = record.state;
    snap.epochId = record.epochId;
    snap.cacheSource = record.cacheSource;
    snap.numClbits = record.numClbits;
    snap.result = record.result;
    return snap;
}

CompileDaemon::ReloadOutcome
CompileDaemon::reload(Calibration cal, int day, std::string source)
{
    cal.validate(topo_);

    // Build the new snapshot outside every lock: the expensive
    // all-pairs precompute runs while workers keep serving the old
    // epoch — rollover never blocks the compile path.
    auto machine =
        std::make_shared<const Machine>(topo_, cal);
    auto epoch = std::make_shared<Epoch>();
    epoch->day = day;
    epoch->source = std::move(source);
    epoch->machineFp = service::machineKey(topo_, cal);
    epoch->machine = std::move(machine);
    {
        std::lock_guard<std::mutex> lock(epochMu_);
        epoch->id = epoch_->id + 1;
        epoch_ = epoch; // the atomic flip: new jobs see it from here
    }

    // Proactive warm-up: recompile the hottest fingerprints against
    // the new day in the low-priority lane so the morning rush hits
    // a warm cache without starving interactive submits.
    std::vector<HotEntry> hottest;
    {
        std::lock_guard<std::mutex> lock(hotMu_);
        hottest.reserve(hot_.size());
        for (const auto &[fp, entry] : hot_)
            hottest.push_back(entry);
    }
    std::sort(hottest.begin(), hottest.end(),
              [](const HotEntry &a, const HotEntry &b) {
                  if (a.uses != b.uses)
                      return a.uses > b.uses;
                  return a.firstSeen < b.firstSeen;
              });
    if (options_.warmTopK >= 0 &&
        hottest.size() > static_cast<std::size_t>(options_.warmTopK))
        hottest.resize(static_cast<std::size_t>(options_.warmTopK));

    int warmed = 0;
    for (HotEntry &entry : hottest) {
        const std::uint64_t circuit_fp =
            service::fingerprintCircuit(entry.circuit);
        SubmitOutcome outcome =
            submit(kWarmTenant, Lane::Low, std::move(entry.circuit),
                   entry.options, "warm:" + hexFp(circuit_fp));
        if (outcome.accepted)
            ++warmed;
    }
    {
        std::lock_guard<std::mutex> lock(jobsMu_);
        warmRecompiles_ += static_cast<std::uint64_t>(warmed);
    }
    return {epoch->id, warmed};
}

std::shared_ptr<const Epoch>
CompileDaemon::currentEpoch() const
{
    std::lock_guard<std::mutex> lock(epochMu_);
    return epoch_;
}

void
CompileDaemon::awaitIdle()
{
    std::unique_lock<std::mutex> lock(jobsMu_);
    allIdle_.wait(lock, [&] { return outstanding_ == 0; });
}

void
CompileDaemon::beginShutdown()
{
    std::lock_guard<std::mutex> lock(jobsMu_);
    accepting_ = false;
}

bool
CompileDaemon::acceptingJobs() const
{
    std::lock_guard<std::mutex> lock(jobsMu_);
    return accepting_;
}

DaemonStats
CompileDaemon::stats() const
{
    DaemonStats s;
    {
        std::lock_guard<std::mutex> lock(jobsMu_);
        s.submitted = submitted_;
        s.completed = completed_;
        s.rejected = rejected_;
        s.diskHits = diskHits_;
        s.warmRecompiles = warmRecompiles_;
        s.verifiedOnLoad = verifiedOnLoad_;
        s.healed = healed_;
        for (const auto &[name, ts] : tenants_)
            s.tenants.push_back(ts);
    }
    std::sort(s.tenants.begin(), s.tenants.end(),
              [](const TenantStats &a, const TenantStats &b) {
                  return a.tenant < b.tenant;
              });
    {
        std::lock_guard<std::mutex> lock(epochMu_);
        s.epochId = epoch_->id;
        s.epochDay = epoch_->day;
    }
    s.queue = queue_.stats();
    s.memCache = memCache_.stats();
    s.disk = disk_.stats();
    s.diskEntries = disk_.entryCount();
    return s;
}

} // namespace qc::daemon
