#include "submission_queue.hpp"

#include <thread>

#include "support/fingerprint.hpp"
#include "support/logging.hpp"

namespace qc::daemon {

const char *
laneName(Lane lane)
{
    switch (lane) {
    case Lane::High:
        return "high";
    case Lane::Normal:
        return "normal";
    case Lane::Low:
        return "low";
    }
    return "?";
}

bool
laneFromName(const std::string &name, Lane &out)
{
    if (name == "high")
        out = Lane::High;
    else if (name == "normal")
        out = Lane::Normal;
    else if (name == "low")
        out = Lane::Low;
    else
        return false;
    return true;
}

ShardedSubmissionQueue::ShardedSubmissionQueue(int shards)
{
    QC_ASSERT(shards >= 1, "queue needs at least one shard");
    shards_.reserve(static_cast<std::size_t>(shards));
    for (int i = 0; i < shards; ++i)
        shards_.push_back(std::make_unique<Shard>());
}

int
ShardedSubmissionQueue::shardForTenant(const std::string &tenant) const
{
    Fingerprint fp;
    fp.mix(tenant);
    return static_cast<int>(fp.value() %
                            static_cast<std::uint64_t>(
                                shards_.size()));
}

void
ShardedSubmissionQueue::push(int shard, Lane lane,
                             std::uint64_t job_id)
{
    QC_ASSERT(shard >= 0 && shard < numShards(),
              "shard out of range");
    {
        std::lock_guard<std::mutex> lock(shards_[static_cast<std::size_t>(
                                                     shard)]
                                             ->mu);
        shards_[static_cast<std::size_t>(shard)]
            ->lanes[static_cast<std::size_t>(lane)]
            .push_back(job_id);
    }
    std::lock_guard<std::mutex> lock(statsMu_);
    ++pushes_;
}

bool
ShardedSubmissionQueue::tryPop(int home_shard, std::uint64_t &job_id,
                               bool &stolen)
{
    const int n = numShards();
    QC_ASSERT(home_shard >= 0 && home_shard < n,
              "home shard out of range");
    // Lane-major: every shard's high lane outranks any normal-lane
    // job, and within a lane the home shard is tried first.
    for (int lane = 0; lane < kNumLanes; ++lane) {
        for (int offset = 0; offset < n; ++offset) {
            const int s = (home_shard + offset) % n;
            Shard &shard = *shards_[static_cast<std::size_t>(s)];
            std::lock_guard<std::mutex> lock(shard.mu);
            auto &q = shard.lanes[static_cast<std::size_t>(lane)];
            if (q.empty())
                continue;
            job_id = q.front();
            q.pop_front();
            stolen = offset != 0;
            std::lock_guard<std::mutex> stats_lock(statsMu_);
            ++pops_;
            if (stolen)
                ++steals_;
            return true;
        }
    }
    return false;
}

std::uint64_t
ShardedSubmissionQueue::popReserved(int home_shard)
{
    std::uint64_t job_id = 0;
    bool stolen = false;
    while (!tryPop(home_shard, job_id, stolen))
        std::this_thread::yield();
    return job_id;
}

std::size_t
ShardedSubmissionQueue::depth() const
{
    std::size_t n = 0;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mu);
        n += shard->depthLocked();
    }
    return n;
}

QueueStats
ShardedSubmissionQueue::stats() const
{
    QueueStats s;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mu);
        s.shardDepth.push_back(shard->depthLocked());
        s.depth += s.shardDepth.back();
    }
    std::lock_guard<std::mutex> lock(statsMu_);
    s.pushes = pushes_;
    s.pops = pops_;
    s.steals = steals_;
    return s;
}

} // namespace qc::daemon
