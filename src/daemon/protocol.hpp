/**
 * @file
 * Line-delimited text protocol helpers for the compile daemon.
 *
 * Every daemon request is one line: a command word followed by
 * whitespace-separated `key=value` arguments. Values never contain
 * whitespace (payloads such as QASM text travel as a block of lines
 * terminated by a lone "." — see tools/naqcd.cpp). Responses are one
 * `ok ...` / `err ...` line, optionally followed by a payload block.
 *
 * These helpers only tokenize and pattern-match; they know nothing
 * about sockets, so they are unit-testable without I/O.
 */

#ifndef QC_DAEMON_PROTOCOL_HPP
#define QC_DAEMON_PROTOCOL_HPP

#include <map>
#include <string>
#include <vector>

namespace qc::daemon {

/** Split on runs of spaces/tabs; no empty tokens. */
std::vector<std::string> splitTokens(const std::string &line);

/** A parsed request line: command word plus key=value arguments. */
struct Request
{
    std::string command;                     ///< first token, lowercased
    std::map<std::string, std::string> args; ///< key=value tokens

    /** Value for `key`, or `fallback` when absent. */
    std::string get(const std::string &key,
                    const std::string &fallback = "") const;

    /** Integer value for `key`; `fallback` when absent or malformed. */
    long long getInt(const std::string &key, long long fallback) const;

    bool has(const std::string &key) const
    {
        return args.count(key) != 0;
    }
};

/**
 * Parse one request line. Tokens without '=' after the command are
 * treated as bare flags (value "1"). An empty line yields an empty
 * command.
 */
Request parseRequest(const std::string &line);

} // namespace qc::daemon

#endif // QC_DAEMON_PROTOCOL_HPP
