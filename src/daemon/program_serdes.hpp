/**
 * @file
 * Versioned binary serialization of CompiledProgram for the
 * persistent compile cache.
 *
 * The daemon spills compiled artifacts to disk so a restart serves
 * the previous working set warm (the paper's morning-rush scenario:
 * the whole program set recompiles daily, and a crashed or upgraded
 * server must not recompile it all again). The format is:
 *
 *   [magic "NQCP"][u32 version][u64 payload size][u64 FNV-1a of
 *   payload][payload]
 *
 * with every multi-byte integer little-endian and doubles stored by
 * bit pattern, so blobs are portable across runs and hosts of the
 * same endianness. deserializeCompiledProgram() validates the magic,
 * version, size and checksum before touching the payload and rejects
 * anything malformed — a corrupt or stale-version cache entry is a
 * recompile, never a crash.
 */

#ifndef QC_DAEMON_PROGRAM_SERDES_HPP
#define QC_DAEMON_PROGRAM_SERDES_HPP

#include <cstdint>
#include <string>

#include "mappers/mapper.hpp"

namespace qc::daemon {

/** Current on-disk format version; bump on any payload change. */
inline constexpr std::uint32_t kProgramSerdesVersion = 1;

/** Serialize every field of a CompiledProgram into a framed blob. */
std::string serializeCompiledProgram(const CompiledProgram &program);

/**
 * Parse a framed blob back into a CompiledProgram.
 *
 * @return true and fill `out` on success; false (with `out`
 *         untouched semantics unspecified) when the blob is
 *         truncated, has a wrong magic/version, fails its checksum,
 *         or contains out-of-range enum values.
 */
bool deserializeCompiledProgram(const std::string &bytes,
                                CompiledProgram &out);

} // namespace qc::daemon

#endif // QC_DAEMON_PROGRAM_SERDES_HPP
