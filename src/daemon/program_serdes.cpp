#include "program_serdes.hpp"

#include <cstring>

#include "support/fingerprint.hpp"

namespace qc::daemon {

namespace {

constexpr char kMagic[4] = {'N', 'Q', 'C', 'P'};

/** Append-only little-endian byte sink. */
class ByteWriter
{
  public:
    void
    putU8(std::uint8_t v)
    {
        bytes_.push_back(static_cast<char>(v));
    }

    void
    putU32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            bytes_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void
    putU64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            bytes_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void
    putI32(std::int32_t v)
    {
        putU32(static_cast<std::uint32_t>(v));
    }

    void
    putI64(std::int64_t v)
    {
        putU64(static_cast<std::uint64_t>(v));
    }

    void
    putDouble(double v)
    {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &v, sizeof(bits));
        putU64(bits);
    }

    void
    putString(const std::string &s)
    {
        putU64(s.size());
        bytes_.append(s);
    }

    std::string
    take()
    {
        return std::move(bytes_);
    }

  private:
    std::string bytes_;
};

/** Bounds-checked little-endian reader; every get reports success. */
class ByteReader
{
  public:
    ByteReader(const char *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    bool
    getU8(std::uint8_t &v)
    {
        if (pos_ + 1 > size_)
            return false;
        v = static_cast<std::uint8_t>(data_[pos_++]);
        return true;
    }

    bool
    getU32(std::uint32_t &v)
    {
        if (pos_ + 4 > size_)
            return false;
        v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(data_[pos_ + i]))
                 << (8 * i);
        pos_ += 4;
        return true;
    }

    bool
    getU64(std::uint64_t &v)
    {
        if (pos_ + 8 > size_)
            return false;
        v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(data_[pos_ + i]))
                 << (8 * i);
        pos_ += 8;
        return true;
    }

    bool
    getI32(std::int32_t &v)
    {
        std::uint32_t u = 0;
        if (!getU32(u))
            return false;
        v = static_cast<std::int32_t>(u);
        return true;
    }

    bool
    getI64(std::int64_t &v)
    {
        std::uint64_t u = 0;
        if (!getU64(u))
            return false;
        v = static_cast<std::int64_t>(u);
        return true;
    }

    bool
    getDouble(double &v)
    {
        std::uint64_t bits = 0;
        if (!getU64(bits))
            return false;
        std::memcpy(&v, &bits, sizeof(v));
        return true;
    }

    bool
    getString(std::string &s)
    {
        std::uint64_t n = 0;
        if (!getU64(n) || n > size_ - pos_)
            return false;
        s.assign(data_ + pos_, static_cast<std::size_t>(n));
        pos_ += static_cast<std::size_t>(n);
        return true;
    }

    /** Element count prefix, sanity-capped against remaining bytes. */
    bool
    getCount(std::uint64_t &n, std::size_t min_elem_bytes)
    {
        if (!getU64(n))
            return false;
        // A count implying more elements than bytes left is corrupt;
        // rejecting it here keeps reserve() calls from exploding.
        return min_elem_bytes == 0 ||
               n <= (size_ - pos_) / min_elem_bytes;
    }

    bool
    atEnd() const
    {
        return pos_ == size_;
    }

  private:
    const char *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

void
putGate(ByteWriter &w, const Gate &g)
{
    w.putU8(static_cast<std::uint8_t>(g.op));
    w.putI32(g.q0);
    w.putI32(g.q1);
    w.putI32(g.cbit);
}

bool
getGate(ByteReader &r, Gate &g)
{
    std::uint8_t op = 0;
    if (!r.getU8(op) || op > static_cast<std::uint8_t>(Op::Measure))
        return false;
    g.op = static_cast<Op>(op);
    return r.getI32(g.q0) && r.getI32(g.q1) && r.getI32(g.cbit);
}

std::string
serializePayload(const CompiledProgram &p)
{
    ByteWriter w;
    w.putString(p.mapperName);
    w.putString(p.programName);

    w.putU64(p.layout.size());
    for (HwQubit h : p.layout)
        w.putI32(h);
    w.putU64(p.junctions.size());
    for (int j : p.junctions)
        w.putI32(j);

    const Schedule &s = p.schedule;
    w.putI32(s.numHwQubits);
    w.putU64(s.ops.size());
    for (const TimedOp &op : s.ops) {
        putGate(w, op.gate);
        w.putI64(op.start);
        w.putI64(op.duration);
        w.putI32(op.progGate);
        w.putU8(op.isRouteSwap ? 1 : 0);
    }
    w.putU64(s.macros.size());
    for (const MacroTiming &m : s.macros) {
        w.putI32(m.progGate);
        w.putI64(m.start);
        w.putI64(m.duration);
    }
    w.putI64(s.makespan);
    w.putU64(s.qubitFinish.size());
    for (Timeslot t : s.qubitFinish)
        w.putI64(t);

    w.putI64(p.duration);
    w.putDouble(p.logReliability);
    w.putDouble(p.predictedSuccess);
    w.putI32(p.swapCount);
    w.putDouble(p.compileSeconds);
    w.putU8(p.solverOptimal ? 1 : 0);
    w.putString(p.solverStatus);

    w.putU64(p.stageTraces.size());
    for (const StageTrace &t : p.stageTraces) {
        w.putString(t.stage);
        w.putString(t.pass);
        w.putDouble(t.seconds);
        w.putString(t.note);
    }
    return w.take();
}

bool
deserializePayload(const char *data, std::size_t size,
                   CompiledProgram &p)
{
    ByteReader r(data, size);
    if (!r.getString(p.mapperName) || !r.getString(p.programName))
        return false;

    std::uint64_t n = 0;
    if (!r.getCount(n, 4))
        return false;
    p.layout.resize(static_cast<std::size_t>(n));
    for (HwQubit &h : p.layout)
        if (!r.getI32(h))
            return false;
    if (!r.getCount(n, 4))
        return false;
    p.junctions.resize(static_cast<std::size_t>(n));
    for (int &j : p.junctions)
        if (!r.getI32(j))
            return false;

    Schedule &s = p.schedule;
    if (!r.getI32(s.numHwQubits) || !r.getCount(n, 30))
        return false;
    s.ops.resize(static_cast<std::size_t>(n));
    for (TimedOp &op : s.ops) {
        std::uint8_t swap_flag = 0;
        if (!getGate(r, op.gate) || !r.getI64(op.start) ||
            !r.getI64(op.duration) || !r.getI32(op.progGate) ||
            !r.getU8(swap_flag))
            return false;
        op.isRouteSwap = swap_flag != 0;
    }
    if (!r.getCount(n, 20))
        return false;
    s.macros.resize(static_cast<std::size_t>(n));
    for (MacroTiming &m : s.macros)
        if (!r.getI32(m.progGate) || !r.getI64(m.start) ||
            !r.getI64(m.duration))
            return false;
    if (!r.getI64(s.makespan) || !r.getCount(n, 8))
        return false;
    s.qubitFinish.resize(static_cast<std::size_t>(n));
    for (Timeslot &t : s.qubitFinish)
        if (!r.getI64(t))
            return false;

    std::uint8_t optimal = 0;
    if (!r.getI64(p.duration) || !r.getDouble(p.logReliability) ||
        !r.getDouble(p.predictedSuccess) || !r.getI32(p.swapCount) ||
        !r.getDouble(p.compileSeconds) || !r.getU8(optimal) ||
        !r.getString(p.solverStatus))
        return false;
    p.solverOptimal = optimal != 0;

    if (!r.getCount(n, 28))
        return false;
    p.stageTraces.resize(static_cast<std::size_t>(n));
    for (StageTrace &t : p.stageTraces)
        if (!r.getString(t.stage) || !r.getString(t.pass) ||
            !r.getDouble(t.seconds) || !r.getString(t.note))
            return false;
    return r.atEnd();
}

std::uint64_t
payloadChecksum(const std::string &payload)
{
    Fingerprint fp;
    fp.mixBytes(payload.data(), payload.size());
    return fp.value();
}

} // namespace

std::string
serializeCompiledProgram(const CompiledProgram &program)
{
    std::string payload = serializePayload(program);
    ByteWriter header;
    header.putU32(kProgramSerdesVersion);
    header.putU64(payload.size());
    header.putU64(payloadChecksum(payload));
    std::string out(kMagic, sizeof(kMagic));
    out += header.take();
    out += payload;
    return out;
}

bool
deserializeCompiledProgram(const std::string &bytes,
                           CompiledProgram &out)
{
    constexpr std::size_t header_size = sizeof(kMagic) + 4 + 8 + 8;
    if (bytes.size() < header_size)
        return false;
    if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
        return false;
    ByteReader r(bytes.data() + sizeof(kMagic),
                 bytes.size() - sizeof(kMagic));
    std::uint32_t version = 0;
    std::uint64_t payload_size = 0;
    std::uint64_t checksum = 0;
    if (!r.getU32(version) || version != kProgramSerdesVersion)
        return false;
    if (!r.getU64(payload_size) || !r.getU64(checksum))
        return false;
    if (bytes.size() != header_size + payload_size)
        return false;
    const char *payload = bytes.data() + header_size;
    Fingerprint fp;
    fp.mixBytes(payload, static_cast<std::size_t>(payload_size));
    if (fp.value() != checksum)
        return false;
    return deserializePayload(
        payload, static_cast<std::size_t>(payload_size), out);
}

} // namespace qc::daemon
