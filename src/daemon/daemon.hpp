/**
 * @file
 * The always-on compile daemon core (transport-agnostic).
 *
 * naqcd wraps this class in a Unix-socket server; tests drive it
 * in-process. It turns the per-process CompileService library into a
 * long-running server with the three production properties the
 * paper's daily-recompilation story needs:
 *
 *  1. **Sharded submission queue** — admitted jobs land in a
 *     per-tenant-sharded, priority-laned queue (submission_queue.hpp)
 *     whose consumers run on the existing service ThreadPool; a
 *     bounded per-tenant in-flight quota rejects over-quota submits
 *     with a structured reason instead of letting one tenant bury
 *     everyone's queue.
 *
 *  2. **Persistent content-addressed cache** — results are cached in
 *     memory (service::CompileCache) and spilled to a cache
 *     directory (disk_cache.hpp) keyed by the same content
 *     fingerprints, so a restarted daemon serves the previous
 *     working set from disk instead of recompiling it.
 *
 *  3. **Zero-downtime calibration rollover** — reload() builds the
 *     new machine snapshot off the worker path, atomically flips a
 *     shared epoch pointer (jobs pick up the epoch when they start
 *     and keep their snapshot to completion — nothing blocks,
 *     nothing fails), then proactively recompiles the top-K hottest
 *     (circuit, options) fingerprints against the new day so the
 *     post-rollover rush hits a warm cache.
 */

#ifndef QC_DAEMON_DAEMON_HPP
#define QC_DAEMON_DAEMON_HPP

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/compiler.hpp"
#include "daemon/disk_cache.hpp"
#include "daemon/submission_queue.hpp"
#include "machine/calibration.hpp"
#include "machine/topology.hpp"
#include "service/compile_cache.hpp"
#include "service/compile_service.hpp"
#include "service/thread_pool.hpp"

namespace qc::daemon {

/** Daemon-wide configuration. */
struct DaemonOptions
{
    int threads = 0;  ///< compile workers; <= 0 = hardware
    int shards = 0;   ///< queue shards; <= 0 = min(4, workers)
    std::size_t cacheCapacity = 4096;     ///< in-memory entries
    std::size_t cacheByteCapacity = 0;    ///< in-memory bytes; 0 off
    std::string cacheDir;                 ///< empty = no persistence
    std::uint64_t tenantQuota = 64; ///< max in-flight per tenant; 0 off
    int warmTopK = 32;      ///< hot fingerprints recompiled on rollover
    std::size_t jobHistory = 65536; ///< completed records retained

    /**
     * Run the translation validator over every disk-cache entry
     * before serving it. A checksum-valid but semantically broken
     * entry (torn tooling, stale format, bit rot the frame missed) is
     * unlinked and recompiled instead of served — counted as healed.
     */
    bool verifyOnLoad = true;
};

/** One calibration epoch: an immutable machine-day snapshot. */
struct Epoch
{
    int id = 0;          ///< monotonically increasing flip counter
    int day = 0;         ///< calibration day (reporting)
    std::string source;  ///< where the calibration came from
    std::uint64_t machineFp = 0; ///< machineKey(topo, cal)
    std::shared_ptr<const Machine> machine;
};

enum class JobState { Queued, Running, Done };

const char *jobStateName(JobState state);

/** How a finished job's result was obtained. */
enum class CacheSource { None, Memory, Disk };

const char *cacheSourceName(CacheSource src);

/** Externally visible view of one job. */
struct JobSnapshot
{
    std::uint64_t id = 0;
    std::string tenant;
    Lane lane = Lane::Normal;
    JobState state = JobState::Queued;
    int epochId = 0;          ///< epoch the job compiled against
    CacheSource cacheSource = CacheSource::None;
    int numClbits = 0;        ///< of the submitted circuit
    service::CompileResult result; ///< meaningful once Done
};

/** Per-tenant admission accounting. */
struct TenantStats
{
    std::string tenant;
    std::uint64_t inFlight = 0; ///< queued or running right now
    std::uint64_t submitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
};

/** Aggregate daemon accounting for `stats` and tests. */
struct DaemonStats
{
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t diskHits = 0; ///< jobs served from the disk cache
    std::uint64_t warmRecompiles = 0; ///< rollover warm jobs enqueued
    std::uint64_t verifiedOnLoad = 0; ///< disk entries served verified
    std::uint64_t healed = 0; ///< broken disk entries purged on load
    int epochId = 0;
    int epochDay = 0;
    QueueStats queue;
    service::CompileCacheStats memCache;
    DiskCacheStats disk;
    std::size_t diskEntries = 0;
    std::vector<TenantStats> tenants; ///< sorted by tenant name
};

/**
 * The daemon engine. Thread-safe: every public method may be called
 * from any thread (the socket server calls them from per-connection
 * threads while workers run jobs).
 */
class CompileDaemon
{
  public:
    /**
     * @param topo    the machine coupling graph (fixed for the
     *                daemon's lifetime; calibration epochs roll over)
     * @param initial first calibration snapshot
     * @param day     day index of `initial` (reporting)
     * @param source  label for `initial` (reporting)
     */
    CompileDaemon(Topology topo, Calibration initial,
                  DaemonOptions options, int day = 0,
                  std::string source = "startup");

    /** Drains in-flight work, then joins the workers. */
    ~CompileDaemon();

    CompileDaemon(const CompileDaemon &) = delete;
    CompileDaemon &operator=(const CompileDaemon &) = delete;

    int numThreads() const { return pool_.numThreads(); }
    const Topology &topology() const { return topo_; }

    /** Outcome of a submit attempt. */
    struct SubmitOutcome
    {
        bool accepted = false;
        std::uint64_t id = 0;   ///< valid when accepted
        std::string reason;     ///< "rejected:over-quota ..." etc.
    };

    /**
     * Admit a job into the queue. Rejection (over-quota, shutting
     * down) is a structured outcome, not an error.
     */
    SubmitOutcome submit(const std::string &tenant, Lane lane,
                         Circuit circuit,
                         const CompilerOptions &options,
                         std::string tag);

    /** Non-blocking job view; false when the id is unknown. */
    bool status(std::uint64_t id, JobSnapshot &out) const;

    /** Block until the job completes; false when the id is unknown. */
    bool wait(std::uint64_t id, JobSnapshot &out);

    /** Outcome of a calibration rollover. */
    struct ReloadOutcome
    {
        int epochId = 0;
        int warmed = 0; ///< hot fingerprints queued for recompile
    };

    /**
     * Zero-downtime rollover: build the Machine for `cal` in the
     * calling thread (workers keep compiling on the old epoch),
     * atomically flip the epoch pointer, then enqueue warm
     * recompiles of the hottest fingerprints against the new day.
     */
    ReloadOutcome reload(Calibration cal, int day, std::string source);

    /** The epoch new jobs will compile against. */
    std::shared_ptr<const Epoch> currentEpoch() const;

    /** Block until no job is queued or running. */
    void awaitIdle();

    /** Stop admitting jobs (drain continues; idempotent). */
    void beginShutdown();

    bool acceptingJobs() const;

    DaemonStats stats() const;

  private:
    struct JobRecord;

    void pump(int home_shard);
    void runJob(const std::shared_ptr<JobRecord> &record);
    std::shared_ptr<const CompiledProgram> loadVerified(
        const service::CacheKey &key, const Circuit &circuit,
        const Machine &machine, bool &verifiedOnLoad,
        bool &healedEntry);
    void finishJob(const std::shared_ptr<JobRecord> &record);
    void noteHotUse(const Circuit &circuit,
                    const CompilerOptions &options,
                    std::uint64_t circuit_fp,
                    std::uint64_t options_fp);
    JobSnapshot snapshotLocked(const JobRecord &record) const;

    const Topology topo_;
    const DaemonOptions options_;

    mutable std::mutex epochMu_;
    std::shared_ptr<const Epoch> epoch_;

    ShardedSubmissionQueue queue_;
    service::CompileCache memCache_;
    DiskCacheStore disk_;

    mutable std::mutex jobsMu_;
    std::condition_variable jobDone_;   ///< some job reached Done
    std::condition_variable allIdle_;   ///< outstanding_ hit zero
    std::unordered_map<std::uint64_t, std::shared_ptr<JobRecord>>
        jobs_;
    std::deque<std::uint64_t> doneOrder_; ///< completion order (prune)
    std::uint64_t nextJobId_ = 1;
    std::size_t outstanding_ = 0; ///< jobs queued or running
    bool accepting_ = true;
    std::uint64_t submitted_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t rejected_ = 0;
    std::uint64_t diskHits_ = 0;
    std::uint64_t warmRecompiles_ = 0;
    std::uint64_t verifiedOnLoad_ = 0;
    std::uint64_t healed_ = 0;
    std::unordered_map<std::string, TenantStats> tenants_;

    mutable std::mutex hotMu_;
    struct HotEntry
    {
        Circuit circuit;
        CompilerOptions options;
        std::uint64_t uses = 0;
        std::uint64_t firstSeen = 0; ///< tie-break: earlier wins
    };
    std::unordered_map<std::uint64_t, HotEntry> hot_;
    std::uint64_t hotSeq_ = 0; ///< first-seen ordering for ties

    service::ThreadPool pool_; ///< last member: workers die first
};

} // namespace qc::daemon

#endif // QC_DAEMON_DAEMON_HPP
