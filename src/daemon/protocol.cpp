#include "protocol.hpp"

#include <cctype>
#include <cstdlib>

namespace qc::daemon {

std::vector<std::string>
splitTokens(const std::string &line)
{
    std::vector<std::string> tokens;
    std::string current;
    for (char c : line) {
        if (c == ' ' || c == '\t') {
            if (!current.empty()) {
                tokens.push_back(current);
                current.clear();
            }
        } else {
            current.push_back(c);
        }
    }
    if (!current.empty())
        tokens.push_back(current);
    return tokens;
}

std::string
Request::get(const std::string &key, const std::string &fallback) const
{
    auto it = args.find(key);
    return it == args.end() ? fallback : it->second;
}

long long
Request::getInt(const std::string &key, long long fallback) const
{
    auto it = args.find(key);
    if (it == args.end() || it->second.empty())
        return fallback;
    const char *text = it->second.c_str();
    char *end = nullptr;
    long long value = std::strtoll(text, &end, 10);
    if (end == text || *end != '\0')
        return fallback;
    return value;
}

Request
parseRequest(const std::string &line)
{
    Request req;
    std::vector<std::string> tokens = splitTokens(line);
    if (tokens.empty())
        return req;

    req.command = tokens.front();
    for (char &c : req.command)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));

    for (std::size_t i = 1; i < tokens.size(); ++i) {
        const std::string &tok = tokens[i];
        std::size_t eq = tok.find('=');
        if (eq == std::string::npos)
            req.args[tok] = "1"; // bare flag
        else
            req.args[tok.substr(0, eq)] = tok.substr(eq + 1);
    }
    return req;
}

} // namespace qc::daemon
