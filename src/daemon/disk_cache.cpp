#include "disk_cache.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "daemon/program_serdes.hpp"
#include "support/logging.hpp"

namespace qc::daemon {

namespace fs = std::filesystem;

namespace {

std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

DiskCacheStore::DiskCacheStore(const std::string &dir) : dir_(dir)
{
    if (dir_.empty())
        return;
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec || !fs::is_directory(dir_))
        QC_FATAL("cannot create cache directory '", dir_,
                 "': ", ec.message());
}

std::string
DiskCacheStore::entryPath(const service::CacheKey &key) const
{
    return dir_ + "/" + hex16(key.circuit) + "-" +
           hex16(key.calibration) + "-" + hex16(key.options) + ".ncp";
}

std::shared_ptr<const CompiledProgram>
DiskCacheStore::load(const service::CacheKey &key)
{
    if (!enabled())
        return nullptr;
    const std::string path = entryPath(key);
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.loadMisses;
        return nullptr;
    }
    std::ostringstream oss;
    oss << in.rdbuf();
    const std::string bytes = oss.str();

    auto program = std::make_shared<CompiledProgram>();
    if (!deserializeCompiledProgram(bytes, *program)) {
        // Corrupt/stale entry: drop it so a later store can heal the
        // slot, and report a miss — the caller recompiles.
        std::error_code ec;
        fs::remove(path, ec);
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.corruptRejected;
        return nullptr;
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.loads;
    return program;
}

bool
DiskCacheStore::remove(const service::CacheKey &key)
{
    if (!enabled())
        return false;
    std::error_code ec;
    return fs::remove(entryPath(key), ec) && !ec;
}

bool
DiskCacheStore::store(const service::CacheKey &key,
                      const CompiledProgram &program)
{
    if (!enabled())
        return false;
    const std::string bytes = serializeCompiledProgram(program);
    const std::string path = entryPath(key);

    std::uint64_t serial = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        serial = tempCounter_++;
    }
    // Unique temp name per in-flight writer, then an atomic rename:
    // readers only ever see complete entries.
    const std::string temp =
        path + ".tmp." + std::to_string(serial);

    bool ok = false;
    {
        std::ofstream out(temp,
                          std::ios::binary | std::ios::trunc);
        ok = static_cast<bool>(out.write(bytes.data(),
                                         static_cast<std::streamsize>(
                                             bytes.size())));
        ok = ok && static_cast<bool>(out.flush());
    }
    if (ok) {
        std::error_code ec;
        fs::rename(temp, path, ec);
        ok = !ec;
    }
    if (!ok) {
        std::error_code ec;
        fs::remove(temp, ec);
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (ok) {
        ++stats_.stores;
        stats_.bytesWritten += bytes.size();
    } else {
        ++stats_.storeFailures;
    }
    return ok;
}

std::size_t
DiskCacheStore::entryCount() const
{
    if (!enabled())
        return 0;
    std::size_t n = 0;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir_, ec))
        if (entry.path().extension() == ".ncp")
            ++n;
    return n;
}

DiskCacheStats
DiskCacheStore::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

} // namespace qc::daemon
