/**
 * @file
 * Routing policies and SWAP-chain expansion.
 *
 * Converts a chosen RoutePath into (a) the spatial Region it reserves
 * under a given policy and (b) the hardware micro-operations (forward
 * SWAPs, the CNOT, restore SWAPs) that realize it.
 */

#ifndef QC_ROUTE_ROUTING_HPP
#define QC_ROUTE_ROUTING_HPP

#include <vector>

#include "ir/gate.hpp"
#include "machine/machine.hpp"
#include "route/region.hpp"

namespace qc {

/** The two routing policies of paper Sec. 4.3. */
enum class RoutingPolicy {
    RectangleReservation, ///< block the endpoints' bounding box
    OneBendPath,          ///< block only the two bend legs
};

const char *routingPolicyName(RoutingPolicy p);

/** How a mapper picks among candidate routes for each CNOT. */
enum class RouteSelect {
    BestReliability, ///< max EC one-bend route (R-SMT*)
    BestDuration,    ///< min Delta one-bend route (T-SMT variants)
    Dijkstra,        ///< most-reliable Dijkstra path (greedy heuristics)
    Fixed,           ///< junction dictated per-CNOT by the SMT solver
};

const char *routeSelectName(RouteSelect s);

/**
 * Region reserved by a route under a policy.
 *
 * On grids, RR uses the endpoints' bounding rectangle regardless of
 * the actual path and 1BP uses one rectangle per path leg (for
 * Dijkstra paths, one cell-rectangle per node, the tightest
 * conservative cover) — footprints identical to the paper's rect
 * formulation. On non-grid topologies a bounding box does not exist,
 * so both policies reserve the route's node set (the tightest
 * conservative cover of the SWAP chain).
 */
Region routeRegion(const Topology &topo, const RoutePath &route,
                   RoutingPolicy policy);

/**
 * One micro-operation of a routed CNOT.
 *
 * offset/duration position the op inside the macro-operation's time
 * window; `gate` acts on hardware qubits.
 */
struct MicroOp
{
    Gate gate;
    Timeslot offset = 0;
    Timeslot duration = 0;
    bool isRouteSwap = false;
};

/**
 * Expand a route into micro-ops: SWAP along nodes[0..d-1], CNOT on the
 * final edge, then SWAPs undone in reverse. Total duration equals the
 * route's Delta entry.
 *
 * @param uniform_cnot if >= 0, use this duration for every CNOT slot
 *                     (noise-unaware T-SMT model) instead of the
 *                     calibrated per-edge durations.
 */
std::vector<MicroOp> expandRoute(const Machine &machine,
                                 const RoutePath &route,
                                 Timeslot uniform_cnot = -1);

} // namespace qc

#endif // QC_ROUTE_ROUTING_HPP
