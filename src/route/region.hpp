/**
 * @file
 * Spatial reservation geometry for CNOT routing (paper Sec. 4.3).
 *
 * A Region is the set of hardware qubits a routed CNOT reserves for
 * its duration; two CNOTs may overlap in time only if their regions
 * share no qubit (the paper's S(Ri, Rj) predicate, Eq. 7-9, holds
 * exactly when the covered cell sets intersect, so the qubit-set
 * formulation generalizes the rectangle test to arbitrary coupling
 * graphs without changing it on grids).
 *
 * On grid topologies regions are still built from the paper's
 * rectangles — Rectangle Reservation (RR) blocks the full bounding
 * box of a CNOT's endpoints, One-Bend Paths (1BP) block only the two
 * leg segments through the chosen junction — via regionFromRects,
 * which produces the identical qubit footprint.
 */

#ifndef QC_ROUTE_REGION_HPP
#define QC_ROUTE_REGION_HPP

#include <string>
#include <vector>

#include "machine/topology.hpp"

namespace qc {

/** Inclusive axis-aligned grid rectangle (grid-topology geometry). */
struct Rect
{
    int x0 = 0;
    int y0 = 0;
    int x1 = 0;
    int y1 = 0;

    /** Normalized rect spanning two grid positions. */
    static Rect spanning(GridPos a, GridPos b);

    /** The paper's S(Ri, Rj) overlap predicate (Eq. 7). */
    bool overlaps(const Rect &other) const;

    bool contains(GridPos p) const;

    int area() const { return (x1 - x0 + 1) * (y1 - y0 + 1); }

    std::string toString() const;
};

/**
 * Qubit-set footprint reserved by one routed CNOT.
 *
 * `qubits` is sorted and duplicate-free (the factory functions
 * guarantee it); overlap is sorted-set intersection.
 */
struct Region
{
    std::vector<HwQubit> qubits;

    /** Sort + dedupe an arbitrary qubit list into a Region. */
    static Region fromQubits(std::vector<HwQubit> qs);

    /** Shared-qubit test — the generalized Overlap(i, j) (Eq. 9). */
    bool overlaps(const Region &other) const;

    bool contains(HwQubit h) const;

    bool empty() const { return qubits.empty(); }
};

/** All qubit ids covered by `r` on a grid topology, row-major. */
std::vector<HwQubit> rectQubits(const Topology &topo, const Rect &r);

/**
 * The grid specialization: the union-of-rectangles footprint. Two
 * regions built this way overlap exactly when some pair of their
 * rects overlaps (inclusive rectangles intersect iff they share a
 * cell), so reservations are bit-identical to the rect formulation.
 */
Region regionFromRects(const Topology &topo,
                       const std::vector<Rect> &rects);

} // namespace qc

#endif // QC_ROUTE_REGION_HPP
