/**
 * @file
 * Spatial reservation geometry for CNOT routing (paper Sec. 4.3).
 *
 * Rectangle Reservation (RR) blocks the full bounding box of a CNOT's
 * endpoints for its duration; One-Bend Paths (1BP) block only the two
 * leg segments through the chosen junction. Two CNOTs may overlap in
 * time only if their regions do not overlap in space (Eq. 7-9).
 */

#ifndef QC_ROUTE_REGION_HPP
#define QC_ROUTE_REGION_HPP

#include <string>
#include <vector>

#include "machine/topology.hpp"

namespace qc {

/** Inclusive axis-aligned grid rectangle. */
struct Rect
{
    int x0 = 0;
    int y0 = 0;
    int x1 = 0;
    int y1 = 0;

    /** Normalized rect spanning two grid positions. */
    static Rect spanning(GridPos a, GridPos b);

    /** The paper's S(Ri, Rj) overlap predicate (Eq. 7). */
    bool overlaps(const Rect &other) const;

    bool contains(GridPos p) const;

    int area() const { return (x1 - x0 + 1) * (y1 - y0 + 1); }

    std::string toString() const;
};

/** Union of rectangles reserved by one routed CNOT. */
struct Region
{
    std::vector<Rect> rects;

    /** Pairwise rect overlap — the 1BP Overlap(i, j) check (Eq. 9). */
    bool overlaps(const Region &other) const;

    bool contains(GridPos p) const;

    bool empty() const { return rects.empty(); }
};

} // namespace qc

#endif // QC_ROUTE_REGION_HPP
