#include "routing.hpp"

#include "support/logging.hpp"

namespace qc {

const char *
routingPolicyName(RoutingPolicy p)
{
    switch (p) {
      case RoutingPolicy::RectangleReservation: return "RR";
      case RoutingPolicy::OneBendPath: return "1BP";
    }
    QC_PANIC("unknown routing policy");
}

const char *
routeSelectName(RouteSelect s)
{
    switch (s) {
      case RouteSelect::BestReliability: return "best-reliability";
      case RouteSelect::BestDuration: return "best-duration";
      case RouteSelect::Dijkstra: return "dijkstra";
      case RouteSelect::Fixed: return "fixed-junctions";
    }
    QC_PANIC("unknown route selection");
}

Region
routeRegion(const Topology &topo, const RoutePath &route,
            RoutingPolicy policy)
{
    QC_ASSERT(route.nodes.size() >= 2, "route too short for a region");

    // Non-grid topologies have no bounding boxes: both policies
    // reserve the route's node set, the tightest conservative cover.
    if (!topo.isGrid())
        return Region::fromQubits(route.nodes);

    GridPos pc = topo.posOf(route.nodes.front());
    GridPos pt = topo.posOf(route.nodes.back());

    if (policy == RoutingPolicy::RectangleReservation)
        return regionFromRects(topo, {Rect::spanning(pc, pt)});

    if (route.junction != kInvalidQubit) {
        // One-bend route: a rectangle (degenerate line) per leg.
        GridPos pj = topo.posOf(route.junction);
        return regionFromRects(
            topo, {Rect::spanning(pc, pj), Rect::spanning(pj, pt)});
    }

    // Arbitrary (Dijkstra) path: cover each node cell.
    return Region::fromQubits(route.nodes);
}

std::vector<MicroOp>
expandRoute(const Machine &machine, const RoutePath &route,
            Timeslot uniform_cnot)
{
    const auto &cal = machine.cal();
    auto cnot_dur = [&](EdgeId e) {
        return uniform_cnot >= 0 ? uniform_cnot : cal.cnotDuration[e];
    };

    std::vector<MicroOp> ops;
    Timeslot t = 0;
    const auto &nodes = route.nodes;
    const auto &edges = route.edges;
    const size_t d = edges.size();

    // Forward SWAP chain: move the control along the path until it is
    // adjacent to the target.
    for (size_t i = 0; i + 1 < d; ++i) {
        MicroOp op;
        op.gate = {Op::Swap, nodes[i], nodes[i + 1], -1};
        op.offset = t;
        op.duration = 3 * cnot_dur(edges[i]);
        op.isRouteSwap = true;
        t += op.duration;
        ops.push_back(op);
    }

    // The CNOT itself: the (moved) control now sits at nodes[d-1].
    {
        MicroOp op;
        op.gate = {Op::CNOT, nodes[d - 1], nodes[d], -1};
        op.offset = t;
        op.duration = cnot_dur(edges[d - 1]);
        t += op.duration;
        ops.push_back(op);
    }

    // Restore SWAPs so the static placement stays valid afterwards
    // (matches the 2*(d-1)*tau_swap duration model, Sec. 4.2).
    for (size_t i = d - 1; i-- > 0;) {
        MicroOp op;
        op.gate = {Op::Swap, nodes[i + 1], nodes[i], -1};
        op.offset = t;
        op.duration = 3 * cnot_dur(edges[i]);
        op.isRouteSwap = true;
        t += op.duration;
        ops.push_back(op);
    }

    return ops;
}

} // namespace qc
