#include "region.hpp"

#include <algorithm>
#include <sstream>

#include "support/logging.hpp"

namespace qc {

Rect
Rect::spanning(GridPos a, GridPos b)
{
    Rect r;
    r.x0 = std::min(a.x, b.x);
    r.x1 = std::max(a.x, b.x);
    r.y0 = std::min(a.y, b.y);
    r.y1 = std::max(a.y, b.y);
    return r;
}

bool
Rect::overlaps(const Rect &o) const
{
    // S(Ri, Rj) = not (li.x > rj.x or ri.x < lj.x or ...), Eq. 7.
    return !(x0 > o.x1 || x1 < o.x0 || y0 > o.y1 || y1 < o.y0);
}

bool
Rect::contains(GridPos p) const
{
    return p.x >= x0 && p.x <= x1 && p.y >= y0 && p.y <= y1;
}

std::string
Rect::toString() const
{
    std::ostringstream oss;
    oss << "[(" << x0 << "," << y0 << ")-(" << x1 << "," << y1 << ")]";
    return oss.str();
}

Region
Region::fromQubits(std::vector<HwQubit> qs)
{
    std::sort(qs.begin(), qs.end());
    qs.erase(std::unique(qs.begin(), qs.end()), qs.end());
    Region r;
    r.qubits = std::move(qs);
    return r;
}

bool
Region::overlaps(const Region &other) const
{
    // Sorted two-pointer intersection test.
    size_t i = 0, j = 0;
    while (i < qubits.size() && j < other.qubits.size()) {
        if (qubits[i] == other.qubits[j])
            return true;
        if (qubits[i] < other.qubits[j])
            ++i;
        else
            ++j;
    }
    return false;
}

bool
Region::contains(HwQubit h) const
{
    return std::binary_search(qubits.begin(), qubits.end(), h);
}

std::vector<HwQubit>
rectQubits(const Topology &topo, const Rect &r)
{
    QC_ASSERT(r.x0 >= 0 && r.x1 < topo.rows() && r.y0 >= 0 &&
                  r.y1 < topo.cols(),
              "rect ", r.toString(), " outside the ", topo.name(),
              " grid");
    std::vector<HwQubit> qs;
    qs.reserve(static_cast<size_t>(r.area()));
    for (int x = r.x0; x <= r.x1; ++x)
        for (int y = r.y0; y <= r.y1; ++y)
            qs.push_back(topo.qubitAt(x, y));
    return qs;
}

Region
regionFromRects(const Topology &topo, const std::vector<Rect> &rects)
{
    std::vector<HwQubit> qs;
    for (const Rect &r : rects) {
        std::vector<HwQubit> cover = rectQubits(topo, r);
        qs.insert(qs.end(), cover.begin(), cover.end());
    }
    return Region::fromQubits(std::move(qs));
}

} // namespace qc
