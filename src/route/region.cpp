#include "region.hpp"

#include <algorithm>
#include <sstream>

namespace qc {

Rect
Rect::spanning(GridPos a, GridPos b)
{
    Rect r;
    r.x0 = std::min(a.x, b.x);
    r.x1 = std::max(a.x, b.x);
    r.y0 = std::min(a.y, b.y);
    r.y1 = std::max(a.y, b.y);
    return r;
}

bool
Rect::overlaps(const Rect &o) const
{
    // S(Ri, Rj) = not (li.x > rj.x or ri.x < lj.x or ...), Eq. 7.
    return !(x0 > o.x1 || x1 < o.x0 || y0 > o.y1 || y1 < o.y0);
}

bool
Rect::contains(GridPos p) const
{
    return p.x >= x0 && p.x <= x1 && p.y >= y0 && p.y <= y1;
}

std::string
Rect::toString() const
{
    std::ostringstream oss;
    oss << "[(" << x0 << "," << y0 << ")-(" << x1 << "," << y1 << ")]";
    return oss.str();
}

bool
Region::overlaps(const Region &other) const
{
    for (const auto &a : rects)
        for (const auto &b : other.rects)
            if (a.overlaps(b))
                return true;
    return false;
}

bool
Region::contains(GridPos p) const
{
    for (const auto &r : rects)
        if (r.contains(p))
            return true;
    return false;
}

} // namespace qc
