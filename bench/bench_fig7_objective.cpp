/**
 * @file
 * Figure 7 reproduction: success rate (a), execution duration (b) and
 * compile time (c) of T-SMT* and R-SMT* with w in {0, 0.5, 1} on BV4,
 * HS6 and Toffoli. w = 0.5 should win success rate while staying
 * near-optimal in duration (paper: up to 9.25x over T-SMT*).
 */

#include "bench_util.hpp"

using namespace qc;

int
main()
{
    const std::uint64_t seed = bench::benchSeed();
    const int trials = bench::benchTrials();
    bench::banner("Figure 7: choice of optimization objective", seed);
    ExperimentEnv env(seed);
    Machine m = env.machineForDay(0);

    struct Config
    {
        std::string label;
        CompilerOptions options;
    };
    std::vector<Config> configs;
    {
        CompilerOptions t;
        t.mapper = MapperKind::TSmtStar;
        t.smtTimeoutMs = kBenchSmtTimeoutMs;
        configs.push_back({"T-SMT*", t});
        for (double w : {1.0, 0.0, 0.5}) {
            CompilerOptions r;
            r.mapper = MapperKind::RSmtStar;
            r.readoutWeight = w;
            r.smtTimeoutMs = kBenchSmtTimeoutMs;
            configs.push_back({"R-SMT* w=" + Table::fmt(w, 1), r});
        }
    }

    for (const char *metric : {"a: success rate", "b: duration (slots)",
                               "c: compile time (s)"}) {
        std::vector<std::string> headers{"Benchmark"};
        for (const auto &c : configs)
            headers.push_back(c.label);
        Table t(headers);
        for (const char *name : {"BV4", "HS6", "Toffoli"}) {
            Benchmark b = benchmarkByName(name);
            std::vector<std::string> row{name};
            for (const auto &c : configs) {
                MeasuredRun run =
                    runMeasured(m, b, c.options, trials, seed);
                if (metric[0] == 'a') {
                    row.push_back(
                        Table::fmt(run.execution.successRate));
                } else if (metric[0] == 'b') {
                    row.push_back(Table::fmt(
                        static_cast<long long>(run.compiled.duration)));
                } else {
                    row.push_back(
                        Table::fmt(run.compiled.compileSeconds, 2));
                }
            }
            t.addRow(std::move(row));
        }
        std::cout << "Fig 7" << metric << "\n";
        t.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "Paper shape: w=0.5 has the best success rate; its "
                 "duration is close to\nT-SMT*'s optimum; every "
                 "configuration compiles in under a minute.\n";
    return 0;
}
