/**
 * @file
 * Ablation studies beyond the paper's figures:
 *  (1) a fine-grained readout-weight (omega) sweep for Eq. 12,
 *  (2) Z3 vs the in-house branch-and-bound placer on solve time and
 *      objective agreement,
 *  (3) the value of joint scheduling in the SMT model,
 *  (4) noise-channel ablation: which error mechanism costs the most,
 *  (5) restore-vs-track routing: the paper's SWAP-and-restore scheme
 *      against a live-tracking router that commits qubit movement,
 *  (6) topology study: the paper's Sec. 9 conclusion that richer
 *      topologies reduce SWAP pressure, on same-size grids,
 *  (7) SABRE refinement vs GreedyE*+track: the iterative placement
 *      pass against its one-shot greedy seed on the Table 2 set,
 *      across grid, heavy-hex and ring machines.
 *
 * With `--json PATH` only study (7) runs and its machine-readable
 * envelope (bench/bench_json.hpp) is written to PATH — that is the
 * CI perf-smoke entry gating sabre's aggregate predicted success
 * against bench/baselines/ablation.json (tools/bench_check.py); the
 * other studies need Z3 + Monte-Carlo budgets CI does not spend.
 */

#include <chrono>
#include <cmath>

#include "bench_json.hpp"
#include "bench_util.hpp"
#include "solver/bnb_placer.hpp"
#include "solver/objective.hpp"

using namespace qc;

namespace {

/**
 * (7) Sabre-vs-greedy study. Predicted success only (both bundles
 * predict inline from the emitted hardware ops, so this is exact and
 * deterministic — no Monte-Carlo needed).
 */
void
runSabreStudy(std::uint64_t seed, const std::string &json_path)
{
    struct TopoCase { const char *label; Topology topo; };
    const std::vector<TopoCase> topos = {
        {"grid2x8", GridTopology::ibmq16()},
        {"heavyhex3", HeavyHexTopology(3)},
        {"ring16", RingTopology(16)},
    };

    struct Row
    {
        std::string name; ///< "<topo>/<bench>"
        CompiledProgram greedy;
        CompiledProgram sabre;
    };
    std::vector<Row> rows;
    for (const TopoCase &tc : topos) {
        CalibrationModel model(tc.topo, seed);
        auto machine = std::make_shared<const Machine>(
            tc.topo, model.forDay(0));
        CompilerOptions greedy;
        greedy.mapper = MapperKind::GreedyETrack;
        CompilerOptions sabre;
        sabre.mapper = MapperKind::Sabre;
        Pipeline greedy_pipe = standardPipeline(machine, greedy);
        Pipeline sabre_pipe = standardPipeline(machine, sabre);
        for (const Benchmark &b : paperBenchmarks())
            rows.push_back({std::string(tc.label) + "/" + b.name,
                            greedy_pipe.compile(b.circuit),
                            sabre_pipe.compile(b.circuit)});
    }

    int wins = 0, regressed = 0;
    double greedy_log = 0.0, sabre_log = 0.0;
    Table t({"Instance", "GreedyE*+track", "Sabre", "swaps g",
             "swaps s", "verdict"});
    for (const Row &r : rows) {
        double g = r.greedy.predictedSuccess;
        double s = r.sabre.predictedSuccess;
        greedy_log += std::log(g);
        sabre_log += std::log(s);
        bool win = s >= g - 1e-12;
        if (win)
            ++wins;
        if (s < 0.95 * g)
            ++regressed;
        t.addRow({r.name, Table::fmt(g), Table::fmt(s),
                  Table::fmt(static_cast<long long>(
                      r.greedy.swapCount)),
                  Table::fmt(static_cast<long long>(
                      r.sabre.swapCount)),
                  win ? (s > g + 1e-12 ? "improved" : "tie")
                      : "REGRESSED"});
    }
    std::cout << "(7) SABRE refinement vs GreedyE*+track "
                 "(predicted success)\n";
    t.print(std::cout);
    std::cout << "\nimprove-or-tie on " << wins << "/" << rows.size()
              << " instances; aggregate predicted success "
              << std::exp(greedy_log) << " (greedy) vs "
              << std::exp(sabre_log) << " (sabre)\n";

    if (json_path.empty())
        return;
    std::ofstream out = bench::openJsonOut(json_path);
    bench::JsonWriter json(out);
    json.beginObject()
        .field("schema_version", 1)
        .field("bench", "bench_ablation")
        .field("seed", seed)
        .key("entries")
        .beginArray();
    for (const Row &r : rows) {
        auto emit = [&](const char *mapper, const CompiledProgram &p) {
            json.beginObject()
                .field("name", r.name + "/" + mapper)
                .key("metrics")
                .beginObject()
                .field("psuccess", p.predictedSuccess)
                .field("swaps", static_cast<long long>(p.swapCount))
                .field("makespan", static_cast<long long>(p.duration))
                .endObject()
                .endObject();
        };
        emit("greedy", r.greedy);
        emit("sabre", r.sabre);
    }
    json.endArray()
        .key("totals")
        .beginObject()
        .field("greedy_psuccess", std::exp(greedy_log))
        .field("sabre_psuccess", std::exp(sabre_log))
        .field("wins", wins)
        .field("regressed", regressed)
        .field("compiles", static_cast<long long>(2 * rows.size()))
        .endObject()
        .endObject();
    out << "\n";
    std::cout << "wrote " << json_path << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const std::uint64_t seed = bench::benchSeed();
    const int trials = bench::benchTrials();

    // CI mode: the deterministic sabre study only, as JSON.
    if (const std::string json_path = bench::jsonOutPath(argc, argv);
        !json_path.empty()) {
        bench::banner("Ablation (7) only: sabre vs greedy (--json)",
                      seed);
        runSabreStudy(seed, json_path);
        return 0;
    }

    bench::banner("Ablations: omega sweep, solver engines, channels",
                  seed);
    ExperimentEnv env(seed);
    Machine m = env.machineForDay(0);

    // (1) Omega sweep on the three Fig. 7 benchmarks.
    {
        std::vector<double> omegas{0.0, 0.25, 0.5, 0.75, 1.0};
        std::vector<std::string> headers{"Benchmark"};
        for (double w : omegas)
            headers.push_back("w=" + Table::fmt(w, 2));
        Table t(headers);
        for (const char *name : {"BV4", "HS6", "Toffoli"}) {
            Benchmark b = benchmarkByName(name);
            std::vector<std::string> row{name};
            for (double w : omegas) {
                CompilerOptions o;
                o.mapper = MapperKind::RSmtStar;
                o.readoutWeight = w;
                o.smtTimeoutMs = kBenchSmtTimeoutMs;
                auto r = runMeasured(m, b, o, trials, seed);
                row.push_back(Table::fmt(r.execution.successRate));
            }
            t.addRow(std::move(row));
        }
        std::cout << "(1) Success rate vs readout weight omega\n";
        t.print(std::cout);
        std::cout << "\n";
    }

    // (2) Z3 vs branch-and-bound on the placement objective.
    {
        Table t({"Benchmark", "BnB (s)", "BnB nodes", "Z3 placement (s)",
                 "objectives agree"});
        for (const char *name : {"BV8", "HS6", "Toffoli", "Adder"}) {
            Benchmark b = benchmarkByName(name);

            auto t0 = std::chrono::steady_clock::now();
            BnbPlacer bnb(m, b.circuit);
            BnbResult br = bnb.solve();
            double bnb_s = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();

            CompilerOptions o;
            o.mapper = MapperKind::RSmtStar;
            o.smtTimeoutMs = kBenchSmtTimeoutMs;
            o.jointScheduling = false; // same problem as the BnB
            auto mapper = NoiseAdaptiveCompiler::makeMapper(m, o);
            CompiledProgram cp = mapper->compile(b.circuit);

            double z3_obj = evaluateReliability(b.circuit, cp.layout, m)
                                .weighted(0.5);
            bool agree = std::abs(z3_obj - br.objective) < 1e-6;
            t.addRow({name, Table::fmt(bnb_s, 4),
                      Table::fmt(static_cast<long long>(
                          br.nodesExplored)),
                      Table::fmt(cp.compileSeconds, 3),
                      agree ? "yes" : "NO"});
        }
        std::cout << "(2) Exact placement: Z3 vs branch-and-bound\n";
        t.print(std::cout);
        std::cout << "\n";
    }

    // (3) Joint vs placement-only SMT scheduling.
    {
        Table t({"Benchmark", "joint (s)", "placement-only (s)",
                 "same success"});
        for (const char *name : {"BV4", "HS4", "Toffoli"}) {
            Benchmark b = benchmarkByName(name);
            CompilerOptions joint;
            joint.mapper = MapperKind::RSmtStar;
            joint.smtTimeoutMs = kBenchSmtTimeoutMs;
            CompilerOptions flat = joint;
            flat.jointScheduling = false;
            auto rj = runMeasured(m, b, joint, trials, seed);
            auto rf = runMeasured(m, b, flat, trials, seed);
            bool close = std::abs(rj.execution.successRate -
                                  rf.execution.successRate) < 0.08;
            t.addRow({name, Table::fmt(rj.compiled.compileSeconds, 2),
                      Table::fmt(rf.compiled.compileSeconds, 2),
                      close ? "yes" : "differs"});
        }
        std::cout << "(3) Joint scheduling vs placement-only encoding\n";
        t.print(std::cout);
        std::cout << "\n";
    }

    // (4) Noise-channel ablation under the R-SMT* mapping.
    {
        Benchmark b = benchmarkByName("Toffoli");
        CompilerOptions o;
        o.mapper = MapperKind::RSmtStar;
        o.smtTimeoutMs = kBenchSmtTimeoutMs;
        auto mapper = NoiseAdaptiveCompiler::makeMapper(m, o);
        CompiledProgram cp = mapper->compile(b.circuit);

        auto rate = [&](bool gates, bool readout, bool decoh) {
            ExecutionOptions e;
            e.trials = trials;
            e.seed = seed;
            e.noise.gateErrors = gates;
            e.noise.readoutErrors = readout;
            e.noise.decoherence = decoh;
            return runNoisy(m, cp.schedule, b.circuit.numClbits(),
                            b.expected, e)
                .successRate;
        };
        Table t({"Channels enabled", "Toffoli success rate"});
        t.addRow({"none (ideal)", Table::fmt(rate(false, false, false))});
        t.addRow({"gate errors only", Table::fmt(rate(true, false,
                                                      false))});
        t.addRow({"readout errors only",
                  Table::fmt(rate(false, true, false))});
        t.addRow({"decoherence only",
                  Table::fmt(rate(false, false, true))});
        t.addRow({"all", Table::fmt(rate(true, true, true))});
        std::cout << "(4) Error-mechanism ablation (R-SMT* mapping)\n";
        t.print(std::cout);
        std::cout << "\n";
    }

    // (5) Restore-vs-track routing on the SWAP-heavy kernels.
    {
        Table t({"Benchmark", "GreedyE* (restore)", "swaps",
                 "GreedyE*+track", "swaps "});
        for (const char *name :
             {"Toffoli", "Fredkin", "Or", "Peres", "Adder"}) {
            Benchmark b = benchmarkByName(name);
            CompilerOptions restore;
            restore.mapper = MapperKind::GreedyE;
            CompilerOptions track;
            track.mapper = MapperKind::GreedyETrack;
            auto rr = runMeasured(m, b, restore, trials, seed);
            auto rt = runMeasured(m, b, track, trials, seed);
            t.addRow({name, Table::fmt(rr.execution.successRate),
                      Table::fmt(static_cast<long long>(
                          rr.compiled.swapCount)),
                      Table::fmt(rt.execution.successRate),
                      Table::fmt(static_cast<long long>(
                          rt.compiled.swapCount))});
        }
        std::cout << "(5) Restore vs live-tracking routing (GreedyE* "
                     "placement)\n";
        t.print(std::cout);
        std::cout << "\nTracking halves each routed CNOT's SWAP cost "
                     "by not undoing movement,\nat the price of a "
                     "drifting layout (see "
                     "sched/tracking_router.hpp).\n\n";
    }

    // (6) Topology study: 16 qubits as 1x16 / 2x8 / 4x4 grids. Denser
    // grids shorten routes, supporting the paper's Sec. 9 conclusion
    // that richer topologies improve kernels like Toffoli.
    {
        Table t({"Topology", "Toffoli swaps", "Toffoli success",
                 "Adder swaps", "Adder success"});
        struct Shape { int rows, cols; };
        for (Shape s : {Shape{1, 16}, Shape{2, 8}, Shape{4, 4}}) {
            GridTopology topo(s.rows, s.cols);
            CalibrationModel model(topo, seed);
            Machine machine(topo, model.forDay(0));
            CompilerOptions o;
            o.mapper = MapperKind::RSmtStar;
            o.smtTimeoutMs = kBenchSmtTimeoutMs;
            auto toffoli = runMeasured(machine,
                                       benchmarkByName("Toffoli"), o,
                                       trials, seed);
            auto adder = runMeasured(machine, benchmarkByName("Adder"),
                                     o, trials, seed);
            t.addRow({topo.name(),
                      Table::fmt(static_cast<long long>(
                          toffoli.compiled.swapCount)),
                      Table::fmt(toffoli.execution.successRate),
                      Table::fmt(static_cast<long long>(
                          adder.compiled.swapCount)),
                      Table::fmt(adder.execution.successRate)});
        }
        std::cout << "(6) Topology study (R-SMT*, same qubit count)\n";
        t.print(std::cout);
        std::cout << "\nNote: per-topology calibrations are drawn "
                     "independently, so success\ncomparisons fold in "
                     "machine-quality luck; the SWAP counts are the "
                     "structural\nsignal.\n\n";
    }

    // (7) Sabre refinement vs its greedy seed.
    runSabreStudy(seed, "");
    return 0;
}
