/**
 * @file
 * Ablation studies beyond the paper's figures:
 *  (1) a fine-grained readout-weight (omega) sweep for Eq. 12,
 *  (2) Z3 vs the in-house branch-and-bound placer on solve time and
 *      objective agreement,
 *  (3) the value of joint scheduling in the SMT model,
 *  (4) noise-channel ablation: which error mechanism costs the most,
 *  (5) restore-vs-track routing: the paper's SWAP-and-restore scheme
 *      against a live-tracking router that commits qubit movement,
 *  (6) topology study: the paper's Sec. 9 conclusion that richer
 *      topologies reduce SWAP pressure, on same-size grids.
 */

#include <chrono>
#include <cmath>

#include "bench_util.hpp"
#include "solver/bnb_placer.hpp"
#include "solver/objective.hpp"

using namespace qc;

int
main()
{
    const std::uint64_t seed = bench::benchSeed();
    const int trials = bench::benchTrials();
    bench::banner("Ablations: omega sweep, solver engines, channels",
                  seed);
    ExperimentEnv env(seed);
    Machine m = env.machineForDay(0);

    // (1) Omega sweep on the three Fig. 7 benchmarks.
    {
        std::vector<double> omegas{0.0, 0.25, 0.5, 0.75, 1.0};
        std::vector<std::string> headers{"Benchmark"};
        for (double w : omegas)
            headers.push_back("w=" + Table::fmt(w, 2));
        Table t(headers);
        for (const char *name : {"BV4", "HS6", "Toffoli"}) {
            Benchmark b = benchmarkByName(name);
            std::vector<std::string> row{name};
            for (double w : omegas) {
                CompilerOptions o;
                o.mapper = MapperKind::RSmtStar;
                o.readoutWeight = w;
                o.smtTimeoutMs = kBenchSmtTimeoutMs;
                auto r = runMeasured(m, b, o, trials, seed);
                row.push_back(Table::fmt(r.execution.successRate));
            }
            t.addRow(std::move(row));
        }
        std::cout << "(1) Success rate vs readout weight omega\n";
        t.print(std::cout);
        std::cout << "\n";
    }

    // (2) Z3 vs branch-and-bound on the placement objective.
    {
        Table t({"Benchmark", "BnB (s)", "BnB nodes", "Z3 placement (s)",
                 "objectives agree"});
        for (const char *name : {"BV8", "HS6", "Toffoli", "Adder"}) {
            Benchmark b = benchmarkByName(name);

            auto t0 = std::chrono::steady_clock::now();
            BnbPlacer bnb(m, b.circuit);
            BnbResult br = bnb.solve();
            double bnb_s = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();

            CompilerOptions o;
            o.mapper = MapperKind::RSmtStar;
            o.smtTimeoutMs = kBenchSmtTimeoutMs;
            o.jointScheduling = false; // same problem as the BnB
            auto mapper = NoiseAdaptiveCompiler::makeMapper(m, o);
            CompiledProgram cp = mapper->compile(b.circuit);

            double z3_obj = evaluateReliability(b.circuit, cp.layout, m)
                                .weighted(0.5);
            bool agree = std::abs(z3_obj - br.objective) < 1e-6;
            t.addRow({name, Table::fmt(bnb_s, 4),
                      Table::fmt(static_cast<long long>(
                          br.nodesExplored)),
                      Table::fmt(cp.compileSeconds, 3),
                      agree ? "yes" : "NO"});
        }
        std::cout << "(2) Exact placement: Z3 vs branch-and-bound\n";
        t.print(std::cout);
        std::cout << "\n";
    }

    // (3) Joint vs placement-only SMT scheduling.
    {
        Table t({"Benchmark", "joint (s)", "placement-only (s)",
                 "same success"});
        for (const char *name : {"BV4", "HS4", "Toffoli"}) {
            Benchmark b = benchmarkByName(name);
            CompilerOptions joint;
            joint.mapper = MapperKind::RSmtStar;
            joint.smtTimeoutMs = kBenchSmtTimeoutMs;
            CompilerOptions flat = joint;
            flat.jointScheduling = false;
            auto rj = runMeasured(m, b, joint, trials, seed);
            auto rf = runMeasured(m, b, flat, trials, seed);
            bool close = std::abs(rj.execution.successRate -
                                  rf.execution.successRate) < 0.08;
            t.addRow({name, Table::fmt(rj.compiled.compileSeconds, 2),
                      Table::fmt(rf.compiled.compileSeconds, 2),
                      close ? "yes" : "differs"});
        }
        std::cout << "(3) Joint scheduling vs placement-only encoding\n";
        t.print(std::cout);
        std::cout << "\n";
    }

    // (4) Noise-channel ablation under the R-SMT* mapping.
    {
        Benchmark b = benchmarkByName("Toffoli");
        CompilerOptions o;
        o.mapper = MapperKind::RSmtStar;
        o.smtTimeoutMs = kBenchSmtTimeoutMs;
        auto mapper = NoiseAdaptiveCompiler::makeMapper(m, o);
        CompiledProgram cp = mapper->compile(b.circuit);

        auto rate = [&](bool gates, bool readout, bool decoh) {
            ExecutionOptions e;
            e.trials = trials;
            e.seed = seed;
            e.noise.gateErrors = gates;
            e.noise.readoutErrors = readout;
            e.noise.decoherence = decoh;
            return runNoisy(m, cp.schedule, b.circuit.numClbits(),
                            b.expected, e)
                .successRate;
        };
        Table t({"Channels enabled", "Toffoli success rate"});
        t.addRow({"none (ideal)", Table::fmt(rate(false, false, false))});
        t.addRow({"gate errors only", Table::fmt(rate(true, false,
                                                      false))});
        t.addRow({"readout errors only",
                  Table::fmt(rate(false, true, false))});
        t.addRow({"decoherence only",
                  Table::fmt(rate(false, false, true))});
        t.addRow({"all", Table::fmt(rate(true, true, true))});
        std::cout << "(4) Error-mechanism ablation (R-SMT* mapping)\n";
        t.print(std::cout);
        std::cout << "\n";
    }

    // (5) Restore-vs-track routing on the SWAP-heavy kernels.
    {
        Table t({"Benchmark", "GreedyE* (restore)", "swaps",
                 "GreedyE*+track", "swaps "});
        for (const char *name :
             {"Toffoli", "Fredkin", "Or", "Peres", "Adder"}) {
            Benchmark b = benchmarkByName(name);
            CompilerOptions restore;
            restore.mapper = MapperKind::GreedyE;
            CompilerOptions track;
            track.mapper = MapperKind::GreedyETrack;
            auto rr = runMeasured(m, b, restore, trials, seed);
            auto rt = runMeasured(m, b, track, trials, seed);
            t.addRow({name, Table::fmt(rr.execution.successRate),
                      Table::fmt(static_cast<long long>(
                          rr.compiled.swapCount)),
                      Table::fmt(rt.execution.successRate),
                      Table::fmt(static_cast<long long>(
                          rt.compiled.swapCount))});
        }
        std::cout << "(5) Restore vs live-tracking routing (GreedyE* "
                     "placement)\n";
        t.print(std::cout);
        std::cout << "\nTracking halves each routed CNOT's SWAP cost "
                     "by not undoing movement,\nat the price of a "
                     "drifting layout (see "
                     "sched/tracking_router.hpp).\n\n";
    }

    // (6) Topology study: 16 qubits as 1x16 / 2x8 / 4x4 grids. Denser
    // grids shorten routes, supporting the paper's Sec. 9 conclusion
    // that richer topologies improve kernels like Toffoli.
    {
        Table t({"Topology", "Toffoli swaps", "Toffoli success",
                 "Adder swaps", "Adder success"});
        struct Shape { int rows, cols; };
        for (Shape s : {Shape{1, 16}, Shape{2, 8}, Shape{4, 4}}) {
            GridTopology topo(s.rows, s.cols);
            CalibrationModel model(topo, seed);
            Machine machine(topo, model.forDay(0));
            CompilerOptions o;
            o.mapper = MapperKind::RSmtStar;
            o.smtTimeoutMs = kBenchSmtTimeoutMs;
            auto toffoli = runMeasured(machine,
                                       benchmarkByName("Toffoli"), o,
                                       trials, seed);
            auto adder = runMeasured(machine, benchmarkByName("Adder"),
                                     o, trials, seed);
            t.addRow({topo.name(),
                      Table::fmt(static_cast<long long>(
                          toffoli.compiled.swapCount)),
                      Table::fmt(toffoli.execution.successRate),
                      Table::fmt(static_cast<long long>(
                          adder.compiled.swapCount)),
                      Table::fmt(adder.execution.successRate)});
        }
        std::cout << "(6) Topology study (R-SMT*, same qubit count)\n";
        t.print(std::cout);
        std::cout << "\nNote: per-topology calibrations are drawn "
                     "independently, so success\ncomparisons fold in "
                     "machine-quality luck; the SWAP counts are the "
                     "structural\nsignal.\n";
    }
    return 0;
}
