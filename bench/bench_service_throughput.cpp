/**
 * @file
 * Compile-service throughput: serial vs parallel batch compilation,
 * plus compile-cache effectiveness on an identical re-run.
 *
 * Workload: 32 synthetic programs (paper Sec. 6 generator) compiled
 * with the GreedyE* heuristic against 4 calibration days (8 programs
 * each) — the daily-recompilation shape. The machine is a 6x6 grid
 * (the scalability study's mid-size point) so each job carries real
 * mapping work rather than thread-pool overhead. Three measurements:
 *
 *   1. serial:    1 worker, cold caches,
 *   2. parallel:  8 workers, cold caches   -> speedup,
 *   3. re-run:    same batch on the warm parallel service
 *                                          -> cache hit rate.
 *
 * Override QC_BENCH_JOBS to change the parallel worker count.
 */

#include <iostream>
#include <thread>

#include "bench_util.hpp"
#include "service/compile_service.hpp"
#include "workloads/random_circuits.hpp"

namespace {

using namespace qc;
using namespace qc::service;

constexpr int kPrograms = 8;
constexpr int kDays = 4; // 8 programs x 4 days = 32 jobs

std::vector<CompileRequest>
makeBatch(const CalibrationModel &model, std::uint64_t seed)
{
    std::vector<std::pair<std::string, Circuit>> programs;
    for (int i = 0; i < kPrograms; ++i) {
        RandomCircuitSpec spec;
        spec.numQubits = 20 + 4 * (i % 4); // 20..32 of the 36 qubits
        spec.numGates = 768;
        spec.seed = seed + static_cast<std::uint64_t>(i);
        programs.emplace_back("rand" + std::to_string(i),
                              makeRandomCircuit(spec));
    }
    CompilerOptions options;
    options.mapper = MapperKind::GreedyE;
    return CompileService::dailyBatch(model, programs, 0, kDays,
                                      options);
}

} // namespace

int
main()
{
    const std::uint64_t seed = qc::bench::benchSeed();
    int jobs = 8;
    if (const char *s = std::getenv("QC_BENCH_JOBS"))
        jobs = std::atoi(s);

    std::cout << "=== compile-service throughput (32-job GreedyE* "
                 "batch, 4 calibration days) ===\n"
              << "machine: synthetic 6x6 grid, seed " << seed
              << "\n\nhardware concurrency: "
              << std::thread::hardware_concurrency() << " (speedup is "
              << "bounded by available cores)\n\n";

    CalibrationModel model(GridTopology(6, 6), seed);

    // 1. Serial reference: one worker, cold machine pool and cache.
    ServiceOptions serial_opts;
    serial_opts.threads = 1;
    CompileService serial(serial_opts);
    BatchResult s = serial.compileBatch(makeBatch(model, seed));
    const double serial_wall = s.report.wallSeconds;

    // 2. Parallel, cold: fresh service so nothing is pre-warmed.
    ServiceOptions par_opts;
    par_opts.threads = jobs;
    CompileService parallel(par_opts);
    BatchResult p = parallel.compileBatch(makeBatch(model, seed));
    const double parallel_wall = p.report.wallSeconds;

    // 3. Identical batch again on the warm service: cache hits.
    BatchResult rerun = parallel.compileBatch(makeBatch(model, seed));
    const double rerun_wall = rerun.report.wallSeconds;
    const double rerun_hit_rate =
        rerun.report.jobs == 0
            ? 0.0
            : static_cast<double>(rerun.report.cacheHits) /
                  rerun.report.jobs;

    Table t({"configuration", "wall s", "jobs/s", "cache hits",
             "machine builds"});
    t.addRow({"serial (1 worker)", Table::fmt(serial_wall),
              Table::fmt(s.report.jobs / serial_wall),
              Table::fmt(static_cast<long long>(s.report.cacheHits)),
              Table::fmt(static_cast<long long>(
                  s.report.machinePool.builds))});
    t.addRow({"parallel (" + std::to_string(jobs) + " workers)",
              Table::fmt(parallel_wall),
              Table::fmt(p.report.jobs / parallel_wall),
              Table::fmt(static_cast<long long>(p.report.cacheHits)),
              Table::fmt(static_cast<long long>(
                  p.report.machinePool.builds))});
    t.addRow({"re-run (warm cache)", Table::fmt(rerun_wall),
              Table::fmt(rerun.report.jobs / rerun_wall),
              Table::fmt(
                  static_cast<long long>(rerun.report.cacheHits)),
              Table::fmt(static_cast<long long>(
                  rerun.report.machinePool.builds))});
    t.print(std::cout);

    std::cout << "\nspeedup (serial/parallel): "
              << Table::fmt(serial_wall / parallel_wall) << "x\n"
              << "re-run cache hit rate: "
              << Table::fmt(rerun_hit_rate) << " ("
              << rerun.report.cacheHits << "/" << rerun.report.jobs
              << ")\n\nparallel service report:\n"
              << rerun.report.toString();

    const bool failed = s.report.failed + p.report.failed +
                            rerun.report.failed >
                        0;
    return failed ? 1 : 0;
}
