/**
 * @file
 * Figure 10 reproduction: success rate of the noise-aware heuristics
 * GreedyE* and GreedyV* against R-SMT*(w=0.5) on all 12 benchmarks.
 * GreedyE* should be comparable to the SMT optimum and GreedyV*
 * slightly behind (paper Sec. 7.4).
 */

#include <cmath>

#include "bench_util.hpp"
#include "support/stats.hpp"

using namespace qc;

int
main()
{
    const std::uint64_t seed = bench::benchSeed();
    const int trials = bench::benchTrials();
    bench::banner("Figure 10: heuristics vs optimal", seed);
    ExperimentEnv env(seed);
    Machine m = env.machineForDay(0);

    CompilerOptions rsmt;
    rsmt.mapper = MapperKind::RSmtStar;
    rsmt.smtTimeoutMs = kBenchSmtTimeoutMs;
    CompilerOptions ge;
    ge.mapper = MapperKind::GreedyE;
    CompilerOptions gv;
    gv.mapper = MapperKind::GreedyV;

    Table t({"Benchmark", "R-SMT* w=0.5", "GreedyE*", "GreedyV*",
             "GreedyE*/R-SMT*"});
    std::vector<double> ratios_e, ratios_v;
    for (const auto &b : paperBenchmarks()) {
        auto rr = runMeasured(m, b, rsmt, trials, seed);
        auto re = runMeasured(m, b, ge, trials, seed);
        auto rv = runMeasured(m, b, gv, trials, seed);
        double ratio_e = re.execution.successRate /
                         std::max(rr.execution.successRate, 1e-3);
        ratios_e.push_back(ratio_e);
        ratios_v.push_back(rv.execution.successRate /
                           std::max(rr.execution.successRate, 1e-3));
        t.addRow({b.name, Table::fmt(rr.execution.successRate),
                  Table::fmt(re.execution.successRate),
                  Table::fmt(rv.execution.successRate),
                  Table::fmt(ratio_e, 2) + "x"});
    }
    t.print(std::cout);
    std::cout << "\nGeomean vs R-SMT*: GreedyE* "
              << Table::fmt(geomean(ratios_e), 2) << "x, GreedyV* "
              << Table::fmt(geomean(ratios_v), 2)
              << "x (paper: GreedyE* comparable to R-SMT*, GreedyV* "
                 "behind)\n";
    return 0;
}
