/**
 * @file
 * Figure 9 reproduction: execution duration (timeslots) of T-SMT(RR),
 * T-SMT*(RR), T-SMT*(1BP) and R-SMT*(1BP) on all 12 benchmarks.
 * Noise-aware durations should beat the static model by ~1.6x, and
 * R-SMT* should stay close to the duration-optimal variants.
 */

#include "bench_util.hpp"
#include "support/stats.hpp"

using namespace qc;

int
main()
{
    const std::uint64_t seed = bench::benchSeed();
    bench::banner("Figure 9: execution duration by variant", seed);
    ExperimentEnv env(seed);
    Machine m = env.machineForDay(0);

    struct Config
    {
        std::string label;
        CompilerOptions options;
    };
    std::vector<Config> configs;
    auto add = [&](const std::string &label, MapperKind kind,
                   RoutingPolicy policy) {
        CompilerOptions o;
        o.mapper = kind;
        o.policy = policy;
        o.smtTimeoutMs = kBenchSmtTimeoutMs;
        configs.push_back({label, o});
    };
    add("T-SMT RR", MapperKind::TSmt,
        RoutingPolicy::RectangleReservation);
    add("T-SMT* RR", MapperKind::TSmtStar,
        RoutingPolicy::RectangleReservation);
    add("T-SMT* 1BP", MapperKind::TSmtStar, RoutingPolicy::OneBendPath);
    add("R-SMT* 1BP", MapperKind::RSmtStar, RoutingPolicy::OneBendPath);

    std::vector<std::string> headers{"Benchmark"};
    for (const auto &c : configs)
        headers.push_back(c.label);
    Table t(headers);

    std::vector<double> static_durations, aware_durations;
    for (const auto &b : paperBenchmarks()) {
        std::vector<std::string> row{b.name};
        for (size_t i = 0; i < configs.size(); ++i) {
            auto mapper =
                NoiseAdaptiveCompiler::makeMapper(m,
                                                  configs[i].options);
            CompiledProgram cp = mapper->compile(b.circuit);
            row.push_back(
                Table::fmt(static_cast<long long>(cp.duration)));
            if (i == 0)
                static_durations.push_back(
                    static_cast<double>(cp.duration));
            if (i == 1)
                aware_durations.push_back(
                    static_cast<double>(cp.duration));
        }
        t.addRow(std::move(row));
    }
    t.print(std::cout);

    std::vector<double> gains;
    for (size_t i = 0; i < static_durations.size(); ++i)
        gains.push_back(static_durations[i] / aware_durations[i]);
    std::cout << "\nT-SMT -> T-SMT* duration gain: geomean "
              << Table::fmt(geomean(gains), 2) << "x, max "
              << Table::fmt(maxOf(gains), 2)
              << "x (paper: ~1.6x, max 1.68x)\n";
    return 0;
}
