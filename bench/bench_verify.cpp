/**
 * @file
 * Translation-validation overhead on the Table 2 set.
 *
 * Three bundles per benchmark: the two heuristic families (GreedyE*
 * through the expandRoute list scheduler, SABRE through live-tracking
 * routing) prove every program shape verifies clean, and the paper's
 * default R-SMT* bundle — the production path, where a compile costs
 * milliseconds to seconds of Z3 — carries the overhead gate. The CI
 * gate (tools/bench_check.py against bench/baselines/verify.json):
 *
 *   - verified_clean_count: every compiled program verifies clean on
 *     every instance of all three bundles;
 *   - overhead_within_bound_count: on the R-SMT* instances,
 *     verification must cost < 5% of the compile. (The heuristic
 *     compiles finish in tens of microseconds — the same order as a
 *     verification pass — so a relative bound there measures timer
 *     noise, not the validator; their timings are informational.)
 *
 * Absolute compile_s / verify_s are informational (runner-speed
 * dependent, not gated). QC_BENCH_SMT_TIMEOUT_MS (default 10000)
 * bounds each Z3 solve, as in bench_portfolio.
 */

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "bench_util.hpp"
#include "core/compiler.hpp"
#include "verify/verifier.hpp"

using namespace qc;

namespace {

constexpr int kVerifyReps = 32;
constexpr double kOverheadBound = 0.05; // verify_s < 5% of compile_s

unsigned
smtTimeoutMs()
{
    if (const char *s = std::getenv("QC_BENCH_SMT_TIMEOUT_MS"))
        return static_cast<unsigned>(std::strtoul(s, nullptr, 10));
    return 10'000;
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

struct InstanceRow
{
    std::string name; ///< "<bundle>/<bench>"
    double compileS = 0.0;
    double verifyS = 0.0; ///< average of kVerifyReps runs
    bool clean = false;
    bool gated = false; ///< instance participates in the overhead gate
    bool withinBound = false;
};

} // namespace

int
main(int argc, char **argv)
{
    const std::uint64_t seed = bench::benchSeed();
    const std::string json_path = bench::jsonOutPath(argc, argv);
    const unsigned smt_ms = smtTimeoutMs();

    bench::banner("Translation-validation overhead (Table 2 set)",
                  seed);

    const Topology topo = GridTopology::ibmq16();
    CalibrationModel model(topo, seed);
    auto machine =
        std::make_shared<const Machine>(topo, model.forDay(0));

    struct BundleCase
    {
        MapperKind kind;
        bool gateOverhead;
    };
    const BundleCase bundles[] = {
        {MapperKind::GreedyE, false},
        {MapperKind::Sabre, false},
        {MapperKind::RSmtStar, true},
    };

    std::vector<InstanceRow> rows;
    for (const BundleCase &bc : bundles) {
        CompilerOptions opts;
        opts.mapper = bc.kind;
        opts.smtTimeoutMs = smt_ms;
        const Pipeline pipeline = standardPipeline(machine, opts);
        VerifyOptions vopts;
        vopts.expectRestoredLayout = !pipeline.routesLive();
        const ProgramVerifier verifier(*machine, vopts);

        for (const Benchmark &b : paperBenchmarks()) {
            InstanceRow row;
            row.name =
                std::string(mapperKindName(bc.kind)) + "/" + b.name;
            row.gated = bc.gateOverhead;

            const auto t_compile = std::chrono::steady_clock::now();
            const PipelineResult r = pipeline.run(b.circuit);
            row.compileS = secondsSince(t_compile);
            QC_ASSERT(r.hasProgram, "compile failed on ", row.name,
                      ": ", r.status.message);

            const auto t_verify = std::chrono::steady_clock::now();
            bool clean = true;
            for (int rep = 0; rep < kVerifyReps; ++rep)
                clean = verifier.verify(b.circuit, r.program).ok() &&
                        clean;
            row.verifyS = secondsSince(t_verify) / kVerifyReps;

            row.clean = clean;
            row.withinBound =
                row.verifyS < kOverheadBound * row.compileS;
            rows.push_back(std::move(row));
        }
    }

    int clean_total = 0;
    int gated_total = 0;
    int within_total = 0;
    double compile_total = 0.0, verify_total = 0.0;
    Table t({"Instance", "compile (ms)", "verify (us)", "overhead",
             "verdict"});
    for (const InstanceRow &r : rows) {
        clean_total += r.clean ? 1 : 0;
        compile_total += r.compileS;
        verify_total += r.verifyS;
        const double pct =
            r.compileS > 0.0 ? 100.0 * r.verifyS / r.compileS : 0.0;
        std::string verdict;
        if (!r.clean) {
            verdict = "NOT CLEAN";
        } else if (!r.gated) {
            verdict = "ok (ungated)";
        } else {
            ++gated_total;
            within_total += r.withinBound ? 1 : 0;
            verdict = r.withinBound ? "ok" : "TOO SLOW";
        }
        t.addRow({r.name, Table::fmt(r.compileS * 1e3, 3),
                  Table::fmt(r.verifyS * 1e6, 1),
                  Table::fmt(pct, 2) + "%", verdict});
    }
    t.print(std::cout);

    std::cout << "\n" << clean_total << "/" << rows.size()
              << " instances verify clean, " << within_total << "/"
              << gated_total << " gated instances under the "
              << Table::fmt(100.0 * kOverheadBound, 0)
              << "% overhead bound\n";

    if (json_path.empty())
        return 0;

    std::ofstream out = bench::openJsonOut(json_path);
    bench::JsonWriter json(out);
    json.beginObject()
        .field("schema_version", 1)
        .field("bench", "bench_verify")
        .field("seed", seed)
        .field("smt_timeout_ms", static_cast<long long>(smt_ms))
        .key("entries")
        .beginArray();
    for (const InstanceRow &r : rows) {
        json.beginObject()
            .field("name", r.name)
            .key("metrics")
            .beginObject()
            .field("verified_clean_count", r.clean ? 1 : 0);
        if (r.gated)
            json.field("overhead_within_bound_count",
                       r.withinBound ? 1 : 0);
        json.field("compile_s", r.compileS)
            .field("verify_s", r.verifyS)
            .endObject()
            .endObject();
    }
    json.endArray()
        .key("totals")
        .beginObject()
        .field("verified_clean_count", clean_total)
        .field("overhead_within_bound_count", within_total)
        .field("overhead_gated_count",
               static_cast<long long>(gated_total))
        .field("instance_count",
               static_cast<long long>(rows.size()))
        .field("compile_s", compile_total)
        .field("verify_s", verify_total)
        .endObject()
        .endObject();
    out << "\n";
    std::cout << "wrote " << json_path << "\n";
    return 0;
}
