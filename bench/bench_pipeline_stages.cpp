/**
 * @file
 * Per-stage compile-time breakdown across mapper kinds: where does a
 * compilation actually spend its time? Runs every Table 2 benchmark
 * through the staged pipeline of each MapperKind and aggregates the
 * StageTrace wall times per stage — the instrumentation that makes
 * hot-path optimization work measurable (placement dominates the SMT
 * bundles; scheduling dominates the heuristics).
 *
 * QC_BENCH_SMT_TIMEOUT_MS (default 10000) bounds each Z3 solve.
 */

#include <map>

#include "bench_util.hpp"
#include "core/passes.hpp"

using namespace qc;

namespace {

unsigned
smtTimeoutMs()
{
    if (const char *s = std::getenv("QC_BENCH_SMT_TIMEOUT_MS"))
        return static_cast<unsigned>(std::strtoul(s, nullptr, 10));
    return 10'000;
}

} // namespace

int
main()
{
    bench::banner("Pipeline stage breakdown (Table 2 set)",
                  bench::benchSeed());

    ExperimentEnv env(bench::benchSeed());
    auto machine =
        std::make_shared<const Machine>(env.machineForDay(0));

    Table t({"Mapper", "placement s", "routing s", "scheduling s",
             "prediction s", "total s", "compiles"});
    for (MapperKind kind : kAllMapperKinds) {
        CompilerOptions opts;
        opts.mapper = kind;
        opts.smtTimeoutMs = smtTimeoutMs();
        Pipeline pipeline = standardPipeline(machine, opts);

        std::map<std::string, double> stage_seconds;
        double total = 0.0;
        int compiles = 0;
        for (const Benchmark &b : paperBenchmarks()) {
            PipelineResult r = pipeline.run(b.circuit);
            if (!r.hasProgram) {
                std::cerr << "skipping " << b.name << " under "
                          << pipeline.name() << ": "
                          << r.status.message << "\n";
                continue;
            }
            for (const StageTrace &trace : r.program.stageTraces) {
                stage_seconds[trace.stage] += trace.seconds;
                total += trace.seconds;
            }
            ++compiles;
        }

        t.addRow({pipeline.name(),
                  Table::fmt(stage_seconds["placement"]),
                  Table::fmt(stage_seconds["routing"]),
                  Table::fmt(stage_seconds["scheduling"]),
                  Table::fmt(stage_seconds["prediction"]),
                  Table::fmt(total),
                  Table::fmt(static_cast<long long>(compiles))});
    }
    t.print(std::cout);
    std::cout << "\nNote: the SMT bundles spend essentially all "
                 "their time in placement (the Z3\nsolve); the "
                 "heuristic bundles compile in well under a "
                 "millisecond per program.\nStage wall times come "
                 "from the pipeline's StageTrace instrumentation.\n";
    return 0;
}
