/**
 * @file
 * Per-stage compile-time breakdown across mapper kinds: where does a
 * compilation actually spend its time? Runs every Table 2 benchmark
 * through the staged pipeline of each MapperKind and aggregates the
 * StageTrace wall times per stage — the instrumentation that makes
 * hot-path optimization work measurable (placement dominates the SMT
 * bundles; scheduling dominates the heuristics).
 *
 * QC_BENCH_SMT_TIMEOUT_MS (default 10000) bounds each Z3 solve.
 * `--json out.json` writes the per-mapper stage seconds in the
 * machine-readable envelope (bench/bench_json.hpp) CI archives.
 */

#include <map>

#include "bench_json.hpp"
#include "bench_util.hpp"
#include "core/passes.hpp"

using namespace qc;

namespace {

unsigned
smtTimeoutMs()
{
    if (const char *s = std::getenv("QC_BENCH_SMT_TIMEOUT_MS"))
        return static_cast<unsigned>(std::strtoul(s, nullptr, 10));
    return 10'000;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner("Pipeline stage breakdown (Table 2 set)",
                  bench::benchSeed());
    const std::string json_path = bench::jsonOutPath(argc, argv);

    ExperimentEnv env(bench::benchSeed());
    auto machine =
        std::make_shared<const Machine>(env.machineForDay(0));

    struct MapperStages
    {
        std::string mapper;
        std::map<std::string, double> stageSeconds;
        double total = 0.0;
        int compiles = 0;
    };
    std::vector<MapperStages> rows;

    Table t({"Mapper", "placement s", "routing s", "scheduling s",
             "prediction s", "total s", "compiles"});
    for (MapperKind kind : kAllMapperKinds) {
        CompilerOptions opts;
        opts.mapper = kind;
        opts.smtTimeoutMs = smtTimeoutMs();
        Pipeline pipeline = standardPipeline(machine, opts);

        std::map<std::string, double> stage_seconds;
        double total = 0.0;
        int compiles = 0;
        for (const Benchmark &b : paperBenchmarks()) {
            PipelineResult r = pipeline.run(b.circuit);
            if (!r.hasProgram) {
                std::cerr << "skipping " << b.name << " under "
                          << pipeline.name() << ": "
                          << r.status.message << "\n";
                continue;
            }
            for (const StageTrace &trace : r.program.stageTraces) {
                stage_seconds[trace.stage] += trace.seconds;
                total += trace.seconds;
            }
            ++compiles;
        }

        t.addRow({pipeline.name(),
                  Table::fmt(stage_seconds["placement"]),
                  Table::fmt(stage_seconds["routing"]),
                  Table::fmt(stage_seconds["scheduling"]),
                  Table::fmt(stage_seconds["prediction"]),
                  Table::fmt(total),
                  Table::fmt(static_cast<long long>(compiles))});
        rows.push_back({pipeline.name(), stage_seconds, total,
                        compiles});
    }
    t.print(std::cout);
    std::cout << "\nNote: the SMT bundles spend essentially all "
                 "their time in placement (the Z3\nsolve); the "
                 "heuristic bundles compile in well under a "
                 "millisecond per program.\nStage wall times come "
                 "from the pipeline's StageTrace instrumentation.\n";

    if (!json_path.empty()) {
        std::ofstream out = bench::openJsonOut(json_path);
        bench::JsonWriter w(out);
        w.beginObject()
            .field("schema_version", 1)
            .field("bench", "pipeline_stages")
            .field("seed", bench::benchSeed());
        w.key("entries").beginArray();
        for (const MapperStages &r : rows) {
            w.beginObject().field("name", r.mapper);
            w.key("metrics").beginObject();
            for (const char *stage :
                 {"placement", "routing", "scheduling", "prediction"})
                w.field(std::string(stage) + "_s",
                        r.stageSeconds.count(stage)
                            ? r.stageSeconds.at(stage)
                            : 0.0);
            w.field("total_s", r.total)
                .field("compiles", r.compiles)
                .endObject();
            w.endObject();
        }
        w.endArray();
        double grand_total = 0.0;
        int total_compiles = 0;
        for (const MapperStages &r : rows) {
            grand_total += r.total;
            total_compiles += r.compiles;
        }
        w.key("totals")
            .beginObject()
            .field("total_s", grand_total)
            .field("compiles", total_compiles)
            .endObject();
        w.endObject();
        out << "\n";
        std::cout << "wrote " << json_path << "\n";
    }
    return 0;
}
