/**
 * @file
 * Shared scaffolding for the figure/table reproduction binaries.
 */

#ifndef QC_BENCH_BENCH_UTIL_HPP
#define QC_BENCH_BENCH_UTIL_HPP

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/experiment.hpp"
#include "support/table.hpp"

namespace qc::bench {

/** Default seed; override with env QC_BENCH_SEED. */
inline std::uint64_t
benchSeed()
{
    if (const char *s = std::getenv("QC_BENCH_SEED"))
        return std::strtoull(s, nullptr, 10);
    return 20190131; // paper's arXiv date
}

/** Monte-Carlo trials; override with env QC_BENCH_TRIALS. */
inline int
benchTrials()
{
    if (const char *s = std::getenv("QC_BENCH_TRIALS"))
        return std::atoi(s);
    return kBenchTrials;
}

/** Print the standard experiment banner. */
inline void
banner(const std::string &what, std::uint64_t seed)
{
    std::cout << "=== " << what << " ===\n"
              << "machine: synthetic IBMQ16 (2x8 grid), seed " << seed
              << "\n\n";
}

} // namespace qc::bench

#endif // QC_BENCH_BENCH_UTIL_HPP
