/**
 * @file
 * Figure 5 reproduction: measured success rate of Qiskit, T-SMT* and
 * R-SMT* (w = 0.5) on all 12 benchmarks, plus the geomean/max gains
 * the paper headlines (2.9x geomean, up to 18x over Qiskit).
 */

#include <cmath>

#include "bench_util.hpp"
#include "support/stats.hpp"

using namespace qc;

int
main()
{
    const std::uint64_t seed = bench::benchSeed();
    const int trials = bench::benchTrials();
    bench::banner("Figure 5: success rate vs the Qiskit baseline",
                  seed);
    ExperimentEnv env(seed);
    Machine m = env.machineForDay(0);

    CompilerOptions qiskit;
    qiskit.mapper = MapperKind::Qiskit;
    CompilerOptions tsmt;
    tsmt.mapper = MapperKind::TSmtStar;
    tsmt.smtTimeoutMs = kBenchSmtTimeoutMs;
    CompilerOptions rsmt;
    rsmt.mapper = MapperKind::RSmtStar;
    rsmt.readoutWeight = 0.5;
    rsmt.smtTimeoutMs = kBenchSmtTimeoutMs;

    Table t({"Benchmark", "Qiskit", "T-SMT*", "R-SMT* w=0.5",
             "R-SMT*/Qiskit"});
    std::vector<double> gains;
    for (const auto &b : paperBenchmarks()) {
        auto rq = runMeasured(m, b, qiskit, trials, seed);
        auto rt = runMeasured(m, b, tsmt, trials, seed);
        auto rr = runMeasured(m, b, rsmt, trials, seed);
        double gain = rr.execution.successRate /
                      std::max(rq.execution.successRate, 1e-3);
        gains.push_back(gain);
        t.addRow({b.name, Table::fmt(rq.execution.successRate),
                  Table::fmt(rt.execution.successRate),
                  Table::fmt(rr.execution.successRate),
                  Table::fmt(gain, 2) + "x"});
    }
    t.print(std::cout);
    std::cout << "\nR-SMT* vs Qiskit: geomean " << Table::fmt(
                     geomean(gains), 2)
              << "x, max " << Table::fmt(maxOf(gains), 2)
              << "x (paper: geomean 2.9x, max 18x)\n"
              << "Trials per point: " << trials << "\n";
    return 0;
}
