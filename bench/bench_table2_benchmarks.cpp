/**
 * @file
 * Table 2 reproduction: benchmark characteristics (qubits, gates,
 * CNOTs) and the expected answer of each program.
 */

#include "bench_util.hpp"
#include "sim/executor.hpp"

using namespace qc;

int
main()
{
    bench::banner("Table 2: benchmark characteristics",
                  bench::benchSeed());
    Table t({"Name", "Qubits", "Gates", "CNOTs", "Measures",
             "Expected", "Ideal-sim"});
    for (const auto &b : paperBenchmarks()) {
        t.addRow({
            b.name,
            Table::fmt(static_cast<long long>(b.circuit.numQubits())),
            Table::fmt(static_cast<long long>(b.circuit.gateCount())),
            Table::fmt(static_cast<long long>(b.circuit.cnotCount())),
            Table::fmt(
                static_cast<long long>(b.circuit.measureCount())),
            b.expected,
            idealOutcome(b.circuit),
        });
    }
    t.print(std::cout);
    std::cout << "\nNote: Adder uses 18 CNOTs (paper: 10) because our "
                 "construction uses\nlinear-nearest-neighbor Toffolis "
                 "to keep its interaction graph grid-embeddable\n"
                 "(DESIGN.md, Known deviations).\n";
    return 0;
}
