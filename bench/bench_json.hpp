/**
 * @file
 * Minimal machine-readable JSON emission for the bench binaries.
 *
 * The perf-regression gate (tools/bench_check.py, the CI perf-smoke
 * job) consumes a small common envelope:
 *
 *   {
 *     "schema_version": 1,
 *     "bench": "<binary name>",
 *     "seed": 20190131,
 *     "entries": [
 *       {"name": "<instance>", ...context fields...,
 *        "metrics": {"<metric>": <number>, ...}},
 *       ...
 *     ],
 *     "totals": {"<metric>": <number>, ...}
 *   }
 *
 * Wall-clock metrics end in "_s"; everything else is a deterministic
 * count the checker can compare exactly. JsonWriter is a streaming
 * writer with comma/nesting bookkeeping — just enough JSON for the
 * artifact format, no dependency.
 */

#ifndef QC_BENCH_BENCH_JSON_HPP
#define QC_BENCH_BENCH_JSON_HPP

#include <cmath>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "support/logging.hpp"

namespace qc::bench {

/** Streaming JSON writer (objects/arrays, comma tracking). */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    JsonWriter &beginObject() { return open('{'); }
    JsonWriter &endObject() { return close('}'); }
    JsonWriter &beginArray() { return open('['); }
    JsonWriter &endArray() { return close(']'); }

    JsonWriter &key(const std::string &k)
    {
        comma();
        writeString(k);
        os_ << ":";
        pendingValue_ = true;
        return *this;
    }

    JsonWriter &value(const std::string &v)
    {
        comma();
        writeString(v);
        return *this;
    }
    JsonWriter &value(const char *v) { return value(std::string(v)); }
    JsonWriter &value(bool v)
    {
        comma();
        os_ << (v ? "true" : "false");
        return *this;
    }
    JsonWriter &value(long long v)
    {
        comma();
        os_ << v;
        return *this;
    }
    JsonWriter &value(int v) { return value(static_cast<long long>(v)); }
    JsonWriter &value(std::uint64_t v)
    {
        comma();
        os_ << v;
        return *this;
    }
    JsonWriter &value(double v)
    {
        comma();
        if (!std::isfinite(v)) {
            os_ << "null";
            return *this;
        }
        std::ostringstream oss;
        oss << std::setprecision(12) << v;
        os_ << oss.str();
        return *this;
    }

    template <typename T> JsonWriter &field(const std::string &k, T v)
    {
        key(k);
        return value(v);
    }

  private:
    void comma()
    {
        if (pendingValue_) {
            pendingValue_ = false;
            return; // value directly follows its key
        }
        if (!needComma_.empty() && needComma_.back())
            os_ << ",";
        if (!needComma_.empty())
            needComma_.back() = true;
    }

    JsonWriter &open(char c)
    {
        comma();
        os_ << c;
        needComma_.push_back(false);
        return *this;
    }

    JsonWriter &close(char c)
    {
        QC_ASSERT(!needComma_.empty(), "unbalanced JSON nesting");
        needComma_.pop_back();
        os_ << c;
        return *this;
    }

    void writeString(const std::string &s)
    {
        os_ << '"';
        for (char c : s) {
            switch (c) {
              case '"': os_ << "\\\""; break;
              case '\\': os_ << "\\\\"; break;
              case '\n': os_ << "\\n"; break;
              case '\t': os_ << "\\t"; break;
              default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    os_ << "\\u" << std::hex << std::setw(4)
                        << std::setfill('0') << static_cast<int>(c)
                        << std::dec << std::setfill(' ');
                } else {
                    os_ << c;
                }
            }
        }
        os_ << '"';
    }

    std::ostream &os_;
    std::vector<bool> needComma_;
    bool pendingValue_ = false;
};

/** Path given via `--json PATH`, or empty when absent. */
inline std::string
jsonOutPath(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            if (i + 1 >= argc)
                QC_FATAL("--json requires a file path");
            return argv[i + 1];
        }
    }
    return "";
}

/** Open the --json output file, dying loudly on failure. */
inline std::ofstream
openJsonOut(const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        QC_FATAL("cannot open JSON output file ", path);
    return out;
}

} // namespace qc::bench

#endif // QC_BENCH_BENCH_JSON_HPP
