/**
 * @file
 * Figure 1 reproduction: daily variations in qubit coherence time
 * (T2, Fig. 1a) and CNOT gate error rate (Fig. 1b) over ~25
 * calibration days, for selected qubits and links, plus the summary
 * statistics quoted in Sec. 2.
 */

#include <vector>

#include "bench_util.hpp"
#include "support/stats.hpp"

using namespace qc;

int
main()
{
    const std::uint64_t seed = bench::benchSeed();
    bench::banner("Figure 1: daily calibration variation", seed);
    ExperimentEnv env(seed);
    const auto &model = env.calibrationModel();
    const auto &topo = env.topo();
    const int days = 25;

    // Fig. 1a: T2 of four representative qubits.
    const std::vector<HwQubit> track_qubits{0, 4, 9, 13};
    {
        std::vector<std::string> headers{"Day"};
        for (HwQubit q : track_qubits)
            headers.push_back("Q" + std::to_string(q) + " T2(us)");
        Table t(headers);
        for (int d = 0; d < days; ++d) {
            Calibration cal = model.forDay(d);
            std::vector<std::string> row{Table::fmt(
                static_cast<long long>(d))};
            for (HwQubit q : track_qubits)
                row.push_back(Table::fmt(cal.t2Us[q], 1));
            t.addRow(std::move(row));
        }
        std::cout << "Fig 1a: coherence time (T2) per day\n";
        t.print(std::cout);
    }

    // Fig. 1b: CNOT error of three representative links.
    const std::vector<std::pair<HwQubit, HwQubit>> track_edges{
        {4, 5}, {2, 10}, {13, 14}};
    {
        std::vector<std::string> headers{"Day"};
        for (auto [a, b] : track_edges)
            headers.push_back("CNOT " + std::to_string(a) + "," +
                              std::to_string(b));
        Table t(headers);
        for (int d = 0; d < days; ++d) {
            Calibration cal = model.forDay(d);
            std::vector<std::string> row{Table::fmt(
                static_cast<long long>(d))};
            for (auto [a, b] : track_edges) {
                EdgeId e = topo.edgeBetween(a, b);
                row.push_back(Table::fmt(cal.cnotError[e], 3));
            }
            t.addRow(std::move(row));
        }
        std::cout << "\nFig 1b: CNOT gate error rate per day\n";
        t.print(std::cout);
    }

    // Sec. 2 summary statistics (paper: T2 ~70us, up to 9.2x spread;
    // CNOT err 0.04, 9.0x; readout 0.07, 5.9x; 1q 0.002; CNOT
    // duration spread 1.8x).
    std::vector<double> t2, cx, ro, oneq, dur;
    for (int d = 0; d < days; ++d) {
        Calibration cal = model.forDay(d);
        t2.insert(t2.end(), cal.t2Us.begin(), cal.t2Us.end());
        cx.insert(cx.end(), cal.cnotError.begin(), cal.cnotError.end());
        ro.insert(ro.end(), cal.readoutError.begin(),
                  cal.readoutError.end());
        oneq.push_back(cal.oneQubitError);
        for (Timeslot x : cal.cnotDuration)
            dur.push_back(static_cast<double>(x));
    }
    Table s({"Metric", "Mean (paper)", "Mean (ours)", "Spread (paper)",
             "Spread (ours)"});
    s.addRow({"T2 (us)", "70", Table::fmt(mean(t2), 1), "9.2x",
              Table::fmt(spreadRatio(t2), 1) + "x"});
    s.addRow({"CNOT error", "0.04", Table::fmt(mean(cx), 3), "9.0x",
              Table::fmt(spreadRatio(cx), 1) + "x"});
    s.addRow({"Readout error", "0.07", Table::fmt(mean(ro), 3), "5.9x",
              Table::fmt(spreadRatio(ro), 1) + "x"});
    s.addRow({"1q gate error", "0.002", Table::fmt(mean(oneq), 4), "-",
              "-"});
    s.addRow({"CNOT duration", "-", Table::fmt(mean(dur), 1) + " slots",
              "1.8x", Table::fmt(spreadRatio(dur), 1) + "x"});
    std::cout << "\nSec. 2 calibration statistics\n";
    s.print(std::cout);
    return 0;
}
