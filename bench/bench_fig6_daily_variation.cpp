/**
 * @file
 * Figure 6 reproduction: success rate of BV4, HS6 and Toffoli over
 * one week of daily calibrations, recompiled each day with T-SMT*
 * and R-SMT*. R-SMT* should track the machine drift more resiliently.
 */

#include "bench_util.hpp"
#include "support/stats.hpp"

using namespace qc;

int
main()
{
    const std::uint64_t seed = bench::benchSeed();
    const int trials = bench::benchTrials();
    bench::banner("Figure 6: resilience to daily variations", seed);
    ExperimentEnv env(seed);

    const std::vector<std::string> names{"BV4", "HS6", "Toffoli"};
    CompilerOptions tsmt;
    tsmt.mapper = MapperKind::TSmtStar;
    tsmt.smtTimeoutMs = kBenchSmtTimeoutMs;
    CompilerOptions rsmt;
    rsmt.mapper = MapperKind::RSmtStar;
    rsmt.smtTimeoutMs = kBenchSmtTimeoutMs;

    std::vector<std::string> headers{"Day"};
    for (const auto &n : names) {
        headers.push_back(n + " T-SMT*");
        headers.push_back(n + " R-SMT*");
    }
    Table t(headers);

    std::vector<double> t_rates, r_rates;
    for (int day = 0; day < 7; ++day) {
        Machine m = env.machineForDay(day);
        std::vector<std::string> row{
            Table::fmt(static_cast<long long>(day))};
        for (const auto &n : names) {
            Benchmark b = benchmarkByName(n);
            auto rt = runMeasured(m, b, tsmt, trials, seed + day);
            auto rr = runMeasured(m, b, rsmt, trials, seed + day);
            t_rates.push_back(rt.execution.successRate);
            r_rates.push_back(rr.execution.successRate);
            row.push_back(Table::fmt(rt.execution.successRate));
            row.push_back(Table::fmt(rr.execution.successRate));
        }
        t.addRow(std::move(row));
    }
    t.print(std::cout);
    std::cout << "\nWeek means: T-SMT* " << Table::fmt(mean(t_rates))
              << ", R-SMT* " << Table::fmt(mean(r_rates))
              << " (paper: R-SMT* dominates every day)\n";
    return 0;
}
