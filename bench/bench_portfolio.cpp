/**
 * @file
 * Portfolio racing vs best-single-bundle (core/portfolio.hpp).
 *
 * For every Table 2 benchmark on three machines (the paper's 2x8
 * grid, a distance-3 heavy-hex, a 16-qubit ring) this bench compiles
 * the program two ways:
 *
 *   - sequential: every MapperKind bundle alone, one after another —
 *     what a user sweeping "which mapper should I use?" pays, and the
 *     oracle for the best single-bundle answer;
 *   - portfolio: one PortfolioPass race over the same bundles on a
 *     pool-backed executor, early-cancelling provable losers.
 *
 * The quality gate (CI perf-smoke, tools/bench_check.py against
 * bench/baselines/portfolio.json) is `tie_or_beat_count`: the
 * portfolio's predicted success must tie or beat the best single
 * bundle on EVERY instance — exact-match, since both sides race the
 * same deterministic pipelines. The wall-clock `race_speedup`
 * (sequential seconds / portfolio seconds) is reported, not gated:
 * it depends on runner core count, but the racing design target is
 * >= 2x on a multi-core host.
 *
 * QC_BENCH_SMT_TIMEOUT_MS (default 10000) bounds each Z3 solve and
 * doubles as the portfolio deadline, keeping the SMT budget identical
 * on both sides of the comparison.
 */

#include <chrono>
#include <cmath>

#include "bench_json.hpp"
#include "bench_util.hpp"
#include "core/portfolio.hpp"
#include "service/portfolio_executor.hpp"
#include "service/thread_pool.hpp"

using namespace qc;

namespace {

unsigned
smtTimeoutMs()
{
    if (const char *s = std::getenv("QC_BENCH_SMT_TIMEOUT_MS"))
        return static_cast<unsigned>(std::strtoul(s, nullptr, 10));
    return 10'000;
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

struct InstanceRow
{
    std::string name;        ///< "<topo>/<bench>"
    std::string singleBest;  ///< best single bundle's name
    std::string winner;      ///< portfolio winner's name
    double singlePsuccess = 0.0;
    double portfolioPsuccess = 0.0;
    int cancelled = 0;       ///< candidates early-cancelled in the race
    double sequentialS = 0.0;
    double portfolioS = 0.0;
    bool tieOrBeat = false;
};

} // namespace

int
main(int argc, char **argv)
{
    const std::uint64_t seed = bench::benchSeed();
    const std::string json_path = bench::jsonOutPath(argc, argv);
    const unsigned smt_ms = smtTimeoutMs();

    bench::banner("Portfolio racing vs best single bundle", seed);

    struct TopoCase { const char *label; Topology topo; };
    const std::vector<TopoCase> topos = {
        {"grid2x8", GridTopology::ibmq16()},
        {"heavyhex3", HeavyHexTopology(3)},
        {"ring16", RingTopology(16)},
    };

    service::ThreadPool pool;

    std::vector<InstanceRow> rows;
    for (const TopoCase &tc : topos) {
        CalibrationModel model(tc.topo, seed);
        auto machine = std::make_shared<const Machine>(
            tc.topo, model.forDay(0));

        CompilerOptions base;
        base.smtTimeoutMs = smt_ms;

        CompilerOptions racing = base;
        racing.portfolio.enabled = true; // empty bundle list = all 8
        racing.portfolio.deadlineMs = smt_ms;
        PortfolioPass pass(machine, racing);
        service::PoolPortfolioExecutor exec(pool);

        for (const Benchmark &b : paperBenchmarks()) {
            InstanceRow row;
            row.name = std::string(tc.label) + "/" + b.name;

            // Sequential sweep: each bundle alone, best kept under
            // the same comparator the portfolio uses (max predicted
            // success, earlier bundle wins ties).
            const auto t_seq = std::chrono::steady_clock::now();
            for (MapperKind kind : kAllMapperKinds) {
                CompilerOptions o = base;
                o.mapper = kind;
                PipelineResult r =
                    standardPipeline(machine, o).run(b.circuit);
                if (!r.hasProgram)
                    continue;
                if (row.singleBest.empty() ||
                    r.program.predictedSuccess > row.singlePsuccess) {
                    row.singleBest = mapperKindName(kind);
                    row.singlePsuccess = r.program.predictedSuccess;
                }
            }
            row.sequentialS = secondsSince(t_seq);

            const auto t_race = std::chrono::steady_clock::now();
            PortfolioResult raced = pass.run(b.circuit, &exec);
            row.portfolioS = secondsSince(t_race);

            QC_ASSERT(raced.ok(), "portfolio failed on ", row.name);
            row.winner =
                raced.candidates[static_cast<size_t>(raced.winnerIndex)]
                    .name;
            row.portfolioPsuccess =
                raced.best.program.predictedSuccess;
            row.cancelled = raced.cancelledCount;
            row.tieOrBeat =
                row.portfolioPsuccess >= row.singlePsuccess;
            rows.push_back(std::move(row));
        }
    }

    int tie_or_beat = 0;
    double seq_total = 0.0, race_total = 0.0;
    Table t({"Instance", "best single", "p", "portfolio winner", "p ",
             "cancelled", "seq (s)", "race (s)", "verdict"});
    for (const InstanceRow &r : rows) {
        if (r.tieOrBeat)
            ++tie_or_beat;
        seq_total += r.sequentialS;
        race_total += r.portfolioS;
        t.addRow({r.name, r.singleBest, Table::fmt(r.singlePsuccess),
                  r.winner, Table::fmt(r.portfolioPsuccess),
                  Table::fmt(static_cast<long long>(r.cancelled)),
                  Table::fmt(r.sequentialS, 3),
                  Table::fmt(r.portfolioS, 3),
                  r.tieOrBeat ? (r.portfolioPsuccess >
                                         r.singlePsuccess
                                     ? "improved"
                                     : "tie")
                              : "LOST"});
    }
    t.print(std::cout);

    const double speedup =
        race_total > 0.0 ? seq_total / race_total : 0.0;
    std::cout << "\nportfolio ties-or-beats the best single bundle on "
              << tie_or_beat << "/" << rows.size() << " instances\n"
              << "sequential all-bundles " << Table::fmt(seq_total, 2)
              << "s vs portfolio " << Table::fmt(race_total, 2)
              << "s — race speedup " << Table::fmt(speedup, 2)
              << "x (" << pool.numThreads() << " workers)\n";

    if (json_path.empty())
        return 0;

    std::ofstream out = bench::openJsonOut(json_path);
    bench::JsonWriter json(out);
    json.beginObject()
        .field("schema_version", 1)
        .field("bench", "bench_portfolio")
        .field("seed", seed)
        .field("smt_timeout_ms",
               static_cast<long long>(smt_ms))
        .key("entries")
        .beginArray();
    for (const InstanceRow &r : rows) {
        json.beginObject()
            .field("name", r.name)
            .field("single_best", r.singleBest)
            .field("winner", r.winner)
            .key("metrics")
            .beginObject()
            .field("portfolio_psuccess", r.portfolioPsuccess)
            .field("single_psuccess", r.singlePsuccess)
            .field("tie_or_beat_count", r.tieOrBeat ? 1 : 0)
            .field("sequential_s", r.sequentialS)
            .field("portfolio_s", r.portfolioS)
            .endObject()
            .endObject();
    }
    json.endArray()
        .key("totals")
        .beginObject()
        .field("tie_or_beat_count", tie_or_beat)
        .field("instance_count",
               static_cast<long long>(rows.size()))
        .field("race_speedup", speedup)
        .field("sequential_s", seq_total)
        .field("portfolio_s", race_total)
        .endObject()
        .endObject();
    out << "\n";
    std::cout << "wrote " << json_path << "\n";
    return 0;
}
