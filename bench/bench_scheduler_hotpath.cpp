/**
 * @file
 * Scheduling-stage hot-path benchmark: the indexed list scheduler
 * (ReservationLedger + incremental ready-queue) against the legacy
 * full-scan implementation (SchedulerOptions::referenceMode), on the
 * Table 2 set and on large random programs (16-400+ gates) across
 * machine sizes. Both implementations are run on every instance, the
 * schedules are verified identical (exit 1 on any divergence — the
 * CI perf job doubles as a correctness smoke), and per-instance wall
 * seconds, makespan and swap counts are reported.
 *
 * `--json out.json` additionally writes the machine-readable envelope
 * (bench/bench_json.hpp) that tools/bench_check.py gates CI on;
 * refresh bench/baselines/scheduler.json from this output after
 * intentional perf changes (see README "Performance").
 */

#include <chrono>
#include <cstdlib>

#include "bench_json.hpp"
#include "bench_util.hpp"
#include "machine/calibration_model.hpp"
#include "mappers/greedy_mapper.hpp"
#include "sched/list_scheduler.hpp"
#include "workloads/random_circuits.hpp"

using namespace qc;

namespace {

/** One benchmark instance: a circuit pinned to a machine + layout. */
struct Instance
{
    std::string name;
    std::string machineName;
    Topology topo;
    Circuit circuit;
    std::vector<HwQubit> layout;
    RoutingPolicy policy;
    int reps; ///< timing repetitions (more for tiny circuits)
};

struct Result
{
    double referenceSeconds = 0.0;
    double indexedSeconds = 0.0;
    Timeslot makespan = 0;
    int swaps = 0;
    bool identical = true;
};

std::vector<HwQubit>
scatterLayout(int n_prog, int n_hw)
{
    std::vector<HwQubit> layout(n_prog);
    for (int q = 0; q < n_prog; ++q)
        layout[q] = (q * 5) % n_hw; // injective: 5 coprime to 2^k
    return layout;
}

/** Dense workload CNOT mix (see makeDenseCnotCircuit). */
constexpr int kDenseCnotPermille = 600;

double
timeScheduler(const Machine &machine, const SchedulerOptions &opts,
              const Circuit &circuit,
              const std::vector<HwQubit> &layout, int reps,
              Schedule &last)
{
    ListScheduler scheduler(machine, opts);
    auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r)
        last = scheduler.run(circuit, layout);
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count() / reps;
}

Result
runInstance(const Instance &inst, std::uint64_t seed)
{
    CalibrationModel model(inst.topo, seed);
    Machine machine(inst.topo, model.forDay(0));

    SchedulerOptions opts;
    opts.policy = inst.policy;
    opts.select = RouteSelect::BestReliability;

    Result res;
    Schedule indexed, reference;
    opts.referenceMode = false;
    res.indexedSeconds = timeScheduler(machine, opts, inst.circuit,
                                       inst.layout, inst.reps, indexed);
    opts.referenceMode = true;
    res.referenceSeconds = timeScheduler(machine, opts, inst.circuit,
                                         inst.layout, inst.reps,
                                         reference);
    res.makespan = indexed.makespan;
    res.swaps = indexed.swapCount();
    res.identical = reference.identicalTo(indexed);
    return res;
}

std::vector<Instance>
buildInstances(std::uint64_t seed)
{
    std::vector<Instance> instances;

    // Table 2 set under the GreedyE* placement on the paper machine.
    {
        GridTopology topo = GridTopology::ibmq16();
        CalibrationModel model(topo, seed);
        Machine machine(topo, model.forDay(0));
        for (const Benchmark &b : paperBenchmarks()) {
            Instance inst{"table2/" + b.name,
                          topo.name(),
                          topo,
                          b.circuit,
                          greedyEdgePlacement(machine, b.circuit),
                          RoutingPolicy::OneBendPath,
                          200};
            instances.push_back(std::move(inst));
        }
    }

    // Random programs across gate counts and machine sizes (the
    // paper's Sec. 6 scalability axis: 16-400 gates here, uniform
    // 1-in-7 CNOT mix plus dense 60%-CNOT stress variants).
    struct RandomSpec
    {
        int rows, cols, qubits, gates, reps;
        bool dense;
        RoutingPolicy policy;
    };
    const RandomSpec specs[] = {
        {2, 8, 8, 16, 400, false, RoutingPolicy::OneBendPath},
        {2, 8, 12, 100, 100, false, RoutingPolicy::OneBendPath},
        {2, 8, 16, 200, 40, false, RoutingPolicy::OneBendPath},
        {2, 8, 16, 200, 40, true, RoutingPolicy::OneBendPath},
        {2, 8, 16, 400, 20, true, RoutingPolicy::RectangleReservation},
        {4, 8, 24, 200, 30, true, RoutingPolicy::OneBendPath},
        {4, 8, 32, 400, 10, true, RoutingPolicy::OneBendPath},
        {8, 8, 48, 400, 8, true, RoutingPolicy::OneBendPath},
        {8, 8, 64, 400, 5, true, RoutingPolicy::RectangleReservation},
        // Daily-recompilation scale: the reference scan's cost grows
        // quadratically in committed reservations, so these are the
        // entries the CI speedup gate actually watches.
        {2, 8, 16, 2000, 10, true, RoutingPolicy::OneBendPath},
        {4, 8, 32, 2000, 8, true, RoutingPolicy::OneBendPath},
        {8, 8, 64, 1500, 8, true, RoutingPolicy::OneBendPath},
        {8, 8, 64, 3000, 6, true, RoutingPolicy::RectangleReservation},
    };
    for (const RandomSpec &s : specs) {
        GridTopology topo(s.rows, s.cols);
        Circuit circuit =
            s.dense ? makeDenseCnotCircuit(s.qubits, s.gates, seed,
                                           kDenseCnotPermille)
                    : makeRandomCircuit({s.qubits, s.gates, seed, true});
        std::string name =
            std::string(s.dense ? "dense" : "random") + "/" +
            topo.name() + "_q" + std::to_string(s.qubits) + "_g" +
            std::to_string(s.gates) + "_" +
            routingPolicyName(s.policy);
        Instance inst{std::move(name),
                      topo.name(),
                      topo,
                      std::move(circuit),
                      scatterLayout(s.qubits, topo.numQubits()),
                      s.policy,
                      s.reps};
        instances.push_back(std::move(inst));
    }

    // Non-grid machines through the same per-qubit ledger: heavy-hex
    // (IBM-style lattice) at two scales plus a ring, so the
    // rebucketing is regression-gated off the grid too.
    struct NonGridSpec
    {
        const char *spec;
        int qubits, gates, reps;
    };
    const NonGridSpec ng_specs[] = {
        {"heavyhex:3", 16, 400, 20},
        {"heavyhex:5", 48, 1500, 8},
        {"ring:16", 16, 1000, 10},
    };
    for (const NonGridSpec &s : ng_specs) {
        Topology topo = topologyFromSpec(s.spec);
        Circuit circuit = makeDenseCnotCircuit(s.qubits, s.gates, seed,
                                               kDenseCnotPermille);
        // Stride-7 scatter: coprime to every lattice size above (18,
        // 55, 16), so the layout stays injective.
        std::vector<HwQubit> layout(s.qubits);
        for (int q = 0; q < s.qubits; ++q)
            layout[q] = (q * 7) % topo.numQubits();
        std::string name = "dense/" + topo.name() + "_q" +
                           std::to_string(s.qubits) + "_g" +
                           std::to_string(s.gates) + "_1BP";
        Instance inst{std::move(name),
                      topo.name(),
                      topo,
                      std::move(circuit),
                      std::move(layout),
                      RoutingPolicy::OneBendPath,
                      s.reps};
        instances.push_back(std::move(inst));
    }
    return instances;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::uint64_t seed = bench::benchSeed();
    const std::string json_path = bench::jsonOutPath(argc, argv);

    std::cout << "=== Scheduler hot path: indexed vs reference scan "
                 "===\nseed "
              << seed << "\n\n";

    std::vector<Instance> instances = buildInstances(seed);
    std::vector<Result> results;
    results.reserve(instances.size());

    Table t({"Instance", "gates", "ref s/run", "idx s/run", "speedup",
             "makespan", "swaps", "identical"});
    double total_ref = 0.0, total_idx = 0.0;
    bool all_identical = true;
    for (const Instance &inst : instances) {
        Result r = runInstance(inst, seed);
        total_ref += r.referenceSeconds;
        total_idx += r.indexedSeconds;
        all_identical = all_identical && r.identical;
        t.addRow({inst.name,
                  Table::fmt(static_cast<long long>(
                      inst.circuit.size())),
                  Table::fmt(r.referenceSeconds),
                  Table::fmt(r.indexedSeconds),
                  Table::fmt(r.referenceSeconds /
                             std::max(r.indexedSeconds, 1e-12)),
                  Table::fmt(static_cast<long long>(r.makespan)),
                  Table::fmt(static_cast<long long>(r.swaps)),
                  r.identical ? "yes" : "NO"});
        results.push_back(r);
    }
    t.print(std::cout);
    std::cout << "\ntotal scheduling seconds/run: reference "
              << total_ref << ", indexed " << total_idx
              << " (speedup "
              << total_ref / std::max(total_idx, 1e-12) << "x)\n";
    if (!all_identical)
        std::cout << "ERROR: indexed scheduler diverged from the "
                     "reference scan\n";

    if (!json_path.empty()) {
        std::ofstream out = bench::openJsonOut(json_path);
        bench::JsonWriter w(out);
        w.beginObject()
            .field("schema_version", 1)
            .field("bench", "scheduler_hotpath")
            .field("seed", seed);
        w.key("entries").beginArray();
        for (size_t i = 0; i < instances.size(); ++i) {
            const Instance &inst = instances[i];
            const Result &r = results[i];
            w.beginObject()
                .field("name", inst.name)
                .field("machine", inst.machineName)
                .field("qubits", inst.circuit.numQubits())
                .field("gates",
                       static_cast<long long>(inst.circuit.size()))
                .field("policy", routingPolicyName(inst.policy))
                .field("reps", inst.reps);
            w.key("metrics")
                .beginObject()
                .field("reference_s", r.referenceSeconds)
                .field("indexed_s", r.indexedSeconds)
                .field("speedup",
                       r.referenceSeconds /
                           std::max(r.indexedSeconds, 1e-12))
                .field("makespan", static_cast<long long>(r.makespan))
                .field("swaps", r.swaps)
                .field("identical", r.identical ? 1 : 0)
                .endObject();
            w.endObject();
        }
        w.endArray();
        w.key("totals")
            .beginObject()
            .field("reference_s", total_ref)
            .field("indexed_s", total_idx)
            .field("speedup", total_ref / std::max(total_idx, 1e-12))
            .endObject();
        w.endObject();
        out << "\n";
        std::cout << "wrote " << json_path << "\n";
    }

    return all_identical ? 0 : 1;
}
