/**
 * @file
 * Google-benchmark microbenchmarks for the library's primitives:
 * statevector gate application, Monte-Carlo trial throughput,
 * machine-table construction, scheduling and greedy mapping.
 */

#include <benchmark/benchmark.h>

#include "core/experiment.hpp"
#include "mappers/greedy_mapper.hpp"
#include "solver/bnb_placer.hpp"
#include "workloads/random_circuits.hpp"

namespace {

using namespace qc;

const std::uint64_t kSeed = 20190131;

const ExperimentEnv &
env()
{
    static ExperimentEnv e(kSeed);
    return e;
}

void
BM_StatevectorHadamards(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    Statevector sv(n);
    for (auto _ : state) {
        for (int q = 0; q < n; ++q)
            sv.apply({Op::H, q, kInvalidQubit, -1});
        benchmark::DoNotOptimize(sv.amp(0));
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_StatevectorHadamards)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void
BM_StatevectorCnotLadder(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    Statevector sv(n);
    sv.apply({Op::H, 0, kInvalidQubit, -1});
    for (auto _ : state) {
        for (int q = 0; q + 1 < n; ++q)
            sv.apply({Op::CNOT, q, q + 1, -1});
        benchmark::DoNotOptimize(sv.amp(0));
    }
    state.SetItemsProcessed(state.iterations() * (n - 1));
}
BENCHMARK(BM_StatevectorCnotLadder)->Arg(8)->Arg(16);

void
BM_MonteCarloTrialBv4(benchmark::State &state)
{
    Machine m = env().machineForDay(0);
    Benchmark b = benchmarkByName("BV4");
    GreedyEMapper mapper(m);
    CompiledProgram cp = mapper.compile(b.circuit);
    std::uint64_t seed = 0;
    for (auto _ : state) {
        ExecutionOptions opts;
        opts.trials = 1;
        opts.seed = ++seed;
        auto r = runNoisy(m, cp.schedule, b.circuit.numClbits(),
                          b.expected, opts);
        benchmark::DoNotOptimize(r.successes);
    }
}
BENCHMARK(BM_MonteCarloTrialBv4);

void
BM_MachineConstruction(benchmark::State &state)
{
    Calibration cal = env().calibrationModel().forDay(0);
    for (auto _ : state) {
        Machine m(env().topo(), cal);
        benchmark::DoNotOptimize(m.bestPathReliability(0, 15));
    }
}
BENCHMARK(BM_MachineConstruction);

void
BM_ListSchedulerAdder(benchmark::State &state)
{
    Machine m = env().machineForDay(0);
    Benchmark b = benchmarkByName("Adder");
    ListScheduler sched(m, {});
    std::vector<HwQubit> layout{2, 1, 9, 10};
    for (auto _ : state) {
        Schedule s = sched.run(b.circuit, layout);
        benchmark::DoNotOptimize(s.makespan);
    }
}
BENCHMARK(BM_ListSchedulerAdder);

void
BM_GreedyEMapRandom(benchmark::State &state)
{
    const int qubits = static_cast<int>(state.range(0));
    GridTopology topo(qubits <= 16 ? 2 : 4, qubits <= 16 ? 8 : 8);
    CalibrationModel model(topo, kSeed);
    Machine m(topo, model.forDay(0));
    RandomCircuitSpec spec;
    spec.numQubits = qubits;
    spec.numGates = 256;
    spec.seed = kSeed;
    Circuit prog = makeRandomCircuit(spec);
    GreedyEMapper mapper(m);
    for (auto _ : state) {
        CompiledProgram cp = mapper.compile(prog);
        benchmark::DoNotOptimize(cp.duration);
    }
}
BENCHMARK(BM_GreedyEMapRandom)->Arg(8)->Arg(16)->Arg(32);

void
BM_BnbPlacerBenchmarks(benchmark::State &state)
{
    Machine m = env().machineForDay(0);
    auto all = paperBenchmarks();
    const Benchmark &b = all[static_cast<size_t>(state.range(0))];
    state.SetLabel(b.name);
    for (auto _ : state) {
        BnbPlacer placer(m, b.circuit);
        BnbResult r = placer.solve();
        benchmark::DoNotOptimize(r.objective);
    }
}
BENCHMARK(BM_BnbPlacerBenchmarks)->Arg(0)->Arg(2)->Arg(5)->Arg(11);

} // namespace

BENCHMARK_MAIN();
