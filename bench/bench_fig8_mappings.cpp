/**
 * @file
 * Figure 8 reproduction: the BV4 qubit mappings chosen by Qiskit,
 * T-SMT*, R-SMT*(w=1) and R-SMT*(w=0.5) on one calibration day,
 * rendered as annotated 2x8 grids with per-mapping SWAP counts and
 * predicted reliability.
 */

#include <iomanip>
#include <sstream>

#include "bench_util.hpp"

using namespace qc;

namespace {

/** Render a layout over the 2x8 grid with readout errors. */
void
renderMapping(const Machine &m, const CompiledProgram &cp)
{
    const auto &topo = m.topo();
    std::vector<std::string> cell(topo.numQubits());
    for (int h = 0; h < topo.numQubits(); ++h) {
        std::ostringstream oss;
        oss << std::setprecision(0) << std::fixed
            << m.cal().readoutError[h] * 100.0;
        cell[h] = "." + oss.str();
    }
    for (size_t p = 0; p < cp.layout.size(); ++p)
        cell[cp.layout[p]] = "p" + std::to_string(p);

    std::cout << cp.mapperName << ": swaps=" << cp.swapCount
              << " predicted success=" << Table::fmt(
                     cp.predictedSuccess)
              << " duration=" << cp.duration << " slots\n";
    for (int x = 0; x < topo.rows(); ++x) {
        std::cout << "  ";
        for (int y = 0; y < topo.cols(); ++y) {
            std::cout << std::setw(5)
                      << cell[topo.qubitAt(x, y)];
        }
        std::cout << "\n";
    }
    std::cout << "  (pN = program qubit N; .E = unused qubit's "
                 "readout error x100)\n";
    // CNOT edge errors along the bottom for context.
    std::cout << "  layout: ";
    for (size_t p = 0; p < cp.layout.size(); ++p)
        std::cout << "p" << p << "->Q" << cp.layout[p] << " ";
    std::cout << "\n\n";
}

} // namespace

int
main()
{
    const std::uint64_t seed = bench::benchSeed();
    bench::banner("Figure 8: BV4 mappings by objective", seed);
    ExperimentEnv env(seed);
    Machine m = env.machineForDay(0);
    Benchmark b = benchmarkByName("BV4");

    std::vector<CompilerOptions> configs(4);
    configs[0].mapper = MapperKind::Qiskit;
    configs[1].mapper = MapperKind::TSmtStar;
    configs[2].mapper = MapperKind::RSmtStar;
    configs[2].readoutWeight = 1.0;
    configs[3].mapper = MapperKind::RSmtStar;
    configs[3].readoutWeight = 0.5;
    for (auto &c : configs)
        c.smtTimeoutMs = kBenchSmtTimeoutMs;

    for (const auto &c : configs) {
        auto mapper = NoiseAdaptiveCompiler::makeMapper(m, c);
        CompiledProgram cp = mapper->compile(b.circuit);
        renderMapping(m, cp);
    }

    std::cout << "Paper shape: Qiskit needs SWAPs and lands on poor "
                 "readout qubits;\nT-SMT* avoids SWAPs but may use an "
                 "unreliable CNOT; R-SMT*(w=1) chases\nreadout only; "
                 "R-SMT*(w=0.5) balances CNOT+readout reliability.\n";
    return 0;
}
