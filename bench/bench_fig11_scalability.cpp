/**
 * @file
 * Figure 11 reproduction: compile time of R-SMT* vs GreedyE* on
 * random programs swept over qubit count x gate count (paper: 4-128
 * qubits, 128-2048 gates). The SMT curve explodes with size (the
 * paper reports up to 3 hours at 32 qubits x 384 gates); we cap each
 * solve with a wall-clock budget and report time-to-best, preserving
 * the scalability trend. GreedyE* stays under a second everywhere.
 */

#include "bench_util.hpp"
#include "workloads/random_circuits.hpp"

using namespace qc;

namespace {

/** Smallest even-ish grid of >= n qubits (paper-style machines). */
GridTopology
gridFor(int qubits)
{
    if (qubits <= 4)
        return GridTopology(2, 2);
    if (qubits <= 8)
        return GridTopology(2, 4);
    if (qubits <= 16)
        return GridTopology(2, 8);
    if (qubits <= 32)
        return GridTopology(4, 8);
    if (qubits <= 64)
        return GridTopology(8, 8);
    return GridTopology(8, 16);
}

} // namespace

int
main()
{
    const std::uint64_t seed = bench::benchSeed();
    bench::banner("Figure 11: compile-time scalability", seed);
    // SMT budget per point; override via QC_BENCH_SMT_BUDGET_MS.
    unsigned smt_budget = 10'000;
    if (const char *s = std::getenv("QC_BENCH_SMT_BUDGET_MS"))
        smt_budget = static_cast<unsigned>(std::atoi(s));

    struct Point
    {
        int qubits;
        int gates;
        bool runSmt;
    };
    const std::vector<Point> points{
        {4, 128, true},   {4, 512, true},   {8, 128, true},
        {8, 512, true},   {8, 1024, false}, {16, 256, true},
        {32, 384, true},  {32, 1024, false}, {64, 1024, false},
        {128, 2048, false},
    };

    Table t({"Qubits", "Gates", "GreedyE* (s)", "R-SMT* (s)",
             "R-SMT* proved optimal"});
    for (const auto &p : points) {
        GridTopology topo = gridFor(p.qubits);
        CalibrationModel model(topo, seed);
        Machine m(topo, model.forDay(0));

        RandomCircuitSpec spec;
        spec.numQubits = p.qubits;
        spec.numGates = p.gates;
        spec.seed = seed;
        Circuit prog = makeRandomCircuit(spec);

        CompilerOptions greedy;
        greedy.mapper = MapperKind::GreedyE;
        auto gm = NoiseAdaptiveCompiler::makeMapper(m, greedy);
        CompiledProgram gcp = gm->compile(prog);

        std::string smt_time = "-";
        std::string smt_opt = "skipped (budget)";
        if (p.runSmt) {
            CompilerOptions rsmt;
            rsmt.mapper = MapperKind::RSmtStar;
            rsmt.smtTimeoutMs = smt_budget;
            auto rm = NoiseAdaptiveCompiler::makeMapper(m, rsmt);
            CompiledProgram rcp = rm->compile(prog);
            smt_time = Table::fmt(rcp.compileSeconds, 2);
            smt_opt = rcp.solverOptimal ? "yes"
                                        : "no (capped at " +
                                              Table::fmt(
                                                  smt_budget / 1000.0,
                                                  0) +
                                              "s)";
        }
        t.addRow({Table::fmt(static_cast<long long>(p.qubits)),
                  Table::fmt(static_cast<long long>(p.gates)),
                  Table::fmt(gcp.compileSeconds, 4), smt_time,
                  smt_opt});
    }
    t.print(std::cout);
    std::cout << "\nPaper shape: SMT compile time grows by orders of "
                 "magnitude with size\n(3 hours at 32q x 384g on their "
                 "setup); greedy stays under one second.\nLarge SMT "
                 "points are wall-clock capped here (DESIGN.md, Known "
                 "deviations).\n";
    return 0;
}
