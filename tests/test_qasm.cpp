/**
 * @file
 * OpenQASM emitter/parser tests, including round-trips over every
 * benchmark and hardware-level circuits with SWAP expansion.
 */

#include <gtest/gtest.h>

#include "ir/qasm.hpp"
#include "sim/executor.hpp"
#include "support/logging.hpp"
#include "workloads/benchmarks.hpp"

namespace qc {
namespace {

TEST(QasmEmit, Preamble)
{
    Circuit c("demo", 2);
    c.h(0);
    c.cnot(0, 1);
    c.measure(1, 1);
    std::string q = emitQasm(c);
    EXPECT_NE(q.find("OPENQASM 2.0;"), std::string::npos);
    EXPECT_NE(q.find("qreg q[2];"), std::string::npos);
    EXPECT_NE(q.find("creg c[2];"), std::string::npos);
    EXPECT_NE(q.find("h q[0];"), std::string::npos);
    EXPECT_NE(q.find("cx q[0],q[1];"), std::string::npos);
    EXPECT_NE(q.find("measure q[1] -> c[1];"), std::string::npos);
}

TEST(QasmEmit, SwapExpandsToThreeCnots)
{
    Circuit c("swp", 2);
    c.swap(0, 1);
    std::string q = emitQasm(c);
    EXPECT_NE(q.find("cx q[0],q[1];\ncx q[1],q[0];\ncx q[0],q[1];"),
              std::string::npos);
    EXPECT_EQ(q.find("swap"), std::string::npos);
}

TEST(QasmParse, RoundTripSimple)
{
    Circuit c("demo", 3);
    c.h(0);
    c.t(1);
    c.sdg(2);
    c.cnot(0, 2);
    c.measure(0, 0);
    Circuit back = parseQasm(emitQasm(c));
    ASSERT_EQ(back.size(), c.size());
    for (size_t i = 0; i < c.size(); ++i)
        EXPECT_TRUE(back.gate(i) == c.gate(i));
    EXPECT_EQ(back.numQubits(), 3);
    EXPECT_EQ(back.numClbits(), 3);
}

TEST(QasmParse, Errors)
{
    EXPECT_THROW(parseQasm("h q[0];"), FatalError);          // no qreg
    EXPECT_THROW(parseQasm("qreg q[2]; bogus q[0];"), FatalError);
    EXPECT_THROW(parseQasm("qreg q[2]; cx q[0];"), FatalError);
    EXPECT_THROW(parseQasm("qreg q[2]; h q[0]"), FatalError); // no ';'
}

TEST(QasmParse, OversizedIndexIsParseDiagnosticWithLineNumber)
{
    // q[99999999999] overflows int: that must be a QASM parse
    // diagnostic naming the line, not std::out_of_range escaping
    // from std::stoi.
    try {
        parseQasm("OPENQASM 2.0;\nqreg q[4];\nh q[99999999999];\n");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("qasm line 3"), std::string::npos) << msg;
        EXPECT_NE(msg.find("99999999999"), std::string::npos) << msg;
        EXPECT_NE(msg.find("out of range"), std::string::npos) << msg;
    }

    // The same guard covers register declarations, and the largest
    // representable index still parses (range check, not a cap).
    EXPECT_THROW(parseQasm("qreg q[99999999999];"), FatalError);
    EXPECT_EQ(parseQasm("qreg q[2147483647];").numQubits(),
              2147483647);
}

TEST(QasmParse, CommentsAndBarriersIgnored)
{
    Circuit c = parseQasm("// header\nOPENQASM 2.0;\nqreg q[2];\n"
                          "barrier q[0];\nh q[1]; // trailing\n");
    EXPECT_EQ(c.size(), 1u);
    EXPECT_EQ(c.gate(0).op, Op::H);
    EXPECT_EQ(c.gate(0).q0, 1);
}

class QasmRoundTrip : public ::testing::TestWithParam<std::string>
{
};

TEST_P(QasmRoundTrip, BenchmarkSurvivesRoundTrip)
{
    Benchmark b = benchmarkByName(GetParam());
    Circuit back = parseQasm(emitQasm(b.circuit), b.name);
    ASSERT_EQ(back.size(), b.circuit.size());
    for (size_t i = 0; i < back.size(); ++i)
        EXPECT_TRUE(back.gate(i) == b.circuit.gate(i)) << "gate " << i;
}

TEST_P(QasmRoundTrip, RoundTripPreservesSemantics)
{
    Benchmark b = benchmarkByName(GetParam());
    Circuit back = parseQasm(emitQasm(b.circuit), b.name);
    EXPECT_EQ(idealOutcome(back), b.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Paper, QasmRoundTrip,
    ::testing::Values("BV4", "BV6", "BV8", "HS2", "HS4", "HS6", "Toffoli",
                      "Fredkin", "Or", "Peres", "QFT", "Adder"));

} // namespace
} // namespace qc
