/**
 * @file
 * Live-tracking router tests: semantic preservation without restore
 * SWAPs, layout evolution, SWAP savings vs the restore scheme, and
 * the GreedyE*+track mapper.
 */

#include <gtest/gtest.h>

#include "mappers/greedy_mapper.hpp"
#include "sched/tracking_router.hpp"
#include "test_util.hpp"

namespace qc {
namespace {

using test::day0;
using test::expectScheduleWellFormed;
using test::noiselessOptions;

class TrackingAllBenchmarks
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(TrackingAllBenchmarks, PreservesSemantics)
{
    Machine m = day0();
    Benchmark b = benchmarkByName(GetParam());
    std::vector<HwQubit> layout = greedyEdgePlacement(m, b.circuit);

    TrackingRouter router(m);
    TrackingResult r = router.run(b.circuit, layout);
    expectScheduleWellFormed(m, r.schedule);

    auto ideal = runNoisy(m, r.schedule, b.circuit.numClbits(),
                          b.expected, noiselessOptions());
    EXPECT_DOUBLE_EQ(ideal.successRate, 1.0)
        << GetParam() << " mis-routed by the tracking router";
}

TEST_P(TrackingAllBenchmarks, FinalLayoutIsValidPermutation)
{
    Machine m = day0();
    Benchmark b = benchmarkByName(GetParam());
    TrackingRouter router(m);
    TrackingResult r =
        router.run(b.circuit, greedyEdgePlacement(m, b.circuit));
    validateLayout(r.finalLayout, b.circuit.numQubits(),
                   m.numQubits());
}

INSTANTIATE_TEST_SUITE_P(
    Paper, TrackingAllBenchmarks,
    ::testing::Values("BV4", "BV6", "BV8", "HS2", "HS4", "HS6", "Toffoli",
                      "Fredkin", "Or", "Peres", "QFT", "Adder"));

TEST(TrackingRouter, NoSwapsWhenAdjacent)
{
    Machine m = day0();
    Circuit c("pair", 2);
    c.h(0);
    c.cnot(0, 1);
    c.measure(1, 1);
    TrackingRouter router(m);
    TrackingResult r = router.run(c, {0, 1});
    EXPECT_EQ(r.swapCount, 0);
    EXPECT_EQ(r.finalLayout, (std::vector<HwQubit>{0, 1}));
}

TEST(TrackingRouter, OneWaySwapChainMovesTheControl)
{
    Machine m = day0();
    Circuit c("far", 2);
    c.cnot(0, 1);
    TrackingRouter router(m);
    HwQubit a = m.topo().qubitAt(0, 0);
    HwQubit b = m.topo().qubitAt(0, 3);
    TrackingResult r = router.run(c, {a, b});
    // Forward-only: hops-1 swaps, no restore (the Dijkstra path may
    // legitimately be longer than the grid distance).
    EXPECT_GE(r.swapCount, m.topo().distance(a, b) - 1);
    EXPECT_EQ(r.schedule.swapCount(), r.swapCount);
    // The control drifted next to the target.
    EXPECT_TRUE(m.topo().adjacent(r.finalLayout[0], r.finalLayout[1]));
    EXPECT_EQ(r.finalLayout[1], b); // target never moves
}

TEST(TrackingRouter, UsesFewerSwapsThanRestoreRouting)
{
    Machine m = day0();
    Benchmark b = benchmarkByName("Toffoli");
    std::vector<HwQubit> layout = greedyEdgePlacement(m, b.circuit);

    TrackingRouter tracker(m);
    TrackingResult tracked = tracker.run(b.circuit, layout);

    SchedulerOptions restore_opts;
    restore_opts.select = RouteSelect::Dijkstra;
    ListScheduler restorer(m, restore_opts);
    Schedule restored = restorer.run(b.circuit, layout);

    EXPECT_LE(tracked.swapCount, restored.swapCount());
}

TEST(TrackingRouter, MeasuresFollowTheLiveLayout)
{
    // After a routed CNOT drifts the control, its later measurement
    // must read the drifted location, not the original one.
    Machine m = day0();
    Circuit c("drift", 2);
    c.x(0);
    c.cnot(0, 1);
    c.measure(0, 0);
    c.measure(1, 1);
    HwQubit a = m.topo().qubitAt(0, 0);
    HwQubit b = m.topo().qubitAt(0, 4);
    TrackingRouter router(m);
    TrackingResult r = router.run(c, {a, b});

    auto ideal = runNoisy(m, r.schedule, 2, "11", noiselessOptions());
    EXPECT_DOUBLE_EQ(ideal.successRate, 1.0);
}

TEST(TrackingRouter, OneBendPathOption)
{
    Machine m = day0();
    Benchmark b = benchmarkByName("Fredkin");
    TrackingOptions opts;
    opts.dijkstraPaths = false;
    TrackingRouter router(m, opts);
    TrackingResult r =
        router.run(b.circuit, greedyEdgePlacement(m, b.circuit));
    auto ideal = runNoisy(m, r.schedule, b.circuit.numClbits(),
                          b.expected, noiselessOptions());
    EXPECT_DOUBLE_EQ(ideal.successRate, 1.0);
}

TEST(TrackingRouter, RejectsProgramSwapAndBadLayout)
{
    Machine m = day0();
    Circuit c("bad", 2);
    c.swap(0, 1);
    TrackingRouter router(m);
    EXPECT_THROW(router.run(c, {0, 1}), FatalError);
    Circuit ok("ok", 2);
    ok.h(0);
    EXPECT_THROW(router.run(ok, {0, 0}), FatalError);
}

TEST(GreedyETrackMapper, CompilesAndPredicts)
{
    Machine m = day0();
    Benchmark b = benchmarkByName("Fredkin");
    GreedyETrackMapper mapper(m);
    CompiledProgram cp = mapper.compile(b.circuit);
    EXPECT_EQ(cp.mapperName, "GreedyE*+track");
    EXPECT_GT(cp.predictedSuccess, 0.0);
    EXPECT_LE(cp.predictedSuccess, 1.0);
    expectScheduleWellFormed(m, cp.schedule);

    auto ideal = runNoisy(m, cp.schedule, b.circuit.numClbits(),
                          b.expected, noiselessOptions());
    EXPECT_DOUBLE_EQ(ideal.successRate, 1.0);
}

TEST(GreedyETrackMapper, AvailableThroughTheFacade)
{
    EXPECT_EQ(mapperKindFromName("GreedyE*+track"),
              MapperKind::GreedyETrack);
    Machine m = day0();
    CompilerOptions opts;
    opts.mapper = MapperKind::GreedyETrack;
    auto mapper = NoiseAdaptiveCompiler::makeMapper(m, opts);
    EXPECT_EQ(mapper->name(), "GreedyE*+track");
}

} // namespace
} // namespace qc
