/**
 * @file
 * Unit tests for the support library: RNG determinism, statistics
 * helpers, the table printer and error reporting.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "support/logging.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace qc {
namespace {

TEST(Rng, SameSeedSameStream)
{
    Rng a(42, "stream");
    Rng b(42, "stream");
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentStreamsDecorrelate)
{
    Rng a(42, "alpha");
    Rng b(42, "beta");
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        if (a.uniform() == b.uniform())
            ++equal;
    EXPECT_LT(equal, 4);
}

TEST(Rng, UniformRanges)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        double v = rng.uniform(2.0, 5.0);
        EXPECT_GE(v, 2.0);
        EXPECT_LT(v, 5.0);
        int k = rng.uniformInt(3, 9);
        EXPECT_GE(k, 3);
        EXPECT_LE(k, 9);
    }
}

TEST(Rng, LognormalClamped)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.lognormalClamped(0.04, 0.6, 0.01, 0.35);
        EXPECT_GE(v, 0.01);
        EXPECT_LE(v, 0.35);
    }
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(3);
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, NormalMoments)
{
    Rng rng(5);
    std::vector<double> xs;
    for (int i = 0; i < 20000; ++i)
        xs.push_back(rng.normal(10.0, 2.0));
    EXPECT_NEAR(mean(xs), 10.0, 0.1);
    EXPECT_NEAR(stddev(xs), 2.0, 0.1);
}

TEST(Stats, MeanAndMedian)
{
    EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(median({5, 1, 3}), 3.0);
    EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
}

TEST(Stats, Geomean)
{
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-12);
}

TEST(Stats, SpreadRatio)
{
    EXPECT_NEAR(spreadRatio({10.0, 20.0, 92.0}), 9.2, 1e-12);
    EXPECT_DOUBLE_EQ(spreadRatio({}), 1.0);
}

TEST(Stats, MinMax)
{
    EXPECT_DOUBLE_EQ(minOf({3.0, -1.0, 2.0}), -1.0);
    EXPECT_DOUBLE_EQ(maxOf({3.0, -1.0, 2.0}), 3.0);
}

TEST(Stats, BinomialHalfWidth)
{
    // 50% at n=100 ~ +/- 9.8%.
    EXPECT_NEAR(binomialHalfWidth(0.5, 100), 0.098, 0.001);
    // Shrinks with more trials.
    EXPECT_LT(binomialHalfWidth(0.5, 8192), binomialHalfWidth(0.5, 100));
    EXPECT_DOUBLE_EQ(binomialHalfWidth(0.5, 0), 1.0);
}

TEST(Table, FormatsAlignedColumns)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    std::ostringstream oss;
    t.print(oss);
    std::string s = oss.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("-----"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(Table, FmtHelpers)
{
    EXPECT_EQ(Table::fmt(0.12345, 3), "0.123");
    EXPECT_EQ(Table::fmt(static_cast<long long>(42)), "42");
}

TEST(Logging, FatalThrows)
{
    EXPECT_THROW(QC_FATAL("bad config ", 42), FatalError);
    try {
        QC_FATAL("value was ", 7);
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("value was 7"),
                  std::string::npos);
    }
}

} // namespace
} // namespace qc
