/**
 * @file
 * Random-circuit generator tests: determinism, gate-set membership,
 * qubit coverage and spec validation.
 */

#include <gtest/gtest.h>

#include "support/logging.hpp"
#include "workloads/random_circuits.hpp"

namespace qc {
namespace {

TEST(RandomCircuits, Deterministic)
{
    RandomCircuitSpec spec;
    spec.numQubits = 8;
    spec.numGates = 256;
    spec.seed = 99;
    Circuit a = makeRandomCircuit(spec);
    Circuit b = makeRandomCircuit(spec);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_TRUE(a.gate(i) == b.gate(i));

    spec.seed = 100;
    Circuit c = makeRandomCircuit(spec);
    bool any_diff = c.size() != a.size();
    for (size_t i = 0; !any_diff && i < a.size(); ++i)
        any_diff = !(a.gate(i) == c.gate(i));
    EXPECT_TRUE(any_diff);
}

class RandomSpecs
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(RandomSpecs, CountsAndCoverage)
{
    auto [qubits, gates] = GetParam();
    RandomCircuitSpec spec;
    spec.numQubits = qubits;
    spec.numGates = gates;
    spec.seed = 7;
    Circuit c = makeRandomCircuit(spec);
    EXPECT_EQ(c.gateCount(), gates);
    EXPECT_EQ(c.measureCount(), qubits);
    for (int q = 0; q < qubits; ++q)
        EXPECT_TRUE(c.usesQubit(q)) << "qubit " << q << " unused";
}

TEST_P(RandomSpecs, GateSetIsUniversalSet)
{
    auto [qubits, gates] = GetParam();
    RandomCircuitSpec spec;
    spec.numQubits = qubits;
    spec.numGates = gates;
    spec.seed = 13;
    Circuit c = makeRandomCircuit(spec);
    for (const auto &g : c.gates()) {
        switch (g.op) {
          case Op::H:
          case Op::X:
          case Op::Y:
          case Op::Z:
          case Op::S:
          case Op::T:
          case Op::Measure:
            break;
          case Op::CNOT:
            EXPECT_NE(g.q0, g.q1);
            break;
          default:
            FAIL() << "unexpected op " << opName(g.op);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomSpecs,
                         ::testing::Values(std::pair{4, 128},
                                           std::pair{8, 256},
                                           std::pair{16, 512},
                                           std::pair{32, 384},
                                           std::pair{128, 2048}));

TEST(RandomCircuits, NoMeasureOption)
{
    RandomCircuitSpec spec;
    spec.numQubits = 4;
    spec.numGates = 32;
    spec.measureAll = false;
    Circuit c = makeRandomCircuit(spec);
    EXPECT_EQ(c.measureCount(), 0);
}

TEST(RandomCircuits, RejectsBadSpecs)
{
    RandomCircuitSpec spec;
    spec.numQubits = 1;
    EXPECT_THROW(makeRandomCircuit(spec), FatalError);
    spec.numQubits = 4;
    spec.numGates = 0;
    EXPECT_THROW(makeRandomCircuit(spec), FatalError);
}

TEST(RandomCircuits, CnotFractionReasonable)
{
    RandomCircuitSpec spec;
    spec.numQubits = 16;
    spec.numGates = 2048;
    spec.seed = 21;
    Circuit c = makeRandomCircuit(spec);
    double frac = static_cast<double>(c.twoQubitCount()) /
                  static_cast<double>(c.gateCount());
    // Uniform over {H,X,Y,Z,S,T,CNOT} -> ~1/7 CNOTs.
    EXPECT_NEAR(frac, 1.0 / 7.0, 0.04);
}

} // namespace
} // namespace qc
