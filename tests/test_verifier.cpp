/**
 * @file
 * Translation-validator tests: every compiled program the repo can
 * produce verifies clean (all 8 bundles × three topology families),
 * every violation class has a dedicated corruption that triggers
 * exactly it, mutation fuzzing is deterministic under a seeded Rng,
 * and serdes round-trips verify identically to the original.
 */

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/compiler.hpp"
#include "core/portfolio.hpp"
#include "daemon/program_serdes.hpp"
#include "machine/calibration_model.hpp"
#include "support/rng.hpp"
#include "tests/test_util.hpp"
#include "verify/mutate.hpp"
#include "verify/verifier.hpp"
#include "workloads/benchmarks.hpp"

namespace {

using namespace qc;

/** One compiled triple ready for corruption experiments. */
struct Compiled
{
    std::shared_ptr<const Machine> machine;
    bool routesLive = false;
    Circuit source;
    CompiledProgram program;
};

Compiled
compileOn(const char *spec, MapperKind kind,
          const std::string &benchName)
{
    const Topology topo = topologyFromSpec(spec);
    const CalibrationModel model(topo, test::kSeed);
    Compiled c;
    c.machine = std::make_shared<const Machine>(topo, model.forDay(0));
    CompilerOptions opts;
    opts.mapper = kind;
    const Pipeline pipeline = standardPipeline(c.machine, opts);
    c.routesLive = pipeline.routesLive();
    const Benchmark b = benchmarkByName(benchName);
    c.source = b.circuit;
    PipelineResult r = pipeline.run(c.source);
    EXPECT_TRUE(r.ok()) << r.status.message;
    c.program = std::move(r.program);
    return c;
}

VerifyReport
verifyProg(const Compiled &c, const CompiledProgram &program)
{
    VerifyOptions vopts;
    vopts.expectRestoredLayout = !c.routesLive;
    return ProgramVerifier(*c.machine, vopts).verify(c.source,
                                                     program);
}

/**
 * Canonical corruption target: GreedyE* on a 16-qubit ring forces
 * routing SWAPs (BV8's star interaction graph cannot embed in a
 * degree-2 ring), so every mutation kind is applicable, and BV8
 * carries measurements for the coverage checks.
 */
const Compiled &
base()
{
    static const Compiled c =
        compileOn("ring:16", MapperKind::GreedyE, "BV8");
    return c;
}

int
findOp(const CompiledProgram &p, bool (*pred)(const TimedOp &))
{
    const auto &ops = p.schedule.ops;
    for (size_t i = 0; i < ops.size(); ++i)
        if (pred(ops[i]))
            return static_cast<int>(i);
    return -1;
}

// ---------------------------------------------------------------- //
// Clean programs verify across every bundle and topology family
// ---------------------------------------------------------------- //

TEST(Verifier, CleanAcrossAllBundlesAndTopologies)
{
    const char *specs[] = {"grid:2x8", "heavyhex:3", "ring:16"};
    for (const char *spec : specs) {
        const Topology topo = topologyFromSpec(spec);
        const CalibrationModel model(topo, test::kSeed);
        auto machine =
            std::make_shared<const Machine>(topo, model.forDay(0));
        const Benchmark b = benchmarkByName("BV4");
        for (MapperKind kind : kAllMapperKinds) {
            CompilerOptions opts;
            opts.mapper = kind;
            opts.smtTimeoutMs = 2000; // degraded fallbacks verify too
            const Pipeline pipeline = standardPipeline(machine, opts);
            const PipelineResult r = pipeline.run(b.circuit);
            ASSERT_TRUE(r.hasProgram)
                << spec << " " << mapperKindName(kind) << ": "
                << r.status.message;
            VerifyOptions vopts;
            vopts.expectRestoredLayout = !pipeline.routesLive();
            const VerifyReport report =
                ProgramVerifier(*machine, vopts)
                    .verify(b.circuit, r.program);
            EXPECT_TRUE(report.ok())
                << spec << " " << mapperKindName(kind) << "\n"
                << report.toString();
            EXPECT_EQ(report.errorCount(), 0);
        }
    }
}

TEST(Verifier, CleanReportCarriesFinalLayoutAndDurationModel)
{
    const Compiled &c = base();
    const VerifyReport report = verifyProg(c, c.program);
    ASSERT_TRUE(report.ok()) << report.toString();
    // expandRoute restores every SWAP chain, so the final permutation
    // is the initial layout.
    EXPECT_EQ(report.finalLayout, c.program.layout);
    EXPECT_TRUE(report.durationsChecked == "calibrated" ||
                report.durationsChecked == "uniform");
}

// ---------------------------------------------------------------- //
// One corruption per violation class
// ---------------------------------------------------------------- //

TEST(Verifier, CatchesLayoutNotInjective)
{
    CompiledProgram p = base().program;
    p.layout[0] = p.layout[1];
    const VerifyReport report = verifyProg(base(), p);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has(VerifyCode::LayoutInvalid));
    // Replay is meaningless without a layout: it must not run.
    EXPECT_TRUE(report.finalLayout.empty());
}

TEST(Verifier, CatchesLayoutOutOfRange)
{
    CompiledProgram p = base().program;
    p.layout[0] = base().machine->numQubits();
    const VerifyReport report = verifyProg(base(), p);
    EXPECT_TRUE(report.has(VerifyCode::LayoutInvalid));
}

TEST(Verifier, CatchesSwapCountDrift)
{
    CompiledProgram p = base().program;
    p.swapCount += 1;
    const VerifyReport report = verifyProg(base(), p);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has(VerifyCode::ScheduleShape));
}

TEST(Verifier, CatchesOperandOutOfRange)
{
    CompiledProgram p = base().program;
    p.schedule.ops[0].gate.q0 = -3;
    const VerifyReport report = verifyProg(base(), p);
    EXPECT_TRUE(report.has(VerifyCode::OpQubitRange));
}

TEST(Verifier, CatchesOffEdgeTwoQubitOp)
{
    CompiledProgram p = base().program;
    const int i = findOp(
        p, [](const TimedOp &op) { return op.gate.isTwoQubit(); });
    ASSERT_GE(i, 0);
    // Ring of 16: qubits two steps apart are never coupled.
    Gate &g = p.schedule.ops[static_cast<size_t>(i)].gate;
    g.q1 = (g.q0 + 2) % 16;
    const VerifyReport report = verifyProg(base(), p);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has(VerifyCode::EdgeMissing));
}

TEST(Verifier, CatchesDegenerateCalibrationReliability)
{
    // Machine construction validates calibrations, so a degenerate
    // reliability can only reach the verifier through in-memory
    // corruption — simulate exactly that (white-box) and check the
    // defense-in-depth path fires instead of dividing by garbage.
    const Compiled &c = base();
    Machine broken(c.machine->topo(),
                   test::uniformCalibration(c.machine->topo()));
    Calibration &cal = const_cast<Calibration &>(broken.cal());
    cal.cnotError.assign(cal.cnotError.size(), 1.5); // reliability -0.5
    const VerifyReport report =
        ProgramVerifier(broken).verify(c.source, c.program);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has(VerifyCode::ReliabilityInvalid));
}

TEST(Verifier, CatchesDroppedGate)
{
    CompiledProgram p = base().program;
    const int i = findOp(p, [](const TimedOp &op) {
        return !op.gate.isTwoQubit() && !op.gate.isMeasure();
    });
    ASSERT_GE(i, 0);
    p.schedule.ops.erase(p.schedule.ops.begin() + i);
    const VerifyReport report = verifyProg(base(), p);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has(VerifyCode::GateDropped));
}

TEST(Verifier, CatchesDuplicatedGate)
{
    CompiledProgram p = base().program;
    const int i = findOp(p, [](const TimedOp &op) {
        return !op.gate.isTwoQubit() && !op.gate.isMeasure();
    });
    ASSERT_GE(i, 0);
    p.schedule.ops.insert(p.schedule.ops.begin() + i + 1,
                          p.schedule.ops[static_cast<size_t>(i)]);
    const VerifyReport report = verifyProg(base(), p);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has(VerifyCode::GateDuplicated));
    // The copy also collides with the original on its qubit.
    EXPECT_TRUE(report.has(VerifyCode::QubitOverlap));
}

TEST(Verifier, CatchesForeignGate)
{
    CompiledProgram p = base().program;
    const int i = findOp(p, [](const TimedOp &op) {
        return !op.gate.isTwoQubit() && !op.gate.isMeasure();
    });
    ASSERT_GE(i, 0);
    // BV circuits contain no Y gates, so this matches no source gate.
    p.schedule.ops[static_cast<size_t>(i)].gate.op = Op::Y;
    const VerifyReport report = verifyProg(base(), p);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has(VerifyCode::GateMismatch));
}

TEST(Verifier, CatchesDependencyReordering)
{
    CompiledProgram p = base().program;
    // A measurement hoisted to t=0 runs before the gates feeding it
    // (skip measures legitimately at t=0: BV data qubits outside the
    // hidden string carry no gates before their measure).
    const int i = findOp(p, [](const TimedOp &op) {
        return op.gate.isMeasure() && op.start > 0;
    });
    ASSERT_GE(i, 0);
    p.schedule.ops[static_cast<size_t>(i)].start = 0;
    const VerifyReport report = verifyProg(base(), p);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has(VerifyCode::DependencyOrder));
}

TEST(Verifier, CatchesMissingMeasurement)
{
    CompiledProgram p = base().program;
    const int i = findOp(
        p, [](const TimedOp &op) { return op.gate.isMeasure(); });
    ASSERT_GE(i, 0);
    p.schedule.ops.erase(p.schedule.ops.begin() + i);
    const VerifyReport report = verifyProg(base(), p);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has(VerifyCode::MeasureMissing));
}

TEST(Verifier, CatchesRetargetedMeasurement)
{
    CompiledProgram p = base().program;
    const int i = findOp(
        p, [](const TimedOp &op) { return op.gate.isMeasure(); });
    ASSERT_GE(i, 0);
    p.schedule.ops[static_cast<size_t>(i)].gate.cbit += 1;
    const VerifyReport report = verifyProg(base(), p);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has(VerifyCode::MeasureMismatch));
}

TEST(Verifier, CatchesUnannotatedRouteSwap)
{
    CompiledProgram p = base().program;
    ASSERT_GT(p.swapCount, 0) << "base program must need routing";
    const int i = findOp(
        p, [](const TimedOp &op) { return op.isRouteSwap; });
    ASSERT_GE(i, 0);
    // Claim the SWAP is a program gate: BV has no source SWAPs.
    p.schedule.ops[static_cast<size_t>(i)].isRouteSwap = false;
    const VerifyReport report = verifyProg(base(), p);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has(VerifyCode::SwapAnnotation));
}

TEST(Verifier, CatchesUnrestoredFinalPermutation)
{
    // Live-tracking routing lets the layout drift; the same program
    // must verify clean normally and fail under expectRestoredLayout.
    const Compiled c =
        compileOn("ring:16", MapperKind::GreedyETrack, "BV8");
    ASSERT_TRUE(c.routesLive);
    VerifyOptions relaxed;
    const VerifyReport clean =
        ProgramVerifier(*c.machine, relaxed).verify(c.source,
                                                    c.program);
    ASSERT_TRUE(clean.ok()) << clean.toString();
    ASSERT_NE(clean.finalLayout, c.program.layout)
        << "expected the tracked layout to drift on a ring";
    VerifyOptions strict;
    strict.expectRestoredLayout = true;
    const VerifyReport report =
        ProgramVerifier(*c.machine, strict).verify(c.source,
                                                   c.program);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has(VerifyCode::FinalPermutation));
}

TEST(Verifier, FlagsBrokenProvenanceAsWarningOnly)
{
    CompiledProgram p = base().program;
    const int i = findOp(p, [](const TimedOp &op) {
        return !op.gate.isTwoQubit() && !op.gate.isMeasure();
    });
    ASSERT_GE(i, 0);
    p.schedule.ops[static_cast<size_t>(i)].progGate =
        static_cast<int>(base().source.size()) + 5;
    const VerifyReport report = verifyProg(base(), p);
    // Provenance is advisory: the program is still faithful.
    EXPECT_TRUE(report.ok()) << report.toString();
    EXPECT_TRUE(report.has(VerifyCode::Provenance));
    EXPECT_GE(report.warningCount(), 1);
}

TEST(Verifier, CatchesQubitOverlap)
{
    CompiledProgram p = base().program;
    auto &ops = p.schedule.ops;
    // Find two ops sharing a qubit and slide the later one onto the
    // earlier one's window.
    for (size_t i = 0; i + 1 < ops.size(); ++i) {
        for (size_t j = i + 1; j < ops.size(); ++j) {
            if (!ops[j].gate.touches(ops[i].gate.q0) ||
                ops[j].start < ops[i].finish())
                continue;
            ops[j].start = ops[i].start;
            const VerifyReport report = verifyProg(base(), p);
            EXPECT_FALSE(report.ok());
            EXPECT_TRUE(report.has(VerifyCode::QubitOverlap));
            return;
        }
    }
    FAIL() << "no same-qubit op pair found";
}

TEST(Verifier, CatchesMacroReservationOverlap)
{
    CompiledProgram p = base().program;
    auto &macros = p.schedule.macros;
    ASSERT_FALSE(macros.empty());
    // Stretch the last macro's window back to t=0: its ops stay
    // inside the (grown) window, but the reservation now collides
    // with every earlier macro on its qubits.
    MacroTiming &m = macros.back();
    ASSERT_GT(m.start, 0);
    m.duration += m.start;
    m.start = 0;
    const VerifyReport report = verifyProg(base(), p);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has(VerifyCode::MacroOverlap));
    EXPECT_FALSE(report.has(VerifyCode::MacroWindow));
}

TEST(Verifier, CatchesOpEscapingItsMacroWindow)
{
    CompiledProgram p = base().program;
    TimedOp &op = p.schedule.ops[0];
    op.start += p.schedule.makespan + 1;
    const VerifyReport report = verifyProg(base(), p);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has(VerifyCode::MacroWindow));
    EXPECT_TRUE(report.has(VerifyCode::MakespanMismatch));
}

TEST(Verifier, CatchesDurationModelViolation)
{
    CompiledProgram p = base().program;
    // Stretch the op that finishes last: no overlap is created, so
    // the duration-model check itself must fire.
    auto &ops = p.schedule.ops;
    size_t last = 0;
    for (size_t i = 1; i < ops.size(); ++i)
        if (ops[i].finish() > ops[last].finish())
            last = i;
    ops[last].duration += 3;
    const VerifyReport report = verifyProg(base(), p);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has(VerifyCode::DurationModel));
}

TEST(Verifier, CatchesMakespanDrift)
{
    CompiledProgram p = base().program;
    p.schedule.makespan += 7;
    const VerifyReport report = verifyProg(base(), p);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has(VerifyCode::MakespanMismatch));
}

TEST(Verifier, CatchesStaleQubitFinishTable)
{
    CompiledProgram p = base().program;
    p.schedule.qubitFinish[0] += 5;
    const VerifyReport report = verifyProg(base(), p);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has(VerifyCode::QubitFinishMismatch));
}

// ---------------------------------------------------------------- //
// Mutation harness: coverage and determinism
// ---------------------------------------------------------------- //

TEST(Verifier, EveryMutationKindIsCaught)
{
    const Compiled &c = base();
    for (MutationKind mk : kAllMutationKinds) {
        CompiledProgram corrupted = c.program;
        Rng rng(test::kSeed, mutationKindName(mk));
        if (!applyMutation(corrupted, *c.machine, mk, rng))
            continue; // inapplicable to this program shape
        const VerifyReport report = verifyProg(c, corrupted);
        EXPECT_FALSE(report.ok())
            << mutationKindName(mk) << " escaped the verifier";
    }
}

TEST(Verifier, MutationsAreDeterministicUnderSeededRng)
{
    const Compiled &c = base();
    for (MutationKind mk : kAllMutationKinds) {
        CompiledProgram a = c.program;
        CompiledProgram b = c.program;
        Rng ra(test::kSeed, mutationKindName(mk));
        Rng rb(test::kSeed, mutationKindName(mk));
        const bool appliedA = applyMutation(a, *c.machine, mk, ra);
        const bool appliedB = applyMutation(b, *c.machine, mk, rb);
        ASSERT_EQ(appliedA, appliedB) << mutationKindName(mk);
        if (!appliedA)
            continue;
        EXPECT_TRUE(a.schedule.identicalTo(b.schedule))
            << mutationKindName(mk);
        EXPECT_EQ(a.layout, b.layout);
        // Identical corruption ⇒ character-identical lint report.
        EXPECT_EQ(verifyProg(c, a).toString(),
                  verifyProg(c, b).toString())
            << mutationKindName(mk);
    }
}

TEST(Verifier, MutationKindNamesRoundTrip)
{
    for (MutationKind mk : kAllMutationKinds)
        EXPECT_EQ(mutationKindFromName(mutationKindName(mk)), mk);
    EXPECT_THROW(mutationKindFromName("no-such-mutation"),
                 FatalError);
}

// ---------------------------------------------------------------- //
// Serdes round-trip and pipeline/portfolio integration
// ---------------------------------------------------------------- //

TEST(Verifier, SerdesRoundTripVerifiesIdentically)
{
    const Compiled &c = base();
    const std::string bytes =
        daemon::serializeCompiledProgram(c.program);
    CompiledProgram restored;
    ASSERT_TRUE(daemon::deserializeCompiledProgram(bytes, restored));
    const VerifyReport before = verifyProg(c, c.program);
    const VerifyReport after = verifyProg(c, restored);
    EXPECT_TRUE(after.ok()) << after.toString();
    EXPECT_EQ(before.toString(), after.toString());
    EXPECT_EQ(before.finalLayout, after.finalLayout);
}

TEST(Verifier, PipelineWithVerificationOnPassesCleanPrograms)
{
    const Topology topo = topologyFromSpec("grid:2x8");
    const CalibrationModel model(topo, test::kSeed);
    auto machine =
        std::make_shared<const Machine>(topo, model.forDay(0));
    CompilerOptions opts;
    opts.mapper = MapperKind::GreedyE;
    opts.verify = true;
    const Pipeline pipeline = standardPipeline(machine, opts);
    EXPECT_TRUE(pipeline.verifies());
    const PipelineResult r =
        pipeline.run(benchmarkByName("BV4").circuit);
    EXPECT_TRUE(r.ok()) << r.status.message;
    // A clean verification leaves no trace entry (trace shapes are
    // part of the stage contract other tests pin down).
    for (const StageTrace &t : r.program.stageTraces)
        EXPECT_NE(t.stage, "verification");
}

TEST(Verifier, PortfolioWinnersVerifyClean)
{
    const Topology topo = topologyFromSpec("grid:2x8");
    const CalibrationModel model(topo, test::kSeed);
    auto machine =
        std::make_shared<const Machine>(topo, model.forDay(0));
    CompilerOptions opts;
    opts.portfolio.enabled = true;
    opts.portfolio.bundles = {MapperKind::Qiskit, MapperKind::GreedyE,
                              MapperKind::GreedyETrack};
    const PortfolioPass pass(machine, opts);
    const PortfolioResult r =
        pass.run(benchmarkByName("BV4").circuit);
    ASSERT_TRUE(r.ok()) << r.best.status.message;
    EXPECT_EQ(r.verifyRejectedCount, 0);
    for (const PortfolioCandidate &c : r.candidates)
        EXPECT_FALSE(c.verifyRejected);
}

// ---------------------------------------------------------------- //
// Default-enable policy
// ---------------------------------------------------------------- //

TEST(Verifier, DefaultEnableRespectsEnvironment)
{
    const char *saved = std::getenv("QC_VERIFY");
    const std::string savedValue = saved ? saved : "";

    ::setenv("QC_VERIFY", "1", 1);
    EXPECT_TRUE(defaultVerifyEnabled());
    ::setenv("QC_VERIFY", "on", 1);
    EXPECT_TRUE(defaultVerifyEnabled());
    ::setenv("QC_VERIFY", "0", 1);
    EXPECT_FALSE(defaultVerifyEnabled());
    ::setenv("QC_VERIFY", "OFF", 1);
    EXPECT_FALSE(defaultVerifyEnabled());
    ::setenv("QC_VERIFY", "false", 1);
    EXPECT_FALSE(defaultVerifyEnabled());

    ::unsetenv("QC_VERIFY");
#ifdef NDEBUG
    EXPECT_FALSE(defaultVerifyEnabled());
#else
    EXPECT_TRUE(defaultVerifyEnabled());
#endif

    if (saved)
        ::setenv("QC_VERIFY", savedValue.c_str(), 1);
}

// ---------------------------------------------------------------- //
// Lint-report surface
// ---------------------------------------------------------------- //

TEST(Verifier, IssueAndReportFormatting)
{
    VerifyIssue issue;
    issue.severity = VerifySeverity::Error;
    issue.code = VerifyCode::EdgeMissing;
    issue.opIndex = 12;
    issue.detail = "cx q0, q9: not coupled";
    EXPECT_EQ(issue.toString(),
              "error[edge-missing] op 12: cx q0, q9: not coupled");

    VerifyReport report;
    report.issues.push_back(issue);
    EXPECT_FALSE(report.ok());
    EXPECT_EQ(report.errorCount(), 1);
    EXPECT_EQ(report.warningCount(), 0);
    EXPECT_TRUE(report.has(VerifyCode::EdgeMissing));
    EXPECT_FALSE(report.has(VerifyCode::GateDropped));
    EXPECT_NE(report.toString().find("verify: 1 error(s)"),
              std::string::npos);
}

} // namespace
