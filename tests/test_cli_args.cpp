/**
 * @file
 * Tests for the checked CLI numeric-parse seam (support/cli.hpp):
 * naqc's flag values go through these helpers, so `--jobs foo` is a
 * UsageError with exit code 2 instead of an uncaught
 * std::invalid_argument aborting the process.
 */

#include <gtest/gtest.h>

#include <limits>

#include "support/cli.hpp"

namespace qc::cli {
namespace {

TEST(CliParse, AcceptsWellFormedValues)
{
    EXPECT_EQ(parseIntFlag("--jobs", "8"), 8);
    EXPECT_EQ(parseIntFlag("--day", "-3"), -3);
    EXPECT_EQ(parseIntFlag("--rows", "+2"), 2);
    EXPECT_EQ(parseUint64Flag("--seed", "20190131"), 20190131u);
    EXPECT_EQ(parseUnsignedFlag("--timeout", "60000"), 60000u);
    EXPECT_DOUBLE_EQ(parseDoubleFlag("--omega", "0.5"), 0.5);
    EXPECT_DOUBLE_EQ(parseDoubleFlag("--omega", "1e-3"), 1e-3);
    // Subnormal underflow (strtod sets ERANGE but returns a
    // representable value) is accepted, unlike true overflow.
    EXPECT_DOUBLE_EQ(parseDoubleFlag("--omega", "1e-310"), 1e-310);
}

TEST(CliParse, RejectsNonNumericText)
{
    EXPECT_THROW(parseIntFlag("--jobs", "foo"), UsageError);
    EXPECT_THROW(parseIntFlag("--jobs", ""), UsageError);
    EXPECT_THROW(parseDoubleFlag("--omega", "wat"), UsageError);
    EXPECT_THROW(parseUint64Flag("--seed", "seed"), UsageError);
    EXPECT_THROW(parseUnsignedFlag("--timeout", "soon"), UsageError);
}

TEST(CliParse, RejectsTrailingGarbage)
{
    // std::stoi would happily return 12 for all of these.
    EXPECT_THROW(parseIntFlag("--rows", "12x"), UsageError);
    EXPECT_THROW(parseIntFlag("--rows", "1 2"), UsageError);
    EXPECT_THROW(parseDoubleFlag("--omega", "0.5abc"), UsageError);
    EXPECT_THROW(parseIntFlag("--rows", " 12"), UsageError);
}

TEST(CliParse, RejectsOutOfRangeValues)
{
    // The out-of-range class that std::stoi turned into an
    // std::out_of_range abort.
    EXPECT_THROW(parseIntFlag("--day", "99999999999999999999"),
                 UsageError);
    EXPECT_THROW(parseIntFlag("--day", "2147483648"), UsageError);
    EXPECT_NO_THROW(parseIntFlag("--day", "2147483647"));
    EXPECT_THROW(parseUnsignedFlag("--timeout", "4294967296"),
                 UsageError);
    EXPECT_THROW(parseUint64Flag("--seed", "-1"), UsageError);
    EXPECT_THROW(parseDoubleFlag("--omega", "1e999"), UsageError);
}

TEST(CliParse, DiagnosticNamesFlagAndTextWithExitCode2)
{
    try {
        parseIntFlag("--jobs", "foo");
        FAIL() << "expected UsageError";
    } catch (const UsageError &e) {
        EXPECT_STREQ(e.what(), "invalid value for --jobs: 'foo'");
        EXPECT_EQ(e.exitCode(), 2);
    }

    // UsageError stays catchable through the generic FatalError
    // handler chain.
    EXPECT_THROW(parseIntFlag("--jobs", "foo"), FatalError);
}

} // namespace
} // namespace qc::cli
