/**
 * @file
 * Qiskit-baseline tests: lexicographic placement, fixed shortest-path
 * routing and the extra-SWAP behavior the paper reports (Sec. 7).
 */

#include <gtest/gtest.h>

#include "mappers/qiskit_baseline.hpp"
#include "test_util.hpp"

namespace qc {
namespace {

using test::day0;
using test::expectScheduleWellFormed;

class QiskitAllBenchmarks : public ::testing::TestWithParam<std::string>
{
};

TEST_P(QiskitAllBenchmarks, IdentityLayoutAndValidSchedule)
{
    Machine m = day0();
    Benchmark b = benchmarkByName(GetParam());
    QiskitBaselineMapper mapper(m);
    CompiledProgram cp = mapper.compile(b.circuit);
    EXPECT_EQ(cp.mapperName, "Qiskit");
    ASSERT_EQ(static_cast<int>(cp.layout.size()),
              b.circuit.numQubits());
    for (int q = 0; q < b.circuit.numQubits(); ++q)
        EXPECT_EQ(cp.layout[q], q) << "lexicographic placement";
    expectScheduleWellFormed(m, cp.schedule);
}

INSTANTIATE_TEST_SUITE_P(
    Paper, QiskitAllBenchmarks,
    ::testing::Values("BV4", "BV6", "BV8", "HS2", "HS4", "HS6", "Toffoli",
                      "Fredkin", "Or", "Peres", "QFT", "Adder"));

TEST(QiskitBaseline, Bv8PaysHeavySwapCost)
{
    // Paper Sec. 7: Qiskit's BV8 executable spent 15 extra CNOTs on
    // movement while R-SMT* needed none. Our baseline reproduces the
    // movement (distances 3+2+1 from the identity placement, moved
    // there and back).
    Machine m = day0();
    Benchmark b = benchmarkByName("BV8");
    QiskitBaselineMapper mapper(m);
    CompiledProgram cp = mapper.compile(b.circuit);
    EXPECT_EQ(cp.swapCount, 2 * ((3 - 1) + (2 - 1) + (1 - 1)));
    EXPECT_EQ(cp.schedule.hwCnotCount(), 3 + 3 * cp.swapCount);
}

TEST(QiskitBaseline, DeterministicRoutes)
{
    Machine m = day0();
    Benchmark b = benchmarkByName("Toffoli");
    QiskitBaselineMapper mapper(m);
    CompiledProgram a = mapper.compile(b.circuit);
    CompiledProgram c = mapper.compile(b.circuit);
    EXPECT_EQ(a.duration, c.duration);
    EXPECT_EQ(a.swapCount, c.swapCount);
    ASSERT_EQ(a.junctions.size(), c.junctions.size());
    for (size_t i = 0; i < a.junctions.size(); ++i)
        EXPECT_EQ(a.junctions[i], c.junctions[i]);
}

TEST(QiskitBaseline, IgnoresCalibration)
{
    // Same layout on two very different calibration days.
    auto &env = test::env();
    Machine m0 = env.machineForDay(0);
    Machine m5 = env.machineForDay(5);
    Benchmark b = benchmarkByName("BV4");
    CompiledProgram a = QiskitBaselineMapper(m0).compile(b.circuit);
    CompiledProgram c = QiskitBaselineMapper(m5).compile(b.circuit);
    EXPECT_EQ(a.layout, c.layout);
}

} // namespace
} // namespace qc
