/**
 * @file
 * Region-level scheduler property tests: the paper's routing
 * constraint S(i,j) => !T(i,j) (Eq. 7-9) must hold in every emitted
 * schedule — two routed CNOTs whose reserved regions overlap in space
 * may never overlap in time, under both policies and across random
 * programs.
 */

#include <gtest/gtest.h>

#include "test_util.hpp"
#include "workloads/random_circuits.hpp"

namespace qc {
namespace {

using test::day0;

/** Rebuild each routed CNOT's reservation and check Eq. 7-9. */
void
expectNoSpaceTimeConflicts(const Machine &m, const Circuit &prog,
                           const Schedule &sched,
                           const std::vector<HwQubit> &layout,
                           const SchedulerOptions &opts)
{
    ListScheduler sched_engine(m, opts);
    struct Res
    {
        Region region;
        Timeslot start;
        Timeslot end;
    };
    std::vector<Res> reservations;
    for (size_t i = 0; i < prog.size(); ++i) {
        const Gate &g = prog.gate(i);
        if (g.op != Op::CNOT)
            continue;
        RoutePath route = sched_engine.chooseRoute(
            layout[g.q0], layout[g.q1], static_cast<int>(i));
        Region region = routeRegion(m.topo(), route, opts.policy);
        reservations.push_back({std::move(region), sched.macros[i].start,
                                sched.macros[i].finish()});
    }
    for (size_t i = 0; i < reservations.size(); ++i) {
        for (size_t j = i + 1; j < reservations.size(); ++j) {
            const Res &a = reservations[i];
            const Res &b = reservations[j];
            bool time_overlap = a.start < b.end && b.start < a.end;
            if (time_overlap) {
                EXPECT_FALSE(a.region.overlaps(b.region))
                    << "CNOT reservations " << i << " and " << j
                    << " overlap in space and time";
            }
        }
    }
}

struct ResCase
{
    std::uint64_t seed;
    int qubits;
    int gates;
    RoutingPolicy policy;
};

class ReservationProperty : public ::testing::TestWithParam<ResCase>
{
};

TEST_P(ReservationProperty, RandomProgramsRespectEq79)
{
    const auto &p = GetParam();
    Machine m = day0();

    RandomCircuitSpec spec;
    spec.numQubits = p.qubits;
    spec.numGates = p.gates;
    spec.seed = p.seed;
    Circuit prog = makeRandomCircuit(spec);

    // Scatter the program across the chip so routes actually cross.
    std::vector<HwQubit> layout(p.qubits);
    for (int q = 0; q < p.qubits; ++q)
        layout[q] = (q * 5) % m.numQubits();
    // Make injective for any qubit count <= 16 (5 is coprime to 16).
    ASSERT_EQ(m.numQubits(), 16);

    SchedulerOptions opts;
    opts.policy = p.policy;
    opts.select = RouteSelect::BestReliability;
    ListScheduler engine(m, opts);
    Schedule sched = engine.run(prog, layout);

    test::expectScheduleWellFormed(m, sched);
    expectNoSpaceTimeConflicts(m, prog, sched, layout, opts);
}

std::vector<ResCase>
resCases()
{
    std::vector<ResCase> cases;
    for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
        cases.push_back({seed, 8, 100,
                         RoutingPolicy::RectangleReservation});
        cases.push_back({seed, 8, 100, RoutingPolicy::OneBendPath});
    }
    cases.push_back({7, 12, 200, RoutingPolicy::RectangleReservation});
    cases.push_back({8, 12, 200, RoutingPolicy::OneBendPath});
    cases.push_back({9, 16, 300, RoutingPolicy::OneBendPath});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReservationProperty, ::testing::ValuesIn(resCases()),
    [](const ::testing::TestParamInfo<ResCase> &info) {
        return "s" + std::to_string(info.param.seed) + "_q" +
               std::to_string(info.param.qubits) + "_" +
               routingPolicyName(info.param.policy);
    });

TEST(ReservationProperty, PaperBenchmarksRespectEq79)
{
    Machine m = day0();
    for (const auto &b : paperBenchmarks()) {
        std::vector<HwQubit> layout(b.circuit.numQubits());
        for (int q = 0; q < b.circuit.numQubits(); ++q)
            layout[q] = (q * 5) % m.numQubits();
        for (RoutingPolicy policy :
             {RoutingPolicy::RectangleReservation,
              RoutingPolicy::OneBendPath}) {
            SchedulerOptions opts;
            opts.policy = policy;
            ListScheduler engine(m, opts);
            Schedule sched = engine.run(b.circuit, layout);
            expectNoSpaceTimeConflicts(m, b.circuit, sched, layout,
                                       opts);
        }
    }
}

} // namespace
} // namespace qc
