/**
 * @file
 * Calibration serialization tests: round trips, partial files,
 * malformed input and topology mismatches.
 */

#include <gtest/gtest.h>

#include "machine/calibration_io.hpp"
#include "machine/calibration_model.hpp"
#include "support/logging.hpp"

namespace qc {
namespace {

class CalibrationIo : public ::testing::Test
{
  protected:
    GridTopology topo_ = GridTopology::ibmq16();
    CalibrationModel model_{topo_, 321};
};

TEST_F(CalibrationIo, RoundTripIsExact)
{
    Calibration cal = model_.forDay(4);
    Calibration back = loadCalibration(saveCalibration(cal, topo_),
                                       topo_);
    EXPECT_EQ(back.day, cal.day);
    EXPECT_EQ(back.t1Us, cal.t1Us);
    EXPECT_EQ(back.t2Us, cal.t2Us);
    EXPECT_EQ(back.readoutError, cal.readoutError);
    EXPECT_EQ(back.cnotError, cal.cnotError);
    EXPECT_EQ(back.cnotDuration, cal.cnotDuration);
    EXPECT_DOUBLE_EQ(back.oneQubitError, cal.oneQubitError);
    EXPECT_EQ(back.oneQubitDuration, cal.oneQubitDuration);
    EXPECT_EQ(back.readoutDuration, cal.readoutDuration);
}

TEST_F(CalibrationIo, RoundTripOnOtherGrids)
{
    GridTopology small(3, 3);
    CalibrationModel model(small, 9);
    Calibration cal = model.forDay(0);
    Calibration back = loadCalibration(saveCalibration(cal, small),
                                       small);
    EXPECT_EQ(back.cnotError, cal.cnotError);
}

TEST_F(CalibrationIo, CommentsAndOrderInsensitive)
{
    Calibration cal = model_.forDay(0);
    std::string text = saveCalibration(cal, topo_);
    // Prepend comments; the format has no order requirements beyond
    // the directives themselves.
    std::string shuffled = "# a comment\n" + text + "# trailing\n";
    Calibration back = loadCalibration(shuffled, topo_);
    EXPECT_EQ(back.readoutError, cal.readoutError);
}

TEST_F(CalibrationIo, MissingHeaderRejected)
{
    Calibration cal = model_.forDay(0);
    std::string text = saveCalibration(cal, topo_);
    std::string no_header = text.substr(text.find("day "));
    EXPECT_THROW(loadCalibration(no_header, topo_), FatalError);
}

TEST_F(CalibrationIo, GridMismatchRejected)
{
    Calibration cal = model_.forDay(0);
    std::string text = saveCalibration(cal, topo_);
    GridTopology other(4, 4);
    EXPECT_THROW(loadCalibration(text, other), FatalError);
}

TEST_F(CalibrationIo, MissingQubitRejected)
{
    Calibration cal = model_.forDay(0);
    std::string text = saveCalibration(cal, topo_);
    auto pos = text.find("qubit 7");
    auto end = text.find('\n', pos);
    text.erase(pos, end - pos + 1);
    EXPECT_THROW(loadCalibration(text, topo_), FatalError);
}

TEST_F(CalibrationIo, DuplicateEdgeRejected)
{
    Calibration cal = model_.forDay(0);
    std::string text = saveCalibration(cal, topo_);
    text += "edge 0 1 error 0.02 duration 9\n";
    EXPECT_THROW(loadCalibration(text, topo_), FatalError);
}

TEST_F(CalibrationIo, MalformedLinesRejected)
{
    Calibration cal = model_.forDay(0);
    std::string good = saveCalibration(cal, topo_);
    EXPECT_THROW(loadCalibration(good + "bogus 1 2\n", topo_),
                 FatalError);
    EXPECT_THROW(loadCalibration(good + "qubit x t1 1 t2 1 readout 0\n",
                                 topo_),
                 FatalError);
    EXPECT_THROW(loadCalibration(good + "edge 0 15 error 0.1 "
                                        "duration 9\n",
                                 topo_),
                 FatalError); // not a coupling edge
}

TEST_F(CalibrationIo, OutOfRangeValuesRejectedByValidation)
{
    Calibration cal = model_.forDay(0);
    std::string text = saveCalibration(cal, topo_);
    // Corrupt one readout error beyond [0, 1).
    auto pos = text.find("readout ");
    text.replace(pos + 8, text.find('\n', pos) - pos - 8, "1.7");
    EXPECT_THROW(loadCalibration(text, topo_), FatalError);
}

} // namespace
} // namespace qc
