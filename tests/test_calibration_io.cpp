/**
 * @file
 * Calibration serialization tests: round trips, partial files,
 * malformed input and topology mismatches.
 */

#include <gtest/gtest.h>

#include "machine/calibration_io.hpp"
#include "machine/calibration_model.hpp"
#include "support/logging.hpp"

namespace qc {
namespace {

class CalibrationIo : public ::testing::Test
{
  protected:
    GridTopology topo_ = GridTopology::ibmq16();
    CalibrationModel model_{topo_, 321};
};

TEST_F(CalibrationIo, RoundTripIsExact)
{
    Calibration cal = model_.forDay(4);
    Calibration back = loadCalibration(saveCalibration(cal, topo_),
                                       topo_);
    EXPECT_EQ(back.day, cal.day);
    EXPECT_EQ(back.t1Us, cal.t1Us);
    EXPECT_EQ(back.t2Us, cal.t2Us);
    EXPECT_EQ(back.readoutError, cal.readoutError);
    EXPECT_EQ(back.cnotError, cal.cnotError);
    EXPECT_EQ(back.cnotDuration, cal.cnotDuration);
    EXPECT_DOUBLE_EQ(back.oneQubitError, cal.oneQubitError);
    EXPECT_EQ(back.oneQubitDuration, cal.oneQubitDuration);
    EXPECT_EQ(back.readoutDuration, cal.readoutDuration);
}

TEST_F(CalibrationIo, RoundTripOnOtherGrids)
{
    GridTopology small(3, 3);
    CalibrationModel model(small, 9);
    Calibration cal = model.forDay(0);
    Calibration back = loadCalibration(saveCalibration(cal, small),
                                       small);
    EXPECT_EQ(back.cnotError, cal.cnotError);
}

TEST_F(CalibrationIo, CommentsAndOrderInsensitive)
{
    Calibration cal = model_.forDay(0);
    std::string text = saveCalibration(cal, topo_);
    // Prepend comments; the format has no order requirements beyond
    // the directives themselves.
    std::string shuffled = "# a comment\n" + text + "# trailing\n";
    Calibration back = loadCalibration(shuffled, topo_);
    EXPECT_EQ(back.readoutError, cal.readoutError);
}

TEST_F(CalibrationIo, MissingHeaderRejected)
{
    Calibration cal = model_.forDay(0);
    std::string text = saveCalibration(cal, topo_);
    std::string no_header = text.substr(text.find("day "));
    EXPECT_THROW(loadCalibration(no_header, topo_), FatalError);
}

TEST_F(CalibrationIo, GridMismatchRejected)
{
    Calibration cal = model_.forDay(0);
    std::string text = saveCalibration(cal, topo_);
    GridTopology other(4, 4);
    EXPECT_THROW(loadCalibration(text, other), FatalError);
}

TEST_F(CalibrationIo, MissingQubitRejected)
{
    Calibration cal = model_.forDay(0);
    std::string text = saveCalibration(cal, topo_);
    auto pos = text.find("qubit 7");
    auto end = text.find('\n', pos);
    text.erase(pos, end - pos + 1);
    EXPECT_THROW(loadCalibration(text, topo_), FatalError);
}

TEST_F(CalibrationIo, DuplicateEdgeRejected)
{
    Calibration cal = model_.forDay(0);
    std::string text = saveCalibration(cal, topo_);
    text += "edge 0 1 error 0.02 duration 9\n";
    EXPECT_THROW(loadCalibration(text, topo_), FatalError);
}

TEST_F(CalibrationIo, MalformedLinesRejected)
{
    Calibration cal = model_.forDay(0);
    std::string good = saveCalibration(cal, topo_);
    EXPECT_THROW(loadCalibration(good + "bogus 1 2\n", topo_),
                 FatalError);
    EXPECT_THROW(loadCalibration(good + "qubit x t1 1 t2 1 readout 0\n",
                                 topo_),
                 FatalError);
    EXPECT_THROW(loadCalibration(good + "edge 0 15 error 0.1 "
                                        "duration 9\n",
                                 topo_),
                 FatalError); // not a coupling edge
}

TEST_F(CalibrationIo, MalformedNumericFieldIsStructuredParseError)
{
    // A corrupted numeric token must surface as CalibParseError
    // naming source, line and column — never as std::invalid_argument
    // or std::out_of_range escaping the loader.
    Calibration cal = model_.forDay(0);
    std::string text = saveCalibration(cal, topo_);
    auto pos = text.find("t1 ");
    auto end = text.find(' ', pos + 3);
    text.replace(pos + 3, end - pos - 3, "8..5e");

    try {
        loadCalibration(text, topo_, "day0.cal");
        FAIL() << "expected CalibParseError";
    } catch (const CalibParseError &e) {
        EXPECT_EQ(e.source(), "day0.cal");
        EXPECT_GT(e.line(), 0);
        EXPECT_GT(e.column(), 0);
        const std::string msg = e.what();
        EXPECT_NE(msg.find("day0.cal:"), std::string::npos) << msg;
        EXPECT_NE(msg.find(":" + std::to_string(e.line()) + ":"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("8..5e"), std::string::npos) << msg;
    }
}

TEST_F(CalibrationIo, NumericFieldsAreParsedStrictly)
{
    Calibration cal = model_.forDay(0);
    std::string good = saveCalibration(cal, topo_);
    // Trailing garbage after a number: std::stod would silently take
    // the prefix; the strict parser rejects it.
    EXPECT_THROW(loadCalibration(good + "day 3x\n", topo_),
                 CalibParseError);
    // A huge exponent used to throw std::out_of_range past the loader.
    EXPECT_THROW(loadCalibration(good + "day 99999999999999999999\n",
                                 topo_),
                 CalibParseError);
    std::string overflow = good;
    auto pos = overflow.find("readout ");
    overflow.replace(pos + 8,
                     overflow.find('\n', pos) - pos - 8, "1e999");
    EXPECT_THROW(loadCalibration(overflow, topo_), CalibParseError);
    // And non-integral integers are no longer silently truncated.
    EXPECT_THROW(loadCalibration(good + "day 3.7\n", topo_),
                 CalibParseError);
}

TEST_F(CalibrationIo, ParseErrorsRemainCatchableAsFatalError)
{
    // The pre-existing contract (and every caller's handler).
    Calibration cal = model_.forDay(0);
    std::string good = saveCalibration(cal, topo_);
    EXPECT_THROW(loadCalibration(good + "day oops\n", topo_),
                 FatalError);
}

TEST_F(CalibrationIo, OutOfRangeValuesRejectedByValidation)
{
    Calibration cal = model_.forDay(0);
    std::string text = saveCalibration(cal, topo_);
    // Corrupt one readout error beyond [0, 1).
    auto pos = text.find("readout ");
    text.replace(pos + 8, text.find('\n', pos) - pos - 8, "1.7");
    EXPECT_THROW(loadCalibration(text, topo_), FatalError);
}

} // namespace
} // namespace qc
