/**
 * @file
 * Pass-pipeline tests: bit-identical equivalence between the staged
 * Pipeline and the legacy monolithic mappers for all seven Table 1
 * variants on the Table 2 benchmark set, QASM round-tripping of
 * pipeline output, structured-status surfacing, stage traces, and
 * the builder's mix-and-match scenario matrix.
 */

#include <gtest/gtest.h>

#include "core/passes.hpp"
#include "ir/qasm.hpp"
#include "test_util.hpp"

namespace qc {
namespace {

using test::env;
using test::kSeed;

std::shared_ptr<const Machine>
machineForDay(int day)
{
    return std::make_shared<const Machine>(env().machineForDay(day));
}

/** Compiler options shared by the equivalence runs. */
CompilerOptions
optionsFor(MapperKind kind)
{
    CompilerOptions opts;
    opts.mapper = kind;
    opts.smtTimeoutMs = 15'000;
    return opts;
}

bool
isSmtKind(MapperKind kind)
{
    return kind == MapperKind::TSmt || kind == MapperKind::TSmtStar ||
           kind == MapperKind::RSmtStar;
}

/** Field-by-field bit-identity check, timing fields excluded. */
void
expectBitIdentical(const CompiledProgram &legacy,
                   const CompiledProgram &pipe)
{
    EXPECT_EQ(legacy.mapperName, pipe.mapperName);
    EXPECT_EQ(legacy.programName, pipe.programName);
    EXPECT_EQ(legacy.layout, pipe.layout);
    EXPECT_EQ(legacy.junctions, pipe.junctions);
    EXPECT_EQ(legacy.duration, pipe.duration);
    EXPECT_EQ(legacy.swapCount, pipe.swapCount);
    EXPECT_EQ(legacy.logReliability, pipe.logReliability);
    EXPECT_EQ(legacy.predictedSuccess, pipe.predictedSuccess);
    EXPECT_EQ(legacy.solverOptimal, pipe.solverOptimal);
    EXPECT_EQ(legacy.solverStatus, pipe.solverStatus);

    const Schedule &ls = legacy.schedule;
    const Schedule &ps = pipe.schedule;
    EXPECT_EQ(ls.numHwQubits, ps.numHwQubits);
    EXPECT_EQ(ls.makespan, ps.makespan);
    EXPECT_EQ(ls.qubitFinish, ps.qubitFinish);
    ASSERT_EQ(ls.ops.size(), ps.ops.size());
    for (size_t i = 0; i < ls.ops.size(); ++i) {
        EXPECT_EQ(ls.ops[i].gate, ps.ops[i].gate) << "op " << i;
        EXPECT_EQ(ls.ops[i].start, ps.ops[i].start) << "op " << i;
        EXPECT_EQ(ls.ops[i].duration, ps.ops[i].duration) << "op " << i;
        EXPECT_EQ(ls.ops[i].progGate, ps.ops[i].progGate) << "op " << i;
        EXPECT_EQ(ls.ops[i].isRouteSwap, ps.ops[i].isRouteSwap)
            << "op " << i;
    }
    ASSERT_EQ(ls.macros.size(), ps.macros.size());
    for (size_t i = 0; i < ls.macros.size(); ++i) {
        EXPECT_EQ(ls.macros[i].progGate, ps.macros[i].progGate);
        EXPECT_EQ(ls.macros[i].start, ps.macros[i].start);
        EXPECT_EQ(ls.macros[i].duration, ps.macros[i].duration);
    }
}

class PipelineEquivalence : public ::testing::TestWithParam<MapperKind>
{
};

/**
 * The acceptance bar of the pipeline redesign: for every MapperKind,
 * Pipeline output is bit-identical to the pre-refactor monolithic
 * mapper on the full Table 2 benchmark set.
 */
TEST_P(PipelineEquivalence, MatchesLegacyMapperOnTable2Set)
{
    const CompilerOptions opts = optionsFor(GetParam());
    auto machine = machineForDay(0);
    Pipeline pipeline = standardPipeline(machine, opts);

    int strict = 0;
    for (const Benchmark &b : paperBenchmarks()) {
        SCOPED_TRACE(b.name);
        CompiledProgram legacy =
            NoiseAdaptiveCompiler::makeMapper(*machine, opts)
                ->compile(b.circuit);
        PipelineResult piped = pipeline.run(b.circuit);

        // A Z3 search interrupted by its wall-clock budget is not
        // deterministic across two runs, so strict bit-identity is
        // only guaranteed when both solves proved optimality — a
        // no-model timeout (degraded non-ok status) is skipped too.
        // The floor below keeps the skip path from swallowing the
        // test.
        if (isSmtKind(GetParam()) &&
            (!piped.ok() || !legacy.solverOptimal ||
             !piped.program.solverOptimal))
            continue;
        ASSERT_TRUE(piped.ok()) << piped.status.message;
        expectBitIdentical(legacy, piped.program);
        ++strict;
    }
    const int total = static_cast<int>(paperBenchmarks().size());
    if (isSmtKind(GetParam()))
        EXPECT_GE(strict, total - 4);
    else
        EXPECT_EQ(strict, total);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, PipelineEquivalence, ::testing::ValuesIn(kAllMapperKinds),
    [](const ::testing::TestParamInfo<MapperKind> &info) {
        std::string n = mapperKindName(info.param);
        for (char &c : n)
            if (c == '-' || c == '*' || c == '+')
                c = '_';
        return n;
    });

TEST(PipelineTraces, EveryStageIsTimedInOrder)
{
    PipelineResult r =
        standardPipeline(machineForDay(0),
                         optionsFor(MapperKind::GreedyE))
            .run(benchmarkByName("BV4").circuit);
    ASSERT_TRUE(r.ok());

    const auto &traces = r.program.stageTraces;
    ASSERT_EQ(traces.size(), 4u);
    EXPECT_EQ(traces[0].stage, "placement");
    EXPECT_EQ(traces[1].stage, "routing");
    EXPECT_EQ(traces[2].stage, "scheduling");
    EXPECT_EQ(traces[3].stage, "prediction");
    EXPECT_EQ(traces[0].pass, "GreedyE*");
    for (const StageTrace &t : traces)
        EXPECT_GE(t.seconds, 0.0);
    EXPECT_NE(traces[2].note.find("makespan"), std::string::npos);
    EXPECT_GE(r.program.compileSeconds, totalStageSeconds(traces));
}

TEST(PipelineStatus, OversizedProgramIsInfeasibleNotThrown)
{
    GridTopology small(2, 2);
    CalibrationModel model(small, kSeed);
    auto machine =
        std::make_shared<const Machine>(small, model.forDay(0));
    Benchmark b = benchmarkByName("BV6");

    for (MapperKind kind :
         {MapperKind::Qiskit, MapperKind::GreedyE, MapperKind::GreedyV,
          MapperKind::GreedyETrack}) {
        SCOPED_TRACE(mapperKindName(kind));
        PipelineResult r =
            standardPipeline(machine, optionsFor(kind)).run(b.circuit);
        EXPECT_FALSE(r.ok());
        EXPECT_FALSE(r.hasProgram);
        EXPECT_EQ(r.status.code, CompileStatusCode::Infeasible);
        EXPECT_FALSE(r.status.message.empty());
        EXPECT_FALSE(r.failedStage.empty());
        // The traces of the stages that ran are preserved.
        EXPECT_FALSE(r.program.stageTraces.empty());
    }

    // The back-compat facade keeps the legacy throwing contract.
    CompilerOptions opts = optionsFor(MapperKind::GreedyE);
    NoiseAdaptiveCompiler compiler(small, model.forDay(0), opts);
    EXPECT_THROW(compiler.compile(b.circuit), FatalError);
    PipelineResult shim = compiler.compileWithStatus(b.circuit);
    EXPECT_EQ(shim.status.code, CompileStatusCode::Infeasible);
}

TEST(PipelineStatus, UnsatisfiableSolveProducesDegradedFallback)
{
    // A calibration whose T2 windows are shorter than any gate makes
    // the SMT coherence constraints unsatisfiable — deterministically,
    // unlike a wall-clock timeout. The pipeline degrades to the
    // trivial-layout fallback (the legacy SmtMapper contract) while
    // the structured status reports the solver failure and stage.
    GridTopology topo = GridTopology::ibmq16();
    Calibration cal = test::uniformCalibration(topo);
    cal.t2Us.assign(topo.numQubits(), 1e-3);
    auto machine = std::make_shared<const Machine>(topo, cal);

    PipelineResult r =
        standardPipeline(machine, optionsFor(MapperKind::TSmtStar))
            .run(benchmarkByName("BV4").circuit);
    ASSERT_TRUE(r.hasProgram);
    EXPECT_FALSE(r.status.ok());
    EXPECT_EQ(r.status.code, CompileStatusCode::Infeasible);
    EXPECT_EQ(r.failedStage, "placement");
    EXPECT_EQ(r.program.solverStatus, "unsat");
    EXPECT_FALSE(r.program.solverOptimal);
    EXPECT_GT(r.program.predictedSuccess, 0.0);
}

TEST(PipelineQasm, RoundTripPreservesSemanticsAndGateCounts)
{
    auto machine = machineForDay(0);
    for (MapperKind kind :
         {MapperKind::Qiskit, MapperKind::GreedyE,
          MapperKind::GreedyETrack, MapperKind::RSmtStar}) {
        SCOPED_TRACE(mapperKindName(kind));
        Benchmark b = benchmarkByName("Toffoli");
        PipelineResult r =
            standardPipeline(machine, optionsFor(kind)).run(b.circuit);
        ASSERT_TRUE(r.ok()) << r.status.message;

        Circuit hw = r.program.hwCircuit(b.circuit.numClbits());
        std::string qasm = emitQasm(hw);

        // Re-parses, computes the right answer, and preserves the
        // hardware CNOT count (routing SWAPs expand to 3 CNOTs).
        Circuit parsed = parseQasm(qasm, hw.name());
        EXPECT_EQ(parsed.numQubits(), machine->numQubits());
        EXPECT_EQ(idealOutcome(parsed), b.expected);
        EXPECT_EQ(parsed.cnotCount(),
                  r.program.schedule.hwCnotCount());

        // Emission is a fixpoint: parse(emit(x)) emits identically.
        EXPECT_EQ(emitQasm(parsed), qasm);
    }
}

TEST(PipelineBuilderApi, MixAndMatchScenarioMatrix)
{
    auto machine = machineForDay(0);
    Benchmark b = benchmarkByName("Adder");

    // A combination Table 1 never shipped: GreedyV* placement under
    // the live-tracking scheduler.
    Pipeline vtrack = Pipeline::forMachine(machine)
                          .placement(passes::greedyVertex())
                          .routing(passes::liveRouting())
                          .scheduling(passes::trackingScheduling())
                          .named("GreedyV*+track")
                          .build();
    PipelineResult rv = vtrack.run(b.circuit);
    ASSERT_TRUE(rv.ok()) << rv.status.message;
    EXPECT_EQ(rv.program.mapperName, "GreedyV*+track");
    EXPECT_GT(rv.program.predictedSuccess, 0.0);
    test::expectScheduleWellFormed(*machine, rv.program.schedule);

    // GreedyE* placement under rectangle-reservation best-duration
    // routing (previously only reachable through the SMT bundles).
    Pipeline err = Pipeline::forMachine(machine)
                       .placement(passes::greedyEdge())
                       .routing(passes::routeSelection(
                           RoutingPolicy::RectangleReservation,
                           RouteSelect::BestDuration))
                       .build();
    PipelineResult re = err.run(b.circuit);
    ASSERT_TRUE(re.ok()) << re.status.message;
    test::expectScheduleWellFormed(*machine, re.program.schedule);

    // Different routing policy => genuinely different configuration,
    // same placement.
    EXPECT_EQ(rv.program.layout.size(), re.program.layout.size());
}

TEST(PipelineBuilderApi, DefaultsAndIntrospection)
{
    auto machine = machineForDay(0);
    Pipeline pipe = Pipeline::forMachine(machine)
                        .placement(passes::greedyEdge())
                        .build();
    EXPECT_EQ(pipe.name(), "GreedyE*");
    ASSERT_EQ(pipe.stages().size(), 4u);
    EXPECT_EQ(std::string(pipe.stages()[1]->stage()), "routing");

    // Missing placement is a configuration error.
    EXPECT_THROW(Pipeline::forMachine(machine).build(), FatalError);

    // So is a mismatched routing/scheduling pairing: live routing
    // feeds only a live-routing scheduler, and vice versa.
    EXPECT_THROW(Pipeline::forMachine(machine)
                     .placement(passes::greedyEdge())
                     .routing(passes::liveRouting())
                     .build(), // defaults to the list scheduler
                 FatalError);
    EXPECT_THROW(Pipeline::forMachine(machine)
                     .placement(passes::greedyEdge())
                     .scheduling(passes::trackingScheduling())
                     .build(), // defaults to precomputed routing
                 FatalError);
}

TEST(PipelineBuilderApi, ReusableAcrossCircuitsAndDays)
{
    // One pipeline object, many compiles: results match fresh
    // pipelines (stateless passes).
    auto machine = machineForDay(2);
    CompilerOptions opts = optionsFor(MapperKind::GreedyV);
    Pipeline pipe = standardPipeline(machine, opts);
    for (const char *name : {"BV4", "Adder", "QFT"}) {
        Benchmark b = benchmarkByName(name);
        PipelineResult a = pipe.run(b.circuit);
        PipelineResult fresh =
            standardPipeline(machine, opts).run(b.circuit);
        ASSERT_TRUE(a.ok());
        ASSERT_TRUE(fresh.ok());
        expectBitIdentical(fresh.program, a.program);
    }
}

} // namespace
} // namespace qc
