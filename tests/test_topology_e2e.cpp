/**
 * @file
 * Non-grid end-to-end tests: heavy-hex, ring, and file-loaded
 * coupling graphs compile through every Table 1 bundle and the
 * compiled programs compute the correct answer on the (noise-free)
 * simulator — the semantic-preservation property, now machine-shape
 * independent.
 */

#include <gtest/gtest.h>

#include "machine/calibration_io.hpp"
#include "machine/calibration_model.hpp"
#include "test_util.hpp"

namespace qc {
namespace {

using test::expectScheduleWellFormed;
using test::kSeed;
using test::noiselessOptions;

/** The non-grid fleet every bundle must serve. */
std::vector<Topology>
nonGridMachines()
{
    // A file-style edge list: IBMQ5-yorktown-like "bowtie" graph.
    const char *bowtie = "# bowtie device\n"
                         "0 1\n0 2\n1 2\n2 3\n2 4\n3 4\n";
    return {
        HeavyHexTopology(3),
        RingTopology(8),
        GraphTopology::fromEdgeList(bowtie, "bowtie5"),
    };
}

struct TopoE2eCase
{
    std::string topoName; ///< index into nonGridMachines() by name
    std::string benchmark;
    MapperKind mapper;
};

class NonGridEndToEnd : public ::testing::TestWithParam<TopoE2eCase>
{
  protected:
    static Topology
    topoByName(const std::string &name)
    {
        for (Topology &t : cache())
            if (t.name() == name)
                return t;
        QC_FATAL("unknown test topology ", name);
    }

  private:
    static std::vector<Topology> &
    cache()
    {
        static std::vector<Topology> topos = nonGridMachines();
        return topos;
    }
};

TEST_P(NonGridEndToEnd, CompiledProgramComputesCorrectAnswer)
{
    const auto &p = GetParam();
    Topology topo = topoByName(p.topoName);
    CalibrationModel model(topo, kSeed);
    auto machine =
        std::make_shared<const Machine>(topo, model.forDay(0));
    Benchmark b = benchmarkByName(p.benchmark);

    CompilerOptions opts;
    opts.mapper = p.mapper;
    opts.smtTimeoutMs = 30'000;
    PipelineResult r = standardPipeline(machine, opts).run(b.circuit);
    ASSERT_TRUE(r.hasProgram) << r.status.message;
    const CompiledProgram &cp = r.program;

    validateLayout(cp.layout, b.circuit.numQubits(),
                   machine->numQubits());
    expectScheduleWellFormed(*machine, cp.schedule);
    EXPECT_GT(cp.predictedSuccess, 0.0);
    EXPECT_LE(cp.predictedSuccess, 1.0);

    // Semantic preservation: the placed, routed, scheduled hardware
    // program returns the benchmark's answer on a noise-free machine.
    auto ideal = runNoisy(*machine, cp.schedule,
                          b.circuit.numClbits(), b.expected,
                          noiselessOptions());
    EXPECT_DOUBLE_EQ(ideal.successRate, 1.0)
        << p.benchmark << " mis-compiled by " << cp.mapperName
        << " on " << topo.name();
}

std::vector<TopoE2eCase>
cases()
{
    std::vector<TopoE2eCase> out;
    const std::vector<std::string> topos = {"heavyhex3", "ring8",
                                            "bowtie5"};
    // Every bundle on every machine with a movement-heavy kernel;
    // spot-check a swap-free one on the cheap heuristics.
    for (const auto &t : topos) {
        for (MapperKind k : kAllMapperKinds) {
            // bowtie5 has 5 qubits: Toffoli (3 qubits) fits
            // everywhere; BV4 needs 5+.
            out.push_back({t, "Toffoli", k});
        }
        out.push_back({t, "BV4", MapperKind::GreedyE});
        out.push_back({t, "BV4", MapperKind::GreedyETrack});
        out.push_back({t, "QFT", MapperKind::Qiskit});
    }
    return out;
}

std::string
caseName(const ::testing::TestParamInfo<TopoE2eCase> &info)
{
    std::string n = info.param.topoName + "_" + info.param.benchmark +
                    "_" + mapperKindName(info.param.mapper);
    for (char &c : n)
        if (c == '-' || c == '*' || c == '+')
            c = '_';
    return n;
}

INSTANTIATE_TEST_SUITE_P(Matrix, NonGridEndToEnd,
                         ::testing::ValuesIn(cases()), caseName);

TEST(NonGridScheduling, IndexedMatchesReferenceOnHeavyHex)
{
    // The indexed per-qubit ledger must stay bit-identical to the
    // reference full scan off the grid too.
    HeavyHexTopology topo(3);
    CalibrationModel model(topo, kSeed);
    auto machine =
        std::make_shared<const Machine>(topo, model.forDay(0));
    for (MapperKind kind :
         {MapperKind::GreedyE, MapperKind::GreedyV, MapperKind::Qiskit}) {
        SCOPED_TRACE(mapperKindName(kind));
        CompilerOptions indexed;
        indexed.mapper = kind;
        CompilerOptions reference = indexed;
        reference.referenceScheduler = true;
        for (const char *bench : {"BV6", "Toffoli", "Adder"}) {
            Benchmark b = benchmarkByName(bench);
            PipelineResult ri =
                standardPipeline(machine, indexed).run(b.circuit);
            PipelineResult rr =
                standardPipeline(machine, reference).run(b.circuit);
            ASSERT_TRUE(ri.ok()) << ri.status.message;
            ASSERT_TRUE(rr.ok()) << rr.status.message;
            EXPECT_TRUE(rr.program.schedule.identicalTo(
                ri.program.schedule))
                << bench;
            EXPECT_EQ(rr.program.swapCount, ri.program.swapCount);
            EXPECT_EQ(rr.program.duration, ri.program.duration);
        }
    }
}

TEST(NonGridCalibrationIo, RoundTripsThroughTopologyHeader)
{
    RingTopology topo(8);
    CalibrationModel model(topo, kSeed);
    Calibration cal = model.forDay(3);
    std::string text = saveCalibration(cal, topo);
    EXPECT_NE(text.find("topology ring8 8 8"), std::string::npos);
    Calibration back = loadCalibration(text, topo);
    EXPECT_EQ(back.day, cal.day);
    EXPECT_EQ(back.t2Us, cal.t2Us);
    EXPECT_EQ(back.cnotError, cal.cnotError);
    EXPECT_EQ(back.cnotDuration, cal.cnotDuration);

    // Loading against a different topology fails loudly.
    LinearTopology other(8);
    EXPECT_THROW(loadCalibration(text, other), FatalError);
}

} // namespace
} // namespace qc
