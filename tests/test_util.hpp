/**
 * @file
 * Shared helpers for the test suite: canonical experiment
 * environments and schedule-invariant checkers reused across suites.
 */

#ifndef QC_TESTS_TEST_UTIL_HPP
#define QC_TESTS_TEST_UTIL_HPP

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "route/routing.hpp"
#include "sched/schedule.hpp"
#include "support/logging.hpp"

namespace qc::test {

/** Seed used everywhere so failures reproduce exactly. */
inline constexpr std::uint64_t kSeed = 20190131; // paper arXiv date

/** Process-wide IBMQ16 environment. */
inline const ExperimentEnv &
env()
{
    static ExperimentEnv e(kSeed);
    return e;
}

/** Day-0 machine (fresh instance per call; references env().topo()). */
inline Machine
day0()
{
    return env().machineForDay(0);
}

/**
 * Assert the structural invariants every legal schedule must satisfy:
 *  - ops on a shared qubit never overlap in time,
 *  - op windows are non-negative and within the makespan,
 *  - two-qubit ops act on adjacent hardware qubits,
 *  - qubitFinish reflects the last use of each qubit.
 */
inline void
expectScheduleWellFormed(const Machine &machine, const Schedule &sched)
{
    const auto &topo = machine.topo();
    ASSERT_EQ(sched.numHwQubits, topo.numQubits());

    std::vector<Timeslot> last_finish(sched.numHwQubits, 0);
    for (const auto &op : sched.ops) {
        EXPECT_GE(op.start, 0);
        EXPECT_GT(op.duration, 0);
        EXPECT_LE(op.finish(), sched.makespan);
        if (op.gate.isTwoQubit()) {
            EXPECT_TRUE(topo.adjacent(op.gate.q0, op.gate.q1))
                << "two-qubit op on non-adjacent qubits " << op.gate.q0
                << "," << op.gate.q1;
        }
    }

    // Pairwise qubit-overlap check (schedules here are small).
    for (size_t i = 0; i < sched.ops.size(); ++i) {
        for (size_t j = i + 1; j < sched.ops.size(); ++j) {
            const auto &a = sched.ops[i];
            const auto &b = sched.ops[j];
            bool share = a.gate.touches(b.gate.q0) ||
                         (b.gate.isTwoQubit() && a.gate.touches(b.gate.q1));
            if (!share)
                continue;
            bool disjoint =
                a.finish() <= b.start || b.finish() <= a.start;
            EXPECT_TRUE(disjoint)
                << "ops " << a.gate.toString() << " and "
                << b.gate.toString() << " overlap in time";
        }
    }

    for (const auto &op : sched.ops) {
        last_finish[op.gate.q0] =
            std::max(last_finish[op.gate.q0], op.finish());
        if (op.gate.isTwoQubit())
            last_finish[op.gate.q1] =
                std::max(last_finish[op.gate.q1], op.finish());
    }
    for (int h = 0; h < sched.numHwQubits; ++h)
        EXPECT_EQ(sched.qubitFinish[h], last_finish[h]);
}

/**
 * A perfectly uniform calibration: every edge/qubit identical. Under
 * it, reliability-optimal mappings are purely graph-theoretic (no
 * noisy-element avoidance), which makes SWAP-count assertions exact.
 */
inline Calibration
uniformCalibration(const Topology &topo)
{
    Calibration cal;
    cal.t1Us.assign(topo.numQubits(), 80.0);
    cal.t2Us.assign(topo.numQubits(), 70.0);
    cal.readoutError.assign(topo.numQubits(), 0.05);
    cal.cnotError.assign(topo.numEdges(), 0.03);
    cal.cnotDuration.assign(topo.numEdges(), 10);
    cal.oneQubitError = 0.002;
    cal.oneQubitDuration = 1;
    cal.readoutDuration = 12;
    return cal;
}

/** Noise-free execution options (one deterministic trial suffices). */
inline ExecutionOptions
noiselessOptions()
{
    ExecutionOptions opts;
    opts.trials = 8;
    opts.seed = kSeed;
    opts.noise.gateErrors = false;
    opts.noise.decoherence = false;
    opts.noise.readoutErrors = false;
    return opts;
}

} // namespace qc::test

#endif // QC_TESTS_TEST_UTIL_HPP
