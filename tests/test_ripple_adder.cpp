/**
 * @file
 * Ripple-carry adder workload tests: arithmetic correctness across
 * operand sweeps, interaction-graph shape, and large-circuit routing
 * integration (13-16 qubit programs on IBMQ16).
 */

#include <gtest/gtest.h>

#include "ir/program_graph.hpp"
#include "test_util.hpp"

namespace qc {
namespace {

using test::day0;
using test::expectScheduleWellFormed;
using test::noiselessOptions;

struct AddCase
{
    int bits;
    unsigned a;
    unsigned b;
};

class RippleAdderArithmetic : public ::testing::TestWithParam<AddCase>
{
};

TEST_P(RippleAdderArithmetic, IdealSimulationAddsCorrectly)
{
    const auto &p = GetParam();
    Benchmark bench = makeRippleCarryAdder(p.bits, p.a, p.b);
    EXPECT_EQ(idealOutcome(bench.circuit), bench.expected);

    // The b-register region of the expected string is the binary sum.
    unsigned sum = 0;
    for (int i = 0; i < p.bits; ++i)
        if (bench.expected[static_cast<size_t>(p.bits + i)] == '1')
            sum |= 1u << i;
    unsigned carry_out =
        bench.expected[static_cast<size_t>(3 * p.bits)] == '1'
            ? 1u << p.bits
            : 0u;
    EXPECT_EQ(sum | carry_out, p.a + p.b);
}

std::vector<AddCase>
addCases()
{
    std::vector<AddCase> cases;
    // Exhaustive 1- and 2-bit sweeps.
    for (unsigned a = 0; a < 2; ++a)
        for (unsigned b = 0; b < 2; ++b)
            cases.push_back({1, a, b});
    for (unsigned a = 0; a < 4; ++a)
        for (unsigned b = 0; b < 4; ++b)
            cases.push_back({2, a, b});
    // Spot checks with carries rippling across all bits.
    cases.push_back({3, 7, 1});
    cases.push_back({3, 5, 3});
    cases.push_back({4, 15, 15});
    cases.push_back({4, 9, 6});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RippleAdderArithmetic, ::testing::ValuesIn(addCases()),
    [](const ::testing::TestParamInfo<AddCase> &info) {
        return "b" + std::to_string(info.param.bits) + "_a" +
               std::to_string(info.param.a) + "_p" +
               std::to_string(info.param.b);
    });

TEST(RippleAdder, InteractionGraphIsChainOfStars)
{
    Benchmark bench = makeRippleCarryAdder(3, 5, 3);
    ProgramGraph pg(bench.circuit);
    // Every edge touches a b-register qubit (the per-bit star center).
    for (const auto &e : pg.edges()) {
        bool touches_b = (e.a >= 3 && e.a < 6) || (e.b >= 3 && e.b < 6);
        EXPECT_TRUE(touches_b)
            << "edge " << e.a << "-" << e.b << " bypasses b register";
    }
    // Centers have degree <= 3 neighbors: embeddable on the grid.
    for (int q = 0; q < bench.circuit.numQubits(); ++q)
        EXPECT_LE(pg.neighbors(q).size(), 3u);
}

TEST(RippleAdder, RejectsBadSpecs)
{
    EXPECT_THROW(makeRippleCarryAdder(0, 0, 0), FatalError);
    EXPECT_THROW(makeRippleCarryAdder(2, 4, 0), FatalError);
    EXPECT_THROW(makeRippleCarryAdder(2, 0, 7), FatalError);
}

class RippleAdderRouting : public ::testing::TestWithParam<MapperKind>
{
};

TEST_P(RippleAdderRouting, FourBitAdderCompilesCorrectlyOnIbmq16)
{
    // 13 qubits, ~150 gates, 72 CNOTs: a machine-filling routing
    // stress test far beyond the paper benchmarks.
    Machine m = day0();
    Benchmark bench = makeRippleCarryAdder(4, 11, 6);

    CompilerOptions opts;
    opts.mapper = GetParam();
    auto mapper = NoiseAdaptiveCompiler::makeMapper(m, opts);
    CompiledProgram cp = mapper->compile(bench.circuit);
    expectScheduleWellFormed(m, cp.schedule);

    auto ideal = runNoisy(m, cp.schedule, bench.circuit.numClbits(),
                          bench.expected, noiselessOptions());
    EXPECT_DOUBLE_EQ(ideal.successRate, 1.0)
        << "4-bit adder mis-compiled by " << cp.mapperName;
}

INSTANTIATE_TEST_SUITE_P(
    Mappers, RippleAdderRouting,
    ::testing::Values(MapperKind::Qiskit, MapperKind::GreedyV,
                      MapperKind::GreedyE, MapperKind::GreedyETrack),
    [](const ::testing::TestParamInfo<MapperKind> &info) {
        std::string n = mapperKindName(info.param);
        for (char &c : n)
            if (c == '-' || c == '*' || c == '+')
                c = '_';
        return n;
    });

TEST(RippleAdder, FiveBitAdderFillsIbmq16)
{
    // 16 qubits on a 16-qubit machine: placement is a full
    // permutation, exercising the mappers' boundary case.
    Machine m = day0();
    Benchmark bench = makeRippleCarryAdder(5, 21, 10);
    ASSERT_EQ(bench.circuit.numQubits(), 16);

    CompilerOptions opts;
    opts.mapper = MapperKind::GreedyE;
    auto mapper = NoiseAdaptiveCompiler::makeMapper(m, opts);
    CompiledProgram cp = mapper->compile(bench.circuit);
    validateLayout(cp.layout, 16, 16);

    auto ideal = runNoisy(m, cp.schedule, bench.circuit.numClbits(),
                          bench.expected, noiselessOptions());
    EXPECT_DOUBLE_EQ(ideal.successRate, 1.0);
}

TEST(RippleAdder, SixBitAdderOnLargerMachine)
{
    // 19 qubits on a 4x5 grid: the "far NISQ" regime with the greedy
    // mapper, as the paper prescribes. Verified via one noise-free
    // statevector pass over the flattened hardware program (dense
    // Monte-Carlo trials would be wasteful at this size).
    GridTopology topo(4, 5);
    CalibrationModel model(topo, test::kSeed);
    Machine m(topo, model.forDay(0));
    Benchmark bench = makeRippleCarryAdder(6, 52, 23);

    CompilerOptions opts;
    opts.mapper = MapperKind::GreedyE;
    auto mapper = NoiseAdaptiveCompiler::makeMapper(m, opts);
    CompiledProgram cp = mapper->compile(bench.circuit);

    EXPECT_EQ(idealOutcome(cp.hwCircuit(bench.circuit.numClbits())),
              bench.expected);
}

} // namespace
} // namespace qc
