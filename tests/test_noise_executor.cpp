/**
 * @file
 * Noise-model and executor tests: ideal distributions for every
 * benchmark, noiseless success = 1, error monotonicity, channel
 * switches and determinism.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "mappers/greedy_mapper.hpp"
#include "test_util.hpp"

namespace qc {
namespace {

using test::day0;
using test::kSeed;
using test::noiselessOptions;

class IdealOutcomes : public ::testing::TestWithParam<std::string>
{
};

TEST_P(IdealOutcomes, DistributionIsNormalized)
{
    Benchmark b = benchmarkByName(GetParam());
    auto dist = idealDistribution(b.circuit);
    double total = 0.0;
    for (const auto &[key, p] : dist) {
        EXPECT_EQ(key.size(),
                  static_cast<size_t>(b.circuit.numClbits()));
        total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_P(IdealOutcomes, MatchesExpectedAnswer)
{
    Benchmark b = benchmarkByName(GetParam());
    EXPECT_EQ(idealOutcome(b.circuit), b.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Paper, IdealOutcomes,
    ::testing::Values("BV4", "BV6", "BV8", "HS2", "HS4", "HS6", "Toffoli",
                      "Fredkin", "Or", "Peres", "QFT", "Adder"));

TEST(IdealOutcome, RejectsNonDeterministicCircuits)
{
    Circuit c("coin", 1);
    c.h(0);
    c.measure(0, 0);
    EXPECT_THROW(idealOutcome(c), FatalError);
}

TEST(IdealDistribution, RejectsMidCircuitMeasurement)
{
    Circuit c("mid", 2);
    c.measure(0, 0);
    c.cnot(0, 1);
    EXPECT_THROW(idealDistribution(c), FatalError);
}

/** A benchmark compiled with GreedyE* for executor tests. */
struct MeasuredRunHelper
{
    Benchmark bench;
    CompiledProgram compiled;
};

MeasuredRunHelper
compileForTest(const Machine &m, const std::string &name)
{
    Benchmark b = benchmarkByName(name);
    GreedyEMapper mapper(m);
    return {b, mapper.compile(b.circuit)};
}

TEST(NoisyExecutor, NoiselessRunsAlwaysSucceed)
{
    Machine m = day0();
    auto run = compileForTest(m, "Toffoli");
    auto res = runNoisy(m, run.compiled.schedule,
                        run.bench.circuit.numClbits(), run.bench.expected,
                        noiselessOptions());
    EXPECT_EQ(res.successes, res.trials);
    EXPECT_DOUBLE_EQ(res.successRate, 1.0);
}

TEST(NoisyExecutor, CountsSumToTrials)
{
    Machine m = day0();
    auto run = compileForTest(m, "BV4");
    ExecutionOptions opts;
    opts.trials = 300;
    opts.seed = kSeed;
    auto res = runNoisy(m, run.compiled.schedule,
                        run.bench.circuit.numClbits(), run.bench.expected,
                        opts);
    int total = 0;
    for (const auto &[key, n] : res.counts)
        total += n;
    EXPECT_EQ(total, res.trials);
    EXPECT_NEAR(res.successRate,
                static_cast<double>(res.successes) / res.trials, 1e-12);
    EXPECT_GT(res.halfWidth95, 0.0);
}

TEST(NoisyExecutor, DeterministicUnderSeed)
{
    Machine m = day0();
    auto run = compileForTest(m, "HS4");
    ExecutionOptions opts;
    opts.trials = 200;
    opts.seed = 77;
    auto a = runNoisy(m, run.compiled.schedule,
                      run.bench.circuit.numClbits(), run.bench.expected,
                      opts);
    auto b = runNoisy(m, run.compiled.schedule,
                      run.bench.circuit.numClbits(), run.bench.expected,
                      opts);
    EXPECT_EQ(a.successes, b.successes);
    EXPECT_EQ(a.counts, b.counts);

    opts.seed = 78;
    auto c = runNoisy(m, run.compiled.schedule,
                      run.bench.circuit.numClbits(), run.bench.expected,
                      opts);
    EXPECT_NE(a.counts, c.counts);
}

TEST(NoisyExecutor, ErrorScaleIsMonotone)
{
    Machine m = day0();
    auto run = compileForTest(m, "Toffoli");
    auto rate = [&](double scale) {
        ExecutionOptions opts;
        opts.trials = 800;
        opts.seed = kSeed;
        opts.noise.errorScale = scale;
        return runNoisy(m, run.compiled.schedule,
                        run.bench.circuit.numClbits(),
                        run.bench.expected, opts)
            .successRate;
    };
    double s0 = rate(0.0);
    double s1 = rate(1.0);
    double s3 = rate(3.0);
    EXPECT_DOUBLE_EQ(s0, 1.0);
    EXPECT_GT(s1, s3);
    EXPECT_GT(s0, s1);
}

TEST(NoisyExecutor, ChannelSwitchesIsolateMechanisms)
{
    Machine m = day0();
    auto run = compileForTest(m, "BV4");
    auto rate = [&](bool gates, bool readout, bool decoh) {
        ExecutionOptions opts;
        opts.trials = 600;
        opts.seed = kSeed;
        opts.noise.gateErrors = gates;
        opts.noise.readoutErrors = readout;
        opts.noise.decoherence = decoh;
        return runNoisy(m, run.compiled.schedule,
                        run.bench.circuit.numClbits(),
                        run.bench.expected, opts)
            .successRate;
    };
    EXPECT_DOUBLE_EQ(rate(false, false, false), 1.0);
    // Each mechanism alone hurts.
    EXPECT_LT(rate(true, false, false), 1.0);
    EXPECT_LT(rate(false, true, false), 1.0);
    EXPECT_LT(rate(false, false, true), 1.0);
    // All together hurt at least as much as readout alone.
    EXPECT_LE(rate(true, true, true), rate(false, true, false) + 0.05);
}

TEST(NoiseChannels, ReadoutFlip)
{
    NoiseOptions off;
    off.readoutErrors = false;
    NoiseChannels silent(off);
    Rng rng(5);
    EXPECT_EQ(silent.readoutFlip(1, 1.0, rng), 1);

    NoiseChannels noisy({});
    int flips = 0;
    for (int i = 0; i < 4000; ++i)
        flips += noisy.readoutFlip(0, 0.25, rng);
    EXPECT_NEAR(flips / 4000.0, 0.25, 0.03);
}

TEST(NoiseChannels, DecoherenceGrowsWithTime)
{
    NoiseChannels noise({});
    Rng rng(11);
    auto flip_rate = [&](Timeslot t) {
        int flips = 0;
        for (int i = 0; i < 3000; ++i) {
            Statevector sv(1);
            noise.decohere(sv, 0, t, 60.0, 50.0, rng);
            if (sv.probOne(0) > 0.5)
                ++flips;
        }
        return flips / 3000.0;
    };
    double fast = flip_rate(50);
    double slow = flip_rate(2000);
    EXPECT_LT(fast, slow);
    EXPECT_LT(slow, 0.55); // saturates at 1/2
}

TEST(NoisyExecutor, RejectsWrongExpectedArity)
{
    Machine m = day0();
    auto run = compileForTest(m, "BV4");
    EXPECT_THROW(runNoisy(m, run.compiled.schedule,
                          run.bench.circuit.numClbits(), "01",
                          noiselessOptions()),
                 FatalError);
}

} // namespace
} // namespace qc
