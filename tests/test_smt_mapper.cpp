/**
 * @file
 * SMT mapper tests: the Z3 optimum must agree with the independent
 * branch-and-bound optimum on the reliability objective, duration
 * variants must prove optimality, and solutions must be valid.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "mappers/smt_mapper.hpp"
#include "solver/bnb_placer.hpp"
#include "solver/objective.hpp"
#include "test_util.hpp"

namespace qc {
namespace {

using test::day0;
using test::expectScheduleWellFormed;

class RsmtVsBnb : public ::testing::TestWithParam<std::string>
{
};

TEST_P(RsmtVsBnb, PlacementObjectivesAgree)
{
    // Like-for-like cross-validation: Z3 in placement-only mode
    // solves exactly the branch-and-bound problem, so the optima
    // must coincide.
    Machine m = day0();
    Benchmark b = benchmarkByName(GetParam());

    SmtMapperOptions opts;
    opts.variant = SmtVariant::RSmtStar;
    opts.readoutWeight = 0.5;
    opts.timeoutMs = 30'000;
    opts.jointScheduling = false;
    SmtMapper mapper(m, opts);
    CompiledProgram smt = mapper.compile(b.circuit);
    ASSERT_TRUE(smt.solverOptimal) << smt.solverStatus;

    BnbOptions bnb_opts;
    bnb_opts.readoutWeight = 0.5;
    BnbPlacer bnb(m, b.circuit, bnb_opts);
    BnbResult br = bnb.solve();
    ASSERT_TRUE(br.optimal);

    double smt_obj =
        evaluateReliability(b.circuit, smt.layout, m).weighted(0.5);
    EXPECT_NEAR(smt_obj, br.objective, 1e-6)
        << "Z3 and branch-and-bound disagree on " << b.name;
}

TEST_P(RsmtVsBnb, JointObjectiveNeverBeatsPlacementRelaxation)
{
    // The joint formulation adds constraints (coherence, routing
    // overlap), so its optimum can only be as good as or worse than
    // the placement-only relaxation the branch-and-bound solves.
    Machine m = day0();
    Benchmark b = benchmarkByName(GetParam());

    SmtMapperOptions opts;
    opts.variant = SmtVariant::RSmtStar;
    opts.readoutWeight = 0.5;
    opts.timeoutMs = 30'000;
    SmtMapper mapper(m, opts);
    CompiledProgram smt = mapper.compile(b.circuit);
    ASSERT_TRUE(smt.solverOptimal) << smt.solverStatus;

    BnbOptions bnb_opts;
    bnb_opts.readoutWeight = 0.5;
    BnbPlacer bnb(m, b.circuit, bnb_opts);
    BnbResult br = bnb.solve();
    ASSERT_TRUE(br.optimal);

    double smt_obj =
        evaluateReliability(b.circuit, smt.layout, m).weighted(0.5);
    EXPECT_LE(smt_obj, br.objective + 1e-6) << b.name;
}

INSTANTIATE_TEST_SUITE_P(Paper, RsmtVsBnb,
                         ::testing::Values("BV4", "BV6", "HS2", "HS4",
                                           "QFT", "Peres", "Toffoli"));

TEST(SmtMapper, Names)
{
    Machine m = day0();
    SmtMapperOptions opts;
    opts.variant = SmtVariant::TSmt;
    opts.policy = RoutingPolicy::RectangleReservation;
    EXPECT_EQ(SmtMapper(m, opts).name(), "T-SMT RR");
    opts.variant = SmtVariant::TSmtStar;
    opts.policy = RoutingPolicy::OneBendPath;
    EXPECT_EQ(SmtMapper(m, opts).name(), "T-SMT* 1BP");
    opts.variant = SmtVariant::RSmtStar;
    opts.readoutWeight = 0.5;
    EXPECT_EQ(SmtMapper(m, opts).name(), "R-SMT* w=0.5");
}

TEST(SmtMapper, RSmtStarForcesOneBendPaths)
{
    Machine m = day0();
    SmtMapperOptions opts;
    opts.variant = SmtVariant::RSmtStar;
    opts.policy = RoutingPolicy::RectangleReservation;
    SmtMapper mapper(m, opts);
    EXPECT_EQ(mapper.options().policy, RoutingPolicy::OneBendPath);
}

TEST(SmtMapper, DurationVariantsProveOptimality)
{
    Machine m = day0();
    Benchmark b = benchmarkByName("BV4");
    for (SmtVariant v : {SmtVariant::TSmt, SmtVariant::TSmtStar}) {
        SmtMapperOptions opts;
        opts.variant = v;
        opts.timeoutMs = 30'000;
        SmtMapper mapper(m, opts);
        CompiledProgram cp = mapper.compile(b.circuit);
        EXPECT_TRUE(cp.solverOptimal) << cp.solverStatus;
        expectScheduleWellFormed(m, cp.schedule);
        validateLayout(cp.layout, b.circuit.numQubits(), m.numQubits());
    }
}

TEST(SmtMapper, ZeroSwapBenchmarksGetZeroSwapsOnUniformMachine)
{
    // Star/pair interaction graphs embed in the grid: with uniform
    // error rates the optimal reliability mapping strictly prefers
    // adjacency, so it uses no qubit movement (paper Sec. 7). (On a
    // real calibration day, movement can legitimately win if it buys
    // much better readout qubits.)
    GridTopology topo = GridTopology::ibmq16();
    Machine m(topo, test::uniformCalibration(topo));
    for (const char *name : {"BV4", "BV8", "HS6", "QFT", "Adder"}) {
        Benchmark b = benchmarkByName(name);
        SmtMapperOptions opts;
        opts.variant = SmtVariant::RSmtStar;
        opts.timeoutMs = 30'000;
        SmtMapper mapper(m, opts);
        CompiledProgram cp = mapper.compile(b.circuit);
        EXPECT_EQ(cp.swapCount, 0) << name;
    }
}

TEST(SmtMapper, TriangleBenchmarksNeedSwaps)
{
    // Triangles cannot embed in a bipartite grid: at least one routed
    // CNOT (there-and-back SWAP pair) is unavoidable.
    GridTopology topo = GridTopology::ibmq16();
    Machine m(topo, test::uniformCalibration(topo));
    for (const char *name : {"Toffoli", "Peres"}) {
        Benchmark b = benchmarkByName(name);
        SmtMapperOptions opts;
        opts.variant = SmtVariant::RSmtStar;
        opts.timeoutMs = 30'000;
        SmtMapper mapper(m, opts);
        CompiledProgram cp = mapper.compile(b.circuit);
        EXPECT_GE(cp.swapCount, 2) << name;
    }
}

TEST(SmtMapper, JunctionsRecordedForCnots)
{
    Machine m = day0();
    Benchmark b = benchmarkByName("Toffoli");
    SmtMapperOptions opts;
    opts.variant = SmtVariant::RSmtStar;
    opts.timeoutMs = 30'000;
    SmtMapper mapper(m, opts);
    CompiledProgram cp = mapper.compile(b.circuit);
    ASSERT_EQ(cp.junctions.size(), b.circuit.size());
    for (size_t i = 0; i < b.circuit.size(); ++i) {
        if (b.circuit.gate(i).op == Op::CNOT)
            EXPECT_GE(cp.junctions[i], 0);
        else
            EXPECT_EQ(cp.junctions[i], -1);
    }
}

TEST(SmtMapper, OmegaOnePlacesMeasuredQubitsOnBestReadouts)
{
    // With w = 1 only readout terms score. Placement-only mode is
    // used because the joint formulation's coherence constraint can
    // legitimately veto far-apart readout-optimal placements (their
    // routed CNOTs run long) — exactly the Fig. 8c pathology.
    Machine m = day0();
    Benchmark b = benchmarkByName("HS2");
    SmtMapperOptions opts;
    opts.variant = SmtVariant::RSmtStar;
    opts.readoutWeight = 1.0;
    opts.timeoutMs = 30'000;
    opts.jointScheduling = false;
    SmtMapper mapper(m, opts);
    CompiledProgram cp = mapper.compile(b.circuit);
    ASSERT_TRUE(cp.solverOptimal);
    auto order = m.qubitsByReadoutReliability();
    double best = std::log(m.cal().readoutReliability(order[0])) +
                  std::log(m.cal().readoutReliability(order[1]));
    double got = std::log(m.cal().readoutReliability(cp.layout[0])) +
                 std::log(m.cal().readoutReliability(cp.layout[1]));
    EXPECT_NEAR(got, best, 1e-9);
}

TEST(SmtMapper, TinyTimeoutStillProducesRunnableCode)
{
    Machine m = day0();
    Benchmark b = benchmarkByName("Fredkin");
    SmtMapperOptions opts;
    opts.variant = SmtVariant::RSmtStar;
    opts.timeoutMs = 1; // effectively no solver time
    SmtMapper mapper(m, opts);
    CompiledProgram cp = mapper.compile(b.circuit);
    validateLayout(cp.layout, b.circuit.numQubits(), m.numQubits());
    expectScheduleWellFormed(m, cp.schedule);
}

TEST(SmtMapper, RejectsOversizedProgram)
{
    GridTopology topo(2, 2);
    CalibrationModel model(topo, 3);
    Machine m(topo, model.forDay(0));
    Benchmark b = benchmarkByName("BV6");
    SmtMapperOptions opts;
    SmtMapper mapper(m, opts);
    EXPECT_THROW(mapper.compile(b.circuit), FatalError);
}

TEST(SmtMapper, NonJointSchedulingMatchesJointObjective)
{
    // Placement-only mode must reach the same Eq. 12 optimum; only
    // start times are realized differently.
    Machine m = day0();
    Benchmark b = benchmarkByName("HS4");

    SmtMapperOptions joint;
    joint.variant = SmtVariant::RSmtStar;
    joint.timeoutMs = 30'000;
    CompiledProgram a = SmtMapper(m, joint).compile(b.circuit);

    SmtMapperOptions flat = joint;
    flat.jointScheduling = false;
    CompiledProgram c = SmtMapper(m, flat).compile(b.circuit);

    double obj_a =
        evaluateReliability(b.circuit, a.layout, m).weighted(0.5);
    double obj_c =
        evaluateReliability(b.circuit, c.layout, m).weighted(0.5);
    EXPECT_NEAR(obj_a, obj_c, 1e-6);
}

} // namespace
} // namespace qc
