/**
 * @file
 * Reservation/scheduler hot-path stress tests: the indexed
 * incremental list scheduler (ReservationLedger + cached ready-queue)
 * must be bit-identical to the legacy full-scan implementation kept
 * behind SchedulerOptions::referenceMode — across every route
 * selection and policy on the Table 2 set, across all seven
 * MapperKind bundles, and on randomized dense-CNOT programs with
 * seeded RNG on machines larger than IBMQ16.
 */

#include <gtest/gtest.h>

#include <functional>

#include "core/passes.hpp"
#include "sched/reservation_ledger.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"
#include "workloads/random_circuits.hpp"

namespace qc {
namespace {

using test::day0;
using test::kSeed;

/**
 * Full field-by-field Schedule equality. The verdict is
 * Schedule::identicalTo (shared with bench_scheduler_hotpath's CI
 * smoke); the per-field expectations below only localize a failure.
 */
void
expectSchedulesIdentical(const Schedule &a, const Schedule &b)
{
    EXPECT_TRUE(a.identicalTo(b));
    EXPECT_EQ(a.numHwQubits, b.numHwQubits);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.qubitFinish, b.qubitFinish);
    ASSERT_EQ(a.ops.size(), b.ops.size());
    for (size_t i = 0; i < a.ops.size(); ++i) {
        EXPECT_EQ(a.ops[i].gate, b.ops[i].gate) << "op " << i;
        EXPECT_EQ(a.ops[i].start, b.ops[i].start) << "op " << i;
        EXPECT_EQ(a.ops[i].duration, b.ops[i].duration) << "op " << i;
        EXPECT_EQ(a.ops[i].progGate, b.ops[i].progGate) << "op " << i;
        EXPECT_EQ(a.ops[i].isRouteSwap, b.ops[i].isRouteSwap)
            << "op " << i;
    }
    ASSERT_EQ(a.macros.size(), b.macros.size());
    for (size_t i = 0; i < a.macros.size(); ++i) {
        EXPECT_EQ(a.macros[i].progGate, b.macros[i].progGate);
        EXPECT_EQ(a.macros[i].start, b.macros[i].start);
        EXPECT_EQ(a.macros[i].duration, b.macros[i].duration);
    }
}

/** Run both scheduler implementations and demand identity. */
void
expectIndexedMatchesReference(const Machine &m, const Circuit &prog,
                              const std::vector<HwQubit> &layout,
                              SchedulerOptions opts)
{
    opts.referenceMode = false;
    Schedule indexed = ListScheduler(m, opts).run(prog, layout);
    opts.referenceMode = true;
    Schedule reference = ListScheduler(m, opts).run(prog, layout);
    expectSchedulesIdentical(reference, indexed);
    test::expectScheduleWellFormed(m, indexed);
}

/** Scattered injective layout (stride 5 is coprime to 16). */
std::vector<HwQubit>
scatterLayout(const Circuit &prog, int n_hw, int stride)
{
    std::vector<HwQubit> layout(prog.numQubits());
    for (int q = 0; q < prog.numQubits(); ++q)
        layout[q] = (q * stride) % n_hw;
    return layout;
}

// ------------------------------------------------------------------ //
// Table 2 set, every route selection / policy / duration model
// ------------------------------------------------------------------ //

TEST(SchedulerHotpath, Table2SetIsBitIdenticalAcrossConfigs)
{
    Machine m = day0();
    for (const Benchmark &b : paperBenchmarks()) {
        SCOPED_TRACE(b.name);
        std::vector<HwQubit> layout =
            scatterLayout(b.circuit, m.numQubits(), 5);

        struct Config
        {
            RouteSelect select;
            RoutingPolicy policy;
            bool calibrated;
        };
        const Config configs[] = {
            {RouteSelect::BestReliability, RoutingPolicy::OneBendPath,
             true},
            {RouteSelect::BestDuration,
             RoutingPolicy::RectangleReservation, true},
            {RouteSelect::Dijkstra, RoutingPolicy::OneBendPath, true},
            {RouteSelect::BestDuration, RoutingPolicy::OneBendPath,
             false},
        };
        for (const Config &cfg : configs) {
            SchedulerOptions opts;
            opts.select = cfg.select;
            opts.policy = cfg.policy;
            opts.calibratedDurations = cfg.calibrated;
            expectIndexedMatchesReference(m, b.circuit, layout, opts);
        }

        // Fixed per-gate junctions (the SMT/Qiskit route mode).
        SchedulerOptions fixed;
        fixed.select = RouteSelect::Fixed;
        fixed.fixedJunctions.assign(b.circuit.size(), -1);
        for (size_t i = 0; i < b.circuit.size(); ++i)
            if (b.circuit.gate(i).op == Op::CNOT)
                fixed.fixedJunctions[i] = static_cast<int>(i) % 2;
        expectIndexedMatchesReference(m, b.circuit, layout, fixed);
    }
}

// ------------------------------------------------------------------ //
// Randomized dense-CNOT stress, IBMQ16 and larger grids
// ------------------------------------------------------------------ //

struct StressCase
{
    int rows;
    int cols;
    int qubits;
    int gates;
    int cnotPermille;
    std::uint64_t seed;
    RoutingPolicy policy;
};

class HotpathStress : public ::testing::TestWithParam<StressCase>
{
};

TEST_P(HotpathStress, DenseRandomProgramsAreBitIdentical)
{
    const StressCase &p = GetParam();
    GridTopology topo(p.rows, p.cols);
    CalibrationModel model(topo, kSeed);
    Machine m(topo, model.forDay(0));

    Circuit prog = makeDenseCnotCircuit(p.qubits, p.gates, p.seed,
                                        p.cnotPermille);
    // Stride 5 is coprime to every tested grid size, so the scatter
    // stays injective while forcing long routes.
    ASSERT_NE(m.numQubits() % 5, 0);
    std::vector<HwQubit> layout =
        scatterLayout(prog, m.numQubits(), 5);

    SchedulerOptions opts;
    opts.policy = p.policy;
    opts.select = RouteSelect::BestReliability;
    expectIndexedMatchesReference(m, prog, layout, opts);
}

std::vector<StressCase>
stressCases()
{
    std::vector<StressCase> cases;
    for (std::uint64_t seed : {11u, 12u, 13u}) {
        cases.push_back({2, 8, 12, 200, 700, seed,
                         RoutingPolicy::OneBendPath});
        cases.push_back({2, 8, 16, 250, 700, seed,
                         RoutingPolicy::RectangleReservation});
    }
    cases.push_back({4, 8, 24, 300, 600, 21,
                     RoutingPolicy::OneBendPath});
    cases.push_back({4, 8, 32, 400, 600, 22,
                     RoutingPolicy::RectangleReservation});
    cases.push_back({8, 8, 48, 400, 500, 23,
                     RoutingPolicy::OneBendPath});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HotpathStress, ::testing::ValuesIn(stressCases()),
    [](const ::testing::TestParamInfo<StressCase> &info) {
        const StressCase &c = info.param;
        return "g" + std::to_string(c.rows) + "x" +
               std::to_string(c.cols) + "_q" +
               std::to_string(c.qubits) + "_n" +
               std::to_string(c.gates) + "_s" +
               std::to_string(c.seed) + "_" +
               routingPolicyName(c.policy);
    });

TEST(SchedulerHotpath, UniformRandomMixMatchesToo)
{
    Machine m = day0();
    for (std::uint64_t seed : {31u, 32u}) {
        RandomCircuitSpec spec;
        spec.numQubits = 12;
        spec.numGates = 300;
        spec.seed = seed;
        Circuit prog = makeRandomCircuit(spec);
        SchedulerOptions opts;
        expectIndexedMatchesReference(
            m, prog, scatterLayout(prog, m.numQubits(), 5), opts);
    }
}

// ------------------------------------------------------------------ //
// All seven MapperKind bundles on the Table 2 set
// ------------------------------------------------------------------ //

/** Replays a previously computed placement (layout + junctions). */
class FixedPlacementPass : public PlacementPass
{
  public:
    FixedPlacementPass(std::vector<HwQubit> layout,
                       std::vector<int> junctions)
        : layout_(std::move(layout)), junctions_(std::move(junctions))
    {
    }

    std::string name() const override { return "fixed"; }

    CompileStatus run(CompileContext &ctx) const override
    {
        ctx.layout = layout_;
        ctx.junctions = junctions_;
        return CompileStatus::success();
    }

  private:
    std::vector<HwQubit> layout_;
    std::vector<int> junctions_;
};

bool
isSmtKind(MapperKind kind)
{
    return kind == MapperKind::TSmt || kind == MapperKind::TSmtStar ||
           kind == MapperKind::RSmtStar;
}

class BundleIdentity : public ::testing::TestWithParam<MapperKind>
{
};

/**
 * The bundles route-select differently (fixed junctions, best
 * reliability/duration, live tracking) — each must produce the same
 * program whether the scheduling stage runs indexed or reference.
 * SMT placements are solved once and replayed through a fixed
 * placement pass so Z3 nondeterminism under wall-clock budgets cannot
 * fake a diff.
 */
TEST_P(BundleIdentity, IndexedEqualsReferenceOnTable2Set)
{
    const MapperKind kind = GetParam();
    auto machine = std::make_shared<const Machine>(day0());

    CompilerOptions indexed_opts;
    indexed_opts.mapper = kind;
    indexed_opts.smtTimeoutMs = 10'000;
    CompilerOptions reference_opts = indexed_opts;
    reference_opts.referenceScheduler = true;

    for (const Benchmark &b : paperBenchmarks()) {
        SCOPED_TRACE(b.name);

        if (isSmtKind(kind)) {
            PipelineResult solved =
                standardPipeline(machine, indexed_opts).run(b.circuit);
            if (!solved.hasProgram)
                continue; // solver hard-timeout; covered elsewhere
            const RouteSelect select =
                kind == MapperKind::RSmtStar
                    ? RouteSelect::BestReliability
                    : RouteSelect::BestDuration;
            auto replay = [&](bool reference) {
                return Pipeline::forMachine(machine)
                    .placement(std::make_unique<FixedPlacementPass>(
                        solved.program.layout,
                        solved.program.junctions))
                    .routing(passes::routeSelection(
                        RoutingPolicy::OneBendPath, select, true,
                        reference))
                    .build()
                    .run(b.circuit);
            };
            PipelineResult ri = replay(false);
            PipelineResult rr = replay(true);
            ASSERT_TRUE(ri.ok()) << ri.status.message;
            ASSERT_TRUE(rr.ok()) << rr.status.message;
            expectSchedulesIdentical(rr.program.schedule,
                                     ri.program.schedule);
            EXPECT_EQ(rr.program.swapCount, ri.program.swapCount);
            EXPECT_EQ(rr.program.duration, ri.program.duration);
            EXPECT_EQ(rr.program.predictedSuccess,
                      ri.program.predictedSuccess);
        } else {
            PipelineResult ri =
                standardPipeline(machine, indexed_opts).run(b.circuit);
            PipelineResult rr =
                standardPipeline(machine, reference_opts)
                    .run(b.circuit);
            ASSERT_TRUE(ri.ok()) << ri.status.message;
            ASSERT_TRUE(rr.ok()) << rr.status.message;
            EXPECT_EQ(rr.program.layout, ri.program.layout);
            expectSchedulesIdentical(rr.program.schedule,
                                     ri.program.schedule);
            EXPECT_EQ(rr.program.swapCount, ri.program.swapCount);
            EXPECT_EQ(rr.program.duration, ri.program.duration);
            EXPECT_EQ(rr.program.predictedSuccess,
                      ri.program.predictedSuccess);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, BundleIdentity, ::testing::ValuesIn(kAllMapperKinds),
    [](const ::testing::TestParamInfo<MapperKind> &info) {
        std::string n = mapperKindName(info.param);
        for (char &c : n)
            if (c == '-' || c == '*' || c == '+')
                c = '_';
        return n;
    });

// ------------------------------------------------------------------ //
// ReservationLedger unit behavior
// ------------------------------------------------------------------ //

/** Single-cell region on the 2x8 grid (row-major qubit ids). */
Region
cellRegion(int x, int y)
{
    return Region::fromQubits({x * 8 + y});
}

TEST(ReservationLedger, PushesPastOverlappingIntervals)
{
    ReservationLedger ledger(16);
    Region a = cellRegion(0, 0);
    ledger.reserve(a, 0, 10);
    ledger.reserve(a, 12, 20);

    // Overlap with both reservations in turn: 0 -> 10, fits [10,12)?
    // duration 5 collides with [12,20) -> 20.
    EXPECT_EQ(ledger.feasibleStart(a, 5, 0), 20);
    // Duration 2 fits the [10, 12) gap exactly.
    EXPECT_EQ(ledger.feasibleStart(a, 2, 0), 10);
    // Spatially disjoint region is never pushed.
    EXPECT_EQ(ledger.feasibleStart(cellRegion(1, 5), 5, 0), 0);
}

TEST(ReservationLedger, FrontierRetiresDeadReservations)
{
    ReservationLedger ledger(16);
    for (int i = 0; i < 8; ++i)
        ledger.reserve(cellRegion(0, i), i * 10,
                       i * 10 + 10);
    EXPECT_EQ(ledger.liveCount(), 8);
    ledger.advanceFrontier(35);
    EXPECT_EQ(ledger.liveCount(), 5); // ends 40, 50, ..., 80 survive

    // Queries clamp to the frontier; retired intervals never push.
    EXPECT_EQ(ledger.feasibleStart(cellRegion(0, 0), 5, 0), 35);
    // A long window from the frontier still collides with [70, 80).
    EXPECT_EQ(ledger.feasibleStart(cellRegion(0, 7), 40, 0), 80);

    // The frontier is monotone: lesser values are ignored.
    ledger.advanceFrontier(10);
    EXPECT_EQ(ledger.frontier(), 35);
}

/**
 * Fuzz the ledger against the O(history) reference scan under a
 * monotone commit frontier — the scheduler's usage pattern — with a
 * caller-supplied random-region generator.
 */
void
fuzzLedgerAgainstBruteForce(int num_qubits,
                            const std::function<Region()> &random_region,
                            Rng &rng)
{
    ReservationLedger ledger(num_qubits);

    struct Res
    {
        Region region;
        Timeslot start, end;
    };
    std::vector<Res> all;
    Timeslot frontier = 0;

    auto bruteForce = [&](const Region &region, Timeslot dur,
                          Timeslot earliest) {
        Timeslot start = std::max(earliest, frontier);
        bool moved = true;
        while (moved) {
            moved = false;
            for (const Res &res : all) {
                if (start < res.end && res.start < start + dur &&
                    region.overlaps(res.region)) {
                    start = res.end;
                    moved = true;
                }
            }
        }
        return start;
    };

    for (int step = 0; step < 400; ++step) {
        Region region = random_region();
        Timeslot dur = rng.uniformInt(1, 30);
        Timeslot earliest = frontier + rng.uniformInt(0, 40);
        ASSERT_EQ(ledger.feasibleStart(region, dur, earliest),
                  bruteForce(region, dur, earliest))
            << "step " << step;
        // Occasionally commit at a monotone frontier, like the
        // scheduler does.
        if (rng.bernoulli(0.6)) {
            Timeslot s = bruteForce(region, dur, earliest);
            ledger.advanceFrontier(s);
            frontier = s;
            ledger.reserve(region, s, s + dur);
            all.push_back({region, s, s + dur});
        }
    }
    EXPECT_GT(ledger.totalCount(), ledger.liveCount());
}

TEST(ReservationLedger, MatchesBruteForceOnRandomWorkload)
{
    Rng rng(kSeed, "ledger-fuzz");
    GridTopology topo(4, 8);
    auto randomRegion = [&]() {
        int x0 = rng.uniformInt(0, 3), x1 = rng.uniformInt(0, 3);
        int y0 = rng.uniformInt(0, 7), y1 = rng.uniformInt(0, 7);
        return regionFromRects(
            topo, {Rect::spanning({x0, y0}, {x1, y1})});
    };
    fuzzLedgerAgainstBruteForce(topo.numQubits(), randomRegion, rng);
}

TEST(ReservationLedger, MatchesBruteForceOnHeavyHexGraph)
{
    // Non-grid regression: regions are BFS-path footprints on a
    // heavy-hex lattice, so buckets no longer correspond to grid
    // cells at all.
    Rng rng(kSeed, "ledger-fuzz-heavyhex");
    HeavyHexTopology topo(3);
    Machine machine(topo, test::uniformCalibration(topo));
    auto randomRegion = [&]() {
        HwQubit a = rng.uniformInt(0, topo.numQubits() - 1);
        HwQubit b = rng.uniformInt(0, topo.numQubits() - 1);
        if (a == b)
            b = (b + 1) % topo.numQubits();
        int j = rng.uniformInt(0, machine.numOneBendPaths(a, b) - 1);
        return routeRegion(topo, machine.oneBendPath(a, b, j),
                           RoutingPolicy::OneBendPath);
    };
    fuzzLedgerAgainstBruteForce(topo.numQubits(), randomRegion, rng);
}

} // namespace
} // namespace qc
