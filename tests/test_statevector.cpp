/**
 * @file
 * Statevector simulator tests: gate algebra, entanglement, phases,
 * measurement collapse and norm preservation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/statevector.hpp"
#include "support/logging.hpp"
#include "workloads/random_circuits.hpp"

namespace qc {
namespace {

TEST(Statevector, InitialState)
{
    Statevector sv(3);
    EXPECT_EQ(sv.dimension(), 8u);
    EXPECT_NEAR(std::abs(sv.amp(0)), 1.0, 1e-12);
    EXPECT_NEAR(sv.norm(), 1.0, 1e-12);
    EXPECT_NEAR(sv.probOne(0), 0.0, 1e-12);
}

TEST(Statevector, RejectsBadSizes)
{
    EXPECT_THROW(Statevector(0), FatalError);
    EXPECT_THROW(Statevector(30), FatalError);
}

TEST(Statevector, XFlips)
{
    Statevector sv(2);
    sv.apply({Op::X, 1, kInvalidQubit, -1});
    EXPECT_NEAR(sv.probOne(1), 1.0, 1e-12);
    EXPECT_NEAR(sv.probOne(0), 0.0, 1e-12);
}

TEST(Statevector, HadamardSuperposesAndInverts)
{
    Statevector sv(1);
    sv.apply({Op::H, 0, kInvalidQubit, -1});
    EXPECT_NEAR(sv.probOne(0), 0.5, 1e-12);
    sv.apply({Op::H, 0, kInvalidQubit, -1});
    EXPECT_NEAR(sv.probOne(0), 0.0, 1e-12);
}

TEST(Statevector, PhaseGateAlgebra)
{
    // T^2 = S, S^2 = Z, (Tdg after T) = identity.
    Statevector a(1), b(1);
    a.apply({Op::H, 0, kInvalidQubit, -1});
    b.apply({Op::H, 0, kInvalidQubit, -1});
    a.apply({Op::T, 0, kInvalidQubit, -1});
    a.apply({Op::T, 0, kInvalidQubit, -1});
    b.apply({Op::S, 0, kInvalidQubit, -1});
    for (std::uint64_t i = 0; i < a.dimension(); ++i)
        EXPECT_NEAR(std::abs(a.amp(i) - b.amp(i)), 0.0, 1e-12);

    // Apply Tdg twice to a and Sdg once to b: states stay equal.
    a.apply({Op::Tdg, 0, kInvalidQubit, -1});
    a.apply({Op::Tdg, 0, kInvalidQubit, -1});
    b.apply({Op::Sdg, 0, kInvalidQubit, -1});
    for (std::uint64_t i = 0; i < a.dimension(); ++i)
        EXPECT_NEAR(std::abs(a.amp(i) - b.amp(i)), 0.0, 1e-12);
    // Both are back to H|0>: equal real amplitudes.
    EXPECT_NEAR(std::abs(a.amp(0) - a.amp(1)), 0.0, 1e-12);
}

TEST(Statevector, YAndZ)
{
    Statevector sv(1);
    sv.apply({Op::Y, 0, kInvalidQubit, -1});
    EXPECT_NEAR(sv.probOne(0), 1.0, 1e-12);
    sv.apply({Op::Z, 0, kInvalidQubit, -1});
    EXPECT_NEAR(sv.probOne(0), 1.0, 1e-12);
    EXPECT_NEAR(sv.norm(), 1.0, 1e-12);
}

class CnotTruthTable : public ::testing::TestWithParam<int>
{
};

TEST_P(CnotTruthTable, BasisStates)
{
    int input = GetParam(); // bit0 = control, bit1 = target
    Statevector sv(2);
    if (input & 1)
        sv.apply({Op::X, 0, kInvalidQubit, -1});
    if (input & 2)
        sv.apply({Op::X, 1, kInvalidQubit, -1});
    sv.apply({Op::CNOT, 0, 1, -1});
    int expected = (input & 1) ? input ^ 2 : input;
    EXPECT_NEAR(std::abs(sv.amp(static_cast<std::uint64_t>(expected))),
                1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(AllInputs, CnotTruthTable,
                         ::testing::Values(0, 1, 2, 3));

TEST(Statevector, BellState)
{
    Statevector sv(2);
    sv.apply({Op::H, 0, kInvalidQubit, -1});
    sv.apply({Op::CNOT, 0, 1, -1});
    auto ps = sv.probabilities();
    EXPECT_NEAR(ps[0], 0.5, 1e-12);
    EXPECT_NEAR(ps[3], 0.5, 1e-12);
    EXPECT_NEAR(ps[1] + ps[2], 0.0, 1e-12);
}

TEST(Statevector, GhzState)
{
    Statevector sv(4);
    sv.apply({Op::H, 0, kInvalidQubit, -1});
    for (int q = 0; q < 3; ++q)
        sv.apply({Op::CNOT, q, q + 1, -1});
    auto ps = sv.probabilities();
    EXPECT_NEAR(ps[0], 0.5, 1e-12);
    EXPECT_NEAR(ps[15], 0.5, 1e-12);
}

TEST(Statevector, SwapExchanges)
{
    Statevector sv(2);
    sv.apply({Op::X, 0, kInvalidQubit, -1});
    sv.apply({Op::Swap, 0, 1, -1});
    EXPECT_NEAR(sv.probOne(0), 0.0, 1e-12);
    EXPECT_NEAR(sv.probOne(1), 1.0, 1e-12);
}

TEST(Statevector, PauliInjection)
{
    Statevector sv(2);
    sv.applyPauli(Pauli::X, 0);
    EXPECT_NEAR(sv.probOne(0), 1.0, 1e-12);
    sv.applyPauli(Pauli::I, 1);
    EXPECT_NEAR(sv.probOne(1), 0.0, 1e-12);
    sv.applyPauli(Pauli::Y, 1);
    EXPECT_NEAR(sv.probOne(1), 1.0, 1e-12);
    sv.applyPauli(Pauli::Z, 1);
    EXPECT_NEAR(sv.norm(), 1.0, 1e-12);
}

TEST(Statevector, MeasureCollapses)
{
    Rng rng(123);
    Statevector sv(2);
    sv.apply({Op::X, 1, kInvalidQubit, -1});
    EXPECT_EQ(sv.measure(1, rng), 1);
    EXPECT_EQ(sv.measure(0, rng), 0);
    EXPECT_NEAR(sv.norm(), 1.0, 1e-12);
}

TEST(Statevector, MeasureStatistics)
{
    Rng rng(7);
    int ones = 0;
    for (int i = 0; i < 2000; ++i) {
        Statevector sv(1);
        sv.apply({Op::H, 0, kInvalidQubit, -1});
        ones += sv.measure(0, rng);
    }
    EXPECT_NEAR(ones / 2000.0, 0.5, 0.05);
}

TEST(Statevector, MeasureIsProjective)
{
    Rng rng(9);
    Statevector sv(2);
    sv.apply({Op::H, 0, kInvalidQubit, -1});
    sv.apply({Op::CNOT, 0, 1, -1});
    int first = sv.measure(0, rng);
    // Entangled partner must agree.
    EXPECT_EQ(sv.measure(1, rng), first);
}

class NormPreservation : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(NormPreservation, RandomCircuitsKeepNormOne)
{
    RandomCircuitSpec spec;
    spec.numQubits = 5;
    spec.numGates = 120;
    spec.seed = GetParam();
    spec.measureAll = false;
    Circuit c = makeRandomCircuit(spec);
    Statevector sv(5);
    for (const auto &g : c.gates())
        sv.apply(g);
    EXPECT_NEAR(sv.norm(), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormPreservation,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Statevector, MeasureRejectedViaApply)
{
    Statevector sv(1);
    EXPECT_DEATH(sv.apply({Op::Measure, 0, kInvalidQubit, 0}),
                 "measure");
}

} // namespace
} // namespace qc
