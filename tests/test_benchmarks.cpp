/**
 * @file
 * Benchmark-suite tests: Table 2 characteristics, interaction-graph
 * shapes, and semantic correctness of every kernel construction.
 */

#include <gtest/gtest.h>

#include "ir/program_graph.hpp"
#include "sim/executor.hpp"
#include "support/logging.hpp"
#include "workloads/benchmarks.hpp"

namespace qc {
namespace {

struct Table2Row
{
    const char *name;
    int qubits;
    int cnots;
};

class Table2 : public ::testing::TestWithParam<Table2Row>
{
};

TEST_P(Table2, QubitAndCnotCounts)
{
    const auto &row = GetParam();
    Benchmark b = benchmarkByName(row.name);
    EXPECT_EQ(b.circuit.numQubits(), row.qubits);
    EXPECT_EQ(b.circuit.cnotCount(), row.cnots);
}

TEST_P(Table2, ExpectedMatchesIdealSimulation)
{
    const auto &row = GetParam();
    Benchmark b = benchmarkByName(row.name);
    EXPECT_EQ(idealOutcome(b.circuit), b.expected);
}

// Paper Table 2 values; Adder deviates (18 vs 10) because our adder
// uses linear-nearest-neighbor Toffolis to stay SWAP-free on the grid
// (documented in DESIGN.md).
INSTANTIATE_TEST_SUITE_P(
    Paper, Table2,
    ::testing::Values(Table2Row{"BV4", 4, 3}, Table2Row{"BV6", 6, 3},
                      Table2Row{"BV8", 8, 3}, Table2Row{"HS2", 2, 2},
                      Table2Row{"HS4", 4, 4}, Table2Row{"HS6", 6, 6},
                      Table2Row{"Fredkin", 3, 8}, Table2Row{"Or", 3, 6},
                      Table2Row{"Peres", 3, 5},
                      Table2Row{"Toffoli", 3, 6},
                      Table2Row{"Adder", 4, 18},
                      Table2Row{"QFT", 2, 5}),
    [](const ::testing::TestParamInfo<Table2Row> &info) {
        return std::string(info.param.name);
    });

TEST(Benchmarks, SuiteHasTwelveEntries)
{
    auto all = paperBenchmarks();
    EXPECT_EQ(all.size(), 12u);
    for (const auto &b : all) {
        EXPECT_FALSE(b.name.empty());
        EXPECT_GT(b.circuit.measureCount(), 0);
        EXPECT_EQ(b.expected.size(),
                  static_cast<size_t>(b.circuit.numClbits()));
    }
}

TEST(Benchmarks, LookupByName)
{
    EXPECT_EQ(benchmarkByName("Toffoli").name, "Toffoli");
    EXPECT_THROW(benchmarkByName("nope"), FatalError);
}

TEST(Benchmarks, BvIsAStarOnTheAncilla)
{
    Benchmark b = makeBernsteinVazirani(8);
    ProgramGraph pg(b.circuit);
    // Ancilla (last qubit) participates in all 3 CNOTs.
    EXPECT_EQ(pg.degree(7), 3);
    for (const auto &e : pg.edges())
        EXPECT_TRUE(e.a == 7 || e.b == 7);
    // Ancilla is not measured.
    EXPECT_EQ(pg.readoutCount(7), 0);
}

TEST(Benchmarks, HiddenShiftIsDisjointPairs)
{
    Benchmark b = makeHiddenShift(6);
    ProgramGraph pg(b.circuit);
    EXPECT_EQ(pg.edges().size(), 3u);
    for (const auto &e : pg.edges()) {
        EXPECT_EQ(e.b, e.a + 1);
        EXPECT_EQ(e.a % 2, 0);
        EXPECT_EQ(e.weight, 2);
    }
}

TEST(Benchmarks, ReversibleKernelsAreTriangles)
{
    for (const char *name : {"Toffoli", "Fredkin", "Or", "Peres"}) {
        Benchmark b = benchmarkByName(name);
        ProgramGraph pg(b.circuit);
        EXPECT_EQ(pg.edges().size(), 3u)
            << name << " should touch all three qubit pairs";
    }
}

TEST(Benchmarks, AdderIsAStar)
{
    Benchmark b = makeAdder();
    ProgramGraph pg(b.circuit);
    // Star centered on q2: bipartite, so grid-embeddable SWAP-free.
    EXPECT_EQ(pg.edges().size(), 3u);
    for (const auto &e : pg.edges())
        EXPECT_TRUE(e.a == 2 || e.b == 2);
}

TEST(Benchmarks, BvRejectsTooFewQubits)
{
    EXPECT_THROW(makeBernsteinVazirani(1), FatalError);
    EXPECT_THROW(makeHiddenShift(3), FatalError);
    EXPECT_THROW(makeHiddenShift(0), FatalError);
}

TEST(Benchmarks, BvGeneralizes)
{
    // BV on 10 qubits still has 3 CNOTs (hidden string weight 3) and
    // verifies.
    Benchmark b = makeBernsteinVazirani(10);
    EXPECT_EQ(b.circuit.cnotCount(), 3);
    EXPECT_EQ(idealOutcome(b.circuit), b.expected);
}

TEST(Benchmarks, HiddenShiftGeneralizes)
{
    Benchmark b = makeHiddenShift(8);
    EXPECT_EQ(b.circuit.cnotCount(), 8);
    EXPECT_EQ(idealOutcome(b.circuit), b.expected);
}

TEST(Benchmarks, QftMatchesTable2GateCount)
{
    Benchmark b = makeQft();
    EXPECT_EQ(b.circuit.gateCount(), 13);
    EXPECT_EQ(b.circuit.cnotCount(), 5);
}

} // namespace
} // namespace qc
