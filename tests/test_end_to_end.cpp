/**
 * @file
 * End-to-end integration and property tests: every benchmark compiled
 * by every mapper must (a) produce a well-formed schedule and
 * (b) compute the correct answer when executed noise-free — the
 * semantic-preservation property of the whole compiler. Also checks
 * the paper's headline qualitative results on one machine-day.
 */

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace qc {
namespace {

using test::day0;
using test::env;
using test::expectScheduleWellFormed;
using test::kSeed;
using test::noiselessOptions;

struct E2eCase
{
    std::string benchmark;
    MapperKind mapper;
};

class EndToEnd : public ::testing::TestWithParam<E2eCase>
{
};

TEST_P(EndToEnd, CompiledProgramComputesCorrectAnswer)
{
    const auto &p = GetParam();
    Machine m = day0();
    Benchmark b = benchmarkByName(p.benchmark);

    CompilerOptions opts;
    opts.mapper = p.mapper;
    opts.smtTimeoutMs = 30'000;
    auto mapper = NoiseAdaptiveCompiler::makeMapper(m, opts);
    CompiledProgram cp = mapper->compile(b.circuit);

    validateLayout(cp.layout, b.circuit.numQubits(), m.numQubits());
    expectScheduleWellFormed(m, cp.schedule);

    // Semantic preservation: the placed, routed, scheduled hardware
    // program returns the benchmark's answer on a noise-free machine.
    auto ideal = runNoisy(m, cp.schedule, b.circuit.numClbits(),
                          b.expected, noiselessOptions());
    EXPECT_DOUBLE_EQ(ideal.successRate, 1.0)
        << p.benchmark << " mis-compiled by " << cp.mapperName;

    // Under real noise the success rate is a proper probability and
    // the model prediction is sane.
    ExecutionOptions noisy;
    noisy.trials = 300;
    noisy.seed = kSeed;
    auto real = runNoisy(m, cp.schedule, b.circuit.numClbits(),
                         b.expected, noisy);
    EXPECT_GE(real.successRate, 0.0);
    EXPECT_LE(real.successRate, 1.0);
    EXPECT_GT(cp.predictedSuccess, 0.0);
    EXPECT_LE(cp.predictedSuccess, 1.0);
}

std::vector<E2eCase>
e2eCases()
{
    std::vector<E2eCase> cases;
    const std::vector<std::string> all = {
        "BV4", "BV6", "BV8", "HS2", "HS4", "HS6",
        "Toffoli", "Fredkin", "Or", "Peres", "QFT", "Adder"};
    // Heuristics + baseline: the full matrix is cheap.
    for (const auto &b : all)
        for (MapperKind k : {MapperKind::Qiskit, MapperKind::GreedyV,
                             MapperKind::GreedyE})
            cases.push_back({b, k});
    // R-SMT* across the full suite (the headline configuration).
    for (const auto &b : all)
        cases.push_back({b, MapperKind::RSmtStar});
    // Duration variants on a representative subset.
    for (const auto &b :
         {std::string("BV4"), std::string("HS4"), std::string("Toffoli"),
          std::string("QFT")}) {
        cases.push_back({b, MapperKind::TSmt});
        cases.push_back({b, MapperKind::TSmtStar});
    }
    return cases;
}

std::string
e2eName(const ::testing::TestParamInfo<E2eCase> &info)
{
    std::string n = info.param.benchmark + "_" +
                    mapperKindName(info.param.mapper);
    for (char &c : n)
        if (c == '-' || c == '*')
            c = '_';
    return n;
}

INSTANTIATE_TEST_SUITE_P(Matrix, EndToEnd,
                         ::testing::ValuesIn(e2eCases()), e2eName);

TEST(PaperHeadlines, RSmtStarBeatsQiskitOnSuccessRate)
{
    // The paper's headline: noise-adaptive optimal mapping wins by a
    // large factor on real runs (geomean 2.9x). One day, three
    // benchmarks with movement-heavy baselines.
    Machine m = day0();
    double ratio_product = 1.0;
    int n = 0;
    for (const char *name : {"BV4", "BV8", "HS6"}) {
        Benchmark b = benchmarkByName(name);
        CompilerOptions rsmt;
        rsmt.mapper = MapperKind::RSmtStar;
        rsmt.smtTimeoutMs = 30'000;
        CompilerOptions qiskit;
        qiskit.mapper = MapperKind::Qiskit;
        auto a = runMeasured(m, b, rsmt, 1200, kSeed);
        auto c = runMeasured(m, b, qiskit, 1200, kSeed);
        EXPECT_GT(a.execution.successRate,
                  c.execution.successRate)
            << name;
        ratio_product *= a.execution.successRate /
                         std::max(c.execution.successRate, 1e-3);
        ++n;
    }
    double geomean_gain = std::pow(ratio_product, 1.0 / n);
    EXPECT_GT(geomean_gain, 1.2);
}

TEST(PaperHeadlines, DailyRecompilationAdaptsLayouts)
{
    // Sec. 7 "Resilience to Daily Variations": R-SMT* re-places
    // qubits as error rates drift. Across a week of calibrations the
    // layout must change at least once (T-SMT*'s static inputs rarely
    // do).
    Benchmark b = benchmarkByName("BV4");
    CompilerOptions opts;
    opts.mapper = MapperKind::RSmtStar;
    opts.smtTimeoutMs = 30'000;

    std::vector<std::vector<HwQubit>> layouts;
    for (int day = 0; day < 5; ++day) {
        Machine m = env().machineForDay(day);
        auto mapper = NoiseAdaptiveCompiler::makeMapper(m, opts);
        layouts.push_back(mapper->compile(b.circuit).layout);
    }
    bool changed = false;
    for (size_t i = 1; i < layouts.size(); ++i)
        changed = changed || layouts[i] != layouts[0];
    EXPECT_TRUE(changed);
}

TEST(PaperHeadlines, ZeroMovementBenchmarksBeatMovementOnes)
{
    // Sec. 7: benchmarks mappable without SWAPs (BV, HS, QFT, Adder)
    // succeed more often than the triangle kernels under the same
    // compiler.
    Machine m = day0();
    CompilerOptions opts;
    opts.mapper = MapperKind::RSmtStar;
    opts.smtTimeoutMs = 30'000;
    auto rate = [&](const char *name) {
        return runMeasured(m, benchmarkByName(name), opts, 1200, kSeed)
            .execution.successRate;
    };
    double bv4 = rate("BV4");
    double hs2 = rate("HS2");
    double toffoli = rate("Toffoli");
    double fredkin = rate("Fredkin");
    EXPECT_GT(bv4, toffoli);
    EXPECT_GT(hs2, fredkin);
}

} // namespace
} // namespace qc
