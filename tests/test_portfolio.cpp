/**
 * @file
 * Portfolio-racing tests: bundle-list parsing, the success upper
 * bound, deterministic winner selection (serial vs 8-thread
 * bit-identity), provable early cancellation, fingerprint
 * non-aliasing against single-bundle cache entries, service/report
 * integration, and the ThreadPool nested-submission deadlock guard —
 * the executor regression test wedges forever under a naive
 * submit-and-wait design.
 */

#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "core/portfolio.hpp"
#include "service/compile_service.hpp"
#include "service/fingerprints.hpp"
#include "service/portfolio_executor.hpp"
#include "tests/test_util.hpp"
#include "workloads/benchmarks.hpp"
#include "workloads/random_circuits.hpp"

namespace {

using namespace qc;
using qc::service::CompileService;
using qc::service::PoolPortfolioExecutor;
using qc::service::ServiceOptions;
using qc::service::ThreadPool;

/** Cheap heuristic bundles (no SMT): fast enough to race in tests. */
const std::vector<MapperKind> kHeuristics = {
    MapperKind::Qiskit, MapperKind::GreedyV, MapperKind::GreedyE,
    MapperKind::GreedyETrack, MapperKind::Sabre};

CompilerOptions
portfolioOptions(std::vector<MapperKind> bundles,
                 unsigned deadline_ms = 10'000)
{
    CompilerOptions options;
    options.portfolio.enabled = true;
    options.portfolio.bundles = std::move(bundles);
    options.portfolio.deadlineMs = deadline_ms;
    return options;
}

// ---------------------------------------------------------------- //
// Bundle-list parsing
// ---------------------------------------------------------------- //

TEST(PortfolioParse, LenientNamesAndOrderPreserved)
{
    auto bundles = parsePortfolioBundles("greedye, sabre ,rsmt*");
    ASSERT_EQ(bundles.size(), 3u);
    EXPECT_EQ(bundles[0], MapperKind::GreedyE);
    EXPECT_EQ(bundles[1], MapperKind::Sabre);
    EXPECT_EQ(bundles[2], MapperKind::RSmtStar);
}

TEST(PortfolioParse, RejectsBadInput)
{
    EXPECT_THROW(parsePortfolioBundles("nope"), FatalError);
    EXPECT_THROW(parsePortfolioBundles("sabre,sabre"), FatalError);
    EXPECT_THROW(parsePortfolioBundles(""), FatalError);
    EXPECT_THROW(parsePortfolioBundles("sabre,,greedye"), FatalError);
}

TEST(PortfolioParse, EmptyOptionListMeansEveryBundle)
{
    PortfolioOptions defaults;
    auto all = resolvedPortfolioBundles(defaults);
    ASSERT_EQ(all.size(), std::size(kAllMapperKinds));
    for (size_t i = 0; i < all.size(); ++i)
        EXPECT_EQ(all[i], kAllMapperKinds[i]);
}

TEST(PortfolioLaunch, HeuristicsBeforeSmtStably)
{
    const std::vector<MapperKind> bundles = {
        MapperKind::TSmt, MapperKind::GreedyE, MapperKind::RSmtStar,
        MapperKind::Sabre};
    auto order = PortfolioPass::launchOrder(bundles);
    ASSERT_EQ(order.size(), 4u);
    // GreedyE (1) and Sabre (3) first in their original order, then
    // TSmt (0) and RSmtStar (2) in theirs.
    EXPECT_EQ(order[0], 1u);
    EXPECT_EQ(order[1], 3u);
    EXPECT_EQ(order[2], 0u);
    EXPECT_EQ(order[3], 2u);
}

// ---------------------------------------------------------------- //
// Success upper bound
// ---------------------------------------------------------------- //

TEST(PortfolioBound, NoCandidatePredictionExceedsIt)
{
    auto machine = std::make_shared<const Machine>(test::day0());
    Circuit prog = makeRandomCircuit({5, 48, test::kSeed, true});
    const double ub = circuitSuccessUpperBound(*machine, prog);
    EXPECT_GT(ub, 0.0);
    EXPECT_LE(ub, 1.0);

    for (MapperKind kind : kHeuristics) {
        CompilerOptions options;
        options.mapper = kind;
        PipelineResult r =
            standardPipeline(machine, options).run(prog);
        ASSERT_TRUE(r.hasProgram) << mapperKindName(kind);
        EXPECT_LE(r.program.predictedSuccess, ub)
            << mapperKindName(kind);
    }
}

TEST(PortfolioBound, ExactOnBestCaseCircuit)
{
    // One CNOT placed on the (uniform) best edge, two readouts at the
    // (uniform) best reliability, zero SWAPs: a real compilation
    // achieves the bound exactly, float for float — the foundation of
    // the equality-form early cancellation.
    GridTopology topo(2, 4);
    auto machine = std::make_shared<const Machine>(
        topo, test::uniformCalibration(topo));
    Circuit prog("bell", 2);
    prog.cnot(0, 1);
    prog.measure(0, 0);
    prog.measure(1, 1);

    const double ub = circuitSuccessUpperBound(*machine, prog);
    CompilerOptions options;
    options.mapper = MapperKind::GreedyE;
    PipelineResult r = standardPipeline(machine, options).run(prog);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.program.predictedSuccess, ub);
}

// ---------------------------------------------------------------- //
// Racing: determinism and early cancellation
// ---------------------------------------------------------------- //

TEST(PortfolioRace, SerialWinnerTiesOrBeatsEverySingleBundle)
{
    auto machine = std::make_shared<const Machine>(test::day0());
    Circuit prog = makeRandomCircuit({5, 64, test::kSeed + 7, true});

    PortfolioPass pass(machine, portfolioOptions(kHeuristics));
    PortfolioResult raced = pass.run(prog);
    ASSERT_TRUE(raced.ok());
    ASSERT_GE(raced.winnerIndex, 0);

    for (MapperKind kind : kHeuristics) {
        CompilerOptions options;
        options.mapper = kind;
        PipelineResult solo =
            standardPipeline(machine, options).run(prog);
        if (!solo.ok() || !solo.program.solverOptimal)
            continue;
        EXPECT_GE(raced.best.program.predictedSuccess,
                  solo.program.predictedSuccess)
            << "portfolio lost to " << mapperKindName(kind);
    }
}

TEST(PortfolioRace, BitIdenticalSerialVsEightThreads)
{
    auto machine = std::make_shared<const Machine>(test::day0());
    ThreadPool pool(8);
    PoolPortfolioExecutor pooled(pool);

    for (int c = 0; c < 3; ++c) {
        Circuit prog =
            makeRandomCircuit({4 + c, 40 + 8 * c,
                               test::kSeed + 100 + c, true});
        PortfolioPass pass(machine, portfolioOptions(kHeuristics));

        PortfolioResult serial = pass.run(prog);          // oracle
        PortfolioResult threaded = pass.run(prog, &pooled);

        ASSERT_TRUE(serial.ok());
        ASSERT_TRUE(threaded.ok());
        EXPECT_EQ(serial.winnerIndex, threaded.winnerIndex);
        EXPECT_EQ(serial.best.program.mapperName,
                  threaded.best.program.mapperName);
        EXPECT_EQ(serial.best.program.predictedSuccess,
                  threaded.best.program.predictedSuccess);
        EXPECT_EQ(serial.best.program.duration,
                  threaded.best.program.duration);
        EXPECT_EQ(serial.best.program.swapCount,
                  threaded.best.program.swapCount);
        EXPECT_EQ(serial.best.program.layout,
                  threaded.best.program.layout);

        // A candidate that ran in both modes must agree bit for bit
        // (timing may skip candidates, never change their output).
        ASSERT_EQ(serial.candidates.size(),
                  threaded.candidates.size());
        for (size_t i = 0; i < serial.candidates.size(); ++i) {
            const PortfolioCandidate &a = serial.candidates[i];
            const PortfolioCandidate &b = threaded.candidates[i];
            if (a.cancelled || b.cancelled)
                continue;
            EXPECT_EQ(a.predictedSuccess, b.predictedSuccess)
                << a.name;
            EXPECT_EQ(a.duration, b.duration) << a.name;
        }
    }
}

TEST(PortfolioRace, ProvableWinnerCancelsUnstartedRivals)
{
    // On a uniform machine the single-CNOT program hits the success
    // upper bound exactly, so the first completed candidate provably
    // beats every rival: under the serial executor the SMT bundle
    // must be cancelled before it ever starts.
    GridTopology topo(2, 4);
    auto machine = std::make_shared<const Machine>(
        topo, test::uniformCalibration(topo));
    Circuit prog("bell", 2);
    prog.cnot(0, 1);
    prog.measure(0, 0);
    prog.measure(1, 1);

    PortfolioPass pass(
        machine, portfolioOptions(
                     {MapperKind::GreedyE, MapperKind::RSmtStar}));
    PortfolioResult raced = pass.run(prog);

    ASSERT_TRUE(raced.ok());
    EXPECT_EQ(raced.winnerIndex, 0);
    EXPECT_TRUE(raced.candidates[0].winner);
    EXPECT_EQ(raced.best.program.predictedSuccess, raced.upperBound);

    EXPECT_EQ(raced.launchedCount, 1);
    EXPECT_EQ(raced.cancelledCount, 1);
    EXPECT_TRUE(raced.candidates[1].cancelled);
    EXPECT_EQ(raced.candidates[1].status.code,
              CompileStatusCode::Cancelled);
    EXPECT_FALSE(raced.candidates[1].hasProgram);
}

TEST(PortfolioRace, CancellingTheRaceCancelsEveryCandidate)
{
    auto machine = std::make_shared<const Machine>(test::day0());
    Circuit prog = makeRandomCircuit({4, 32, test::kSeed, true});

    PortfolioPass pass(machine, portfolioOptions(kHeuristics));
    CancelToken cancel;
    cancel.requestCancel("caller gave up");
    PortfolioResult raced = pass.run(prog, nullptr, &cancel);

    EXPECT_FALSE(raced.ok());
    EXPECT_EQ(raced.winnerIndex, -1);
    EXPECT_EQ(raced.launchedCount, 0);
    EXPECT_EQ(raced.cancelledCount,
              static_cast<int>(kHeuristics.size()));
    EXPECT_EQ(raced.best.status.code, CompileStatusCode::Cancelled);
}

// ---------------------------------------------------------------- //
// Fingerprints: portfolio results never alias single-bundle entries
// ---------------------------------------------------------------- //

TEST(PortfolioFingerprints, KnobsSeparateCacheKeys)
{
    using qc::service::fingerprintOptions;

    CompilerOptions single;
    CompilerOptions racing = portfolioOptions({}, 10'000);
    EXPECT_NE(fingerprintOptions(single), fingerprintOptions(racing));

    CompilerOptions subset =
        portfolioOptions({MapperKind::GreedyE, MapperKind::Sabre});
    EXPECT_NE(fingerprintOptions(racing), fingerprintOptions(subset));

    CompilerOptions short_deadline = portfolioOptions({}, 500);
    EXPECT_NE(fingerprintOptions(racing),
              fingerprintOptions(short_deadline));

    CompilerOptions tie = portfolioOptions({}, 10'000);
    tie.portfolio.tieBreak = PortfolioTieBreak::ShortestDuration;
    EXPECT_NE(fingerprintOptions(racing), fingerprintOptions(tie));

    // "Empty = all" and the explicit full list compile identically,
    // so they must hash identically.
    CompilerOptions explicit_all = portfolioOptions(
        {kAllMapperKinds, kAllMapperKinds + std::size(kAllMapperKinds)});
    EXPECT_EQ(fingerprintOptions(racing),
              fingerprintOptions(explicit_all));

    // Inert knobs of a DISABLED portfolio must not fragment the
    // single-bundle key space.
    CompilerOptions inert;
    inert.portfolio.deadlineMs = 123;
    inert.portfolio.bundles = {MapperKind::Sabre};
    EXPECT_EQ(fingerprintOptions(single), fingerprintOptions(inert));

    // maxWorkers is an execution knob, not a result knob.
    CompilerOptions budgeted = portfolioOptions({}, 10'000);
    budgeted.portfolio.maxWorkers = 2;
    EXPECT_EQ(fingerprintOptions(racing),
              fingerprintOptions(budgeted));
}

// ---------------------------------------------------------------- //
// Pool executor: nested-submission deadlock guard
// ---------------------------------------------------------------- //

TEST(PoolExecutor, SaturatedPoolCannotWedgeOnNestedWork)
{
    // Two portfolio parents occupy BOTH workers of a 2-thread pool,
    // then each fans out 3 child closures. A naive executor that
    // queues children and blocks on their futures deadlocks here:
    // every worker is a blocked parent and nobody is left to run a
    // child. Help-while-wait parents drain their own lists, so this
    // must finish.
    ThreadPool pool(2);
    std::atomic<int> children_ran{0};

    auto parent = [&pool, &children_ran] {
        PoolPortfolioExecutor exec(pool);
        std::vector<std::function<void()>> tasks;
        for (int i = 0; i < 3; ++i)
            tasks.push_back([&children_ran] {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
                ++children_ran;
            });
        exec.runAll(std::move(tasks));
    };

    auto f1 = pool.submit(parent);
    auto f2 = pool.submit(parent);
    f1.get();
    f2.get();
    EXPECT_EQ(children_ran.load(), 6);
}

TEST(PoolExecutor, MaxWorkersBoundsBorrowingNotCorrectness)
{
    ThreadPool pool(4);
    PoolPortfolioExecutor exec(pool, 1); // caller-only budget
    std::atomic<int> ran{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 5; ++i)
        tasks.push_back([&ran] { ++ran; });
    exec.runAll(std::move(tasks));
    EXPECT_EQ(ran.load(), 5);
}

// ---------------------------------------------------------------- //
// Service integration
// ---------------------------------------------------------------- //

std::vector<service::CompileRequest>
portfolioRequests(const CompilerOptions &options)
{
    std::vector<std::pair<std::string, Circuit>> programs;
    for (int c = 0; c < 3; ++c)
        programs.emplace_back(
            "rand" + std::to_string(c),
            makeRandomCircuit(
                {4 + c, 36 + 6 * c, test::kSeed + 200 + c, true}));
    return CompileService::dailyBatch(test::env().calibrationModel(),
                                      programs, 0, 2, options);
}

TEST(PortfolioService, EightThreadBatchBitIdenticalToSerial)
{
    CompilerOptions options = portfolioOptions(kHeuristics);

    ServiceOptions serial_opts;
    serial_opts.threads = 1;
    CompileService serial(serial_opts);
    auto serial_batch =
        serial.compileBatch(portfolioRequests(options));

    ServiceOptions pooled_opts;
    pooled_opts.threads = 8;
    CompileService pooled(pooled_opts);
    auto pooled_batch =
        pooled.compileBatch(portfolioRequests(options));

    ASSERT_EQ(serial_batch.results.size(),
              pooled_batch.results.size());
    for (size_t i = 0; i < serial_batch.results.size(); ++i) {
        const auto &a = serial_batch.results[i];
        const auto &b = pooled_batch.results[i];
        ASSERT_TRUE(a.ok) << a.tag;
        ASSERT_TRUE(b.ok) << b.tag;
        EXPECT_EQ(a.winner, b.winner) << a.tag;
        EXPECT_EQ(a.program->predictedSuccess,
                  b.program->predictedSuccess)
            << a.tag;
        EXPECT_EQ(a.program->duration, b.program->duration) << a.tag;
        EXPECT_EQ(a.program->layout, b.program->layout) << a.tag;
    }

    // Report surface: every job raced, winners counted in
    // kAllMapperKinds order, candidate traces aggregated.
    const auto &report = pooled_batch.report;
    EXPECT_EQ(report.portfolioJobs,
              static_cast<int>(pooled_batch.results.size()));
    int wins = 0;
    for (const auto &[name, count] : report.portfolioWins)
        wins += count;
    EXPECT_EQ(wins, report.portfolioJobs);
    EXPECT_FALSE(report.stages.empty());
    EXPECT_NE(report.toString().find("portfolio:"),
              std::string::npos);
}

TEST(PortfolioService, RacedResultsAreCachedUnderPortfolioKey)
{
    CompilerOptions options = portfolioOptions(kHeuristics);
    ServiceOptions sopts;
    sopts.threads = 2;
    CompileService svc(sopts);

    auto first = svc.compileBatch(portfolioRequests(options));
    ASSERT_EQ(first.report.cacheHits, 0);

    auto second = svc.compileBatch(portfolioRequests(options));
    EXPECT_EQ(second.report.cacheHits,
              static_cast<int>(second.results.size()));

    // The same circuits compiled WITHOUT the portfolio miss the
    // portfolio entries (no aliasing between the key spaces).
    CompilerOptions single;
    single.mapper = MapperKind::GreedyE;
    auto solo = svc.compileBatch(portfolioRequests(single));
    EXPECT_EQ(solo.report.cacheHits, 0);
}

} // namespace
