/**
 * @file
 * Persistent-cache serialization tests: a CompiledProgram must
 * round-trip through the framed binary format field-for-field, and
 * every damaged blob — truncation, bit flips, wrong magic, future
 * version — must be rejected, never misparsed.
 */

#include <gtest/gtest.h>

#include "core/compiler.hpp"
#include "daemon/program_serdes.hpp"
#include "tests/test_util.hpp"
#include "workloads/benchmarks.hpp"

namespace {

using namespace qc;

/** A hand-built program exercising every serialized field. */
CompiledProgram
sampleProgram()
{
    CompiledProgram p;
    p.mapperName = "GreedyE*";
    p.programName = "sample";
    p.layout = {3, 1, 4, 1, 5};
    p.junctions = {-1, 9, 2, -1};
    p.schedule.numHwQubits = 6;
    p.schedule.ops.push_back(
        {Gate{Op::H, 3, kInvalidQubit, -1}, 0, 1, 0, false});
    p.schedule.ops.push_back({Gate{Op::CNOT, 3, 1, -1}, 1, 10, 1, false});
    p.schedule.ops.push_back({Gate{Op::Swap, 1, 4, -1}, 11, 30, 1, true});
    p.schedule.ops.push_back({Gate{Op::Measure, 4, kInvalidQubit, 2},
                              41, 12, 2, false});
    p.schedule.macros.push_back({0, 0, 1});
    p.schedule.macros.push_back({1, 1, 40});
    p.schedule.macros.push_back({2, 41, 12});
    p.schedule.makespan = 53;
    p.schedule.qubitFinish = {0, 41, 0, 11, 53, 0};
    p.duration = 53;
    p.logReliability = -0.73;
    p.predictedSuccess = 0.4819;
    p.swapCount = 1;
    p.compileSeconds = 0.0042;
    p.solverOptimal = false;
    p.solverStatus = "timeout after 60000 ms";
    p.stageTraces.push_back({"placement", "GreedyE*", 0.003, "ok"});
    p.stageTraces.push_back({"scheduling", "list", 0.001, ""});
    return p;
}

void
expectIdentical(const CompiledProgram &a, const CompiledProgram &b)
{
    EXPECT_EQ(a.mapperName, b.mapperName);
    EXPECT_EQ(a.programName, b.programName);
    EXPECT_EQ(a.layout, b.layout);
    EXPECT_EQ(a.junctions, b.junctions);
    EXPECT_TRUE(a.schedule.identicalTo(b.schedule));
    EXPECT_EQ(a.duration, b.duration);
    EXPECT_EQ(a.logReliability, b.logReliability);
    EXPECT_EQ(a.predictedSuccess, b.predictedSuccess);
    EXPECT_EQ(a.swapCount, b.swapCount);
    EXPECT_EQ(a.compileSeconds, b.compileSeconds);
    EXPECT_EQ(a.solverOptimal, b.solverOptimal);
    EXPECT_EQ(a.solverStatus, b.solverStatus);
    ASSERT_EQ(a.stageTraces.size(), b.stageTraces.size());
    for (std::size_t i = 0; i < a.stageTraces.size(); ++i) {
        EXPECT_EQ(a.stageTraces[i].stage, b.stageTraces[i].stage);
        EXPECT_EQ(a.stageTraces[i].pass, b.stageTraces[i].pass);
        EXPECT_EQ(a.stageTraces[i].seconds, b.stageTraces[i].seconds);
        EXPECT_EQ(a.stageTraces[i].note, b.stageTraces[i].note);
    }
}

TEST(ProgramSerdes, RoundTripsEveryField)
{
    CompiledProgram original = sampleProgram();
    std::string blob = daemon::serializeCompiledProgram(original);

    CompiledProgram restored;
    ASSERT_TRUE(daemon::deserializeCompiledProgram(blob, restored));
    expectIdentical(original, restored);
}

TEST(ProgramSerdes, RoundTripsRealPipelineOutput)
{
    GridTopology topo(2, 4);
    auto machine = std::make_shared<const Machine>(
        topo, test::uniformCalibration(topo));
    CompilerOptions opts;
    opts.mapper = MapperKind::GreedyE;
    PipelineResult result =
        standardPipeline(machine, opts)
            .run(benchmarkByName("Toffoli").circuit);
    ASSERT_TRUE(result.hasProgram);

    std::string blob =
        daemon::serializeCompiledProgram(result.program);
    CompiledProgram restored;
    ASSERT_TRUE(daemon::deserializeCompiledProgram(blob, restored));
    expectIdentical(result.program, restored);
}

TEST(ProgramSerdes, DeterministicBytes)
{
    CompiledProgram p = sampleProgram();
    EXPECT_EQ(daemon::serializeCompiledProgram(p),
              daemon::serializeCompiledProgram(p));
}

TEST(ProgramSerdes, RejectsTruncationAtEveryLength)
{
    std::string blob =
        daemon::serializeCompiledProgram(sampleProgram());
    CompiledProgram out;
    for (std::size_t len = 0; len < blob.size(); ++len)
        EXPECT_FALSE(daemon::deserializeCompiledProgram(
            blob.substr(0, len), out))
            << "accepted a blob truncated to " << len << " bytes";
}

TEST(ProgramSerdes, RejectsSingleByteCorruption)
{
    std::string blob =
        daemon::serializeCompiledProgram(sampleProgram());
    CompiledProgram out;
    // Flip one bit in every byte: header corruption must fail the
    // magic/version/size checks, payload corruption the checksum.
    for (std::size_t i = 0; i < blob.size(); ++i) {
        std::string bad = blob;
        bad[i] = static_cast<char>(bad[i] ^ 0x40);
        EXPECT_FALSE(daemon::deserializeCompiledProgram(bad, out))
            << "accepted a blob with byte " << i << " corrupted";
    }
}

TEST(ProgramSerdes, RejectsTrailingGarbage)
{
    std::string blob =
        daemon::serializeCompiledProgram(sampleProgram());
    blob += "extra";
    CompiledProgram out;
    EXPECT_FALSE(daemon::deserializeCompiledProgram(blob, out));
}

TEST(ProgramSerdes, RejectsFutureVersion)
{
    std::string blob =
        daemon::serializeCompiledProgram(sampleProgram());
    // The u32 version sits right after the 4-byte magic
    // (little-endian); bump it as a simulated newer writer.
    blob[4] = static_cast<char>(daemon::kProgramSerdesVersion + 1);
    CompiledProgram out;
    EXPECT_FALSE(daemon::deserializeCompiledProgram(blob, out));
}

TEST(ProgramSerdes, RejectsEmptyAndForeignBlobs)
{
    CompiledProgram out;
    EXPECT_FALSE(daemon::deserializeCompiledProgram("", out));
    EXPECT_FALSE(daemon::deserializeCompiledProgram("not a blob", out));
    EXPECT_FALSE(daemon::deserializeCompiledProgram(
        std::string(1024, '\0'), out));
}

} // namespace
