/**
 * @file
 * Public-facade tests: NoiseAdaptiveCompiler construction, every
 * MapperKind, OpenQASM emission, and name parsing.
 */

#include <gtest/gtest.h>

#include "ir/qasm.hpp"
#include "test_util.hpp"

namespace qc {
namespace {

using test::env;
using test::kSeed;

TEST(MapperKind, NamesRoundTrip)
{
    for (MapperKind k : kAllMapperKinds)
        EXPECT_EQ(mapperKindFromName(mapperKindName(k)), k)
            << mapperKindName(k);
    EXPECT_THROW(mapperKindFromName("warp"), FatalError);
}

TEST(MapperKind, NamesAreCaseAndSeparatorInsensitive)
{
    EXPECT_EQ(mapperKindFromName("qiskit"), MapperKind::Qiskit);
    EXPECT_EQ(mapperKindFromName("RSMT*"), MapperKind::RSmtStar);
    EXPECT_EQ(mapperKindFromName("rsmt*"), MapperKind::RSmtStar);
    EXPECT_EQ(mapperKindFromName("r smt*"), MapperKind::RSmtStar);
    EXPECT_EQ(mapperKindFromName("t_smt"), MapperKind::TSmt);
    EXPECT_EQ(mapperKindFromName("T-smt*"), MapperKind::TSmtStar);
    EXPECT_EQ(mapperKindFromName("GREEDYE*"), MapperKind::GreedyE);
    EXPECT_EQ(mapperKindFromName("greedy_v*"), MapperKind::GreedyV);
    EXPECT_EQ(mapperKindFromName("greedye*+track"),
              MapperKind::GreedyETrack);
}

TEST(MapperKind, CommonAliasesAreAccepted)
{
    // No unstarred R variant exists, so "r-smt" means R-SMT*; bare
    // greedy names mean the starred heuristics.
    EXPECT_EQ(mapperKindFromName("r-smt"), MapperKind::RSmtStar);
    EXPECT_EQ(mapperKindFromName("rsmt"), MapperKind::RSmtStar);
    EXPECT_EQ(mapperKindFromName("greedye"), MapperKind::GreedyE);
    EXPECT_EQ(mapperKindFromName("greedyv"), MapperKind::GreedyV);
    EXPECT_EQ(mapperKindFromName("track"), MapperKind::GreedyETrack);
    EXPECT_EQ(mapperKindFromName("greedyetrack"),
              MapperKind::GreedyETrack);
    EXPECT_EQ(mapperKindFromName("baseline"), MapperKind::Qiskit);
    EXPECT_EQ(mapperKindFromName("sabre"), MapperKind::Sabre);
    EXPECT_EQ(mapperKindFromName("SABRE"), MapperKind::Sabre);
    EXPECT_EQ(mapperKindFromName("sabre+track"), MapperKind::Sabre);
}

TEST(MapperKind, UnknownNameErrorListsInputAndValidNames)
{
    try {
        mapperKindFromName("warp");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("warp"), std::string::npos) << msg;
        for (MapperKind k : kAllMapperKinds)
            EXPECT_NE(msg.find(mapperKindName(k)), std::string::npos)
                << "missing " << mapperKindName(k) << " in: " << msg;
    }
}

class AllMapperKinds : public ::testing::TestWithParam<MapperKind>
{
};

TEST_P(AllMapperKinds, CompilesBv4)
{
    CompilerOptions opts;
    opts.mapper = GetParam();
    opts.smtTimeoutMs = 30'000;
    NoiseAdaptiveCompiler compiler(
        GridTopology::ibmq16(),
        env().calibrationModel().forDay(0), opts);

    Benchmark b = benchmarkByName("BV4");
    CompiledProgram cp = compiler.compile(b.circuit);
    EXPECT_EQ(cp.mapperName.substr(0, 3),
              std::string(mapperKindName(GetParam())).substr(0, 3));
    validateLayout(cp.layout, b.circuit.numQubits(),
                   compiler.machine().numQubits());
    EXPECT_GT(cp.duration, 0);
    EXPECT_GT(cp.predictedSuccess, 0.0);
}

TEST_P(AllMapperKinds, QasmOutputIsExecutableAndCorrect)
{
    CompilerOptions opts;
    opts.mapper = GetParam();
    opts.smtTimeoutMs = 30'000;
    NoiseAdaptiveCompiler compiler(
        GridTopology::ibmq16(),
        env().calibrationModel().forDay(0), opts);

    Benchmark b = benchmarkByName("Toffoli");
    std::string qasm = compiler.compileToQasm(b.circuit);
    EXPECT_NE(qasm.find("OPENQASM 2.0;"), std::string::npos);
    EXPECT_EQ(qasm.find("swap"), std::string::npos)
        << "only hardware-native ops may be emitted";

    // The emitted hardware program still computes the right answer.
    Circuit parsed = parseQasm(qasm, "compiled");
    EXPECT_EQ(parsed.numQubits(), 16);
    EXPECT_EQ(idealOutcome(parsed), b.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, AllMapperKinds,
    ::testing::Values(MapperKind::Qiskit, MapperKind::TSmt,
                      MapperKind::TSmtStar, MapperKind::RSmtStar,
                      MapperKind::GreedyV, MapperKind::GreedyE),
    [](const ::testing::TestParamInfo<MapperKind> &info) {
        std::string n = mapperKindName(info.param);
        for (char &c : n)
            if (c == '-' || c == '*')
                c = '_';
        return n;
    });

TEST(NoiseAdaptiveCompiler, RejectsOversizedProgram)
{
    CompilerOptions opts;
    opts.mapper = MapperKind::GreedyE;
    GridTopology small(2, 2);
    CalibrationModel model(small, kSeed);
    NoiseAdaptiveCompiler compiler(small, model.forDay(0), opts);
    Benchmark b = benchmarkByName("BV6");
    EXPECT_THROW(compiler.compile(b.circuit), FatalError);
}

TEST(NoiseAdaptiveCompiler, WorksOnCustomTopology)
{
    CompilerOptions opts;
    opts.mapper = MapperKind::GreedyE;
    GridTopology topo(4, 4);
    CalibrationModel model(topo, kSeed);
    NoiseAdaptiveCompiler compiler(topo, model.forDay(3), opts);
    Benchmark b = benchmarkByName("Adder");
    CompiledProgram cp = compiler.compile(b.circuit);
    validateLayout(cp.layout, 4, 16);
}

TEST(ExperimentEnv, MachineForDayIsDeterministic)
{
    ExperimentEnv env(kSeed);
    Machine a = env.machineForDay(2);
    Machine b = env.machineForDay(2);
    EXPECT_EQ(a.cal().cnotError, b.cal().cnotError);
    EXPECT_EQ(a.cal().t2Us, b.cal().t2Us);
}

TEST(RunMeasured, ProducesConsistentRecord)
{
    ExperimentEnv env(kSeed);
    Machine m = env.machineForDay(0);
    CompilerOptions opts;
    opts.mapper = MapperKind::GreedyE;
    Benchmark b = benchmarkByName("HS4");
    MeasuredRun run = runMeasured(m, b, opts, 256, 5);
    EXPECT_EQ(run.benchmark, "HS4");
    EXPECT_EQ(run.mapper, "GreedyE*");
    EXPECT_EQ(run.execution.trials, 256);
    EXPECT_GE(run.execution.successRate, 0.0);
    EXPECT_LE(run.execution.successRate, 1.0);
}

} // namespace
} // namespace qc
