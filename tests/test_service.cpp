/**
 * @file
 * Compile-service subsystem tests: fingerprints, thread pool,
 * machine-snapshot pool, LRU compile cache, and the end-to-end
 * guarantees the service makes — above all that a multi-threaded
 * batch is bit-identical to serial compilation.
 */

#include <atomic>
#include <set>
#include <stdexcept>

#include <gtest/gtest.h>

#include "ir/qasm.hpp"
#include "service/compile_service.hpp"
#include "service/fingerprints.hpp"
#include "support/fingerprint.hpp"
#include "tests/test_util.hpp"
#include "workloads/random_circuits.hpp"

namespace {

using namespace qc;
using namespace qc::service;

// ---------------------------------------------------------------- //
// Fingerprints
// ---------------------------------------------------------------- //

TEST(Fingerprint, OrderAndBoundariesMatter)
{
    Fingerprint a, b, c;
    a.mix(std::string("ab")).mix(std::string("c"));
    b.mix(std::string("a")).mix(std::string("bc"));
    c.mix(std::string("ab")).mix(std::string("c"));
    EXPECT_NE(a.value(), b.value());
    EXPECT_EQ(a.value(), c.value());
}

TEST(Fingerprints, CircuitContentSensitive)
{
    Circuit c1("x", 3);
    c1.h(0);
    c1.cnot(0, 1);
    Circuit c2 = c1;
    Circuit c3("renamed", 3);
    c3.h(0);
    c3.cnot(0, 1);
    Circuit c4("x", 3);
    c4.h(0);
    c4.cnot(1, 0); // operands swapped

    EXPECT_EQ(fingerprintCircuit(c1), fingerprintCircuit(c2));
    // Content-only: the name is presentation, not semantics.
    EXPECT_EQ(fingerprintCircuit(c1), fingerprintCircuit(c3));
    EXPECT_NE(fingerprintCircuit(c1), fingerprintCircuit(c4));
}

TEST(Fingerprints, CalibrationAndOptionsSensitive)
{
    GridTopology topo(2, 4);
    Calibration cal = test::uniformCalibration(topo);
    Calibration cal2 = cal;
    cal2.cnotError[0] += 1e-9;
    EXPECT_NE(fingerprintCalibration(cal), fingerprintCalibration(cal2));
    EXPECT_NE(machineKey(topo, cal), machineKey(GridTopology(4, 2), cal));

    CompilerOptions o1, o2;
    o2.mapper = MapperKind::GreedyE;
    EXPECT_NE(fingerprintOptions(o1), fingerprintOptions(o2));
}

TEST(Fingerprints, TopologyHashCannotAliasEqualQubitCounts)
{
    // Regression for the rows/cols-only machine fingerprint: these
    // all have 8 qubits (and the first three even have compatible
    // "shapes"), so a shape-only hash would alias machine-pool and
    // compile-cache entries across genuinely different coupling
    // graphs.
    GridTopology grid24(2, 4);
    RingTopology ring8(8);
    LinearTopology linear8(8);
    GraphTopology custom8 = GraphTopology::fromEdgeList(
        "0 1\n1 2\n2 3\n3 4\n4 5\n5 6\n6 7\n0 4\n", "custom8");
    Calibration cal = test::uniformCalibration(grid24);

    std::vector<std::uint64_t> keys = {
        fingerprintTopology(grid24), fingerprintTopology(ring8),
        fingerprintTopology(linear8), fingerprintTopology(custom8)};
    for (size_t i = 0; i < keys.size(); ++i)
        for (size_t j = i + 1; j < keys.size(); ++j)
            EXPECT_NE(keys[i], keys[j]) << i << " vs " << j;

    // ring8 and linear8 share qubit AND edge-compatible calibration
    // arity, so machineKey must still separate them.
    Calibration ring_cal = test::uniformCalibration(ring8);
    EXPECT_NE(machineKey(ring8, ring_cal),
              machineKey(GridTopology(2, 4), ring_cal));

    // Same graph, different construction path: identical key (the
    // hash is content-based, not type-based) — a linear chain loaded
    // from an edge list still counts as a distinct kind, though.
    GraphTopology linear_as_graph = GraphTopology::fromEdgeList(
        "0 1\n1 2\n2 3\n3 4\n4 5\n5 6\n6 7\n", "linear-as-graph");
    EXPECT_NE(fingerprintTopology(linear8),
              fingerprintTopology(linear_as_graph));
}

// ---------------------------------------------------------------- //
// Thread pool
// ---------------------------------------------------------------- //

TEST(ThreadPool, RunsEveryTaskExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.numThreads(), 4);

    std::atomic<int> ran{0};
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 64; ++i)
        futures.push_back(pool.submit([i, &ran] {
            ++ran;
            return i * i;
        }));
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
    EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, ExceptionsTravelThroughFutures)
{
    ThreadPool pool(2);
    auto f = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(f.get(), std::runtime_error);

    // The worker that threw is still alive and usable.
    EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, WaitIdleDrainsAndSubmitAfterShutdownThrows)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 16; ++i)
        pool.submit([&ran] { ++ran; });
    pool.waitIdle();
    EXPECT_EQ(ran.load(), 16);

    pool.shutdown();
    EXPECT_THROW(pool.submit([] { return 1; }), FatalError);
}

// ---------------------------------------------------------------- //
// Machine pool
// ---------------------------------------------------------------- //

TEST(MachinePool, BuildsOncePerCalibrationDay)
{
    GridTopology topo(2, 4);
    CalibrationModel model(topo, test::kSeed);
    MachinePool pool;

    auto m0a = pool.acquire(topo, model.forDay(0));
    auto m0b = pool.acquire(topo, model.forDay(0));
    auto m1 = pool.acquire(topo, model.forDay(1));

    EXPECT_EQ(m0a.get(), m0b.get()); // literally the same snapshot
    EXPECT_NE(m0a.get(), m1.get());
    EXPECT_EQ(pool.size(), 2u);
    EXPECT_EQ(pool.stats().builds, 2u);
    EXPECT_EQ(pool.stats().hits, 1u);

    // Snapshots survive a pool clear (shared ownership).
    pool.clear();
    EXPECT_EQ(pool.size(), 0u);
    EXPECT_EQ(m0a->numQubits(), topo.numQubits());
}

TEST(MachinePool, EvictsLeastRecentlyUsedBeyondCapacity)
{
    GridTopology topo(2, 4);
    CalibrationModel model(topo, test::kSeed);
    MachinePool pool(2);

    auto m0 = pool.acquire(topo, model.forDay(0));
    pool.acquire(topo, model.forDay(1));
    pool.acquire(topo, model.forDay(0)); // day 0 becomes MRU
    pool.acquire(topo, model.forDay(2)); // evicts day 1

    EXPECT_EQ(pool.size(), 2u);
    EXPECT_EQ(pool.stats().evictions, 1u);

    // Day 0 survived the eviction, day 1 must rebuild.
    EXPECT_EQ(pool.acquire(topo, model.forDay(0)).get(), m0.get());
    EXPECT_EQ(pool.stats().builds, 3u);
    pool.acquire(topo, model.forDay(1));
    EXPECT_EQ(pool.stats().builds, 4u);

    // Evicted snapshots stay alive through outstanding references.
    EXPECT_EQ(m0->numQubits(), topo.numQubits());

    // tryAcquire never builds: pooled day -> snapshot, evicted -> null.
    auto builds = pool.stats().builds;
    EXPECT_NE(pool.tryAcquire(topo, model.forDay(1)), nullptr);
    EXPECT_EQ(pool.tryAcquire(topo, model.forDay(2)), nullptr);
    EXPECT_EQ(pool.stats().builds, builds);
}

TEST(MachinePool, ConcurrentAcquiresShareOneBuild)
{
    GridTopology topo(2, 4);
    CalibrationModel model(topo, test::kSeed);
    Calibration cal = model.forDay(3);

    MachinePool machines;
    ThreadPool workers(8);
    std::vector<std::future<std::shared_ptr<const Machine>>> futures;
    for (int i = 0; i < 32; ++i)
        futures.push_back(workers.submit(
            [&] { return machines.acquire(topo, cal); }));

    std::set<const Machine *> distinct;
    for (auto &f : futures)
        distinct.insert(f.get().get());
    EXPECT_EQ(distinct.size(), 1u);
    EXPECT_EQ(machines.stats().builds, 1u);
    EXPECT_EQ(machines.stats().hits, 31u);
}

// ---------------------------------------------------------------- //
// Compile cache
// ---------------------------------------------------------------- //

CacheKey
keyOf(std::uint64_t circuit)
{
    CacheKey k;
    k.circuit = circuit;
    k.calibration = 1;
    k.options = 2;
    return k;
}

std::shared_ptr<const CompiledProgram>
dummyProgram(const std::string &name)
{
    auto p = std::make_shared<CompiledProgram>();
    p->programName = name;
    return p;
}

TEST(CompileCache, HitMissAndStats)
{
    CompileCache cache(4);
    EXPECT_EQ(cache.lookup(keyOf(1)), nullptr);
    cache.insert(keyOf(1), dummyProgram("a"));
    auto hit = cache.lookup(keyOf(1));
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->programName, "a");

    auto stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_DOUBLE_EQ(stats.hitRate(), 0.5);
}

TEST(CompileCache, EvictsLeastRecentlyUsed)
{
    CompileCache cache(2);
    cache.insert(keyOf(1), dummyProgram("a"));
    cache.insert(keyOf(2), dummyProgram("b"));

    // Touch 1 so that 2 becomes the LRU victim.
    EXPECT_NE(cache.lookup(keyOf(1)), nullptr);
    cache.insert(keyOf(3), dummyProgram("c"));

    EXPECT_EQ(cache.size(), 2u);
    EXPECT_NE(cache.lookup(keyOf(1)), nullptr);
    EXPECT_EQ(cache.lookup(keyOf(2)), nullptr); // evicted
    EXPECT_NE(cache.lookup(keyOf(3)), nullptr);
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(CompileCache, ReinsertRefreshesInsteadOfDuplicating)
{
    CompileCache cache(2);
    cache.insert(keyOf(1), dummyProgram("a"));
    cache.insert(keyOf(1), dummyProgram("a2"));
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.lookup(keyOf(1))->programName, "a2");
}

TEST(CompileCache, ZeroCapacityDisables)
{
    CompileCache cache(0);
    cache.insert(keyOf(1), dummyProgram("a"));
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.lookup(keyOf(1)), nullptr);
}

TEST(CompileCache, ApproxBytesGrowWithContent)
{
    CompiledProgram small;
    CompiledProgram big;
    big.programName = std::string(256, 'x');
    big.layout.assign(64, 0);
    big.schedule.ops.resize(512);
    big.stageTraces.push_back({"placement", "GreedyE*", 0.1, "note"});
    EXPECT_GT(approxProgramBytes(big), approxProgramBytes(small));
    EXPECT_GE(approxProgramBytes(small), sizeof(CompiledProgram));
}

TEST(CompileCache, TracksEntryAndByteCounters)
{
    CompileCache cache(4);
    auto a = dummyProgram("a");
    auto b = dummyProgram(std::string(512, 'b'));
    cache.insert(keyOf(1), a);
    cache.insert(keyOf(2), b);

    CompileCacheStats stats = cache.stats();
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_EQ(stats.bytes,
              approxProgramBytes(*a) + approxProgramBytes(*b));
    EXPECT_EQ(cache.sizeBytes(), stats.bytes);

    // A refresh replaces the accounted size, not adds to it.
    cache.insert(keyOf(2), dummyProgram("b2"));
    EXPECT_EQ(cache.stats().entries, 2u);
    EXPECT_LT(cache.stats().bytes, stats.bytes);
}

TEST(CompileCache, ByteCapacityEvictsLruTail)
{
    auto sized = [](char c) {
        auto p = std::make_shared<CompiledProgram>();
        p->programName = std::string(1024, c);
        return p;
    };
    const std::size_t one = approxProgramBytes(*sized('a'));

    // Room for two sized entries but not three.
    CompileCache cache(100, 2 * one + one / 2);
    cache.insert(keyOf(1), sized('a'));
    cache.insert(keyOf(2), sized('b'));
    EXPECT_EQ(cache.size(), 2u);

    cache.insert(keyOf(3), sized('c'));
    EXPECT_EQ(cache.size(), 2u); // LRU key 1 evicted on bytes
    EXPECT_EQ(cache.lookup(keyOf(1)), nullptr);
    EXPECT_NE(cache.lookup(keyOf(2)), nullptr);
    EXPECT_NE(cache.lookup(keyOf(3)), nullptr);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_LE(cache.sizeBytes(), cache.byteCapacity());
}

TEST(CompileCache, ByteCapacityAlwaysKeepsNewestEntry)
{
    auto huge = std::make_shared<CompiledProgram>();
    huge->programName = std::string(1 << 16, 'h');

    // Cap far below a single entry: the newest insert must still be
    // resident (caching the current job beats caching nothing).
    CompileCache cache(100, 64);
    cache.insert(keyOf(1), huge);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_NE(cache.lookup(keyOf(1)), nullptr);

    cache.insert(keyOf(2), dummyProgram("next"));
    EXPECT_EQ(cache.lookup(keyOf(1)), nullptr); // huge evicted now
    EXPECT_NE(cache.lookup(keyOf(2)), nullptr);
}

// ---------------------------------------------------------------- //
// Compile service, end to end
// ---------------------------------------------------------------- //

/** The workload both determinism runs share. */
std::vector<std::pair<std::string, Circuit>>
serviceWorkload()
{
    std::vector<std::pair<std::string, Circuit>> programs;
    for (int i = 0; i < 6; ++i) {
        RandomCircuitSpec spec;
        spec.numQubits = 4 + (i % 3);
        spec.numGates = 24;
        spec.seed = test::kSeed + static_cast<std::uint64_t>(i);
        programs.emplace_back("rand" + std::to_string(i),
                              makeRandomCircuit(spec));
    }
    return programs;
}

std::vector<CompileRequest>
serviceBatch(const CalibrationModel &model, MapperKind mapper)
{
    CompilerOptions options;
    options.mapper = mapper;
    return CompileService::dailyBatch(model, serviceWorkload(), 0, 2,
                                      options);
}

TEST(CompileService, EightWorkersMatchSerialBitForBit)
{
    CalibrationModel model(GridTopology::ibmq16(), test::kSeed);
    auto programs = serviceWorkload();

    for (MapperKind mapper :
         {MapperKind::GreedyE, MapperKind::GreedyV}) {
        ServiceOptions serial_opts;
        serial_opts.threads = 1;
        CompileService serial(serial_opts);
        ServiceOptions par_opts;
        par_opts.threads = 8;
        CompileService parallel(par_opts);

        BatchResult s = serial.compileBatch(serviceBatch(model, mapper));
        BatchResult p =
            parallel.compileBatch(serviceBatch(model, mapper));

        ASSERT_EQ(s.results.size(), p.results.size());
        ASSERT_EQ(s.report.failed, 0);
        ASSERT_EQ(p.report.failed, 0);
        for (size_t i = 0; i < s.results.size(); ++i) {
            const auto &sr = s.results[i];
            const auto &pr = p.results[i];
            EXPECT_EQ(sr.tag, pr.tag);
            int n_clbits =
                programs[i % programs.size()].second.numClbits();
            EXPECT_EQ(emitQasm(sr.program->hwCircuit(n_clbits)),
                      emitQasm(pr.program->hwCircuit(n_clbits)))
                << "job " << sr.tag << " diverged under "
                << mapperKindName(mapper);
            EXPECT_EQ(sr.program->layout, pr.program->layout);
            EXPECT_EQ(sr.program->duration, pr.program->duration);
        }
    }
}

TEST(CompileService, SecondIdenticalBatchHitsCache)
{
    CalibrationModel model(GridTopology::ibmq16(), test::kSeed);
    ServiceOptions opts;
    opts.threads = 4;
    CompileService svc(opts);

    BatchResult first =
        svc.compileBatch(serviceBatch(model, MapperKind::GreedyE));
    EXPECT_EQ(first.report.cacheHits, 0);
    EXPECT_EQ(first.report.failed, 0);
    // One machine snapshot per day, shared across jobs.
    EXPECT_EQ(first.report.machinePool.builds, 2u);

    BatchResult second =
        svc.compileBatch(serviceBatch(model, MapperKind::GreedyE));
    EXPECT_EQ(second.report.failed, 0);
    EXPECT_EQ(second.report.cacheHits, second.report.jobs);
    EXPECT_GE(svc.cacheStats().hitRate(), 0.45); // 12 of 24 lookups
    EXPECT_EQ(second.report.machinePool.builds, 2u); // no rebuilds

    // Cache hits return the very same artifact.
    for (size_t i = 0; i < first.results.size(); ++i) {
        EXPECT_TRUE(second.results[i].cacheHit);
        EXPECT_EQ(first.results[i].program.get(),
                  second.results[i].program.get());
    }
}

TEST(CompileService, JobErrorsAreIsolated)
{
    CalibrationModel model(GridTopology(2, 2), test::kSeed);

    CompileRequest fits;
    fits.tag = "fits";
    fits.circuit = Circuit("small", 2);
    fits.circuit.h(0);
    fits.circuit.cnot(0, 1);
    fits.circuit.measure(0, 0);
    fits.circuit.measure(1, 1);
    fits.topo = model.topology();
    fits.cal = model.forDay(0);
    fits.options.mapper = MapperKind::GreedyE;

    CompileRequest too_big = fits;
    too_big.tag = "too-big";
    too_big.circuit = Circuit("big", 9); // 9 qubits on a 4-qubit grid
    too_big.circuit.h(8);
    too_big.circuit.measure(8, 0);

    ServiceOptions opts;
    opts.threads = 2;
    CompileService svc(opts);
    BatchResult batch = svc.compileBatch({fits, too_big});

    EXPECT_TRUE(batch.results[0].ok);
    EXPECT_TRUE(batch.results[0].status.ok());
    EXPECT_FALSE(batch.results[1].ok);
    EXPECT_FALSE(batch.results[1].error().empty());
    EXPECT_EQ(batch.report.succeeded, 1);
    EXPECT_EQ(batch.report.failed, 1);

    // Structured status: the failing stage and its wall time are
    // recorded even though the job produced no program.
    const CompileResult &failed = batch.results[1];
    EXPECT_EQ(failed.status.code, CompileStatusCode::Infeasible);
    EXPECT_FALSE(failed.failedStage.empty());
    EXPECT_FALSE(failed.stageTraces.empty());
    EXPECT_GE(failed.seconds, 0.0);

    // Successful fresh compiles carry all four stage traces, and the
    // report aggregates a per-stage breakdown including the failure.
    EXPECT_EQ(batch.results[0].stageTraces.size(), 4u);
    EXPECT_FALSE(batch.report.stages.empty());
    int stage_failures = 0;
    for (const StageSummary &s : batch.report.stages)
        stage_failures += s.failures;
    EXPECT_EQ(stage_failures, 1);

    // The report renders without throwing and shows the breakdown.
    const std::string text = batch.report.toString();
    EXPECT_NE(text.find("jobs: 2"), std::string::npos);
    EXPECT_NE(text.find("stage breakdown"), std::string::npos);
    EXPECT_NE(text.find("failed here"), std::string::npos);
}

TEST(CompileService, SubmitSingleJob)
{
    CalibrationModel model(GridTopology::ibmq16(), test::kSeed);
    CompileRequest req;
    req.tag = "single";
    req.day = 5;
    req.circuit = serviceWorkload()[0].second;
    req.topo = model.topology();
    req.cal = model.forDay(5);
    req.options.mapper = MapperKind::GreedyETrack;

    CompileService svc;
    CompileResult res = svc.submit(req).get();
    ASSERT_TRUE(res.ok) << res.error();
    EXPECT_EQ(res.day, 5);
    ASSERT_NE(res.program, nullptr);
    ASSERT_NE(res.machine, nullptr);
    EXPECT_GT(res.program->predictedSuccess, 0.0);

    // The snapshot handed back is the pooled one.
    EXPECT_EQ(res.machine.get(),
              svc.submit(req).get().machine.get());

    // A compiler wrapped around that snapshot reproduces the result
    // (the service's own compile path under the hood).
    NoiseAdaptiveCompiler compiler(res.machine, req.options);
    EXPECT_EQ(compiler.machineSnapshot().get(), res.machine.get());
    CompiledProgram direct = compiler.compile(req.circuit);
    EXPECT_EQ(direct.layout, res.program->layout);
    EXPECT_EQ(direct.duration, res.program->duration);
}

} // namespace
