/**
 * @file
 * Branch-and-bound placer tests, including the exhaustive-enumeration
 * cross-check: on small machines the B&B optimum must equal the
 * brute-force optimum over all injective placements.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>

#include "solver/bnb_placer.hpp"
#include "solver/objective.hpp"
#include "test_util.hpp"
#include "workloads/random_circuits.hpp"

namespace qc {
namespace {

using test::day0;
using test::kSeed;

/** Eq. 12 value of a layout using best-junction EC entries. */
double
layoutObjective(const Circuit &prog, const std::vector<HwQubit> &layout,
                const Machine &m, double w)
{
    return evaluateReliability(prog, layout, m).weighted(w);
}

/** Brute-force best objective over all injective placements. */
double
bruteForceBest(const Circuit &prog, const Machine &m, double w)
{
    std::vector<HwQubit> perm(m.numQubits());
    for (int i = 0; i < m.numQubits(); ++i)
        perm[i] = i;
    double best = -std::numeric_limits<double>::infinity();
    // Enumerate placements as permutations' prefixes.
    std::vector<HwQubit> layout(prog.numQubits());
    std::vector<bool> used(m.numQubits(), false);
    std::function<void(int)> rec = [&](int q) {
        if (q == prog.numQubits()) {
            best = std::max(best, layoutObjective(prog, layout, m, w));
            return;
        }
        for (int h = 0; h < m.numQubits(); ++h) {
            if (used[h])
                continue;
            used[h] = true;
            layout[q] = h;
            rec(q + 1);
            used[h] = false;
        }
    };
    rec(0);
    return best;
}

struct BnbCase
{
    int progQubits;
    int gates;
    std::uint64_t seed;
    double weight;
};

class BnbVsBruteForce : public ::testing::TestWithParam<BnbCase>
{
};

TEST_P(BnbVsBruteForce, MatchesExhaustiveOptimum)
{
    const auto &p = GetParam();
    GridTopology topo(2, 3);
    CalibrationModel model(topo, kSeed + p.seed);
    Machine m(topo, model.forDay(0));

    RandomCircuitSpec spec;
    spec.numQubits = p.progQubits;
    spec.numGates = p.gates;
    spec.seed = p.seed;
    Circuit prog = makeRandomCircuit(spec);

    BnbOptions opts;
    opts.readoutWeight = p.weight;
    BnbPlacer placer(m, prog, opts);
    BnbResult result = placer.solve();
    EXPECT_TRUE(result.optimal);
    validateLayout(result.layout, prog.numQubits(), m.numQubits());

    double brute = bruteForceBest(prog, m, p.weight);
    EXPECT_NEAR(result.objective, brute, 1e-9);
    EXPECT_NEAR(layoutObjective(prog, result.layout, m, p.weight),
                result.objective, 1e-9);
}

std::vector<BnbCase>
bnbCases()
{
    std::vector<BnbCase> cases;
    for (std::uint64_t seed : {1u, 2u, 3u, 4u})
        for (double w : {0.0, 0.5, 1.0})
            cases.push_back({4, 40, seed, w});
    cases.push_back({5, 60, 9, 0.5});
    cases.push_back({6, 80, 10, 0.5});
    cases.push_back({2, 12, 11, 0.3});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Cases, BnbVsBruteForce,
                         ::testing::ValuesIn(bnbCases()));

TEST(BnbPlacer, PaperBenchmarksGetValidOptimalLayouts)
{
    Machine m = day0();
    for (const auto &b : paperBenchmarks()) {
        BnbPlacer placer(m, b.circuit);
        BnbResult r = placer.solve();
        EXPECT_TRUE(r.optimal) << b.name;
        validateLayout(r.layout, b.circuit.numQubits(), m.numQubits());
        EXPECT_NEAR(r.objective,
                    layoutObjective(b.circuit, r.layout, m, 0.5), 1e-9)
            << b.name;
    }
}

TEST(BnbPlacer, OmegaOneMaximizesReadout)
{
    // With w = 1, the objective only scores readout locations, so the
    // chosen locations of measured qubits must be the global best set.
    Machine m = day0();
    Circuit c("ro", 2);
    c.cnot(0, 1);
    c.measure(0, 0);
    c.measure(1, 1);
    BnbOptions opts;
    opts.readoutWeight = 1.0;
    BnbPlacer placer(m, c, opts);
    BnbResult r = placer.solve();
    auto order = m.qubitsByReadoutReliability();
    double best_two = std::log(m.cal().readoutReliability(order[0])) +
                      std::log(m.cal().readoutReliability(order[1]));
    double got = std::log(m.cal().readoutReliability(r.layout[0])) +
                 std::log(m.cal().readoutReliability(r.layout[1]));
    EXPECT_NEAR(got, best_two, 1e-9);
}

TEST(BnbPlacer, NodeLimitReportsNonOptimal)
{
    Machine m = day0();
    Benchmark b = benchmarkByName("Adder");
    BnbOptions opts;
    opts.nodeLimit = 3;
    BnbPlacer placer(m, b.circuit, opts);
    BnbResult r = placer.solve();
    EXPECT_FALSE(r.optimal);
    validateLayout(r.layout, b.circuit.numQubits(), m.numQubits());
}

TEST(BnbPlacer, RejectsOversizedPrograms)
{
    GridTopology topo(2, 2);
    CalibrationModel model(topo, 1);
    Machine m(topo, model.forDay(0));
    RandomCircuitSpec spec;
    spec.numQubits = 5;
    spec.numGates = 10;
    Circuit prog = makeRandomCircuit(spec);
    EXPECT_THROW(BnbPlacer(m, prog), FatalError);
}

TEST(BnbPlacer, IsolatedQubitsPlaced)
{
    Machine m = day0();
    Circuit c("iso", 3);
    c.h(0);
    c.h(1);
    c.h(2);
    c.measure(0, 0);
    BnbPlacer placer(m, c);
    BnbResult r = placer.solve();
    EXPECT_TRUE(r.optimal);
    validateLayout(r.layout, 3, m.numQubits());
}

} // namespace
} // namespace qc
