/**
 * @file
 * Cooperative-cancellation tests: CancelToken semantics, the
 * CancelledError unwind path through every cancellable inner loop
 * (scheduler, tracking router, SABRE, SMT solver), and the pipeline's
 * structured CompileStatusCode::Cancelled contract — above all that a
 * cancelled mid-flight SMT solve returns a cancelled status instead
 * of hanging or throwing across the public API.
 */

#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "core/compiler.hpp"
#include "core/pipeline.hpp"
#include "mappers/sabre_mapper.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/tracking_router.hpp"
#include "solver/smt_model.hpp"
#include "support/cancel.hpp"
#include "tests/test_util.hpp"
#include "workloads/random_circuits.hpp"

namespace {

using namespace qc;

// ---------------------------------------------------------------- //
// CancelToken semantics
// ---------------------------------------------------------------- //

TEST(CancelToken, StartsClearAndFlipsOnce)
{
    CancelToken token;
    EXPECT_FALSE(token.cancelled());
    EXPECT_EQ(token.reason(), "");

    token.requestCancel("first");
    EXPECT_TRUE(token.cancelled());
    EXPECT_EQ(token.reason(), "first");

    // Idempotent: the first reason wins.
    token.requestCancel("second");
    EXPECT_EQ(token.reason(), "first");
}

TEST(CancelToken, CopiesShareState)
{
    CancelToken a;
    CancelToken b = a;
    b.requestCancel("via copy");
    EXPECT_TRUE(a.cancelled());
    EXPECT_EQ(a.reason(), "via copy");

    // A fresh default token is independent state.
    CancelToken c;
    EXPECT_FALSE(c.cancelled());
}

TEST(CancelToken, CallbacksFireExactlyOnce)
{
    CancelToken token;
    std::atomic<int> fired{0};
    token.onCancel([&fired] { ++fired; });
    EXPECT_EQ(fired.load(), 0);

    token.requestCancel("go");
    EXPECT_EQ(fired.load(), 1);
    token.requestCancel("again");
    EXPECT_EQ(fired.load(), 1);

    // Registering on an already-cancelled token fires immediately.
    token.onCancel([&fired] { ++fired; });
    EXPECT_EQ(fired.load(), 2);
}

TEST(CancelToken, RemovedCallbacksNeverFire)
{
    CancelToken token;
    std::atomic<int> fired{0};
    const std::uint64_t id = token.onCancel([&fired] { ++fired; });
    token.removeCallback(id);
    token.requestCancel("late");
    EXPECT_EQ(fired.load(), 0);
}

TEST(CancelToken, CallbackGuardScopesRegistration)
{
    CancelToken token;
    std::atomic<int> fired{0};
    {
        CancelCallbackGuard guard(&token, [&fired] { ++fired; });
    }
    token.requestCancel("after guard");
    EXPECT_EQ(fired.load(), 0);

    // A guard on a null token is a no-op, not a crash.
    CancelCallbackGuard null_guard(nullptr, [&fired] { ++fired; });
    EXPECT_EQ(fired.load(), 0);
}

TEST(CancelToken, ThrowHelpersCarryContextAndReason)
{
    CancelToken token;
    EXPECT_NO_THROW(token.throwIfCancelled("clean"));
    EXPECT_NO_THROW(throwIfCancelled(nullptr, "null token"));
    EXPECT_FALSE(isCancelled(nullptr));

    token.requestCancel("user hit ^C");
    EXPECT_TRUE(isCancelled(&token));
    try {
        token.throwIfCancelled("sched step");
        FAIL() << "expected CancelledError";
    } catch (const CancelledError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("sched step"), std::string::npos);
        EXPECT_NE(what.find("user hit ^C"), std::string::npos);
    }
}

TEST(CancelToken, ConcurrentRequestsAreSafe)
{
    CancelToken token;
    std::atomic<int> fired{0};
    token.onCancel([&fired] { ++fired; });

    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t)
        threads.emplace_back([&token, t] {
            token.requestCancel("racer " + std::to_string(t));
        });
    for (std::thread &t : threads)
        t.join();

    EXPECT_TRUE(token.cancelled());
    EXPECT_EQ(fired.load(), 1);
    EXPECT_NE(token.reason().find("racer"), std::string::npos);
}

// ---------------------------------------------------------------- //
// Cancellable inner loops unwind with CancelledError
// ---------------------------------------------------------------- //

Circuit
smallProgram()
{
    Circuit c("cancel-probe", 4);
    c.h(0);
    c.cnot(0, 1);
    c.cnot(1, 2);
    c.cnot(2, 3);
    for (int q = 0; q < 4; ++q)
        c.measure(q, q);
    return c;
}

TEST(CancelUnwind, ListSchedulerChecksCommitSteps)
{
    Machine machine = test::day0();
    ListScheduler scheduler(machine, SchedulerOptions{});
    std::vector<HwQubit> layout = {0, 1, 2, 3};

    CancelToken token;
    token.requestCancel("stop scheduling");
    EXPECT_THROW(scheduler.run(smallProgram(), layout, &token),
                 CancelledError);
    // Null token: unchanged behavior.
    EXPECT_NO_THROW(scheduler.run(smallProgram(), layout, nullptr));
}

TEST(CancelUnwind, TrackingRouterChecksPerGate)
{
    Machine machine = test::day0();
    TrackingRouter router(machine);
    std::vector<HwQubit> layout = {0, 1, 2, 3};

    CancelToken token;
    token.requestCancel("stop routing");
    EXPECT_THROW(router.run(smallProgram(), layout, &token),
                 CancelledError);
}

TEST(CancelUnwind, SabreChecksRoundTripBoundaries)
{
    Machine machine = test::day0();
    CancelToken token;
    token.requestCancel("stop refining");
    EXPECT_THROW(sabrePlacementDetailed(machine, smallProgram(),
                                        SabreOptions{}, &token),
                 CancelledError);
}

// ---------------------------------------------------------------- //
// SMT solver cancellation
// ---------------------------------------------------------------- //

TEST(CancelSmt, PreCancelledSolveReturnsStructuredFailure)
{
    Machine machine = test::day0();
    SmtModelOptions options;
    CancelToken token;
    token.requestCancel("cancelled before solve");
    options.cancel = &token;

    SmtSolution sol =
        solveSmtMapping(machine, smallProgram(), options);
    EXPECT_FALSE(sol.feasible);
    EXPECT_FALSE(sol.optimal);
    EXPECT_EQ(sol.failure, SmtFailure::Cancelled);
    EXPECT_TRUE(sol.layout.empty());
}

TEST(CancelSmt, MidSolveCancelInterruptsAndReportsCancelled)
{
    // A joint-scheduling SMT instance big enough that the solve runs
    // for many seconds under the full 60 s budget — the watchdog
    // fires long before it can finish, and the interrupt hook must
    // yank Z3 out of check() promptly instead of letting the test
    // hang until the budget expires.
    Machine machine = test::day0();
    Circuit prog = makeDenseCnotCircuit(8, 72, test::kSeed, 500);

    SmtModelOptions options;
    options.timeoutMs = 60'000;
    CancelToken token;
    options.cancel = &token;

    std::thread watchdog([&token] {
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
        token.requestCancel("watchdog");
    });

    const auto start = std::chrono::steady_clock::now();
    SmtSolution sol = solveSmtMapping(machine, prog, options);
    const double seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    watchdog.join();

    EXPECT_EQ(sol.failure, SmtFailure::Cancelled);
    EXPECT_FALSE(sol.feasible);
    EXPECT_EQ(sol.status, "cancelled");
    // Interrupted, not timed out: nowhere near the 60 s budget.
    EXPECT_LT(seconds, 30.0);
}

// ---------------------------------------------------------------- //
// Pipeline maps CancelledError to CompileStatusCode::Cancelled
// ---------------------------------------------------------------- //

TEST(CancelPipeline, PreCancelledRunReturnsCancelledStatus)
{
    auto machine = std::make_shared<const Machine>(test::day0());
    CompilerOptions options;
    options.mapper = MapperKind::GreedyE;
    Pipeline pipeline = standardPipeline(machine, options);

    CancelToken token;
    token.requestCancel("before the first stage");
    PipelineResult result = pipeline.run(smallProgram(), &token);

    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.status.code, CompileStatusCode::Cancelled);
    EXPECT_FALSE(result.hasProgram);
    EXPECT_FALSE(result.failedStage.empty());
}

TEST(CancelPipeline, CancelledSmtCompileReturnsStatusNotHangOrThrow)
{
    // The satellite contract: cancelling an SMT compile mid-solve
    // yields a structured Cancelled status — never a degraded
    // fallback, never an exception across Pipeline::run.
    auto machine = std::make_shared<const Machine>(test::day0());
    CompilerOptions options;
    options.mapper = MapperKind::TSmt;
    options.smtTimeoutMs = 60'000;
    Pipeline pipeline = standardPipeline(machine, options);

    Circuit prog = makeDenseCnotCircuit(8, 72, test::kSeed + 1, 500);

    CancelToken token;
    std::thread watchdog([&token] {
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
        token.requestCancel("watchdog");
    });

    PipelineResult result;
    EXPECT_NO_THROW(result = pipeline.run(prog, &token));
    watchdog.join();

    EXPECT_EQ(result.status.code, CompileStatusCode::Cancelled);
    EXPECT_FALSE(result.hasProgram);
    EXPECT_EQ(result.failedStage, "placement");
}

TEST(CancelPipeline, NullTokenKeepsExistingBehavior)
{
    auto machine = std::make_shared<const Machine>(test::day0());
    CompilerOptions options;
    options.mapper = MapperKind::GreedyE;
    Pipeline pipeline = standardPipeline(machine, options);

    PipelineResult result = pipeline.run(smallProgram());
    EXPECT_TRUE(result.ok());
    EXPECT_TRUE(result.hasProgram);
}

} // namespace
