/**
 * @file
 * Routing-geometry tests: rectangle overlap (Eq. 7), reserved regions
 * for RR / 1BP / Dijkstra routes, and SWAP-chain expansion.
 */

#include <gtest/gtest.h>

#include <random>

#include "route/region.hpp"
#include "route/routing.hpp"
#include "test_util.hpp"

namespace qc {
namespace {

using test::day0;

TEST(Rect, SpanningNormalizes)
{
    Rect r = Rect::spanning({3, 1}, {0, 5});
    EXPECT_EQ(r.x0, 0);
    EXPECT_EQ(r.x1, 3);
    EXPECT_EQ(r.y0, 1);
    EXPECT_EQ(r.y1, 5);
    EXPECT_EQ(r.area(), 4 * 5);
}

TEST(Rect, OverlapCases)
{
    Rect a = Rect::spanning({0, 0}, {1, 3});
    Rect b = Rect::spanning({1, 3}, {2, 5}); // touches at (1,3)
    Rect c = Rect::spanning({2, 4}, {3, 7});
    EXPECT_TRUE(a.overlaps(b));
    EXPECT_TRUE(b.overlaps(a));
    EXPECT_FALSE(a.overlaps(c));
    EXPECT_TRUE(b.overlaps(c));
    EXPECT_TRUE(a.overlaps(a));
}

TEST(Rect, Contains)
{
    Rect r = Rect::spanning({0, 2}, {1, 4});
    EXPECT_TRUE(r.contains({0, 3}));
    EXPECT_TRUE(r.contains({1, 4}));
    EXPECT_FALSE(r.contains({0, 5}));
}

TEST(Region, OverlapAnyPair)
{
    GridTopology topo = GridTopology::ibmq16();
    Region a = regionFromRects(topo,
                               {Rect::spanning({0, 0}, {0, 1}),
                                Rect::spanning({1, 5}, {1, 6})});
    Region b = regionFromRects(topo, {Rect::spanning({1, 6}, {1, 7})});
    Region c = regionFromRects(topo, {Rect::spanning({0, 3}, {0, 4})});
    EXPECT_TRUE(a.overlaps(b));
    EXPECT_FALSE(a.overlaps(c));
    EXPECT_TRUE(a.contains(topo.qubitAt(1, 5)));
    EXPECT_FALSE(a.contains(topo.qubitAt(0, 4)));
}

TEST(Region, FromQubitsSortsAndDedupes)
{
    Region r = Region::fromQubits({7, 3, 3, 0, 7});
    EXPECT_EQ(r.qubits, (std::vector<HwQubit>{0, 3, 7}));
    EXPECT_TRUE(r.contains(3));
    EXPECT_FALSE(r.contains(5));
}

/**
 * The grid bit-identity anchor of the footprint refactor: for random
 * rect unions on random grids, the qubit-set overlap equals the
 * paper's pairwise rectangle-overlap predicate (Eq. 7/9) — inclusive
 * rectangles intersect exactly when they share a cell.
 */
TEST(Region, QubitFootprintOverlapEqualsRectOverlapOnGrids)
{
    std::mt19937_64 rng(test::kSeed);
    for (int iter = 0; iter < 400; ++iter) {
        int rows = 1 + static_cast<int>(rng() % 7);
        int cols = 1 + static_cast<int>(rng() % 7);
        GridTopology topo(rows, cols);
        auto random_rects = [&] {
            std::vector<Rect> rects;
            int n = 1 + static_cast<int>(rng() % 3);
            for (int i = 0; i < n; ++i) {
                GridPos a{static_cast<int>(rng() % rows),
                          static_cast<int>(rng() % cols)};
                GridPos b{static_cast<int>(rng() % rows),
                          static_cast<int>(rng() % cols)};
                rects.push_back(Rect::spanning(a, b));
            }
            return rects;
        };
        std::vector<Rect> ra = random_rects();
        std::vector<Rect> rb = random_rects();
        bool rect_overlap = false;
        for (const Rect &x : ra)
            for (const Rect &y : rb)
                rect_overlap = rect_overlap || x.overlaps(y);
        Region a = regionFromRects(topo, ra);
        Region b = regionFromRects(topo, rb);
        EXPECT_EQ(a.overlaps(b), rect_overlap)
            << "grid " << rows << "x" << cols << " iteration " << iter;
    }
}

class RouteRegions : public ::testing::Test
{
  protected:
    Machine m_ = day0();
};

TEST_F(RouteRegions, RectangleReservationIsBoundingBox)
{
    const auto &topo = m_.topo();
    for (HwQubit a = 0; a < topo.numQubits(); ++a) {
        for (HwQubit b = 0; b < topo.numQubits(); ++b) {
            if (a == b)
                continue;
            const RoutePath &r = m_.oneBendPath(a, b, 0);
            Region region = routeRegion(
                topo, r, RoutingPolicy::RectangleReservation);
            Rect bb = Rect::spanning(topo.posOf(a), topo.posOf(b));
            // The footprint is exactly the bounding box's cells.
            ASSERT_EQ(static_cast<int>(region.qubits.size()),
                      bb.area());
            for (HwQubit h : region.qubits)
                EXPECT_TRUE(bb.contains(topo.posOf(h)));
            // Every route node sits inside the reservation.
            for (HwQubit h : r.nodes)
                EXPECT_TRUE(region.contains(h));
        }
    }
}

TEST_F(RouteRegions, OneBendRegionCoversPathOnly)
{
    const auto &topo = m_.topo();
    for (HwQubit a = 0; a < topo.numQubits(); ++a) {
        for (HwQubit b = 0; b < topo.numQubits(); ++b) {
            if (a == b)
                continue;
            for (int j = 0; j < m_.numOneBendPaths(a, b); ++j) {
                const RoutePath &r = m_.oneBendPath(a, b, j);
                Region region =
                    routeRegion(topo, r, RoutingPolicy::OneBendPath);
                for (HwQubit h : r.nodes)
                    EXPECT_TRUE(region.contains(h));
                // 1BP legs are lines: the footprint is exactly the
                // path's node set, nothing more.
                EXPECT_EQ(region.qubits.size(), r.nodes.size());
            }
        }
    }
}

TEST_F(RouteRegions, DijkstraRegionIsPerNode)
{
    const auto &topo = m_.topo();
    RoutePath r = m_.dijkstraRoute(0, topo.numQubits() - 1);
    Region region = routeRegion(topo, r, RoutingPolicy::OneBendPath);
    EXPECT_EQ(region.qubits.size(), r.nodes.size());
    for (HwQubit h : r.nodes)
        EXPECT_TRUE(region.contains(h));
}

class RouteExpansion : public ::testing::Test
{
  protected:
    Machine m_ = day0();
};

TEST_F(RouteExpansion, AdjacentPairIsBareCnot)
{
    auto ops = expandRoute(m_, m_.bestReliabilityPath(0, 1));
    ASSERT_EQ(ops.size(), 1u);
    EXPECT_EQ(ops[0].gate.op, Op::CNOT);
    EXPECT_FALSE(ops[0].isRouteSwap);
    EXPECT_EQ(ops[0].offset, 0);
}

TEST_F(RouteExpansion, DistantPairSwapsThereAndBack)
{
    const auto &topo = m_.topo();
    HwQubit a = topo.qubitAt(0, 0);
    HwQubit b = topo.qubitAt(1, 3);
    const RoutePath &r = m_.bestReliabilityPath(a, b);
    int d = topo.distance(a, b);
    auto ops = expandRoute(m_, r);
    // (d-1) forward SWAPs + CNOT + (d-1) restore SWAPs.
    ASSERT_EQ(static_cast<int>(ops.size()), 2 * (d - 1) + 1);
    int swaps = 0;
    Timeslot total = 0;
    Timeslot cursor = 0;
    for (const auto &op : ops) {
        EXPECT_EQ(op.offset, cursor) << "ops must be back-to-back";
        cursor += op.duration;
        total += op.duration;
        if (op.gate.op == Op::Swap) {
            ++swaps;
            EXPECT_TRUE(op.isRouteSwap);
        }
    }
    EXPECT_EQ(swaps, 2 * (d - 1));
    EXPECT_EQ(total, r.duration);
    // Middle op is the CNOT, adjacent to the target.
    const auto &mid = ops[static_cast<size_t>(d - 1)];
    EXPECT_EQ(mid.gate.op, Op::CNOT);
    EXPECT_EQ(mid.gate.q1, b);
    EXPECT_TRUE(topo.adjacent(mid.gate.q0, b));
    // Restore swaps mirror the forward ones.
    EXPECT_EQ(ops.front().gate.q0, ops.back().gate.q1);
    EXPECT_EQ(ops.front().gate.q1, ops.back().gate.q0);
}

TEST_F(RouteExpansion, UniformDurationsMatchStaticModel)
{
    const auto &topo = m_.topo();
    HwQubit a = topo.qubitAt(0, 0);
    HwQubit b = topo.qubitAt(0, 4);
    const RoutePath &r = m_.bestDurationPath(a, b);
    Timeslot tau = m_.uniformCnotDuration();
    auto ops = expandRoute(m_, r, tau);
    Timeslot total = 0;
    for (const auto &op : ops)
        total += op.duration;
    EXPECT_EQ(total, m_.uniformRouteDuration(topo.distance(a, b)));
}

TEST(RoutingPolicy, Names)
{
    EXPECT_STREQ(routingPolicyName(RoutingPolicy::RectangleReservation),
                 "RR");
    EXPECT_STREQ(routingPolicyName(RoutingPolicy::OneBendPath), "1BP");
}

} // namespace
} // namespace qc
