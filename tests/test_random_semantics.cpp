/**
 * @file
 * Distribution-equivalence property tests: for *random* programs
 * (whose outcomes are not deterministic), the compiled hardware
 * program's noise-free outcome distribution must equal the source
 * program's distribution — the strongest semantic-preservation check
 * in the suite, covering placement, SWAP routing (restore and
 * tracking), scheduling and flattening in one property.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.hpp"
#include "workloads/random_circuits.hpp"

namespace qc {
namespace {

using test::day0;

/** Total variation distance between two outcome distributions. */
double
totalVariation(const std::map<std::string, double> &a,
               const std::map<std::string, double> &b)
{
    double tv = 0.0;
    auto ia = a.begin();
    auto ib = b.begin();
    while (ia != a.end() || ib != b.end()) {
        if (ib == b.end() || (ia != a.end() && ia->first < ib->first)) {
            tv += ia->second;
            ++ia;
        } else if (ia == a.end() || ib->first < ia->first) {
            tv += ib->second;
            ++ib;
        } else {
            tv += std::abs(ia->second - ib->second);
            ++ia;
            ++ib;
        }
    }
    return 0.5 * tv;
}

struct RandomCase
{
    std::uint64_t seed;
    int qubits;
    int gates;
    MapperKind mapper;
};

class RandomSemantics : public ::testing::TestWithParam<RandomCase>
{
};

TEST_P(RandomSemantics, CompiledDistributionMatchesSource)
{
    const auto &p = GetParam();
    Machine m = day0();

    RandomCircuitSpec spec;
    spec.numQubits = p.qubits;
    spec.numGates = p.gates;
    spec.seed = p.seed;
    Circuit prog = makeRandomCircuit(spec);

    CompilerOptions opts;
    opts.mapper = p.mapper;
    opts.smtTimeoutMs = 20'000;
    auto mapper = NoiseAdaptiveCompiler::makeMapper(m, opts);
    CompiledProgram cp = mapper->compile(prog);

    auto source = idealDistribution(prog);
    auto compiled =
        idealDistribution(cp.hwCircuit(prog.numClbits()));
    EXPECT_LT(totalVariation(source, compiled), 1e-9)
        << "mapper " << cp.mapperName << " changed the program's "
        << "outcome distribution";
}

std::vector<RandomCase>
randomCases()
{
    std::vector<RandomCase> cases;
    for (std::uint64_t seed : {11u, 22u, 33u, 44u}) {
        for (MapperKind k :
             {MapperKind::Qiskit, MapperKind::GreedyV,
              MapperKind::GreedyE, MapperKind::GreedyETrack}) {
            cases.push_back({seed, 5, 60, k});
        }
    }
    // A couple of denser / wider instances on the cheap mappers.
    cases.push_back({55, 7, 120, MapperKind::GreedyE});
    cases.push_back({66, 7, 120, MapperKind::GreedyETrack});
    cases.push_back({77, 8, 160, MapperKind::Qiskit});
    // And the SMT reliability mapper on small instances.
    cases.push_back({88, 4, 40, MapperKind::RSmtStar});
    cases.push_back({99, 4, 40, MapperKind::TSmtStar});
    return cases;
}

std::string
randomCaseName(const ::testing::TestParamInfo<RandomCase> &info)
{
    std::string n = "s" + std::to_string(info.param.seed) + "_q" +
                    std::to_string(info.param.qubits) + "_" +
                    mapperKindName(info.param.mapper);
    for (char &c : n)
        if (c == '-' || c == '*' || c == '+')
            c = '_';
    return n;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomSemantics,
                         ::testing::ValuesIn(randomCases()),
                         randomCaseName);

TEST(TotalVariation, HelperBehaves)
{
    std::map<std::string, double> a{{"00", 0.5}, {"11", 0.5}};
    std::map<std::string, double> b{{"00", 0.5}, {"11", 0.5}};
    EXPECT_NEAR(totalVariation(a, b), 0.0, 1e-15);
    std::map<std::string, double> c{{"01", 1.0}};
    EXPECT_NEAR(totalVariation(a, c), 1.0, 1e-15);
    std::map<std::string, double> d{{"00", 1.0}};
    EXPECT_NEAR(totalVariation(a, d), 0.5, 1e-15);
}

} // namespace
} // namespace qc
