/**
 * @file
 * List-scheduler tests: layout validation, dependency and
 * routing-overlap invariants (swept over benchmarks and route
 * selections), duration models and coherence checking.
 */

#include <gtest/gtest.h>

#include "ir/dag.hpp"
#include "test_util.hpp"

namespace qc {
namespace {

using test::day0;
using test::expectScheduleWellFormed;

TEST(ValidateLayout, CatchesBadLayouts)
{
    EXPECT_THROW(validateLayout({0, 1}, 3, 16), FatalError); // arity
    EXPECT_THROW(validateLayout({0, 0, 1}, 3, 16), FatalError); // dup
    EXPECT_THROW(validateLayout({0, 1, 16}, 3, 16), FatalError); // range
    EXPECT_THROW(validateLayout({-1, 1, 2}, 3, 16), FatalError);
    EXPECT_NO_THROW(validateLayout({3, 1, 2}, 3, 16));
}

/** Identity layout over the program's qubit count. */
std::vector<HwQubit>
identityLayout(const Circuit &prog)
{
    std::vector<HwQubit> layout(prog.numQubits());
    for (int q = 0; q < prog.numQubits(); ++q)
        layout[q] = q;
    return layout;
}

struct SchedCase
{
    std::string benchmark;
    RouteSelect select;
    RoutingPolicy policy;
    bool calibrated;
};

class SchedulerSweep : public ::testing::TestWithParam<SchedCase>
{
};

TEST_P(SchedulerSweep, InvariantsHold)
{
    const auto &p = GetParam();
    Machine m = day0();
    Benchmark b = benchmarkByName(p.benchmark);

    SchedulerOptions opts;
    opts.policy = p.policy;
    opts.select = p.select;
    opts.calibratedDurations = p.calibrated;
    if (p.select == RouteSelect::Fixed) {
        opts.fixedJunctions.assign(b.circuit.size(), -1);
        for (size_t i = 0; i < b.circuit.size(); ++i)
            if (b.circuit.gate(i).op == Op::CNOT)
                opts.fixedJunctions[i] = static_cast<int>(i) % 2;
    }

    ListScheduler sched(m, opts);
    Schedule s = sched.run(b.circuit, identityLayout(b.circuit));

    expectScheduleWellFormed(m, s);

    // Macro timings respect the program dependency DAG.
    DependencyDag dag(b.circuit);
    for (size_t i = 0; i < b.circuit.size(); ++i)
        for (int pred : dag.preds(static_cast<int>(i)))
            EXPECT_GE(s.macros[i].start, s.macros[pred].finish());

    // Makespan is bounded below by the critical path with the chosen
    // durations.
    std::vector<Timeslot> durations(b.circuit.size());
    for (size_t i = 0; i < b.circuit.size(); ++i)
        durations[i] = s.macros[i].duration;
    EXPECT_GE(s.makespan, dag.criticalPath(durations));
}

std::vector<SchedCase>
schedCases()
{
    std::vector<SchedCase> cases;
    for (const char *name :
         {"BV4", "BV8", "HS6", "Toffoli", "Fredkin", "Adder", "QFT"}) {
        cases.push_back({name, RouteSelect::BestReliability,
                         RoutingPolicy::OneBendPath, true});
        cases.push_back({name, RouteSelect::BestDuration,
                         RoutingPolicy::RectangleReservation, true});
        cases.push_back({name, RouteSelect::Dijkstra,
                         RoutingPolicy::OneBendPath, true});
        cases.push_back({name, RouteSelect::Fixed,
                         RoutingPolicy::OneBendPath, false});
    }
    return cases;
}

std::string
schedCaseName(const ::testing::TestParamInfo<SchedCase> &info)
{
    const auto &c = info.param;
    std::string sel = c.select == RouteSelect::BestReliability ? "rel"
                      : c.select == RouteSelect::BestDuration  ? "dur"
                      : c.select == RouteSelect::Dijkstra      ? "dij"
                                                               : "fix";
    return c.benchmark + "_" + sel + "_" +
           routingPolicyName(c.policy) + (c.calibrated ? "_cal" : "_uni");
}

INSTANTIATE_TEST_SUITE_P(Sweep, SchedulerSweep,
                         ::testing::ValuesIn(schedCases()),
                         schedCaseName);

TEST(Scheduler, AdjacentCnotNeedsNoSwap)
{
    Machine m = day0();
    Circuit c("pair", 2);
    c.h(0);
    c.cnot(0, 1);
    c.measure(1, 1);
    ListScheduler sched(m, {});
    Schedule s = sched.run(c, {0, 1});
    EXPECT_EQ(s.swapCount(), 0);
    EXPECT_EQ(s.hwCnotCount(), 1);
}

TEST(Scheduler, DistantCnotInsertsRestoreSwaps)
{
    Machine m = day0();
    Circuit c("far", 2);
    c.cnot(0, 1);
    ListScheduler sched(m, {});
    // Map the qubits three hops apart.
    Schedule s = sched.run(c, {m.topo().qubitAt(0, 0),
                               m.topo().qubitAt(0, 3)});
    EXPECT_EQ(s.swapCount(), 2 * (3 - 1));
    EXPECT_EQ(s.hwCnotCount(), 3 * 4 + 1);
}

TEST(Scheduler, UniformModeUsesStaticDurations)
{
    Machine m = day0();
    Circuit c("pair", 2);
    c.cnot(0, 1);
    SchedulerOptions opts;
    opts.calibratedDurations = false;
    opts.select = RouteSelect::BestDuration;
    ListScheduler sched(m, opts);
    Schedule s = sched.run(c, {0, 1});
    EXPECT_EQ(s.makespan, m.uniformCnotDuration());
}

TEST(Scheduler, ParallelCnotsOverlapWhenRegionsDisjoint)
{
    Machine m = day0();
    Circuit c("par", 4);
    c.cnot(0, 1);
    c.cnot(2, 3);
    ListScheduler sched(m, {});
    // Far-apart adjacent pairs: (0,0)-(0,1) and (1,6)-(1,7).
    Schedule s = sched.run(c, {m.topo().qubitAt(0, 0),
                               m.topo().qubitAt(0, 1),
                               m.topo().qubitAt(1, 6),
                               m.topo().qubitAt(1, 7)});
    EXPECT_EQ(s.macros[0].start, 0);
    EXPECT_EQ(s.macros[1].start, 0); // runs in parallel
}

TEST(Scheduler, OverlappingRegionsSerialize)
{
    Machine m = day0();
    Circuit c("conflict", 4);
    c.cnot(0, 1);
    c.cnot(2, 3);
    SchedulerOptions opts;
    opts.policy = RoutingPolicy::RectangleReservation;
    opts.select = RouteSelect::BestDuration;
    ListScheduler sched(m, opts);
    // Both bounding rectangles cover rows 0-1, columns 3-4: overlap.
    Schedule s = sched.run(c, {m.topo().qubitAt(0, 3),
                               m.topo().qubitAt(1, 4),
                               m.topo().qubitAt(1, 3),
                               m.topo().qubitAt(0, 4)});
    bool disjoint = s.macros[0].finish() <= s.macros[1].start ||
                    s.macros[1].finish() <= s.macros[0].start;
    EXPECT_TRUE(disjoint);
}

TEST(Scheduler, CoherenceViolationDetection)
{
    Machine m = day0();
    Circuit c("pair", 2);
    c.cnot(0, 1);
    c.measure(0, 0);
    ListScheduler sched(m, {});
    Schedule s = sched.run(c, {0, 1});
    // Real windows are generous: no violations.
    EXPECT_TRUE(s.coherenceViolations(m.cal()).empty());
    // An absurd static limit flags both qubits.
    auto vs = s.coherenceViolations(m.cal(), 1);
    EXPECT_EQ(vs.size(), 2u);
    EXPECT_EQ(vs[0].limit, 1);
}

TEST(Scheduler, RejectsProgramLevelSwap)
{
    Machine m = day0();
    Circuit c("bad", 2);
    c.swap(0, 1);
    ListScheduler sched(m, {});
    EXPECT_THROW(sched.run(c, {0, 1}), FatalError);
}

TEST(Schedule, HwCircuitPreservesOps)
{
    Machine m = day0();
    Benchmark b = benchmarkByName("BV4");
    ListScheduler sched(m, {});
    std::vector<HwQubit> layout{0, 1, 2, 3};
    Schedule s = sched.run(b.circuit, layout);
    Circuit hw = s.toHwCircuit("bv4_hw", b.circuit.numClbits());
    EXPECT_EQ(hw.size(), s.ops.size());
    EXPECT_EQ(hw.numQubits(), m.numQubits());
}

} // namespace
} // namespace qc
