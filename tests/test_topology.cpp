/**
 * @file
 * Topology tests: the grid family (construction, adjacency,
 * distances, the IBMQ16 instance) swept over several shapes, the
 * non-grid families (heavy-hex, ring, linear, edge-list graphs), the
 * BFS-distance/Manhattan equivalence property, and the CLI spec
 * factory.
 */

#include <gtest/gtest.h>

#include <random>

#include "machine/topology.hpp"
#include "support/logging.hpp"

namespace qc {
namespace {

class GridShapes
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(GridShapes, CountsAndCoordinates)
{
    auto [rows, cols] = GetParam();
    GridTopology g(rows, cols);
    EXPECT_EQ(g.numQubits(), rows * cols);
    EXPECT_EQ(g.numEdges(), rows * (cols - 1) + cols * (rows - 1));
    for (int h = 0; h < g.numQubits(); ++h) {
        GridPos p = g.posOf(h);
        EXPECT_EQ(g.qubitAt(p.x, p.y), h);
    }
}

TEST_P(GridShapes, DistanceIsManhattan)
{
    auto [rows, cols] = GetParam();
    GridTopology g(rows, cols);
    for (int a = 0; a < g.numQubits(); ++a) {
        for (int b = 0; b < g.numQubits(); ++b) {
            GridPos pa = g.posOf(a);
            GridPos pb = g.posOf(b);
            int l1 = std::abs(pa.x - pb.x) + std::abs(pa.y - pb.y);
            EXPECT_EQ(g.distance(a, b), l1);
            EXPECT_EQ(g.adjacent(a, b), l1 == 1);
        }
    }
}

TEST_P(GridShapes, EdgesConsistent)
{
    auto [rows, cols] = GetParam();
    GridTopology g(rows, cols);
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
        const auto &edge = g.edge(e);
        EXPECT_TRUE(g.adjacent(edge.a, edge.b));
        EXPECT_EQ(g.edgeBetween(edge.a, edge.b), e);
        EXPECT_EQ(g.edgeBetween(edge.b, edge.a), e);
    }
    // Non-adjacent pairs have no edge.
    EXPECT_EQ(g.edgeBetween(0, g.numQubits() - 1),
              g.numQubits() > 2 ? kInvalidEdge
                                : g.edgeBetween(0, g.numQubits() - 1));
}

TEST_P(GridShapes, NeighborListsMatchAdjacency)
{
    auto [rows, cols] = GetParam();
    GridTopology g(rows, cols);
    for (int h = 0; h < g.numQubits(); ++h) {
        const auto &ns = g.neighbors(h);
        EXPECT_TRUE(std::is_sorted(ns.begin(), ns.end()));
        for (int n : ns)
            EXPECT_TRUE(g.adjacent(h, n));
        int count = 0;
        for (int other = 0; other < g.numQubits(); ++other)
            if (g.adjacent(h, other))
                ++count;
        EXPECT_EQ(static_cast<int>(ns.size()), count);
    }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GridShapes,
                         ::testing::Values(std::pair{1, 2},
                                           std::pair{2, 8},
                                           std::pair{4, 4},
                                           std::pair{3, 5},
                                           std::pair{8, 16}));

TEST(GridTopology, Ibmq16Is2x8)
{
    GridTopology g = GridTopology::ibmq16();
    EXPECT_EQ(g.rows(), 2);
    EXPECT_EQ(g.cols(), 8);
    EXPECT_EQ(g.numQubits(), 16);
    EXPECT_EQ(g.numEdges(), 22);
    EXPECT_EQ(g.name(), "grid2x8");
}

TEST(GridTopology, RejectsBadDimensions)
{
    EXPECT_THROW(GridTopology(0, 4), FatalError);
    EXPECT_THROW(GridTopology(4, -1), FatalError);
}

TEST(GridTopology, InteriorDegreeOn2x8)
{
    GridTopology g = GridTopology::ibmq16();
    EXPECT_EQ(g.neighbors(g.qubitAt(0, 0)).size(), 2u); // corner
    EXPECT_EQ(g.neighbors(g.qubitAt(0, 3)).size(), 3u); // edge-interior
}

/**
 * Property test for the abstraction: on random grids the generic
 * graph machinery (BFS distances, as every non-grid kind uses) agrees
 * with the grid's L1 fast path. GraphTopology built from the grid's
 * own edge list IS the generic path, so this pins the two
 * implementations against each other.
 */
TEST(TopologyProperty, BfsDistanceEqualsManhattanOnRandomGrids)
{
    std::mt19937_64 rng(20190131);
    for (int iter = 0; iter < 25; ++iter) {
        int rows = 1 + static_cast<int>(rng() % 8);
        int cols = 1 + static_cast<int>(rng() % 8);
        if (rows * cols < 2)
            cols = 2;
        GridTopology g(rows, cols);
        std::vector<CouplingEdge> edges(g.edges());
        GraphTopology generic(g.numQubits(), edges,
                              "asgraph-" + g.name());
        ASSERT_FALSE(generic.isGrid());
        for (int a = 0; a < g.numQubits(); ++a) {
            for (int b = 0; b < g.numQubits(); ++b) {
                GridPos pa = g.posOf(a);
                GridPos pb = g.posOf(b);
                int l1 =
                    std::abs(pa.x - pb.x) + std::abs(pa.y - pb.y);
                ASSERT_EQ(g.distance(a, b), l1)
                    << g.name() << " L1 fast path";
                ASSERT_EQ(generic.distance(a, b), l1)
                    << g.name() << " BFS table";
            }
        }
    }
}

TEST(HeavyHexTopology, ShapeAndDegreeBound)
{
    HeavyHexTopology h(3);
    EXPECT_EQ(h.kind(), TopologyKind::HeavyHex);
    EXPECT_FALSE(h.isGrid());
    EXPECT_EQ(h.name(), "heavyhex3");
    // d^2 data + d(d-1) flags + 3 bridges at d=3.
    EXPECT_EQ(h.numQubits(), 18);
    // Heavy-hex signature: max degree 3.
    for (int q = 0; q < h.numQubits(); ++q)
        EXPECT_LE(h.neighbors(q).size(), 3u) << "qubit " << q;
    // Grid accessors are grid-only.
    EXPECT_THROW(h.rows(), FatalError);
    EXPECT_THROW(h.posOf(0), FatalError);
    // Distances are symmetric, metric-positive, edge-consistent.
    for (int a = 0; a < h.numQubits(); ++a)
        for (int b = 0; b < h.numQubits(); ++b) {
            EXPECT_EQ(h.distance(a, b), h.distance(b, a));
            EXPECT_EQ(h.distance(a, b) == 0, a == b);
            EXPECT_EQ(h.adjacent(a, b), h.distance(a, b) == 1);
        }
    EXPECT_THROW(HeavyHexTopology(1), FatalError);
}

TEST(RingTopology, WrapsAround)
{
    RingTopology r(8);
    EXPECT_EQ(r.numQubits(), 8);
    EXPECT_EQ(r.numEdges(), 8);
    EXPECT_EQ(r.name(), "ring8");
    EXPECT_TRUE(r.adjacent(0, 7));
    EXPECT_EQ(r.distance(0, 4), 4); // antipode
    EXPECT_EQ(r.distance(0, 5), 3); // shorter the other way
    for (int q = 0; q < 8; ++q)
        EXPECT_EQ(r.neighbors(q).size(), 2u);
    EXPECT_THROW(RingTopology(2), FatalError);
}

TEST(LinearTopology, IsAPath)
{
    LinearTopology l(8);
    EXPECT_EQ(l.numEdges(), 7);
    EXPECT_EQ(l.name(), "linear8");
    EXPECT_FALSE(l.adjacent(0, 7));
    EXPECT_EQ(l.distance(0, 7), 7);
    EXPECT_EQ(l.neighbors(0).size(), 1u);
    EXPECT_THROW(LinearTopology(1), FatalError);
}

TEST(GraphTopology, ParsesEdgeListsAndValidates)
{
    GraphTopology g = GraphTopology::fromEdgeList(
        "# a triangle with a tail\n"
        "0 1\n1 2  # back edge\n2 0\n2 3\n",
        "tri-tail");
    EXPECT_EQ(g.numQubits(), 4);
    EXPECT_EQ(g.numEdges(), 4);
    EXPECT_EQ(g.name(), "tri-tail");
    EXPECT_EQ(g.distance(0, 3), 2);

    // Declared qubit counts are honored and checked.
    GraphTopology declared = GraphTopology::fromEdgeList(
        "qubits 3\n0 1\n1 2\n", "declared");
    EXPECT_EQ(declared.numQubits(), 3);

    EXPECT_THROW(GraphTopology::fromEdgeList("", "empty"), FatalError);
    EXPECT_THROW(GraphTopology::fromEdgeList("0 0\n", "loop"),
                 FatalError);
    EXPECT_THROW(GraphTopology::fromEdgeList("0 1\n1 0\n", "dup"),
                 FatalError);
    EXPECT_THROW(
        GraphTopology::fromEdgeList("0 1\n2 3\n", "disconnected"),
        FatalError);
    EXPECT_THROW(GraphTopology::fromEdgeList("0 x\n", "junk"),
                 FatalError);
    // Trailing garbage in a qubit id must not silently truncate.
    EXPECT_THROW(GraphTopology::fromEdgeList("0x5 2\n", "hexish"),
                 FatalError);
}

TEST(TopologySpec, FactoryParsesEveryFamily)
{
    EXPECT_EQ(topologyFromSpec("grid:2x8").name(), "grid2x8");
    EXPECT_EQ(topologyFromSpec("grid:2x8").kind(), TopologyKind::Grid);
    EXPECT_EQ(topologyFromSpec("heavyhex:3").numQubits(), 18);
    EXPECT_EQ(topologyFromSpec("ring:12").numEdges(), 12);
    EXPECT_EQ(topologyFromSpec("linear:5").numEdges(), 4);

    EXPECT_THROW(topologyFromSpec("grid:8"), FatalError);
    EXPECT_THROW(topologyFromSpec("ring:-3"), FatalError);
    EXPECT_THROW(topologyFromSpec("mesh:4"), FatalError);
    EXPECT_THROW(topologyFromSpec("grid"), FatalError);
    EXPECT_THROW(topologyFromSpec("file:/nonexistent/x.edges"),
                 FatalError);
}

} // namespace
} // namespace qc
