/**
 * @file
 * Grid-topology tests: construction, adjacency, distances and the
 * IBMQ16 instance, swept over several grid shapes.
 */

#include <gtest/gtest.h>

#include "machine/topology.hpp"
#include "support/logging.hpp"

namespace qc {
namespace {

class GridShapes
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(GridShapes, CountsAndCoordinates)
{
    auto [rows, cols] = GetParam();
    GridTopology g(rows, cols);
    EXPECT_EQ(g.numQubits(), rows * cols);
    EXPECT_EQ(g.numEdges(), rows * (cols - 1) + cols * (rows - 1));
    for (int h = 0; h < g.numQubits(); ++h) {
        GridPos p = g.posOf(h);
        EXPECT_EQ(g.qubitAt(p.x, p.y), h);
    }
}

TEST_P(GridShapes, DistanceIsManhattan)
{
    auto [rows, cols] = GetParam();
    GridTopology g(rows, cols);
    for (int a = 0; a < g.numQubits(); ++a) {
        for (int b = 0; b < g.numQubits(); ++b) {
            GridPos pa = g.posOf(a);
            GridPos pb = g.posOf(b);
            int l1 = std::abs(pa.x - pb.x) + std::abs(pa.y - pb.y);
            EXPECT_EQ(g.distance(a, b), l1);
            EXPECT_EQ(g.adjacent(a, b), l1 == 1);
        }
    }
}

TEST_P(GridShapes, EdgesConsistent)
{
    auto [rows, cols] = GetParam();
    GridTopology g(rows, cols);
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
        const auto &edge = g.edge(e);
        EXPECT_TRUE(g.adjacent(edge.a, edge.b));
        EXPECT_EQ(g.edgeBetween(edge.a, edge.b), e);
        EXPECT_EQ(g.edgeBetween(edge.b, edge.a), e);
    }
    // Non-adjacent pairs have no edge.
    EXPECT_EQ(g.edgeBetween(0, g.numQubits() - 1),
              g.numQubits() > 2 ? kInvalidEdge
                                : g.edgeBetween(0, g.numQubits() - 1));
}

TEST_P(GridShapes, NeighborListsMatchAdjacency)
{
    auto [rows, cols] = GetParam();
    GridTopology g(rows, cols);
    for (int h = 0; h < g.numQubits(); ++h) {
        const auto &ns = g.neighbors(h);
        EXPECT_TRUE(std::is_sorted(ns.begin(), ns.end()));
        for (int n : ns)
            EXPECT_TRUE(g.adjacent(h, n));
        int count = 0;
        for (int other = 0; other < g.numQubits(); ++other)
            if (g.adjacent(h, other))
                ++count;
        EXPECT_EQ(static_cast<int>(ns.size()), count);
    }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GridShapes,
                         ::testing::Values(std::pair{1, 2},
                                           std::pair{2, 8},
                                           std::pair{4, 4},
                                           std::pair{3, 5},
                                           std::pair{8, 16}));

TEST(GridTopology, Ibmq16Is2x8)
{
    GridTopology g = GridTopology::ibmq16();
    EXPECT_EQ(g.rows(), 2);
    EXPECT_EQ(g.cols(), 8);
    EXPECT_EQ(g.numQubits(), 16);
    EXPECT_EQ(g.numEdges(), 22);
    EXPECT_EQ(g.name(), "grid2x8");
}

TEST(GridTopology, RejectsBadDimensions)
{
    EXPECT_THROW(GridTopology(0, 4), FatalError);
    EXPECT_THROW(GridTopology(4, -1), FatalError);
}

TEST(GridTopology, InteriorDegreeOn2x8)
{
    GridTopology g = GridTopology::ibmq16();
    EXPECT_EQ(g.neighbors(g.qubitAt(0, 0)).size(), 2u); // corner
    EXPECT_EQ(g.neighbors(g.qubitAt(0, 3)).size(), 3u); // edge-interior
}

} // namespace
} // namespace qc
