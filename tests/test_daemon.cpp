/**
 * @file
 * Compile-daemon tests: the three subsystem pillars — sharded
 * admission queue with per-tenant quotas, persistent content-
 * addressed cache surviving restart and corruption, zero-downtime
 * calibration rollover — plus the protocol helpers and the
 * end-to-end guarantee that daemon output is bit-identical to the
 * one-shot pipeline.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "daemon/daemon.hpp"
#include "daemon/program_serdes.hpp"
#include "daemon/protocol.hpp"
#include "ir/qasm.hpp"
#include "machine/calibration_model.hpp"
#include "support/rng.hpp"
#include "tests/test_util.hpp"
#include "verify/mutate.hpp"
#include "workloads/benchmarks.hpp"

namespace {

using namespace qc;
using daemon::CompileDaemon;
using daemon::DaemonOptions;
using daemon::JobSnapshot;
using daemon::Lane;

namespace fs = std::filesystem;

/** Fresh, empty scratch directory removed on destruction. */
struct ScratchDir
{
    fs::path path;

    explicit ScratchDir(const std::string &name)
        : path(fs::temp_directory_path() /
               ("naqc-test-" + name + "-" +
                std::to_string(::getpid())))
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~ScratchDir() { fs::remove_all(path); }
};

GridTopology
topo()
{
    return GridTopology(2, 4);
}

Calibration
day(int d)
{
    return CalibrationModel(topo(), test::kSeed).forDay(d);
}

DaemonOptions
fastOptions()
{
    DaemonOptions opts;
    opts.threads = 2;
    opts.shards = 2;
    return opts;
}

CompilerOptions
greedyOptions()
{
    CompilerOptions copts;
    copts.mapper = MapperKind::GreedyE;
    return copts;
}

JobSnapshot
submitAndWait(CompileDaemon &d, const Circuit &circuit,
              const std::string &tenant = "t0",
              Lane lane = Lane::Normal)
{
    CompileDaemon::SubmitOutcome out = d.submit(
        tenant, lane, circuit, greedyOptions(), circuit.name());
    EXPECT_TRUE(out.accepted) << out.reason;
    JobSnapshot snap;
    EXPECT_TRUE(d.wait(out.id, snap));
    EXPECT_EQ(snap.state, daemon::JobState::Done);
    return snap;
}

// ---------------------------------------------------------------- //
// Protocol helpers
// ---------------------------------------------------------------- //

TEST(Protocol, ParsesCommandArgsAndBareFlags)
{
    daemon::Request req = daemon::parseRequest(
        "SUBMIT bench=BV4  tenant=alice \t wait priority=high");
    EXPECT_EQ(req.command, "submit");
    EXPECT_EQ(req.get("bench"), "BV4");
    EXPECT_EQ(req.get("tenant"), "alice");
    EXPECT_EQ(req.get("priority"), "high");
    EXPECT_EQ(req.get("wait"), "1"); // bare flag
    EXPECT_EQ(req.get("absent", "fallback"), "fallback");
    EXPECT_EQ(req.getInt("wait", 0), 1);
    EXPECT_EQ(req.getInt("bench", -7), -7); // malformed int
    EXPECT_TRUE(daemon::parseRequest("").command.empty());
}

TEST(Protocol, LaneNamesRoundTrip)
{
    Lane lane;
    ASSERT_TRUE(daemon::laneFromName("high", lane));
    EXPECT_EQ(lane, Lane::High);
    ASSERT_TRUE(daemon::laneFromName("low", lane));
    EXPECT_EQ(lane, Lane::Low);
    EXPECT_FALSE(daemon::laneFromName("urgent", lane));
    EXPECT_STREQ(daemon::laneName(Lane::Normal), "normal");
}

// ---------------------------------------------------------------- //
// Submission queue
// ---------------------------------------------------------------- //

TEST(SubmissionQueue, LaneMajorAcrossShardsWithStealing)
{
    daemon::ShardedSubmissionQueue q(2);
    q.push(0, Lane::Low, 1);
    q.push(0, Lane::Normal, 2);
    q.push(1, Lane::High, 3);

    std::uint64_t id = 0;
    bool stolen = false;
    // Home shard 0 has no high-lane job: the high job on shard 1
    // must still drain before any normal/low job.
    ASSERT_TRUE(q.tryPop(0, id, stolen));
    EXPECT_EQ(id, 3u);
    EXPECT_TRUE(stolen);
    ASSERT_TRUE(q.tryPop(0, id, stolen));
    EXPECT_EQ(id, 2u);
    EXPECT_FALSE(stolen);
    ASSERT_TRUE(q.tryPop(0, id, stolen));
    EXPECT_EQ(id, 1u);
    EXPECT_FALSE(stolen);
    EXPECT_FALSE(q.tryPop(0, id, stolen));

    daemon::QueueStats stats = q.stats();
    EXPECT_EQ(stats.pushes, 3u);
    EXPECT_EQ(stats.pops, 3u);
    EXPECT_EQ(stats.steals, 1u);
    EXPECT_EQ(stats.depth, 0u);
}

TEST(SubmissionQueue, TenantAlwaysHashesToSameShard)
{
    daemon::ShardedSubmissionQueue q(4);
    const int shard = q.shardForTenant("alice");
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(q.shardForTenant("alice"), shard);
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, 4);
}

// ---------------------------------------------------------------- //
// Daemon: compile correctness and caching
// ---------------------------------------------------------------- //

TEST(Daemon, BitIdenticalToOneShotPipeline)
{
    CompileDaemon d(topo(), day(0), fastOptions());

    auto machine =
        std::make_shared<const Machine>(topo(), day(0));
    for (const char *name : {"BV4", "Toffoli", "Fredkin"}) {
        const Benchmark bench = benchmarkByName(name);
        PipelineResult direct =
            standardPipeline(machine, greedyOptions())
                .run(bench.circuit);
        ASSERT_TRUE(direct.hasProgram);

        JobSnapshot snap = submitAndWait(d, bench.circuit);
        ASSERT_TRUE(snap.result.ok);
        EXPECT_EQ(
            emitQasm(snap.result.program->hwCircuit(
                bench.circuit.numClbits())),
            emitQasm(direct.program.hwCircuit(
                bench.circuit.numClbits())))
            << name;
    }
}

TEST(Daemon, RepeatSubmitHitsMemoryCache)
{
    CompileDaemon d(topo(), day(0), fastOptions());
    const Circuit circuit = benchmarkByName("BV4").circuit;

    JobSnapshot first = submitAndWait(d, circuit);
    EXPECT_EQ(first.cacheSource, daemon::CacheSource::None);
    JobSnapshot second = submitAndWait(d, circuit, "t1");
    EXPECT_EQ(second.cacheSource, daemon::CacheSource::Memory);
    EXPECT_TRUE(second.result.cacheHit);
    // Cached artifact is the same object, not a recompile.
    EXPECT_EQ(second.result.program.get(),
              first.result.program.get());
}

TEST(Daemon, OverQuotaSubmitIsRejectedStructurally)
{
    DaemonOptions opts;
    opts.threads = 1;
    opts.shards = 1;
    opts.tenantQuota = 1;
    CompileDaemon d(topo(), day(0), opts);

    // A dense circuit keeps the single worker busy long enough for
    // the second submit to land while the first is in flight.
    Circuit big("big", 8);
    for (int round = 0; round < 40; ++round)
        for (int q = 0; q + 1 < 8; ++q)
            big.cnot(q, q + 1);

    CompileDaemon::SubmitOutcome first =
        d.submit("alice", Lane::Normal, big, greedyOptions(), "j1");
    ASSERT_TRUE(first.accepted);
    CompileDaemon::SubmitOutcome second =
        d.submit("alice", Lane::Normal, big, greedyOptions(), "j2");
    EXPECT_FALSE(second.accepted);
    EXPECT_EQ(second.reason.rfind("rejected:over-quota", 0), 0u)
        << second.reason;

    // Another tenant is not affected by alice's quota.
    CompileDaemon::SubmitOutcome other = d.submit(
        "bob", Lane::Normal, benchmarkByName("BV4").circuit,
        greedyOptions(), "j3");
    EXPECT_TRUE(other.accepted);

    d.awaitIdle();
    daemon::DaemonStats stats = d.stats();
    EXPECT_EQ(stats.rejected, 1u);
    for (const daemon::TenantStats &t : stats.tenants) {
        if (t.tenant == "alice") {
            EXPECT_EQ(t.rejected, 1u);
            EXPECT_EQ(t.completed, 1u);
            EXPECT_EQ(t.inFlight, 0u);
        }
    }
}

TEST(Daemon, ShutdownRejectsNewSubmits)
{
    CompileDaemon d(topo(), day(0), fastOptions());
    d.beginShutdown();
    EXPECT_FALSE(d.acceptingJobs());
    CompileDaemon::SubmitOutcome out = d.submit(
        "t0", Lane::Normal, benchmarkByName("BV4").circuit,
        greedyOptions(), "late");
    EXPECT_FALSE(out.accepted);
    EXPECT_EQ(out.reason, "rejected:shutting-down");
}

// ---------------------------------------------------------------- //
// Daemon: persistent cache
// ---------------------------------------------------------------- //

TEST(Daemon, RestartServesWorkingSetFromDisk)
{
    ScratchDir scratch("restart");
    DaemonOptions opts = fastOptions();
    opts.cacheDir = scratch.path.string();

    std::vector<std::string> names = {"BV4",     "BV6",    "Toffoli",
                                      "Fredkin", "Or",     "Peres",
                                      "HS2",     "HS4"};
    {
        CompileDaemon d(topo(), day(0), opts);
        for (const std::string &n : names)
            ASSERT_TRUE(
                submitAndWait(d, benchmarkByName(n).circuit)
                    .result.ok);
        daemon::DaemonStats stats = d.stats();
        EXPECT_EQ(stats.disk.stores, names.size());
        EXPECT_EQ(stats.diskEntries, names.size());
    }

    // Fresh daemon, same cache dir: the whole working set must come
    // back from disk (the >= 90% restart acceptance bar; here 100%).
    CompileDaemon d2(topo(), day(0), opts);
    std::size_t disk_hits = 0;
    for (const std::string &n : names) {
        JobSnapshot snap =
            submitAndWait(d2, benchmarkByName(n).circuit);
        ASSERT_TRUE(snap.result.ok);
        if (snap.cacheSource == daemon::CacheSource::Disk)
            ++disk_hits;
    }
    EXPECT_EQ(disk_hits, names.size());
    EXPECT_EQ(d2.stats().diskHits, names.size());

    // ... and bit-identical to a direct compile.
    auto machine =
        std::make_shared<const Machine>(topo(), day(0));
    const Benchmark bench = benchmarkByName("Toffoli");
    PipelineResult direct =
        standardPipeline(machine, greedyOptions()).run(bench.circuit);
    JobSnapshot cached = submitAndWait(d2, bench.circuit);
    EXPECT_EQ(emitQasm(cached.result.program->hwCircuit(
                  bench.circuit.numClbits())),
              emitQasm(direct.program.hwCircuit(
                  bench.circuit.numClbits())));
}

TEST(Daemon, CorruptCacheEntryIsRejectedAndRecompiled)
{
    ScratchDir scratch("corrupt");
    DaemonOptions opts = fastOptions();
    opts.cacheDir = scratch.path.string();
    const Circuit circuit = benchmarkByName("BV4").circuit;

    {
        CompileDaemon d(topo(), day(0), opts);
        ASSERT_TRUE(submitAndWait(d, circuit).result.ok);
    }

    // Damage every entry on disk.
    for (const fs::directory_entry &e :
         fs::directory_iterator(scratch.path)) {
        std::ofstream out(e.path(), std::ios::binary);
        out << "garbage";
    }

    CompileDaemon d2(topo(), day(0), opts);
    JobSnapshot snap = submitAndWait(d2, circuit);
    ASSERT_TRUE(snap.result.ok);
    // Not served from disk: the corrupt entry was unlinked and the
    // job recompiled (then re-stored, healing the cache).
    EXPECT_EQ(snap.cacheSource, daemon::CacheSource::None);
    daemon::DaemonStats stats = d2.stats();
    EXPECT_EQ(stats.disk.corruptRejected, 1u);
    EXPECT_EQ(stats.disk.stores, 1u);

    JobSnapshot healed = submitAndWait(d2, circuit, "t1");
    EXPECT_EQ(healed.cacheSource, daemon::CacheSource::Memory);
}

TEST(Daemon, DiskEntriesAreVerifiedOnLoad)
{
    ScratchDir scratch("verify-load");
    DaemonOptions opts = fastOptions();
    opts.cacheDir = scratch.path.string();
    const Circuit circuit = benchmarkByName("BV4").circuit;

    {
        CompileDaemon d(topo(), day(0), opts);
        ASSERT_TRUE(submitAndWait(d, circuit).result.ok);
        EXPECT_EQ(d.stats().verifiedOnLoad, 0u); // no disk load yet
    }

    CompileDaemon d2(topo(), day(0), opts);
    JobSnapshot snap = submitAndWait(d2, circuit);
    ASSERT_TRUE(snap.result.ok);
    EXPECT_EQ(snap.cacheSource, daemon::CacheSource::Disk);
    daemon::DaemonStats stats = d2.stats();
    EXPECT_EQ(stats.verifiedOnLoad, 1u);
    EXPECT_EQ(stats.healed, 0u);
}

TEST(Daemon, ChecksumValidButBrokenEntryIsHealedOnLoad)
{
    ScratchDir scratch("heal");
    DaemonOptions opts = fastOptions();
    opts.cacheDir = scratch.path.string();
    const Circuit circuit = benchmarkByName("BV4").circuit;

    {
        CompileDaemon d(topo(), day(0), opts);
        ASSERT_TRUE(submitAndWait(d, circuit).result.ok);
    }

    // Rewrite every entry as a *well-framed* blob whose program is
    // semantically broken (a dropped gate): the checksum passes, so
    // only verify-on-load can catch it.
    auto machine = std::make_shared<const Machine>(topo(), day(0));
    std::size_t rewritten = 0;
    for (const fs::directory_entry &e :
         fs::directory_iterator(scratch.path)) {
        std::ifstream in(e.path(), std::ios::binary);
        std::ostringstream oss;
        oss << in.rdbuf();
        in.close();
        CompiledProgram program;
        ASSERT_TRUE(
            daemon::deserializeCompiledProgram(oss.str(), program));
        Rng rng(test::kSeed);
        ASSERT_TRUE(applyMutation(program, *machine,
                                  MutationKind::DropGate, rng));
        std::ofstream out(e.path(), std::ios::binary);
        out << daemon::serializeCompiledProgram(program);
        ++rewritten;
    }
    ASSERT_EQ(rewritten, 1u);

    CompileDaemon d2(topo(), day(0), opts);
    JobSnapshot snap = submitAndWait(d2, circuit);
    ASSERT_TRUE(snap.result.ok);
    // The broken entry was purged and the job recompiled fresh.
    EXPECT_EQ(snap.cacheSource, daemon::CacheSource::None);
    daemon::DaemonStats stats = d2.stats();
    EXPECT_EQ(stats.healed, 1u);
    EXPECT_EQ(stats.verifiedOnLoad, 0u);
    EXPECT_EQ(stats.disk.corruptRejected, 0u); // frame was valid
    EXPECT_EQ(stats.disk.stores, 1u);          // re-stored: healed

    // The healed entry now verifies and serves from disk again.
    CompileDaemon d3(topo(), day(0), opts);
    JobSnapshot again = submitAndWait(d3, circuit);
    ASSERT_TRUE(again.result.ok);
    EXPECT_EQ(again.cacheSource, daemon::CacheSource::Disk);
    EXPECT_EQ(d3.stats().verifiedOnLoad, 1u);
    EXPECT_EQ(d3.stats().healed, 0u);
}

TEST(Daemon, VerifyOnLoadCanBeDisabled)
{
    ScratchDir scratch("verify-off");
    DaemonOptions opts = fastOptions();
    opts.cacheDir = scratch.path.string();
    opts.verifyOnLoad = false;
    const Circuit circuit = benchmarkByName("BV4").circuit;

    {
        CompileDaemon d(topo(), day(0), opts);
        ASSERT_TRUE(submitAndWait(d, circuit).result.ok);
    }

    CompileDaemon d2(topo(), day(0), opts);
    JobSnapshot snap = submitAndWait(d2, circuit);
    ASSERT_TRUE(snap.result.ok);
    EXPECT_EQ(snap.cacheSource, daemon::CacheSource::Disk);
    EXPECT_EQ(d2.stats().verifiedOnLoad, 0u);
}

// ---------------------------------------------------------------- //
// Daemon: calibration rollover
// ---------------------------------------------------------------- //

TEST(Daemon, RolloverFlipsEpochForNewJobsOnly)
{
    CompileDaemon d(topo(), day(0), fastOptions());
    const std::uint64_t fp0 = d.currentEpoch()->machineFp;

    JobSnapshot before =
        submitAndWait(d, benchmarkByName("BV4").circuit);
    EXPECT_EQ(before.epochId, 1);

    CompileDaemon::ReloadOutcome reload =
        d.reload(day(1), 1, "test-day-1");
    EXPECT_EQ(reload.epochId, 2);
    d.awaitIdle(); // let warm recompiles drain

    auto epoch = d.currentEpoch();
    EXPECT_EQ(epoch->id, 2);
    EXPECT_EQ(epoch->day, 1);
    EXPECT_NE(epoch->machineFp, fp0);

    JobSnapshot after =
        submitAndWait(d, benchmarkByName("BV4").circuit);
    EXPECT_EQ(after.epochId, 2);
    // Day-1 calibration differs, so the day-0 cache entry must not
    // serve this job... but the rollover warm pass already
    // recompiled BV4 against day 1, so it's a memory hit.
    EXPECT_EQ(after.cacheSource, daemon::CacheSource::Memory);

    daemon::DaemonStats stats = d.stats();
    EXPECT_EQ(stats.epochId, 2);
    EXPECT_GE(stats.warmRecompiles, 1u);
    EXPECT_EQ(stats.rejected, 0u); // zero-downtime: nothing failed
}

TEST(Daemon, RolloverRecompileIsBitIdenticalToNewDayPipeline)
{
    CompileDaemon d(topo(), day(0), fastOptions());
    const Benchmark bench = benchmarkByName("Toffoli");
    submitAndWait(d, bench.circuit);

    d.reload(day(3), 3, "test-day-3");
    JobSnapshot snap = submitAndWait(d, bench.circuit);
    ASSERT_TRUE(snap.result.ok);

    auto machine =
        std::make_shared<const Machine>(topo(), day(3));
    PipelineResult direct =
        standardPipeline(machine, greedyOptions()).run(bench.circuit);
    ASSERT_TRUE(direct.hasProgram);
    EXPECT_EQ(emitQasm(snap.result.program->hwCircuit(
                  bench.circuit.numClbits())),
              emitQasm(direct.program.hwCircuit(
                  bench.circuit.numClbits())));
}

TEST(Daemon, InFlightJobsFinishOnOldEpochDuringRollover)
{
    DaemonOptions opts;
    opts.threads = 1;
    opts.shards = 1;
    opts.warmTopK = 0; // isolate the in-flight job's epoch
    CompileDaemon d(topo(), day(0), opts);

    Circuit big("big", 8);
    for (int round = 0; round < 40; ++round)
        for (int q = 0; q + 1 < 8; ++q)
            big.cnot(q, q + 1);

    CompileDaemon::SubmitOutcome out =
        d.submit("t0", Lane::Normal, big, greedyOptions(), "slow");
    ASSERT_TRUE(out.accepted);
    // Flip the epoch while the job is (likely) queued or running;
    // whichever epoch the job captured, it must complete cleanly on
    // exactly one of them — never fail, never block.
    d.reload(day(1), 1, "mid-flight");

    JobSnapshot snap;
    ASSERT_TRUE(d.wait(out.id, snap));
    EXPECT_TRUE(snap.result.ok);
    EXPECT_TRUE(snap.epochId == 1 || snap.epochId == 2)
        << snap.epochId;
    EXPECT_EQ(d.stats().rejected, 0u);
}

} // namespace
