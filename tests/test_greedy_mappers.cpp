/**
 * @file
 * Greedy heuristic tests (GreedyV*, GreedyE*): valid deterministic
 * layouts across all benchmarks, placement-policy behaviors, and the
 * shared attach helper.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ir/program_graph.hpp"
#include "mappers/greedy_mapper.hpp"
#include "test_util.hpp"

namespace qc {
namespace {

using test::day0;
using test::expectScheduleWellFormed;

class GreedyAllBenchmarks : public ::testing::TestWithParam<std::string>
{
};

TEST_P(GreedyAllBenchmarks, BothHeuristicsProduceValidSchedules)
{
    Machine m = day0();
    Benchmark b = benchmarkByName(GetParam());

    GreedyVMapper gv(m);
    GreedyEMapper ge(m);
    for (Mapper *mapper : {static_cast<Mapper *>(&gv),
                           static_cast<Mapper *>(&ge)}) {
        CompiledProgram cp = mapper->compile(b.circuit);
        validateLayout(cp.layout, b.circuit.numQubits(), m.numQubits());
        expectScheduleWellFormed(m, cp.schedule);
        EXPECT_GT(cp.predictedSuccess, 0.0);
        EXPECT_LE(cp.predictedSuccess, 1.0);
        EXPECT_EQ(cp.duration, cp.schedule.makespan);
    }
}

TEST_P(GreedyAllBenchmarks, Deterministic)
{
    Machine m = day0();
    Benchmark b = benchmarkByName(GetParam());
    GreedyEMapper mapper(m);
    CompiledProgram a = mapper.compile(b.circuit);
    CompiledProgram c = mapper.compile(b.circuit);
    EXPECT_EQ(a.layout, c.layout);
    EXPECT_EQ(a.duration, c.duration);
}

INSTANTIATE_TEST_SUITE_P(
    Paper, GreedyAllBenchmarks,
    ::testing::Values("BV4", "BV6", "BV8", "HS2", "HS4", "HS6", "Toffoli",
                      "Fredkin", "Or", "Peres", "QFT", "Adder"));

TEST(GreedyE, HeaviestEdgeLandsOnAdjacentPair)
{
    Machine m = day0();
    Benchmark b = benchmarkByName("HS2"); // single weight-2 edge
    GreedyEMapper mapper(m);
    CompiledProgram cp = mapper.compile(b.circuit);
    EXPECT_TRUE(m.topo().adjacent(cp.layout[0], cp.layout[1]));
    EXPECT_EQ(cp.swapCount, 0);
}

TEST(GreedyE, PicksAReliableEdgeForTheSeed)
{
    // The seed edge maximizes cnot_rel * ro_rel * ro_rel over free
    // hardware edges; it must beat the machine-wide median edge.
    Machine m = day0();
    Benchmark b = benchmarkByName("HS2");
    GreedyEMapper mapper(m);
    CompiledProgram cp = mapper.compile(b.circuit);
    EdgeId chosen = m.topo().edgeBetween(cp.layout[0], cp.layout[1]);
    ASSERT_NE(chosen, kInvalidEdge);

    double chosen_score =
        std::log(m.cal().cnotReliability(chosen)) +
        std::log(m.cal().readoutReliability(cp.layout[0])) +
        std::log(m.cal().readoutReliability(cp.layout[1]));
    for (const auto &e : m.topo().edges()) {
        EdgeId id = m.topo().edgeBetween(e.a, e.b);
        double score = std::log(m.cal().cnotReliability(id)) +
                       std::log(m.cal().readoutReliability(e.a)) +
                       std::log(m.cal().readoutReliability(e.b));
        EXPECT_GE(chosen_score + 1e-12, score);
    }
}

TEST(GreedyV, SeedsOnMaxDegreeLocation)
{
    Machine m = day0();
    Benchmark b = benchmarkByName("BV4");
    GreedyVMapper mapper(m);
    CompiledProgram cp = mapper.compile(b.circuit);
    // The heaviest program qubit is the ancilla (qubit 3); it must sit
    // on an interior (degree-3) hardware qubit.
    EXPECT_EQ(m.topo().neighbors(cp.layout[3]).size(), 3u);
}

TEST(GreedyMappers, HandleIsolatedQubits)
{
    Machine m = day0();
    Circuit c("iso", 4);
    c.cnot(0, 1);
    c.h(2);
    c.h(3);
    for (int q = 0; q < 4; ++q)
        c.measure(q, q);
    GreedyVMapper gv(m);
    GreedyEMapper ge(m);
    validateLayout(gv.compile(c).layout, 4, m.numQubits());
    validateLayout(ge.compile(c).layout, 4, m.numQubits());
}

TEST(GreedyMappers, HandleDisconnectedComponents)
{
    Machine m = day0();
    Circuit c("two-comp", 6);
    c.cnot(0, 1);
    c.cnot(0, 1);
    c.cnot(2, 3);
    c.cnot(4, 5);
    for (int q = 0; q < 6; ++q)
        c.measure(q, q);
    GreedyEMapper ge(m);
    CompiledProgram cp = ge.compile(c);
    validateLayout(cp.layout, 6, m.numQubits());
    expectScheduleWellFormed(m, cp.schedule);
}

TEST(GreedyMappers, RejectOversizedPrograms)
{
    GridTopology topo(2, 2);
    CalibrationModel model(topo, 5);
    Machine m(topo, model.forDay(0));
    Benchmark b = benchmarkByName("BV6");
    GreedyVMapper gv(m);
    GreedyEMapper ge(m);
    EXPECT_THROW(gv.compile(b.circuit), FatalError);
    EXPECT_THROW(ge.compile(b.circuit), FatalError);
}

TEST(BestAttachedLocation, MinimizesWeightedPathCost)
{
    Machine m = day0();
    std::vector<bool> used(m.numQubits(), false);
    HwQubit anchor = m.topo().qubitAt(0, 3);
    used[anchor] = true;
    HwQubit got = bestAttachedLocation(m, {{anchor, 1}}, used);
    ASSERT_NE(got, kInvalidQubit);
    double got_cost = m.mostReliablePathCost(got, anchor);
    for (HwQubit h = 0; h < m.numQubits(); ++h) {
        if (used[h])
            continue;
        EXPECT_LE(got_cost, m.mostReliablePathCost(h, anchor) + 1e-12);
    }
}

TEST(BestAttachedLocation, ReturnsInvalidWhenFull)
{
    Machine m = day0();
    std::vector<bool> used(m.numQubits(), true);
    EXPECT_EQ(bestAttachedLocation(m, {}, used), kInvalidQubit);
}

} // namespace
} // namespace qc
