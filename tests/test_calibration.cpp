/**
 * @file
 * Calibration model tests: determinism, value ranges, the published
 * statistics the synthetic generator must match, and validation.
 */

#include <gtest/gtest.h>

#include "machine/calibration_model.hpp"
#include "support/logging.hpp"
#include "support/stats.hpp"

namespace qc {
namespace {

class CalibrationModelTest : public ::testing::Test
{
  protected:
    GridTopology topo_ = GridTopology::ibmq16();
    CalibrationModel model_{topo_, 20190131};
};

TEST_F(CalibrationModelTest, SameDayIsIdentical)
{
    Calibration a = model_.forDay(5);
    Calibration b = model_.forDay(5);
    EXPECT_EQ(a.t2Us, b.t2Us);
    EXPECT_EQ(a.cnotError, b.cnotError);
    EXPECT_EQ(a.readoutError, b.readoutError);
    EXPECT_EQ(a.cnotDuration, b.cnotDuration);
    EXPECT_DOUBLE_EQ(a.oneQubitError, b.oneQubitError);
}

TEST_F(CalibrationModelTest, DaysDiffer)
{
    Calibration a = model_.forDay(0);
    Calibration b = model_.forDay(1);
    EXPECT_NE(a.t2Us, b.t2Us);
    EXPECT_NE(a.cnotError, b.cnotError);
}

TEST_F(CalibrationModelTest, DurationsAreStaticAcrossDays)
{
    // CNOT durations are lithographic, not drifting (paper: durations
    // vary across qubits, up to 1.8x; coherence/error vary daily).
    EXPECT_EQ(model_.forDay(0).cnotDuration,
              model_.forDay(9).cnotDuration);
}

TEST_F(CalibrationModelTest, ValuesWithinClamps)
{
    const auto &p = model_.params();
    for (int day = 0; day < 20; ++day) {
        Calibration cal = model_.forDay(day);
        for (double t2 : cal.t2Us) {
            EXPECT_GE(t2, p.t2MinUs);
            EXPECT_LE(t2, p.t2MaxUs);
        }
        for (double e : cal.cnotError) {
            EXPECT_GE(e, p.cnotErrMin);
            EXPECT_LE(e, p.cnotErrMax);
        }
        for (double e : cal.readoutError) {
            EXPECT_GE(e, p.readoutErrMin);
            EXPECT_LE(e, p.readoutErrMax);
        }
        for (size_t i = 0; i < cal.t1Us.size(); ++i)
            EXPECT_GE(2.0 * cal.t1Us[i], cal.t2Us[i]); // T2 <= 2*T1
    }
}

TEST_F(CalibrationModelTest, MatchesPaperStatistics)
{
    // Pool 30 days of data and compare against the paper's Sec. 2
    // numbers: T2 ~= 70us mean; CNOT error ~= 0.04; readout ~= 0.07;
    // single-qubit ~= 0.002; duration spread <= 1.8x.
    std::vector<double> t2, cx, ro, oneq;
    std::vector<double> dur;
    for (int day = 0; day < 30; ++day) {
        Calibration cal = model_.forDay(day);
        t2.insert(t2.end(), cal.t2Us.begin(), cal.t2Us.end());
        cx.insert(cx.end(), cal.cnotError.begin(), cal.cnotError.end());
        ro.insert(ro.end(), cal.readoutError.begin(),
                  cal.readoutError.end());
        oneq.push_back(cal.oneQubitError);
        for (Timeslot d : cal.cnotDuration)
            dur.push_back(static_cast<double>(d));
    }
    EXPECT_NEAR(mean(t2), 70.0, 20.0);
    EXPECT_NEAR(mean(cx), 0.04, 0.02);
    EXPECT_NEAR(mean(ro), 0.07, 0.03);
    EXPECT_NEAR(mean(oneq), 0.002, 0.0015);
    // Large spatio-temporal spreads (paper: up to 9.2x for T2, 9x for
    // CNOT error, 5.9x for readout).
    EXPECT_GE(spreadRatio(t2), 3.0);
    EXPECT_GE(spreadRatio(cx), 3.0);
    EXPECT_GE(spreadRatio(ro), 3.0);
    EXPECT_LE(spreadRatio(dur), 1.9);
    EXPECT_GE(spreadRatio(dur), 1.2);
}

TEST_F(CalibrationModelTest, CoherenceSlotsConversion)
{
    Calibration cal = model_.forDay(0);
    for (int h = 0; h < topo_.numQubits(); ++h) {
        // 1 us = 12.5 slots of 80 ns.
        Timeslot expect = static_cast<Timeslot>(cal.t2Us[h] * 12.5);
        EXPECT_NEAR(static_cast<double>(cal.coherenceSlots(h)),
                    static_cast<double>(expect), 1.0);
        // Paper Sec. 7.2: the worst qubit exceeds 300 slots.
        EXPECT_GT(cal.coherenceSlots(h), 150);
    }
}

TEST_F(CalibrationModelTest, RejectsNegativeDay)
{
    EXPECT_THROW(model_.forDay(-1), FatalError);
}

TEST(Calibration, ValidationCatchesBadData)
{
    GridTopology topo(2, 2);
    CalibrationModel model(topo, 1);
    Calibration cal = model.forDay(0);
    cal.validate(topo); // sane

    Calibration bad = cal;
    bad.t2Us.pop_back();
    EXPECT_THROW(bad.validate(topo), FatalError);

    bad = cal;
    bad.readoutError[0] = 1.5;
    EXPECT_THROW(bad.validate(topo), FatalError);

    bad = cal;
    bad.cnotError[0] = -0.1;
    EXPECT_THROW(bad.validate(topo), FatalError);

    bad = cal;
    bad.cnotDuration[0] = 0;
    EXPECT_THROW(bad.validate(topo), FatalError);

    bad = cal;
    bad.t1Us[0] = 0.0;
    EXPECT_THROW(bad.validate(topo), FatalError);
}

TEST(Calibration, ReliabilityAccessors)
{
    GridTopology topo(2, 2);
    CalibrationModel model(topo, 2);
    Calibration cal = model.forDay(0);
    for (EdgeId e = 0; e < topo.numEdges(); ++e)
        EXPECT_DOUBLE_EQ(cal.cnotReliability(e), 1.0 - cal.cnotError[e]);
    for (int h = 0; h < topo.numQubits(); ++h)
        EXPECT_DOUBLE_EQ(cal.readoutReliability(h),
                         1.0 - cal.readoutError[h]);
}

TEST(CalibrationModel, SeedsProduceDifferentMachines)
{
    GridTopology topo = GridTopology::ibmq16();
    CalibrationModel a(topo, 1), b(topo, 2);
    EXPECT_NE(a.forDay(0).cnotError, b.forDay(0).cnotError);
}

} // namespace
} // namespace qc
