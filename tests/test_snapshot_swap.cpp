/**
 * @file
 * Concurrency hammer for snapshot replacement: many reader threads
 * acquire machine snapshots while a writer swaps calibration entries
 * under them. Run under ThreadSanitizer in CI — the assertions here
 * check logical invariants (never a null or mismatched snapshot);
 * TSan checks the memory model.
 */

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "daemon/daemon.hpp"
#include "machine/calibration_model.hpp"
#include "service/machine_pool.hpp"
#include "tests/test_util.hpp"
#include "workloads/benchmarks.hpp"

namespace {

using namespace qc;

constexpr int kReaders = 8;

GridTopology
topo()
{
    return GridTopology(2, 4);
}

TEST(SnapshotSwap, MachinePoolAcquireUnderConcurrentReplacement)
{
    service::MachinePool pool(4);
    CalibrationModel model(topo(), test::kSeed);
    constexpr int kDays = 6;

    std::vector<Calibration> days;
    for (int d = 0; d < kDays; ++d)
        days.push_back(model.forDay(d));

    std::atomic<bool> stop{false};
    std::atomic<int> failures{0};

    std::vector<std::thread> readers;
    for (int r = 0; r < kReaders; ++r) {
        readers.emplace_back([&, r] {
            // Each reader cycles through the calibration days from a
            // different phase so acquires constantly collide with
            // builds, hits, and evictions (capacity 4 < 6 days).
            for (int i = 0; !stop.load(std::memory_order_relaxed);
                 ++i) {
                const Calibration &cal = days[(r + i) % kDays];
                std::shared_ptr<const Machine> m =
                    pool.acquire(topo(), cal);
                if (!m ||
                    m->topo().numQubits() != topo().numQubits())
                    failures.fetch_add(1);
                // The snapshot must outlive eviction: touch it after
                // other threads have had a chance to evict its entry.
                if (m->cal().cnotError != cal.cnotError)
                    failures.fetch_add(1);
            }
        });
    }

    // Writer: churn the pool while readers hammer it.
    for (int round = 0; round < 50; ++round) {
        pool.acquire(topo(), days[round % kDays]);
        if (round % 10 == 9)
            pool.clear();
        std::this_thread::yield();
    }
    stop.store(true);
    for (std::thread &t : readers)
        t.join();

    EXPECT_EQ(failures.load(), 0);
    service::MachinePoolStats stats = pool.stats();
    EXPECT_GT(stats.hits, 0u);
    EXPECT_GT(stats.builds, 0u);
}

TEST(SnapshotSwap, DaemonEpochFlipUnderConcurrentSubmits)
{
    daemon::DaemonOptions opts;
    opts.threads = 4;
    opts.shards = 2;
    opts.warmTopK = 4;
    daemon::CompileDaemon d(topo(), CalibrationModel(
        topo(), test::kSeed).forDay(0), opts);

    CalibrationModel model(topo(), test::kSeed);
    CompilerOptions copts;
    copts.mapper = MapperKind::GreedyE;

    const Circuit circuit = benchmarkByName("BV4").circuit;
    std::atomic<bool> stop{false};
    std::atomic<int> failures{0};

    std::vector<std::thread> submitters;
    for (int r = 0; r < kReaders; ++r) {
        submitters.emplace_back([&, r] {
            const std::string tenant =
                "hammer-" + std::to_string(r);
            while (!stop.load(std::memory_order_relaxed)) {
                daemon::CompileDaemon::SubmitOutcome out = d.submit(
                    tenant, daemon::Lane::Normal, circuit, copts,
                    "swap-hammer");
                if (!out.accepted)
                    continue; // quota push-back is fine here
                daemon::JobSnapshot snap;
                if (!d.wait(out.id, snap) || !snap.result.ok ||
                    !snap.result.program)
                    failures.fetch_add(1);
            }
        });
    }

    // Roll the calibration over repeatedly while submits stream in.
    for (int day = 1; day <= 8; ++day) {
        d.reload(model.forDay(day % 3), day,
                 "hammer-day-" + std::to_string(day));
        std::this_thread::yield();
    }
    stop.store(true);
    for (std::thread &t : submitters)
        t.join();
    d.awaitIdle();

    EXPECT_EQ(failures.load(), 0);
    daemon::DaemonStats stats = d.stats();
    EXPECT_EQ(stats.epochId, 9);
    EXPECT_EQ(stats.completed, stats.submitted);
}

} // namespace
