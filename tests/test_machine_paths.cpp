/**
 * @file
 * Machine derived-table tests: one-bend paths (EC / Delta matrices),
 * the noise-unaware duration model, and Dijkstra most-reliable paths.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.hpp"

namespace qc {
namespace {

using test::day0;

class OneBendPaths : public ::testing::Test
{
  protected:
    Machine m_ = day0();
};

TEST_F(OneBendPaths, CountMatchesAlignment)
{
    const auto &topo = m_.topo();
    for (HwQubit a = 0; a < topo.numQubits(); ++a) {
        for (HwQubit b = 0; b < topo.numQubits(); ++b) {
            if (a == b)
                continue;
            GridPos pa = topo.posOf(a);
            GridPos pb = topo.posOf(b);
            bool aligned = pa.x == pb.x || pa.y == pb.y;
            EXPECT_EQ(m_.numOneBendPaths(a, b), aligned ? 1 : 2)
                << "pair " << a << "," << b;
        }
    }
}

TEST_F(OneBendPaths, PathsAreValidWalks)
{
    const auto &topo = m_.topo();
    for (HwQubit a = 0; a < topo.numQubits(); ++a) {
        for (HwQubit b = 0; b < topo.numQubits(); ++b) {
            if (a == b)
                continue;
            for (int j = 0; j < m_.numOneBendPaths(a, b); ++j) {
                const RoutePath &r = m_.oneBendPath(a, b, j);
                EXPECT_EQ(r.nodes.front(), a);
                EXPECT_EQ(r.nodes.back(), b);
                EXPECT_EQ(static_cast<int>(r.edges.size()),
                          topo.distance(a, b));
                for (size_t k = 0; k + 1 < r.nodes.size(); ++k)
                    EXPECT_TRUE(
                        topo.adjacent(r.nodes[k], r.nodes[k + 1]));
                // The junction lies on the path.
                EXPECT_NE(std::find(r.nodes.begin(), r.nodes.end(),
                                    r.junction),
                          r.nodes.end());
                EXPECT_EQ(r.swapCount(), topo.distance(a, b) - 1);
            }
        }
    }
}

TEST_F(OneBendPaths, ReliabilityMatchesFootnoteFormula)
{
    // EC = prod(edge_rel^3 over swap hops) * last_edge_rel.
    const auto &topo = m_.topo();
    const auto &cal = m_.cal();
    for (HwQubit a = 0; a < topo.numQubits(); ++a) {
        for (HwQubit b = 0; b < topo.numQubits(); ++b) {
            if (a == b)
                continue;
            const RoutePath &r = m_.oneBendPath(a, b, 0);
            double rel = 1.0;
            for (size_t k = 0; k + 1 < r.edges.size(); ++k)
                rel *= std::pow(cal.cnotReliability(r.edges[k]), 3);
            rel *= cal.cnotReliability(r.edges.back());
            EXPECT_NEAR(r.reliability, rel, 1e-12);
        }
    }
}

TEST_F(OneBendPaths, DurationMatchesSection42Formula)
{
    // Delta = 2 * sum(3 * dur over swap hops) + last_edge_dur.
    const auto &cal = m_.cal();
    for (HwQubit a = 0; a < m_.numQubits(); ++a) {
        for (HwQubit b = 0; b < m_.numQubits(); ++b) {
            if (a == b)
                continue;
            const RoutePath &r = m_.oneBendPath(a, b, 0);
            Timeslot d = 0;
            for (size_t k = 0; k + 1 < r.edges.size(); ++k)
                d += 2 * 3 * cal.cnotDuration[r.edges[k]];
            d += cal.cnotDuration[r.edges.back()];
            EXPECT_EQ(r.duration, d);
        }
    }
}

TEST_F(OneBendPaths, BestSelectorsAreOptimal)
{
    for (HwQubit a = 0; a < m_.numQubits(); ++a) {
        for (HwQubit b = 0; b < m_.numQubits(); ++b) {
            if (a == b)
                continue;
            double best_rel = m_.bestPathReliability(a, b);
            Timeslot best_dur = m_.bestPathDuration(a, b);
            for (int j = 0; j < m_.numOneBendPaths(a, b); ++j) {
                EXPECT_GE(best_rel + 1e-15,
                          m_.oneBendPath(a, b, j).reliability);
                EXPECT_LE(best_dur, m_.oneBendPath(a, b, j).duration);
            }
        }
    }
}

TEST_F(OneBendPaths, AdjacentPairIsSingleCnot)
{
    const auto &topo = m_.topo();
    const auto &cal = m_.cal();
    for (const auto &e : topo.edges()) {
        const RoutePath &r = m_.bestReliabilityPath(e.a, e.b);
        EXPECT_EQ(r.edges.size(), 1u);
        EXPECT_EQ(r.swapCount(), 0);
        EdgeId id = topo.edgeBetween(e.a, e.b);
        EXPECT_NEAR(r.reliability, cal.cnotReliability(id), 1e-12);
        EXPECT_EQ(r.duration, cal.cnotDuration[id]);
    }
}

TEST_F(OneBendPaths, UniformRouteDuration)
{
    Timeslot tau = m_.uniformCnotDuration();
    EXPECT_EQ(m_.uniformRouteDuration(1), tau);
    EXPECT_EQ(m_.uniformRouteDuration(2), 2 * 3 * tau + tau);
    EXPECT_EQ(m_.uniformRouteDuration(4), 2 * 3 * 3 * tau + tau);
}

TEST_F(OneBendPaths, StaticCoherenceIs1000Slots)
{
    EXPECT_EQ(Machine::kStaticCoherenceSlots, 1000);
}

class DijkstraPaths : public ::testing::Test
{
  protected:
    Machine m_ = day0();
};

TEST_F(DijkstraPaths, CostIsSumOfNegLogs)
{
    const auto &topo = m_.topo();
    const auto &cal = m_.cal();
    for (HwQubit a = 0; a < topo.numQubits(); ++a) {
        for (HwQubit b = 0; b < topo.numQubits(); ++b) {
            if (a == b) {
                EXPECT_DOUBLE_EQ(m_.mostReliablePathCost(a, b), 0.0);
                continue;
            }
            auto path = m_.mostReliablePath(a, b);
            double cost = 0.0;
            for (size_t k = 0; k + 1 < path.size(); ++k) {
                EdgeId e = topo.edgeBetween(path[k], path[k + 1]);
                ASSERT_NE(e, kInvalidEdge);
                cost += -std::log(cal.cnotReliability(e));
            }
            EXPECT_NEAR(m_.mostReliablePathCost(a, b), cost, 1e-9);
            EXPECT_NEAR(m_.mostReliablePathReliability(a, b),
                        std::exp(-cost), 1e-9);
        }
    }
}

TEST_F(DijkstraPaths, NeverWorseThanOneBendPaths)
{
    // The Dijkstra path maximizes the product of edge reliabilities;
    // any one-bend path is a candidate, so it cannot beat Dijkstra.
    for (HwQubit a = 0; a < m_.numQubits(); ++a) {
        for (HwQubit b = 0; b < m_.numQubits(); ++b) {
            if (a == b)
                continue;
            for (int j = 0; j < m_.numOneBendPaths(a, b); ++j) {
                const RoutePath &obp = m_.oneBendPath(a, b, j);
                double obp_product = 1.0;
                for (EdgeId e : obp.edges)
                    obp_product *= m_.cal().cnotReliability(e);
                EXPECT_GE(m_.mostReliablePathReliability(a, b) + 1e-12,
                          obp_product);
            }
        }
    }
}

TEST_F(DijkstraPaths, RouteHasSwapAccounting)
{
    // dijkstraRoute applies the same SWAP-chain cost model as
    // one-bend routes: rel = prod(edge^3 over hops) * last edge.
    // (The most reliable path may detour around a bad direct edge,
    // so the hop count is >= the grid distance.)
    const auto &topo = m_.topo();
    const auto &cal = m_.cal();
    for (HwQubit a = 0; a < m_.numQubits(); ++a) {
        for (HwQubit b = 0; b < m_.numQubits(); ++b) {
            if (a == b)
                continue;
            RoutePath r = m_.dijkstraRoute(a, b);
            EXPECT_GE(static_cast<int>(r.edges.size()),
                      topo.distance(a, b));
            double rel = 1.0;
            for (size_t k = 0; k + 1 < r.edges.size(); ++k)
                rel *= std::pow(cal.cnotReliability(r.edges[k]), 3);
            rel *= cal.cnotReliability(r.edges.back());
            EXPECT_NEAR(r.reliability, rel, 1e-12);
        }
    }
}

TEST_F(DijkstraPaths, ReadoutOrdering)
{
    auto order = m_.qubitsByReadoutReliability();
    ASSERT_EQ(static_cast<int>(order.size()), m_.numQubits());
    for (size_t i = 0; i + 1 < order.size(); ++i)
        EXPECT_LE(m_.cal().readoutError[order[i]],
                  m_.cal().readoutError[order[i + 1]]);
}

} // namespace
} // namespace qc
