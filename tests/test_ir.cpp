/**
 * @file
 * IR tests: gates, circuits, the dependency DAG and the program
 * interaction graph, including property sweeps over all benchmarks.
 */

#include <gtest/gtest.h>

#include "ir/circuit.hpp"
#include "ir/dag.hpp"
#include "ir/program_graph.hpp"
#include "support/logging.hpp"
#include "workloads/benchmarks.hpp"

namespace qc {
namespace {

TEST(Gate, ArityAndNames)
{
    EXPECT_EQ(opArity(Op::H), 1);
    EXPECT_EQ(opArity(Op::CNOT), 2);
    EXPECT_EQ(opArity(Op::Swap), 2);
    EXPECT_TRUE(opIsTwoQubit(Op::CNOT));
    EXPECT_FALSE(opIsTwoQubit(Op::Measure));
    EXPECT_STREQ(opName(Op::CNOT), "cx");
    EXPECT_STREQ(opName(Op::Sdg), "sdg");

    Op op;
    EXPECT_TRUE(opFromName("cx", op));
    EXPECT_EQ(op, Op::CNOT);
    EXPECT_TRUE(opFromName("tdg", op));
    EXPECT_EQ(op, Op::Tdg);
    EXPECT_FALSE(opFromName("notagate", op));
}

TEST(Gate, TouchesAndToString)
{
    Gate cx{Op::CNOT, 1, 3, -1};
    EXPECT_TRUE(cx.touches(1));
    EXPECT_TRUE(cx.touches(3));
    EXPECT_FALSE(cx.touches(2));
    EXPECT_EQ(cx.toString(), "cx q1, q3");

    Gate m{Op::Measure, 2, kInvalidQubit, 5};
    EXPECT_EQ(m.toString(), "measure q2 -> c5");
}

TEST(Circuit, BuilderAndCounts)
{
    Circuit c("test", 3);
    c.h(0);
    c.cnot(0, 1);
    c.swap(1, 2);
    c.measure(0, 0);
    EXPECT_EQ(c.size(), 4u);
    EXPECT_EQ(c.cnotCount(), 4);     // 1 CNOT + SWAP(=3)
    EXPECT_EQ(c.gateCount(), 3);     // measure excluded
    EXPECT_EQ(c.measureCount(), 1);
    EXPECT_EQ(c.twoQubitCount(), 2);
    EXPECT_TRUE(c.usesQubit(2));
    EXPECT_EQ(c.measuredQubits(), std::vector<int>{0});
}

TEST(Circuit, ValidatesOperands)
{
    Circuit c("test", 2);
    EXPECT_DEATH(c.h(5), "out of range");
    EXPECT_DEATH(c.cnot(0, 0), "identical operands");
    EXPECT_DEATH(c.measure(0, 7), "out of range");
}

TEST(Circuit, ToffoliDecomposition)
{
    Circuit c("toff", 3);
    c.toffoli(0, 1, 2);
    EXPECT_EQ(c.cnotCount(), 6);
    EXPECT_EQ(c.gateCount(), 15);
}

TEST(Circuit, CzDecomposition)
{
    Circuit c("cz", 2);
    c.cz(0, 1);
    EXPECT_EQ(c.size(), 3u);
    EXPECT_EQ(c.cnotCount(), 1);
}

TEST(Dag, Bv4Dependencies)
{
    Benchmark bv = makeBernsteinVazirani(4);
    DependencyDag dag(bv.circuit);
    // All three CNOTs share the ancilla: they are chained.
    std::vector<int> cnots;
    for (size_t i = 0; i < bv.circuit.size(); ++i)
        if (bv.circuit.gate(i).op == Op::CNOT)
            cnots.push_back(static_cast<int>(i));
    ASSERT_EQ(cnots.size(), 3u);
    EXPECT_TRUE(dag.dependsOn(cnots[1], cnots[0]));
    EXPECT_TRUE(dag.dependsOn(cnots[2], cnots[0]));
    EXPECT_FALSE(dag.dependsOn(cnots[0], cnots[1]));
}

TEST(Dag, CriticalPathUnitDurations)
{
    Circuit c("chain", 2);
    c.h(0);
    c.cnot(0, 1);
    c.h(1);
    DependencyDag dag(c);
    std::vector<Timeslot> unit(c.size(), 1);
    EXPECT_EQ(dag.criticalPath(unit), 3);

    Circuit par("parallel", 2);
    par.h(0);
    par.h(1);
    DependencyDag dag2(par);
    std::vector<Timeslot> unit2(par.size(), 1);
    EXPECT_EQ(dag2.criticalPath(unit2), 1);
}

TEST(Dag, DepthsMonotone)
{
    Circuit c("d", 2);
    c.h(0);
    c.cnot(0, 1);
    c.h(1);
    DependencyDag dag(c);
    auto depths = dag.depths();
    EXPECT_EQ(depths, (std::vector<int>{1, 2, 3}));
}

class DagAllBenchmarks : public ::testing::TestWithParam<std::string>
{
};

TEST_P(DagAllBenchmarks, ProgramOrderIsTopological)
{
    Benchmark b = benchmarkByName(GetParam());
    DependencyDag dag(b.circuit);
    for (size_t i = 0; i < dag.numGates(); ++i)
        for (int p : dag.preds(static_cast<int>(i)))
            EXPECT_LT(p, static_cast<int>(i));
    EXPECT_FALSE(dag.roots().empty());
    EXPECT_FALSE(dag.sinks().empty());
}

TEST_P(DagAllBenchmarks, PredsAndSuccsAreInverse)
{
    Benchmark b = benchmarkByName(GetParam());
    DependencyDag dag(b.circuit);
    for (size_t i = 0; i < dag.numGates(); ++i) {
        for (int p : dag.preds(static_cast<int>(i))) {
            const auto &ss = dag.succs(p);
            EXPECT_NE(std::find(ss.begin(), ss.end(),
                                static_cast<int>(i)),
                      ss.end());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Paper, DagAllBenchmarks,
    ::testing::Values("BV4", "BV6", "BV8", "HS2", "HS4", "HS6", "Toffoli",
                      "Fredkin", "Or", "Peres", "QFT", "Adder"));

TEST(ProgramGraph, Bv4StarShape)
{
    Benchmark bv = makeBernsteinVazirani(4);
    ProgramGraph pg(bv.circuit);
    EXPECT_EQ(pg.edges().size(), 3u);
    EXPECT_EQ(pg.degree(3), 3); // ancilla in all CNOTs
    EXPECT_EQ(pg.degree(0), 1);
    EXPECT_EQ(pg.edgeWeight(0, 3), 1);
    EXPECT_EQ(pg.edgeWeight(3, 0), 1); // symmetric lookup
    EXPECT_EQ(pg.edgeWeight(0, 1), 0);
    EXPECT_EQ(pg.totalCnots(), 3);
    EXPECT_EQ(pg.readoutCount(0), 1);
    EXPECT_EQ(pg.readoutCount(3), 0); // ancilla unmeasured
    EXPECT_EQ(pg.sortedQubitsByDegree().front(), 3);
}

TEST(ProgramGraph, WeightsAccumulate)
{
    Circuit c("w", 3);
    c.cnot(0, 1);
    c.cnot(1, 0);
    c.cnot(1, 2);
    ProgramGraph pg(c);
    EXPECT_EQ(pg.edgeWeight(0, 1), 2);
    EXPECT_EQ(pg.edgeWeight(1, 2), 1);
    auto edges = pg.sortedEdgesByWeight();
    EXPECT_EQ(edges.front().weight, 2);
    auto nbrs = pg.neighbors(1);
    EXPECT_EQ(nbrs.size(), 2u);
}

} // namespace
} // namespace qc
