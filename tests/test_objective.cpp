/**
 * @file
 * Reliability-objective arithmetic tests: scaled logs, Eq. 12
 * weighting and the ordered CNOT weight decomposition.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "solver/objective.hpp"
#include "test_util.hpp"

namespace qc {
namespace {

using test::day0;

TEST(ScaledLog, Values)
{
    EXPECT_EQ(scaledLog(1.0), 0);
    EXPECT_EQ(scaledLog(0.5),
              static_cast<std::int64_t>(
                  std::llround(std::log(0.5) * kLogScale)));
    EXPECT_LT(scaledLog(0.9), 0);
    EXPECT_LT(scaledLog(0.5), scaledLog(0.9));
    EXPECT_DEATH(scaledLog(0.0), "reliability");
    EXPECT_DEATH(scaledLog(1.5), "reliability");
}

TEST(ReliabilityBreakdown, WeightedEq12)
{
    ReliabilityBreakdown rb;
    rb.readoutLog = -0.2;
    rb.cnotLog = -0.6;
    EXPECT_NEAR(rb.weighted(1.0), -0.2, 1e-12);
    EXPECT_NEAR(rb.weighted(0.0), -0.6, 1e-12);
    EXPECT_NEAR(rb.weighted(0.5), -0.4, 1e-12);
    EXPECT_NEAR(rb.successEstimate(), std::exp(-0.8), 1e-12);
}

TEST(EvaluateReliability, AdjacentPairManualCheck)
{
    Machine m = day0();
    Circuit c("pair", 2);
    c.cnot(0, 1);
    c.measure(0, 0);
    c.measure(1, 1);
    std::vector<HwQubit> layout{0, 1};
    auto rb = evaluateReliability(c, layout, m);

    EdgeId e = m.topo().edgeBetween(0, 1);
    double expect_cnot = std::log(m.cal().cnotReliability(e));
    double expect_ro = std::log(m.cal().readoutReliability(0)) +
                       std::log(m.cal().readoutReliability(1));
    EXPECT_NEAR(rb.cnotLog, expect_cnot, 1e-12);
    EXPECT_NEAR(rb.readoutLog, expect_ro, 1e-12);
}

TEST(EvaluateReliability, UsesBestJunctionByDefault)
{
    Machine m = day0();
    Circuit c("diag", 2);
    c.cnot(0, 1);
    // Map to a diagonal pair: two distinct one-bend routes.
    std::vector<HwQubit> layout{m.topo().qubitAt(0, 0),
                                m.topo().qubitAt(1, 2)};
    auto rb = evaluateReliability(c, layout, m);
    EXPECT_NEAR(rb.cnotLog,
                std::log(m.bestPathReliability(layout[0], layout[1])),
                1e-12);

    // Pinning the worse junction yields a lower score.
    int worse = m.oneBendPath(layout[0], layout[1], 0).reliability <
                        m.oneBendPath(layout[0], layout[1], 1)
                            .reliability
                    ? 0
                    : 1;
    std::vector<int> junctions{worse};
    auto rb2 = evaluateReliability(c, layout, m, &junctions);
    EXPECT_LE(rb2.cnotLog, rb.cnotLog + 1e-12);
}

TEST(OrderedCnotWeights, CountsDirections)
{
    Circuit c("w", 3);
    c.cnot(0, 1);
    c.cnot(0, 1);
    c.cnot(1, 0);
    c.cnot(2, 1);
    c.measure(1, 1);
    c.measure(1, 1); // measured twice
    OrderedCnotWeights w(c);
    EXPECT_EQ(w.weight(0, 1), 2);
    EXPECT_EQ(w.weight(1, 0), 1);
    EXPECT_EQ(w.weight(2, 1), 1);
    EXPECT_EQ(w.weight(1, 2), 0);
    EXPECT_EQ(w.readouts(1), 2);
    EXPECT_EQ(w.readouts(0), 0);
    EXPECT_EQ(w.entries().size(), 3u);
}

TEST(EvaluateReliability, HigherWeightOnReadoutFavorsReadout)
{
    // Sanity on Eq. 12 semantics: w = 1 scores only readout terms.
    Machine m = day0();
    Circuit c("pair", 2);
    c.cnot(0, 1);
    c.measure(0, 0);
    std::vector<HwQubit> layout{0, 1};
    auto rb = evaluateReliability(c, layout, m);
    EXPECT_NEAR(rb.weighted(1.0), rb.readoutLog, 1e-12);
    EXPECT_NEAR(rb.weighted(0.0), rb.cnotLog, 1e-12);
}

} // namespace
} // namespace qc
