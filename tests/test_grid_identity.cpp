/**
 * @file
 * Grid-vs-refactor equivalence anchor for the topology abstraction.
 *
 * The goldens below were captured from the last pre-refactor build
 * (hard-coded grid machinery: Rect-based regions, per-cell ledger
 * buckets, coordinate SMT encoding) on the canonical seed-20190131
 * IBMQ16 day-0 machine: makespan, swap count, and an FNV-1a hash of
 * the full timed op stream for the Table 2 set across all seven
 * bundles. The refactored stack must reproduce every entry exactly —
 * any divergence means the qubit-footprint generalization changed
 * behavior on grids, which is the one thing it must never do.
 *
 * SMT entries are only comparable when the solve proves optimality
 * (a wall-clock-interrupted Z3 search is not deterministic); all 36
 * SMT goldens were captured optimal, and the floor below keeps the
 * skip path from silently swallowing the test if that degrades.
 */

#include <gtest/gtest.h>

#include <map>

#include "support/fingerprint.hpp"
#include "test_util.hpp"

namespace qc {
namespace {

using test::env;

std::uint64_t
opStreamHash(const Schedule &s)
{
    Fingerprint fp;
    fp.mix(s.numHwQubits).mix(static_cast<std::int64_t>(s.makespan));
    fp.mix(static_cast<std::uint64_t>(s.ops.size()));
    for (const auto &op : s.ops) {
        fp.mix(static_cast<int>(op.gate.op))
            .mix(op.gate.q0)
            .mix(op.gate.q1)
            .mix(op.gate.cbit)
            .mix(static_cast<std::int64_t>(op.start))
            .mix(static_cast<std::int64_t>(op.duration))
            .mix(op.progGate)
            .mix(op.isRouteSwap);
    }
    return fp.value();
}

struct Golden
{
    const char *mapper;
    const char *bench;
    Timeslot makespan;
    int swaps;
    std::uint64_t opsHash;
};

// Captured pre-refactor (seed 20190131, day 0, smtTimeoutMs 30000).
const Golden kGoldens[] = {
    {"Qiskit", "BV4", 183, 6, 0x8a583ee197c287b3ull},
    {"Qiskit", "BV6", 219, 6, 0x909f552f2d69ff58ull},
    {"Qiskit", "BV8", 225, 6, 0x612ea8e485ab9c2bull},
    {"Qiskit", "HS2", 35, 0, 0xeff3dcd1152523f3ull},
    {"Qiskit", "HS4", 35, 0, 0x4f0b414f5a1fd086ull},
    {"Qiskit", "HS6", 35, 0, 0x90bf0f0ef6bcfb93ull},
    {"Qiskit", "Toffoli", 161, 4, 0x90c3eaa88aafa434ull},
    {"Qiskit", "Fredkin", 178, 4, 0x5771015c7095d40cull},
    {"Qiskit", "Or", 161, 4, 0x5370ec70643c6043ull},
    {"Qiskit", "Peres", 153, 4, 0xfcbdf162e0b66e84ull},
    {"Qiskit", "QFT", 59, 0, 0x33abbc93d4cf7916ull},
    {"Qiskit", "Adder", 412, 10, 0x659afc7f4624e639ull},
    {"T-SMT", "BV4", 45, 0, 0xf67ed2bdc77cfa7cull},
    {"T-SMT", "BV6", 45, 0, 0xabec5df2094f97caull},
    {"T-SMT", "BV8", 44, 0, 0x60560c29ffe7d329ull},
    {"T-SMT", "HS2", 35, 0, 0x87f9d390da932473ull},
    {"T-SMT", "HS4", 41, 0, 0xb31a454b8c389734ull},
    {"T-SMT", "HS6", 41, 0, 0x38509c7f7bf29f8dull},
    {"T-SMT", "Toffoli", 197, 4, 0x6fa6953ff8271085ull},
    {"T-SMT", "Fredkin", 194, 4, 0x5cff489fff340875ull},
    {"T-SMT", "Or", 229, 4, 0x1b50dd827497a619ull},
    {"T-SMT", "Peres", 121, 2, 0x7eb19b9153bd85d4ull},
    {"T-SMT", "QFT", 79, 0, 0x7025b5c20321aeeeull},
    {"T-SMT", "Adder", 197, 0, 0xc7ab4cf6b88c99b2ull},
    {"T-SMT*", "BV4", 41, 0, 0x9b109c9a89802c2aull},
    {"T-SMT*", "BV6", 41, 0, 0xe83ef5b5d842d44ull},
    {"T-SMT*", "BV8", 41, 0, 0xc3fad7b06ae2146cull},
    {"T-SMT*", "HS2", 33, 0, 0x63271a1fd192bae5ull},
    {"T-SMT*", "HS4", 35, 0, 0xd0a6fdd5bdab2e96ull},
    {"T-SMT*", "HS6", 35, 0, 0x36fb276ffdde8633ull},
    {"T-SMT*", "Toffoli", 160, 4, 0x2ab5e39c20652f3eull},
    {"T-SMT*", "Fredkin", 164, 4, 0x24ffbd1382a4e40eull},
    {"T-SMT*", "Or", 147, 4, 0x406b977c8a00c4caull},
    {"T-SMT*", "Peres", 99, 2, 0x8fb120cdc599b6e9ull},
    {"T-SMT*", "QFT", 54, 0, 0x53d7a2766ed8cdccull},
    {"T-SMT*", "Adder", 168, 0, 0x5b4294483d9deaa7ull},
    {"R-SMT*", "BV4", 108, 2, 0x6196e4803eddb1b1ull},
    {"R-SMT*", "BV6", 108, 2, 0xc5a1024d2c96e2a8ull},
    {"R-SMT*", "BV8", 96, 2, 0x9cd64ab13318eeaull},
    {"R-SMT*", "HS2", 39, 0, 0xf9e46ebc2b98833bull},
    {"R-SMT*", "HS4", 39, 0, 0x7bd66607f719a52eull},
    {"R-SMT*", "HS6", 43, 0, 0xebbe78edd7d6a46full},
    {"R-SMT*", "Toffoli", 189, 4, 0xe4c8d4f96981663dull},
    {"R-SMT*", "Fredkin", 208, 4, 0xde39af811e3860b2ull},
    {"R-SMT*", "Or", 189, 4, 0x1f777df7b1a11669ull},
    {"R-SMT*", "Peres", 123, 2, 0x40accbb7775f802ull},
    {"R-SMT*", "QFT", 69, 0, 0xed31c56802909826ull},
    {"R-SMT*", "Adder", 470, 10, 0xbda8a3caff29bb99ull},
    {"GreedyV*", "BV4", 96, 2, 0xf7f04ca2fb2bba1ull},
    {"GreedyV*", "BV6", 96, 2, 0x80f210f5ddb7ed18ull},
    {"GreedyV*", "BV8", 96, 2, 0xe21c6fcf5f7bbe3aull},
    {"GreedyV*", "HS2", 39, 0, 0xf9e46ebc2b98833bull},
    {"GreedyV*", "HS4", 39, 0, 0xb8a726349e7462a2ull},
    {"GreedyV*", "HS6", 45, 0, 0xee3f4f0945bd199ull},
    {"GreedyV*", "Toffoli", 189, 4, 0xe4c8d4f96981663dull},
    {"GreedyV*", "Fredkin", 192, 4, 0xba69509d2c396ca5ull},
    {"GreedyV*", "Or", 189, 4, 0x1f777df7b1a11669ull},
    {"GreedyV*", "Peres", 161, 4, 0x4a9dddfcb65dc620ull},
    {"GreedyV*", "QFT", 69, 0, 0xed31c56802909826ull},
    {"GreedyV*", "Adder", 441, 10, 0xb5e8419e95104187ull},
    {"GreedyE*", "BV4", 109, 2, 0x1453786a0af77340ull},
    {"GreedyE*", "BV6", 109, 2, 0x8d5c0ae1a446d0a2ull},
    {"GreedyE*", "BV8", 109, 2, 0xa1acc76a6a6d50b8ull},
    {"GreedyE*", "HS2", 39, 0, 0x8cd9554df10de8bull},
    {"GreedyE*", "HS4", 39, 0, 0x7bd66607f719a52eull},
    {"GreedyE*", "HS6", 43, 0, 0xebbe78edd7d6a46full},
    {"GreedyE*", "Toffoli", 197, 4, 0x1730091502f7d2feull},
    {"GreedyE*", "Fredkin", 218, 4, 0x9bb13a223dca4b7full},
    {"GreedyE*", "Or", 198, 4, 0xeae045739c345c60ull},
    {"GreedyE*", "Peres", 187, 4, 0xa0f6a1107ff936aull},
    {"GreedyE*", "QFT", 69, 0, 0x5aeadc05e69f21d6ull},
    {"GreedyE*", "Adder", 437, 10, 0x41ab87b58a832f46ull},
    {"GreedyE*+track", "BV4", 79, 1, 0xc05e83039e288e04ull},
    {"GreedyE*+track", "BV6", 79, 1, 0xaf60767021f6d7caull},
    {"GreedyE*+track", "BV8", 79, 1, 0x221109bd234432c4ull},
    {"GreedyE*+track", "HS2", 39, 0, 0x8cd9554df10de8bull},
    {"GreedyE*+track", "HS4", 39, 0, 0xa159e83ce08022deull},
    {"GreedyE*+track", "HS6", 43, 0, 0x9af9766f98db076full},
    {"GreedyE*+track", "Toffoli", 198, 4, 0xfe3f0c8e755c207eull},
    {"GreedyE*+track", "Fredkin", 219, 4, 0x40935e34955d5daeull},
    {"GreedyE*+track", "Or", 199, 4, 0xc94c71c69c84258ull},
    {"GreedyE*+track", "Peres", 188, 4, 0xf756c0d8ae759791ull},
    {"GreedyE*+track", "QFT", 69, 0, 0xd3b906b0a79dd9d6ull},
    {"GreedyE*+track", "Adder", 245, 2, 0x2e031822ba5a71a4ull},
};

bool
isSmtMapper(const std::string &name)
{
    return name.find("SMT") != std::string::npos;
}

TEST(GridIdentity, Table2AllBundlesMatchPreRefactorGoldens)
{
    auto machine =
        std::make_shared<const Machine>(env().machineForDay(0));

    std::map<std::string, Pipeline> pipelines;
    for (MapperKind kind : kAllMapperKinds) {
        CompilerOptions opts;
        opts.mapper = kind;
        opts.smtTimeoutMs = 30'000;
        pipelines.emplace(mapperKindName(kind),
                          standardPipeline(machine, opts));
    }

    int strict = 0, skipped = 0;
    for (const Golden &g : kGoldens) {
        SCOPED_TRACE(std::string(g.mapper) + "/" + g.bench);
        PipelineResult r = pipelines.at(g.mapper).run(
            benchmarkByName(g.bench).circuit);
        ASSERT_TRUE(r.ok()) << r.status.message;
        if (isSmtMapper(g.mapper) && !r.program.solverOptimal) {
            ++skipped; // interrupted solve: not comparable
            continue;
        }
        EXPECT_EQ(r.program.duration, g.makespan);
        EXPECT_EQ(r.program.swapCount, g.swaps);
        EXPECT_EQ(opStreamHash(r.program.schedule), g.opsHash);
        ++strict;
    }
    // All 84 goldens were captured optimal; allow a handful of
    // timeout skips on slow runners but never a silent wash-out.
    EXPECT_GE(strict, static_cast<int>(std::size(kGoldens)) - 6)
        << "too many SMT solves timed out to anchor identity";
}

} // namespace
} // namespace qc
