/**
 * @file
 * SABRE placement-refinement tests: determinism (repeated runs and
 * 8-thread service batches), the improve-or-tie guarantee against the
 * GreedyE*+track seed on the Table 2 set, non-grid smoke (heavy-hex,
 * ring, edge-list), composition with the standard list-scheduling
 * passes, and pipeline-vs-legacy equivalence.
 *
 * The refinement keeps the best layout by tracking-router predicted
 * success and the seed layout is itself a candidate, so Sabre can
 * never predict worse than GreedyE*+track — the bench_ablation CI
 * gate holds those margins; here we assert the invariant itself.
 */

#include <gtest/gtest.h>

#include "core/passes.hpp"
#include "mappers/greedy_mapper.hpp"
#include "mappers/sabre_mapper.hpp"
#include "service/compile_service.hpp"
#include "service/fingerprints.hpp"
#include "test_util.hpp"

namespace qc {
namespace {

using test::env;
using test::kSeed;

std::shared_ptr<const Machine>
machineFor(const Topology &topo)
{
    CalibrationModel model(topo, kSeed);
    return std::make_shared<const Machine>(topo, model.forDay(0));
}

CompilerOptions
sabreOptions()
{
    CompilerOptions opts;
    opts.mapper = MapperKind::Sabre;
    return opts;
}

TEST(SabrePlacement, DeterministicAcrossRepeatedRuns)
{
    auto machine =
        std::make_shared<const Machine>(env().machineForDay(0));
    Pipeline pipe = standardPipeline(machine, sabreOptions());
    for (const char *name : {"Toffoli", "Adder", "BV8"}) {
        SCOPED_TRACE(name);
        Benchmark b = benchmarkByName(name);
        PipelineResult first = pipe.run(b.circuit);
        ASSERT_TRUE(first.ok()) << first.status.message;
        for (int rep = 0; rep < 3; ++rep) {
            PipelineResult again = pipe.run(b.circuit);
            ASSERT_TRUE(again.ok());
            EXPECT_EQ(first.program.layout, again.program.layout);
            EXPECT_EQ(first.program.predictedSuccess,
                      again.program.predictedSuccess);
            EXPECT_TRUE(first.program.schedule.identicalTo(
                again.program.schedule));
        }
    }
}

TEST(SabrePlacement, DeterministicAcrossEightServiceThreads)
{
    // The acceptance bar from the issue: identical layouts whether
    // the jobs run serially or across an 8-worker service (caching
    // off, so every job is a fresh compile).
    CalibrationModel model(GridTopology::ibmq16(), kSeed);
    std::vector<std::pair<std::string, Circuit>> programs;
    for (const char *name : {"BV8", "Toffoli", "Fredkin", "Adder"})
        programs.emplace_back(name, benchmarkByName(name).circuit);
    auto batch = [&] {
        return service::CompileService::dailyBatch(model, programs, 0,
                                                   2, sabreOptions());
    };

    service::ServiceOptions serial_opts;
    serial_opts.threads = 1;
    serial_opts.cacheCapacity = 0;
    service::CompileService serial(serial_opts);
    service::ServiceOptions par_opts;
    par_opts.threads = 8;
    par_opts.cacheCapacity = 0;
    service::CompileService parallel(par_opts);

    service::BatchResult s = serial.compileBatch(batch());
    service::BatchResult p = parallel.compileBatch(batch());
    ASSERT_EQ(s.report.failed, 0);
    ASSERT_EQ(p.report.failed, 0);
    ASSERT_EQ(s.results.size(), p.results.size());
    for (size_t i = 0; i < s.results.size(); ++i) {
        EXPECT_EQ(s.results[i].program->layout,
                  p.results[i].program->layout)
            << "job " << s.results[i].tag;
        EXPECT_EQ(s.results[i].program->predictedSuccess,
                  p.results[i].program->predictedSuccess);
    }
}

TEST(SabrePlacement, ImprovesOrTiesGreedyTrackOnTable2)
{
    auto machine =
        std::make_shared<const Machine>(env().machineForDay(0));
    CompilerOptions greedy;
    greedy.mapper = MapperKind::GreedyETrack;
    Pipeline greedy_pipe = standardPipeline(machine, greedy);
    Pipeline sabre_pipe = standardPipeline(machine, sabreOptions());

    int improved = 0;
    for (const Benchmark &b : paperBenchmarks()) {
        SCOPED_TRACE(b.name);
        PipelineResult g = greedy_pipe.run(b.circuit);
        PipelineResult s = sabre_pipe.run(b.circuit);
        ASSERT_TRUE(g.ok());
        ASSERT_TRUE(s.ok());
        EXPECT_GE(s.program.predictedSuccess,
                  g.program.predictedSuccess - 1e-12);
        if (s.program.predictedSuccess >
            g.program.predictedSuccess + 1e-12)
            ++improved;
    }
    // The refinement must actually move the needle somewhere on the
    // set, not just echo its seed everywhere.
    EXPECT_GE(improved, 1);
}

class SabreNonGrid : public ::testing::TestWithParam<const char *>
{
};

TEST_P(SabreNonGrid, CompilesAndComputesCorrectAnswer)
{
    Topology topo = topologyFromSpec(GetParam());
    auto machine = machineFor(topo);
    Pipeline pipe = standardPipeline(machine, sabreOptions());
    for (const char *name : {"Toffoli", "BV6"}) {
        SCOPED_TRACE(name);
        Benchmark b = benchmarkByName(name);
        PipelineResult r = pipe.run(b.circuit);
        ASSERT_TRUE(r.ok()) << r.status.message;
        validateLayout(r.program.layout, b.circuit.numQubits(),
                       machine->numQubits());
        test::expectScheduleWellFormed(*machine, r.program.schedule);
        EXPECT_GT(r.program.predictedSuccess, 0.0);

        auto ideal = runNoisy(*machine, r.program.schedule,
                              b.circuit.numClbits(), b.expected,
                              test::noiselessOptions());
        EXPECT_DOUBLE_EQ(ideal.successRate, 1.0)
            << name << " mis-compiled on " << topo.name();
    }
}

INSTANTIATE_TEST_SUITE_P(Topologies, SabreNonGrid,
                         ::testing::Values("heavyhex:3", "ring:16",
                                           "linear:9"),
                         [](const ::testing::TestParamInfo<const char *>
                                &info) {
                             std::string n = info.param;
                             for (char &c : n)
                                 if (c == ':')
                                     c = '_';
                             return n;
                         });

TEST(SabrePlacement, ComposesWithListSchedulingPasses)
{
    // First-class PlacementPass: the refined layout drives the
    // standard precomputed-route scheduler just like any greedy
    // placement (a bundle MapperKind never shipped).
    auto machine =
        std::make_shared<const Machine>(env().machineForDay(0));
    Benchmark b = benchmarkByName("Toffoli");

    Pipeline pipe = Pipeline::forMachine(machine)
                        .placement(passes::sabrePlacement())
                        .routing(passes::routeSelection(
                            RoutingPolicy::OneBendPath,
                            RouteSelect::BestReliability))
                        .named("Sabre+1BP")
                        .build();
    PipelineResult r = pipe.run(b.circuit);
    ASSERT_TRUE(r.ok()) << r.status.message;
    EXPECT_EQ(r.program.mapperName, "Sabre+1BP");
    test::expectScheduleWellFormed(*machine, r.program.schedule);
    EXPECT_GT(r.program.predictedSuccess, 0.0);

    const auto &traces = r.program.stageTraces;
    ASSERT_EQ(traces.size(), 4u);
    EXPECT_EQ(traces[0].pass, "Sabre");
    EXPECT_NE(traces[0].note.find("round trips"), std::string::npos);
}

TEST(SabrePlacement, OversizedProgramIsInfeasibleNotThrown)
{
    GridTopology small(2, 2);
    auto machine = machineFor(small);
    PipelineResult r = standardPipeline(machine, sabreOptions())
                           .run(benchmarkByName("BV6").circuit);
    EXPECT_FALSE(r.ok());
    EXPECT_FALSE(r.hasProgram);
    EXPECT_EQ(r.status.code, CompileStatusCode::Infeasible);
    EXPECT_EQ(r.failedStage, "placement");
}

TEST(SabrePlacement, KnobsChangeTheFingerprintedConfiguration)
{
    // Zero iterations degenerates to the greedy seed; the knobs are
    // part of the compile-cache key so the two configurations may
    // never alias (service/fingerprints.cpp mixes them).
    Machine m = env().machineForDay(0);
    Benchmark b = benchmarkByName("Toffoli");

    SabreOptions none;
    none.iterations = 0;
    EXPECT_EQ(sabrePlacement(m, b.circuit, none),
              greedyEdgePlacement(m, b.circuit));

    CompilerOptions a = sabreOptions();
    CompilerOptions b_opts = sabreOptions();
    b_opts.sabreIterations = 0;
    EXPECT_NE(service::fingerprintOptions(a),
              service::fingerprintOptions(b_opts));
    b_opts = sabreOptions();
    b_opts.sabreLookahead = 5;
    EXPECT_NE(service::fingerprintOptions(a),
              service::fingerprintOptions(b_opts));
}

TEST(SabrePlacement, LegacyMapperMatchesPipelineBundle)
{
    // The monolithic SabreMapper is the pre-pipeline reference, like
    // every other kind (test_pipeline covers the whole Table 2 set;
    // this is the direct spot-check).
    auto machine =
        std::make_shared<const Machine>(env().machineForDay(0));
    Benchmark b = benchmarkByName("Fredkin");
    CompiledProgram legacy =
        NoiseAdaptiveCompiler::makeMapper(*machine, sabreOptions())
            ->compile(b.circuit);
    PipelineResult piped =
        standardPipeline(machine, sabreOptions()).run(b.circuit);
    ASSERT_TRUE(piped.ok());
    EXPECT_EQ(legacy.mapperName, piped.program.mapperName);
    EXPECT_EQ(legacy.layout, piped.program.layout);
    EXPECT_EQ(legacy.predictedSuccess,
              piped.program.predictedSuccess);
    EXPECT_TRUE(
        legacy.schedule.identicalTo(piped.program.schedule));
}

} // namespace
} // namespace qc
