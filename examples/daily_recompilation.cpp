/**
 * @file
 * Daily recompilation as a service workload.
 *
 * The paper's core operational insight (Sec. 2 and 7, Fig. 6): error
 * rates drift every calibration cycle, so every program should be
 * recompiled against each fresh snapshot. At fleet scale that is a
 * batch of (program x calibration-day) jobs every morning — exactly
 * what service::CompileService runs.
 *
 * This example drives the service across 8 simulated days for three
 * paper benchmarks, then:
 *   - shows the per-day predicted success of the recompiled mappings
 *     next to a mapping frozen on day 0 (the Fig. 6 comparison),
 *   - re-runs today's batch to show the compile cache absorbing
 *     repeat traffic,
 *   - prints the aggregate ServiceReport.
 */

#include <iostream>
#include <map>

#include "core/experiment.hpp"
#include "service/compile_service.hpp"
#include "support/table.hpp"

int
main()
{
    using namespace qc;
    using namespace qc::service;

    const std::uint64_t seed = 20190131;
    const int days = 8;
    const int trials = 512;

    ExperimentEnv env(seed);
    std::vector<std::pair<std::string, Circuit>> programs;
    for (const char *name : {"Toffoli", "Fredkin", "Adder"}) {
        Benchmark b = benchmarkByName(name);
        programs.emplace_back(b.name, b.circuit);
    }

    CompilerOptions options;
    options.mapper = MapperKind::GreedyE; // fast enough for a fleet

    // The morning batch: every program against every fresh snapshot.
    ServiceOptions sopts;
    sopts.threads = 8;
    CompileService service(sopts);
    BatchResult batch = service.compileBatch(CompileService::dailyBatch(
        env.calibrationModel(), programs, 0, days, options));
    if (batch.report.failed > 0) {
        std::cerr << "compilation failures:\n";
        for (const auto &r : batch.results)
            if (!r.ok)
                std::cerr << "  " << r.tag << ": " << r.error() << "\n";
        return 1;
    }

    // Frozen reference: each program compiled once against day 0,
    // executed unchanged on later days (what a lazy fleet would do).
    std::map<std::string, std::shared_ptr<const CompiledProgram>>
        frozen;
    for (const auto &r : batch.results)
        if (r.day == 0)
            frozen[r.tag.substr(0, r.tag.find('@'))] = r.program;

    Table t({"Day", "Benchmark", "recompiled success",
             "frozen day-0 success"});
    double recompiled_sum = 0.0, frozen_sum = 0.0;
    int measured = 0;
    for (const auto &r : batch.results) {
        // On day 0 "recompiled" and "frozen" are the same mapping by
        // construction; comparing them would only dilute the means.
        if (r.day == 0)
            continue;
        const std::string name = r.tag.substr(0, r.tag.find('@'));
        const Benchmark bench = benchmarkByName(name);

        ExecutionOptions exec;
        exec.trials = trials;
        exec.seed = seed + static_cast<std::uint64_t>(r.day);
        auto daily = runNoisy(*r.machine, r.program->schedule,
                              bench.circuit.numClbits(),
                              bench.expected, exec);
        auto fixed = runNoisy(*r.machine, frozen.at(name)->schedule,
                              bench.circuit.numClbits(),
                              bench.expected, exec);

        recompiled_sum += daily.successRate;
        frozen_sum += fixed.successRate;
        ++measured;
        t.addRow({Table::fmt(static_cast<long long>(r.day)), name,
                  Table::fmt(daily.successRate),
                  Table::fmt(fixed.successRate)});
    }
    t.print(std::cout);
    std::cout << "\nmean success: recompiled "
              << Table::fmt(recompiled_sum / measured) << " vs frozen "
              << Table::fmt(frozen_sum / measured)
              << " — recompiling tracks the drift (Fig. 6).\n";

    // Repeat traffic: a second user asks for today's exact mappings.
    BatchResult repeat =
        service.compileBatch(CompileService::dailyBatch(
            env.calibrationModel(), programs, 0, days, options));
    std::cout << "\nre-running the same batch: "
              << repeat.report.cacheHits << "/" << repeat.report.jobs
              << " jobs served from cache, no machine rebuilt.\n"
              << "\nrepeat-batch report (pool/cache stats span the "
                 "service's lifetime):\n"
              << repeat.report.toString();
    return 0;
}
