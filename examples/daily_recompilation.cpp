/**
 * @file
 * Daily recompilation: the paper's core operational insight (Sec. 7,
 * Fig. 6). Machine error rates drift every calibration cycle; a
 * mapping frozen on day 0 degrades, while recompiling against each
 * day's calibration data tracks the machine.
 *
 * Compares, over 10 days of drifting calibration:
 *  - "frozen":     R-SMT* compiled once on day 0, re-run every day,
 *  - "recompiled": R-SMT* recompiled each day,
 *  - "static":     T-SMT* (calibration-blind durations-only mapping).
 */

#include <iostream>

#include "core/experiment.hpp"
#include "support/table.hpp"

int
main()
{
    using namespace qc;

    const std::uint64_t seed = 20190131;
    const int days = 10;
    const int trials = 2048;
    ExperimentEnv env(seed);
    Benchmark bench = benchmarkByName("Toffoli");

    CompilerOptions rsmt;
    rsmt.mapper = MapperKind::RSmtStar;
    rsmt.smtTimeoutMs = 20'000;
    CompilerOptions tsmt;
    tsmt.mapper = MapperKind::TSmtStar;
    tsmt.smtTimeoutMs = 20'000;

    // Frozen mapping: compiled once against day 0.
    Machine day0 = env.machineForDay(0);
    auto frozen_mapper = NoiseAdaptiveCompiler::makeMapper(day0, rsmt);
    CompiledProgram frozen = frozen_mapper->compile(bench.circuit);

    Table t({"Day", "frozen day-0 map", "recompiled daily",
             "T-SMT* (noise-blind)"});
    double frozen_sum = 0.0, daily_sum = 0.0;
    for (int day = 0; day < days; ++day) {
        Machine m = env.machineForDay(day);

        // The frozen schedule executes under today's real noise.
        ExecutionOptions exec;
        exec.trials = trials;
        exec.seed = seed + day;
        auto frozen_res =
            runNoisy(m, frozen.schedule, bench.circuit.numClbits(),
                     bench.expected, exec);

        auto daily = runMeasured(m, bench, rsmt, trials, seed + day);
        auto blind = runMeasured(m, bench, tsmt, trials, seed + day);

        frozen_sum += frozen_res.successRate;
        daily_sum += daily.execution.successRate;
        t.addRow({Table::fmt(static_cast<long long>(day)),
                  Table::fmt(frozen_res.successRate),
                  Table::fmt(daily.execution.successRate),
                  Table::fmt(blind.execution.successRate)});
    }
    t.print(std::cout);
    std::cout << "\nMean success: frozen " << frozen_sum / days
              << " vs daily recompile " << daily_sum / days
              << "\nDaily recompilation tracks the machine's drift "
                 "(the Fig. 6 behavior); on\nquiet stretches a frozen "
                 "mapping can tie, but it has no protection when a\n"
                 "previously-good link degrades — compare the "
                 "noise-blind T-SMT* column,\nwhich cannot adapt at "
                 "all.\n";
    return 0;
}
