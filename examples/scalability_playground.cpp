/**
 * @file
 * Scalability playground: compile synthetic programs of growing size
 * with the greedy heuristics on machines up to 128 qubits — the
 * "far-NISQ" regime where the paper recommends heuristics over SMT
 * (Sec. 7.4, Fig. 11). Optionally pits R-SMT* against GreedyE* on the
 * small sizes to show the compile-time gap first-hand.
 *
 * Usage: scalability_playground [--with-smt]
 */

#include <cstring>
#include <iostream>

#include "core/experiment.hpp"
#include "support/table.hpp"
#include "workloads/random_circuits.hpp"

int
main(int argc, char **argv)
{
    using namespace qc;

    bool with_smt = argc > 1 && std::strcmp(argv[1], "--with-smt") == 0;
    const std::uint64_t seed = 7;

    struct Size
    {
        int rows, cols, qubits, gates;
    };
    const Size sizes[] = {
        {2, 4, 8, 256},  {2, 8, 16, 512},   {4, 8, 32, 768},
        {8, 8, 64, 1024}, {8, 16, 128, 2048},
    };

    Table t({"Machine", "Program", "GreedyE* (s)", "GreedyV* (s)",
             "R-SMT* (s)", "GreedyE* swaps"});
    for (const auto &s : sizes) {
        GridTopology topo(s.rows, s.cols);
        CalibrationModel model(topo, seed);
        Machine m(topo, model.forDay(0));

        RandomCircuitSpec spec;
        spec.numQubits = s.qubits;
        spec.numGates = s.gates;
        spec.seed = seed;
        Circuit prog = makeRandomCircuit(spec);

        CompilerOptions ge;
        ge.mapper = MapperKind::GreedyE;
        CompilerOptions gv;
        gv.mapper = MapperKind::GreedyV;
        auto ge_cp =
            NoiseAdaptiveCompiler::makeMapper(m, ge)->compile(prog);
        auto gv_cp =
            NoiseAdaptiveCompiler::makeMapper(m, gv)->compile(prog);

        std::string smt_cell = "(skipped; pass --with-smt)";
        if (with_smt && s.qubits <= 16) {
            CompilerOptions rs;
            rs.mapper = MapperKind::RSmtStar;
            rs.smtTimeoutMs = 15'000;
            auto rs_cp =
                NoiseAdaptiveCompiler::makeMapper(m, rs)->compile(prog);
            smt_cell = Table::fmt(rs_cp.compileSeconds, 2) +
                       (rs_cp.solverOptimal ? "" : " (capped)");
        } else if (with_smt) {
            smt_cell = "intractable at this size";
        }

        t.addRow({topo.name(),
                  std::to_string(s.qubits) + "q/" +
                      std::to_string(s.gates) + "g",
                  Table::fmt(ge_cp.compileSeconds, 4),
                  Table::fmt(gv_cp.compileSeconds, 4), smt_cell,
                  Table::fmt(static_cast<long long>(ge_cp.swapCount))});
    }
    t.print(std::cout);
    std::cout << "\nGreedy mapping scales to hundreds of qubits with "
                 "sub-second compiles —\nthe paper's prescription for "
                 "far-NISQ machines.\n";
    return 0;
}
